// CLI integration tests: build the commands once and drive them end to end
// against the testdata programs, asserting verdict exit codes and output
// shape. These cover the full parse → analyse → report pipeline as a user
// sees it.
package airct_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"airct/internal/chase"
)

var (
	buildOnce sync.Once
	buildDir  string
	buildErr  error
)

// binary builds (once) and returns the path of the named command.
func binary(t *testing.T, name string) string {
	t.Helper()
	buildOnce.Do(func() {
		buildDir, buildErr = os.MkdirTemp("", "airct-cli")
		if buildErr != nil {
			return
		}
		for _, cmd := range []string{"termcheck", "termcheckd", "chase", "benchgen", "experiments"} {
			out, err := exec.Command("go", "build", "-o", filepath.Join(buildDir, cmd), "./cmd/"+cmd).CombinedOutput()
			if err != nil {
				buildErr = &buildFailure{cmd: cmd, out: string(out), err: err}
				return
			}
		}
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return filepath.Join(buildDir, name)
}

type buildFailure struct {
	cmd string
	out string
	err error
}

func (b *buildFailure) Error() string {
	return "building " + b.cmd + ": " + b.err.Error() + "\n" + b.out
}

// run executes the binary and returns stdout+stderr and the exit code.
func run(t *testing.T, bin string, args ...string) (string, int) {
	t.Helper()
	var buf bytes.Buffer
	cmd := exec.Command(bin, args...)
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	err := cmd.Run()
	code := 0
	if exit, ok := err.(*exec.ExitError); ok {
		code = exit.ExitCode()
	} else if err != nil {
		t.Fatalf("%s: %v", bin, err)
	}
	return buf.String(), code
}

func TestTermcheckVerdictExitCodes(t *testing.T) {
	bin := binary(t, "termcheck")
	tests := []struct {
		file     string
		wantCode int
		wantWord string
	}{
		{"testdata/intro.chase", 0, "terminates"},
		{"testdata/example32.chase", 0, "terminates"},
		{"testdata/ladder.chase", 1, "diverges"},
		{"testdata/example56.chase", 1, "diverges"},
	}
	for _, tc := range tests {
		t.Run(filepath.Base(tc.file), func(t *testing.T) {
			out, code := run(t, bin, tc.file)
			if code != tc.wantCode {
				t.Errorf("exit = %d, want %d\n%s", code, tc.wantCode, out)
			}
			if !strings.Contains(out, "verdict: "+tc.wantWord) {
				t.Errorf("output lacks verdict %q:\n%s", tc.wantWord, out)
			}
		})
	}
}

func TestTermcheckMultiHeadIsUnknown(t *testing.T) {
	bin := binary(t, "termcheck")
	out, code := run(t, bin, "testdata/exampleB1.chase")
	// Example B.1 is multi-head: outside G and S, not WA — honest Unknown.
	if code != 2 {
		t.Errorf("exit = %d, want 2 (unknown)\n%s", code, out)
	}
	if !strings.Contains(out, "undecidable") {
		t.Errorf("unknown verdict must cite undecidability:\n%s", out)
	}
}

func TestTermcheckExistsSearch(t *testing.T) {
	bin := binary(t, "termcheck")
	// Example B.1 admits a finite derivation (fire mh2 first): exit 0 plus
	// a replayable witness listing.
	out, code := run(t, bin, "-exists", "testdata/exampleB1.chase")
	if code != 0 {
		t.Fatalf("exit = %d, want 0 (finite derivation exists)\n%s", code, out)
	}
	if !strings.Contains(out, "finite derivation exists") {
		t.Errorf("missing witness banner:\n%s", out)
	}
	if !strings.Contains(out, "exists-search: strategy=smallest") {
		t.Errorf("missing search stats line:\n%s", out)
	}
	// The diverging ladder under tight budgets: the search is cut off, not
	// exhausted — honest exit 2.
	out, code = run(t, bin, "-exists", "-exists-states", "200", "-exists-atoms", "12", "-exists-strategy", "bfs", "testdata/ladder.chase")
	if code != 2 {
		t.Fatalf("exit = %d, want 2 (budget)\n%s", code, out)
	}
	if !strings.Contains(out, "unknown") {
		t.Errorf("missing budget verdict:\n%s", out)
	}
	// A program without facts cannot be searched: the question is
	// per-database.
	factless := filepath.Join(t.TempDir(), "factless.chase")
	if err := os.WriteFile(factless, []byte("grow: R(X,Y) -> R(X,Z).\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, code = run(t, bin, "-exists", factless)
	if code != 3 {
		t.Fatalf("exit = %d, want 3 (no facts)\n%s", code, out)
	}
}

func TestTermcheckExistsParallelWorkers(t *testing.T) {
	bin := binary(t, "termcheck")
	// The parallel search must reach the same verdict as the sequential one
	// and report its worker count in the stats line.
	for _, workers := range []string{"1", "4"} {
		out, code := run(t, bin, "-exists", "-workers", workers, "testdata/exampleB1.chase")
		if code != 0 {
			t.Fatalf("workers=%s: exit = %d, want 0\n%s", workers, code, out)
		}
		if !strings.Contains(out, "workers="+workers) {
			t.Errorf("workers=%s: stats line lacks worker count:\n%s", workers, out)
		}
		if !strings.Contains(out, "finite derivation exists") {
			t.Errorf("workers=%s: missing witness banner:\n%s", workers, out)
		}
	}
	// Invalid worker counts are a usage error.
	if _, code := run(t, bin, "-exists", "-workers", "0", "testdata/exampleB1.chase"); code != 3 {
		t.Error("-workers 0 must exit 3")
	}
}

func TestTermcheckProfiles(t *testing.T) {
	bin := binary(t, "termcheck")
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")
	// Profiles must be written (and flushed: exits funnel through the
	// deferred writers) for both questions; non-empty files suffice here —
	// pprof validity is go tool pprof's business.
	out, code := run(t, bin, "-exists", "-cpuprofile", cpu, "-memprofile", mem, "testdata/exampleB1.chase")
	if code != 0 {
		t.Fatalf("exit = %d\n%s", code, out)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile missing: %v", err)
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
	if out, code = run(t, bin, "-memprofile", mem, "testdata/intro.chase"); code != 0 {
		t.Fatalf("∀ question with -memprofile: exit = %d\n%s", code, out)
	}
	if st, err := os.Stat(mem); err != nil || st.Size() == 0 {
		t.Errorf("heap profile not rewritten for the ∀ question (err=%v)", err)
	}
}

// documentedFlags mirrors docs/CLI.md: every flag documented there, per
// command. TestCLIHelpMatchesDocs asserts each appears both in the
// command's -h output and in the doc file, so the three stay in sync.
var documentedFlags = map[string][]string{
	"termcheck":   {"-guarded-budget", "-sticky-states", "-exists", "-exists-states", "-exists-atoms", "-exists-strategy", "-portfolio", "-probe-steps", "-adaptive", "-workers", "-cache", "-cache-file", "-cache-save-every", "-cpuprofile", "-memprofile"},
	"termcheckd":  {"-addr", "-adaptive", "-cache-file", "-cache-save-every", "-max-inflight", "-request-timeout", "-workers"},
	"chase":       {"-variant", "-strategy", "-seed", "-max-steps", "-max-atoms", "-quiet", "-core"},
	"benchgen":    {"-family", "-n", "-db", "-size", "-seed"},
	"experiments": {"-only", "-quick"},
}

func TestCLIHelpMatchesDocs(t *testing.T) {
	docBytes, err := os.ReadFile("docs/CLI.md")
	if err != nil {
		t.Fatalf("docs/CLI.md must exist: %v", err)
	}
	docs := string(docBytes)
	for cmd, flags := range documentedFlags {
		out, _ := run(t, binary(t, cmd), "-h")
		for _, flag := range flags {
			// flag's usage output prints "-name" (one dash).
			if !strings.Contains(out, "\n  "+flag+" ") && !strings.Contains(out, "\n  "+flag+"\n") {
				t.Errorf("%s -h does not mention documented flag %s:\n%s", cmd, flag, out)
			}
			if !strings.Contains(docs, "`"+flag+"`") {
				t.Errorf("docs/CLI.md does not document %s's flag %s", cmd, flag)
			}
		}
		// Reverse direction: every flag the command actually declares must be
		// in documentedFlags (and hence, by the loop above, in docs/CLI.md) —
		// adding a flag without documenting it fails here.
		documented := make(map[string]bool, len(flags))
		for _, f := range flags {
			documented[f] = true
		}
		for _, m := range regexp.MustCompile(`(?m)^  (-[a-z][a-z0-9-]*)`).FindAllStringSubmatch(out, -1) {
			if !documented[m[1]] {
				t.Errorf("%s declares flag %s that docs/CLI.md and documentedFlags do not cover", cmd, m[1])
			}
		}
	}
}

// TestTermcheckCacheStats pins the -cache surface: a cache: stats line
// with a nonzero hit count (the seed battery re-chases each seed under
// three trigger orders, sharing the cached initial trigger queue), and a
// report otherwise byte-identical to the uncached run.
func TestTermcheckCacheStats(t *testing.T) {
	bin := binary(t, "termcheck")
	cached, code := run(t, bin, "-cache", "testdata/conformance/swap-intro.chase")
	if code != 0 {
		t.Fatalf("exit = %d, want 0\n%s", code, cached)
	}
	m := regexp.MustCompile(`(?m)^cache: hits=(\d+) misses=\d+ entries=\d+ bytes=\d+ evictions=\d+ evicted-entries=\d+\n`).FindStringSubmatch(cached)
	if m == nil {
		t.Fatalf("no cache: stats line:\n%s", cached)
	}
	if m[1] == "0" {
		t.Errorf("cache: hit count is zero on a seed-exhaustion decision:\n%s", cached)
	}
	plain, code := run(t, bin, "testdata/conformance/swap-intro.chase")
	if code != 0 {
		t.Fatalf("uncached exit = %d, want 0\n%s", code, plain)
	}
	if got := strings.Replace(cached, m[0], "", 1); got != plain {
		t.Errorf("-cache changed the report beyond the stats line:\n%s\nvs\n%s", got, plain)
	}
}

// TestTermcheckCacheFilePersists pins the -cache-file surface: the first
// run writes a snapshot, a second run loads it and reports warm hits, and
// the warm report is byte-identical to the cold one modulo the cache stats
// line. A corrupt snapshot must be reported, ignored, and rewritten — never
// fatal.
func TestTermcheckCacheFilePersists(t *testing.T) {
	bin := binary(t, "termcheck")
	snap := filepath.Join(t.TempDir(), "cache.snap")
	cacheLine := regexp.MustCompile(`(?m)^cache: hits=(\d+) misses=\d+ entries=\d+ bytes=\d+ evictions=\d+ evicted-entries=\d+\n`)

	cold, code := run(t, bin, "-cache-file", snap, "testdata/conformance/swap-intro.chase")
	if code != 0 {
		t.Fatalf("cold exit = %d, want 0\n%s", code, cold)
	}
	if _, err := os.Stat(snap); err != nil {
		t.Fatalf("snapshot not written on exit: %v", err)
	}

	warm, code := run(t, bin, "-cache-file", snap, "testdata/conformance/swap-intro.chase")
	if code != 0 {
		t.Fatalf("warm exit = %d, want 0\n%s", code, warm)
	}
	wm := cacheLine.FindStringSubmatch(warm)
	if wm == nil {
		t.Fatalf("warm run: no cache: stats line:\n%s", warm)
	}
	if wm[1] == "0" {
		t.Errorf("warm restart reports zero hits — the snapshot did not warm the cache:\n%s", warm)
	}
	if cacheLine.ReplaceAllString(warm, "") != cacheLine.ReplaceAllString(cold, "") {
		t.Errorf("-cache-file changed the report beyond the stats line:\n%s\nvs\n%s", warm, cold)
	}

	// Corruption: an unreadable snapshot is ignored with a warning and the
	// run still succeeds (and rewrites the file with a fresh snapshot).
	if err := os.WriteFile(snap, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, code := run(t, bin, "-cache-file", snap, "testdata/conformance/swap-intro.chase")
	if code != 0 {
		t.Fatalf("corrupt snapshot exit = %d, want 0\n%s", code, out)
	}
	if !strings.Contains(out, "ignoring cache file") {
		t.Errorf("corrupt snapshot not reported:\n%s", out)
	}
	rewarm, code := run(t, bin, "-cache-file", snap, "testdata/conformance/swap-intro.chase")
	if code != 0 {
		t.Fatalf("rewritten snapshot exit = %d, want 0\n%s", code, rewarm)
	}
	if m := cacheLine.FindStringSubmatch(rewarm); m == nil || m[1] == "0" {
		t.Errorf("rewritten snapshot did not warm the next run:\n%s", rewarm)
	}
}

// TestTermcheckPortfolio pins the -portfolio surface: the staged summary
// lines, exit codes identical to the plain analysis on terminating,
// diverging and unknown inputs, and the cache: stats line under -cache.
func TestTermcheckPortfolio(t *testing.T) {
	bin := binary(t, "termcheck")
	out, code := run(t, bin, "-portfolio", "testdata/intro.chase")
	if code != 0 {
		t.Fatalf("intro: exit = %d, want 0\n%s", code, out)
	}
	if !strings.Contains(out, "portfolio: verdict=terminates") {
		t.Errorf("intro: missing portfolio summary line:\n%s", out)
	}
	if !strings.Contains(out, "portfolio-stage: name=") {
		t.Errorf("intro: missing per-stage lines:\n%s", out)
	}

	out, code = run(t, bin, "-portfolio", "testdata/conformance/ladder.chase")
	if code != 1 {
		t.Fatalf("ladder: exit = %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "decided-by=sticky") {
		t.Errorf("ladder: wrong deciding stage:\n%s", out)
	}
	// ladder.chase carries a fact, so the non-authoritative ∀∃ racer joins.
	if !strings.Contains(out, "portfolio-stage: name=exists") {
		t.Errorf("ladder: database supplied but no exists stage:\n%s", out)
	}

	out, code = run(t, bin, "-portfolio", "testdata/exampleB1.chase")
	if code != 2 {
		t.Fatalf("exampleB1: exit = %d, want 2\n%s", code, out)
	}
	if !strings.Contains(out, "verdict=unknown decided-by=-") {
		t.Errorf("exampleB1: undecided set not reported as such:\n%s", out)
	}

	out, code = run(t, bin, "-portfolio", "-cache", "-workers", "4", "testdata/conformance/swap-intro.chase")
	if code != 0 {
		t.Fatalf("swap-intro cached: exit = %d, want 0\n%s", code, out)
	}
	if !strings.Contains(out, "decided-by=jointree-prune") {
		t.Errorf("swap-intro: prune stage did not decide:\n%s", out)
	}
	if !regexp.MustCompile(`(?m)^cache: hits=\d+ misses=\d+ entries=\d+ bytes=\d+ evictions=\d+ evicted-entries=\d+$`).MatchString(out) {
		t.Errorf("swap-intro cached: no cache: stats line:\n%s", out)
	}
	if !regexp.MustCompile(`(?m)^portfolio-stage: name=\S+ tier=\d+ decided=(true|false) verdict=\S+ steps=\d+ saturated=\d+/\d+ depth=\d+ elapsed=\S+ detail="`).MatchString(out) {
		t.Errorf("swap-intro cached: portfolio-stage line lacks probe diagnostics fields:\n%s", out)
	}

	// The Tier 1 rejecting fast path: guard-chain-pump diverges, is guarded
	// non-sticky, and must be decided by the probe itself — its stage line
	// carries the full-budget-confirmed pump certificate.
	out, code = run(t, bin, "-portfolio", "testdata/conformance/guard-chain-pump.chase")
	if code != 1 {
		t.Fatalf("guard-chain-pump: exit = %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "verdict=diverges decided-by=probe") {
		t.Errorf("guard-chain-pump: probe reject did not decide:\n%s", out)
	}
	if !regexp.MustCompile(`(?m)^portfolio-stage: name=probe tier=1 decided=true verdict=diverges .*detail="probe: pump at depth \d+ within k=\d+`).MatchString(out) {
		t.Errorf("guard-chain-pump: rejecting probe stage line lacks the certificate:\n%s", out)
	}
	// -adaptive reorders and re-budgets but never changes the verdict.
	out, code = run(t, bin, "-portfolio", "-adaptive", "testdata/conformance/guard-chain-pump.chase")
	if code != 1 || !strings.Contains(out, "verdict=diverges decided-by=probe") {
		t.Errorf("guard-chain-pump -adaptive: exit %d, want 1 with the probe deciding:\n%s", code, out)
	}

	if out, code = run(t, bin, "-portfolio", "-exists", "testdata/conformance/ladder.chase"); code != 3 {
		t.Errorf("-portfolio with -exists must be a usage error (exit 3), got %d:\n%s", code, out)
	}
}

func TestTermcheckRejectsBadInput(t *testing.T) {
	bin := binary(t, "termcheck")
	bad := filepath.Join(t.TempDir(), "bad.chase")
	if err := os.WriteFile(bad, []byte("R(a, Y) -> S(Y)."), 0o644); err != nil {
		t.Fatal(err)
	}
	out, code := run(t, bin, bad)
	if code != 3 {
		t.Errorf("exit = %d, want 3\n%s", code, out)
	}
}

func TestChaseCommandVariants(t *testing.T) {
	bin := binary(t, "chase")
	// Restricted on the intro example: fixpoint, 1 atom, exit 0.
	out, code := run(t, bin, "-variant", "restricted", "testdata/intro.chase")
	if code != 0 {
		t.Fatalf("restricted exit = %d\n%s", code, out)
	}
	if !strings.Contains(out, "R(a,b).") {
		t.Errorf("instance dump missing R(a,b):\n%s", out)
	}
	if !strings.Contains(out, "reason=fixpoint") {
		t.Errorf("stats missing:\n%s", out)
	}
	// Oblivious with a budget: exit 1.
	out, code = run(t, bin, "-variant", "oblivious", "-max-steps", "50", "-quiet", "testdata/intro.chase")
	if code != 1 {
		t.Fatalf("oblivious exit = %d\n%s", code, out)
	}
	if !strings.Contains(out, "reason=step-budget") {
		t.Errorf("budget reason missing:\n%s", out)
	}
	// Unknown variant: exit 3.
	if _, code = run(t, bin, "-variant", "nope", "testdata/intro.chase"); code != 3 {
		t.Errorf("bad variant exit = %d", code)
	}
}

func TestChaseExample32MatchesPaper(t *testing.T) {
	bin := binary(t, "chase")
	out, code := run(t, bin, "testdata/example32.chase")
	if code != 0 {
		t.Fatalf("exit = %d\n%s", code, out)
	}
	for _, want := range []string{"P(a,b).", "R(a,b).", "S(a)."} {
		if !strings.Contains(out, want) {
			t.Errorf("restricted result must contain %s:\n%s", want, out)
		}
	}
	// The oblivious extra atom R(a, null) must NOT be in the FIFO
	// restricted result.
	if strings.Contains(out, "R(a,_:") {
		t.Errorf("unexpected invented R atom in restricted result:\n%s", out)
	}
}

func TestChaseCoreFlag(t *testing.T) {
	bin := binary(t, "chase")
	// LIFO on Example 3.2 keeps a dominated invented atom; -core drops it.
	out, code := run(t, bin, "-strategy", "lifo", "-core", "testdata/example32.chase")
	if code != 0 {
		t.Fatalf("exit = %d\n%s", code, out)
	}
	if !strings.Contains(out, "core: 3 atoms (from 4") {
		t.Errorf("core minimisation missing:\n%s", out)
	}
	if strings.Contains(out, "R(a,_:") {
		t.Errorf("dominated atom must be gone:\n%s", out)
	}
	// -core on a diverging budgeted run errors.
	_, code = run(t, bin, "-core", "-max-steps", "20", "testdata/ladder.chase")
	if code != 3 {
		t.Errorf("-core on unfinished run: exit = %d, want 3", code)
	}
}

func TestBenchgenRoundTripsThroughTermcheck(t *testing.T) {
	gen := binary(t, "benchgen")
	check := binary(t, "termcheck")
	for _, tc := range []struct {
		family   string
		wantCode int
	}{
		{"existential-chain", 0},
		{"swap-intro", 0},
		{"linear-cycle", 1},
		{"sticky-relay", 1},
		{"stage-grid", 0},
	} {
		out, code := run(t, gen, "-family", tc.family, "-n", "3")
		if code != 0 {
			t.Fatalf("benchgen %s exit = %d\n%s", tc.family, code, out)
		}
		file := filepath.Join(t.TempDir(), tc.family+".chase")
		if err := os.WriteFile(file, []byte(out), 0o644); err != nil {
			t.Fatal(err)
		}
		vOut, vCode := run(t, check, file)
		if vCode != tc.wantCode {
			t.Errorf("%s: termcheck exit = %d, want %d\n%s", tc.family, vCode, tc.wantCode, vOut)
		}
	}
	if _, code := run(t, gen, "-family", "nope"); code != 3 {
		t.Error("unknown family must exit 3")
	}
}

func TestExperimentsSelectedSubset(t *testing.T) {
	bin := binary(t, "experiments")
	out, code := run(t, bin, "-only", "E4,E5", "-quick")
	if code != 0 {
		t.Fatalf("exit = %d\n%s", code, out)
	}
	if !strings.Contains(out, "## E4") || !strings.Contains(out, "## E5") {
		t.Errorf("selected experiments missing:\n%s", out)
	}
	if strings.Contains(out, "## E1") {
		t.Errorf("unselected experiment ran:\n%s", out)
	}
	// E5's verdict line is the Example 5.6 reproduction.
	if !strings.Contains(out, "treeified D_ac") || !strings.Contains(out, "diverges") {
		t.Errorf("E5 table incomplete:\n%s", out)
	}
}

// startTermcheckd launches the daemon, scrapes the resolved listen address
// from its banner line, and returns the process and base URL. The caller
// owns shutdown.
func startTermcheckd(t *testing.T, args ...string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(binary(t, "termcheckd"), append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		line := sc.Text()
		if addr, ok := strings.CutPrefix(line, "termcheckd: listening on "); ok {
			go io.Copy(io.Discard, stdout) // keep the pipe drained
			return cmd, "http://" + addr
		}
	}
	t.Fatalf("termcheckd exited without a listening banner (scan err %v)", sc.Err())
	return nil, ""
}

// TestTermcheckdServes pins the daemon end to end: serve verdicts over
// HTTP that match the CLI's, report stats, shut down gracefully on SIGTERM
// with exit 0 and a final cache snapshot, and restart warm from that
// snapshot.
func TestTermcheckdServes(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "served.cache")
	cmd, base := startTermcheckd(t, "-cache-file", snap, "-cache-save-every", "0")

	src, err := os.ReadFile("testdata/conformance/swap-intro.chase")
	if err != nil {
		t.Fatal(err)
	}
	body := fmt.Sprintf(`{"program":%q}`, src)

	postDecide := func(url string) map[string]any {
		t.Helper()
		resp, err := http.Post(url+"/v1/decide", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			data, _ := io.ReadAll(resp.Body)
			t.Fatalf("decide status %d: %s", resp.StatusCode, data)
		}
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}

	// swap-intro terminates (the CLI exits 0 on it); the daemon must agree.
	if got := postDecide(base); got["verdict"] != "terminates" {
		t.Errorf("served verdict = %v, want terminates", got["verdict"])
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", err, resp)
	}
	resp.Body.Close()
	resp, err = http.Get(base + "/v1/stats")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: %v %v", err, resp)
	}
	var stats struct {
		Requests struct {
			Decide int64 `json:"decide"`
		} `json:"requests"`
		Cache chase.CacheStats `json:"cache"`
	}
	err = json.NewDecoder(resp.Body).Decode(&stats)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Requests.Decide != 1 {
		t.Errorf("stats decide tally = %d, want 1", stats.Requests.Decide)
	}
	if stats.Cache.Entries == 0 {
		t.Errorf("stats cache entries = 0; the decide left nothing in the shared cache")
	}

	// Graceful shutdown: SIGTERM → drain, final snapshot, exit 0.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("termcheckd exit after SIGTERM: %v", err)
	}
	if _, err := os.Stat(snap); err != nil {
		t.Fatalf("no cache snapshot after graceful shutdown: %v", err)
	}

	// Restart from the snapshot: the same decide must now hit the restored
	// cache.
	cmd2, base2 := startTermcheckd(t, "-cache-file", snap, "-cache-save-every", "0")
	if got := postDecide(base2); got["verdict"] != "terminates" {
		t.Errorf("restarted verdict = %v, want terminates", got["verdict"])
	}
	resp, err = http.Get(base2 + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats2 struct {
		Cache chase.CacheStats `json:"cache"`
	}
	err = json.NewDecoder(resp.Body).Decode(&stats2)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if stats2.Cache.Hits == 0 {
		t.Errorf("restarted daemon served the decide without hitting the restored cache: %+v", stats2.Cache)
	}
	cmd2.Process.Signal(syscall.SIGTERM)
	if err := cmd2.Wait(); err != nil {
		t.Fatalf("second daemon exit: %v", err)
	}
}

// TestTermcheckCacheSaveEveryKillMidRun pins the periodic snapshotter's
// crash story: under -cache-save-every the snapshot on disk is refreshed
// WHILE the run is still going, and a kill -9 mid-run leaves a cleanly
// loadable snapshot — at most one interval of warm work is lost, never the
// whole cache.
func TestTermcheckCacheSaveEveryKillMidRun(t *testing.T) {
	bin := binary(t, "termcheck")
	snap := filepath.Join(t.TempDir(), "midrun.cache")

	// Warm the snapshot with a fast run, so the slow run below starts with
	// restorable entries in its cache.
	if out, code := run(t, bin, "-cache-file", snap, "testdata/conformance/swap-intro.chase"); code != 0 {
		t.Fatalf("warming run exit = %d\n%s", code, out)
	}
	before, err := os.Stat(snap)
	if err != nil {
		t.Fatalf("warming run left no snapshot: %v", err)
	}

	// The slow run: a ~10s ∀∃ sweep (stage-grid at n=13 explores 3^13
	// states) with a 50ms snapshot cadence.
	prog := filepath.Join(t.TempDir(), "grid.chase")
	grid, code := run(t, binary(t, "benchgen"), "-family", "stage-grid", "-n", "13")
	if code != 0 {
		t.Fatalf("benchgen exit = %d\n%s", code, grid)
	}
	if err := os.WriteFile(prog, []byte(grid), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bin, "-exists", "-exists-states", "100000000", "-exists-atoms", "100",
		"-cache-file", snap, "-cache-save-every", "50ms", prog)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()

	// Wait for the ticker to overwrite the snapshot mid-run (a newer mtime
	// than the warming run's file), then crash the process.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("snapshot not refreshed mid-run within 10s")
		}
		st, err := os.Stat(snap)
		if err == nil && st.ModTime().After(before.ModTime()) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()

	// The kill -9 skipped the exit-time save; the mid-run snapshot must
	// still restore cleanly, entries intact.
	c, rep, err := chase.LoadCacheFile(snap)
	if err != nil || rep.Truncated || rep.Skipped > 0 {
		t.Fatalf("snapshot after kill -9 did not load cleanly: %v %+v", err, rep)
	}
	if c.Stats().Entries == 0 {
		t.Error("snapshot after kill -9 restored no entries")
	}
}
