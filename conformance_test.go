// The shared conformance corpus: golden .chase programs under
// testdata/conformance/ carry their expected verdicts in an `# expect:`
// header line, and every entry runs table-driven across the full decision
// matrix — the chase engine, the sequential ∀∃ exists-search, the parallel
// search at W ∈ {2, 4}, and (where the set is single-head guarded) the
// guarded ∀∀ decision — each × {cache off, cache cold, cache warm,
// snapshot→restore→warm}. Beyond matching the golden verdicts, the cache
// dimension is pinned bit-identical: same reason, steps, stats and
// final-instance atom sequence for the engine, same verdict, method,
// evidence, SeedsTried and witness rendering for Decide, and same verdict,
// stats and derivation rendering for the sequential exists-search — cold,
// warm, and warmed from a snapshot of the cold cache (the persistent
// tier's restore path must be indistinguishable from the in-process warm
// cache).
//
// Directive grammar (one line, space-separated key=value):
//
//	# expect: decide=terminates|diverges [decide-method=...]
//	#         engine=fixpoint|step-budget|egd-failure
//	#         exists=found|exhausted|budget
//
// Keys are optional; a missing key skips that column (e.g. non-guarded
// sets omit decide=, and EGD programs omit exists= — the ∀∃ search is
// TGD-only). Budgets are fixed by the harness below so verdicts
// are deterministic: engine MaxSteps 500, exists MaxStates 5000 /
// MaxAtoms 80, Decide MaxSteps 500.
package airct_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"airct/internal/chase"
	"airct/internal/core"
	"airct/internal/guarded"
	"airct/internal/parser"
	"airct/internal/portfolio"
	"airct/internal/serve"
)

const (
	confEngineSteps  = 500
	confExistsStates = 5000
	confExistsAtoms  = 80
	confDecideSteps  = 500
)

// parseExpect extracts the key=value pairs of the `# expect:` header.
func parseExpect(t *testing.T, src string) map[string]string {
	t.Helper()
	for _, line := range strings.Split(src, "\n") {
		line = strings.TrimSpace(line)
		if !strings.HasPrefix(line, "# expect:") {
			continue
		}
		out := make(map[string]string)
		for _, kv := range strings.Fields(strings.TrimPrefix(line, "# expect:")) {
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				t.Fatalf("malformed expect directive %q", kv)
			}
			out[k] = v
		}
		return out
	}
	t.Fatal("no `# expect:` directive in corpus file")
	return nil
}

func existsVerdict(res *chase.ExistsResult) string {
	switch {
	case res.Found:
		return "found"
	case res.Exhausted:
		return "exhausted"
	default:
		return "budget"
	}
}

func decideVerdict(v *guarded.Verdict) string {
	if v.Terminates {
		return "terminates"
	}
	return "diverges"
}

// snapshotRoundTrip models a process restart: snapshot the cache and
// rebuild a fresh one from the bytes, demanding a clean load.
func snapshotRoundTrip(t *testing.T, cache *chase.Cache) *chase.Cache {
	t.Helper()
	var buf bytes.Buffer
	if err := cache.Snapshot(&buf); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	restored, rep, err := chase.LoadCache(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("snapshot load: %v", err)
	}
	if rep.Skipped > 0 || rep.Truncated {
		t.Fatalf("snapshot load degraded: %+v", rep)
	}
	return restored
}

// existsRendering is the byte-identity witness for the exists column's
// cache dimension: verdict, work counters and the witness derivation.
func existsRendering(res *chase.ExistsResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "verdict=%s states=%d stats=%+v\n", existsVerdict(res), res.StatesVisited, res.Stats)
	for i, tr := range res.Derivation {
		fmt.Fprintf(&b, "%d: %s\n", i, tr.String())
	}
	return b.String()
}

// finalAtoms renders the run's final instance in insertion order — the
// byte-identity witness for the engine's cache dimension.
func finalAtoms(run *chase.Run) string {
	var b strings.Builder
	for _, a := range run.Final.Atoms() {
		b.WriteString(a.String())
		b.WriteByte('\n')
	}
	return b.String()
}

func TestConformanceCorpus(t *testing.T) {
	files, err := filepath.Glob("testdata/conformance/*.chase")
	if err != nil || len(files) == 0 {
		t.Fatalf("no conformance corpus found: %v", err)
	}
	// The served column's daemon: ONE server (and hence one shared cache)
	// across the whole corpus, as termcheckd would run it.
	daemon := httptest.NewServer(serve.New(serve.Config{}).Handler())
	defer daemon.Close()
	for _, file := range files {
		t.Run(strings.TrimSuffix(filepath.Base(file), ".chase"), func(t *testing.T) {
			raw, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			expect := parseExpect(t, string(raw))
			prog, err := parser.Parse(string(raw))
			if err != nil {
				t.Fatal(err)
			}
			if want, ok := expect["engine"]; ok {
				runEngineColumn(t, prog, want)
			}
			if want, ok := expect["exists"]; ok {
				runExistsColumn(t, prog, want)
			}
			if want, ok := expect["decide"]; ok {
				runDecideColumn(t, prog, want, expect["decide-method"])
			}
			runPortfolioColumn(t, prog)
			runServedColumn(t, daemon.URL, string(raw), prog, expect)
		})
	}
}

// runServedColumn drives the program through the HTTP serving front end at
// the harness budgets and holds the served verdicts to the same golden
// directives as the in-process columns: the ∀∀ decision must agree with
// core.Analyze (and with decide= where the set is guarded), and exists=
// must come back verbatim over the wire.
func runServedColumn(t *testing.T, baseURL, src string, prog *parser.Program, expect map[string]string) {
	post := func(path string, req, out any) {
		t.Helper()
		raw, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(baseURL+path, "application/json", bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("served%s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("served%s: status %d", path, resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("served%s: %v", path, err)
		}
	}

	rep, err := core.Analyze(prog.TGDs, core.Options{
		GuardedOptions: guarded.DecideOptions{MaxSteps: confDecideSteps},
	})
	if err != nil {
		t.Fatalf("served: core.Analyze: %v", err)
	}
	var dec serve.DecideResponse
	post("/v1/decide", serve.DecideRequest{Program: src, GuardedBudget: confDecideSteps}, &dec)
	if dec.Verdict != rep.Conclusion.String() {
		t.Errorf("served/decide: verdict = %s, want %s (core.Analyze)", dec.Verdict, rep.Conclusion)
	}
	if want, ok := expect["decide"]; ok && dec.Verdict != want {
		t.Errorf("served/decide: verdict = %s, want %s (golden)", dec.Verdict, want)
	}
	var pf serve.DecideResponse
	post("/v1/decide", serve.DecideRequest{Program: src, Portfolio: true, GuardedBudget: confDecideSteps}, &pf)
	if pf.Verdict != rep.Conclusion.String() {
		t.Errorf("served/portfolio: verdict = %s, want %s (core.Analyze)", pf.Verdict, rep.Conclusion)
	}
	if want, ok := expect["exists"]; ok {
		var ex serve.ExistsResponse
		post("/v1/exists", serve.ExistsRequest{Program: src, MaxStates: confExistsStates, MaxAtoms: confExistsAtoms}, &ex)
		if ex.Verdict != want {
			t.Errorf("served/exists: verdict = %s, want %s (golden)", ex.Verdict, want)
		}
	}
}

// runEngineColumn chases the database with the restricted FIFO engine,
// cache off / cold / warm, expecting the golden stop reason and cache-state
// byte-identity.
func runEngineColumn(t *testing.T, prog *parser.Program, want string) {
	opts := chase.Options{Variant: chase.Restricted, Strategy: chase.FIFO, MaxSteps: confEngineSteps}
	off := chase.RunChase(prog.Database, prog.TGDs, opts)
	if off.Reason.String() != want {
		t.Errorf("engine: reason = %v, want %s", off.Reason, want)
	}
	cache := chase.NewCache()
	opts.Cache = cache
	cold := chase.RunChase(prog.Database, prog.TGDs, opts)
	warm := chase.RunChase(prog.Database, prog.TGDs, opts)
	if !warm.Activity.SeedIndexHit {
		t.Error("engine: warm run did not load the cached seed index")
	}
	opts.Cache = snapshotRoundTrip(t, cache)
	snap := chase.RunChase(prog.Database, prog.TGDs, opts)
	if !snap.Activity.SeedIndexHit {
		t.Error("engine: snapshot-warmed run did not load the cached seed index")
	}
	for label, got := range map[string]*chase.Run{"cold": cold, "warm": warm, "snap": snap} {
		if got.Reason != off.Reason || got.StepsTaken != off.StepsTaken || got.Stats != off.Stats {
			t.Errorf("engine/%s: run drifted from cache-off: reason %v/%v steps %d/%d stats %+v/%+v",
				label, got.Reason, off.Reason, got.StepsTaken, off.StepsTaken, got.Stats, off.Stats)
		}
		if finalAtoms(got) != finalAtoms(off) {
			t.Errorf("engine/%s: final instance drifted from cache-off", label)
		}
	}
}

// runExistsColumn runs the ∀∃ search sequentially and at W ∈ {2, 4},
// expecting the golden verdict at every width, then adds the sequential
// cache dimension: cold, in-process warm and snapshot→restore→warm runs
// must render bit-identically — verdict, stats and witness derivation.
func runExistsColumn(t *testing.T, prog *parser.Program, want string) {
	for _, workers := range []int{1, 2, 4} {
		res := chase.SearchTerminatingDerivation(prog.Database, prog.TGDs, chase.SearchOptions{
			MaxStates: confExistsStates,
			MaxAtoms:  confExistsAtoms,
			Workers:   workers,
		})
		if got := existsVerdict(res); got != want {
			t.Errorf("exists/workers=%d: verdict = %s, want %s", workers, got, want)
		}
	}
	opts := chase.SearchOptions{MaxStates: confExistsStates, MaxAtoms: confExistsAtoms}
	off := chase.SearchTerminatingDerivation(prog.Database, prog.TGDs, opts)
	cache := chase.NewCache()
	opts.Cache = cache
	cold := chase.SearchTerminatingDerivation(prog.Database, prog.TGDs, opts)
	warm := chase.SearchTerminatingDerivation(prog.Database, prog.TGDs, opts)
	if cache.Stats().Hits == 0 {
		t.Error("exists/warm: warm search recorded no cache hit")
	}
	restored := snapshotRoundTrip(t, cache)
	opts.Cache = restored
	snap := chase.SearchTerminatingDerivation(prog.Database, prog.TGDs, opts)
	if restored.Stats().Hits == 0 {
		t.Error("exists/snap: snapshot-warmed search recorded no cache hit")
	}
	base := existsRendering(off)
	for label, got := range map[string]*chase.ExistsResult{"cold": cold, "warm": warm, "snap": snap} {
		if r := existsRendering(got); r != base {
			t.Errorf("exists/%s: rendering drifted from cache-off:\n%s\nvs\n%s", label, r, base)
		}
	}
}

// runPortfolioColumn pins the portfolio's conclusion bit-identical to
// core.Analyze's on every corpus file, cache off / cold / warm, at the same
// budgets. The column runs unconditionally — the identity contract covers
// every class, including sets neither guarded nor sticky (both sides must
// then agree on Unknown).
func runPortfolioColumn(t *testing.T, prog *parser.Program) {
	if prog.TGDs.Len() == 0 && !prog.TGDs.HasEGDs() {
		return
	}
	rep, err := core.Analyze(prog.TGDs, core.Options{
		GuardedOptions: guarded.DecideOptions{MaxSteps: confDecideSteps},
	})
	if err != nil {
		t.Fatalf("portfolio: core.Analyze: %v", err)
	}
	opts := portfolio.Options{Guarded: guarded.DecideOptions{MaxSteps: confDecideSteps}}
	off, err := portfolio.Analyze(context.Background(), prog.TGDs, opts)
	if err != nil {
		t.Fatalf("portfolio/off: %v", err)
	}
	if off.Conclusion != rep.Conclusion {
		t.Errorf("portfolio/off: conclusion = %v, want %v (core.Analyze)", off.Conclusion, rep.Conclusion)
	}
	opts.Cache = chase.NewCache()
	cold, err := portfolio.Analyze(context.Background(), prog.TGDs, opts)
	if err != nil {
		t.Fatalf("portfolio/cold: %v", err)
	}
	if cold.CacheHit {
		t.Error("portfolio/cold: unexpected whole-run cache hit")
	}
	warm, err := portfolio.Analyze(context.Background(), prog.TGDs, opts)
	if err != nil {
		t.Fatalf("portfolio/warm: %v", err)
	}
	if !warm.CacheHit {
		t.Error("portfolio/warm: whole-run cache missed")
	}
	opts.Cache = snapshotRoundTrip(t, opts.Cache)
	snap, err := portfolio.Analyze(context.Background(), prog.TGDs, opts)
	if err != nil {
		t.Fatalf("portfolio/snap: %v", err)
	}
	if !snap.CacheHit {
		t.Error("portfolio/snap: snapshot-warmed run missed the stage ledger")
	}
	for label, got := range map[string]*portfolio.Result{"cold": cold, "warm": warm, "snap": snap} {
		if got.Conclusion != rep.Conclusion {
			t.Errorf("portfolio/%s: conclusion = %v, want %v (core.Analyze)", label, got.Conclusion, rep.Conclusion)
		}
		if got.DecidedBy != off.DecidedBy {
			t.Errorf("portfolio/%s: decided-by = %q, want %q (cache off)", label, got.DecidedBy, off.DecidedBy)
		}
	}
}

// runDecideColumn runs the guarded ∀∀ decision cache off / cold / warm and
// at worker counts {1, 2}, expecting the golden verdict (and method, when
// pinned) plus bit-identical verdicts across every cell.
func runDecideColumn(t *testing.T, prog *parser.Program, want, wantMethod string) {
	if !prog.TGDs.IsGuarded() {
		t.Fatalf("decide= directive on a non-guarded set")
	}
	base, err := guarded.Decide(prog.TGDs, guarded.DecideOptions{MaxSteps: confDecideSteps})
	if err != nil {
		t.Fatal(err)
	}
	if got := decideVerdict(base); got != want {
		t.Errorf("decide: verdict = %s, want %s", got, want)
	}
	if wantMethod != "" && base.Method != wantMethod {
		t.Errorf("decide: method = %s, want %s", base.Method, wantMethod)
	}
	for _, workers := range []int{1, 2} {
		cache := chase.NewCache()
		for _, label := range []string{"cold", "warm", "snap"} {
			if label == "snap" {
				// The snapshot cell restarts the process: the warm cache's
				// snapshot rebuilt from bytes must serve identically.
				cache = snapshotRoundTrip(t, cache)
			}
			v, err := guarded.Decide(prog.TGDs, guarded.DecideOptions{
				MaxSteps: confDecideSteps,
				Workers:  workers,
				Cache:    cache,
			})
			if err != nil {
				t.Fatal(err)
			}
			if v.Terminates != base.Terminates || v.Method != base.Method ||
				v.Evidence != base.Evidence || v.SeedsTried != base.SeedsTried || v.Budget != base.Budget {
				t.Errorf("decide/%s/workers=%d: verdict drifted: %+v vs %+v", label, workers, v, base)
			}
			switch {
			case (v.Witness == nil) != (base.Witness == nil):
				t.Errorf("decide/%s/workers=%d: witness presence drifted", label, workers)
			case v.Witness != nil && v.Witness.String() != base.Witness.String():
				t.Errorf("decide/%s/workers=%d: witness drifted:\n%s\nvs\n%s",
					label, workers, v.Witness, base.Witness)
			}
		}
		// Weak acyclicity decides before any seed is generated or chased, so
		// only seed-searching decisions can (and must) hit the cache. After
		// the loop `cache` is the snapshot-restored one, so this also pins
		// that the restored entries actually served the snap cell.
		if st := cache.Stats(); st.Hits == 0 && base.Method != "weak-acyclicity" {
			t.Errorf("decide/workers=%d: snapshot-warmed pass recorded no cache hits", workers)
		}
	}
}
