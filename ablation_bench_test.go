// Ablation benchmarks for the design choices DESIGN.md calls out: null
// naming policy, trigger strategy, positional indexing in the homomorphism
// search, and seed generation for the guarded decision. Run with
// `go test -bench=Ablation -benchmem .`
package airct_test

import (
	"fmt"
	"testing"

	"airct/internal/chase"
	"airct/internal/guarded"
	"airct/internal/instance"
	"airct/internal/logic"
	"airct/internal/workload"
)

// BenchmarkAblationNullNaming compares structural (interned, reproducible)
// against counter (cheap, order-dependent) null naming on a
// materialisation workload. Structural naming buys determinism and
// cross-derivation atom identity for one map lookup per invention.
func BenchmarkAblationNullNaming(b *testing.B) {
	prog := workload.Exchange(300, 1).Program
	for _, tc := range []struct {
		name   string
		naming chase.NullNaming
	}{
		{"structural", chase.StructuralNaming},
		{"counter", chase.CounterNaming},
	} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				run := chase.RunChase(prog.Database, prog.TGDs, chase.Options{
					Variant: chase.Restricted, Naming: tc.naming, DropSteps: true,
				})
				if !run.Terminated() {
					b.Fatal("must terminate")
				}
			}
		})
	}
}

// BenchmarkAblationStrategy compares the trigger strategies on the
// ontology workload. All three terminate here; the interesting column is
// allocations (queue discipline) and steps (LIFO reaches different
// fixpoints).
func BenchmarkAblationStrategy(b *testing.B) {
	prog := workload.Ontology(150, 1)
	for _, tc := range []struct {
		name     string
		strategy chase.Strategy
	}{
		{"fifo", chase.FIFO},
		{"lifo", chase.LIFO},
		{"random", chase.Random},
	} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				run := chase.RunChase(prog.Database, prog.TGDs, chase.Options{
					Variant: chase.Restricted, Strategy: tc.strategy, Seed: 3, DropSteps: true,
				})
				if !run.Terminated() {
					b.Fatal("must terminate")
				}
			}
		})
	}
}

// BenchmarkAblationHomSearchIndex compares homomorphism search against an
// indexed instance (positional (pred,pos,term) index) versus a plain slice
// source — the index is what makes semi-naive trigger discovery viable.
func BenchmarkAblationHomSearchIndex(b *testing.B) {
	n := 2000
	atoms := make([]logic.Atom, 0, n)
	inst := instance.New()
	for i := 0; i < n; i++ {
		a := logic.MustAtom("E",
			logic.Const(fmt.Sprintf("v%d", i)),
			logic.Const(fmt.Sprintf("v%d", i+1)))
		atoms = append(atoms, a)
		inst.Add(a)
	}
	// A 3-chain pattern anchored at a constant deep in the chain.
	pattern := []logic.Atom{
		logic.MustAtom("E", logic.Const("v1500"), logic.Var("Y")),
		logic.MustAtom("E", logic.Var("Y"), logic.Var("Z")),
		logic.MustAtom("E", logic.Var("Z"), logic.Var("W")),
	}
	slice := logic.NewSliceSource(atoms)
	b.Run("indexed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if logic.FindHomomorphism(pattern, nil, inst) == nil {
				b.Fatal("must match")
			}
		}
	})
	b.Run("unindexed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if logic.FindHomomorphism(pattern, nil, slice) == nil {
				b.Fatal("must match")
			}
		}
	})
}

// BenchmarkAblationSeedGeneration measures the guarded decision's seed
// pool construction (canonical bodies × unifications + treeification
// expansions) as the family grows.
func BenchmarkAblationSeedGeneration(b *testing.B) {
	for _, n := range []int{2, 4, 8} {
		fam := workload.GuardedLadder(n)
		b.Run(fam.Name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if seeds := guarded.GenerateSeeds(fam.Set, 256); len(seeds) == 0 {
					b.Fatal("no seeds")
				}
			}
		})
	}
}

// BenchmarkAblationExistsSearch measures the ∀∃ derivation search (future
// work Q3) against the plain engine on an order-sensitive program.
func BenchmarkAblationExistsSearch(b *testing.B) {
	prog := mustProgram(b, `
		R(a,b).
		grow: R(X,Y) -> R(Y,Z).
		swap: R(X,Y) -> R(Y,X).
	`)
	b.Run("exists-search", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res := chase.ExistsTerminatingDerivation(prog.Database, prog.TGDs, 5000, 50)
			if !res.Found {
				b.Fatal("terminating order exists")
			}
		}
	})
	b.Run("fifo-engine-budget", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			chase.RunChase(prog.Database, prog.TGDs, chase.Options{
				Variant: chase.Restricted, MaxSteps: 100, DropSteps: true,
			})
		}
	})
}
