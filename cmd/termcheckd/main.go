// Command termcheckd serves the termination-analysis API over HTTP/JSON:
// a long-lived daemon in front of the same decision procedures as the
// termcheck CLI, with ONE shared cross-run chase cache for every request.
//
//	termcheckd [-addr HOST:PORT] [-cache-file PATH] [-cache-save-every D]
//	           [-max-inflight N] [-request-timeout D] [-workers N]
//
// Endpoints: POST /v1/decide (CT^res_∀∀, plain analysis or the staged
// portfolio), POST /v1/exists (CT^res_∀∃ on the program's database),
// GET /v1/stats (cache / trigger-index / portfolio / serving counters as
// JSON), GET /healthz. Request and response shapes are internal/serve's
// codec; verdicts are pinned bit-identical to in-process analysis by the
// e2e conformance suite.
//
// The shared cache is loaded from -cache-file at startup (a missing file
// starts cold; a corrupt one is reported and ignored), snapshotted back on
// the -cache-save-every cadence and once more on graceful shutdown, so
// warm wins compound across requests AND across daemon restarts.
// Identical concurrent requests are deduplicated onto one underlying
// analysis (singleflight); -max-inflight bounds concurrently executing
// analyses, further ones are shed with 429; -request-timeout caps each
// request's wall clock, and a request whose every client disconnected is
// cancelled promptly.
//
// SIGINT/SIGTERM drain in-flight requests, cancel detached work, write the
// final cache snapshot and exit 0; startup or shutdown failures exit 3
// (matching the CLI's error code).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"airct/internal/serve"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8372", "listen address")
	cacheFile := flag.String("cache-file", "", "persistent cache snapshot: loaded at startup, saved on the -cache-save-every cadence and at shutdown")
	saveEvery := flag.Duration("cache-save-every", 30*time.Second, "background cache snapshot cadence under -cache-file (0 disables the ticker; shutdown still saves)")
	maxInflight := flag.Int("max-inflight", 0, "maximum concurrently executing analyses before requests are shed with 429 (0: 2×GOMAXPROCS)")
	requestTimeout := flag.Duration("request-timeout", 0, "wall-clock cap per request; also the default for requests without timeout-ms (0: unbounded)")
	workers := flag.Int("workers", 1, "default worker count for requests that omit workers (exists search shards, portfolio race pool)")
	adaptive := flag.Bool("adaptive", false, "give portfolio requests a shared online cost model: cheap stages reorder per workload class and the probe budget adapts, learned state persists through -cache-file (verdicts are unchanged)")
	flag.Parse()
	os.Exit(run(*addr, *cacheFile, *saveEvery, *maxInflight, *requestTimeout, *workers, *adaptive))
}

func run(addr, cacheFile string, saveEvery time.Duration, maxInflight int, requestTimeout time.Duration, workers int, adaptive bool) int {
	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "termcheckd: "+format+"\n", args...)
	}
	cache := serve.OpenCacheFile(cacheFile, logf)
	var snap *serve.Snapshotter
	if cacheFile != "" {
		snap = serve.NewSnapshotter(cache, cacheFile, saveEvery, logf)
	}
	srv := serve.New(serve.Config{
		Cache:          cache,
		MaxInflight:    maxInflight,
		DefaultTimeout: requestTimeout,
		MaxTimeout:     requestTimeout,
		Workers:        workers,
		Adaptive:       adaptive,
		Snapshot:       snap,
		Logf:           logf,
	})

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fail(err)
	}
	// The resolved address matters under :0 (tests); print it before serving
	// so a parent process can scrape the port.
	fmt.Printf("termcheckd: listening on %s\n", ln.Addr())

	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)

	code := 0
	select {
	case sig := <-sigc:
		logf("received %s, shutting down", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		if err := hs.Shutdown(ctx); err != nil {
			code = fail(err)
		}
		cancel()
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			code = fail(err)
		}
	}
	srv.Close()
	if snap != nil {
		if err := snap.Close(); err != nil {
			code = fail(err)
		}
	}
	return code
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "termcheckd:", err)
	return 3
}
