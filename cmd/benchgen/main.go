// Command benchgen emits workload programs from the parametric families:
//
//	benchgen -family NAME [-n N] [-db KIND] [-size N] [-seed N]
//
// Families: datalog-chain, existential-chain, linear-cycle, swap-intro,
// guarded-ladder, sticky-join, sticky-relay, exchange, ontology, stage-grid,
// key-graph. Database kinds (appended as facts): none, star, chain, random.
// The exchange, ontology, stage-grid and key-graph families generate their
// own facts (stage-grid is the 3^n-state ∀∃ search workload; feed it to
// `termcheck -exists -workers=N`; key-graph is the key-constrained EGD
// workload behind BENCH_egd.json — -n nodes, a key EGD merging the invented
// values that flow along the random edges).
package main

import (
	"flag"
	"fmt"
	"os"

	"airct/internal/parser"
	"airct/internal/workload"
)

func main() {
	family := flag.String("family", "", "workload family (required)")
	n := flag.Int("n", 4, "family size parameter")
	db := flag.String("db", "none", "database kind: none, star, chain, random")
	size := flag.Int("size", 10, "database size")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	switch *family {
	case "exchange":
		sc := workload.Exchange(*size, *seed)
		fmt.Print(parser.Print(sc.Program))
		return
	case "ontology":
		fmt.Print(parser.Print(workload.Ontology(*size, *seed)))
		return
	case "stage-grid":
		fmt.Print(parser.Print(workload.StageGrid(*n)))
		return
	case "key-graph":
		fmt.Printf("# family=key-graph n=%d egds=true terminates=true fails=false\n", *n)
		fmt.Print(parser.Print(workload.KeyGraph(*n, *seed)))
		return
	}

	var l workload.Labeled
	switch *family {
	case "datalog-chain":
		l = workload.DatalogChain(*n)
	case "existential-chain":
		l = workload.ExistentialChain(*n)
	case "linear-cycle":
		l = workload.LinearCycle(*n)
	case "swap-intro":
		l = workload.SwapIntro(*n)
	case "guarded-ladder":
		l = workload.GuardedLadder(*n)
	case "sticky-join":
		l = workload.StickyJoin(*n)
	case "sticky-relay":
		l = workload.StickyRelay(*n)
	default:
		fmt.Fprintf(os.Stderr, "benchgen: unknown family %q\n", *family)
		os.Exit(3)
	}

	fmt.Printf("# family=%s n=%d guarded=%v sticky=%v linear=%v terminates=%v\n",
		l.Name, *n, l.Guarded, l.Sticky, l.Linear, l.Terminates)
	switch *db {
	case "none":
	case "star":
		for _, a := range workload.StarDatabase(firstPred(l), *size).Atoms() {
			fmt.Printf("%v.\n", a)
		}
	case "chain":
		for _, a := range workload.ChainDatabase(firstPred(l), *size).Atoms() {
			fmt.Printf("%v.\n", a)
		}
	case "random":
		for _, a := range workload.RandomDatabase(l.Set.Schema(), *size, *size/2+1, *seed).Atoms() {
			fmt.Printf("%v.\n", a)
		}
	default:
		fmt.Fprintf(os.Stderr, "benchgen: unknown db kind %q\n", *db)
		os.Exit(3)
	}
	fmt.Print(l.Source)
}

// firstPred picks a binary predicate of the family for the structured
// database generators, defaulting to the first predicate.
func firstPred(l workload.Labeled) string {
	for _, p := range l.Set.Schema().Predicates() {
		if p.Arity == 2 {
			return p.Name
		}
	}
	return l.Set.Schema().Predicates()[0].Name
}
