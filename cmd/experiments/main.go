// Command experiments runs the E1–E11 experiment suite of EXPERIMENTS.md
// and prints the result tables. Every experiment reproduces an observable
// claim of the paper (worked example, theorem equivalence, or complexity
// shape); the tables printed here are the ones recorded in EXPERIMENTS.md.
//
//	experiments [-only E1,E7] [-quick]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"airct/internal/acyclicity"
	"airct/internal/buchi"
	"airct/internal/chase"
	"airct/internal/core"
	"airct/internal/critical"
	"airct/internal/fairness"
	"airct/internal/guarded"
	"airct/internal/jointree"
	"airct/internal/ochase"
	"airct/internal/parser"
	"airct/internal/portfolio"
	"airct/internal/sticky"
	"airct/internal/workload"
)

var quick = flag.Bool("quick", false, "smaller parameter sweeps")

func main() {
	only := flag.String("only", "", "comma-separated experiment IDs (default: all)")
	flag.Parse()
	selected := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			selected[strings.TrimSpace(strings.ToUpper(id))] = true
		}
	}
	all := []struct {
		id   string
		name string
		run  func()
	}{
		{"E1", "restricted vs oblivious instance size (intro example)", e1},
		{"E2", "real oblivious chase: multiset vs set (Example 3.2/3.4)", e2},
		{"E3", "Fairness Theorem: repair vs multi-head collapse (Thm 4.1, Ex. B.1)", e3},
		{"E4", "chaseable sets ⇔ derivations (Theorem 5.3 round trip)", e4},
		{"E5", "treeification (Example 5.6, Theorem 5.5)", e5},
		{"E6", "guarded decision CT_res_∀∀(G) (Theorem 5.1)", e6},
		{"E7", "sticky decision via Büchi emptiness (Theorem 6.1)", e7},
		{"E8", "bounded-gap witnesses (Observation 1)", e8},
		{"E9", "baseline coverage on the labeled corpus", e9},
		{"E10", "chase engine throughput", e10},
		{"E11", "portfolio stage attribution on the labeled corpus", e11},
	}
	for _, e := range all {
		if len(selected) > 0 && !selected[e.id] {
			continue
		}
		fmt.Printf("## %s — %s\n\n", e.id, e.name)
		e.run()
		fmt.Println()
	}
}

func mustSet(src string) *parser.Program {
	prog, err := parser.Parse(src)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(3)
	}
	return prog
}

func e1() {
	fmt.Println("| database | restricted atoms | restricted steps | oblivious atoms (budget 5000) | oblivious terminated |")
	fmt.Println("|---|---|---|---|---|")
	sizes := []int{1, 10, 100, 1000}
	if *quick {
		sizes = []int{1, 10, 100}
	}
	for _, n := range sizes {
		db := workload.StarDatabase("R", n)
		set := mustSet(`R(X,Y) -> R(X,Z).`).TGDs
		res := chase.RunChase(db, set, chase.Options{Variant: chase.Restricted, DropSteps: true})
		obl := chase.RunChase(db, set, chase.Options{Variant: chase.Oblivious, MaxSteps: 5000, DropSteps: true})
		fmt.Printf("| star(%d) | %d | %d | %d | %v |\n",
			n, res.Final.Len(), res.StepsTaken, obl.Final.Len(), obl.Terminated())
	}
}

func e2() {
	prog := mustSet(`
		P(a,b).
		s1: P(X,Y) -> R(X,Y).
		s2: P(X,Y) -> S(X).
		s3: R(X,Y) -> S(X).
		s4: S(X) -> R(X,Y).
	`)
	fmt.Println("| node bound | multiset nodes | distinct atoms (= oblivious chase) | complete |")
	fmt.Println("|---|---|---|---|")
	for _, bound := range []int{10, 50, 200, 1000} {
		g := ochase.Build(prog.Database, prog.TGDs, ochase.BuildOptions{MaxNodes: bound})
		fmt.Printf("| %d | %d | %d | %v |\n", bound, g.MultisetSize(), g.AtomSet().Len(), g.Complete)
	}
}

func e3() {
	fmt.Println("| program | horizon | rounds | FairUpTo | extensible after repair |")
	fmt.Println("|---|---|---|---|---|")
	single := mustSet(`
		S(a). P(a).
		grow: S(X) -> R(X,Y).
		next: R(X,Y) -> S(Y).
		want: P(X) -> Q(X).
	`)
	starve := func(d *chase.Derivation) (chase.Trigger, bool) {
		for _, tr := range d.Active() {
			if tr.TGD.Label != "want" {
				return tr, true
			}
		}
		return chase.Trigger{}, false
	}
	multi := mustSet(`
		R(a,b,b).
		mh1: R(X,Y,Y) -> R(X,Z,Y), R(Z,Y,Y).
		mh2: R(X,Y,Z) -> R(Z,Z,Z).
	`)
	horizons := []int{8, 16, 32}
	if *quick {
		horizons = []int{8, 16}
	}
	for _, h := range horizons {
		_, rep, err := fairness.Fairize(single.Database, single.TGDs, starve, h)
		if err != nil {
			fmt.Printf("| single-head ladder | %d | error: %v |\n", h, err)
			continue
		}
		fmt.Printf("| single-head ladder | %d | %d | %d | %v |\n", h, rep.Rounds, rep.FairUpTo, rep.ExtensibleAfter)
	}
	for _, h := range horizons {
		_, rep, err := fairness.Fairize(multi.Database, multi.TGDs, fairness.OnlyTGD("mh1"), h)
		if err != nil {
			fmt.Printf("| Example B.1 (multi-head) | %d | error: %v |\n", h, err)
			continue
		}
		fmt.Printf("| Example B.1 (multi-head) | %d | %d | %d | %v |\n", h, rep.Rounds, rep.FairUpTo, rep.ExtensibleAfter)
	}
}

func e4() {
	fmt.Println("| program | derivation steps | chaseable |A| | extraction replays | instances equal |")
	fmt.Println("|---|---|---|---|---|")
	progs := map[string]string{
		"example-3.2": `
			P(a,b).
			s1: P(X,Y) -> R(X,Y). s2: P(X,Y) -> S(X).
			s3: R(X,Y) -> S(X).   s4: S(X) -> R(X,Y).`,
		"join": `
			R(a,b). S(b,c).
			t1: S(X,Y) -> T(X).
			t2: R(X,Y), T(Y) -> P(X,Y).
			t3: P(X,Y) -> Q(Y).`,
	}
	names := sortedKeys(progs)
	for _, name := range names {
		prog := mustSet(progs[name])
		run := chase.RunChase(prog.Database, prog.TGDs, chase.Options{Variant: chase.Restricted})
		g := ochase.Build(prog.Database, prog.TGDs, ochase.BuildOptions{MaxNodes: 5000})
		A, err := ochase.ChaseableFromRun(g, run)
		if err != nil {
			fmt.Printf("| %s | error: %v |\n", name, err)
			continue
		}
		d, err := g.ExtractDerivation(A)
		ok := err == nil
		equal := ok && d.Instance().Equal(run.Final)
		fmt.Printf("| %s | %d | %d | %v | %v |\n", name, len(run.Steps), len(A), ok, equal)
	}
}

func e5() {
	prog := mustSet(`
		R(a,b). S(b,c).
		s1: S(X,Y) -> T(X).
		s2: R(X,Y), T(Y) -> P(X,Y).
		s3: P(X,Y) -> P(Y,Z).
	`)
	g := ochase.Build(prog.Database, prog.TGDs, ochase.BuildOptions{MaxNodes: 400, MaxDepth: 8})
	tr, err := guarded.Treeify(g, guarded.TreeifyOptions{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	dac := tr.Database()
	naive := mustSet(`R(a,b). s1: S(X,Y) -> T(X). s2: R(X,Y), T(Y) -> P(X,Y). s3: P(X,Y) -> P(Y,Z).`)
	naiveRun := chase.RunChase(naive.Database, naive.TGDs, chase.Options{Variant: chase.Restricted, MaxSteps: 200, DropSteps: true})
	dacRun := chase.RunChase(dac, prog.TGDs, chase.Options{Variant: chase.Restricted, MaxSteps: 200, DropSteps: true})
	critDB := critical.Instance(prog.TGDs)
	critRun := chase.RunChase(critDB, prog.TGDs, chase.Options{Variant: chase.Restricted, MaxSteps: 200, DropSteps: true})
	fmt.Println("| database | atoms | acyclic | restricted chase (budget 200) |")
	fmt.Println("|---|---|---|---|")
	fmt.Printf("| D = {R(a,b), S(b,c)} | 2 | %v | diverges (by construction) |\n", jointree.IsAcyclic(prog.Database.Atoms()))
	fmt.Printf("| naive α∞ only {R(a,b)} | 1 | true | terminates after %d steps |\n", naiveRun.StepsTaken)
	fmt.Printf("| critical D* | %d | %v | %s |\n", critDB.Len(), jointree.IsAcyclic(critDB.Atoms()), verdictOf(critRun))
	fmt.Printf("| treeified D_ac | %d | %v | %s |\n", dac.Len(), jointree.IsAcyclic(dac.Atoms()), verdictOf(dacRun))
	fmt.Printf("\nα∞ = %v, ℓ∞ = %d, longs-for edges = %d\n", tr.AlphaInf, tr.EllInf, len(tr.LongsFor))
}

func verdictOf(run *chase.Run) string {
	if run.Terminated() {
		return fmt.Sprintf("terminates after %d steps", run.StepsTaken)
	}
	return "diverges (budget exhausted)"
}

func e6() {
	fmt.Println("| family | n | ground truth | verdict | method | seeds | time |")
	fmt.Println("|---|---|---|---|---|---|---|")
	ns := []int{2, 4, 8, 16}
	if *quick {
		ns = []int{2, 4}
	}
	for _, n := range ns {
		for _, fam := range []workload.Labeled{workload.ExistentialChain(n), workload.SwapIntro(n), workload.LinearCycle(n), workload.GuardedLadder(n)} {
			if !fam.Set.IsGuarded() {
				continue
			}
			start := time.Now()
			v, err := guarded.Decide(fam.Set, guarded.DecideOptions{MaxSteps: 800})
			el := time.Since(start)
			if err != nil {
				fmt.Printf("| %s | %d | - | error: %v |\n", fam.Name, n, err)
				continue
			}
			fmt.Printf("| %s | %d | %s | %s | %s | %d | %s |\n",
				fam.Name, n, terminatesWord(fam.Terminates), terminatesWord(v.Terminates),
				v.Method, v.SeedsTried, el.Round(time.Millisecond))
		}
	}
}

func terminatesWord(b bool) string {
	if b {
		return "terminates"
	}
	return "diverges"
}

func e7() {
	fmt.Println("| family | n | ground truth | verdict | states explored | time |")
	fmt.Println("|---|---|---|---|---|---|")
	ns := []int{2, 4, 8}
	if *quick {
		ns = []int{2, 4}
	}
	for _, n := range ns {
		for _, fam := range []workload.Labeled{workload.StickyJoin(n), workload.StickyRelay(n), workload.LinearCycle(n), workload.SwapIntro(n)} {
			if !fam.Set.IsSticky() {
				continue
			}
			start := time.Now()
			v, err := sticky.Decide(fam.Set, sticky.DecideOptions{})
			el := time.Since(start)
			if err != nil {
				fmt.Printf("| %s | %d | - | error: %v |\n", fam.Name, n, err)
				continue
			}
			fmt.Printf("| %s | %d | %s | %s | %d | %s |\n",
				fam.Name, n, terminatesWord(fam.Terminates), terminatesWord(v.Terminates),
				v.StatesExplored, el.Round(time.Millisecond))
		}
	}
}

func e8() {
	fmt.Println("| diverging family | lasso prefix | lasso cycle | gap | gap ≤ states |")
	fmt.Println("|---|---|---|---|---|")
	for _, fam := range []workload.Labeled{workload.StickyRelay(2), workload.StickyRelay(4), workload.LinearCycle(2), workload.LinearCycle(4)} {
		v, err := sticky.Decide(fam.Set, sticky.DecideOptions{})
		if err != nil || v.Terminates {
			fmt.Printf("| %s | unexpected: %v %v |\n", fam.Name, v, err)
			continue
		}
		// Re-explore the witnessing component for the state count.
		a, err := sticky.BuildAutomaton(fam.Set, *v.Seed)
		if err != nil {
			fmt.Printf("| %s | error: %v |\n", fam.Name, err)
			continue
		}
		e := buchi.Explore(a, 0)
		fmt.Printf("| %s | %d | %d | %d | %v |\n",
			fam.Name, len(v.Lasso.Prefix), len(v.Lasso.Cycle), v.Lasso.Gap, v.Lasso.Gap <= e.Len())
	}
}

func e9() {
	type row struct {
		accepted, correct, applicable int
	}
	results := map[string]*row{
		"weak acyclicity":  {},
		"joint acyclicity": {},
		"MFA (critical)":   {},
		"analyzer (ours)":  {},
	}
	corpus := workload.Corpus()
	terminating := 0
	for _, l := range corpus {
		if l.Terminates {
			terminating++
		}
		wa := acyclicity.IsWeaklyAcyclic(l.Set)
		ja := acyclicity.IsJointlyAcyclic(l.Set)
		mfa := acyclicity.CheckMFA(l.Set, 20000).Acyclic
		score := func(name string, accepted bool) {
			r := results[name]
			r.applicable++
			if accepted {
				r.accepted++
				if l.Terminates {
					r.correct++
				}
			}
		}
		score("weak acyclicity", wa)
		score("joint acyclicity", ja)
		score("MFA (critical)", mfa)
		rep, err := core.Analyze(l.Set, core.Options{})
		if err == nil {
			score("analyzer (ours)", rep.Conclusion == core.Terminates)
		}
	}
	fmt.Printf("corpus: %d programs, %d terminating\n\n", len(corpus), terminating)
	fmt.Println("| checker | accepts | of which correct | coverage of terminating |")
	fmt.Println("|---|---|---|---|")
	for _, name := range []string{"weak acyclicity", "joint acyclicity", "MFA (critical)", "analyzer (ours)"} {
		r := results[name]
		fmt.Printf("| %s | %d | %d | %d/%d |\n", name, r.accepted, r.correct, r.correct, terminating)
	}
}

func e10() {
	fmt.Println("| workload | variant | steps | atoms | atoms/ms |")
	fmt.Println("|---|---|---|---|---|")
	n := 400
	if *quick {
		n = 100
	}
	onto := workload.Ontology(n, 1)
	exch := workload.Exchange(n, 1)
	for _, w := range []struct {
		name string
		prog *parser.Program
	}{{"ontology", onto}, {"exchange", exch.Program}} {
		for _, v := range []chase.Variant{chase.Restricted, chase.SemiOblivious, chase.Oblivious} {
			start := time.Now()
			run := chase.RunChase(w.prog.Database, w.prog.TGDs, chase.Options{Variant: v, MaxSteps: 500000, DropSteps: true})
			el := time.Since(start)
			rate := float64(run.Final.Len()) / (float64(el.Microseconds())/1000 + 1e-9)
			fmt.Printf("| %s(%d) | %s | %d | %d | %.1f |\n", w.name, n, v, run.StepsTaken, run.Final.Len(), rate)
		}
	}
}

// e11 runs the staged portfolio over the whole labeled corpus with one
// shared cross-run cache and aggregates which stage decides which program:
// attempts, decisions and cumulative in-stage time per stage, plus a
// drift count against core.Analyze (which must be zero — the portfolio's
// conclusion-identity contract).
func e11() {
	cache := chase.NewCache()
	type agg struct {
		tier               int
		attempted, decided int
		elapsed            time.Duration
	}
	stages := map[string]*agg{}
	var order []string
	mismatches, undecided := 0, 0
	corpus := workload.Corpus()
	for _, l := range corpus {
		rep, err := core.Analyze(l.Set, core.Options{})
		if err != nil {
			fmt.Printf("core.Analyze(%s): %v\n", l.Name, err)
			continue
		}
		res, err := portfolio.Analyze(context.Background(), l.Set, portfolio.Options{Cache: cache})
		if err != nil {
			fmt.Printf("portfolio.Analyze(%s): %v\n", l.Name, err)
			continue
		}
		if res.Conclusion != rep.Conclusion {
			mismatches++
			fmt.Printf("DRIFT on %s: portfolio %v vs analyzer %v\n", l.Name, res.Conclusion, rep.Conclusion)
		}
		if res.Conclusion == core.Unknown {
			undecided++
		}
		for _, s := range res.Stages {
			a := stages[s.Stage]
			if a == nil {
				a = &agg{tier: s.Tier}
				stages[s.Stage] = a
				order = append(order, s.Stage)
			}
			if s.Detail != "skipped: an earlier stage decided" {
				a.attempted++
			}
			if s.Decided {
				a.decided++
			}
			a.elapsed += s.Duration
		}
	}
	fmt.Printf("corpus: %d programs, %d undecided, %d conclusion mismatches vs core.Analyze (must be 0)\n\n",
		len(corpus), undecided, mismatches)
	fmt.Println("| stage | tier | attempted | decided | cumulative time |")
	fmt.Println("|---|---|---|---|---|")
	for _, name := range order {
		a := stages[name]
		fmt.Printf("| %s | %d | %d | %d | %s |\n", name, a.tier, a.attempted, a.decided, a.elapsed.Round(time.Microsecond))
	}
	st := cache.Stats()
	fmt.Printf("\nshared cache: hits=%d misses=%d entries=%d bytes=%d\n", st.Hits, st.Misses, st.Entries, st.Bytes)
}

func sortedKeys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
