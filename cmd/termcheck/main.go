// Command termcheck decides all-instances restricted chase termination
// (CT^res_∀∀ membership) for a TGD program:
//
//	termcheck [-guarded-budget N] [-sticky-states N] [file]
//
// The program is read from the file argument or stdin. Facts in the input
// are ignored for the decision (the question is all-instances) but are
// reported. Exit status: 0 terminating, 1 diverging, 2 unknown, 3 error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"airct/internal/core"
	"airct/internal/guarded"
	"airct/internal/parser"
	"airct/internal/sticky"
)

func main() {
	guardedBudget := flag.Int("guarded-budget", 2000, "per-seed chase step budget for the guarded search")
	stickyStates := flag.Int("sticky-states", 200000, "state bound per sticky Büchi component")
	flag.Parse()

	src, err := readInput(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	prog, err := parser.Parse(src)
	if err != nil {
		fail(err)
	}
	if prog.TGDs.Len() == 0 {
		fail(fmt.Errorf("no TGDs in input"))
	}
	if prog.Database.Len() > 0 {
		fmt.Printf("note: %d facts ignored (the question is all-instances)\n", prog.Database.Len())
	}
	rep, err := core.Analyze(prog.TGDs, core.Options{
		GuardedOptions: guarded.DecideOptions{MaxSteps: *guardedBudget},
		StickyOptions:  sticky.DecideOptions{MaxStates: *stickyStates},
	})
	if err != nil {
		fail(err)
	}
	fmt.Printf("set: %d TGDs over %d predicates\n", prog.TGDs.Len(), prog.TGDs.Schema().Len())
	fmt.Print(rep.Summary())
	switch rep.Conclusion {
	case core.Terminates:
		os.Exit(0)
	case core.Diverges:
		os.Exit(1)
	default:
		os.Exit(2)
	}
}

func readInput(path string) (string, error) {
	if path == "" || path == "-" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "termcheck:", err)
	os.Exit(3)
}
