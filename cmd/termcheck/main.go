// Command termcheck decides all-instances restricted chase termination
// (CT^res_∀∀ membership) for a TGD program:
//
//	termcheck [-guarded-budget N] [-sticky-states N] [file]
//
// The program is read from the file argument or stdin. Facts in the input
// are ignored for the decision (the question is all-instances) but are
// reported. Exit status: 0 terminating, 1 diverging, 2 unknown, 3 error.
//
// With -exists the question changes to the paper's open question (3),
// CT^res_∀∃ on the *given* database: does some trigger order reach a
// fixpoint? The fingerprint-memoised derivation search runs with the
// -exists-states/-exists-atoms budgets and the -exists-strategy frontier
// discipline; -workers N shards the search across N parallel workers, each
// with a private interner (verdicts are worker-count invariant). Exit
// status: 0 a finite derivation exists (and a witness is printed), 1 the
// bounded space was exhausted (every derivation is infinite), 2 a budget
// stopped the search, 3 error.
//
// -portfolio answers the ∀∀ question through the staged decider portfolio
// (internal/portfolio): Tier 0 cheap sufficient conditions in cost order,
// Tier 1 a k-round chase probe over the guarded seed pool (-probe-steps),
// Tier 2 the semantic deciders raced on -workers workers with context
// cancellation for the losers. The conclusion — and hence the exit code —
// is pinned bit-identical to the plain analysis; a `portfolio:` line
// reports the verdict, the deciding stage and per-stage work. Facts in the
// input feed a non-authoritative ∀∃ racer whose outcome is reported but
// never concludes.
//
// -cache routes the run through a cross-run chase cache
// (internal/chase/cache.go): seed pools, seed chase outcomes, the engine's
// initial trigger queues, sticky Büchi lasso verdicts, whole portfolio
// runs and whole -exists search outcomes are memoised on (TGD-set
// fingerprint, instance fingerprint) keys, and a `cache:` stats line
// reports hits/misses/entries/bytes and stripe evictions. Verdicts are
// bit-identical with and without the cache.
//
// -cache-file PATH makes that cache persistent (and implies -cache): an
// existing snapshot at PATH is loaded before the run — a corrupt or
// version-mismatched file is reported and ignored, never fatal — and the
// cache is snapshotted back to PATH on exit via an atomic rename, so warm
// wins compound across invocations. The format is the versioned,
// checksummed binary layout of internal/chase/snapshot.go.
//
// -cpuprofile/-memprofile write pprof profiles of whichever question was
// asked, so hot-spot claims about the decision procedures and the search
// (like the trigger-index numbers in BENCH_delta.json) are reproducible
// straight from the CLI: `go tool pprof termcheck cpu.out`.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"airct/internal/chase"
	"airct/internal/core"
	"airct/internal/guarded"
	"airct/internal/parser"
	"airct/internal/portfolio"
	"airct/internal/serve"
	"airct/internal/sticky"
)

func main() {
	guardedBudget := flag.Int("guarded-budget", 2000, "per-seed chase step budget for the guarded search")
	stickyStates := flag.Int("sticky-states", 200000, "state bound per sticky Büchi component")
	exists := flag.Bool("exists", false, "search for a finite derivation of the input database (CT^res_∀∃) instead of deciding all-instances termination")
	existsStates := flag.Int("exists-states", 10000, "state budget for the -exists search")
	existsAtoms := flag.Int("exists-atoms", 200, "per-instance atom bound for the -exists search")
	existsStrategy := flag.String("exists-strategy", "smallest", "frontier discipline for the -exists search: smallest, bfs, dfs or index")
	usePortfolio := flag.Bool("portfolio", false, "answer the all-instances question through the staged decider portfolio (cheap checks, k-round probe, raced semantic deciders)")
	probeSteps := flag.Int("probe-steps", guarded.DefaultProbeSteps, "per-seed step budget k of the -portfolio Tier 1 probe")
	adaptive := flag.Bool("adaptive", false, "let an online cost model reorder the -portfolio cheap stages per workload class and pick the probe budget (persists through -cache-file; verdicts are unchanged; an explicit -probe-steps is respected)")
	workers := flag.Int("workers", 1, "parallel workers for the -exists search and the -portfolio Tier 2 race (1 = sequential)")
	useCache := flag.Bool("cache", false, "memoise chase work (guarded seeds, sticky Büchi verdicts, -exists searches, portfolio runs) in a cross-run cache and report a cache: stats line")
	cacheFile := flag.String("cache-file", "", "persist the cross-run cache: load the snapshot at this path if it exists and save it back atomically on exit (implies -cache)")
	cacheSaveEvery := flag.Duration("cache-save-every", 0, "also snapshot the -cache-file cache on this cadence during the run, so a crash loses at most one interval of warm work (0: save at exit only)")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to the file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile to the file before exiting")
	flag.Parse()

	// All exits funnel through this point so the deferred profile writers
	// run: os.Exit anywhere deeper would silently truncate the profiles. A
	// failed heap-profile write overrides the verdict code with 3, matching
	// the -cpuprofile error contract.
	os.Exit(func() (code int) {
		if *cpuprofile != "" {
			f, err := os.Create(*cpuprofile)
			if err != nil {
				return fail(err)
			}
			defer f.Close()
			if err := pprof.StartCPUProfile(f); err != nil {
				return fail(err)
			}
			defer pprof.StopCPUProfile()
		}
		if *memprofile != "" {
			defer func() {
				if err := writeHeapProfile(*memprofile); err != nil {
					code = fail(err)
				}
			}()
		}
		resolvedProbe := *probeSteps
		if *adaptive {
			// Under -adaptive an unset -probe-steps means "let the model
			// pick"; an explicit value wins either way.
			resolvedProbe = 0
			flag.Visit(func(f *flag.Flag) {
				if f.Name == "probe-steps" {
					resolvedProbe = *probeSteps
				}
			})
		}
		return run(*guardedBudget, *stickyStates, *exists, *existsStates, *existsAtoms, *existsStrategy, *usePortfolio, resolvedProbe, *adaptive, *workers, *useCache, *cacheFile, *cacheSaveEvery)
	}())
}

func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC() // materialise the retained heap before snapshotting
	return pprof.WriteHeapProfile(f)
}

func run(guardedBudget, stickyStates int, exists bool, existsStates, existsAtoms int, existsStrategy string, usePortfolio bool, probeSteps int, adaptive bool, workers int, useCache bool, cacheFile string, cacheSaveEvery time.Duration) int {
	src, err := readInput(flag.Arg(0))
	if err != nil {
		return fail(err)
	}
	prog, err := parser.Parse(src)
	if err != nil {
		return fail(err)
	}
	if prog.TGDs.Len() == 0 && !prog.TGDs.HasEGDs() {
		return fail(fmt.Errorf("no TGDs in input"))
	}
	if exists && prog.TGDs.HasEGDs() {
		return fail(fmt.Errorf("-exists is TGD-only: the derivation search does not model equality steps"))
	}
	if exists && usePortfolio {
		return fail(fmt.Errorf("-exists and -portfolio ask different questions; choose one"))
	}
	cache := openCache(useCache, cacheFile)
	var snap *serve.Snapshotter
	if cache != nil && cacheFile != "" {
		// The snapshotter owns persistence: a background ticker under
		// -cache-save-every (so a killed run keeps its last interval of warm
		// work), plus the historic save-at-exit on Close.
		snap = serve.NewSnapshotter(cache, cacheFile, cacheSaveEvery, logfStderr)
	}
	code := func() int {
		if exists {
			return runExists(prog, existsStates, existsAtoms, existsStrategy, workers, cache)
		}
		if usePortfolio {
			return runPortfolio(prog, guardedBudget, stickyStates, existsStates, existsAtoms, probeSteps, adaptive, workers, cache)
		}
		return runAnalyze(prog, guardedBudget, stickyStates, cache)
	}()
	if snap != nil {
		if err := snap.Close(); err != nil {
			return fail(err)
		}
	}
	return code
}

func logfStderr(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "termcheck: "+format+"\n", args...)
}

// openCache builds the run's shared cache: empty under plain -cache, warm
// under -cache-file when a loadable snapshot exists (the shared loader in
// internal/serve reports corrupt or partial snapshots to stderr and never
// turns a decidable input into an error).
func openCache(useCache bool, cacheFile string) *chase.Cache {
	if !useCache && cacheFile == "" {
		return nil
	}
	if cacheFile != "" {
		return serve.OpenCacheFile(cacheFile, logfStderr)
	}
	return chase.NewCache()
}

func printCacheStats(cache *chase.Cache) {
	if cache == nil {
		return
	}
	fmt.Println(cache.Stats().String())
}

// runAnalyze answers the ∀∀ question through the plain sequential analysis.
func runAnalyze(prog *parser.Program, guardedBudget, stickyStates int, cache *chase.Cache) int {
	if prog.Database.Len() > 0 {
		fmt.Printf("note: %d facts ignored (the question is all-instances)\n", prog.Database.Len())
	}
	rep, err := core.Analyze(prog.TGDs, core.Options{
		GuardedOptions: guarded.DecideOptions{MaxSteps: guardedBudget, Cache: cache},
		StickyOptions:  sticky.DecideOptions{MaxStates: stickyStates, Cache: cache},
	})
	if err != nil {
		return fail(err)
	}
	fmt.Print(setLine(prog))
	fmt.Print(rep.Summary())
	printCacheStats(cache)
	switch rep.Conclusion {
	case core.Terminates:
		return 0
	case core.Diverges:
		return 1
	default:
		return 2
	}
}

// runPortfolio answers the ∀∀ question through the staged portfolio and
// reports per-stage work. The exit code funnel matches the plain analysis:
// the portfolio's conclusion is pinned bit-identical to core.Analyze's.
func runPortfolio(prog *parser.Program, guardedBudget, stickyStates, existsStates, existsAtoms, probeSteps int, adaptive bool, workers int, cache *chase.Cache) int {
	opts := portfolio.Options{
		Guarded:    guarded.DecideOptions{MaxSteps: guardedBudget},
		Sticky:     sticky.DecideOptions{MaxStates: stickyStates},
		ProbeSteps: probeSteps,
		Workers:    workers,
		Cache:      cache,
	}
	if adaptive {
		// A one-shot process only benefits across runs: the model pulls
		// learned state from the cache (warm under -cache-file) and pushes
		// this run's observations back before the exit snapshot.
		opts.Model = portfolio.NewCostModel()
	}
	if prog.Database.Len() > 0 {
		fmt.Printf("note: %d facts feed the non-authoritative ∀∃ racer only (the question is all-instances)\n", prog.Database.Len())
		opts.Database = prog.Database
		opts.Exists = chase.SearchOptions{MaxStates: existsStates, MaxAtoms: existsAtoms}
	}
	start := time.Now()
	res, err := portfolio.Analyze(context.Background(), prog.TGDs, opts)
	if err != nil {
		return fail(err)
	}
	elapsed := time.Since(start)
	fmt.Print(setLine(prog))
	fmt.Printf("portfolio: verdict=%s decided-by=%s stages=%d cache-hit=%t elapsed=%s\n",
		res.Conclusion, orDash(res.DecidedBy), len(res.Stages), res.CacheHit, elapsed.Round(time.Microsecond))
	for _, s := range res.Stages {
		fmt.Printf("portfolio-stage: name=%s tier=%d decided=%t verdict=%s steps=%d saturated=%d/%d depth=%d elapsed=%s detail=%q\n",
			s.Stage, s.Tier, s.Decided, s.Conclusion, s.Steps, s.Saturated, s.Seeds, s.Depth, s.Duration.Round(time.Microsecond), s.Detail)
	}
	printCacheStats(cache)
	switch res.Conclusion {
	case core.Terminates:
		return 0
	case core.Diverges:
		return 1
	default:
		return 2
	}
}

// setLine renders the input summary; EGD counts appear only when present,
// keeping TGD-only output byte-identical to earlier versions.
func setLine(prog *parser.Program) string {
	if prog.TGDs.HasEGDs() {
		return fmt.Sprintf("set: %d TGDs + %d EGDs over %d predicates\n",
			prog.TGDs.Len(), prog.TGDs.NumEGDs(), prog.TGDs.Schema().Len())
	}
	return fmt.Sprintf("set: %d TGDs over %d predicates\n", prog.TGDs.Len(), prog.TGDs.Schema().Len())
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

// runExists runs the ∀∃ derivation search on the program's database and
// returns the search's verdict as an exit code.
func runExists(prog *parser.Program, maxStates, maxAtoms int, strategy string, workers int, cache *chase.Cache) int {
	if prog.Database.Len() == 0 {
		return fail(fmt.Errorf("-exists needs facts in the input (the question is per-database)"))
	}
	if workers < 1 {
		return fail(fmt.Errorf("-workers must be at least 1"))
	}
	strat, err := chase.ParseSearchStrategy(strategy)
	if err != nil {
		return fail(err)
	}
	res := chase.SearchTerminatingDerivation(prog.Database, prog.TGDs, chase.SearchOptions{
		MaxStates: maxStates,
		MaxAtoms:  maxAtoms,
		Strategy:  strat,
		Workers:   workers,
		Cache:     cache,
	})
	fmt.Printf("exists-search: strategy=%s workers=%d states=%d expanded=%d memo-hits=%d peak-frontier=%d\n",
		strat, workers, res.StatesVisited, res.Stats.StatesExpanded, res.Stats.MemoHits, res.Stats.PeakFrontier)
	fmt.Printf("trigger-index: repairs=%d rebuilds=%d activity-rechecks=%d\n",
		res.Stats.IndexRepairs, res.Stats.IndexRebuilds, res.Stats.ActivityRechecks)
	printCacheStats(cache)
	switch {
	case res.Found:
		fmt.Printf("finite derivation exists: %d steps\n", len(res.Derivation))
		for i, tr := range res.Derivation {
			fmt.Printf("  %d: %s\n", i, tr)
		}
		return 0
	case res.Exhausted:
		fmt.Println("no finite derivation: the bounded space is exhausted (every derivation is infinite)")
		return 1
	default:
		fmt.Println("unknown: the search budget was reached before exhausting the space")
		return 2
	}
}

func readInput(path string) (string, error) {
	if path == "" || path == "-" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "termcheck:", err)
	return 3
}
