// Command termcheck decides all-instances restricted chase termination
// (CT^res_∀∀ membership) for a TGD program:
//
//	termcheck [-guarded-budget N] [-sticky-states N] [file]
//
// The program is read from the file argument or stdin. Facts in the input
// are ignored for the decision (the question is all-instances) but are
// reported. Exit status: 0 terminating, 1 diverging, 2 unknown, 3 error.
//
// With -exists the question changes to the paper's open question (3),
// CT^res_∀∃ on the *given* database: does some trigger order reach a
// fixpoint? The fingerprint-memoised derivation search runs with the
// -exists-states/-exists-atoms budgets and the -exists-strategy frontier
// discipline; -workers N shards the search across N parallel workers, each
// with a private interner (verdicts are worker-count invariant). Exit
// status: 0 a finite derivation exists (and a witness is printed), 1 the
// bounded space was exhausted (every derivation is infinite), 2 a budget
// stopped the search, 3 error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"airct/internal/chase"
	"airct/internal/core"
	"airct/internal/guarded"
	"airct/internal/parser"
	"airct/internal/sticky"
)

func main() {
	guardedBudget := flag.Int("guarded-budget", 2000, "per-seed chase step budget for the guarded search")
	stickyStates := flag.Int("sticky-states", 200000, "state bound per sticky Büchi component")
	exists := flag.Bool("exists", false, "search for a finite derivation of the input database (CT^res_∀∃) instead of deciding all-instances termination")
	existsStates := flag.Int("exists-states", 10000, "state budget for the -exists search")
	existsAtoms := flag.Int("exists-atoms", 200, "per-instance atom bound for the -exists search")
	existsStrategy := flag.String("exists-strategy", "smallest", "frontier discipline for the -exists search: smallest, bfs or dfs")
	workers := flag.Int("workers", 1, "parallel workers for the -exists search (1 = sequential)")
	flag.Parse()

	src, err := readInput(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	prog, err := parser.Parse(src)
	if err != nil {
		fail(err)
	}
	if prog.TGDs.Len() == 0 {
		fail(fmt.Errorf("no TGDs in input"))
	}
	if *exists {
		runExists(prog, *existsStates, *existsAtoms, *existsStrategy, *workers)
		return
	}
	if prog.Database.Len() > 0 {
		fmt.Printf("note: %d facts ignored (the question is all-instances)\n", prog.Database.Len())
	}
	rep, err := core.Analyze(prog.TGDs, core.Options{
		GuardedOptions: guarded.DecideOptions{MaxSteps: *guardedBudget},
		StickyOptions:  sticky.DecideOptions{MaxStates: *stickyStates},
	})
	if err != nil {
		fail(err)
	}
	fmt.Printf("set: %d TGDs over %d predicates\n", prog.TGDs.Len(), prog.TGDs.Schema().Len())
	fmt.Print(rep.Summary())
	switch rep.Conclusion {
	case core.Terminates:
		os.Exit(0)
	case core.Diverges:
		os.Exit(1)
	default:
		os.Exit(2)
	}
}

// runExists runs the ∀∃ derivation search on the program's database and
// exits with the search's verdict.
func runExists(prog *parser.Program, maxStates, maxAtoms int, strategy string, workers int) {
	if prog.Database.Len() == 0 {
		fail(fmt.Errorf("-exists needs facts in the input (the question is per-database)"))
	}
	if workers < 1 {
		fail(fmt.Errorf("-workers must be at least 1"))
	}
	strat, err := chase.ParseSearchStrategy(strategy)
	if err != nil {
		fail(err)
	}
	res := chase.SearchTerminatingDerivation(prog.Database, prog.TGDs, chase.SearchOptions{
		MaxStates: maxStates,
		MaxAtoms:  maxAtoms,
		Strategy:  strat,
		Workers:   workers,
	})
	fmt.Printf("exists-search: strategy=%s workers=%d states=%d expanded=%d memo-hits=%d peak-frontier=%d\n",
		strat, workers, res.StatesVisited, res.Stats.StatesExpanded, res.Stats.MemoHits, res.Stats.PeakFrontier)
	switch {
	case res.Found:
		fmt.Printf("finite derivation exists: %d steps\n", len(res.Derivation))
		for i, tr := range res.Derivation {
			fmt.Printf("  %d: %s\n", i, tr)
		}
		os.Exit(0)
	case res.Exhausted:
		fmt.Println("no finite derivation: the bounded space is exhausted (every derivation is infinite)")
		os.Exit(1)
	default:
		fmt.Println("unknown: the search budget was reached before exhausting the space")
		os.Exit(2)
	}
}

func readInput(path string) (string, error) {
	if path == "" || path == "-" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "termcheck:", err)
	os.Exit(3)
}
