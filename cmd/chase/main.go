// Command chase materialises a chase over a program (facts + TGDs):
//
//	chase [-variant restricted|oblivious|semi-oblivious]
//	      [-strategy fifo|lifo|random] [-seed N]
//	      [-max-steps N] [-max-atoms N] [-quiet] [file]
//
// It prints the resulting instance (unless -quiet) and run statistics.
// Programs may contain EGDs (head atoms "X = Y"); these require the
// restricted variant. Exit status 0 on fixpoint, 1 when a budget stopped
// the run, 2 when an EGD failed (two distinct constants forced equal),
// 3 on error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"airct/internal/chase"
	"airct/internal/logic"
	"airct/internal/minimize"
	"airct/internal/parser"
)

func main() {
	variant := flag.String("variant", "restricted", "chase variant: restricted, oblivious, semi-oblivious")
	strategy := flag.String("strategy", "fifo", "trigger strategy: fifo, lifo, random")
	seed := flag.Int64("seed", 0, "seed for the random strategy")
	maxSteps := flag.Int("max-steps", 100000, "step budget (0 = unlimited)")
	maxAtoms := flag.Int("max-atoms", 0, "atom budget (0 = unlimited)")
	quiet := flag.Bool("quiet", false, "suppress the instance dump")
	coreFlag := flag.Bool("core", false, "minimise the result to its core (minimal universal model)")
	flag.Parse()

	src, err := readInput(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	prog, err := parser.Parse(src)
	if err != nil {
		fail(err)
	}
	opts := chase.Options{
		MaxSteps:  *maxSteps,
		MaxAtoms:  *maxAtoms,
		Seed:      *seed,
		DropSteps: true,
	}
	switch *variant {
	case "restricted":
		opts.Variant = chase.Restricted
	case "oblivious":
		opts.Variant = chase.Oblivious
	case "semi-oblivious":
		opts.Variant = chase.SemiOblivious
	default:
		fail(fmt.Errorf("unknown variant %q", *variant))
	}
	switch *strategy {
	case "fifo":
		opts.Strategy = chase.FIFO
	case "lifo":
		opts.Strategy = chase.LIFO
	case "random":
		opts.Strategy = chase.Random
	default:
		fail(fmt.Errorf("unknown strategy %q", *strategy))
	}

	if prog.TGDs.HasEGDs() && opts.Variant != chase.Restricted {
		fail(fmt.Errorf("the program has EGDs: equality steps are defined for the restricted variant only (got %s)", *variant))
	}

	start := time.Now()
	run := chase.RunChase(prog.Database, prog.TGDs, opts)
	elapsed := time.Since(start)

	final := run.Final
	if *coreFlag {
		if !run.Terminated() {
			fail(fmt.Errorf("-core requires a terminated chase (reason: %v)", run.Reason))
		}
		var rounds int
		final, rounds = minimize.Core(final)
		fmt.Fprintf(os.Stderr, "core: %d atoms (from %d, %d retraction rounds)\n",
			final.Len(), run.Final.Len(), rounds)
	}
	if !*quiet {
		atoms := final.Atoms()
		logic.SortAtoms(atoms)
		for _, a := range atoms {
			fmt.Printf("%v.\n", a)
		}
	}
	eq := ""
	if prog.TGDs.HasEGDs() {
		eq = fmt.Sprintf(" eqsteps=%d", run.EqualitySteps)
	}
	fmt.Fprintf(os.Stderr, "variant=%s strategy=%s steps=%d%s atoms=%d nulls=%d reason=%s elapsed=%s\n",
		opts.Variant, opts.Strategy, run.StepsTaken, eq, run.Final.Len(), run.Final.NullCount(), run.Reason, elapsed.Round(time.Microsecond))
	if run.Failed() {
		fmt.Fprintf(os.Stderr, "egd failure: %s\n", run.Conflict)
		os.Exit(2)
	}
	if !run.Terminated() {
		os.Exit(1)
	}
}

func readInput(path string) (string, error) {
	if path == "" || path == "-" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "chase:", err)
	os.Exit(3)
}
