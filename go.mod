module airct

go 1.22
