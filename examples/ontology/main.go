// Ontology reasoning: a guarded ontology is checked for all-instances
// restricted chase termination with the Section 5 procedure, then
// materialised for certain-answer query answering — the
// ontology-based-data-access workflow the paper's introduction motivates.
//
//	go run ./examples/ontology
//
// Expect "termination: true", a materialised ABox closure with certain
// answers for the mentor query, and a "diverges" verdict once the
// Org(X) -> Person(X) axiom is added.
package main

import (
	"fmt"
	"log"

	"airct/internal/chase"
	"airct/internal/guarded"
	"airct/internal/logic"
	"airct/internal/parser"
	"airct/internal/tgds"
	"airct/internal/workload"
)

func main() {
	prog := workload.Ontology(30, 7)
	fmt.Printf("ontology: %d guarded TGDs, ABox: %d assertions\n",
		prog.TGDs.Len(), prog.Database.Len())
	if !prog.TGDs.IsGuarded() {
		log.Fatal("ontology must be guarded")
	}

	// Decide CT^res_∀∀(G) before materialising anything: this is the
	// guarantee that materialisation is safe for *any* ABox, not just this
	// one.
	verdict, err := guarded.Decide(prog.TGDs, guarded.DecideOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("termination: %v (method: %s)\n", verdict.Terminates, verdict.Method)
	if !verdict.Terminates {
		log.Fatalf("diverging ontology; witness ABox: %v", verdict.Witness)
	}

	run := chase.RunChase(prog.Database, prog.TGDs, chase.Options{Variant: chase.Restricted})
	fmt.Printf("materialised: %d atoms in %d steps\n", run.Final.Len(), run.StepsTaken)

	// Certain answers: which professors mentor someone? The ontology says
	// Advises(X,Y), Student(Y) → Mentor(X).
	q := []logic.Atom{
		logic.MustAtom("Mentor", logic.Var("X")),
		logic.MustAtom("Professor", logic.Var("X")),
	}
	mentors := map[string]bool{}
	logic.ForEachHomomorphism(q, nil, run.Final, func(h logic.Substitution) bool {
		if x := h.ApplyTerm(logic.Var("X")); x.IsConst() {
			mentors[x.Name] = true
		}
		return true
	})
	fmt.Printf("professors with mentees (certain answers): %d\n", len(mentors))

	// Contrast: a single recursive axiom added to the ontology flips the
	// verdict, with a concrete witness ABox.
	bad := `
		prof_person:    Professor(X) -> Person(X).
		person_member:  Person(X) -> MemberOf(X,Y).
		member_org:     MemberOf(X,Y) -> Org(Y).
		org_person:     Org(X) -> Person(X).
	`
	badProg := mustTGDs(bad)
	badVerdict, err := guarded.Decide(badProg, guarded.DecideOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwith the Org(X) -> Person(X) axiom: %v (%s)\n",
		terminatesWord(badVerdict.Terminates), badVerdict.Method)
	if badVerdict.Witness != nil {
		fmt.Printf("witness ABox: %v\n", badVerdict.Witness)
		fmt.Printf("evidence: %s\n", badVerdict.Evidence)
	}
}

func terminatesWord(b bool) string {
	if b {
		return "terminates"
	}
	return "diverges"
}

func mustTGDs(src string) *tgds.Set {
	set, err := parser.ParseTGDs(src)
	if err != nil {
		log.Fatal(err)
	}
	return set
}
