// Data exchange: materialise a universal solution for a source-to-target
// schema mapping (the paper's [13] scenario) and answer a conjunctive
// query over the target with certain-answer semantics.
//
//	go run ./examples/dataexchange
//
// Expect the weak-acyclicity check to pass, a ~60-atom universal solution,
// 12 certain answers, and a successful universality (embedding) check.
package main

import (
	"fmt"
	"log"

	"airct/internal/acyclicity"
	"airct/internal/chase"
	"airct/internal/logic"
	"airct/internal/workload"
)

func main() {
	// A generated exchange scenario: Emp(name, manager) source tuples,
	// weakly-acyclic source-to-target TGDs inventing departments.
	scenario := workload.Exchange(12, 42)
	prog := scenario.Program
	fmt.Printf("source: %d tuples, mapping: %d TGDs\n", prog.Database.Len(), prog.TGDs.Len())

	// Data-exchange practice: weak acyclicity guarantees the chase
	// terminates and yields a universal solution.
	if !acyclicity.IsWeaklyAcyclic(prog.TGDs) {
		log.Fatal("mapping is not weakly acyclic — not a valid exchange setting")
	}
	fmt.Println("mapping is weakly acyclic: universal solution exists")

	run := chase.RunChase(prog.Database, prog.TGDs, chase.Options{Variant: chase.Restricted})
	if !run.Terminated() {
		log.Fatal("chase did not terminate?!")
	}
	fmt.Printf("universal solution: %d atoms (%d invented values) in %d steps\n",
		run.Final.Len(), run.Final.NullCount(), run.StepsTaken)

	// Certain answers to Q(X) :- TgtEmp(X, Y, D), Dept(D): the certain
	// answers are the constant tuples in the query's answers over the
	// universal solution.
	q := []logic.Atom{
		logic.MustAtom("TgtEmp", logic.Var("X"), logic.Var("Y"), logic.Var("D")),
		logic.MustAtom("Dept", logic.Var("D")),
	}
	certain := map[string]bool{}
	logic.ForEachHomomorphism(q, nil, run.Final, func(h logic.Substitution) bool {
		x := h.ApplyTerm(logic.Var("X"))
		if x.IsConst() { // nulls are not certain
			certain[x.Name] = true
		}
		return true
	})
	fmt.Printf("certain answers to 'employees placed in a department': %d employees\n", len(certain))

	// The solution is universal: it maps homomorphically into the
	// alternative solution where every employee lands in one mega
	// department.
	mega := run.Final.Clone()
	for _, a := range prog.Database.Atoms() {
		mega.Add(logic.MustAtom("TgtEmp", a.Args[0], a.Args[1], logic.Const("megadept")))
	}
	mega.Add(logic.MustAtom("Dept", logic.Const("megadept")))
	mega.Add(logic.MustAtom("Head", logic.Const("megadept"), logic.Const("boss")))
	mega.Add(logic.MustAtom("Person", logic.Const("boss")))
	if logic.FindHomomorphism(run.Final.Atoms(), nil, mega) == nil {
		log.Fatal("universality violated!")
	}
	fmt.Println("universality check passed: chase solution embeds into the mega-department solution")
}
