// Termination survey: run the full analyzer over the labeled corpus and
// print a verdict table, including the paper's own examples — the
// "downstream user" view of the library's headline capability.
//
//	go run ./examples/termination
//
// Expect one row per corpus program (classes, ground truth, verdict,
// deciding method); every verdict must match its ground-truth column.
package main

import (
	"fmt"
	"log"

	"airct/internal/core"
	"airct/internal/workload"
)

func main() {
	corpus := workload.Corpus()
	fmt.Printf("%-22s %-8s %-8s %-8s %-12s %-12s %s\n",
		"program", "guarded", "sticky", "linear", "ground truth", "verdict", "decided by")
	agree, verdicts := 0, 0
	for _, l := range corpus {
		rep, err := core.Analyze(l.Set, core.Options{})
		if err != nil {
			log.Fatalf("%s: %v", l.Name, err)
		}
		want := core.Diverges
		if l.Terminates {
			want = core.Terminates
		}
		decidedBy := "-"
		if len(rep.Reasons) > 0 {
			decidedBy = rep.Reasons[0]
		}
		if rep.Conclusion != core.Unknown {
			verdicts++
			if rep.Conclusion == want {
				agree++
			}
		}
		fmt.Printf("%-22s %-8v %-8v %-8v %-12v %-12v %.60s\n",
			l.Name, l.Guarded, l.Sticky, l.Linear, want, rep.Conclusion, decidedBy)
	}
	fmt.Printf("\n%d/%d verdicts, %d agree with ground truth\n", verdicts, len(corpus), agree)
	if agree != verdicts {
		log.Fatal("analyzer disagreed with ground truth!")
	}
}
