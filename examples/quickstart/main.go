// Quickstart: parse a program, check all-instances restricted chase
// termination, then materialise a universal model with the restricted
// chase.
//
//	go run ./examples/quickstart
//
// Expect a class checklist ([x] guarded, [x] sticky, ...), the verdict
// "terminates" with the deciding conditions, and the 4-atom universal
// model of the Example 3.2 program.
package main

import (
	"fmt"
	"log"

	"airct/internal/chase"
	"airct/internal/core"
	"airct/internal/logic"
	"airct/internal/parser"
)

const program = `
	# A tiny HR database…
	Emp(alice, it).
	Emp(bob, hr).

	# …and its constraints: every employee's department is a department
	# with some manager, and managers are employees of that department.
	emp_dept: Emp(X, D) -> Dept(D).
	dept_mgr: Dept(D) -> Mgr(D, M).
	mgr_emp:  Mgr(D, M) -> Emp(M, D).
`

func main() {
	prog, err := parser.Parse(program)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parsed %d facts and %d TGDs\n\n", prog.Database.Len(), prog.TGDs.Len())

	// 1. Static analysis: does the restricted chase terminate on *every*
	// database, under *every* trigger order?
	report, err := core.Analyze(prog.TGDs, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("termination analysis:")
	fmt.Print(report.Summary())

	if report.Conclusion != core.Terminates {
		log.Fatal("not materialisable — aborting")
	}

	// 2. Materialise: the chase result is a universal model.
	run := chase.RunChase(prog.Database, prog.TGDs, chase.Options{Variant: chase.Restricted})
	fmt.Printf("\nuniversal model (%d atoms, %d invented nulls):\n", run.Final.Len(), run.Final.NullCount())
	atoms := run.Final.Atoms()
	logic.SortAtoms(atoms)
	for _, a := range atoms {
		fmt.Printf("  %v\n", a)
	}

	// 3. Query it: who manages IT? (conjunctive query via homomorphism)
	q := []logic.Atom{logic.MustAtom("Mgr", logic.Const("it"), logic.Var("M"))}
	h := logic.FindHomomorphism(q, nil, run.Final)
	if h == nil {
		log.Fatal("no IT manager derived")
	}
	fmt.Printf("\nIT manager: %v (a labeled null: the model is universal, not arbitrary)\n",
		h.ApplyTerm(logic.Var("M")))
}
