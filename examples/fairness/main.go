// Fairness demo: the Theorem 4.1 construction live. An unfair infinite
// derivation (one trigger starved forever) is repaired by the diagonal
// construction; the same repair applied to the paper's multi-head
// counterexample (Example B.1) collapses the derivation to a fixpoint,
// showing why the theorem needs single-head TGDs.
//
// Expect the starved trigger listing, a "fair up to step N of N" repair
// report for the single-head set, and the multi-head repair ending early
// at a fixpoint.
//
//	go run ./examples/fairness
package main

import (
	"fmt"
	"log"

	"airct/internal/chase"
	"airct/internal/fairness"
	"airct/internal/parser"
)

func main() {
	// Part 1: single-head. The S/R ladder diverges; the picker starves the
	// want-trigger, making the derivation unfair.
	single := parser.MustParse(`
		S(a). P(a).
		grow: S(X) -> R(X,Y).
		next: R(X,Y) -> S(Y).
		want: P(X) -> Q(X).
	`)
	starve := func(d *chase.Derivation) (chase.Trigger, bool) {
		for _, tr := range d.Active() {
			if tr.TGD.Label != "want" {
				return tr, true
			}
		}
		return chase.Trigger{}, false
	}
	const horizon = 20
	trs, cut, err := fairness.Materialize(single.Database, single.TGDs, starve, horizon)
	if err != nil || !cut {
		log.Fatalf("materialize: %v (cut=%v)", err, cut)
	}
	witnesses, err := fairness.UnfairWitnesses(single.Database, single.TGDs, trs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unfair prefix of %d steps; starved triggers: %d\n", len(trs), len(witnesses))
	for _, w := range witnesses {
		if w.TGD.Label == "want" {
			fmt.Printf("  starved since step 0: %v\n", w)
		}
	}

	repaired, rep, err := fairness.Fairize(single.Database, single.TGDs, starve, horizon)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nTheorem 4.1 repair (single-head):\n")
	fmt.Printf("  rounds: %d, inserted at positions %v\n", rep.Rounds, rep.InsertedAt)
	fmt.Printf("  fair up to step %d of %d\n", rep.FairUpTo, len(repaired))
	fmt.Printf("  derivation still extensible (infinite): %v\n", rep.ExtensibleAfter)
	fmt.Printf("  diagonal property held: %v\n", rep.DiagonalStable)

	// Part 2: Example B.1 — multi-head. The mh1-only derivation is
	// infinite and unfair; the repair inserts mh2's R(b,b,b), after which
	// *nothing* is active: every fair derivation of Example B.1 is finite.
	multi := parser.MustParse(`
		R(a,b,b).
		mh1: R(X,Y,Y) -> R(X,Z,Y), R(Z,Y,Y).
		mh2: R(X,Y,Z) -> R(Z,Z,Z).
	`)
	_, repB1, err := fairness.Fairize(multi.Database, multi.TGDs, fairness.OnlyTGD("mh1"), horizon)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nExample B.1 (multi-head counterexample):\n")
	fmt.Printf("  rounds: %d\n", repB1.Rounds)
	fmt.Printf("  derivation still extensible after repair: %v\n", repB1.ExtensibleAfter)
	if !repB1.ExtensibleAfter {
		fmt.Println("  → fairising killed the infinite derivation: no fair infinite")
		fmt.Println("    derivation exists, exactly as Appendix B.1 states.")
	}

	// Part 3: Lemma 4.4 — the deactivation set bound via equality types.
	bound, err := fairness.Lemma44Bound(single.TGDs)
	if err != nil {
		log.Fatal(err)
	}
	if len(witnesses) > 0 {
		sizeA, _, err := fairness.CheckLemma44(single.Database, single.TGDs, trs, witnesses[0])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nLemma 4.4: |A| = %d ≤ equality-type bound %d ✓\n", sizeA, bound)
	}
}
