// Package airct's root benchmark harness: one benchmark per experiment of
// EXPERIMENTS.md (E1–E10). Each benchmark measures the hot loop of its
// experiment so that `go test -bench=. -benchmem` regenerates the
// performance-shaped rows; the verdict-shaped rows come from
// `go run ./cmd/experiments`.
package airct_test

import (
	"fmt"
	"testing"

	"airct/internal/acyclicity"
	"airct/internal/buchi"
	"airct/internal/chase"
	"airct/internal/core"
	"airct/internal/fairness"
	"airct/internal/guarded"
	"airct/internal/ochase"
	"airct/internal/parser"
	"airct/internal/sticky"
	"airct/internal/workload"
)

func mustProgram(b *testing.B, src string) *parser.Program {
	b.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	return prog
}

// BenchmarkE1RestrictedVsOblivious measures the two chase variants on the
// intro example over star databases: the restricted chase is O(|D|) work
// with zero applications; the oblivious chase burns its whole step budget.
func BenchmarkE1RestrictedVsOblivious(b *testing.B) {
	set, err := parser.ParseTGDs(`R(X,Y) -> R(X,Z).`)
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range []int{10, 100, 1000} {
		db := workload.StarDatabase("R", n)
		b.Run(fmt.Sprintf("restricted/star-%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				run := chase.RunChase(db, set, chase.Options{Variant: chase.Restricted, DropSteps: true})
				if !run.Terminated() {
					b.Fatal("must terminate")
				}
			}
		})
		b.Run(fmt.Sprintf("oblivious-budget1000/star-%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				run := chase.RunChase(db, set, chase.Options{Variant: chase.Oblivious, MaxSteps: 1000, DropSteps: true})
				if run.Terminated() {
					b.Fatal("must diverge")
				}
			}
		})
	}
}

// BenchmarkE2RealObliviousChase measures multiset-graph construction on
// Example 3.2/3.4 at growing node bounds.
func BenchmarkE2RealObliviousChase(b *testing.B) {
	prog := mustProgram(b, `
		P(a,b).
		s1: P(X,Y) -> R(X,Y). s2: P(X,Y) -> S(X).
		s3: R(X,Y) -> S(X).   s4: S(X) -> R(X,Y).
	`)
	for _, bound := range []int{100, 500, 2000} {
		b.Run(fmt.Sprintf("nodes-%d", bound), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				g := ochase.Build(prog.Database, prog.TGDs, ochase.BuildOptions{MaxNodes: bound})
				if g.AtomSet().Len() != 4 {
					b.Fatal("oblivious chase must have 4 atoms")
				}
			}
		})
	}
}

// BenchmarkE3Fairness measures the Theorem 4.1 repair at growing horizons
// (the cost is dominated by prefix replays: quadratic-ish in the horizon).
func BenchmarkE3Fairness(b *testing.B) {
	prog := mustProgram(b, `
		S(a). P(a).
		grow: S(X) -> R(X,Y).
		next: R(X,Y) -> S(Y).
		want: P(X) -> Q(X).
	`)
	starve := func(d *chase.Derivation) (chase.Trigger, bool) {
		for _, tr := range d.Active() {
			if tr.TGD.Label != "want" {
				return tr, true
			}
		}
		return chase.Trigger{}, false
	}
	for _, h := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("horizon-%d", h), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := fairness.Fairize(prog.Database, prog.TGDs, starve, h); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE4ChaseableSets measures the Theorem 5.3 round trip
// (derivation → chaseable set → derivation).
func BenchmarkE4ChaseableSets(b *testing.B) {
	prog := mustProgram(b, `
		R(a,b). S(b,c).
		t1: S(X,Y) -> T(X).
		t2: R(X,Y), T(Y) -> P(X,Y).
		t3: P(X,Y) -> Q(Y).
	`)
	run := chase.RunChase(prog.Database, prog.TGDs, chase.Options{Variant: chase.Restricted})
	g := ochase.Build(prog.Database, prog.TGDs, ochase.BuildOptions{MaxNodes: 5000})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		A, err := ochase.ChaseableFromRun(g, run)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := g.ExtractDerivation(A); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE5Treeification measures the Appendix C.2 construction on
// Example 5.6 (ochase fragment + longs-for analysis + label tree).
func BenchmarkE5Treeification(b *testing.B) {
	prog := mustProgram(b, `
		R(a,b). S(b,c).
		s1: S(X,Y) -> T(X).
		s2: R(X,Y), T(Y) -> P(X,Y).
		s3: P(X,Y) -> P(Y,Z).
	`)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g := ochase.Build(prog.Database, prog.TGDs, ochase.BuildOptions{MaxNodes: 400, MaxDepth: 8})
		if _, err := guarded.Treeify(g, guarded.TreeifyOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE6GuardedDecision measures the CT^res_∀∀(G) decision across
// family sizes for both verdict polarities.
func BenchmarkE6GuardedDecision(b *testing.B) {
	for _, n := range []int{2, 4, 8} {
		for _, fam := range []workload.Labeled{workload.SwapIntro(n), workload.GuardedLadder(n)} {
			fam := fam
			b.Run(fam.Name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					v, err := guarded.Decide(fam.Set, guarded.DecideOptions{MaxSteps: 800})
					if err != nil {
						b.Fatal(err)
					}
					if v.Terminates != fam.Terminates {
						b.Fatalf("verdict %v, truth %v", v.Terminates, fam.Terminates)
					}
				}
			})
		}
	}
}

// BenchmarkE7StickyDecision measures the Büchi-based CT^res_∀∀(S) decision
// across family sizes for both verdict polarities.
func BenchmarkE7StickyDecision(b *testing.B) {
	for _, n := range []int{2, 4, 8} {
		for _, fam := range []workload.Labeled{workload.StickyJoin(n), workload.StickyRelay(n)} {
			fam := fam
			b.Run(fam.Name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					v, err := sticky.Decide(fam.Set, sticky.DecideOptions{})
					if err != nil {
						b.Fatal(err)
					}
					if v.Terminates != fam.Terminates {
						b.Fatalf("verdict %v, truth %v", v.Terminates, fam.Terminates)
					}
				}
			})
		}
	}
}

// BenchmarkE8BoundedGapWitness measures lasso extraction (Observation 1)
// on the witnessing component of a diverging sticky family.
func BenchmarkE8BoundedGapWitness(b *testing.B) {
	fam := workload.StickyRelay(4)
	v, err := sticky.Decide(fam.Set, sticky.DecideOptions{})
	if err != nil || v.Terminates {
		b.Fatal("need diverging verdict")
	}
	a, err := sticky.BuildAutomaton(fam.Set, *v.Seed)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := buchi.Explore(a, 0)
		lasso, ok := e.NonEmpty()
		if !ok || lasso.Gap > e.Len() {
			b.Fatal("Observation 1 violated")
		}
	}
}

// BenchmarkE9BaselineCoverage measures the full corpus sweep: the three
// acyclicity baselines plus the analyzer.
func BenchmarkE9BaselineCoverage(b *testing.B) {
	corpus := workload.Corpus()
	b.Run("baselines", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, l := range corpus {
				acyclicity.IsWeaklyAcyclic(l.Set)
				acyclicity.IsJointlyAcyclic(l.Set)
			}
		}
	})
	b.Run("analyzer", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, l := range corpus {
				if _, err := core.Analyze(l.Set, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkE10EngineThroughput measures materialisation throughput across
// variants on the ontology and exchange workloads.
func BenchmarkE10EngineThroughput(b *testing.B) {
	onto := workload.Ontology(200, 1)
	exch := workload.Exchange(200, 1).Program
	for _, w := range []struct {
		name string
		prog *parser.Program
	}{{"ontology-200", onto}, {"exchange-200", exch}} {
		for _, v := range []chase.Variant{chase.Restricted, chase.SemiOblivious, chase.Oblivious} {
			w, v := w, v
			b.Run(fmt.Sprintf("%s/%s", w.name, v), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					run := chase.RunChase(w.prog.Database, w.prog.TGDs, chase.Options{Variant: v, DropSteps: true})
					if !run.Terminated() {
						b.Fatal("must terminate")
					}
				}
			})
		}
	}
}
