#!/bin/sh
# check-coverage.sh — ratcheted per-package statement-coverage floors for
# the packages the decision verdicts ride on. CI fails when a package drops
# below its floor; when real coverage grows, RAISE the floor to just under
# the new number (ratchet up, never down). Floors are set ~2 points under
# the measured value at the time of the last ratchet so legitimate
# refactors don't flap, while a regression that deletes tests fails loudly.
#
# Measured at the PR 5 ratchet: internal/chase 90.5%, internal/guarded
# 91.9%. At the PR 6 ratchet: internal/portfolio 80.0%. At the PR 7
# ratchet (snapshot codec + sticky/exists cache paths landed with their
# corruption and round-trip suites): internal/chase 91.2%, internal/guarded
# 92.5%, internal/portfolio 80.1%, internal/sticky 86.5%. At the PR 8
# ratchet (serving front end with its e2e + concurrency suites):
# internal/serve 93.8%. At the PR 9 ratchet (cost model + rejecting probe
# with their sweep suites): internal/portfolio 89.1%.
set -eu

check() {
	pkg="$1"
	floor="$2"
	profile="$(mktemp)"
	go test -count=1 -coverprofile "$profile" "$pkg" > /dev/null
	total=$(go tool cover -func "$profile" | awk '/^total:/ { sub(/%/, "", $3); print $3 }')
	rm -f "$profile"
	if awk -v t="$total" -v f="$floor" 'BEGIN { exit !(t < f) }'; then
		echo "check-coverage: $pkg at ${total}% is below the ${floor}% floor" >&2
		exit 1
	fi
	echo "check-coverage: $pkg ${total}% (floor ${floor}%)"
}

check ./internal/chase 89.2
check ./internal/guarded 90.5
check ./internal/portfolio 87.0
check ./internal/sticky 84.5
check ./internal/serve 91.8
