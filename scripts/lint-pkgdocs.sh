#!/bin/sh
# lint-pkgdocs.sh — fail when an internal package lacks a godoc package
# comment. `go doc <pkg>` prints the package clause, a blank line, then the
# package comment; a missing comment means line 3 does not start with
# "Package". Run from the repo root (CI does).
#
# Additionally, every NEW non-test .go file in internal/chase must open with
# a file-level doc comment (within its first three lines — either above the
# package clause or directly after it) explaining what the file is: the
# package has grown enough subsystems that bare files stopped scanning.
# Files that predate the rule are grandfathered below; do not add to the
# list.
set -u
fail=0
for pkg in $(go list ./internal/...); do
	summary=$(go doc "$pkg" 2>/dev/null | sed -n '3p')
	case "$summary" in
	Package*) ;;
	*)
		echo "lint-pkgdocs: $pkg has no package comment (go doc shows: '$summary')" >&2
		fail=1
		;;
	esac
done
grandfathered="compile.go derivation.go engine.go exists.go"
for f in internal/chase/*.go; do
	base=$(basename "$f")
	case "$base" in
	*_test.go) continue ;;
	esac
	case " $grandfathered " in
	*" $base "*) continue ;;
	esac
	if ! head -3 "$f" | grep -q '^//'; then
		echo "lint-pkgdocs: $f has no file doc comment in its first three lines" >&2
		fail=1
	fi
done
if [ "$fail" -ne 0 ]; then
	echo "lint-pkgdocs: every internal/* package needs a 'Package <name> ...' doc comment, and new internal/chase files need a file doc comment" >&2
fi
exit "$fail"
