#!/bin/sh
# lint-pkgdocs.sh — fail when an internal package lacks a godoc package
# comment. `go doc <pkg>` prints the package clause, a blank line, then the
# package comment; a missing comment means line 3 does not start with
# "Package". Run from the repo root (CI does).
set -u
fail=0
for pkg in $(go list ./internal/...); do
	summary=$(go doc "$pkg" 2>/dev/null | sed -n '3p')
	case "$summary" in
	Package*) ;;
	*)
		echo "lint-pkgdocs: $pkg has no package comment (go doc shows: '$summary')" >&2
		fail=1
		;;
	esac
done
if [ "$fail" -ne 0 ]; then
	echo "lint-pkgdocs: every internal/* package needs a 'Package <name> ...' doc comment" >&2
fi
exit "$fail"
