// Benchmarks for the persistent cache tier (BENCH_persist.json): a warm
// RESTART — rebuild the cache from snapshot bytes, then decide/search —
// against the cold run it replaces, for the sticky Büchi and ∀∃ families;
// the snapshot save+load overhead itself; and the index-aware frontier
// ordering against smallest-first. The root package hosts these because
// the sticky decider cannot be imported from internal/chase.
// Run with `go test -bench BenchmarkPersist -benchtime 20x .`
package airct_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"airct/internal/chase"
	"airct/internal/parser"
	"airct/internal/sticky"
	"airct/internal/tgds"
	"airct/internal/workload"
)

// stickyJoinDiverging is workload.StickyJoin(n) plus a diverging
// linear-cycle tail on fresh predicates: the cold decision still sweeps
// the join components' automata before the tail's lasso decides, and the
// warm restart replays a buchi-witness verdict (seed + lasso) rather than
// the empty case.
func stickyJoinDiverging(b *testing.B, n int) *tgds.Set {
	b.Helper()
	var src strings.Builder
	for i := 1; i <= n; i++ {
		fmt.Fprintf(&src, "T%d(X,Y,Z) -> S%d(Y,W).\n", i, i)
		fmt.Fprintf(&src, "R%d(X,Y), P%d(Y,Z) -> T%d(X,Y,W).\n", i, i, i)
	}
	src.WriteString("Z1(X,Y) -> Z1(Y,W).\n")
	set, err := parser.ParseTGDs(src.String())
	if err != nil {
		b.Fatal(err)
	}
	return set
}

// stickySnapshot runs one cold Decide into a fresh cache and returns the
// cache's snapshot bytes — the artefact a restarted process would load.
func stickySnapshot(b *testing.B, set *tgds.Set) []byte {
	b.Helper()
	cache := chase.NewCache()
	if _, err := sticky.Decide(set, sticky.DecideOptions{Cache: cache}); err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := cache.Snapshot(&buf); err != nil {
		b.Fatal(err)
	}
	return buf.Bytes()
}

// BenchmarkPersistStickyDecide: cold = a fresh-cache Decide (build + explore
// every component automaton); warm-restart = LoadCache(snapshot) + Decide,
// which replays the recorded verdict without touching an automaton. The
// warm-over-cold ratio is the tier's value on a process restart.
func BenchmarkPersistStickyDecide(b *testing.B) {
	families := []struct {
		Name string
		Set  *tgds.Set
	}{
		{"sticky-join-4", workload.StickyJoin(4).Set},
		{"sticky-join-8", workload.StickyJoin(8).Set},
		{"sticky-join-8-diverging", stickyJoinDiverging(b, 8)},
	}
	for _, fam := range families {
		b.Run(fam.Name+"/cold", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sticky.Decide(fam.Set, sticky.DecideOptions{Cache: chase.NewCache()}); err != nil {
					b.Fatal(err)
				}
			}
		})
		snap := stickySnapshot(b, fam.Set)
		b.Run(fam.Name+"/warm-restart", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cache, rep, err := chase.LoadCache(bytes.NewReader(snap))
				if err != nil || rep.Skipped > 0 {
					b.Fatalf("load: %v %+v", err, rep)
				}
				if _, err := sticky.Decide(fam.Set, sticky.DecideOptions{Cache: cache}); err != nil {
					b.Fatal(err)
				}
				if cache.Stats().Hits == 0 {
					b.Fatal("restart did not hit the snapshot")
				}
			}
		})
	}
}

// BenchmarkPersistExistsSearch: the same restart shape for the ∀∃ search on
// the stage-grid family — cold sweeps 3^n states, warm-restart loads the
// snapshot and replays the recorded derivation.
func BenchmarkPersistExistsSearch(b *testing.B) {
	cases := []struct {
		name      string
		prog      *parser.Program
		maxStates int
	}{
		{"stage-grid-8", workload.StageGrid(8), 8000},
		{"stage-grid-10", workload.StageGrid(10), 70000},
	}
	for _, tc := range cases {
		opts := chase.SearchOptions{MaxStates: tc.maxStates, MaxAtoms: 30}
		b.Run(tc.name+"/cold", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				opts.Cache = chase.NewCache()
				if res := chase.SearchTerminatingDerivation(tc.prog.Database, tc.prog.TGDs, opts); !res.Found {
					b.Fatalf("must find: %+v", res)
				}
			}
		})
		opts.Cache = chase.NewCache()
		if res := chase.SearchTerminatingDerivation(tc.prog.Database, tc.prog.TGDs, opts); !res.Found {
			b.Fatal("seed search failed")
		}
		var buf bytes.Buffer
		if err := opts.Cache.Snapshot(&buf); err != nil {
			b.Fatal(err)
		}
		snap := buf.Bytes()
		b.Run(tc.name+"/warm-restart", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cache, rep, err := chase.LoadCache(bytes.NewReader(snap))
				if err != nil || rep.Skipped > 0 {
					b.Fatalf("load: %v %+v", err, rep)
				}
				opts.Cache = cache
				if res := chase.SearchTerminatingDerivation(tc.prog.Database, tc.prog.TGDs, opts); !res.Found {
					b.Fatalf("must replay: %+v", res)
				}
				if cache.Stats().Hits == 0 {
					b.Fatal("restart did not hit the snapshot")
				}
			}
		})
	}
}

// BenchmarkPersistSnapshotRoundTrip isolates the tier's own overhead — one
// Snapshot + one Restore of a cache populated by a cold stage-grid search
// and a cold sticky decision — the cost a -cache-file run pays on top of
// its decides. Compare against the cold cells above: the bar is <5% of one
// cold decide.
func BenchmarkPersistSnapshotRoundTrip(b *testing.B) {
	cache := chase.NewCache()
	prog := workload.StageGrid(10)
	if res := chase.SearchTerminatingDerivation(prog.Database, prog.TGDs, chase.SearchOptions{
		MaxStates: 70000, MaxAtoms: 30, Cache: cache,
	}); !res.Found {
		b.Fatal("seed search failed")
	}
	if _, err := sticky.Decide(workload.StickyJoin(8).Set, sticky.DecideOptions{Cache: cache}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := cache.Snapshot(&buf); err != nil {
			b.Fatal(err)
		}
		if _, rep, err := chase.LoadCache(bytes.NewReader(buf.Bytes())); err != nil || rep.Skipped > 0 {
			b.Fatalf("load: %v %+v", err, rep)
		}
		b.ReportMetric(float64(buf.Len()), "snapshot-bytes")
	}
}

// multiHeadEscape is Example B.1's multi-head pair over k starting facts:
// eager orders diverge, finite escapes exist, and the states closest to a
// fixpoint are exactly the ones with few active triggers — the signal the
// index-aware ordering reads for free from the delta-maintained index.
func multiHeadEscape(k int) *parser.Program {
	var src strings.Builder
	for i := 0; i < k; i++ {
		fmt.Fprintf(&src, "R(a%d,b%d,b%d).\n", i, i, i)
	}
	src.WriteString("mh1: R(X,Y,Y) -> R(X,Z,Y), R(Z,Y,Y).\nmh2: R(X,Y,Z) -> R(Z,Z,Z).\n")
	return parser.MustParse(src.String())
}

// BenchmarkPersistIndexAwareFrontier compares the index-aware frontier
// ordering (size, then active-trigger count from the delta-maintained
// index) against plain smallest-first on the uncached search. The
// multi-head-escape rows are where the signal pays: preferring
// low-active-trigger states walks toward fixpoints and roughly halves the
// states swept. stage-grid is the control where every same-size state
// carries the same trigger count — the rows price the ordering's pure
// overhead (compare states/sec).
func BenchmarkPersistIndexAwareFrontier(b *testing.B) {
	cases := []struct {
		name      string
		prog      *parser.Program
		maxStates int
		maxAtoms  int
	}{
		{"multi-head-escape-5", multiHeadEscape(5), 500000, 60},
		{"multi-head-escape-6", multiHeadEscape(6), 500000, 60},
		{"stage-grid-8", workload.StageGrid(8), 8000, 30},
		{"stage-grid-10", workload.StageGrid(10), 70000, 30},
	}
	for _, tc := range cases {
		for _, strat := range []chase.SearchStrategy{chase.SmallestFirst, chase.IndexAware} {
			b.Run(tc.name+"/"+strat.String(), func(b *testing.B) {
				b.ReportAllocs()
				var states int
				for i := 0; i < b.N; i++ {
					res := chase.SearchTerminatingDerivation(tc.prog.Database, tc.prog.TGDs, chase.SearchOptions{
						MaxStates: tc.maxStates, MaxAtoms: tc.maxAtoms, Strategy: strat,
					})
					if !res.Found {
						b.Fatalf("must find a fixpoint: %+v", res)
					}
					states = res.StatesVisited
				}
				b.ReportMetric(float64(states)*float64(b.N)/b.Elapsed().Seconds(), "states/sec")
			})
		}
	}
}
