package chase

import (
	"airct/internal/instance"
	"airct/internal/tgds"
)

// ExistsResult reports the outcome of the ∀∃-style search (the paper's
// future-work question 3: is there a *finite* restricted chase derivation
// of D w.r.t. T?).
type ExistsResult struct {
	// Found is true when some trigger order reaches a fixpoint.
	Found bool
	// Derivation is a witnessing trigger sequence when Found.
	Derivation []Trigger
	// StatesVisited counts distinct instances explored.
	StatesVisited int
	// Exhausted is true when the search space was fully explored (so
	// Found = false is a proof that *every* derivation is infinite,
	// CT^res_∀∃ failure); false when a budget stopped the search.
	Exhausted bool
	// Cancelled is true when the search's context was cancelled before
	// the sweep finished (Exhausted is then false and the result carries
	// no semantic claim — only statistics).
	Cancelled bool
	// Stats counts the search's work.
	Stats SearchStats
}

// ExistsTerminatingDerivation searches the space of restricted chase
// derivations of D w.r.t. T for one that reaches a fixpoint. The
// restricted chase is order-sensitive: a program may admit both infinite
// and finite derivations (the engine's FIFO order can diverge where a
// smarter order terminates). The search explores instances
// breadth-preferring-small, memoising visited instance states by their
// order-independent fingerprint, and stops at maxStates distinct instances
// or maxAtoms per instance (0 = defaults 10_000 / 200). It is a
// convenience wrapper around SearchTerminatingDerivation with the
// SmallestFirst strategy (see internal/chase/search.go for the subsystem).
//
// This is a semi-decision helper for the paper's open question (3) —
// CT^res_∀∃ — not one of its theorems; it is exact on the explored space.
func ExistsTerminatingDerivation(db *instance.Database, set *tgds.Set, maxStates, maxAtoms int) *ExistsResult {
	return SearchTerminatingDerivation(db, set, SearchOptions{
		MaxStates: maxStates,
		MaxAtoms:  maxAtoms,
		Strategy:  SmallestFirst,
	})
}
