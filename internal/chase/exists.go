package chase

import (
	"sort"
	"strings"

	"airct/internal/instance"
	"airct/internal/tgds"
)

// ExistsResult reports the outcome of the ∀∃-style search (the paper's
// future-work question 3: is there a *finite* restricted chase derivation
// of D w.r.t. T?).
type ExistsResult struct {
	// Found is true when some trigger order reaches a fixpoint.
	Found bool
	// Derivation is a witnessing trigger sequence when Found.
	Derivation []Trigger
	// StatesVisited counts distinct instances explored.
	StatesVisited int
	// Exhausted is true when the search space was fully explored (so
	// Found = false is a proof that *every* derivation is infinite,
	// CT^res_∀∃ failure); false when a budget stopped the search.
	Exhausted bool
}

// ExistsTerminatingDerivation searches the space of restricted chase
// derivations of D w.r.t. T for one that reaches a fixpoint. The
// restricted chase is order-sensitive: a program may admit both infinite
// and finite derivations (the engine's FIFO order can diverge where a
// smarter order terminates). The search explores instances
// breadth-preferring-small, memoising visited instance states, and stops
// at maxStates distinct instances or maxAtoms per instance (0 = defaults
// 10_000 / 200).
//
// This is a semi-decision helper for the paper's open question (3) —
// CT^res_∀∃ — not one of its theorems; it is exact on the explored space.
func ExistsTerminatingDerivation(db *instance.Database, set *tgds.Set, maxStates, maxAtoms int) *ExistsResult {
	if maxStates <= 0 {
		maxStates = 10_000
	}
	if maxAtoms <= 0 {
		maxAtoms = 200
	}
	type node struct {
		inst  *instance.Instance
		path  []Trigger
		nulls *NullFactory
	}
	start := node{inst: db.Instance(), nulls: NewNullFactory(StructuralNaming)}
	seen := map[string]bool{instKey(start.inst): true}
	queue := []node{start}
	res := &ExistsResult{Exhausted: true}
	for len(queue) > 0 {
		// Prefer small instances: fixpoints are found sooner and the
		// memoised frontier stays tight.
		sort.SliceStable(queue, func(i, j int) bool { return queue[i].inst.Len() < queue[j].inst.Len() })
		cur := queue[0]
		queue = queue[1:]
		active := ActiveTriggers(set, cur.inst)
		if len(active) == 0 {
			res.Found = true
			res.Derivation = cur.path
			res.StatesVisited = len(seen)
			return res
		}
		if cur.inst.Len() >= maxAtoms {
			res.Exhausted = false
			continue
		}
		for _, tr := range active {
			next := cur.inst.Clone()
			// Share the null factory: structural naming makes the result
			// of a trigger independent of the path, so states merge.
			for _, a := range Result(tr, cur.nulls) {
				next.Add(a)
			}
			key := instKey(next)
			if seen[key] {
				continue
			}
			if len(seen) >= maxStates {
				res.Exhausted = false
				break
			}
			seen[key] = true
			path := make([]Trigger, len(cur.path)+1)
			copy(path, cur.path)
			path[len(cur.path)] = tr
			queue = append(queue, node{inst: next, path: path, nulls: cur.nulls})
		}
	}
	res.StatesVisited = len(seen)
	return res
}

func instKey(in *instance.Instance) string {
	return strings.Join(in.SortedKeys(), "|")
}
