package chase

import (
	"strings"
	"testing"

	"airct/internal/logic"
	"airct/internal/parser"
)

// keyUnifyProgram invents a null at a key position and then forces it equal
// to the constant already stored there: S(a) fires T(a,n1), T propagates to
// R(a,n1), and the key EGD on R merges n1 into b.
const keyUnifyProgram = `
	R(a,b).
	S(a).
	S(X) -> T(X,Y).
	T(X,Y) -> R(X,Y).
	key: R(X,Y), R(X,Z) -> Y = Z.
`

func TestEGDKeyUnifiesNullWithConstant(t *testing.T) {
	prog := parser.MustParse(keyUnifyProgram)
	run := RunChase(prog.Database, prog.TGDs, Options{Variant: Restricted, MaxSteps: 500})
	if !run.Terminated() {
		t.Fatalf("reason = %v", run.Reason)
	}
	if run.EqualitySteps == 0 {
		t.Fatal("expected at least one equality step")
	}
	if n := run.Final.NullCount(); n != 0 {
		t.Errorf("null should be absorbed by the constant, %d nulls left in %v", n, run.Final)
	}
	// R(a,n1) merged into R(a,b); T(a,n1) rewrote to T(a,b).
	want := []string{"R(a,b)", "S(a)", "T(a,b)"}
	if run.Final.Len() != len(want) {
		t.Fatalf("final = %v", run.Final)
	}
	for _, w := range want {
		if !strings.Contains(run.Final.String(), w) {
			t.Errorf("final %v is missing %s", run.Final, w)
		}
	}
	if len(run.EqSteps) == 0 {
		t.Fatal("EqSteps not recorded")
	}
	if run.EqSteps[0].Removed != 1 {
		t.Errorf("merging R(a,n1) into R(a,b) removes 1 atom, got %d", run.EqSteps[0].Removed)
	}
}

func TestEGDFailureOnDistinctConstants(t *testing.T) {
	prog := parser.MustParse(`
		R(a,b). R(a,c).
		key: R(X,Y), R(X,Z) -> Y = Z.
	`)
	run := RunChase(prog.Database, prog.TGDs, Options{Variant: Restricted, MaxSteps: 500})
	if !run.Failed() || run.Reason != EGDFailure {
		t.Fatalf("want EGDFailure, got %v", run.Reason)
	}
	if run.Terminated() {
		t.Error("a failing chase is not a terminating one at Run level")
	}
	if run.Conflict == nil {
		t.Fatal("Conflict not recorded")
	}
	s := run.Conflict.String()
	if !strings.Contains(s, "b") || !strings.Contains(s, "c") {
		t.Errorf("conflict should name both constants: %s", s)
	}
}

// mergeJoinProgram is the "equality re-activates a trigger" shape: before
// the equality step E(a,n1) and F(a,n2) share no join term, so the Win rule
// has no trigger; merging n1 = n2 creates the body match, and the
// post-rewrite rebuild must discover and fire it.
const mergeJoinProgram = `
	S(a). T(a).
	S(X) -> E(X,Y).
	T(X) -> F(X,Z).
	eq: E(X,Y), F(X,Z) -> Y = Z.
	E(X,Y), F(W,Y) -> Win(X,W).
`

func TestEGDMergeCreatesNewTGDTrigger(t *testing.T) {
	prog := parser.MustParse(mergeJoinProgram)
	run := RunChase(prog.Database, prog.TGDs, Options{Variant: Restricted, MaxSteps: 500})
	if !run.Terminated() {
		t.Fatalf("reason = %v", run.Reason)
	}
	if run.EqualitySteps != 1 {
		t.Errorf("EqualitySteps = %d, want 1", run.EqualitySteps)
	}
	if !strings.Contains(run.Final.String(), "Win(a,a)") {
		t.Errorf("merge must enable the Win trigger; final = %v", run.Final)
	}
	if n := run.Final.NullCount(); n != 1 {
		t.Errorf("the two invented nulls merge into one, got %d in %v", n, run.Final)
	}
}

func TestEGDMergesManyNullsIntoOne(t *testing.T) {
	prog := parser.MustParse(`
		P(a).
		P(X) -> R(X,U), R(X,V), R(X,W).
		key: R(X,Y), R(X,Z) -> Y = Z.
	`)
	run := RunChase(prog.Database, prog.TGDs, Options{Variant: Restricted, MaxSteps: 500})
	if !run.Terminated() {
		t.Fatalf("reason = %v", run.Reason)
	}
	if run.Final.Len() != 2 {
		t.Errorf("want P(a) and one R atom, got %v", run.Final)
	}
	if run.EqualitySteps != 2 {
		t.Errorf("three nulls merge in two equality steps, got %d", run.EqualitySteps)
	}
	if n := run.Final.NullCount(); n != 1 {
		t.Errorf("NullCount = %d, want 1", n)
	}
}

// TestEGDRepresentativeIsOlderNull pins the merge orientation: between two
// nulls the younger (larger TermID, interned later) is absorbed by the
// older.
func TestEGDRepresentativeIsOlderNull(t *testing.T) {
	prog := parser.MustParse(mergeJoinProgram)
	run := RunChase(prog.Database, prog.TGDs, Options{Variant: Restricted, MaxSteps: 500})
	if len(run.EqSteps) != 1 {
		t.Fatalf("EqSteps = %v", run.EqSteps)
	}
	st := run.EqSteps[0]
	if !st.Unified.IsNull() || !st.Rep.IsNull() {
		t.Fatalf("null-null merge expected, got %v <- %v", st.Rep, st.Unified)
	}
	// S(X) -> E(X,Y) fires first (rule order), so E's null is older.
	if st.Rep.Name != "n0" || st.Unified.Name != "n1" {
		t.Errorf("older null must absorb younger: rep=%v unified=%v", st.Rep, st.Unified)
	}
}

func TestEGDStepsCountAgainstBudget(t *testing.T) {
	prog := parser.MustParse(keyUnifyProgram)
	run := RunChase(prog.Database, prog.TGDs, Options{Variant: Restricted, MaxSteps: 2})
	// Two TGD steps exhaust the budget before the equality step runs.
	if run.Reason != StepBudget {
		t.Fatalf("reason = %v", run.Reason)
	}
	if run.StepsTaken != 2 {
		t.Errorf("StepsTaken = %d", run.StepsTaken)
	}
}

func TestEGDRequiresRestrictedVariant(t *testing.T) {
	prog := parser.MustParse(`
		R(a,b).
		key: R(X,Y), R(X,Z) -> Y = Z.
	`)
	defer func() {
		if recover() == nil {
			t.Fatal("oblivious chase with EGDs must panic")
		}
	}()
	RunChase(prog.Database, prog.TGDs, Options{Variant: Oblivious})
}

// TestEGDTriviallySatisfiedIsNoOp: an EGD whose only matches bind X and Y
// to the same term applies no equality step.
func TestEGDTriviallySatisfiedIsNoOp(t *testing.T) {
	prog := parser.MustParse(`
		R(a,b).
		key: R(X,Y), R(X,Z) -> Y = Z.
	`)
	run := RunChase(prog.Database, prog.TGDs, Options{Variant: Restricted})
	if !run.Terminated() || run.EqualitySteps != 0 || run.Final.Len() != 1 {
		t.Fatalf("reason=%v eq=%d final=%v", run.Reason, run.EqualitySteps, run.Final)
	}
}

// TestEGDDeterministic pins that two runs of a merging program produce
// identical instances and step sequences (the conformance matrix's
// bit-identity columns build on this).
func TestEGDDeterministic(t *testing.T) {
	render := func() (string, int, logic.Fingerprint) {
		prog := parser.MustParse(mergeJoinProgram)
		run := RunChase(prog.Database, prog.TGDs, Options{Variant: Restricted, MaxSteps: 500})
		return run.Final.String(), run.StepsTaken, run.Final.Fingerprint()
	}
	s1, n1, f1 := render()
	s2, n2, f2 := render()
	if s1 != s2 || n1 != n2 || f1 != f2 {
		t.Errorf("nondeterministic EGD run:\n%s (%d, %v)\n%s (%d, %v)", s1, n1, f1, s2, n2, f2)
	}
}

// TestEGDFingerprintMatchesRebuild pins fingerprint repair: after equality
// rewriting, the incremental fingerprint must equal the fingerprint of an
// instance freshly built from the final atoms.
func TestEGDFingerprintMatchesRebuild(t *testing.T) {
	for _, src := range []string{keyUnifyProgram, mergeJoinProgram} {
		prog := parser.MustParse(src)
		run := RunChase(prog.Database, prog.TGDs, Options{Variant: Restricted, MaxSteps: 500})
		if !run.Terminated() {
			t.Fatalf("reason = %v", run.Reason)
		}
		fresh := run.Final.Clone()
		if got, want := run.Final.Fingerprint(), fresh.Fingerprint(); got != want {
			t.Errorf("fingerprint after rewrite %v != rebuilt %v", got, want)
		}
	}
}
