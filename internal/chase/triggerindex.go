package chase

// The delta-maintained trigger index: per-state active-trigger sets that a
// child search state *inherits* from its parent and repairs against the
// child's delta, instead of re-enumerating every TGD body from scratch at
// every expansion (the profile's former hot spot, expander.collectActive).
//
// Soundness rests on two monotonicity facts about the restricted chase
// (Definition 3.1), both consequences of instances only growing along a
// derivation:
//
//   - body matches are monotone: every body homomorphism into the child
//     either lies entirely in the parent (so its trigger was already a
//     candidate there) or uses at least one delta atom — which is exactly
//     what logic.SlotSearch.ForEachDelta enumerates, each new homomorphism
//     once;
//   - activity is antitone: a trigger inactive at the parent stays inactive
//     forever, and a trigger active at the parent can only be deactivated
//     by a head homomorphism that uses a delta atom. So inherited
//     candidates need re-checking only when the delta contains an atom
//     whose predicate occurs in the TGD's head (the head-predicate
//     dependency sets, computed once per TGD set), and the re-check itself
//     is a delta-pinned head search, not a full activity check.
//
// Hence: active(child) = keep(active(parent)) ∪ activeNew(delta), with
// keep filtering by a delta-pinned head search and activeNew discovered by
// ForEachDelta over the body. Both sides are produced in the canonical
// trigger order (TGD index ascending, then componentwise Term.Compare of
// the body bindings — the order collectActive/AllTriggers produce), and the
// two are disjoint (a new candidate's body uses a delta atom, so it cannot
// have been a parent candidate), so a linear merge reproduces the full
// re-enumeration order *exactly*. That identity is what keeps verdicts,
// StatesVisited and witness replay bit-identical to the pre-index search —
// the property triggerindex_test.go pins differentially and by property.
//
// The index is derived state: nothing about it crosses a worker boundary in
// the parallel search (the symbolic exchange format of parallel.go is
// unchanged), and a worker that receives a stolen state simply rebuilds the
// index deterministically after the symbolic decode.

import (
	"sort"

	"airct/internal/instance"
	"airct/internal/logic"
)

// trigIndex is the active-trigger set of one expanded search state: per TGD,
// the interned trigger TupleIDs ([tgd, body TermIDs...] in the owning
// expander's trig table) of the active triggers, in canonical order. A child
// index shares the per-TGD slices of its parent wholesale whenever the delta
// cannot have touched that TGD (copy-on-write inheritance); slices are never
// mutated after construction. TupleIDs are expander-local: an index is only
// meaningful to the expander whose trig table interned it.
type trigIndex struct {
	perTGD [][]logic.TupleID
	total  int
}

// deltaDeps are the per-TGD predicate dependency sets, computed once per
// compiled TGD set: repair consults them to decide, per delta, which TGDs
// need candidate discovery (a body predicate occurs in the delta) and which
// need activity re-checks (a head predicate occurs in the delta).
type deltaDeps struct {
	headPreds [][]logic.PredID // distinct head predicates per TGD
	bodyPreds [][]logic.PredID // distinct body predicates per TGD
}

func newDeltaDeps(ct []compiledTGD) *deltaDeps {
	d := &deltaDeps{
		headPreds: make([][]logic.PredID, len(ct)),
		bodyPreds: make([][]logic.PredID, len(ct)),
	}
	distinct := func(atoms []logic.CAtom) []logic.PredID {
		var out []logic.PredID
		for _, a := range atoms {
			dup := false
			for _, p := range out {
				if p == a.Pred {
					dup = true
					break
				}
			}
			if !dup {
				out = append(out, a.Pred)
			}
		}
		return out
	}
	for i := range ct {
		d.headPreds[i] = distinct(ct[i].head.Atoms)
		d.bodyPreds[i] = distinct(ct[i].body.Atoms)
	}
	return d
}

// markDelta stamps the predicates of the delta atoms [deltaLo, inst.Len())
// into e.predMark under a fresh epoch; anyMarked then answers "does this
// dependency set intersect the delta?" in O(|set|) with no clearing.
func (e *expander) markDelta(inst *instance.Instance, deltaLo int32) {
	e.predEpoch++
	n := int32(inst.Len())
	for d := deltaLo; d < n; d++ {
		pid := inst.AtomPredID(d)
		for int(pid) >= len(e.predMark) {
			e.predMark = append(e.predMark, 0)
		}
		e.predMark[pid] = e.predEpoch
	}
}

func (e *expander) anyMarked(preds []logic.PredID) bool {
	for _, p := range preds {
		if int(p) < len(e.predMark) && e.predMark[p] == e.predEpoch {
			return true
		}
	}
	return false
}

// discoverActive runs the shared collect-sort-filter-intern step of index
// construction for one TGD: enumerate body homomorphisms (the enumerate
// closure drives ForEach or ForEachDelta over e.ss, which arrives Reset for
// the body pattern), order the candidate tuples canonically, keep the
// active ones and intern them. Both buildIndex and repairIndex go through
// this one function, so the activity filtering can never diverge between
// the rebuild path and the repair path it is differentially tested against.
func (e *expander) discoverActive(i int, ct *compiledTGD, inst *instance.Instance, enumerate func(yield func([]logic.TermID) bool)) []logic.TupleID {
	e.discBuf = e.discBuf[:0]
	e.sortBuf = e.sortBuf[:0]
	e.ss.Reset(ct.body)
	enumerate(func(bind []logic.TermID) bool {
		e.collectTrigTuple(i, ct, bind)
		return true
	})
	e.sortDiscovered(ct)
	var ids []logic.TupleID
	for _, off := range e.sortBuf {
		tup := e.discBuf[off : off+int32(ct.nBody)+1]
		if e.isActive(i, tup[1:], inst) {
			id, _ := e.trig.Intern(tup)
			ids = append(ids, id)
		}
	}
	return ids
}

// buildIndex enumerates the active triggers of inst from scratch — the full
// re-enumeration the repair path exists to avoid. It remains the root
// state's path, the deterministic rebuild after a parallel steal boundary,
// and the reference the differential tests compare repairs against.
func (e *expander) buildIndex(inst *instance.Instance) *trigIndex {
	idx := &trigIndex{perTGD: make([][]logic.TupleID, len(e.ct))}
	for i := range e.ct {
		ct := &e.ct[i]
		ids := e.discoverActive(i, ct, inst, func(yield func([]logic.TermID) bool) {
			e.ss.ForEach(ct.body, inst, yield)
		})
		idx.perTGD[i] = ids
		idx.total += len(ids)
	}
	return idx
}

// repairIndex derives the child state's index from its parent's: per TGD,
// inherited candidates are kept (re-checked by a delta-pinned head search
// only when a head predicate occurs in the delta) and new candidates are
// discovered by ForEachDelta over the body (only when a body predicate
// occurs in the delta), then the two canonical-order runs merge. deltaLo is
// the parent's atom count: the delta atoms are exactly the insertion-index
// range [deltaLo, inst.Len()) of the parent-first materialised instance.
func (e *expander) repairIndex(par *trigIndex, inst *instance.Instance, deltaLo int32) *trigIndex {
	e.markDelta(inst, deltaLo)
	idx := &trigIndex{perTGD: make([][]logic.TupleID, len(e.ct))}
	for i := range e.ct {
		ct := &e.ct[i]
		kept := par.perTGD[i]
		if e.anyMarked(e.deps.headPreds[i]) && len(kept) > 0 {
			filtered := make([]logic.TupleID, 0, len(kept))
			for _, id := range kept {
				e.nRechecks++
				if !e.deactivatedByDelta(i, e.trig.Tuple(id)[1:], inst, deltaLo) {
					filtered = append(filtered, id)
				}
			}
			kept = filtered
		}
		if e.anyMarked(e.deps.bodyPreds[i]) {
			fresh := e.discoverActive(i, ct, inst, func(yield func([]logic.TermID) bool) {
				e.ss.ForEachDelta(ct.body, inst, deltaLo, yield)
			})
			kept = e.mergeCanonical(ct, kept, fresh)
		}
		idx.perTGD[i] = kept
		idx.total += len(kept)
	}
	return idx
}

// collectTrigTuple appends the trigger tuple [tgd, body TermIDs...] for the
// binding to discBuf/sortBuf — the shared collection step of build, repair
// and the engine's discovery.
func (e *expander) collectTrigTuple(tgd int, ct *compiledTGD, bind []logic.TermID) {
	e.sortBuf = append(e.sortBuf, int32(len(e.discBuf)))
	e.discBuf = append(e.discBuf, uint32(tgd))
	for k := 0; k < ct.nBody; k++ {
		e.discBuf = append(e.discBuf, uint32(bind[k]))
	}
}

// sortDiscovered orders the collected trigger tuples canonically.
func (e *expander) sortDiscovered(ct *compiledTGD) {
	if len(e.sortBuf) > 1 {
		e.ds.stride = int32(ct.nBody) + 1
		sort.Sort(&e.ds)
	}
}

// deactivatedByDelta reports whether a trigger that was active at the parent
// is inactive at the child: since the parent admitted no head homomorphism
// extending the frontier bindings, one exists in the child iff it uses a
// delta atom — a delta-pinned search over the head pattern, O(delta) instead
// of a full activity check.
func (e *expander) deactivatedByDelta(tgd int, bt []uint32, inst *instance.Instance, deltaLo int32) bool {
	ct := &e.ct[tgd]
	e.ss.Reset(ct.head)
	for _, sl := range ct.frontierSlots {
		e.ss.Bind[sl] = logic.TermID(bt[sl])
	}
	found := false
	e.ss.ForEachDelta(ct.head, inst, deltaLo, func([]logic.TermID) bool {
		found = true
		return false
	})
	return found
}

// mergeCanonical merges two canonical-order, disjoint trigger-ID runs of one
// TGD into one canonical-order slice. Disjointness holds by construction: a
// fresh candidate's body homomorphism uses a delta atom, so it cannot equal
// an inherited (parent-instance) candidate.
func (e *expander) mergeCanonical(ct *compiledTGD, a, b []logic.TupleID) []logic.TupleID {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		return b
	}
	out := make([]logic.TupleID, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if e.compareTrig(ct, a[i], b[j]) <= 0 {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// compareTrig orders two interned triggers of the same TGD canonically:
// componentwise Term.Compare of the body bindings, matching discSorter.
func (e *expander) compareTrig(ct *compiledTGD, a, b logic.TupleID) int {
	ta, tb := e.trig.Tuple(a), e.trig.Tuple(b)
	for k := 1; k <= ct.nBody; k++ {
		if c := e.itab.CompareTermIDs(logic.TermID(ta[k]), logic.TermID(tb[k])); c != 0 {
			return c
		}
	}
	return 0
}

// stateIndex computes the index of a popped state: inherited and repaired
// from the parent's index when one is supplied (the steady-state path),
// rebuilt from scratch otherwise (the root, a parallel steal boundary, or
// the fullRescan baseline). The bool reports whether the repair path ran.
func (e *expander) stateIndex(par *trigIndex, inst *instance.Instance, deltaLo int32) (*trigIndex, bool) {
	if par != nil {
		return e.repairIndex(par, inst, deltaLo), true
	}
	return e.buildIndex(inst), false
}
