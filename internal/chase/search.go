package chase

// The ∀∃ derivation search subsystem: a best-first exploration of the space
// of restricted chase derivations, memoised by the 128-bit order-independent
// instance fingerprint (logic.Fingerprint) instead of rendered key strings.
//
// The search runs entirely on one shared interner:
//
//   - every explored chase state is an instance over the same term/pred IDs
//     (instance.NewWithInterner), so trigger tuples, nulls and fingerprint
//     caches agree across states;
//   - TGDs are slot-compiled once (compileSet) and trigger enumeration and
//     activity checks run the SlotSearch fast path, like the engine;
//   - trigger identity on paths is the interned tuple [tgd, body TermIDs...]
//     in a TupleTable — nodes store a 4-byte trigger ID and a parent
//     pointer, never a copied []Trigger path;
//   - nulls are invented per (trigger ID, existential index) — the paper's
//     c^{σ,h}_x — and interned with a *structural* hash (the trigger's
//     content, not the null's counter name), so fingerprints of states
//     reached along different paths collide exactly when the states merge;
//   - child states are deltas: generating a successor costs O(|result|)
//     membership probes and one fingerprint merge — no Clone, no rendering.
//     A node's instance is materialised (database + ancestor deltas) only
//     when the node is popped for expansion; generated-but-never-expanded
//     states (the majority, under memoisation) never build an instance.
//
// The frontier is a binary heap: SmallestFirst orders by instance size
// (FIFO among equals), replacing the previous implementation's full-queue
// sort.SliceStable per pop; BreadthFirst and DepthFirst are the plain
// queue/stack disciplines.
//
// The single-state expansion step (intern the vocabulary, compute the
// state's active-trigger index — inherited from the parent and repaired
// with the delta, see triggerindex.go — compute a successor's fingerprint
// and delta, invent nulls by structural identity) lives in the expander
// type so the sequential searcher below and the sharded parallel
// coordinator (parallel.go) share it: a parallel worker is an expander over
// a private interner, exchanging states symbolically at the boundary.

import (
	"container/heap"
	"context"
	"fmt"

	"airct/internal/instance"
	"airct/internal/logic"
	"airct/internal/tgds"
)

// SearchStrategy selects the frontier discipline of the ∀∃ search.
type SearchStrategy uint8

const (
	// SmallestFirst expands the smallest instance first (FIFO among equal
	// sizes): fixpoints are found sooner and the memoised frontier stays
	// tight. The default.
	SmallestFirst SearchStrategy = iota
	// BreadthFirst expands states in generation order.
	BreadthFirst
	// DepthFirst expands the most recently generated state first; finds
	// deep fixpoints fast but can chase a divergent branch to the budget.
	DepthFirst
	// IndexAware is SmallestFirst refined by the trigger index's free
	// branching-factor signal: among equal sizes, states generated under a
	// parent with fewer active triggers come first (they sit in a thinner
	// part of the derivation tree, closer to a fixpoint). The signal costs
	// nothing — trigIndex.total is already computed for every expansion.
	IndexAware
)

func (s SearchStrategy) String() string {
	switch s {
	case SmallestFirst:
		return "smallest"
	case BreadthFirst:
		return "bfs"
	case DepthFirst:
		return "dfs"
	case IndexAware:
		return "index"
	default:
		return fmt.Sprintf("SearchStrategy(%d)", uint8(s))
	}
}

// ParseSearchStrategy parses the CLI spelling of a strategy.
func ParseSearchStrategy(s string) (SearchStrategy, error) {
	switch s {
	case "smallest", "":
		return SmallestFirst, nil
	case "bfs":
		return BreadthFirst, nil
	case "dfs":
		return DepthFirst, nil
	case "index":
		return IndexAware, nil
	default:
		return 0, fmt.Errorf("chase: unknown search strategy %q (want smallest, bfs, dfs or index)", s)
	}
}

// SearchOptions configures the ∀∃ search. The zero value uses the defaults.
type SearchOptions struct {
	// MaxStates bounds the number of distinct instance states (0: 10_000).
	MaxStates int
	// MaxAtoms bounds the per-instance atom count (0: 200).
	MaxAtoms int
	// Strategy selects the frontier discipline.
	Strategy SearchStrategy
	// Workers sets the number of parallel search workers; 0 or 1 run the
	// sequential search. With W > 1 the fingerprint memo is sharded and each
	// worker owns a private interner (see parallel.go); verdicts are
	// invariant in W, frontier ordering under BreadthFirst/DepthFirst is
	// approximate, and SmallestFirst keeps per-worker priority frontiers
	// with work-stealing.
	Workers int
	// Seed seeds scheduling tie-breaks of the parallel search (the
	// work-stealing victim order). Verdicts are seed-invariant; schedules,
	// witnesses and stats need not be. Ignored by the sequential search.
	Seed int64
	// Cache, when non-nil, memoises whole search outcomes across runs as
	// ExistsOutcome entries keyed by (set fingerprint, instance fingerprint,
	// strategy, MaxAtoms) under the budget-monotonicity rule — see
	// ExistsOutcome. A hit replays the recorded run's verdict, witness and
	// statistics without exploring a single state; cancelled runs are never
	// stored. The key excludes Workers: verdicts are worker-invariant, so a
	// warm hit may replay a run recorded at a different worker count.
	Cache *Cache

	// fullRescan disables the delta-maintained trigger index and rebuilds
	// every popped state's active-trigger set by full re-enumeration — the
	// pre-index behaviour. Deliberately unexported: it exists so in-package
	// benchmarks can measure the index against its baseline and so the
	// differential tests can pin the two paths bit-identical; it is not a
	// supported mode.
	fullRescan bool

	// onExpand, when set, observes every sequential expansion right after
	// the state's index is computed, receiving the materialised instance and
	// the index's triggers in enumeration order — the differential tests'
	// hook for pinning the index against ActiveTriggers ground truth.
	// Unexported; test-only, sequential search only.
	onExpand func(inst *instance.Instance, active []Trigger)
}

// SearchStats counts the search's work. The JSON tags are the stable wire
// shape served by termcheckd's /v1/exists and /v1/stats responses; the
// `trigger-index:` CLI line reports the last three fields.
type SearchStats struct {
	// StatesExpanded counts popped states whose triggers were enumerated.
	StatesExpanded int `json:"states-expanded"`
	// MemoHits counts generated successors that merged into a visited state.
	MemoHits int `json:"memo-hits"`
	// PeakFrontier is the largest frontier size reached. Under parallelism
	// it is the peak of the atomically tracked total across all per-worker
	// frontiers — approximate, since pushes and pops race.
	PeakFrontier int `json:"peak-frontier"`
	// IndexRepairs counts expanded states whose active-trigger index was
	// inherited from the parent and repaired with the delta; IndexRebuilds
	// counts full re-enumerations (the root, parallel steal boundaries, and
	// every state when the index is disabled).
	IndexRepairs  int `json:"index-repairs"`
	IndexRebuilds int `json:"index-rebuilds"`
	// ActivityRechecks counts delta-pinned activity re-checks of inherited
	// candidates — the repair path's work currency.
	ActivityRechecks int `json:"activity-rechecks"`
}

// searchNode is one chase state: the delta against its parent plus the
// incremental fingerprint. The trigger path is recovered by walking parents.
type searchNode struct {
	parent *searchNode
	trig   logic.TupleID // trigger applied to parent; -1 at the root
	delta  []uint32      // flattened new atoms: [pid, args...]* (arity from pid)
	size   int           // instance atom count
	fp     logic.Fingerprint
	seq    int        // generation counter; heap tie-break
	btrig  int32      // parent's active-trigger count at generation; 0 at the root
	idx    *trigIndex // active-trigger index, set when the node is expanded
	kids   int        // frontier children that may still repair from idx
}

// frontierLess is the one definition of the frontier disciplines, shared by
// the sequential searchFrontier and the parallel recHeap so the two can
// never drift: SmallestFirst orders by (size, seq), BreadthFirst by seq
// ascending, DepthFirst by seq descending, IndexAware by (size, trig, seq)
// where trig is the parent's active-trigger count at generation —
// trigIndex.total, the free branching-factor signal.
func frontierLess(strat SearchStrategy, sizeA, trigA, seqA, sizeB, trigB, seqB int64) bool {
	switch strat {
	case BreadthFirst:
		return seqA < seqB
	case DepthFirst:
		return seqA > seqB
	case IndexAware:
		if sizeA != sizeB {
			return sizeA < sizeB
		}
		if trigA != trigB {
			return trigA < trigB
		}
		return seqA < seqB
	default: // SmallestFirst
		if sizeA != sizeB {
			return sizeA < sizeB
		}
		return seqA < seqB
	}
}

// searchFrontier is the heap of pending states.
type searchFrontier struct {
	nodes []*searchNode
	strat SearchStrategy
}

func (f *searchFrontier) Len() int { return len(f.nodes) }

func (f *searchFrontier) Less(i, j int) bool {
	a, b := f.nodes[i], f.nodes[j]
	return frontierLess(f.strat, int64(a.size), int64(a.btrig), int64(a.seq), int64(b.size), int64(b.btrig), int64(b.seq))
}

func (f *searchFrontier) Swap(i, j int) { f.nodes[i], f.nodes[j] = f.nodes[j], f.nodes[i] }

func (f *searchFrontier) Push(x any) { f.nodes = append(f.nodes, x.(*searchNode)) }

func (f *searchFrontier) Pop() any {
	n := len(f.nodes) - 1
	x := f.nodes[n]
	f.nodes[n] = nil
	f.nodes = f.nodes[:n]
	return x
}

// nullIdentitySeed starts the structural hash of an invented null; distinct
// from every term content hash by construction (those pass through fnv64).
var nullIdentitySeed = logic.Fingerprint{Hi: 0x9d39247e33776d41, Lo: 0x2af7398005aaa5c7}

// nullIdentity is the canonical fingerprint of the null c^{σ,h}_x: the TGD
// index σ, the body-binding term hashes of h in slot order, and the
// existential index of x, mixed order-sensitively from nullIdentitySeed.
// Binding hashes are content hashes for constants and canonical fingerprints
// for nulls, so the identity is interner-independent — the property the
// parallel search's symbolic state exchange relies on. Every code path that
// invents or renames nulls (expander.nullFor, the witness rebuilders) must
// go through this one function.
func nullIdentity(tgd uint32, bindingHashes []logic.Fingerprint, k int) logic.Fingerprint {
	h := nullIdentitySeed.MixUint64(uint64(tgd))
	for _, b := range bindingHashes {
		h = h.Mix(b)
	}
	return h.MixUint64(uint64(k))
}

// expander is the reusable single-state expansion step of the ∀∃ search: a
// private interner holding the deterministic startup vocabulary (compiled
// patterns first, then database atoms — so shared-prefix IDs agree across
// expanders built from the same inputs), the delta-maintained active-trigger
// index over a reused scratch instance (triggerindex.go), successor
// fingerprint/delta computation, and null invention by structural identity. The sequential searcher owns one; each
// parallel worker owns one. Single writer, no internal locking — the
// interner is never shared across expanders (see the concurrency contract in
// docs/ARCHITECTURE.md).
type expander struct {
	set *tgds.Set

	itab *logic.Interner // private identity of every state this expander touches
	ct   []compiledTGD

	trig        *logic.TupleTable                  // trigger identity: [tgd, body TermIDs...]
	structNulls map[uint64]logic.TermID            // (trigger ID, exist index) -> null
	nullByFp    map[logic.Fingerprint]logic.TermID // canonical identity -> local null
	namer       *logic.FreshNamer

	// nShared is the size of the startup vocabulary: IDs below it are the
	// shared prefix (identical across expanders over the same db and set),
	// IDs at or above it are invented nulls. See logic.SymTerm.
	nShared int

	rootDelta []uint32 // the database atoms, flattened [pid, args...]*
	rootFp    logic.Fingerprint
	rootSize  int

	// deps/predMark/predEpoch/nRechecks serve the delta-maintained trigger
	// index (triggerindex.go); nRechecks counts delta-pinned activity
	// re-checks and is drained into SearchStats by the owner.
	deps      *deltaDeps
	predMark  []uint32
	predEpoch uint32
	nRechecks int

	ss logic.SlotSearch
	ds discSorter

	// scratch is the reusable materialisation arena: every popped state is
	// rebuilt into this one instance (Reset between states), so
	// materialisation allocates no maps or tables in steady state. Callers
	// must not retain the instance across expansions.
	scratch *instance.Instance

	// scratch; see the engine's twins
	discBuf  []uint32
	sortBuf  []int32
	argbuf   []logic.TermID
	argraw   []uint32
	deltaBuf []uint32
	hashBuf  []logic.Fingerprint
}

// newExpander builds an expander for the database and set, interning the
// startup vocabulary in the canonical order: compiled patterns, then the
// database atoms. Two expanders over the same inputs mint identical shared
// IDs and an identical root fingerprint.
func newExpander(db *instance.Database, set *tgds.Set) *expander {
	e := &expander{
		set:         set,
		itab:        logic.NewInterner(),
		trig:        logic.NewTupleTable(64),
		structNulls: make(map[uint64]logic.TermID),
		nullByFp:    make(map[logic.Fingerprint]logic.TermID),
		namer:       logic.NewFreshNamer("n"),
	}
	e.ct = compileSet(set, e.itab)
	e.deps = newDeltaDeps(e.ct)
	e.ds = discSorter{itab: e.itab, disc: &e.discBuf, idx: &e.sortBuf}
	for _, a := range db.Atoms() {
		pid := e.itab.InternPred(a.Pred)
		off := len(e.rootDelta)
		e.rootDelta = append(e.rootDelta, uint32(pid))
		for _, t := range a.Args {
			e.rootDelta = append(e.rootDelta, uint32(e.itab.InternTerm(t)))
		}
		// Databases are duplicate-free sets, so each atom merges once.
		e.rootFp = e.rootFp.Merge(e.itab.HashAtomIDs(pid, e.rootDelta[off+1:]))
	}
	e.rootSize = db.Len()
	e.nShared = e.itab.NumTerms()
	return e
}

// addRootTo inserts the database atoms into the instance.
func (e *expander) addRootTo(inst *instance.Instance) {
	e.addDeltaTo(inst, e.rootDelta)
}

// scratchInstance returns the expander's reusable materialisation arena,
// emptied: a lite (ID-plane-only) instance — the slot search, activity
// checks and delta repairs read only identity tuples, posting lists and the
// fingerprint. The previous expansion's instance contents become invalid.
func (e *expander) scratchInstance(sizeHint int) *instance.Instance {
	if e.scratch == nil {
		e.scratch = instance.NewScratch(e.itab, sizeHint)
	} else {
		e.scratch.Reset()
	}
	return e.scratch
}

// addDeltaTo inserts a flattened [pid, args...]* delta of local IDs.
func (e *expander) addDeltaTo(inst *instance.Instance, d []uint32) {
	for j := 0; j < len(d); {
		pid := logic.PredID(d[j])
		ar := e.itab.Pred(pid).Arity
		e.argbuf = e.argbuf[:0]
		for k := 0; k < ar; k++ {
			e.argbuf = append(e.argbuf, logic.TermID(d[j+1+k]))
		}
		inst.AddTuple(pid, e.argbuf)
		j += 1 + ar
	}
}

// isActive mirrors engine.isActive against the given instance.
func (e *expander) isActive(tgd int, bt []uint32, inst *instance.Instance) bool {
	ct := &e.ct[tgd]
	e.ss.Reset(ct.head)
	for _, sl := range ct.frontierSlots {
		e.ss.Bind[sl] = logic.TermID(bt[sl])
	}
	found := false
	e.ss.ForEach(ct.head, inst, func([]logic.TermID) bool {
		found = true
		return false
	})
	return !found
}

// childState computes the successor of the state (inst, fp) under the
// active trigger trigID of TGD tgd with body bindings bt: the result atoms
// not already present merge into the returned fingerprint, the flattened new
// atoms are left in e.deltaBuf ([pid, args...]*), and added counts them.
// Nulls are invented (or reused) by structural identity, so the returned
// fingerprint is the same no matter which expander computes it.
func (e *expander) childState(inst *instance.Instance, fp logic.Fingerprint, trigID logic.TupleID, tgd int, bt []uint32) (logic.Fingerprint, int) {
	ct := &e.ct[tgd]
	e.deltaBuf = e.deltaBuf[:0]
	added := 0
	for _, ca := range ct.head.Atoms {
		e.argbuf = e.argbuf[:0]
		e.argraw = e.argraw[:0]
		for _, a := range ca.Args {
			var id logic.TermID
			switch {
			case a.Slot < 0: // rigid pattern term (constant-free TGDs never hit this)
				id = a.ID
			case int(a.Slot) < ct.nBody:
				id = logic.TermID(bt[a.Slot])
			default:
				id = e.nullFor(trigID, int(a.Slot)-ct.nBody)
			}
			e.argbuf = append(e.argbuf, id)
			e.argraw = append(e.argraw, uint32(id))
		}
		if inst.HasTuple(ca.Pred, e.argbuf) || e.deltaHas(ca.Pred, e.argraw) {
			continue
		}
		e.deltaBuf = append(e.deltaBuf, uint32(ca.Pred))
		e.deltaBuf = append(e.deltaBuf, e.argraw...)
		fp = fp.Merge(e.itab.HashAtomIDs(ca.Pred, e.argraw))
		added++
	}
	return fp, added
}

// deltaHas reports whether the atom (pid, raw...) is already in deltaBuf —
// a multi-head result can instantiate two head atoms identically.
func (e *expander) deltaHas(pid logic.PredID, raw []uint32) bool {
	d := e.deltaBuf
	for i := 0; i < len(d); {
		p := logic.PredID(d[i])
		ar := e.itab.Pred(p).Arity
		if p == pid {
			same := true
			for k := 0; k < ar; k++ {
				if d[i+1+k] != raw[k] {
					same = false
					break
				}
			}
			if same {
				return true
			}
		}
		i += 1 + ar
	}
	return false
}

// nullFor returns the interned null for the trigger's k-th existential
// variable, inventing it on first use under its canonical identity
// (nullIdentity over the trigger's content — the paper's c^{σ,h}_x) rather
// than its arbitrary counter name. Well-founded: every binding term was
// interned (and hashed) before the null it helps invent. The (trigger, k)
// cache makes repeats a single map probe; the fingerprint-keyed table
// (resolveNull) additionally unifies nulls that first arrived through a
// symbolic boundary exchange.
func (e *expander) nullFor(trigID logic.TupleID, k int) logic.TermID {
	key := uint64(uint32(trigID))<<32 | uint64(uint32(k))
	if id, ok := e.structNulls[key]; ok {
		return id
	}
	tup := e.trig.Tuple(trigID)
	e.hashBuf = e.hashBuf[:0]
	for _, b := range tup[1:] {
		e.hashBuf = append(e.hashBuf, e.itab.TermHash(logic.TermID(b)))
	}
	id := e.resolveNull(nullIdentity(tup[0], e.hashBuf, k))
	e.structNulls[key] = id
	return id
}

// resolveNull returns the local TermID of the null with the given canonical
// fingerprint, minting a fresh local name (with the fingerprint installed as
// its hash override) on first sight. This is the re-interning boundary of
// the parallel search: a null that crossed from another worker arrives as
// its fingerprint and leaves as a local ID.
func (e *expander) resolveNull(h logic.Fingerprint) logic.TermID {
	if id, ok := e.nullByFp[h]; ok {
		return id
	}
	id := e.itab.InternTermWithHash(e.namer.NextNull(), h)
	e.nullByFp[h] = id
	return id
}

// triggersOf materialises the index's public Trigger forms, in enumeration
// order (TGD ascending, canonical bindings within). Only the onExpand test
// hook calls this; the search itself never leaves interned identity.
func (s *searcher) triggersOf(idx *trigIndex) []Trigger {
	out := make([]Trigger, 0, idx.total)
	for tgd := range idx.perTGD {
		ct := &s.ct[tgd]
		for _, id := range idx.perTGD[tgd] {
			tup := s.trig.Tuple(id)
			h := logic.NewSubstitution()
			for i, v := range ct.bodyVars {
				h[v] = s.itab.Term(logic.TermID(tup[i+1]))
			}
			out = append(out, Trigger{TGDIndex: tgd, TGD: s.set.TGDs[tgd], H: h})
		}
	}
	return out
}

// searcher is the sequential search's engine-like state. Single writer,
// single run.
type searcher struct {
	*expander
	opts SearchOptions
	done <-chan struct{} // run context's cancellation channel; nil = background

	memo  map[logic.Fingerprint]struct{}
	front searchFrontier
	seq   int

	chain []*searchNode

	res *ExistsResult
}

// SearchTerminatingDerivation searches the space of restricted chase
// derivations of D w.r.t. T for one that reaches a fixpoint — the ∀∃ side
// of the paper's open question (3). See ExistsTerminatingDerivation for the
// semantics; this entry point exposes the strategy, budgets and worker
// count. With Workers > 1 the search runs on the sharded parallel
// coordinator (parallel.go); verdicts are identical, witnesses and stats
// may differ by schedule.
func SearchTerminatingDerivation(db *instance.Database, set *tgds.Set, opts SearchOptions) *ExistsResult {
	return SearchTerminatingDerivationContext(context.Background(), db, set, opts)
}

// SearchTerminatingDerivationContext is SearchTerminatingDerivation under a
// context: the sequential searcher polls ctx.Done() at every pop and the
// parallel coordinator propagates cancellation through its shared done flag,
// which every worker already checks per iteration and inside the expansion
// inner loop. A cancelled search returns Cancelled = true with
// Exhausted = false; uncancelled runs are byte-identical to the plain entry
// point.
func SearchTerminatingDerivationContext(ctx context.Context, db *instance.Database, set *tgds.Set, opts SearchOptions) *ExistsResult {
	if set.HasEGDs() {
		panic("chase: the ∀∃ derivation search is TGD-only: its state space memoises instances by fingerprint under trigger application, and equality steps rewrite states in place; gate EGD sets before calling")
	}
	if opts.MaxStates <= 0 {
		opts.MaxStates = 10_000
	}
	if opts.MaxAtoms <= 0 {
		opts.MaxAtoms = 200
	}
	var setFP, instFP logic.Fingerprint
	if opts.Cache != nil {
		setFP = set.Fingerprint()
		instFP = logic.FingerprintAtoms(db.Atoms())
		if o, ok := opts.Cache.LookupExistsOutcome(setFP, instFP, opts.Strategy, opts.MaxAtoms, opts.MaxStates); ok {
			return replayExistsOutcome(set, o)
		}
	}
	var res *ExistsResult
	if opts.Workers > 1 {
		res = newParallelSearch(db, set, opts).runContext(ctx)
	} else {
		s := &searcher{
			expander: newExpander(db, set),
			opts:     opts,
			done:     ctx.Done(),
			memo:     make(map[logic.Fingerprint]struct{}),
			front:    searchFrontier{strat: opts.Strategy},
			res:      &ExistsResult{Exhausted: true},
		}
		root := &searchNode{trig: -1, delta: s.rootDelta, size: s.rootSize, fp: s.rootFp}
		s.memo[root.fp] = struct{}{}
		heap.Push(&s.front, root)
		s.loop()
		res = s.res
	}
	if opts.Cache != nil && !res.Cancelled {
		opts.Cache.StoreExistsOutcome(setFP, instFP, opts.Strategy, opts.MaxAtoms, recordExistsOutcome(res, opts.MaxStates))
	}
	return res
}

// recordExistsOutcome converts a finished, uncancelled search result into
// the portable cache entry: the derivation's triggers become (TGD index,
// sorted variable/value pairs) with terms by value, so the entry holds no
// interner-bound identity.
func recordExistsOutcome(res *ExistsResult, maxStates int) *ExistsOutcome {
	o := &ExistsOutcome{
		Found:         res.Found,
		Exhausted:     res.Exhausted,
		Budget:        maxStates,
		StatesVisited: res.StatesVisited,
		Stats:         res.Stats,
	}
	for _, tr := range res.Derivation {
		vars := tr.TGD.BodyVars().Sorted()
		st := ExistsStep{TGD: int32(tr.TGDIndex), Vars: vars, Vals: make([]logic.Term, len(vars))}
		for i, v := range vars {
			st.Vals[i] = tr.H[v]
		}
		o.Derivation = append(o.Derivation, st)
	}
	return o
}

// replayExistsOutcome rebuilds the recorded run's ExistsResult against the
// caller's set. Trigger rendering sorts bindings, so a replayed witness
// prints byte-identically to the recorded one.
func replayExistsOutcome(set *tgds.Set, o *ExistsOutcome) *ExistsResult {
	res := &ExistsResult{
		Found:         o.Found,
		Exhausted:     o.Exhausted,
		StatesVisited: o.StatesVisited,
		Stats:         o.Stats,
	}
	for _, st := range o.Derivation {
		h := logic.NewSubstitution()
		for i, v := range st.Vars {
			h[v] = st.Vals[i]
		}
		res.Derivation = append(res.Derivation, Trigger{TGDIndex: int(st.TGD), TGD: set.TGDs[st.TGD], H: h})
	}
	return res
}

func (s *searcher) loop() {
	for s.front.Len() > 0 {
		if s.done != nil {
			select {
			case <-s.done:
				s.res.Exhausted = false
				s.res.Cancelled = true
				s.finish()
				return
			default:
			}
		}
		if s.front.Len() > s.res.Stats.PeakFrontier {
			s.res.Stats.PeakFrontier = s.front.Len()
		}
		cur := heap.Pop(&s.front).(*searchNode)
		inst := s.materialise(cur)
		// Inherit-and-repair the parent's active-trigger index; the parent
		// always has one (a child is generated only while its parent is being
		// expanded), so the rebuild path is the root's and fullRescan's.
		var par *trigIndex
		if !s.opts.fullRescan && cur.parent != nil {
			par = cur.parent.idx
		}
		deltaLo := int32(0)
		if cur.parent != nil {
			deltaLo = int32(cur.parent.size)
		}
		idx, repaired := s.stateIndex(par, inst, deltaLo)
		cur.idx = idx
		// Mirror the parallel worker's eviction: this expansion consumed one
		// of the parent's pending repairs; a drained (or childless) index is
		// dead weight and is dropped so the node graph doesn't pin every
		// expanded state's trigger list for the whole run.
		if cur.parent != nil && cur.parent.kids > 0 {
			if cur.parent.kids--; cur.parent.kids == 0 {
				cur.parent.idx = nil
			}
		}
		if repaired {
			s.res.Stats.IndexRepairs++
		} else {
			s.res.Stats.IndexRebuilds++
		}
		if s.opts.onExpand != nil {
			s.opts.onExpand(inst, s.triggersOf(idx))
		}
		s.res.Stats.StatesExpanded++
		if idx.total == 0 {
			s.res.Found = true
			s.res.Derivation = s.path(cur)
			s.finish()
			return
		}
		if cur.size < s.opts.MaxAtoms {
			s.generate(cur, inst, idx)
		} else {
			s.res.Exhausted = false
		}
		if cur.kids == 0 {
			cur.idx = nil
		}
	}
	s.finish()
}

func (s *searcher) finish() {
	s.res.StatesVisited = len(s.memo)
	s.res.Stats.ActivityRechecks = s.nRechecks
}

// generate creates the successor of cur under every active trigger of its
// index, in canonical order (TGD ascending, bindings canonical within): a
// delta node with an incrementally merged fingerprint. Memoised and
// over-budget successors are dropped without allocating.
func (s *searcher) generate(cur *searchNode, inst *instance.Instance, idx *trigIndex) {
	for tgd := range idx.perTGD {
		for _, trigID := range idx.perTGD[tgd] {
			trigTup := s.trig.Tuple(trigID)

			childFp, added := s.childState(inst, cur.fp, trigID, tgd, trigTup[1:])
			if _, dup := s.memo[childFp]; dup {
				s.res.Stats.MemoHits++
				continue
			}
			if len(s.memo) >= s.opts.MaxStates {
				s.res.Exhausted = false
				return
			}
			s.memo[childFp] = struct{}{}
			child := &searchNode{
				parent: cur,
				trig:   trigID,
				delta:  append([]uint32(nil), s.deltaBuf...),
				size:   cur.size + added,
				fp:     childFp,
				seq:    s.seq,
				btrig:  int32(idx.total),
			}
			s.seq++
			cur.kids++
			heap.Push(&s.front, child)
		}
	}
}

// materialise builds the node's instance — database plus ancestor deltas,
// root first — into the expander's reused scratch arena on the shared
// interner. Called once per expanded node; the returned instance is valid
// until the next materialise.
func (s *searcher) materialise(n *searchNode) *instance.Instance {
	s.chain = s.chain[:0]
	for m := n; m != nil; m = m.parent {
		s.chain = append(s.chain, m)
	}
	inst := s.scratchInstance(n.size)
	for i := len(s.chain) - 1; i >= 0; i-- {
		s.addDeltaTo(inst, s.chain[i].delta)
	}
	return inst
}

// path rebuilds the witnessing trigger sequence by walking parent pointers,
// materialising the public Trigger form from each interned tuple.
//
// The search mints null names in exploration order, but a caller replaying
// the witness through Derivation.Apply mints them in *path* order with its
// own factory — so the triggers' bindings are renamed here by simulating
// that replay: a fresh structural factory is driven exactly as Apply's
// Result will drive it, and each search null maps to the name the replay
// will use. Every null bound by a path trigger was invented by an earlier
// path step (a node's instance is the database plus its own path's
// results), so the rename map is total on the bindings.
func (s *searcher) path(n *searchNode) []Trigger {
	var ids []logic.TupleID
	for m := n; m.parent != nil; m = m.parent {
		ids = append(ids, m.trig)
	}
	out := make([]Trigger, len(ids))
	replay := NewNullFactory(StructuralNaming)
	ren := make(map[logic.TermID]logic.Term)
	for i := range ids {
		id := ids[len(ids)-1-i]
		tup := s.trig.Tuple(id)
		tgd := int(tup[0])
		ct := &s.ct[tgd]
		h := logic.NewSubstitution()
		for j, v := range ct.bodyVars {
			tid := logic.TermID(tup[j+1])
			t := s.itab.Term(tid)
			if t.IsNull() {
				if r, ok := ren[tid]; ok {
					t = r
				}
			}
			h[v] = t
		}
		tr := Trigger{TGDIndex: tgd, TGD: s.set.TGDs[tgd], H: h}
		// Mirror the replay factory's inventions for this step: Result
		// mints nulls for the existential variables in sorted order, which
		// is exactly ct.existVars order.
		for k, x := range ct.existVars {
			ren[s.nullFor(id, k)] = replay.NullFor(tr, x)
		}
		out[i] = tr
	}
	return out
}
