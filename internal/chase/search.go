package chase

// The ∀∃ derivation search subsystem: a best-first exploration of the space
// of restricted chase derivations, memoised by the 128-bit order-independent
// instance fingerprint (logic.Fingerprint) instead of rendered key strings.
//
// The search runs entirely on one shared interner:
//
//   - every explored chase state is an instance over the same term/pred IDs
//     (instance.NewWithInterner), so trigger tuples, nulls and fingerprint
//     caches agree across states;
//   - TGDs are slot-compiled once (compileSet) and trigger enumeration and
//     activity checks run the SlotSearch fast path, like the engine;
//   - trigger identity on paths is the interned tuple [tgd, body TermIDs...]
//     in a TupleTable — nodes store a 4-byte trigger ID and a parent
//     pointer, never a copied []Trigger path;
//   - nulls are invented per (trigger ID, existential index) — the paper's
//     c^{σ,h}_x — and interned with a *structural* hash (the trigger's
//     content, not the null's counter name), so fingerprints of states
//     reached along different paths collide exactly when the states merge;
//   - child states are deltas: generating a successor costs O(|result|)
//     membership probes and one fingerprint merge — no Clone, no rendering.
//     A node's instance is materialised (database + ancestor deltas) only
//     when the node is popped for expansion; generated-but-never-expanded
//     states (the majority, under memoisation) never build an instance.
//
// The frontier is a binary heap: SmallestFirst orders by instance size
// (FIFO among equals), replacing the previous implementation's full-queue
// sort.SliceStable per pop; BreadthFirst and DepthFirst are the plain
// queue/stack disciplines.

import (
	"container/heap"
	"fmt"
	"sort"

	"airct/internal/instance"
	"airct/internal/logic"
	"airct/internal/tgds"
)

// SearchStrategy selects the frontier discipline of the ∀∃ search.
type SearchStrategy uint8

const (
	// SmallestFirst expands the smallest instance first (FIFO among equal
	// sizes): fixpoints are found sooner and the memoised frontier stays
	// tight. The default.
	SmallestFirst SearchStrategy = iota
	// BreadthFirst expands states in generation order.
	BreadthFirst
	// DepthFirst expands the most recently generated state first; finds
	// deep fixpoints fast but can chase a divergent branch to the budget.
	DepthFirst
)

func (s SearchStrategy) String() string {
	switch s {
	case SmallestFirst:
		return "smallest"
	case BreadthFirst:
		return "bfs"
	case DepthFirst:
		return "dfs"
	default:
		return fmt.Sprintf("SearchStrategy(%d)", uint8(s))
	}
}

// ParseSearchStrategy parses the CLI spelling of a strategy.
func ParseSearchStrategy(s string) (SearchStrategy, error) {
	switch s {
	case "smallest", "":
		return SmallestFirst, nil
	case "bfs":
		return BreadthFirst, nil
	case "dfs":
		return DepthFirst, nil
	default:
		return 0, fmt.Errorf("chase: unknown search strategy %q (want smallest, bfs or dfs)", s)
	}
}

// SearchOptions configures the ∀∃ search. The zero value uses the defaults.
type SearchOptions struct {
	// MaxStates bounds the number of distinct instance states (0: 10_000).
	MaxStates int
	// MaxAtoms bounds the per-instance atom count (0: 200).
	MaxAtoms int
	// Strategy selects the frontier discipline.
	Strategy SearchStrategy
}

// SearchStats counts the search's work.
type SearchStats struct {
	// StatesExpanded counts popped states whose triggers were enumerated.
	StatesExpanded int
	// MemoHits counts generated successors that merged into a visited state.
	MemoHits int
	// PeakFrontier is the largest frontier size reached.
	PeakFrontier int
}

// searchNode is one chase state: the delta against its parent plus the
// incremental fingerprint. The trigger path is recovered by walking parents.
type searchNode struct {
	parent *searchNode
	trig   logic.TupleID // trigger applied to parent; -1 at the root
	delta  []uint32      // flattened new atoms: [pid, args...]* (arity from pid)
	size   int           // instance atom count
	fp     logic.Fingerprint
	seq    int // generation counter; heap tie-break
}

// searchFrontier is the heap of pending states.
type searchFrontier struct {
	nodes []*searchNode
	strat SearchStrategy
}

func (f *searchFrontier) Len() int { return len(f.nodes) }

func (f *searchFrontier) Less(i, j int) bool {
	a, b := f.nodes[i], f.nodes[j]
	switch f.strat {
	case BreadthFirst:
		return a.seq < b.seq
	case DepthFirst:
		return a.seq > b.seq
	default: // SmallestFirst
		if a.size != b.size {
			return a.size < b.size
		}
		return a.seq < b.seq
	}
}

func (f *searchFrontier) Swap(i, j int) { f.nodes[i], f.nodes[j] = f.nodes[j], f.nodes[i] }

func (f *searchFrontier) Push(x any) { f.nodes = append(f.nodes, x.(*searchNode)) }

func (f *searchFrontier) Pop() any {
	n := len(f.nodes) - 1
	x := f.nodes[n]
	f.nodes[n] = nil
	f.nodes = f.nodes[:n]
	return x
}

// nullIdentitySeed starts the structural hash of an invented null; distinct
// from every term content hash by construction (those pass through fnv64).
var nullIdentitySeed = logic.Fingerprint{Hi: 0x9d39247e33776d41, Lo: 0x2af7398005aaa5c7}

// searcher is the search's engine-like state. Single writer, single run.
type searcher struct {
	set  *tgds.Set
	opts SearchOptions

	itab *logic.Interner // shared identity of every explored state
	ct   []compiledTGD

	trig        *logic.TupleTable       // trigger identity: [tgd, body TermIDs...]
	structNulls map[uint64]logic.TermID // (trigger ID, exist index) -> null
	namer       *logic.FreshNamer

	memo  map[logic.Fingerprint]struct{}
	front searchFrontier
	seq   int

	ss logic.SlotSearch
	ds discSorter

	// scratch; see the engine's twins
	discBuf  []uint32
	sortBuf  []int32
	actBuf   []uint32 // flat active trigger tuples, stride per TGD
	actOff   []int32
	argbuf   []logic.TermID
	argraw   []uint32
	deltaBuf []uint32
	chain    []*searchNode

	res *ExistsResult
}

// SearchTerminatingDerivation searches the space of restricted chase
// derivations of D w.r.t. T for one that reaches a fixpoint — the ∀∃ side
// of the paper's open question (3). See ExistsTerminatingDerivation for the
// semantics; this entry point exposes the strategy and budgets.
func SearchTerminatingDerivation(db *instance.Database, set *tgds.Set, opts SearchOptions) *ExistsResult {
	if opts.MaxStates <= 0 {
		opts.MaxStates = 10_000
	}
	if opts.MaxAtoms <= 0 {
		opts.MaxAtoms = 200
	}
	s := &searcher{
		set:         set,
		opts:        opts,
		itab:        logic.NewInterner(),
		trig:        logic.NewTupleTable(64),
		structNulls: make(map[uint64]logic.TermID),
		namer:       logic.NewFreshNamer("n"),
		memo:        make(map[logic.Fingerprint]struct{}),
		front:       searchFrontier{strat: opts.Strategy},
		res:         &ExistsResult{Exhausted: true},
	}
	s.ct = compileSet(set, s.itab)
	s.ds = discSorter{itab: s.itab, disc: &s.discBuf, idx: &s.sortBuf}

	var rootDelta []uint32
	var rootFp logic.Fingerprint
	for _, a := range db.Atoms() {
		pid := s.itab.InternPred(a.Pred)
		off := len(rootDelta)
		rootDelta = append(rootDelta, uint32(pid))
		for _, t := range a.Args {
			rootDelta = append(rootDelta, uint32(s.itab.InternTerm(t)))
		}
		// Databases are duplicate-free sets, so each atom merges once.
		rootFp = rootFp.Merge(s.itab.HashAtomIDs(pid, rootDelta[off+1:]))
	}
	root := &searchNode{trig: -1, delta: rootDelta, size: db.Len(), fp: rootFp}
	s.memo[root.fp] = struct{}{}
	heap.Push(&s.front, root)
	s.loop()
	return s.res
}

func (s *searcher) loop() {
	for s.front.Len() > 0 {
		if s.front.Len() > s.res.Stats.PeakFrontier {
			s.res.Stats.PeakFrontier = s.front.Len()
		}
		cur := heap.Pop(&s.front).(*searchNode)
		inst := s.materialise(cur)
		s.collectActive(inst)
		s.res.Stats.StatesExpanded++
		if len(s.actOff) == 0 {
			s.res.Found = true
			s.res.Derivation = s.path(cur)
			s.res.StatesVisited = len(s.memo)
			return
		}
		if cur.size >= s.opts.MaxAtoms {
			s.res.Exhausted = false
			continue
		}
		s.generate(cur, inst)
	}
	s.res.StatesVisited = len(s.memo)
}

// generate creates the successor of cur under every active trigger
// (s.actBuf/actOff): a delta node with an incrementally merged fingerprint.
// Memoised and over-budget successors are dropped without allocating.
func (s *searcher) generate(cur *searchNode, inst *instance.Instance) {
	for _, off := range s.actOff {
		tgd := int(s.actBuf[off])
		ct := &s.ct[tgd]
		trigTup := s.actBuf[off : off+int32(ct.nBody)+1]
		trigID, _ := s.trig.Intern(trigTup)
		bt := trigTup[1:]

		childFp := cur.fp
		s.deltaBuf = s.deltaBuf[:0]
		added := 0
		for _, ca := range ct.head.Atoms {
			s.argbuf = s.argbuf[:0]
			s.argraw = s.argraw[:0]
			for _, a := range ca.Args {
				var id logic.TermID
				if int(a.Slot) < ct.nBody {
					id = logic.TermID(bt[a.Slot])
				} else {
					id = s.nullFor(trigID, int(a.Slot)-ct.nBody)
				}
				s.argbuf = append(s.argbuf, id)
				s.argraw = append(s.argraw, uint32(id))
			}
			if inst.HasTuple(ca.Pred, s.argbuf) || s.deltaHas(ca.Pred, s.argraw) {
				continue
			}
			s.deltaBuf = append(s.deltaBuf, uint32(ca.Pred))
			s.deltaBuf = append(s.deltaBuf, s.argraw...)
			childFp = childFp.Merge(s.itab.HashAtomIDs(ca.Pred, s.argraw))
			added++
		}
		if _, dup := s.memo[childFp]; dup {
			s.res.Stats.MemoHits++
			continue
		}
		if len(s.memo) >= s.opts.MaxStates {
			s.res.Exhausted = false
			return
		}
		s.memo[childFp] = struct{}{}
		child := &searchNode{
			parent: cur,
			trig:   trigID,
			delta:  append([]uint32(nil), s.deltaBuf...),
			size:   cur.size + added,
			fp:     childFp,
			seq:    s.seq,
		}
		s.seq++
		heap.Push(&s.front, child)
	}
}

// materialise builds the node's instance — database plus ancestor deltas,
// root first — on the shared interner. Called once per expanded node.
func (s *searcher) materialise(n *searchNode) *instance.Instance {
	s.chain = s.chain[:0]
	for m := n; m != nil; m = m.parent {
		s.chain = append(s.chain, m)
	}
	inst := instance.NewWithInterner(s.itab)
	for i := len(s.chain) - 1; i >= 0; i-- {
		d := s.chain[i].delta
		for j := 0; j < len(d); {
			pid := logic.PredID(d[j])
			ar := s.itab.Pred(pid).Arity
			s.argbuf = s.argbuf[:0]
			for k := 0; k < ar; k++ {
				s.argbuf = append(s.argbuf, logic.TermID(d[j+1+k]))
			}
			inst.AddTuple(pid, s.argbuf)
			j += 1 + ar
		}
	}
	return inst
}

// collectActive enumerates the active triggers on inst into actBuf/actOff,
// per TGD in canonical order — the slot-search equivalent of
// ActiveTriggers(set, inst).
func (s *searcher) collectActive(inst *instance.Instance) {
	s.actBuf = s.actBuf[:0]
	s.actOff = s.actOff[:0]
	for i := range s.ct {
		ct := &s.ct[i]
		s.discBuf = s.discBuf[:0]
		s.sortBuf = s.sortBuf[:0]
		s.ss.Reset(ct.body)
		s.ss.ForEach(ct.body, inst, func(bind []logic.TermID) bool {
			s.sortBuf = append(s.sortBuf, int32(len(s.discBuf)))
			s.discBuf = append(s.discBuf, uint32(i))
			for k := 0; k < ct.nBody; k++ {
				s.discBuf = append(s.discBuf, uint32(bind[k]))
			}
			return true
		})
		if len(s.sortBuf) > 1 {
			s.ds.stride = int32(ct.nBody) + 1
			sort.Sort(&s.ds)
		}
		for _, off := range s.sortBuf {
			tup := s.discBuf[off : off+int32(ct.nBody)+1]
			if s.isActive(i, tup[1:], inst) {
				s.actOff = append(s.actOff, int32(len(s.actBuf)))
				s.actBuf = append(s.actBuf, tup...)
			}
		}
	}
}

// isActive mirrors engine.isActive against the given instance.
func (s *searcher) isActive(tgd int, bt []uint32, inst *instance.Instance) bool {
	ct := &s.ct[tgd]
	s.ss.Reset(ct.head)
	for _, sl := range ct.frontierSlots {
		s.ss.Bind[sl] = logic.TermID(bt[sl])
	}
	found := false
	s.ss.ForEach(ct.head, inst, func([]logic.TermID) bool {
		found = true
		return false
	})
	return !found
}

// deltaHas reports whether the atom (pid, raw...) is already in deltaBuf —
// a multi-head result can instantiate two head atoms identically.
func (s *searcher) deltaHas(pid logic.PredID, raw []uint32) bool {
	d := s.deltaBuf
	for i := 0; i < len(d); {
		p := logic.PredID(d[i])
		ar := s.itab.Pred(p).Arity
		if p == pid {
			same := true
			for k := 0; k < ar; k++ {
				if d[i+1+k] != raw[k] {
					same = false
					break
				}
			}
			if same {
				return true
			}
		}
		i += 1 + ar
	}
	return false
}

// nullFor returns the interned null for the trigger's k-th existential
// variable, inventing it on first use with a structural hash: the hash of
// (TGD index, body binding term hashes, k) — the content of c^{σ,h}_x —
// rather than of the null's arbitrary counter name. Well-founded: every
// binding term was interned (and hashed) before the null it helps invent.
func (s *searcher) nullFor(trigID logic.TupleID, k int) logic.TermID {
	key := uint64(uint32(trigID))<<32 | uint64(uint32(k))
	if id, ok := s.structNulls[key]; ok {
		return id
	}
	tup := s.trig.Tuple(trigID)
	h := nullIdentitySeed.MixUint64(uint64(tup[0]))
	for _, b := range tup[1:] {
		h = h.Mix(s.itab.TermHash(logic.TermID(b)))
	}
	h = h.MixUint64(uint64(k))
	id := s.itab.InternTermWithHash(s.namer.NextNull(), h)
	s.structNulls[key] = id
	return id
}

// path rebuilds the witnessing trigger sequence by walking parent pointers,
// materialising the public Trigger form from each interned tuple.
//
// The search mints null names in exploration order, but a caller replaying
// the witness through Derivation.Apply mints them in *path* order with its
// own factory — so the triggers' bindings are renamed here by simulating
// that replay: a fresh structural factory is driven exactly as Apply's
// Result will drive it, and each search null maps to the name the replay
// will use. Every null bound by a path trigger was invented by an earlier
// path step (a node's instance is the database plus its own path's
// results), so the rename map is total on the bindings.
func (s *searcher) path(n *searchNode) []Trigger {
	var ids []logic.TupleID
	for m := n; m.parent != nil; m = m.parent {
		ids = append(ids, m.trig)
	}
	out := make([]Trigger, len(ids))
	replay := NewNullFactory(StructuralNaming)
	ren := make(map[logic.TermID]logic.Term)
	for i := range ids {
		id := ids[len(ids)-1-i]
		tup := s.trig.Tuple(id)
		tgd := int(tup[0])
		ct := &s.ct[tgd]
		h := logic.NewSubstitution()
		for j, v := range ct.bodyVars {
			tid := logic.TermID(tup[j+1])
			t := s.itab.Term(tid)
			if t.IsNull() {
				if r, ok := ren[tid]; ok {
					t = r
				}
			}
			h[v] = t
		}
		tr := Trigger{TGDIndex: tgd, TGD: s.set.TGDs[tgd], H: h}
		// Mirror the replay factory's inventions for this step: Result
		// mints nulls for the existential variables in sorted order, which
		// is exactly ct.existVars order.
		for k, x := range ct.existVars {
			ren[s.nullFor(id, k)] = replay.NullFor(tr, x)
		}
		out[i] = tr
	}
	return out
}
