package chase

import (
	"testing"

	"airct/internal/logic"
	"airct/internal/parser"
)

func TestDerivationManualSteps(t *testing.T) {
	prog := parser.MustParse(`
		P(a,b).
		s1: P(X,Y) -> R(X,Y).
		s2: P(X,Y) -> S(X).
	`)
	d := NewDerivation(prog.Database, prog.TGDs)
	if d.IsFixpoint() {
		t.Fatal("both TGDs are violated initially")
	}
	active := d.Active()
	if len(active) != 2 {
		t.Fatalf("active = %d", len(active))
	}
	if err := d.Apply(active[0]); err != nil {
		t.Fatal(err)
	}
	if err := d.Apply(active[1]); err != nil {
		t.Fatal(err)
	}
	if !d.IsFixpoint() {
		t.Error("fixpoint expected after both applications")
	}
	if d.Len() != 2 {
		t.Errorf("Len = %d", d.Len())
	}
	// Re-applying a now-inactive trigger errors.
	if err := d.Apply(active[0]); err == nil {
		t.Error("applying a non-active trigger must error")
	}
}

func TestDerivationApplyAtom(t *testing.T) {
	prog := parser.MustParse(`
		S(a).
		s1: S(X) -> R(X,Y).
	`)
	d := NewDerivation(prog.Database, prog.TGDs)
	want := logic.MustAtom("R", logic.Const("a"), logic.NewNull("any"))
	if err := d.ApplyAtom(want); err != nil {
		t.Fatal(err)
	}
	if !d.IsFixpoint() {
		t.Error("fixpoint expected")
	}
	if err := d.ApplyAtom(want); err == nil {
		t.Error("no active trigger remains")
	}
}

func TestDerivationRejectsForeignTrigger(t *testing.T) {
	prog := parser.MustParse(`
		S(a).
		s1: S(X) -> R(X,Y).
	`)
	d := NewDerivation(prog.Database, prog.TGDs)
	// A trigger whose body image is not in the instance.
	bogus := NewTrigger(0, prog.TGDs.TGDs[0],
		logic.NewSubstitution().Bind(prog.TGDs.TGDs[0].Body[0].Args[0], logic.Const("zz")))
	if err := d.Apply(bogus); err == nil {
		t.Error("foreign trigger must be rejected")
	}
}

// exampleB1 is Example B.1: the multi-head counterexample to the Fairness
// Theorem. R(x,y,y) → ∃z (R(x,z,y) ∧ R(z,y,y)); R(x,y,z) → R(z,z,z).
const exampleB1 = `
	R(a,b,b).
	mh1: R(X,Y,Y) -> R(X,Z,Y), R(Z,Y,Y).
	mh2: R(X,Y,Z) -> R(Z,Z,Z).
`

func TestExampleB1UnfairInfiniteDerivation(t *testing.T) {
	// Applying only mh1 forever is an infinite (unfair) derivation: each
	// application of mh1 to R(t,b,b) invents R(t,z,b) and R(z,b,b), and the
	// new R(z,b,b) again violates mh1 because R(b,b,b) never appears.
	prog := parser.MustParse(exampleB1)
	d := NewDerivation(prog.Database, prog.TGDs)
	for i := 0; i < 30; i++ {
		var mh1 *Trigger
		for _, tr := range d.Active() {
			if tr.TGD.Label == "mh1" {
				trc := tr
				mh1 = &trc
				break
			}
		}
		if mh1 == nil {
			t.Fatalf("step %d: mh1 must stay applicable forever", i)
		}
		if err := d.Apply(*mh1); err != nil {
			t.Fatal(err)
		}
	}
	// The derivation is unfair: mh2's trigger on R(a,b,b) stayed active.
	if d.IsFairAtHorizon() {
		t.Error("the mh1-only derivation must be unfair")
	}
}

func TestExampleB1FairDerivationsTerminate(t *testing.T) {
	// Every *fair* derivation of Example B.1 is finite: once R(b,b,b) is
	// derived (mh2), mh1 deactivates everywhere. The FIFO engine is fair.
	prog := parser.MustParse(exampleB1)
	run := RunChase(prog.Database, prog.TGDs, Options{Variant: Restricted, Strategy: FIFO, MaxSteps: 10000})
	if !run.Terminated() {
		t.Fatalf("fair (FIFO) restricted chase of Example B.1 must terminate, reason %v", run.Reason)
	}
	if !prog.TGDs.SatisfiedBy(run.Final) {
		t.Error("fixpoint must satisfy the set")
	}
	// Random fair-ish strategies terminate as well.
	for seed := int64(0); seed < 5; seed++ {
		r := RunChase(prog.Database, prog.TGDs, Options{Variant: Restricted, Strategy: Random, Seed: seed, MaxSteps: 10000})
		if !r.Terminated() {
			t.Errorf("seed %d: expected termination", seed)
		}
	}
}

func TestIsFairAtHorizonOnFixpoint(t *testing.T) {
	prog := parser.MustParse(`
		P(a,b).
		s1: P(X,Y) -> R(X,Y).
	`)
	d := NewDerivation(prog.Database, prog.TGDs)
	for !d.IsFixpoint() {
		if err := d.Apply(d.Active()[0]); err != nil {
			t.Fatal(err)
		}
	}
	if !d.IsFairAtHorizon() {
		t.Error("a fixpoint derivation is trivially fair")
	}
}
