package chase

import (
	"context"
	"testing"
	"time"

	"airct/internal/logic"
	"airct/internal/parser"
)

// ladderProgram diverges under the restricted chase: every invented value
// re-seeds S, so an unbounded run never reaches a fixpoint — the shape the
// cancellation tests need to keep an engine busy indefinitely.
const ladderProgram = `
	S(a).
	S(X) -> R(X,Y).
	R(X,Y) -> S(Y).
`

// cancelLatencyBound is deliberately generous against scheduler noise: the
// real promptness claim is "milliseconds, not the minutes an uncancelled
// 50M-step run would take".
const cancelLatencyBound = 5 * time.Second

func TestRunChaseContextCancelStopsPromptly(t *testing.T) {
	prog := parser.MustParse(ladderProgram)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	run := RunChaseContext(ctx, prog.Database, prog.TGDs, Options{
		Variant: Restricted, Strategy: FIFO, MaxSteps: 50_000_000,
	})
	elapsed := time.Since(start)
	if run.Reason != Cancelled {
		t.Fatalf("reason = %v, want Cancelled", run.Reason)
	}
	if elapsed > cancelLatencyBound {
		t.Errorf("cancelled run took %v; the engine is not observing ctx.Done() at its pop interval", elapsed)
	}
}

func TestRunChaseContextBackgroundMatchesPlainRun(t *testing.T) {
	prog := parser.MustParse(ladderProgram)
	opts := Options{Variant: Restricted, Strategy: FIFO, MaxSteps: 200}
	plain := RunChase(prog.Database, prog.TGDs, opts)
	bg := RunChaseContext(context.Background(), prog.Database, prog.TGDs, opts)
	if plain.Reason != bg.Reason || plain.StepsTaken != bg.StepsTaken || plain.Stats != bg.Stats {
		t.Errorf("Background-context run drifted: %v/%d/%+v vs %v/%d/%+v",
			bg.Reason, bg.StepsTaken, bg.Stats, plain.Reason, plain.StepsTaken, plain.Stats)
	}
}

func TestSearchContextCancelSequentialAndParallel(t *testing.T) {
	prog := parser.MustParse(ladderProgram)
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(20 * time.Millisecond)
			cancel()
		}()
		start := time.Now()
		res := SearchTerminatingDerivationContext(ctx, prog.Database, prog.TGDs, SearchOptions{
			MaxStates: 50_000_000,
			MaxAtoms:  1 << 20,
			Workers:   workers,
		})
		elapsed := time.Since(start)
		if !res.Cancelled {
			t.Fatalf("workers=%d: Cancelled = false after ctx fired (found=%v exhausted=%v)",
				workers, res.Found, res.Exhausted)
		}
		if res.Exhausted {
			t.Errorf("workers=%d: a cancelled search must not claim exhaustion", workers)
		}
		if elapsed > cancelLatencyBound {
			t.Errorf("workers=%d: cancelled search took %v", workers, elapsed)
		}
	}
}

func TestStageOutcomesCacheRoundTrip(t *testing.T) {
	c := NewCache()
	fp := logic.Fingerprint{Hi: 7, Lo: 9}
	inst := logic.Fingerprint{Hi: 11, Lo: 13}
	in := &StageOutcomes{
		Verdict:   "terminates",
		DecidedBy: "probe",
		Records: []StageRecord{
			{Stage: "full", Tier: 0, Verdict: "unknown", Detail: "set has existentials"},
			{Stage: "probe", Tier: 1, Decided: true, Verdict: "terminates", Steps: 64, DurationNS: 12345, Evidence: "σ1 pump"},
		},
	}
	if _, ok := c.LookupStageOutcomes(fp, inst, 42); ok {
		t.Fatal("lookup hit on an empty cache")
	}
	c.StoreStageOutcomes(fp, inst, 42, in)
	got, ok := c.LookupStageOutcomes(fp, inst, 42)
	if !ok {
		t.Fatal("stored entry not found")
	}
	if got.Verdict != in.Verdict || got.DecidedBy != in.DecidedBy || len(got.Records) != len(in.Records) {
		t.Errorf("round trip drifted: %+v vs %+v", got, in)
	}
	for i := range in.Records {
		if got.Records[i] != in.Records[i] {
			t.Errorf("record %d drifted: %+v vs %+v", i, got.Records[i], in.Records[i])
		}
	}
	// A different salt is a different entry: budgets must not collide.
	if _, ok := c.LookupStageOutcomes(fp, inst, 43); ok {
		t.Error("lookup under a different salt hit the same entry")
	}
	// A different instance fingerprint is a different entry: a run recorded
	// against one database must not replay for another (or for none).
	if _, ok := c.LookupStageOutcomes(fp, logic.Fingerprint{}, 42); ok {
		t.Error("lookup under a different instance fingerprint hit the same entry")
	}
}
