package chase

import (
	"testing"

	"airct/internal/parser"
)

func TestStatsQuantifyActivityCheckTradeoff(t *testing.T) {
	// The paper's §1 trade-off made measurable: the restricted chase pays
	// one activity check per considered trigger; the oblivious chase pays
	// none but applies every trigger. On Example 3.2 the restricted chase
	// applies fewer triggers than the oblivious chase.
	prog := parser.MustParse(`
		P(a,b).
		s1: P(X,Y) -> R(X,Y).
		s2: P(X,Y) -> S(X).
		s3: R(X,Y) -> S(X).
		s4: S(X) -> R(X,Y).
	`)
	res := RunChase(prog.Database, prog.TGDs, Options{Variant: Restricted, DropSteps: true})
	obl := RunChase(prog.Database, prog.TGDs, Options{Variant: Oblivious, MaxSteps: 100, DropSteps: true})
	if res.Stats.ActivityChecks == 0 {
		t.Error("restricted chase must perform activity checks")
	}
	if obl.Stats.ActivityChecks != 0 {
		t.Error("oblivious chase must not perform activity checks")
	}
	if res.StepsTaken >= obl.StepsTaken {
		t.Errorf("restricted steps %d must undercut oblivious steps %d",
			res.StepsTaken, obl.StepsTaken)
	}
	if res.Stats.TriggersEnqueued == 0 || obl.Stats.TriggersEnqueued == 0 {
		t.Error("both variants discover triggers")
	}
	if res.Stats.TriggersSkipped == 0 {
		t.Error("restricted chase must skip deactivated triggers on Example 3.2")
	}
}

func TestStatsSemiObliviousSkipsFrontierDuplicates(t *testing.T) {
	prog := parser.MustParse(`
		R(a,b). R(a,c).
		s1: R(X,Y) -> S(X,Z).
	`)
	run := RunChase(prog.Database, prog.TGDs, Options{Variant: SemiOblivious, MaxSteps: 100, DropSteps: true})
	if !run.Terminated() {
		t.Fatal("must terminate")
	}
	// Two triggers share the frontier class (X→a): one applies, one skips.
	if run.StepsTaken != 1 {
		t.Errorf("steps = %d, want 1", run.StepsTaken)
	}
	if run.Stats.TriggersSkipped < 1 {
		t.Errorf("skipped = %d, want ≥ 1", run.Stats.TriggersSkipped)
	}
}
