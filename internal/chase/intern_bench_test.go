package chase

import (
	"fmt"
	"testing"

	"airct/internal/parser"
	"airct/internal/workload"
)

// Dense-trigger workloads: many joins, heavy trigger discovery and dedup,
// activity checks on every pop. These are the workloads the interned-ID
// layer targets; BenchmarkRunChaseInterned (the new engine) against
// BenchmarkRunChaseReference (the string-keyed engine kept as the
// differential oracle) is the before/after of the interning refactor.

func densePrograms(b *testing.B) map[string]*parser.Program {
	b.Helper()
	closure := func(n int) *parser.Program {
		src := "E(X,Y), E(Y,Z) -> E(X,Z).\n"
		for i := 0; i < n; i++ {
			src += fmt.Sprintf("E(c%d,c%d).\n", i, (i+1)%n)
		}
		prog, err := parser.Parse(src)
		if err != nil {
			b.Fatal(err)
		}
		return prog
	}
	return map[string]*parser.Program{
		"closure-cycle-24": closure(24),
		"ontology-120":     workload.Ontology(120, 1),
		"exchange-150":     workload.Exchange(150, 1).Program,
	}
}

func benchEngines(b *testing.B, run func(*parser.Program, Variant) *Run) {
	for name, prog := range densePrograms(b) {
		for _, variant := range []Variant{Restricted, SemiOblivious} {
			prog, variant := prog, variant
			b.Run(fmt.Sprintf("%s/%v", name, variant), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if r := run(prog, variant); !r.Terminated() {
						b.Fatal("must terminate")
					}
				}
			})
		}
	}
}

// BenchmarkRunChaseInterned measures the interned engine on the dense
// workloads.
func BenchmarkRunChaseInterned(b *testing.B) {
	benchEngines(b, func(prog *parser.Program, v Variant) *Run {
		return RunChase(prog.Database, prog.TGDs, Options{Variant: v, DropSteps: true})
	})
}

// BenchmarkRunChaseReference measures the pre-interning string-keyed engine
// (the differential oracle) on the same workloads.
func BenchmarkRunChaseReference(b *testing.B) {
	benchEngines(b, func(prog *parser.Program, v Variant) *Run {
		return referenceRunChase(prog.Database, prog.TGDs, Options{Variant: v, DropSteps: true})
	})
}
