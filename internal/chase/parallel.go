package chase

// The sharded parallel ∀∃ search: W workers, each an expander over a
// PRIVATE interner, explore the derivation space together. Nothing ID-like
// ever crosses a worker boundary — the concurrency contract of
// docs/ARCHITECTURE.md (one writer per interner, no internal locking) is
// preserved by exchanging states *symbolically* and re-interning on the
// receiving side:
//
//   - The fingerprint memo is partitioned into shards routed by the
//     fingerprint's low bits, each a mutex-striped map from fingerprint to
//     the state's record. Claiming a fingerprint (the atomic "seen
//     before?" insert) is the only cross-worker synchronisation on the hot
//     path; the interners themselves take no locks.
//   - A state record is a compact symbolic delta: a link to the parent
//     state's record plus the trigger that produced it — the TGD index and
//     the body bindings encoded as logic.SymTerm (shared-prefix IDs for
//     constants, canonical 128-bit structural identities for nulls). The
//     new atoms need not be shipped at all: the receiving worker recomputes
//     result(σ,h) from its own compiled patterns when it materialises the
//     state, re-interning boundary nulls by fingerprint (expander.resolveNull).
//   - Every worker interns the same startup vocabulary in the same order
//     (newExpander), so shared-prefix IDs and all fingerprints agree across
//     workers by construction; a state's fingerprint is the same no matter
//     which worker computes it, which is what makes the sharded memo sound.
//
// Work distribution: a claimed state enters the frontier of the worker that
// generated it, every frontier is a strategy-ordered heap, and idle workers
// steal half of a victim's frontier per steal (one lock round-trip per
// batch) in a seeded rotation — the sharded priority frontier.
// Generators keep the local delta of each state they claim (workerCache),
// so expanding own work re-adds interned tuples exactly like the sequential
// searcher; only states that crossed a steal boundary (and their foreign
// ancestors) pay the symbolic re-interning decode. The active-trigger index
// (triggerindex.go) is likewise worker-local derived state: a worker that
// expanded a state's parent inherits and delta-repairs the parent's index,
// and a state that crossed a steal boundary rebuilds its index
// deterministically from the decoded instance, so the exchange format
// carries no index data. SmallestFirst therefore
// approximates the sequential global smallest-first order;
// BreadthFirst/DepthFirst order by a global atomic generation counter and
// are likewise approximate. Verdicts (Found / Exhausted on decisive runs)
// are invariant across worker counts and seeds; witnesses, stats and
// budget-cut outcomes may vary by schedule, exactly as they may vary across
// strategies.

import (
	"container/heap"
	"context"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"airct/internal/instance"
	"airct/internal/logic"
	"airct/internal/tgds"
)

// stateRec is one explored chase state in interner-independent form: the
// memo value and the unit of cross-worker exchange. The full instance is
// recomputed on demand (database + the trigger chain up to the root, via
// the parent links), so records stay small no matter how large states
// grow. Records are immutable after being claimed into the state table —
// which is what makes the lock-free parent-chain walk safe.
type stateRec struct {
	fp     logic.Fingerprint // this state's fingerprint (memo key)
	parent *stateRec         // parent state's record; nil at the root
	// bindings are the producing trigger's body-slot bindings, symbolically.
	bindings []logic.SymTerm
	tgd      int32  // producing TGD index; -1 at the root
	size     int32  // instance atom count (heap priority under SmallestFirst)
	seq      uint64 // global generation counter; heap tie-break and bfs/dfs order
	btrig    int32  // parent's active-trigger count at generation; 0 at the root
}

// claimStatus is the outcome of stateTable.claim.
type claimStatus uint8

const (
	claimNew  claimStatus = iota // fingerprint was unseen; record inserted
	claimDup                     // fingerprint already memoised
	claimOver                    // state budget exhausted; record not inserted
)

// memoShard is one stripe of the sharded fingerprint memo.
type memoShard struct {
	mu sync.Mutex
	m  map[logic.Fingerprint]*stateRec
}

// stateTable is the sharded fingerprint memo: the parallel twin of the
// sequential searcher's map[Fingerprint]struct{}, with the state records as
// values. Records link to their parents directly (immutable pointers, no
// lock needed to walk a chain); the table's job is the atomic claim and
// keeping every record reachable. Shards are routed by the fingerprint's
// low bits; the global state count enforces MaxStates exactly
// (compare-and-swap under the shard lock, so the budget is never
// overshot).
type stateTable struct {
	shards []memoShard
	mask   uint64
	count  atomic.Int64
	max    int64
}

func newStateTable(shardCount int, maxStates int) *stateTable {
	n := 1
	for n < shardCount {
		n <<= 1
	}
	t := &stateTable{shards: make([]memoShard, n), mask: uint64(n - 1), max: int64(maxStates)}
	for i := range t.shards {
		t.shards[i].m = make(map[logic.Fingerprint]*stateRec)
	}
	return t
}

func (t *stateTable) shard(fp logic.Fingerprint) *memoShard {
	return &t.shards[fp.Lo&t.mask]
}

// claim atomically answers "was fp seen before?" and, if not and the budget
// allows, inserts the record built by mk. The record is only built when it
// will be inserted, so duplicate successors (the majority, under
// memoisation) allocate nothing.
func (t *stateTable) claim(fp logic.Fingerprint, mk func() *stateRec) claimStatus {
	sh := t.shard(fp)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.m[fp]; ok {
		return claimDup
	}
	for {
		c := t.count.Load()
		if c >= t.max {
			return claimOver
		}
		if t.count.CompareAndSwap(c, c+1) {
			break
		}
	}
	sh.m[fp] = mk()
	return claimNew
}

// recHeap is the strategy-ordered container/heap implementation over state
// records — the same frontier disciplines as searchFrontier, sharing
// frontierLess so the ordering logic exists once.
type recHeap struct {
	nodes []*stateRec
	strat SearchStrategy
}

func (h *recHeap) Len() int { return len(h.nodes) }

func (h *recHeap) Less(i, j int) bool {
	a, b := h.nodes[i], h.nodes[j]
	return frontierLess(h.strat, int64(a.size), int64(a.btrig), int64(a.seq), int64(b.size), int64(b.btrig), int64(b.seq))
}

func (h *recHeap) Swap(i, j int) { h.nodes[i], h.nodes[j] = h.nodes[j], h.nodes[i] }

func (h *recHeap) Push(x any) { h.nodes = append(h.nodes, x.(*stateRec)) }

func (h *recHeap) Pop() any {
	n := len(h.nodes) - 1
	x := h.nodes[n]
	h.nodes[n] = nil
	h.nodes = h.nodes[:n]
	return x
}

// workFrontier is one worker's share of the sharded priority frontier.
// Owners push routed states; idle workers steal from the top.
type workFrontier struct {
	mu sync.Mutex
	h  recHeap
}

func (f *workFrontier) push(r *stateRec) {
	f.mu.Lock()
	heap.Push(&f.h, r)
	f.mu.Unlock()
}

func (f *workFrontier) pop() *stateRec {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.h.nodes) == 0 {
		return nil
	}
	return heap.Pop(&f.h).(*stateRec)
}

// popHalf pops up to half of the frontier (rounding up, at least one state)
// in ONE lock round-trip — the steal-half batching: a thief pays one
// victim-lock acquisition per batch instead of one per state. The
// best-priority record is returned for immediate expansion; the rest are
// appended to out, in pop (priority) order, for the thief to carry home.
func (f *workFrontier) popHalf(out *[]*stateRec) *stateRec {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := len(f.h.nodes)
	if n == 0 {
		return nil
	}
	first := heap.Pop(&f.h).(*stateRec)
	for take := (n + 1) / 2; take > 1; take-- {
		*out = append(*out, heap.Pop(&f.h).(*stateRec))
	}
	return first
}

// pushAll pushes a batch under one lock round-trip.
func (f *workFrontier) pushAll(recs []*stateRec) {
	f.mu.Lock()
	for _, r := range recs {
		heap.Push(&f.h, r)
	}
	f.mu.Unlock()
}

// ParallelSearch is the coordinator of the sharded ∀∃ search: it owns the
// sharded fingerprint memo, the per-worker frontiers, and the shared atomic
// counters, and assembles the ExistsResult when the workers finish. Built
// by SearchTerminatingDerivation when SearchOptions.Workers > 1.
type ParallelSearch struct {
	db   *instance.Database
	set  *tgds.Set
	opts SearchOptions

	table  *stateTable
	fronts []*workFrontier

	pending  atomic.Int64 // states claimed but not yet fully expanded
	frontLen atomic.Int64
	peak     atomic.Int64
	seq      atomic.Uint64

	expanded atomic.Int64
	memoHits atomic.Int64

	indexRepairs  atomic.Int64
	indexRebuilds atomic.Int64
	rechecks      atomic.Int64

	exhausted atomic.Bool // starts true; cleared by budget cuts, like the sequential flag
	cancelled atomic.Bool // set by the context watcher; surfaces as ExistsResult.Cancelled
	done      atomic.Bool

	winMu  sync.Mutex
	winner *stateRec
}

// newParallelSearch builds the coordinator; opts.MaxStates/MaxAtoms are
// already normalised by SearchTerminatingDerivation.
func newParallelSearch(db *instance.Database, set *tgds.Set, opts SearchOptions) *ParallelSearch {
	w := opts.Workers
	ps := &ParallelSearch{
		db:     db,
		set:    set,
		opts:   opts,
		table:  newStateTable(4*w, opts.MaxStates),
		fronts: make([]*workFrontier, w),
	}
	for i := range ps.fronts {
		ps.fronts[i] = &workFrontier{h: recHeap{strat: opts.Strategy}}
	}
	ps.exhausted.Store(true)
	return ps
}

// Run executes the search and assembles the result.
func (ps *ParallelSearch) Run() *ExistsResult {
	return ps.runContext(context.Background())
}

// runContext runs the search under a context. Cancellation rides the
// coordinator's existing done flag: a watcher goroutine trips it when
// ctx.Done() fires, and every worker already polls the flag once per
// scheduling iteration and once per successor inside expand's inner loop —
// so a cancelled search stops within one trigger expansion per worker.
func (ps *ParallelSearch) runContext(ctx context.Context) *ExistsResult {
	w := ps.opts.Workers
	workers := make([]*parallelWorker, w)
	var build sync.WaitGroup
	for i := 0; i < w; i++ {
		build.Add(1)
		go func(i int) {
			defer build.Done()
			workers[i] = &parallelWorker{id: i, ps: ps, e: newExpander(ps.db, ps.set),
				cache:    make(map[logic.Fingerprint][]uint32),
				idxCache: make(map[logic.Fingerprint]*trigIndex),
				kids:     make(map[logic.Fingerprint]int),
				rng:      rand.New(rand.NewSource(ps.opts.Seed + int64(i)*0x9E3779B9))}
		}(i)
	}
	build.Wait()

	root := &stateRec{fp: workers[0].e.rootFp, tgd: -1, size: int32(workers[0].e.rootSize)}
	ps.table.claim(root.fp, func() *stateRec { return root })
	ps.dispatch(0, root)

	var run sync.WaitGroup
	for _, wk := range workers {
		run.Add(1)
		go func(wk *parallelWorker) {
			defer run.Done()
			wk.run()
		}(wk)
	}
	var unwatch chan struct{}
	if ctx.Done() != nil {
		unwatch = make(chan struct{})
		go func() {
			select {
			case <-ctx.Done():
				ps.cancelled.Store(true)
				ps.exhausted.Store(false)
				ps.done.Store(true)
			case <-unwatch:
			}
		}()
	}
	run.Wait()
	if unwatch != nil {
		close(unwatch)
	}

	res := &ExistsResult{
		Exhausted:     ps.exhausted.Load(),
		Cancelled:     ps.cancelled.Load(),
		StatesVisited: int(ps.table.count.Load()),
	}
	res.Stats.StatesExpanded = int(ps.expanded.Load())
	res.Stats.MemoHits = int(ps.memoHits.Load())
	res.Stats.PeakFrontier = int(ps.peak.Load())
	res.Stats.IndexRepairs = int(ps.indexRepairs.Load())
	res.Stats.IndexRebuilds = int(ps.indexRebuilds.Load())
	res.Stats.ActivityRechecks = int(ps.rechecks.Load())
	if ps.winner != nil {
		res.Found = true
		res.Derivation = ps.buildWitness(workers[0].e, ps.winner)
	}
	return res
}

// dispatch enqueues a freshly claimed state on the frontier of the worker
// that generated it (locality: the generator caches the state's local
// delta); load balance comes from stealing.
func (ps *ParallelSearch) dispatch(owner int, r *stateRec) {
	ps.pending.Add(1)
	ps.fronts[owner].push(r)
	n := ps.frontLen.Add(1)
	for {
		p := ps.peak.Load()
		if n <= p || ps.peak.CompareAndSwap(p, n) {
			break
		}
	}
}

// announce records the first fixpoint state found and stops the search.
func (ps *ParallelSearch) announce(r *stateRec) {
	ps.winMu.Lock()
	if ps.winner == nil {
		ps.winner = r
	}
	ps.winMu.Unlock()
	ps.done.Store(true)
}

// buildWitness rebuilds the winning trigger sequence from the symbolic
// record chain, renaming nulls replay-consistently exactly as the
// sequential searcher.path does: a fresh structural factory is driven as
// Derivation.Apply's replay will drive it, and each canonical null identity
// maps to the name that replay will mint. Any expander's interner resolves
// the shared-prefix IDs — they agree across workers by construction.
func (ps *ParallelSearch) buildWitness(e *expander, win *stateRec) []Trigger {
	var chain []*stateRec
	for r := win; r.tgd >= 0; r = r.parent {
		chain = append(chain, r)
	}
	out := make([]Trigger, 0, len(chain))
	replay := NewNullFactory(StructuralNaming)
	ren := make(map[logic.Fingerprint]logic.Term)
	var hashes []logic.Fingerprint
	for i := len(chain) - 1; i >= 0; i-- {
		r := chain[i]
		ct := &e.ct[r.tgd]
		h := logic.NewSubstitution()
		hashes = hashes[:0]
		for j, v := range ct.bodyVars {
			st := r.bindings[j]
			hashes = append(hashes, e.itab.SymTermHash(st))
			if st.IsNull {
				h[v] = ren[st.NullFP]
			} else {
				h[v] = e.itab.Term(logic.TermID(st.Shared))
			}
		}
		tr := Trigger{TGDIndex: int(r.tgd), TGD: ps.set.TGDs[r.tgd], H: h}
		for k, x := range ct.existVars {
			ren[nullIdentity(uint32(r.tgd), hashes, k)] = replay.NullFor(tr, x)
		}
		out = append(out, tr)
	}
	return out
}

// parallelWorker is one search worker: an expander over a private interner
// plus scheduling scratch. All of its state is single-writer; the only
// shared structures it touches are the state table, the frontiers and the
// coordinator's atomics.
type parallelWorker struct {
	id  int
	ps  *ParallelSearch
	e   *expander
	rng *rand.Rand

	// cache holds the flattened local-ID delta ([pid, args...]*) of every
	// state this worker generated, keyed by fingerprint: the fast
	// materialisation path for own work. States claimed by other workers
	// (reached here only across a steal boundary) miss and decode
	// symbolically instead.
	cache map[logic.Fingerprint][]uint32

	// idxCache holds the active-trigger index of states this worker
	// expanded, keyed by fingerprint. A popped state whose parent was
	// expanded here repairs the parent's index with the delta; a state whose
	// parent was expanded on another worker (a steal boundary) rebuilds its
	// index deterministically from the decoded instance — the index is
	// derived state and never crosses a worker boundary, so the symbolic
	// exchange format is unchanged. TupleIDs in cached indexes are local to
	// this worker's trig table.
	//
	// kids counts, per cached fingerprint, the children dispatched locally
	// whose expansion may still repair from that entry: when the count
	// drains (or a state dispatches no local children at all) the entry is
	// evicted, so the cache tracks the live repair frontier instead of
	// every state ever expanded. Stolen children never drain their parent's
	// count — those entries are retained conservatively.
	idxCache map[logic.Fingerprint]*trigIndex
	kids     map[logic.Fingerprint]int

	chain    []*stateRec
	bt       []uint32    // scratch: [tgd, resolved body TermIDs...]
	stealBuf []*stateRec // scratch: batch carried home by a half-steal
}

// run is the worker loop: pop the own frontier, steal when empty, expand,
// and detect global termination when the last pending state drains.
func (w *parallelWorker) run() {
	idle := 0
	for {
		if w.ps.done.Load() {
			return
		}
		rec := w.ps.fronts[w.id].pop()
		if rec == nil {
			rec = w.steal()
		}
		if rec == nil {
			if w.ps.pending.Load() == 0 {
				w.ps.done.Store(true)
				return
			}
			idle++
			if idle > 64 {
				time.Sleep(20 * time.Microsecond)
			} else {
				runtime.Gosched()
			}
			continue
		}
		idle = 0
		w.ps.frontLen.Add(-1)
		w.expand(rec)
		if w.ps.pending.Add(-1) == 0 {
			w.ps.done.Store(true)
			return
		}
	}
}

// steal transfers half of a victim's frontier in one lock round-trip per
// side, visiting victims in a seeded rotation: the best-priority stolen
// record is returned for immediate expansion and the remainder of the batch
// is re-queued on the thief's own frontier. The moved states stay pending
// and stay in a frontier throughout, so the termination accounting
// (pending/frontLen) is untouched; verdict invariance across worker counts
// and seeds is pinned by the parallel_test.go matrix.
func (w *parallelWorker) steal() *stateRec {
	n := len(w.ps.fronts)
	start := w.rng.Intn(n)
	for i := 0; i < n; i++ {
		v := (start + i) % n
		if v == w.id {
			continue
		}
		if r := w.ps.fronts[v].popHalf(&w.stealBuf); r != nil {
			if len(w.stealBuf) > 0 {
				w.ps.fronts[w.id].pushAll(w.stealBuf)
				w.stealBuf = w.stealBuf[:0]
			}
			return r
		}
	}
	return nil
}

// expand materialises the state, computes its active-trigger index
// (inherited and delta-repaired when this worker expanded the parent,
// rebuilt deterministically after a symbolic steal-boundary decode
// otherwise), and claims each successor into the sharded memo — the
// parallel twin of the sequential searcher's loop body plus generate.
func (w *parallelWorker) expand(rec *stateRec) {
	e := w.e
	inst := w.materialise(rec)
	var par *trigIndex
	if !w.ps.opts.fullRescan && rec.parent != nil {
		par = w.idxCache[rec.parent.fp]
	}
	deltaLo := int32(0)
	if rec.parent != nil {
		deltaLo = rec.parent.size
	}
	before := e.nRechecks
	idx, repaired := e.stateIndex(par, inst, deltaLo)
	w.idxCache[rec.fp] = idx
	// This expansion consumed one locally-dispatched child of the parent;
	// evict the parent's index once its last local child has repaired.
	if rec.parent != nil {
		if n, ok := w.kids[rec.parent.fp]; ok {
			if n <= 1 {
				delete(w.kids, rec.parent.fp)
				delete(w.idxCache, rec.parent.fp)
			} else {
				w.kids[rec.parent.fp] = n - 1
			}
		}
	}
	// On every exit below, either register how many local children may
	// still repair from this state's index, or evict it right away.
	kidsDispatched := 0
	defer func() {
		if kidsDispatched > 0 {
			w.kids[rec.fp] = kidsDispatched
		} else {
			delete(w.idxCache, rec.fp)
		}
	}()
	w.ps.rechecks.Add(int64(e.nRechecks - before))
	if repaired {
		w.ps.indexRepairs.Add(1)
	} else {
		w.ps.indexRebuilds.Add(1)
	}
	w.ps.expanded.Add(1)
	if idx.total == 0 {
		w.ps.announce(rec)
		return
	}
	if int(rec.size) >= w.ps.opts.MaxAtoms {
		w.ps.exhausted.Store(false)
		return
	}
	for tgd := range idx.perTGD {
		ct := &e.ct[tgd]
		for _, trigID := range idx.perTGD[tgd] {
			if w.ps.done.Load() {
				return
			}
			trigTup := e.trig.Tuple(trigID)

			childFp, added := e.childState(inst, rec.fp, trigID, tgd, trigTup[1:])
			var child *stateRec
			switch w.ps.table.claim(childFp, func() *stateRec {
				bindings := make([]logic.SymTerm, ct.nBody)
				for j, b := range trigTup[1:] {
					bindings[j] = e.itab.EncodeTermSym(logic.TermID(b), e.nShared)
				}
				child = &stateRec{
					fp:       childFp,
					parent:   rec,
					bindings: bindings,
					tgd:      int32(tgd),
					size:     rec.size + int32(added),
					seq:      w.ps.seq.Add(1),
					btrig:    int32(idx.total),
				}
				return child
			}) {
			case claimDup:
				w.ps.memoHits.Add(1)
			case claimOver:
				w.ps.exhausted.Store(false)
				return
			case claimNew:
				w.cache[childFp] = append([]uint32(nil), e.deltaBuf...)
				kidsDispatched++
				w.ps.dispatch(w.id, child)
			}
		}
	}
}

// materialise rebuilds the state's instance on the worker's private
// interner: the database atoms, then each chain record root-first — from
// the worker's own delta cache when this worker generated the record, and
// otherwise by re-applying the record's trigger through the worker's own
// compiled patterns. Boundary nulls re-intern by canonical fingerprint, so
// a state first explored on another worker rebuilds here with identical
// membership and fingerprint, and the two per-record paths may mix freely
// along one chain.
func (w *parallelWorker) materialise(rec *stateRec) *instance.Instance {
	w.chain = w.chain[:0]
	for r := rec; r.tgd >= 0; r = r.parent {
		w.chain = append(w.chain, r)
	}
	inst := w.e.scratchInstance(int(rec.size))
	w.e.addRootTo(inst)
	for i := len(w.chain) - 1; i >= 0; i-- {
		r := w.chain[i]
		if d, ok := w.cache[r.fp]; ok {
			w.e.addDeltaTo(inst, d)
		} else {
			w.applyRec(inst, r)
		}
	}
	return inst
}

// applyRec re-applies one record's trigger to the instance: bindings
// resolve to local IDs (shared prefix verbatim, nulls by fingerprint), the
// trigger tuple is interned locally, and result(σ,h) is recomputed from the
// compiled head — the symbolic-delta decode step.
func (w *parallelWorker) applyRec(inst *instance.Instance, r *stateRec) {
	e := w.e
	ct := &e.ct[r.tgd]
	w.bt = w.bt[:0]
	w.bt = append(w.bt, uint32(r.tgd))
	for _, st := range r.bindings {
		if st.IsNull {
			w.bt = append(w.bt, uint32(e.resolveNull(st.NullFP)))
		} else {
			w.bt = append(w.bt, st.Shared)
		}
	}
	trigID, _ := e.trig.Intern(w.bt)
	bt := w.bt[1:]
	for _, ca := range ct.head.Atoms {
		e.argbuf = e.argbuf[:0]
		for _, a := range ca.Args {
			var id logic.TermID
			switch {
			case a.Slot < 0:
				id = a.ID
			case int(a.Slot) < ct.nBody:
				id = logic.TermID(bt[a.Slot])
			default:
				id = e.nullFor(trigID, int(a.Slot)-ct.nBody)
			}
			e.argbuf = append(e.argbuf, id)
		}
		inst.AddTuple(ca.Pred, e.argbuf)
	}
}
