package chase

// Unit tests for the persistent cache tier: a snapshot must round-trip
// every entry kind by value, produce deterministic bytes, refuse foreign
// headers cleanly, and degrade per-entry — never crash, never poison the
// cache — under byte-level corruption.

import (
	"bytes"
	"encoding/binary"
	"errors"
	"reflect"
	"testing"

	"airct/internal/logic"
)

// populateAllKinds stores one entry of each of the seven kinds and returns
// the stored values for later comparison.
func populateAllKinds(c *Cache) (SeedOutcome, *SeedIndex, *SeedPool, *StageOutcomes, *StickyOutcome, *ExistsOutcome, *CostModelEntry) {
	set, inst := fpOf("set"), fpOf("inst")
	so := SeedOutcome{Diverges: true, Method: "pump", Evidence: "step 3: R(a,n1)", Steps: 17, PumpDepth: 5}
	c.StoreSeedOutcome(set, inst, 100, so)
	si := &SeedIndex{Triggers: []SeedTrigger{
		{TGD: 0, Active: true, Bind: []logic.Term{logic.Const("a"), logic.NewNull("n1")}},
		{TGD: 2, Active: false, Bind: []logic.Term{logic.Var("X")}},
	}}
	c.StoreSeedIndex(set, inst, si)
	sp := &SeedPool{Seeds: [][]logic.Atom{
		{logic.MustAtom("R", logic.Const("a"), logic.Const("b"))},
		{logic.MustAtom("S", logic.NewNull("n2"))},
		nil,
	}}
	c.StoreSeedPool(set, 8, sp)
	sg := &StageOutcomes{Verdict: "terminating", DecidedBy: "probe", Records: []StageRecord{
		{Stage: "full-set", Tier: 0, Decided: false, Verdict: "unknown", Detail: "not full", Steps: 1, DurationNS: 12345},
		{Stage: "probe", Tier: 1, Decided: true, Verdict: "terminating", Detail: "saturated", Steps: 9, DurationNS: 6789, Seeds: 4, Saturated: 4, Depth: 3, Evidence: "σ2 guard-chain pump"},
	}}
	c.StoreStageOutcomes(set, inst, 0xBEEF, sg)
	st := &StickyOutcome{Terminates: false, Method: "büchi lasso", Complete: true,
		StatesExplored: 42, SeedIndex: -1,
		LassoPrefix: []string{"q0", "q1"}, LassoCycle: []string{"q1", "q2"}, LassoGap: 1}
	c.StoreStickyOutcome(set, 200000, st)
	eo := &ExistsOutcome{Found: true, Budget: 500, StatesVisited: 37,
		Derivation: []ExistsStep{{
			TGD:  1,
			Vars: []logic.Term{logic.Var("V1"), logic.Var("V2")},
			Vals: []logic.Term{logic.Const("a"), logic.NewNull("n3")},
		}},
		Stats: SearchStats{StatesExpanded: 36, MemoHits: 2, PeakFrontier: 5, IndexRepairs: 30, IndexRebuilds: 1, ActivityRechecks: 7}}
	c.StoreExistsOutcome(set, inst, SmallestFirst, 200, eo)
	cm := &CostModelEntry{Class: "g1s0f0:b2", Stages: []StageCostRecord{
		{Stage: "mfa", EwmaNS: 17_000_000, Attempts: 9, Decided: 1, EwmaDepth: 0},
		{Stage: "probe", EwmaNS: 350_000, Attempts: 9, Decided: 8, EwmaDepth: 21},
	}}
	c.StoreCostModel(cm)
	return so, si, sp, sg, st, eo, cm
}

func TestSnapshotRoundTripAllKinds(t *testing.T) {
	c := NewCache()
	so, si, sp, sg, st, eo, cm := populateAllKinds(c)
	set, inst := fpOf("set"), fpOf("inst")

	var buf bytes.Buffer
	if err := c.Snapshot(&buf); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	c2, rep, err := LoadCache(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("LoadCache: %v", err)
	}
	if rep.Restored != 7 || rep.Skipped != 0 || rep.Truncated {
		t.Fatalf("LoadReport = %+v, want 7 restored, clean", rep)
	}

	if got, ok := c2.LookupSeedOutcome(set, inst, 100); !ok || !reflect.DeepEqual(got, so) {
		t.Errorf("SeedOutcome round-trip = %+v, %v; want %+v", got, ok, so)
	}
	if got, ok := c2.LookupSeedIndex(set, inst); !ok || !reflect.DeepEqual(got, si) {
		t.Errorf("SeedIndex round-trip = %+v, %v; want %+v", got, ok, si)
	}
	if got, ok := c2.LookupSeedPool(set, 8); !ok || !reflect.DeepEqual(got, sp) {
		t.Errorf("SeedPool round-trip = %+v, %v; want %+v", got, ok, sp)
	}
	if got, ok := c2.LookupStageOutcomes(set, inst, 0xBEEF); !ok || !reflect.DeepEqual(got, sg) {
		t.Errorf("StageOutcomes round-trip = %+v, %v; want %+v", got, ok, sg)
	}
	if got, ok := c2.LookupStickyOutcome(set, 200000); !ok || !reflect.DeepEqual(got, st) {
		t.Errorf("StickyOutcome round-trip = %+v, %v; want %+v", got, ok, st)
	}
	if got, ok := c2.LookupExistsOutcome(set, inst, SmallestFirst, 200, 500); !ok || !reflect.DeepEqual(got, eo) {
		t.Errorf("ExistsOutcome round-trip = %+v, %v; want %+v", got, ok, eo)
	}
	if got, ok := c2.LookupCostModel(cm.Class); !ok || !reflect.DeepEqual(got, cm) {
		t.Errorf("CostModelEntry round-trip = %+v, %v; want %+v", got, ok, cm)
	}

	// Restored entries went through the normal store path: entry and byte
	// accounting must match the source cache exactly.
	a, b := c.Stats(), c2.Stats()
	if a.Entries != b.Entries || a.Bytes != b.Bytes {
		t.Errorf("accounting drifted across round-trip: source %d entries/%dB, restored %d entries/%dB",
			a.Entries, a.Bytes, b.Entries, b.Bytes)
	}
}

// TestSnapshotDeterministicBytes: equal contents stored in different orders
// must snapshot to identical bytes (entries are sorted by key on write).
func TestSnapshotDeterministicBytes(t *testing.T) {
	mk := func(reverse bool) []byte {
		c := NewCache()
		keys := []int{100, 200, 300}
		if reverse {
			keys = []int{300, 100, 200}
		}
		for _, budget := range keys {
			c.StoreSeedOutcome(fpOf("set"), fpOf("inst"), budget, SeedOutcome{Method: "m", Steps: budget})
		}
		c.StoreStickyOutcome(fpOf("other"), 99, &StickyOutcome{Terminates: true, Method: "sticky"})
		var buf bytes.Buffer
		if err := c.Snapshot(&buf); err != nil {
			t.Fatalf("Snapshot: %v", err)
		}
		return buf.Bytes()
	}
	a, b := mk(false), mk(true)
	if !bytes.Equal(a, b) {
		t.Errorf("snapshots of equal caches differ: %d vs %d bytes", len(a), len(b))
	}
}

func TestSnapshotEmptyCacheRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := NewCache().Snapshot(&buf); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	c, rep, err := LoadCache(bytes.NewReader(buf.Bytes()))
	if err != nil || rep.Restored != 0 || rep.Skipped != 0 || rep.Truncated {
		t.Fatalf("empty round-trip: report %+v, err %v", rep, err)
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Errorf("empty snapshot restored %d entries", st.Entries)
	}
}

// TestSnapshotRefusesForeignHeaders: a bad magic or an unknown version is
// an ErrSnapshotFormat refusal before any entry is restored.
func TestSnapshotRefusesForeignHeaders(t *testing.T) {
	c := NewCache()
	populateAllKinds(c)
	var buf bytes.Buffer
	if err := c.Snapshot(&buf); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	good := buf.Bytes()

	cases := map[string][]byte{
		"empty":     {},
		"short":     good[:10],
		"bad magic": append([]byte("notacsnp"), good[8:]...),
		"foreign version": func() []byte {
			b := bytes.Clone(good)
			binary.LittleEndian.PutUint32(b[8:12], snapshotVersion+1)
			return b
		}(),
	}
	for name, b := range cases {
		c2 := NewCache()
		rep, err := c2.Restore(bytes.NewReader(b))
		if !errors.Is(err, ErrSnapshotFormat) {
			t.Errorf("%s: err = %v, want ErrSnapshotFormat", name, err)
		}
		if rep.Restored != 0 {
			t.Errorf("%s: restored %d entries from a refused stream", name, rep.Restored)
		}
		if st := c2.Stats(); st.Entries != 0 {
			t.Errorf("%s: refused stream left %d entries in the cache", name, st.Entries)
		}
	}
}

// TestSnapshotCorruptionIsContained: a flipped payload byte fails that
// entry's CRC and skips it — the frames after it still restore. Truncation
// mid-frame stops cleanly with the prior entries intact. A nonsense frame
// length desynchronises and stops. None of it errors or panics.
func TestSnapshotCorruptionIsContained(t *testing.T) {
	c := NewCache()
	populateAllKinds(c)
	total := int(c.Stats().Entries)
	var buf bytes.Buffer
	if err := c.Snapshot(&buf); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	good := buf.Bytes()

	t.Run("flipped byte", func(t *testing.T) {
		b := bytes.Clone(good)
		// 16-byte header, 8-byte first frame header, then the payload: flip
		// a byte inside the first entry's key.
		b[16+8+3] ^= 0xFF
		c2 := NewCache()
		rep, err := c2.Restore(bytes.NewReader(b))
		if err != nil {
			t.Fatalf("Restore: %v", err)
		}
		if rep.Skipped != 1 || rep.Restored != total-1 || rep.Truncated {
			t.Errorf("report = %+v, want 1 skipped, %d restored, not truncated", rep, total-1)
		}
	})

	t.Run("truncated", func(t *testing.T) {
		c2 := NewCache()
		rep, err := c2.Restore(bytes.NewReader(good[:len(good)-5]))
		if err != nil {
			t.Fatalf("Restore: %v", err)
		}
		if !rep.Truncated || rep.Restored != total-1 {
			t.Errorf("report = %+v, want truncated with %d restored", rep, total-1)
		}
	})

	t.Run("nonsense frame length", func(t *testing.T) {
		b := bytes.Clone(good)
		binary.LittleEndian.PutUint32(b[16:20], 1<<30)
		c2 := NewCache()
		rep, err := c2.Restore(bytes.NewReader(b))
		if err != nil {
			t.Fatalf("Restore: %v", err)
		}
		if !rep.Truncated || rep.Restored != 0 {
			t.Errorf("report = %+v, want truncated, 0 restored", rep)
		}
	})

	// Every-offset fuzz: flipping any single byte anywhere in the stream
	// must never panic and never error beyond a format refusal.
	t.Run("every offset", func(t *testing.T) {
		for i := 0; i < len(good); i++ {
			b := bytes.Clone(good)
			b[i] ^= 0xFF
			c2 := NewCache()
			if _, err := c2.Restore(bytes.NewReader(b)); err != nil && !errors.Is(err, ErrSnapshotFormat) {
				t.Fatalf("offset %d: unexpected error %v", i, err)
			}
		}
	})
}

// TestSnapshotFileSaveLoad exercises the atomic file helpers, including the
// missing-file path callers use to detect a cold start.
func TestSnapshotFileSaveLoad(t *testing.T) {
	c := NewCache()
	populateAllKinds(c)
	path := t.TempDir() + "/cache.snap"

	if _, _, err := LoadCacheFile(path); err == nil {
		t.Fatal("LoadCacheFile on a missing path succeeded")
	}
	if err := SaveCacheFile(c, path); err != nil {
		t.Fatalf("SaveCacheFile: %v", err)
	}
	c2, rep, err := LoadCacheFile(path)
	if err != nil {
		t.Fatalf("LoadCacheFile: %v", err)
	}
	if rep.Restored != int(c.Stats().Entries) || rep.Skipped != 0 || rep.Truncated {
		t.Errorf("LoadReport = %+v, want all %d restored", rep, c.Stats().Entries)
	}
	if a, b := c.Stats(), c2.Stats(); a.Entries != b.Entries || a.Bytes != b.Bytes {
		t.Errorf("file round-trip drifted: %d/%dB vs %d/%dB", a.Entries, a.Bytes, b.Entries, b.Bytes)
	}
}

// TestSnapshotExistsLadderRoundTrip pins the ∀∃ ladder's frame (ROADMAP
// 5c): a key holding both a decisive and a deep inconclusive rung writes
// one frame carrying both, restores to a ladder serving the same queries,
// restores to the same byte accounting, and re-snapshots to identical
// bytes.
func TestSnapshotExistsLadderRoundTrip(t *testing.T) {
	c := NewCache()
	set, inst := fpOf("ladder-set"), fpOf("ladder-inst")
	dec := &ExistsOutcome{Found: true, Budget: 2000, StatesVisited: 37,
		Derivation: []ExistsStep{{
			TGD:  0,
			Vars: []logic.Term{logic.Var("X")},
			Vals: []logic.Term{logic.NewNull("n1")},
		}},
		Stats: SearchStats{StatesExpanded: 36, PeakFrontier: 4}}
	inc := &ExistsOutcome{Budget: 1000, StatesVisited: 1000,
		Stats: SearchStats{StatesExpanded: 999, PeakFrontier: 12}}
	c.StoreExistsOutcome(set, inst, SmallestFirst, 80, inc)
	c.StoreExistsOutcome(set, inst, SmallestFirst, 80, dec)

	var buf bytes.Buffer
	if err := c.Snapshot(&buf); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	c2, rep, err := LoadCache(bytes.NewReader(buf.Bytes()))
	if err != nil || rep.Restored != 1 || rep.Skipped != 0 {
		t.Fatalf("restore: report %+v, err %v (want 1 frame for the whole ladder)", rep, err)
	}
	if got, ok := c2.LookupExistsOutcome(set, inst, SmallestFirst, 80, 2500); !ok || !reflect.DeepEqual(got, dec) {
		t.Errorf("decisive rung round-trip = %+v, %v; want %+v", got, ok, dec)
	}
	if got, ok := c2.LookupExistsOutcome(set, inst, SmallestFirst, 80, 500); !ok || !reflect.DeepEqual(got, inc) {
		t.Errorf("inconclusive rung round-trip = %+v, %v; want %+v", got, ok, inc)
	}
	a, b := c.Stats(), c2.Stats()
	if a.Entries != b.Entries || a.Bytes != b.Bytes {
		t.Errorf("accounting drifted: source %d entries/%dB, restored %d entries/%dB",
			a.Entries, a.Bytes, b.Entries, b.Bytes)
	}
	var buf2 bytes.Buffer
	if err := c2.Snapshot(&buf2); err != nil {
		t.Fatalf("re-snapshot: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Errorf("re-snapshot differs: %d vs %d bytes", buf.Len(), buf2.Len())
	}
}
