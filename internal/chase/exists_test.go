package chase

import (
	"testing"

	"airct/internal/parser"
)

func TestExistsTerminatingOnTerminatingProgram(t *testing.T) {
	prog := parser.MustParse(`
		P(a,b).
		s1: P(X,Y) -> R(X,Y).
		s2: P(X,Y) -> S(X).
	`)
	res := ExistsTerminatingDerivation(prog.Database, prog.TGDs, 0, 0)
	if !res.Found {
		t.Fatal("terminating program must have a finite derivation")
	}
	if len(res.Derivation) != 2 {
		t.Errorf("derivation length = %d, want 2", len(res.Derivation))
	}
	// The witness replays.
	d := NewDerivation(prog.Database, prog.TGDs)
	for _, tr := range res.Derivation {
		if err := d.Apply(tr); err != nil {
			t.Fatalf("witness must replay: %v", err)
		}
	}
	if !d.IsFixpoint() {
		t.Error("witness must end in a fixpoint")
	}
}

func TestExistsTerminatingOrderSensitive(t *testing.T) {
	// σ1: R(x,y) → ∃z R(y,z); σ2: R(x,y) → R(y,x).
	// Firing σ2 first yields the fixpoint {R(a,b), R(b,a)}: σ1 becomes
	// satisfied in both directions. Firing σ1 eagerly diverges. The
	// searcher must find the terminating order.
	prog := parser.MustParse(`
		R(a,b).
		grow: R(X,Y) -> R(Y,Z).
		swap: R(X,Y) -> R(Y,X).
	`)
	res := ExistsTerminatingDerivation(prog.Database, prog.TGDs, 5000, 50)
	if !res.Found {
		t.Fatalf("a terminating order exists (swap first): %+v", res)
	}
	// Replay and check the fixpoint is the 2-atom instance.
	d := NewDerivation(prog.Database, prog.TGDs)
	for _, tr := range res.Derivation {
		if err := d.Apply(tr); err != nil {
			t.Fatal(err)
		}
	}
	if !d.IsFixpoint() {
		t.Fatal("not a fixpoint")
	}
	if d.Instance().Len() != 2 {
		t.Errorf("smart order yields 2 atoms, got %v", d.Instance())
	}
	// Contrast: the eager-grow (LIFO-ish) engine derivation diverges.
	run := RunChase(prog.Database, prog.TGDs, Options{Variant: Restricted, Strategy: FIFO, MaxSteps: 100})
	_ = run // FIFO may or may not diverge here; the point is ∃, not ∀.
}

func TestExistsTerminatingExhaustsOnPureDivergence(t *testing.T) {
	// Every derivation of the ladder is infinite: the search must exhaust
	// the bounded space without finding a fixpoint.
	prog := parser.MustParse(`
		S(a).
		grow: S(X) -> R(X,Y).
		next: R(X,Y) -> S(Y).
	`)
	res := ExistsTerminatingDerivation(prog.Database, prog.TGDs, 200, 12)
	if res.Found {
		t.Fatal("ladder has no finite derivation")
	}
	if res.Exhausted {
		t.Error("budget must have stopped the (infinite) search")
	}
}

func TestExistsTerminatingExampleB1(t *testing.T) {
	// Example B.1: infinite derivations exist, but firing mh2 first
	// deactivates everything — a finite derivation exists and the search
	// finds it.
	prog := parser.MustParse(`
		R(a,b,b).
		mh1: R(X,Y,Y) -> R(X,Z,Y), R(Z,Y,Y).
		mh2: R(X,Y,Z) -> R(Z,Z,Z).
	`)
	res := ExistsTerminatingDerivation(prog.Database, prog.TGDs, 5000, 60)
	if !res.Found {
		t.Fatalf("Example B.1 admits finite derivations: %+v", res)
	}
}

func TestExistsTerminatingStateMemoisation(t *testing.T) {
	// Two independent rules: 2 orders, but only 4 distinct states
	// (diamond); memoisation must keep StatesVisited at 4, not 5+.
	prog := parser.MustParse(`
		P(a).
		s1: P(X) -> Q(X).
		s2: P(X) -> R(X).
	`)
	res := ExistsTerminatingDerivation(prog.Database, prog.TGDs, 0, 0)
	if !res.Found {
		t.Fatal("must terminate")
	}
	if res.StatesVisited > 4 {
		t.Errorf("diamond has 4 states, visited %d", res.StatesVisited)
	}
}
