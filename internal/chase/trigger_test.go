package chase

import (
	"strings"
	"testing"

	"airct/internal/logic"
	"airct/internal/parser"
)

func TestAllTriggersAndActiveTriggers(t *testing.T) {
	prog := parser.MustParse(`
		R(a,b). R(b,c). S(a).
		s1: R(X,Y) -> S(X).
	`)
	inst := prog.Database.Instance()
	all := AllTriggers(prog.TGDs, inst)
	if len(all) != 2 {
		t.Fatalf("AllTriggers = %d, want 2", len(all))
	}
	active := ActiveTriggers(prog.TGDs, inst)
	// S(a) already present, so only the R(b,c) trigger is active.
	if len(active) != 1 {
		t.Fatalf("ActiveTriggers = %d, want 1: %s", len(active), FormatTriggers(active))
	}
	if got := active[0].H.ApplyTerm(active[0].TGD.Body[0].Args[0]); got != logic.Const("b") {
		t.Errorf("active trigger binds X to %v, want b", got)
	}
}

func TestTriggerKeys(t *testing.T) {
	prog := parser.MustParse(`
		R(a,b).
		s1: R(X,Y) -> T(X,Z).
	`)
	inst := prog.Database.Instance()
	trs := AllTriggers(prog.TGDs, inst)
	if len(trs) != 1 {
		t.Fatal("one trigger expected")
	}
	tr := trs[0]
	if tr.Key() == tr.FrontierKey() {
		t.Error("frontier key must drop the non-frontier binding of Y")
	}
	if !strings.HasPrefix(tr.Key(), "0|") {
		t.Errorf("Key = %q", tr.Key())
	}
	if tr.String() == "" {
		t.Error("String must render")
	}
}

func TestFrontierKeyIdentifiesFrontierClass(t *testing.T) {
	prog := parser.MustParse(`
		R(a,b). R(a,c).
		s1: R(X,Y) -> S(X,Z).
	`)
	inst := prog.Database.Instance()
	trs := AllTriggers(prog.TGDs, inst)
	if len(trs) != 2 {
		t.Fatal("two triggers expected")
	}
	if trs[0].Key() == trs[1].Key() {
		t.Error("full keys must differ")
	}
	// Only X is frontier; both triggers bind X to a.
	if trs[0].FrontierKey() != trs[1].FrontierKey() {
		t.Error("frontier keys must coincide")
	}
}

func TestResultInventsSharedNulls(t *testing.T) {
	prog := parser.MustParse(`
		R(a,b).
		s1: R(X,Y) -> T(X,Z,Z).
	`)
	inst := prog.Database.Instance()
	tr := AllTriggers(prog.TGDs, inst)[0]
	atoms := Result(tr, NewNullFactory(StructuralNaming))
	if len(atoms) != 1 {
		t.Fatal("single-head result")
	}
	a := atoms[0]
	if a.Args[0] != logic.Const("a") {
		t.Errorf("frontier must be propagated: %v", a)
	}
	if !a.Args[1].IsNull() || a.Args[1] != a.Args[2] {
		t.Errorf("the two occurrences of Z must be the same null: %v", a)
	}
}

func TestStructuralNamingIsStable(t *testing.T) {
	prog := parser.MustParse(`
		R(a,b).
		s1: R(X,Y) -> T(X,Z).
	`)
	inst := prog.Database.Instance()
	tr := AllTriggers(prog.TGDs, inst)[0]
	f := NewNullFactory(StructuralNaming)
	a1 := Result(tr, f)[0]
	a2 := Result(tr, f)[0]
	if !a1.Equal(a2) {
		t.Error("same trigger must produce the same atom under structural naming")
	}
	g := NewNullFactory(CounterNaming)
	b1 := Result(tr, g)[0]
	b2 := Result(tr, g)[0]
	if b1.Equal(b2) {
		t.Error("counter naming mints fresh nulls per call")
	}
}

func TestMultiHeadResultSharesNullAssignment(t *testing.T) {
	// Example B.1's first TGD: R(x,y,y) → ∃z R(x,z,y), R(z,y,y).
	prog := parser.MustParse(`
		R(a,b,b).
		mh: R(X,Y,Y) -> R(X,Z,Y), R(Z,Y,Y).
	`)
	inst := prog.Database.Instance()
	trs := AllTriggers(prog.TGDs, inst)
	if len(trs) != 1 {
		t.Fatalf("triggers = %d", len(trs))
	}
	atoms := Result(trs[0], NewNullFactory(StructuralNaming))
	if len(atoms) != 2 {
		t.Fatal("two head atoms")
	}
	// The invented z must be the same null in both atoms.
	if atoms[0].Args[1] != atoms[1].Args[0] {
		t.Errorf("z differs across head atoms: %v vs %v", atoms[0], atoms[1])
	}
}

func TestIsActive(t *testing.T) {
	prog := parser.MustParse(`
		R(a,b).
		s1: R(X,Y) -> R(X,Z).
	`)
	inst := prog.Database.Instance()
	tr := AllTriggers(prog.TGDs, inst)[0]
	// R(a,b) itself witnesses ∃Z R(a,Z): not active (intro example).
	if IsActive(tr, inst) {
		t.Error("intro-example trigger must not be active")
	}
}

func TestFrontierTerms(t *testing.T) {
	prog := parser.MustParse(`
		R(a,b).
		s1: R(X,Y) -> T(X,Z,X).
	`)
	inst := prog.Database.Instance()
	tr := AllTriggers(prog.TGDs, inst)[0]
	fr := FrontierTerms(tr)
	if len(fr) != 1 || !fr.Has(logic.Const("a")) {
		t.Errorf("FrontierTerms = %v", fr.Sorted())
	}
}

func TestStops(t *testing.T) {
	// β = T(a, n, n) produced with frontier {a}. α = T(a, b, b) stops β:
	// map n→b fixing a. α′ = T(c, b, b) does not (frontier mismatch).
	frontier := logic.NewTermSet(logic.Const("a"))
	beta := logic.MustAtom("T", logic.Const("a"), logic.NewNull("n"), logic.NewNull("n"))
	if !Stops(logic.MustAtom("T", logic.Const("a"), logic.Const("b"), logic.Const("b")), beta, frontier) {
		t.Error("T(a,b,b) must stop T(a,n,n)")
	}
	if Stops(logic.MustAtom("T", logic.Const("c"), logic.Const("b"), logic.Const("b")), beta, frontier) {
		t.Error("frontier term must be fixed")
	}
	if Stops(logic.MustAtom("T", logic.Const("a"), logic.Const("b"), logic.Const("c")), beta, frontier) {
		t.Error("the repeated null must map consistently")
	}
	if Stops(logic.MustAtom("U", logic.Const("a"), logic.Const("b"), logic.Const("b")), beta, frontier) {
		t.Error("predicate mismatch")
	}
	// Two copies of the same atom stop each other (Section 3.1).
	if !Stops(beta, beta, frontier) {
		t.Error("an atom stops itself")
	}
}

func TestTriggersInvolving(t *testing.T) {
	prog := parser.MustParse(`
		R(a,b). T(b).
		s1: R(X,Y), T(Y) -> P(X,Y).
	`)
	inst := prog.Database.Instance()
	got := TriggersInvolving(prog.TGDs, inst, logic.MustAtom("T", logic.Const("b")))
	if len(got) != 1 {
		t.Fatalf("TriggersInvolving = %d, want 1", len(got))
	}
	// An atom matching no body position yields nothing.
	if got := TriggersInvolving(prog.TGDs, inst, logic.MustAtom("P", logic.Const("a"), logic.Const("b"))); len(got) != 0 {
		t.Errorf("unexpected triggers %v", got)
	}
	// Self-join: the atom may serve either body position.
	prog2 := parser.MustParse(`
		E(a,a).
		t: E(X,Y), E(Y,Z) -> E(X,Z).
	`)
	inst2 := prog2.Database.Instance()
	got2 := TriggersInvolving(prog2.TGDs, inst2, logic.MustAtom("E", logic.Const("a"), logic.Const("a")))
	if len(got2) != 1 {
		t.Errorf("self-join dedup: %d triggers, want 1", len(got2))
	}
}

func TestViolations(t *testing.T) {
	prog := parser.MustParse(`
		R(a,b). R(b,c).
		s1: R(X,Y) -> S(X).
		s2: R(X,Y) -> Q(Y).
	`)
	v := Violations(prog.TGDs, prog.Database.Instance())
	if v["s1"] != 2 || v["s2"] != 2 {
		t.Errorf("Violations = %v", v)
	}
}
