package chase

// Determinism and agreement tests for the sharded parallel ∀∃ search
// (parallel.go): verdicts must be invariant across worker counts and
// scheduling seeds, witnesses must replay through Derivation.Apply no matter
// which workers their states crossed, and exhaustive sweeps must visit
// exactly the states the sequential search visits. The -race CI job runs
// all of these, which is what pins the no-locks-in-the-interner contract.

import (
	"testing"
	"testing/quick"

	"airct/internal/logic"

	"airct/internal/parser"
)

var parallelWorkerCounts = []int{2, 3, 4, 8}

// replayWitness applies the derivation step by step and fails the test if
// any step is refused or the final instance is not a fixpoint. It returns
// the fixpoint size.
func replayWitness(t *testing.T, prog *parser.Program, deriv []Trigger, label string) int {
	t.Helper()
	d := NewDerivation(prog.Database, prog.TGDs)
	for i, tr := range deriv {
		if err := d.Apply(tr); err != nil {
			t.Fatalf("%s: witness step %d does not replay: %v", label, i, err)
		}
	}
	if !d.IsFixpoint() {
		t.Fatalf("%s: witness does not end in a fixpoint", label)
	}
	return d.Instance().Len()
}

// TestParallelSearchMatchesSequential pins the sharded search against the
// sequential one on the differential corpus, across worker counts and
// scheduling seeds: identical Found; identical Exhausted when nothing was
// found; identical StatesVisited on decisive not-found sweeps (a full sweep
// visits a schedule-independent closure); and replayable witnesses.
func TestParallelSearchMatchesSequential(t *testing.T) {
	for _, tc := range differentialExistsPrograms {
		t.Run(tc.name, func(t *testing.T) {
			prog := parser.MustParse(tc.src)
			seq := SearchTerminatingDerivation(prog.Database, prog.TGDs, SearchOptions{
				MaxStates: tc.maxStates, MaxAtoms: tc.maxAtoms,
			})
			if seq.Found {
				replayWitness(t, prog, seq.Derivation, "sequential")
			}
			for _, w := range parallelWorkerCounts {
				for _, seed := range []int64{1, 7, 42} {
					par := SearchTerminatingDerivation(prog.Database, prog.TGDs, SearchOptions{
						MaxStates: tc.maxStates, MaxAtoms: tc.maxAtoms, Workers: w, Seed: seed,
					})
					if par.Found != seq.Found {
						t.Fatalf("w=%d seed=%d: Found = %v, sequential %v", w, seed, par.Found, seq.Found)
					}
					if !par.Found && par.Exhausted != seq.Exhausted {
						t.Errorf("w=%d seed=%d: Exhausted = %v, sequential %v", w, seed, par.Exhausted, seq.Exhausted)
					}
					if !seq.Found && seq.Exhausted && par.StatesVisited != seq.StatesVisited {
						t.Errorf("w=%d seed=%d: StatesVisited = %d, sequential %d (full sweeps are schedule-independent)",
							w, seed, par.StatesVisited, seq.StatesVisited)
					}
					if par.Found {
						// The witness (and even the fixpoint it reaches — a
						// program can have several) may differ from the
						// sequential one: any fixpoint ends the race. What
						// must hold is that it replays to *a* fixpoint.
						replayWitness(t, prog, par.Derivation, tc.name)
					}
				}
			}
		})
	}
}

// TestParallelStrategiesAgreeOnVerdicts mirrors
// TestSearchStrategiesAgreeOnVerdicts under parallelism: on decisive runs
// the frontier discipline (now only approximately ordered) must not change
// the verdict, and witnesses must replay.
func TestParallelStrategiesAgreeOnVerdicts(t *testing.T) {
	for _, tc := range differentialExistsPrograms {
		prog := parser.MustParse(tc.src)
		base := SearchTerminatingDerivation(prog.Database, prog.TGDs, SearchOptions{
			MaxStates: tc.maxStates, MaxAtoms: tc.maxAtoms, Strategy: SmallestFirst,
		})
		if !base.Exhausted && !base.Found {
			continue // budget-cut: verdicts may legitimately differ per order
		}
		for _, strat := range []SearchStrategy{SmallestFirst, BreadthFirst, DepthFirst} {
			res := SearchTerminatingDerivation(prog.Database, prog.TGDs, SearchOptions{
				MaxStates: tc.maxStates, MaxAtoms: tc.maxAtoms, Strategy: strat, Workers: 4,
			})
			if res.Found != base.Found {
				t.Errorf("%s/%v: Found = %v, sequential smallest-first %v", tc.name, strat, res.Found, base.Found)
			}
			if res.Found {
				replayWitness(t, prog, res.Derivation, tc.name+"/"+strat.String())
			}
		}
	}
}

// TestParallelQuickDatalogAgreement is the property-level pin: on random
// terminating datalog programs the parallel search always finds a finite
// derivation, agrees with the sequential verdict, and returns a replayable
// witness. Run under -race this also stress-tests the sharded memo and the
// symbolic boundary exchange.
func TestParallelQuickDatalogAgreement(t *testing.T) {
	f := func(seed int64) bool {
		prog := randomDatalog(seed % 5000)
		seq := SearchTerminatingDerivation(prog.Database, prog.TGDs, SearchOptions{MaxStates: 4000})
		par := SearchTerminatingDerivation(prog.Database, prog.TGDs, SearchOptions{
			MaxStates: 4000, Workers: 4, Seed: seed,
		})
		if par.Found != seq.Found {
			return false
		}
		if par.Found {
			d := NewDerivation(prog.Database, prog.TGDs)
			for _, tr := range par.Derivation {
				if err := d.Apply(tr); err != nil {
					return false
				}
			}
			return d.IsFixpoint()
		}
		return par.Exhausted == seq.Exhausted
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestParallelStateBudgetExact: the sharded memo's claim path must enforce
// MaxStates exactly (CAS under the shard lock), never overshooting the way
// a naive post-increment would under contention.
func TestParallelStateBudgetExact(t *testing.T) {
	prog := parser.MustParse(`
		S(a).
		grow: S(X) -> R(X,Y).
		next: R(X,Y) -> S(Y).
	`)
	for _, w := range parallelWorkerCounts {
		res := SearchTerminatingDerivation(prog.Database, prog.TGDs, SearchOptions{
			MaxStates: 100, MaxAtoms: 30, Workers: w,
		})
		if res.Found {
			t.Fatalf("w=%d: ladder has no finite derivation", w)
		}
		if res.Exhausted {
			t.Errorf("w=%d: budget must have cut the infinite search", w)
		}
		if res.StatesVisited > 100 {
			t.Errorf("w=%d: StatesVisited = %d overshoots MaxStates = 100", w, res.StatesVisited)
		}
	}
}

// TestExpanderSharedPrefix pins the invariant the symbolic exchange relies
// on: expanders built independently over the same inputs intern an identical
// startup vocabulary (same shared-prefix size, same root fingerprint), and a
// shared ID round-trips through the symbolic encoding unchanged.
func TestExpanderSharedPrefix(t *testing.T) {
	prog := parser.MustParse(`
		E(a,b). E(b,c).
		t: E(X,Y), E(Y,Z) -> E(X,Z).
		w: E(X,Y) -> N(Y,W).
	`)
	e1 := newExpander(prog.Database, prog.TGDs)
	e2 := newExpander(prog.Database, prog.TGDs)
	if e1.rootFp != e2.rootFp {
		t.Fatalf("root fingerprints differ: %v vs %v", e1.rootFp, e2.rootFp)
	}
	if e1.nShared != e2.nShared {
		t.Fatalf("shared-prefix sizes differ: %d vs %d", e1.nShared, e2.nShared)
	}
	for id := 0; id < e1.nShared; id++ {
		if e1.itab.Term(logic.TermID(id)) != e2.itab.Term(logic.TermID(id)) {
			t.Fatalf("shared ID %d resolves differently", id)
		}
		st := e1.itab.EncodeTermSym(logic.TermID(id), e1.nShared)
		if st.IsNull {
			t.Fatalf("shared ID %d encoded as a null", id)
		}
		if e2.itab.Term(logic.TermID(st.Shared)) != e1.itab.Term(logic.TermID(id)) {
			t.Fatalf("shared ID %d does not round-trip", id)
		}
	}
}
