package chase

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"airct/internal/instance"
	"airct/internal/logic"
	"airct/internal/tgds"
)

// Variant selects the chase flavour (Section 3).
type Variant uint8

const (
	// Restricted applies only active triggers: a TGD fires only when it is
	// violated. The paper's main object of study.
	Restricted Variant = iota
	// Oblivious applies every trigger once, violated or not.
	Oblivious
	// SemiOblivious (skolem chase) applies one trigger per frontier class:
	// triggers agreeing on fr(σ) are identified.
	SemiOblivious
)

func (v Variant) String() string {
	switch v {
	case Restricted:
		return "restricted"
	case Oblivious:
		return "oblivious"
	case SemiOblivious:
		return "semi-oblivious"
	default:
		return fmt.Sprintf("Variant(%d)", uint8(v))
	}
}

// Strategy selects which pending trigger fires next. FIFO yields fair
// derivations (every enqueued trigger is eventually considered); LIFO can
// starve old triggers and is deliberately available to exhibit unfair
// derivations; Random draws from the pending set with a seeded source.
type Strategy uint8

const (
	FIFO Strategy = iota
	LIFO
	Random
)

func (s Strategy) String() string {
	switch s {
	case FIFO:
		return "fifo"
	case LIFO:
		return "lifo"
	case Random:
		return "random"
	default:
		return fmt.Sprintf("Strategy(%d)", uint8(s))
	}
}

// StopReason explains why a run ended.
type StopReason uint8

const (
	// Fixpoint: no applicable trigger remained; the run is a finite chase
	// derivation and its result satisfies the TGD set (for Restricted).
	Fixpoint StopReason = iota
	// StepBudget: MaxSteps trigger applications were performed.
	StepBudget
	// AtomBudget: the instance grew past MaxAtoms.
	AtomBudget
	// Cancelled: the run's context was cancelled mid-derivation (only
	// RunChaseContext runs can stop this way). The partial run is NOT a
	// budget-exhausted run: callers must discard it rather than mine it
	// for divergence evidence.
	Cancelled
	// EGDFailure: an equality step forced two distinct constants equal.
	// The chase *fails* — a definitive, finite outcome (no model of the
	// database and the dependencies exists with the chase's equalities),
	// distinct from both fixpoint and budget exhaustion. Run.Conflict
	// carries the violated EGD and the clashing constants.
	EGDFailure
)

func (r StopReason) String() string {
	switch r {
	case Fixpoint:
		return "fixpoint"
	case StepBudget:
		return "step-budget"
	case AtomBudget:
		return "atom-budget"
	case Cancelled:
		return "cancelled"
	case EGDFailure:
		return "egd-failure"
	default:
		return fmt.Sprintf("StopReason(%d)", uint8(r))
	}
}

// Options configures a chase run. The zero value is a restricted FIFO chase
// with structural null naming and no budgets — suitable only for inputs
// known to terminate; set MaxSteps or MaxAtoms otherwise.
type Options struct {
	Variant  Variant
	Strategy Strategy
	// MaxSteps bounds the number of trigger applications; 0 means no bound.
	MaxSteps int
	// MaxAtoms bounds the instance size; 0 means no bound.
	MaxAtoms int
	// Seed drives the Random strategy.
	Seed int64
	// Naming selects the null-naming policy.
	Naming NullNaming
	// DropSteps disables derivation recording (benchmarks).
	DropSteps bool
	// Cache, when set, consults and feeds the cross-run chase cache
	// (cache.go): a Restricted run whose (TGD-set, database) pair was
	// chased before loads its initial pending queue — with birth-activity
	// flags — from the cache instead of enumerating it. Runs are
	// byte-identical with and without a cache.
	Cache *Cache

	// fullActivity disables the delta-maintained activity machinery and
	// resolves every Restricted pop with a full head search against the
	// whole instance — the pre-delta behaviour. Deliberately unexported: it
	// exists so in-package benchmarks can isolate the delta machinery's
	// contribution and so the differential tests can pin the two paths
	// byte-identical; it is not a supported mode.
	fullActivity bool

	// onActivity, when set, observes every Restricted pop's activity
	// resolution alongside a freshly computed full-search ground truth —
	// the differential tests' hook for pinning the delta path against the
	// full check at every pop. Unexported; test-only.
	onActivity func(tgd int, bt []uint32, delta, full bool)
}

// Step records one trigger application I⟨σ,h⟩J.
type Step struct {
	Trigger Trigger
	// Result is result(σ,h) — every head atom, whether new or not.
	Result []logic.Atom
	// Added are the atoms of Result that were new to the instance.
	Added []logic.Atom
}

// EqStep records one equality step: an EGD trigger fired and the instance
// was rewritten, Unified (a null) absorbed by Rep everywhere.
type EqStep struct {
	// EGDIndex indexes Set.EGDs; EGD is that dependency.
	EGDIndex int
	EGD      tgds.EGD
	// H is the body homomorphism that activated the EGD.
	H logic.Substitution
	// Unified was rewritten away; Rep absorbed it (a constant beats a
	// null, an older null beats a younger one).
	Unified, Rep logic.Term
	// Removed counts atoms that became duplicates under the rewrite.
	Removed int
	// AtStep is the 0-based position of this step in the combined
	// derivation (Run.StepsTaken counts TGD and equality steps together).
	AtStep int
}

// EGDConflict describes an EGD failure: the violated EGD, the activating
// homomorphism, and the two distinct constants it forced equal.
type EGDConflict struct {
	EGD  tgds.EGD
	H    logic.Substitution
	X, Y logic.Term
}

func (c *EGDConflict) String() string {
	return fmt.Sprintf("%s forces %v = %v (distinct constants)", c.EGD.Label, c.X, c.Y)
}

// Stats counts the engine's bookkeeping work — the currency of the
// paper's §1 trade-off discussion ("at each step, the restricted chase has
// to check that there is no way to satisfy the right-hand side … and this
// is costly").
type Stats struct {
	// ActivityChecks counts IsActive evaluations (restricted only).
	ActivityChecks int
	// TriggersEnqueued counts distinct triggers discovered.
	TriggersEnqueued int
	// TriggersSkipped counts popped triggers that were not applicable
	// (deactivated since discovery, or duplicate frontier class).
	TriggersSkipped int
}

// DeltaActivityStats counts the delta-maintained activity machinery's work
// (Restricted runs only — see the delta-activity notes on engine). It lives
// outside Stats so the byte-identity oracle (differential_test.go) keeps
// comparing the fields both engines share.
type DeltaActivityStats struct {
	// BirthChecks counts full activity checks performed at trigger
	// discovery — each trigger pays exactly one, over the then-current
	// instance (smaller than the pop-time instance the pre-delta engine
	// searched).
	BirthChecks int
	// WatermarkSkips counts pops resolved by the head-predicate dependency
	// sets alone: no atom of a head predicate arrived since discovery, so
	// the birth verdict stands without any search.
	WatermarkSkips int
	// DeltaRechecks counts pops that ran the delta-pinned head search over
	// the atoms inserted since the trigger's discovery.
	DeltaRechecks int
	// SeedIndexHit is true when the initial pending queue was loaded from
	// the cross-run cache (Options.Cache) instead of enumerated.
	SeedIndexHit bool
}

// Run is the outcome of a chase: the final instance, the derivation, and
// why the run stopped.
type Run struct {
	Options  Options
	Set      *tgds.Set
	Database *instance.Database
	Final    *instance.Instance
	Steps    []Step
	Reason   StopReason
	// StepsTaken counts trigger applications — TGD and equality steps
	// together (equals len(Steps)+len(EqSteps) unless DropSteps).
	StepsTaken int
	// EqualitySteps counts the equality steps among StepsTaken (maintained
	// even under DropSteps); EqSteps records them unless DropSteps.
	EqualitySteps int
	EqSteps       []EqStep
	// Conflict is set exactly when Reason == EGDFailure.
	Conflict *EGDConflict
	// Stats records the engine's bookkeeping work.
	Stats Stats
	// Activity records the delta-maintained activity machinery's work.
	Activity DeltaActivityStats
}

// Terminated reports whether the run reached a fixpoint.
func (r *Run) Terminated() bool { return r.Reason == Fixpoint }

// Failed reports whether the run ended in EGD failure — a definitive
// outcome (neither a fixpoint nor a budget stop): the dependencies admit no
// model extending the database along this derivation's equalities.
func (r *Run) Failed() bool { return r.Reason == EGDFailure }

// InstanceAt replays the derivation and returns I_i: the instance after i
// steps (I_0 is the database). It requires recorded steps, and does not
// support runs with equality steps (a rewrite cannot be replayed by
// re-adding Added atoms).
func (r *Run) InstanceAt(i int) *instance.Instance {
	if r.Options.DropSteps {
		panic("chase: InstanceAt requires recorded steps")
	}
	if r.EqualitySteps > 0 {
		panic("chase: InstanceAt does not support runs with equality steps")
	}
	if i > len(r.Steps) {
		i = len(r.Steps)
	}
	inst := r.Database.Instance()
	for _, s := range r.Steps[:i] {
		for _, a := range s.Added {
			inst.Add(a)
		}
	}
	return inst
}

// engine is the shared machinery of the three variants. It runs entirely on
// interned identity: triggers are TermID tuples deduped in a TupleTable
// (one probe answers "seen before?"), activity checks and trigger discovery
// run the slot-compiled homomorphism search, and the FIFO queue is a
// head-indexed ring of 4-byte trigger IDs. No string keys are built in
// steady state; Trigger.Key()/FrontierKey() remain as debug/test renderers
// and are used only when recording Steps is requested.
//
// Restricted activity is delta-maintained, mirroring the search's trigger
// index (triggerindex.go): every discovered trigger pays one full activity
// check at birth, over the then-current instance, and records the instance
// length as its watermark. Because activity is antitone (instances only
// grow), the pop-time answer is then exact as birth-activity AND no head
// homomorphism touching the atoms inserted since birth — resolved by the
// head-predicate dependency sets (newDeltaDeps) when no relevant atom
// arrived, and by a delta-pinned ForEachDelta head search otherwise, never
// by a full re-search of the whole instance. Options.fullActivity restores
// the pre-delta per-pop full check; the two paths are pinned byte-identical
// by the differential tests.
// Equality steps (EGD support) ride on the same machinery: EGD triggers
// intern into the trigger table under rule index len(TGDs)+egdIndex and are
// discovered by the same SlotSearch/ForEachPinnedAtom enumeration, so delta
// maintenance keeps working between equality steps. Applying an EGD trigger
// unifies the two bound terms in a union-find over TermIDs (uf): the
// representative is the constant if one side is a constant, else the older
// null (smaller TermID); two distinct constants are an EGDFailure. The
// instance is then rewritten in place through uf.Find (fingerprint repair
// happens inside Instance.RewriteTerms) and the trigger state — tables,
// queue, birth verdicts, structural-null memo — is rebuilt from the
// rewritten instance: an equality step can deactivate triggers (a head
// image appears by merging) and re-activate work in bulk (rewritten body
// matches are new trigger identities), and the rebuild re-derives both
// effects from scratch, which is sound because activity and satisfaction
// are preserved under the rewriting homomorphism ρ (ρ∘h remains a body
// match; a satisfied head stays satisfied as ρ of its witness). EGDs are
// Restricted-only: the oblivious variants' fire-once bookkeeping is keyed
// on trigger identities that a rewrite invalidates.
type engine struct {
	set  *tgds.Set
	opts Options
	inst *instance.Instance
	itab *logic.Interner
	ct   []compiledTGD
	ce   []compiledEGD
	uf   *logic.UnionFind // equality classes; nil iff the set has no EGDs

	// dirty is set while equality merges recorded in uf have not yet been
	// applied to the instance; eqSinceFlush counts the EqSteps recorded
	// since the last flush (they share one rewrite's Removed total).
	dirty        bool
	eqSinceFlush int

	namer       *logic.FreshNamer       // null names, shared sequence across naming modes
	structNulls map[uint64]logic.TermID // StructuralNaming: (trigger ID, exist index) -> null

	trig      *logic.TupleTable // trigger identity: [tgd, body TermIDs...]; TupleID = trigger
	front     *logic.TupleTable // frontier classes: [tgd, frontier TermIDs...]
	applied   []bool            // per frontier class (semi-oblivious)
	lastFront logic.TupleID     // frontier class of the trigger applicable just admitted

	queue []int32 // trigger TupleIDs
	qhead int     // FIFO ring head

	// deltaAct enables the delta-maintained activity machinery (Restricted
	// without fullActivity); born and activeAtBirth are indexed by trigger
	// TupleID: the instance length at discovery and the birth verdict.
	deltaAct      bool
	deps          *deltaDeps
	born          []int32
	activeAtBirth []bool

	// done is the run context's cancellation channel (nil for background
	// runs); ctxTick paces the loop's polls so uncancellable runs pay one
	// nil check per pop and cancellable runs one select per 64 pops.
	done    <-chan struct{}
	ctxTick uint

	rng *rand.Rand
	run *Run

	ss      logic.SlotSearch
	ds      discSorter
	tupbuf  []uint32       // scratch identity tuple
	discBuf []uint32       // flat discovered trigger tuples
	sortBuf []int32        // offsets into discBuf, sorted canonically
	nullIDs []logic.TermID // scratch nulls of the current application
	argbuf  []logic.TermID // scratch head-atom arguments
	addedIx []int32        // scratch indices of atoms added by the current application
}

// Run chases the database with the TGD set under the options.
func RunChase(db *instance.Database, set *tgds.Set, opts Options) *Run {
	return RunChaseContext(context.Background(), db, set, opts)
}

// RunChaseContext is RunChase under a context: the engine polls
// ctx.Done() every engineCtxInterval pops and stops with Reason =
// Cancelled when it fires. An un-cancellable context (Background) adds
// one nil check per pop; uncancelled runs are byte-identical to RunChase.
func RunChaseContext(ctx context.Context, db *instance.Database, set *tgds.Set, opts Options) *Run {
	if set.HasEGDs() && opts.Variant != Restricted {
		panic(fmt.Sprintf("chase: EGDs require the restricted variant (got %v): the %v variant's fire-once bookkeeping does not survive equality rewriting", opts.Variant, opts.Variant))
	}
	inst := db.Instance()
	e := &engine{
		set:         set,
		opts:        opts,
		inst:        inst,
		itab:        inst.Interner(),
		namer:       logic.NewFreshNamer("n"),
		structNulls: make(map[uint64]logic.TermID),
		trig:        logic.NewTupleTable(64),
		front:       logic.NewTupleTable(16),
		run:         &Run{Options: opts, Set: set, Database: db},
		done:        ctx.Done(),
	}
	e.ct = compileSet(set, e.itab)
	if set.HasEGDs() {
		e.ce = compileEGDs(set, e.itab)
		e.uf = &logic.UnionFind{}
	}
	e.ds = discSorter{itab: e.itab, disc: &e.discBuf, idx: &e.sortBuf}
	e.deltaAct = opts.Variant == Restricted && !opts.fullActivity
	if e.deltaAct {
		e.deps = newDeltaDeps(e.ct)
	}
	if opts.Strategy == Random {
		e.rng = rand.New(rand.NewSource(opts.Seed))
	}
	// Seed the queue with every trigger on the database, per TGD in
	// canonical order (the order AllTriggers produces) — or, when the
	// cross-run cache holds this (set, database) pair's root trigger index,
	// by re-interning the cached queue, skipping the enumeration and the
	// birth activity checks both.
	seeded := false
	cacheSeeds := opts.Cache != nil && e.deltaAct
	var setFP, instFP logic.Fingerprint
	if cacheSeeds {
		setFP, instFP = set.Fingerprint(), inst.Fingerprint()
		if si, ok := opts.Cache.LookupSeedIndex(setFP, instFP); ok {
			e.loadSeedIndex(si)
			e.run.Activity.SeedIndexHit = true
			seeded = true
		}
	}
	if !seeded {
		e.seedAllTriggers()
		if cacheSeeds {
			opts.Cache.StoreSeedIndex(setFP, instFP, e.snapshotSeedIndex())
		}
	}
	e.loop()
	e.run.Final = e.inst
	if opts.Cache != nil {
		opts.Cache.NoteRunActivity(e.run.Stats, e.run.Activity)
	}
	return e.run
}

// loadSeedIndex replays a cached root trigger index: the stored queue is
// duplicate-free and already in canonical enqueue order, so re-interning it
// reproduces the fresh-enumeration queue (and birth-activity bookkeeping)
// byte for byte.
func (e *engine) loadSeedIndex(si *SeedIndex) {
	for _, tr := range si.Triggers {
		e.tupbuf = e.tupbuf[:0]
		e.tupbuf = append(e.tupbuf, uint32(tr.TGD))
		for _, t := range tr.Bind {
			e.tupbuf = append(e.tupbuf, uint32(e.itab.InternTerm(t)))
		}
		id, _ := e.trig.Intern(e.tupbuf)
		e.run.Stats.TriggersEnqueued++
		e.queue = append(e.queue, id)
		e.born = append(e.born, int32(e.inst.Len()))
		e.activeAtBirth = append(e.activeAtBirth, tr.Active)
	}
}

// snapshotSeedIndex renders the just-seeded queue portably (terms by value)
// for the cross-run cache. Called before the first pop: queue positions and
// trigger TupleIDs still coincide.
func (e *engine) snapshotSeedIndex() *SeedIndex {
	si := &SeedIndex{Triggers: make([]SeedTrigger, 0, len(e.queue))}
	for _, id := range e.queue {
		tup := e.trig.Tuple(id)
		bind := make([]logic.Term, len(tup)-1)
		for i, raw := range tup[1:] {
			bind[i] = e.itab.Term(logic.TermID(raw))
		}
		si.Triggers = append(si.Triggers, SeedTrigger{
			TGD:    int32(tup[0]),
			Bind:   bind,
			Active: e.activeAtBirth[id],
		})
	}
	return si
}

// seedAllTriggers enumerates every trigger of every rule — TGDs then EGDs,
// each in canonical order — on the current instance and enqueues them. It
// runs at the start of a chase and again after every equality step (the
// bulk trigger-state repair: a rewrite both deactivates and re-activates
// triggers, and the re-enumeration re-derives the whole picture from the
// rewritten instance).
func (e *engine) seedAllTriggers() {
	for i := range e.ct {
		ct := &e.ct[i]
		e.ss.Reset(ct.body)
		e.collectTriggers(i, ct.nBody, ct.body)
		e.enqueueDiscovered(ct.nBody)
	}
	for j := range e.ce {
		ce := &e.ce[j]
		e.ss.Reset(ce.body)
		e.collectTriggers(len(e.ct)+j, ce.nBody, ce.body)
		e.enqueueDiscovered(ce.nBody)
	}
}

// collectTriggers enumerates homomorphisms of the pattern (extending any
// bindings already pinned in e.ss.Bind) and collects one trigger tuple
// [rule, body TermIDs...] per homomorphism into discBuf/sortBuf. rule is a
// TGD index or len(e.ct)+egdIndex.
func (e *engine) collectTriggers(rule, nBody int, pat *logic.CPattern) {
	e.discBuf = e.discBuf[:0]
	e.sortBuf = e.sortBuf[:0]
	e.ss.ForEach(pat, e.inst, func(bind []logic.TermID) bool {
		e.sortBuf = append(e.sortBuf, int32(len(e.discBuf)))
		e.discBuf = append(e.discBuf, uint32(rule))
		for s := 0; s < nBody; s++ {
			e.discBuf = append(e.discBuf, uint32(bind[s]))
		}
		return true
	})
}

// enqueueDiscovered sorts the collected trigger tuples canonically and
// enqueues the ones never seen before. The trigger table's isNew answer is
// the dedup — no separate seen set. Under delta activity each new trigger
// pays its one full activity check here, at birth, and records the instance
// length as the watermark its pop-time delta re-check starts from.
func (e *engine) enqueueDiscovered(nBody int) {
	if len(e.sortBuf) > 1 {
		e.ds.stride = int32(nBody) + 1
		sort.Sort(&e.ds)
	}
	for _, off := range e.sortBuf {
		tup := e.discBuf[off : off+int32(nBody)+1]
		if id, isNew := e.trig.Intern(tup); isNew {
			e.run.Stats.TriggersEnqueued++
			e.queue = append(e.queue, id)
			if e.deltaAct {
				e.born = append(e.born, int32(e.inst.Len()))
				e.run.Activity.BirthChecks++
				e.activeAtBirth = append(e.activeAtBirth, e.ruleActive(int(tup[0]), tup[1:]))
			}
		}
	}
}

// ruleActive dispatches a birth/pop activity resolution by rule kind: a TGD
// trigger runs the head search, an EGD trigger compares the two bound
// terms' equality classes (equality, like activity, is antitone: once the
// classes coincide they never split, so an inactive verdict is final).
func (e *engine) ruleActive(rule int, bt []uint32) bool {
	if rule >= len(e.ct) {
		ce := &e.ce[rule-len(e.ct)]
		return !e.uf.Same(logic.TermID(bt[ce.xSlot]), logic.TermID(bt[ce.ySlot]))
	}
	return e.isActive(rule, bt)
}

func (e *engine) pending() int { return len(e.queue) - e.qhead }

func (e *engine) pop() int32 {
	switch e.opts.Strategy {
	case LIFO:
		id := e.queue[len(e.queue)-1]
		e.queue = e.queue[:len(e.queue)-1]
		return id
	case Random:
		// Remove at a random position, preserving the relative order of the
		// rest (same discipline — and same seeded index sequence — as the
		// string-keyed engine). O(pending), deliberately: Random exists to
		// exhibit derivations, not to be fast.
		i := e.qhead + e.rng.Intn(e.pending())
		id := e.queue[i]
		copy(e.queue[i:], e.queue[i+1:])
		e.queue = e.queue[:len(e.queue)-1]
		return id
	default: // FIFO: head-indexed ring, O(1) amortized — no slice shifting.
		id := e.queue[e.qhead]
		e.qhead++
		if e.qhead >= 64 && e.qhead*2 >= len(e.queue) {
			n := copy(e.queue, e.queue[e.qhead:])
			e.queue = e.queue[:n]
			e.qhead = 0
		}
		return id
	}
}

// isActive reports whether the trigger (tgd, body tuple) is active: no
// homomorphism of the head extending the frontier bindings exists in the
// instance (Definition 3.1). Existential-free heads are fully bound by the
// frontier, so the (unique) candidate homomorphism is a membership probe
// per head atom; otherwise the slot search runs.
func (e *engine) isActive(tgd int, bt []uint32) bool {
	ct := &e.ct[tgd]
	if len(ct.existVars) == 0 {
		return !e.headPresent(ct, bt)
	}
	e.ss.Reset(ct.head)
	for _, s := range ct.frontierSlots {
		e.ss.Bind[s] = logic.TermID(bt[s])
	}
	found := false
	e.ss.ForEach(ct.head, e.inst, func([]logic.TermID) bool {
		found = true
		return false
	})
	return !found
}

// headPresent probes whether every head atom of an existential-free TGD,
// instantiated with the body bindings, is already in the instance — the
// O(#head) activity answer that needs no search at all.
func (e *engine) headPresent(ct *compiledTGD, bt []uint32) bool {
	for _, ca := range ct.head.Atoms {
		e.argbuf = e.argbuf[:0]
		for _, a := range ca.Args {
			if a.Slot < 0 { // rigid pattern term (constant-free TGDs never hit this)
				e.argbuf = append(e.argbuf, a.ID)
			} else {
				e.argbuf = append(e.argbuf, logic.TermID(bt[a.Slot]))
			}
		}
		if !e.inst.HasTuple(ca.Pred, e.argbuf) {
			return false
		}
	}
	return true
}

// frontierID interns the trigger's frontier class and returns its dense ID,
// growing the applied flags alongside.
func (e *engine) frontierID(tgd int, bt []uint32) logic.TupleID {
	ct := &e.ct[tgd]
	e.tupbuf = e.tupbuf[:0]
	e.tupbuf = append(e.tupbuf, uint32(tgd))
	for _, s := range ct.frontierSlots {
		e.tupbuf = append(e.tupbuf, bt[s])
	}
	id, _ := e.front.Intern(e.tupbuf)
	for len(e.applied) < e.front.Len() {
		e.applied = append(e.applied, false)
	}
	return id
}

// applicable decides whether a popped trigger should fire under the variant.
func (e *engine) applicable(id int32, tgd int, bt []uint32) bool {
	switch e.opts.Variant {
	case Restricted:
		// Activity is antitone: once non-active, forever non-active
		// (instances only grow), so dropping is safe. ActivityChecks counts
		// one resolution per pop regardless of how it is resolved, matching
		// the reference engine.
		e.run.Stats.ActivityChecks++
		if !e.deltaAct {
			return e.isActive(tgd, bt)
		}
		act := e.deltaActive(id, tgd, bt)
		if e.opts.onActivity != nil {
			e.opts.onActivity(tgd, bt, act, e.isActive(tgd, bt))
		}
		return act
	case SemiOblivious:
		e.lastFront = e.frontierID(tgd, bt)
		return !e.applied[e.lastFront]
	default:
		return true
	}
}

// deltaActive resolves a popped trigger's activity from its birth verdict
// plus the delta since discovery: inactive-at-birth stays inactive forever;
// active-at-birth stays active unless a head homomorphism extending the
// frontier uses an atom inserted at or after the watermark. The
// head-predicate dependency sets answer "could the delta have deactivated
// this TGD at all?" from posting-list suffixes alone; only when they say
// yes does the delta-pinned head search run — never a full re-search.
func (e *engine) deltaActive(id int32, tgd int, bt []uint32) bool {
	if !e.activeAtBirth[id] {
		return false
	}
	ct := &e.ct[tgd]
	if len(ct.existVars) == 0 {
		// Existential-free head: the O(#head) probe beats any delta scan
		// (the delta between birth and pop can be the whole instance on
		// dense datalog closures).
		e.run.Activity.DeltaRechecks++
		return !e.headPresent(ct, bt)
	}
	lo := e.born[id]
	if int(lo) >= e.inst.Len() {
		return true
	}
	if !e.headDeltaPossible(tgd, lo) {
		e.run.Activity.WatermarkSkips++
		return true
	}
	e.run.Activity.DeltaRechecks++
	e.ss.Reset(ct.head)
	for _, s := range ct.frontierSlots {
		e.ss.Bind[s] = logic.TermID(bt[s])
	}
	found := false
	e.ss.ForEachDelta(ct.head, e.inst, lo, func([]logic.TermID) bool {
		found = true
		return false
	})
	return !found
}

// headDeltaPossible consults the TGD's head-predicate dependency set: did
// any atom of a head predicate arrive at or after the watermark?
func (e *engine) headDeltaPossible(tgd int, lo int32) bool {
	for _, p := range e.deps.headPreds[tgd] {
		if len(e.inst.IdxByPredSince(p, lo)) > 0 {
			return true
		}
	}
	return false
}

// engineCtxInterval is the cancellation check interval of the engine loop:
// the poll runs every engineCtxInterval pops, so a cancelled run stops
// within that many trigger resolutions (the latency the portfolio's
// cancellation test pins).
const engineCtxInterval = 64

func (e *engine) loop() {
	for {
		if e.dirty && e.pending() == 0 {
			// The queue drained with equality rewrites pending: flush so the
			// rebuilt trigger state decides whether this is a fixpoint.
			e.flushEqualities()
		}
		if e.pending() == 0 {
			break
		}
		if e.done != nil {
			if e.ctxTick++; e.ctxTick%engineCtxInterval == 0 {
				select {
				case <-e.done:
					// Cancelled runs are discarded by contract: no flush.
					e.run.Reason = Cancelled
					return
				default:
				}
			}
		}
		if e.opts.MaxSteps > 0 && e.run.StepsTaken >= e.opts.MaxSteps {
			e.stopWith(StepBudget)
			return
		}
		if e.opts.MaxAtoms > 0 && e.inst.Len() >= e.opts.MaxAtoms {
			e.stopWith(AtomBudget)
			return
		}
		id := e.pop()
		tup := e.trig.Tuple(id)
		rule, bt := int(tup[0]), tup[1:]
		if rule >= len(e.ct) {
			// EGD trigger. Resolution through the union-find makes pending
			// (unflushed) merges visible, so a run of equality steps batches
			// into one rewrite: each step unions one pair, and the rewrite is
			// deferred until a TGD trigger needs the instance or the queue
			// drains.
			e.run.Stats.ActivityChecks++
			j := rule - len(e.ct)
			ce := &e.ce[j]
			x := e.uf.Find(logic.TermID(bt[ce.xSlot]))
			y := e.uf.Find(logic.TermID(bt[ce.ySlot]))
			if x == y {
				e.run.Stats.TriggersSkipped++
				continue
			}
			if !e.applyEGD(j, bt, x, y) {
				e.stopWith(EGDFailure)
				return
			}
			continue
		}
		if e.dirty {
			// A TGD trigger surfaced while equality rewrites are pending:
			// flush first. The popped trigger belongs to the discarded
			// pre-rewrite queue — its rewritten image (or its unchanged self)
			// is re-enumerated by the rebuild, so dropping it loses nothing.
			e.flushEqualities()
			continue
		}
		if !e.applicable(id, rule, bt) {
			e.run.Stats.TriggersSkipped++
			continue
		}
		e.apply(id, rule, bt)
	}
	e.run.Reason = Fixpoint
}

// stopWith ends the run with the given reason, flushing pending equality
// rewrites first so Run.Final reflects every applied equality step.
func (e *engine) stopWith(r StopReason) {
	if e.dirty {
		e.flushEqualities()
	}
	e.run.Reason = r
}

// applyEGD performs one equality step for EGD j under the popped binding:
// x and y are the union-find representatives of the two equated terms,
// known distinct. It returns false on EGD failure (two distinct constants).
// The representative of a merge is the constant when one side is a
// constant, else the older null (smaller TermID — interned earlier). The
// instance rewrite is deferred: applyEGD only records the union and marks
// the engine dirty.
func (e *engine) applyEGD(j int, bt []uint32, x, y logic.TermID) bool {
	xt, yt := e.itab.Term(x), e.itab.Term(y)
	var child, rep logic.TermID
	switch {
	case !xt.IsNull() && !yt.IsNull():
		e.run.Conflict = &EGDConflict{
			EGD: e.set.EGDs[j],
			H:   e.materializeEGDTrigger(j, bt),
			X:   xt,
			Y:   yt,
		}
		return false
	case xt.IsNull() && !yt.IsNull():
		child, rep = x, y
	case !xt.IsNull() && yt.IsNull():
		child, rep = y, x
	default:
		if x < y {
			child, rep = y, x
		} else {
			child, rep = x, y
		}
	}
	e.uf.Link(child, rep)
	e.dirty = true
	e.eqSinceFlush++
	e.run.StepsTaken++
	e.run.EqualitySteps++
	if !e.opts.DropSteps {
		e.run.EqSteps = append(e.run.EqSteps, EqStep{
			EGDIndex: j,
			EGD:      e.set.EGDs[j],
			H:        e.materializeEGDTrigger(j, bt),
			Unified:  e.itab.Term(child),
			Rep:      e.itab.Term(rep),
			AtStep:   e.run.StepsTaken - 1,
		})
	}
	return true
}

// flushEqualities applies the pending equality merges: the instance is
// rewritten through the union-find (Instance.RewriteTerms — fingerprint
// repair happens there) and the whole trigger state is rebuilt from the
// rewritten instance. The rebuild is the bulk trigIndex repair: triggers
// deactivated by the rewrite (their head image appeared by merging) are
// re-discovered and then skipped by their fresh birth checks, and triggers
// re-activated or newly formed by the rewrite enter the queue under their
// rewritten identities. Rebuilding rather than patching is sound because
// the rewriting map ρ is a homomorphism of the old instance onto the new
// one: every surviving body match is some ρ∘h, and every satisfied head
// stays satisfied via ρ of its witness.
func (e *engine) flushEqualities() {
	removed := e.inst.RewriteTerms(e.uf.Find)
	if !e.opts.DropSteps {
		// Every step of one batch reports the batch's rewrite total.
		for i := len(e.run.EqSteps) - e.eqSinceFlush; i < len(e.run.EqSteps); i++ {
			e.run.EqSteps[i].Removed = removed
		}
	}
	e.dirty = false
	e.eqSinceFlush = 0
	e.trig = logic.NewTupleTable(64)
	e.front = logic.NewTupleTable(16)
	e.applied = e.applied[:0]
	e.queue = e.queue[:0]
	e.qhead = 0
	e.born = e.born[:0]
	e.activeAtBirth = e.activeAtBirth[:0]
	// Structural-null memo entries are keyed by trigger IDs of the discarded
	// table; clear them. Fired triggers never re-fire (their heads stay
	// satisfied under ρ), so no null name is ever re-requested.
	if len(e.structNulls) > 0 {
		e.structNulls = make(map[uint64]logic.TermID)
	}
	e.seedAllTriggers()
}

// materializeEGDTrigger rebuilds the public substitution form of an EGD
// trigger for derivation recording and failure reporting.
func (e *engine) materializeEGDTrigger(j int, bt []uint32) logic.Substitution {
	ce := &e.ce[j]
	h := logic.NewSubstitution()
	for i, v := range ce.bodyVars {
		h[v] = e.itab.Term(logic.TermID(bt[i]))
	}
	return h
}

// nullFor returns the interned null for the trigger's k-th existential
// variable: fresh under CounterNaming, interned per (trigger, variable)
// under StructuralNaming — the paper's c^{σ,h}_x, keyed by IDs.
func (e *engine) nullFor(id int32, k int) logic.TermID {
	if e.opts.Naming == CounterNaming {
		return e.itab.InternTerm(e.namer.NextNull())
	}
	key := uint64(uint32(id))<<32 | uint64(uint32(k))
	if nid, ok := e.structNulls[key]; ok {
		return nid
	}
	nid := e.itab.InternTerm(e.namer.NextNull())
	e.structNulls[key] = nid
	return nid
}

func (e *engine) apply(id int32, tgd int, bt []uint32) {
	ct := &e.ct[tgd]
	e.nullIDs = e.nullIDs[:0]
	for k := range ct.existVars {
		e.nullIDs = append(e.nullIDs, e.nullFor(id, k))
	}
	record := !e.opts.DropSteps
	var result, added []logic.Atom
	e.addedIx = e.addedIx[:0]
	for _, ca := range ct.head.Atoms {
		e.argbuf = e.argbuf[:0]
		for _, a := range ca.Args {
			if int(a.Slot) < ct.nBody {
				e.argbuf = append(e.argbuf, logic.TermID(bt[a.Slot]))
			} else {
				e.argbuf = append(e.argbuf, e.nullIDs[int(a.Slot)-ct.nBody])
			}
		}
		idx, isNew := e.inst.AddTuple(ca.Pred, e.argbuf)
		if record {
			result = append(result, e.inst.AtomAt(int(idx)))
		}
		if isNew {
			e.addedIx = append(e.addedIx, idx)
			if record {
				added = append(added, e.inst.AtomAt(int(idx)))
			}
		}
	}
	if e.opts.Variant == SemiOblivious {
		// applicable just interned this trigger's frontier class.
		e.applied[e.lastFront] = true
	}
	e.run.StepsTaken++
	if record {
		e.run.Steps = append(e.run.Steps, Step{
			Trigger: e.materializeTrigger(tgd, bt),
			Result:  result,
			Added:   added,
		})
	}
	// Semi-naive delta: new atoms seed new triggers, exactly like the
	// public TriggersInvolving but fused with dedup-by-interning. The loop
	// ranges over the live e.addedIx scratch: discover must not reuse it
	// (it clobbers discBuf/sortBuf/ss only).
	for _, ai := range e.addedIx {
		e.discover(ai)
	}
}

// discover finds every trigger whose body uses the atom at insertion index
// ai at some body-atom position and enqueues the new ones, in the canonical
// order TriggersInvolving produces. The per-position enumeration is the
// shared delta primitive logic.SlotSearch.ForEachPinnedAtom — the same core
// the search's trigger index repairs with — pinning body atom j onto the new
// atom and ranging the remaining atoms over the whole instance (conflicting
// repeated variables rule a position out inside the pin's match).
func (e *engine) discover(ai int32) {
	pred := e.inst.AtomPredID(ai)
	for i := range e.ct {
		ct := &e.ct[i]
		e.discoverForRule(i, ct.nBody, ct.body, pred, ai)
	}
	for j := range e.ce {
		ce := &e.ce[j]
		e.discoverForRule(len(e.ct)+j, ce.nBody, ce.body, pred, ai)
	}
}

// discoverForRule runs discover's per-position pinned enumeration for one
// rule (TGD index or len(e.ct)+egdIndex) against the new atom at ai.
func (e *engine) discoverForRule(rule, nBody int, pat *logic.CPattern, pred logic.PredID, ai int32) {
	for j := range pat.Atoms {
		if pat.Atoms[j].Pred != pred {
			continue
		}
		e.discBuf = e.discBuf[:0]
		e.sortBuf = e.sortBuf[:0]
		e.ss.Reset(pat)
		e.ss.ForEachPinnedAtom(pat, e.inst, j, ai, func(bind []logic.TermID) bool {
			e.sortBuf = append(e.sortBuf, int32(len(e.discBuf)))
			e.discBuf = append(e.discBuf, uint32(rule))
			for s := 0; s < nBody; s++ {
				e.discBuf = append(e.discBuf, uint32(bind[s]))
			}
			return true
		})
		e.enqueueDiscovered(nBody)
	}
}

// materializeTrigger rebuilds the public Trigger form (map substitution
// over the body variables) for derivation recording.
func (e *engine) materializeTrigger(tgd int, bt []uint32) Trigger {
	ct := &e.ct[tgd]
	h := logic.NewSubstitution()
	for i, v := range ct.bodyVars {
		h[v] = e.itab.Term(logic.TermID(bt[i]))
	}
	return Trigger{TGDIndex: tgd, TGD: e.set.TGDs[tgd], H: h}
}

// Terminates runs the restricted chase with the given budgets and reports
// whether it reached a fixpoint; a convenience wrapper used by examples and
// sufficient-condition baselines.
func Terminates(db *instance.Database, set *tgds.Set, maxSteps int) (bool, *Run) {
	run := RunChase(db, set, Options{Variant: Restricted, MaxSteps: maxSteps, DropSteps: true})
	return run.Terminated(), run
}

// UniversalModel runs the restricted chase to fixpoint (no budgets) and
// returns the resulting instance, which is a universal model of the
// database and the TGDs. Callers must know the input terminates.
func UniversalModel(db *instance.Database, set *tgds.Set) *instance.Instance {
	run := RunChase(db, set, Options{Variant: Restricted, DropSteps: true})
	return run.Final
}
