package chase

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"airct/internal/instance"
	"airct/internal/logic"
	"airct/internal/tgds"
)

// Variant selects the chase flavour (Section 3).
type Variant uint8

const (
	// Restricted applies only active triggers: a TGD fires only when it is
	// violated. The paper's main object of study.
	Restricted Variant = iota
	// Oblivious applies every trigger once, violated or not.
	Oblivious
	// SemiOblivious (skolem chase) applies one trigger per frontier class:
	// triggers agreeing on fr(σ) are identified.
	SemiOblivious
)

func (v Variant) String() string {
	switch v {
	case Restricted:
		return "restricted"
	case Oblivious:
		return "oblivious"
	case SemiOblivious:
		return "semi-oblivious"
	default:
		return fmt.Sprintf("Variant(%d)", uint8(v))
	}
}

// Strategy selects which pending trigger fires next. FIFO yields fair
// derivations (every enqueued trigger is eventually considered); LIFO can
// starve old triggers and is deliberately available to exhibit unfair
// derivations; Random draws from the pending set with a seeded source.
type Strategy uint8

const (
	FIFO Strategy = iota
	LIFO
	Random
)

func (s Strategy) String() string {
	switch s {
	case FIFO:
		return "fifo"
	case LIFO:
		return "lifo"
	case Random:
		return "random"
	default:
		return fmt.Sprintf("Strategy(%d)", uint8(s))
	}
}

// StopReason explains why a run ended.
type StopReason uint8

const (
	// Fixpoint: no applicable trigger remained; the run is a finite chase
	// derivation and its result satisfies the TGD set (for Restricted).
	Fixpoint StopReason = iota
	// StepBudget: MaxSteps trigger applications were performed.
	StepBudget
	// AtomBudget: the instance grew past MaxAtoms.
	AtomBudget
	// Cancelled: the run's context was cancelled mid-derivation (only
	// RunChaseContext runs can stop this way). The partial run is NOT a
	// budget-exhausted run: callers must discard it rather than mine it
	// for divergence evidence.
	Cancelled
)

func (r StopReason) String() string {
	switch r {
	case Fixpoint:
		return "fixpoint"
	case StepBudget:
		return "step-budget"
	case AtomBudget:
		return "atom-budget"
	case Cancelled:
		return "cancelled"
	default:
		return fmt.Sprintf("StopReason(%d)", uint8(r))
	}
}

// Options configures a chase run. The zero value is a restricted FIFO chase
// with structural null naming and no budgets — suitable only for inputs
// known to terminate; set MaxSteps or MaxAtoms otherwise.
type Options struct {
	Variant  Variant
	Strategy Strategy
	// MaxSteps bounds the number of trigger applications; 0 means no bound.
	MaxSteps int
	// MaxAtoms bounds the instance size; 0 means no bound.
	MaxAtoms int
	// Seed drives the Random strategy.
	Seed int64
	// Naming selects the null-naming policy.
	Naming NullNaming
	// DropSteps disables derivation recording (benchmarks).
	DropSteps bool
	// Cache, when set, consults and feeds the cross-run chase cache
	// (cache.go): a Restricted run whose (TGD-set, database) pair was
	// chased before loads its initial pending queue — with birth-activity
	// flags — from the cache instead of enumerating it. Runs are
	// byte-identical with and without a cache.
	Cache *Cache

	// fullActivity disables the delta-maintained activity machinery and
	// resolves every Restricted pop with a full head search against the
	// whole instance — the pre-delta behaviour. Deliberately unexported: it
	// exists so in-package benchmarks can isolate the delta machinery's
	// contribution and so the differential tests can pin the two paths
	// byte-identical; it is not a supported mode.
	fullActivity bool

	// onActivity, when set, observes every Restricted pop's activity
	// resolution alongside a freshly computed full-search ground truth —
	// the differential tests' hook for pinning the delta path against the
	// full check at every pop. Unexported; test-only.
	onActivity func(tgd int, bt []uint32, delta, full bool)
}

// Step records one trigger application I⟨σ,h⟩J.
type Step struct {
	Trigger Trigger
	// Result is result(σ,h) — every head atom, whether new or not.
	Result []logic.Atom
	// Added are the atoms of Result that were new to the instance.
	Added []logic.Atom
}

// Stats counts the engine's bookkeeping work — the currency of the
// paper's §1 trade-off discussion ("at each step, the restricted chase has
// to check that there is no way to satisfy the right-hand side … and this
// is costly").
type Stats struct {
	// ActivityChecks counts IsActive evaluations (restricted only).
	ActivityChecks int
	// TriggersEnqueued counts distinct triggers discovered.
	TriggersEnqueued int
	// TriggersSkipped counts popped triggers that were not applicable
	// (deactivated since discovery, or duplicate frontier class).
	TriggersSkipped int
}

// DeltaActivityStats counts the delta-maintained activity machinery's work
// (Restricted runs only — see the delta-activity notes on engine). It lives
// outside Stats so the byte-identity oracle (differential_test.go) keeps
// comparing the fields both engines share.
type DeltaActivityStats struct {
	// BirthChecks counts full activity checks performed at trigger
	// discovery — each trigger pays exactly one, over the then-current
	// instance (smaller than the pop-time instance the pre-delta engine
	// searched).
	BirthChecks int
	// WatermarkSkips counts pops resolved by the head-predicate dependency
	// sets alone: no atom of a head predicate arrived since discovery, so
	// the birth verdict stands without any search.
	WatermarkSkips int
	// DeltaRechecks counts pops that ran the delta-pinned head search over
	// the atoms inserted since the trigger's discovery.
	DeltaRechecks int
	// SeedIndexHit is true when the initial pending queue was loaded from
	// the cross-run cache (Options.Cache) instead of enumerated.
	SeedIndexHit bool
}

// Run is the outcome of a chase: the final instance, the derivation, and
// why the run stopped.
type Run struct {
	Options  Options
	Set      *tgds.Set
	Database *instance.Database
	Final    *instance.Instance
	Steps    []Step
	Reason   StopReason
	// StepsTaken counts trigger applications (equals len(Steps) unless
	// DropSteps).
	StepsTaken int
	// Stats records the engine's bookkeeping work.
	Stats Stats
	// Activity records the delta-maintained activity machinery's work.
	Activity DeltaActivityStats
}

// Terminated reports whether the run reached a fixpoint.
func (r *Run) Terminated() bool { return r.Reason == Fixpoint }

// InstanceAt replays the derivation and returns I_i: the instance after i
// steps (I_0 is the database). It requires recorded steps.
func (r *Run) InstanceAt(i int) *instance.Instance {
	if r.Options.DropSteps {
		panic("chase: InstanceAt requires recorded steps")
	}
	if i > len(r.Steps) {
		i = len(r.Steps)
	}
	inst := r.Database.Instance()
	for _, s := range r.Steps[:i] {
		for _, a := range s.Added {
			inst.Add(a)
		}
	}
	return inst
}

// engine is the shared machinery of the three variants. It runs entirely on
// interned identity: triggers are TermID tuples deduped in a TupleTable
// (one probe answers "seen before?"), activity checks and trigger discovery
// run the slot-compiled homomorphism search, and the FIFO queue is a
// head-indexed ring of 4-byte trigger IDs. No string keys are built in
// steady state; Trigger.Key()/FrontierKey() remain as debug/test renderers
// and are used only when recording Steps is requested.
//
// Restricted activity is delta-maintained, mirroring the search's trigger
// index (triggerindex.go): every discovered trigger pays one full activity
// check at birth, over the then-current instance, and records the instance
// length as its watermark. Because activity is antitone (instances only
// grow), the pop-time answer is then exact as birth-activity AND no head
// homomorphism touching the atoms inserted since birth — resolved by the
// head-predicate dependency sets (newDeltaDeps) when no relevant atom
// arrived, and by a delta-pinned ForEachDelta head search otherwise, never
// by a full re-search of the whole instance. Options.fullActivity restores
// the pre-delta per-pop full check; the two paths are pinned byte-identical
// by the differential tests.
type engine struct {
	set  *tgds.Set
	opts Options
	inst *instance.Instance
	itab *logic.Interner
	ct   []compiledTGD

	namer       *logic.FreshNamer       // null names, shared sequence across naming modes
	structNulls map[uint64]logic.TermID // StructuralNaming: (trigger ID, exist index) -> null

	trig      *logic.TupleTable // trigger identity: [tgd, body TermIDs...]; TupleID = trigger
	front     *logic.TupleTable // frontier classes: [tgd, frontier TermIDs...]
	applied   []bool            // per frontier class (semi-oblivious)
	lastFront logic.TupleID     // frontier class of the trigger applicable just admitted

	queue []int32 // trigger TupleIDs
	qhead int     // FIFO ring head

	// deltaAct enables the delta-maintained activity machinery (Restricted
	// without fullActivity); born and activeAtBirth are indexed by trigger
	// TupleID: the instance length at discovery and the birth verdict.
	deltaAct      bool
	deps          *deltaDeps
	born          []int32
	activeAtBirth []bool

	// done is the run context's cancellation channel (nil for background
	// runs); ctxTick paces the loop's polls so uncancellable runs pay one
	// nil check per pop and cancellable runs one select per 64 pops.
	done    <-chan struct{}
	ctxTick uint

	rng *rand.Rand
	run *Run

	ss      logic.SlotSearch
	ds      discSorter
	tupbuf  []uint32       // scratch identity tuple
	discBuf []uint32       // flat discovered trigger tuples
	sortBuf []int32        // offsets into discBuf, sorted canonically
	nullIDs []logic.TermID // scratch nulls of the current application
	argbuf  []logic.TermID // scratch head-atom arguments
	addedIx []int32        // scratch indices of atoms added by the current application
}

// Run chases the database with the TGD set under the options.
func RunChase(db *instance.Database, set *tgds.Set, opts Options) *Run {
	return RunChaseContext(context.Background(), db, set, opts)
}

// RunChaseContext is RunChase under a context: the engine polls
// ctx.Done() every engineCtxInterval pops and stops with Reason =
// Cancelled when it fires. An un-cancellable context (Background) adds
// one nil check per pop; uncancelled runs are byte-identical to RunChase.
func RunChaseContext(ctx context.Context, db *instance.Database, set *tgds.Set, opts Options) *Run {
	inst := db.Instance()
	e := &engine{
		set:         set,
		opts:        opts,
		inst:        inst,
		itab:        inst.Interner(),
		namer:       logic.NewFreshNamer("n"),
		structNulls: make(map[uint64]logic.TermID),
		trig:        logic.NewTupleTable(64),
		front:       logic.NewTupleTable(16),
		run:         &Run{Options: opts, Set: set, Database: db},
		done:        ctx.Done(),
	}
	e.ct = compileSet(set, e.itab)
	e.ds = discSorter{itab: e.itab, disc: &e.discBuf, idx: &e.sortBuf}
	e.deltaAct = opts.Variant == Restricted && !opts.fullActivity
	if e.deltaAct {
		e.deps = newDeltaDeps(e.ct)
	}
	if opts.Strategy == Random {
		e.rng = rand.New(rand.NewSource(opts.Seed))
	}
	// Seed the queue with every trigger on the database, per TGD in
	// canonical order (the order AllTriggers produces) — or, when the
	// cross-run cache holds this (set, database) pair's root trigger index,
	// by re-interning the cached queue, skipping the enumeration and the
	// birth activity checks both.
	seeded := false
	cacheSeeds := opts.Cache != nil && e.deltaAct
	var setFP, instFP logic.Fingerprint
	if cacheSeeds {
		setFP, instFP = set.Fingerprint(), inst.Fingerprint()
		if si, ok := opts.Cache.LookupSeedIndex(setFP, instFP); ok {
			e.loadSeedIndex(si)
			e.run.Activity.SeedIndexHit = true
			seeded = true
		}
	}
	if !seeded {
		for i := range e.ct {
			ct := &e.ct[i]
			e.ss.Reset(ct.body)
			e.collectTriggers(i, ct.body)
			e.enqueueDiscovered(ct)
		}
		if cacheSeeds {
			opts.Cache.StoreSeedIndex(setFP, instFP, e.snapshotSeedIndex())
		}
	}
	e.loop()
	e.run.Final = e.inst
	if opts.Cache != nil {
		opts.Cache.NoteRunActivity(e.run.Stats, e.run.Activity)
	}
	return e.run
}

// loadSeedIndex replays a cached root trigger index: the stored queue is
// duplicate-free and already in canonical enqueue order, so re-interning it
// reproduces the fresh-enumeration queue (and birth-activity bookkeeping)
// byte for byte.
func (e *engine) loadSeedIndex(si *SeedIndex) {
	for _, tr := range si.Triggers {
		e.tupbuf = e.tupbuf[:0]
		e.tupbuf = append(e.tupbuf, uint32(tr.TGD))
		for _, t := range tr.Bind {
			e.tupbuf = append(e.tupbuf, uint32(e.itab.InternTerm(t)))
		}
		id, _ := e.trig.Intern(e.tupbuf)
		e.run.Stats.TriggersEnqueued++
		e.queue = append(e.queue, id)
		e.born = append(e.born, int32(e.inst.Len()))
		e.activeAtBirth = append(e.activeAtBirth, tr.Active)
	}
}

// snapshotSeedIndex renders the just-seeded queue portably (terms by value)
// for the cross-run cache. Called before the first pop: queue positions and
// trigger TupleIDs still coincide.
func (e *engine) snapshotSeedIndex() *SeedIndex {
	si := &SeedIndex{Triggers: make([]SeedTrigger, 0, len(e.queue))}
	for _, id := range e.queue {
		tup := e.trig.Tuple(id)
		bind := make([]logic.Term, len(tup)-1)
		for i, raw := range tup[1:] {
			bind[i] = e.itab.Term(logic.TermID(raw))
		}
		si.Triggers = append(si.Triggers, SeedTrigger{
			TGD:    int32(tup[0]),
			Bind:   bind,
			Active: e.activeAtBirth[id],
		})
	}
	return si
}

// collectTriggers enumerates homomorphisms of the pattern (extending any
// bindings already pinned in e.ss.Bind) and collects one trigger tuple
// [tgd, body TermIDs...] per homomorphism into discBuf/sortBuf.
func (e *engine) collectTriggers(tgd int, pat *logic.CPattern) {
	ct := &e.ct[tgd]
	e.discBuf = e.discBuf[:0]
	e.sortBuf = e.sortBuf[:0]
	e.ss.ForEach(pat, e.inst, func(bind []logic.TermID) bool {
		e.sortBuf = append(e.sortBuf, int32(len(e.discBuf)))
		e.discBuf = append(e.discBuf, uint32(tgd))
		for s := 0; s < ct.nBody; s++ {
			e.discBuf = append(e.discBuf, uint32(bind[s]))
		}
		return true
	})
}

// enqueueDiscovered sorts the collected trigger tuples canonically and
// enqueues the ones never seen before. The trigger table's isNew answer is
// the dedup — no separate seen set. Under delta activity each new trigger
// pays its one full activity check here, at birth, and records the instance
// length as the watermark its pop-time delta re-check starts from.
func (e *engine) enqueueDiscovered(ct *compiledTGD) {
	if len(e.sortBuf) > 1 {
		e.ds.stride = int32(ct.nBody) + 1
		sort.Sort(&e.ds)
	}
	for _, off := range e.sortBuf {
		tup := e.discBuf[off : off+int32(ct.nBody)+1]
		if id, isNew := e.trig.Intern(tup); isNew {
			e.run.Stats.TriggersEnqueued++
			e.queue = append(e.queue, id)
			if e.deltaAct {
				e.born = append(e.born, int32(e.inst.Len()))
				e.run.Activity.BirthChecks++
				e.activeAtBirth = append(e.activeAtBirth, e.isActive(int(tup[0]), tup[1:]))
			}
		}
	}
}

func (e *engine) pending() int { return len(e.queue) - e.qhead }

func (e *engine) pop() int32 {
	switch e.opts.Strategy {
	case LIFO:
		id := e.queue[len(e.queue)-1]
		e.queue = e.queue[:len(e.queue)-1]
		return id
	case Random:
		// Remove at a random position, preserving the relative order of the
		// rest (same discipline — and same seeded index sequence — as the
		// string-keyed engine). O(pending), deliberately: Random exists to
		// exhibit derivations, not to be fast.
		i := e.qhead + e.rng.Intn(e.pending())
		id := e.queue[i]
		copy(e.queue[i:], e.queue[i+1:])
		e.queue = e.queue[:len(e.queue)-1]
		return id
	default: // FIFO: head-indexed ring, O(1) amortized — no slice shifting.
		id := e.queue[e.qhead]
		e.qhead++
		if e.qhead >= 64 && e.qhead*2 >= len(e.queue) {
			n := copy(e.queue, e.queue[e.qhead:])
			e.queue = e.queue[:n]
			e.qhead = 0
		}
		return id
	}
}

// isActive reports whether the trigger (tgd, body tuple) is active: no
// homomorphism of the head extending the frontier bindings exists in the
// instance (Definition 3.1). Existential-free heads are fully bound by the
// frontier, so the (unique) candidate homomorphism is a membership probe
// per head atom; otherwise the slot search runs.
func (e *engine) isActive(tgd int, bt []uint32) bool {
	ct := &e.ct[tgd]
	if len(ct.existVars) == 0 {
		return !e.headPresent(ct, bt)
	}
	e.ss.Reset(ct.head)
	for _, s := range ct.frontierSlots {
		e.ss.Bind[s] = logic.TermID(bt[s])
	}
	found := false
	e.ss.ForEach(ct.head, e.inst, func([]logic.TermID) bool {
		found = true
		return false
	})
	return !found
}

// headPresent probes whether every head atom of an existential-free TGD,
// instantiated with the body bindings, is already in the instance — the
// O(#head) activity answer that needs no search at all.
func (e *engine) headPresent(ct *compiledTGD, bt []uint32) bool {
	for _, ca := range ct.head.Atoms {
		e.argbuf = e.argbuf[:0]
		for _, a := range ca.Args {
			if a.Slot < 0 { // rigid pattern term (constant-free TGDs never hit this)
				e.argbuf = append(e.argbuf, a.ID)
			} else {
				e.argbuf = append(e.argbuf, logic.TermID(bt[a.Slot]))
			}
		}
		if !e.inst.HasTuple(ca.Pred, e.argbuf) {
			return false
		}
	}
	return true
}

// frontierID interns the trigger's frontier class and returns its dense ID,
// growing the applied flags alongside.
func (e *engine) frontierID(tgd int, bt []uint32) logic.TupleID {
	ct := &e.ct[tgd]
	e.tupbuf = e.tupbuf[:0]
	e.tupbuf = append(e.tupbuf, uint32(tgd))
	for _, s := range ct.frontierSlots {
		e.tupbuf = append(e.tupbuf, bt[s])
	}
	id, _ := e.front.Intern(e.tupbuf)
	for len(e.applied) < e.front.Len() {
		e.applied = append(e.applied, false)
	}
	return id
}

// applicable decides whether a popped trigger should fire under the variant.
func (e *engine) applicable(id int32, tgd int, bt []uint32) bool {
	switch e.opts.Variant {
	case Restricted:
		// Activity is antitone: once non-active, forever non-active
		// (instances only grow), so dropping is safe. ActivityChecks counts
		// one resolution per pop regardless of how it is resolved, matching
		// the reference engine.
		e.run.Stats.ActivityChecks++
		if !e.deltaAct {
			return e.isActive(tgd, bt)
		}
		act := e.deltaActive(id, tgd, bt)
		if e.opts.onActivity != nil {
			e.opts.onActivity(tgd, bt, act, e.isActive(tgd, bt))
		}
		return act
	case SemiOblivious:
		e.lastFront = e.frontierID(tgd, bt)
		return !e.applied[e.lastFront]
	default:
		return true
	}
}

// deltaActive resolves a popped trigger's activity from its birth verdict
// plus the delta since discovery: inactive-at-birth stays inactive forever;
// active-at-birth stays active unless a head homomorphism extending the
// frontier uses an atom inserted at or after the watermark. The
// head-predicate dependency sets answer "could the delta have deactivated
// this TGD at all?" from posting-list suffixes alone; only when they say
// yes does the delta-pinned head search run — never a full re-search.
func (e *engine) deltaActive(id int32, tgd int, bt []uint32) bool {
	if !e.activeAtBirth[id] {
		return false
	}
	ct := &e.ct[tgd]
	if len(ct.existVars) == 0 {
		// Existential-free head: the O(#head) probe beats any delta scan
		// (the delta between birth and pop can be the whole instance on
		// dense datalog closures).
		e.run.Activity.DeltaRechecks++
		return !e.headPresent(ct, bt)
	}
	lo := e.born[id]
	if int(lo) >= e.inst.Len() {
		return true
	}
	if !e.headDeltaPossible(tgd, lo) {
		e.run.Activity.WatermarkSkips++
		return true
	}
	e.run.Activity.DeltaRechecks++
	e.ss.Reset(ct.head)
	for _, s := range ct.frontierSlots {
		e.ss.Bind[s] = logic.TermID(bt[s])
	}
	found := false
	e.ss.ForEachDelta(ct.head, e.inst, lo, func([]logic.TermID) bool {
		found = true
		return false
	})
	return !found
}

// headDeltaPossible consults the TGD's head-predicate dependency set: did
// any atom of a head predicate arrive at or after the watermark?
func (e *engine) headDeltaPossible(tgd int, lo int32) bool {
	for _, p := range e.deps.headPreds[tgd] {
		if len(e.inst.IdxByPredSince(p, lo)) > 0 {
			return true
		}
	}
	return false
}

// engineCtxInterval is the cancellation check interval of the engine loop:
// the poll runs every engineCtxInterval pops, so a cancelled run stops
// within that many trigger resolutions (the latency the portfolio's
// cancellation test pins).
const engineCtxInterval = 64

func (e *engine) loop() {
	for e.pending() > 0 {
		if e.done != nil {
			if e.ctxTick++; e.ctxTick%engineCtxInterval == 0 {
				select {
				case <-e.done:
					e.run.Reason = Cancelled
					return
				default:
				}
			}
		}
		if e.opts.MaxSteps > 0 && e.run.StepsTaken >= e.opts.MaxSteps {
			e.run.Reason = StepBudget
			return
		}
		if e.opts.MaxAtoms > 0 && e.inst.Len() >= e.opts.MaxAtoms {
			e.run.Reason = AtomBudget
			return
		}
		id := e.pop()
		tup := e.trig.Tuple(id)
		tgd, bt := int(tup[0]), tup[1:]
		if !e.applicable(id, tgd, bt) {
			e.run.Stats.TriggersSkipped++
			continue
		}
		e.apply(id, tgd, bt)
	}
	e.run.Reason = Fixpoint
}

// nullFor returns the interned null for the trigger's k-th existential
// variable: fresh under CounterNaming, interned per (trigger, variable)
// under StructuralNaming — the paper's c^{σ,h}_x, keyed by IDs.
func (e *engine) nullFor(id int32, k int) logic.TermID {
	if e.opts.Naming == CounterNaming {
		return e.itab.InternTerm(e.namer.NextNull())
	}
	key := uint64(uint32(id))<<32 | uint64(uint32(k))
	if nid, ok := e.structNulls[key]; ok {
		return nid
	}
	nid := e.itab.InternTerm(e.namer.NextNull())
	e.structNulls[key] = nid
	return nid
}

func (e *engine) apply(id int32, tgd int, bt []uint32) {
	ct := &e.ct[tgd]
	e.nullIDs = e.nullIDs[:0]
	for k := range ct.existVars {
		e.nullIDs = append(e.nullIDs, e.nullFor(id, k))
	}
	record := !e.opts.DropSteps
	var result, added []logic.Atom
	e.addedIx = e.addedIx[:0]
	for _, ca := range ct.head.Atoms {
		e.argbuf = e.argbuf[:0]
		for _, a := range ca.Args {
			if int(a.Slot) < ct.nBody {
				e.argbuf = append(e.argbuf, logic.TermID(bt[a.Slot]))
			} else {
				e.argbuf = append(e.argbuf, e.nullIDs[int(a.Slot)-ct.nBody])
			}
		}
		idx, isNew := e.inst.AddTuple(ca.Pred, e.argbuf)
		if record {
			result = append(result, e.inst.AtomAt(int(idx)))
		}
		if isNew {
			e.addedIx = append(e.addedIx, idx)
			if record {
				added = append(added, e.inst.AtomAt(int(idx)))
			}
		}
	}
	if e.opts.Variant == SemiOblivious {
		// applicable just interned this trigger's frontier class.
		e.applied[e.lastFront] = true
	}
	e.run.StepsTaken++
	if record {
		e.run.Steps = append(e.run.Steps, Step{
			Trigger: e.materializeTrigger(tgd, bt),
			Result:  result,
			Added:   added,
		})
	}
	// Semi-naive delta: new atoms seed new triggers, exactly like the
	// public TriggersInvolving but fused with dedup-by-interning. The loop
	// ranges over the live e.addedIx scratch: discover must not reuse it
	// (it clobbers discBuf/sortBuf/ss only).
	for _, ai := range e.addedIx {
		e.discover(ai)
	}
}

// discover finds every trigger whose body uses the atom at insertion index
// ai at some body-atom position and enqueues the new ones, in the canonical
// order TriggersInvolving produces. The per-position enumeration is the
// shared delta primitive logic.SlotSearch.ForEachPinnedAtom — the same core
// the search's trigger index repairs with — pinning body atom j onto the new
// atom and ranging the remaining atoms over the whole instance (conflicting
// repeated variables rule a position out inside the pin's match).
func (e *engine) discover(ai int32) {
	pred := e.inst.AtomPredID(ai)
	for i := range e.ct {
		ct := &e.ct[i]
		for j := range ct.body.Atoms {
			if ct.body.Atoms[j].Pred != pred {
				continue
			}
			e.discBuf = e.discBuf[:0]
			e.sortBuf = e.sortBuf[:0]
			e.ss.Reset(ct.body)
			e.ss.ForEachPinnedAtom(ct.body, e.inst, j, ai, func(bind []logic.TermID) bool {
				e.sortBuf = append(e.sortBuf, int32(len(e.discBuf)))
				e.discBuf = append(e.discBuf, uint32(i))
				for s := 0; s < ct.nBody; s++ {
					e.discBuf = append(e.discBuf, uint32(bind[s]))
				}
				return true
			})
			e.enqueueDiscovered(ct)
		}
	}
}

// materializeTrigger rebuilds the public Trigger form (map substitution
// over the body variables) for derivation recording.
func (e *engine) materializeTrigger(tgd int, bt []uint32) Trigger {
	ct := &e.ct[tgd]
	h := logic.NewSubstitution()
	for i, v := range ct.bodyVars {
		h[v] = e.itab.Term(logic.TermID(bt[i]))
	}
	return Trigger{TGDIndex: tgd, TGD: e.set.TGDs[tgd], H: h}
}

// Terminates runs the restricted chase with the given budgets and reports
// whether it reached a fixpoint; a convenience wrapper used by examples and
// sufficient-condition baselines.
func Terminates(db *instance.Database, set *tgds.Set, maxSteps int) (bool, *Run) {
	run := RunChase(db, set, Options{Variant: Restricted, MaxSteps: maxSteps, DropSteps: true})
	return run.Terminated(), run
}

// UniversalModel runs the restricted chase to fixpoint (no budgets) and
// returns the resulting instance, which is a universal model of the
// database and the TGDs. Callers must know the input terminates.
func UniversalModel(db *instance.Database, set *tgds.Set) *instance.Instance {
	run := RunChase(db, set, Options{Variant: Restricted, DropSteps: true})
	return run.Final
}
