package chase

import (
	"fmt"
	"math/rand"

	"airct/internal/instance"
	"airct/internal/logic"
	"airct/internal/tgds"
)

// Variant selects the chase flavour (Section 3).
type Variant uint8

const (
	// Restricted applies only active triggers: a TGD fires only when it is
	// violated. The paper's main object of study.
	Restricted Variant = iota
	// Oblivious applies every trigger once, violated or not.
	Oblivious
	// SemiOblivious (skolem chase) applies one trigger per frontier class:
	// triggers agreeing on fr(σ) are identified.
	SemiOblivious
)

func (v Variant) String() string {
	switch v {
	case Restricted:
		return "restricted"
	case Oblivious:
		return "oblivious"
	case SemiOblivious:
		return "semi-oblivious"
	default:
		return fmt.Sprintf("Variant(%d)", uint8(v))
	}
}

// Strategy selects which pending trigger fires next. FIFO yields fair
// derivations (every enqueued trigger is eventually considered); LIFO can
// starve old triggers and is deliberately available to exhibit unfair
// derivations; Random draws from the pending set with a seeded source.
type Strategy uint8

const (
	FIFO Strategy = iota
	LIFO
	Random
)

func (s Strategy) String() string {
	switch s {
	case FIFO:
		return "fifo"
	case LIFO:
		return "lifo"
	case Random:
		return "random"
	default:
		return fmt.Sprintf("Strategy(%d)", uint8(s))
	}
}

// StopReason explains why a run ended.
type StopReason uint8

const (
	// Fixpoint: no applicable trigger remained; the run is a finite chase
	// derivation and its result satisfies the TGD set (for Restricted).
	Fixpoint StopReason = iota
	// StepBudget: MaxSteps trigger applications were performed.
	StepBudget
	// AtomBudget: the instance grew past MaxAtoms.
	AtomBudget
)

func (r StopReason) String() string {
	switch r {
	case Fixpoint:
		return "fixpoint"
	case StepBudget:
		return "step-budget"
	case AtomBudget:
		return "atom-budget"
	default:
		return fmt.Sprintf("StopReason(%d)", uint8(r))
	}
}

// Options configures a chase run. The zero value is a restricted FIFO chase
// with structural null naming and no budgets — suitable only for inputs
// known to terminate; set MaxSteps or MaxAtoms otherwise.
type Options struct {
	Variant  Variant
	Strategy Strategy
	// MaxSteps bounds the number of trigger applications; 0 means no bound.
	MaxSteps int
	// MaxAtoms bounds the instance size; 0 means no bound.
	MaxAtoms int
	// Seed drives the Random strategy.
	Seed int64
	// Naming selects the null-naming policy.
	Naming NullNaming
	// DropSteps disables derivation recording (benchmarks).
	DropSteps bool
}

// Step records one trigger application I⟨σ,h⟩J.
type Step struct {
	Trigger Trigger
	// Result is result(σ,h) — every head atom, whether new or not.
	Result []logic.Atom
	// Added are the atoms of Result that were new to the instance.
	Added []logic.Atom
}

// Stats counts the engine's bookkeeping work — the currency of the
// paper's §1 trade-off discussion ("at each step, the restricted chase has
// to check that there is no way to satisfy the right-hand side … and this
// is costly").
type Stats struct {
	// ActivityChecks counts IsActive evaluations (restricted only).
	ActivityChecks int
	// TriggersEnqueued counts distinct triggers discovered.
	TriggersEnqueued int
	// TriggersSkipped counts popped triggers that were not applicable
	// (deactivated since discovery, or duplicate frontier class).
	TriggersSkipped int
}

// Run is the outcome of a chase: the final instance, the derivation, and
// why the run stopped.
type Run struct {
	Options  Options
	Set      *tgds.Set
	Database *instance.Database
	Final    *instance.Instance
	Steps    []Step
	Reason   StopReason
	// StepsTaken counts trigger applications (equals len(Steps) unless
	// DropSteps).
	StepsTaken int
	// Stats records the engine's bookkeeping work.
	Stats Stats
}

// Terminated reports whether the run reached a fixpoint.
func (r *Run) Terminated() bool { return r.Reason == Fixpoint }

// InstanceAt replays the derivation and returns I_i: the instance after i
// steps (I_0 is the database). It requires recorded steps.
func (r *Run) InstanceAt(i int) *instance.Instance {
	if r.Options.DropSteps {
		panic("chase: InstanceAt requires recorded steps")
	}
	if i > len(r.Steps) {
		i = len(r.Steps)
	}
	inst := r.Database.Instance()
	for _, s := range r.Steps[:i] {
		for _, a := range s.Added {
			inst.Add(a)
		}
	}
	return inst
}

// engine is the shared machinery of the three variants.
type engine struct {
	set   *tgds.Set
	opts  Options
	inst  *instance.Instance
	nulls *NullFactory
	queue []Trigger
	seen  map[string]struct{} // trigger keys ever enqueued
	// appliedFrontier dedups semi-oblivious applications by frontier class.
	appliedFrontier map[string]struct{}
	rng             *rand.Rand
	run             *Run
}

// Run chases the database with the TGD set under the options.
func RunChase(db *instance.Database, set *tgds.Set, opts Options) *Run {
	e := &engine{
		set:             set,
		opts:            opts,
		inst:            db.Instance(),
		nulls:           NewNullFactory(opts.Naming),
		seen:            make(map[string]struct{}),
		appliedFrontier: make(map[string]struct{}),
		run:             &Run{Options: opts, Set: set, Database: db},
	}
	if opts.Strategy == Random {
		e.rng = rand.New(rand.NewSource(opts.Seed))
	}
	for _, tr := range AllTriggers(set, e.inst) {
		e.enqueue(tr)
	}
	e.loop()
	e.run.Final = e.inst
	return e.run
}

func (e *engine) enqueue(tr Trigger) {
	key := tr.Key()
	if _, ok := e.seen[key]; ok {
		return
	}
	e.seen[key] = struct{}{}
	e.run.Stats.TriggersEnqueued++
	e.queue = append(e.queue, tr)
}

func (e *engine) pop() Trigger {
	var i int
	switch e.opts.Strategy {
	case LIFO:
		i = len(e.queue) - 1
	case Random:
		i = e.rng.Intn(len(e.queue))
	default:
		i = 0
	}
	tr := e.queue[i]
	e.queue = append(e.queue[:i], e.queue[i+1:]...)
	return tr
}

// applicable decides whether a popped trigger should fire under the variant.
func (e *engine) applicable(tr Trigger) bool {
	switch e.opts.Variant {
	case Restricted:
		// Activity is antitone: once non-active, forever non-active
		// (instances only grow), so dropping is safe.
		e.run.Stats.ActivityChecks++
		return IsActive(tr, e.inst)
	case SemiOblivious:
		if _, done := e.appliedFrontier[tr.FrontierKey()]; done {
			return false
		}
		return true
	default:
		return true
	}
}

func (e *engine) loop() {
	for len(e.queue) > 0 {
		if e.opts.MaxSteps > 0 && e.run.StepsTaken >= e.opts.MaxSteps {
			e.run.Reason = StepBudget
			return
		}
		if e.opts.MaxAtoms > 0 && e.inst.Len() >= e.opts.MaxAtoms {
			e.run.Reason = AtomBudget
			return
		}
		tr := e.pop()
		if !e.applicable(tr) {
			e.run.Stats.TriggersSkipped++
			continue
		}
		e.apply(tr)
	}
	e.run.Reason = Fixpoint
}

func (e *engine) apply(tr Trigger) {
	result := Result(tr, e.nulls)
	added := make([]logic.Atom, 0, len(result))
	for _, a := range result {
		if e.inst.Add(a) {
			added = append(added, a)
		}
	}
	if e.opts.Variant == SemiOblivious {
		e.appliedFrontier[tr.FrontierKey()] = struct{}{}
	}
	e.run.StepsTaken++
	if !e.opts.DropSteps {
		e.run.Steps = append(e.run.Steps, Step{Trigger: tr, Result: result, Added: added})
	}
	for _, a := range added {
		for _, nt := range TriggersInvolving(e.set, e.inst, a) {
			e.enqueue(nt)
		}
	}
}

// Terminates runs the restricted chase with the given budgets and reports
// whether it reached a fixpoint; a convenience wrapper used by examples and
// sufficient-condition baselines.
func Terminates(db *instance.Database, set *tgds.Set, maxSteps int) (bool, *Run) {
	run := RunChase(db, set, Options{Variant: Restricted, MaxSteps: maxSteps, DropSteps: true})
	return run.Terminated(), run
}

// UniversalModel runs the restricted chase to fixpoint (no budgets) and
// returns the resulting instance, which is a universal model of the
// database and the TGDs. Callers must know the input terminates.
func UniversalModel(db *instance.Database, set *tgds.Set) *instance.Instance {
	run := RunChase(db, set, Options{Variant: Restricted, DropSteps: true})
	return run.Final
}
