package chase

// Benchmarks for the delta-maintained trigger index (triggerindex.go): the
// same searcher with the index on (default) and off (fullRescan — the PR 3
// per-expansion full re-enumeration), so the ratio isolates exactly the
// tentpole of ISSUE 4. Workloads are the deep stage grids of
// BENCH_parallel.json (6561 and 59049 states; every expansion's delta is a
// single atom while instances grow to 3n atoms — delta ≪ instance) plus the
// schedule-independent sweep ladder. BENCH_delta.json records the measured
// numbers; TestSearchDeltaIndexMatchesFullRescan pins the two modes
// bit-identical, so the ratio is a pure like-for-like measurement.

import (
	"fmt"
	"testing"

	"airct/internal/parser"
	"airct/internal/workload"
)

func BenchmarkDeltaExistsSearch(b *testing.B) {
	cases := []struct {
		name      string
		prog      *parser.Program
		maxStates int
		maxAtoms  int
		wantFound bool
	}{
		{"stage-grid-8", stageGrid(8), 8000, 24, true},             // 3^8 = 6561 states
		{"stage-grid-10", workload.StageGrid(10), 70000, 30, true}, // 3^10 = 59049 states
		{"null-grid-7", nullGrid(7), 3000, 0, true},                // 3^7 = 2187 states, nulls per stage
		{"sweep-ladder-16", ladderGrid(16), 6561, 1000, false},     // exactly 6561 states
	}
	for _, tc := range cases {
		for _, mode := range []struct {
			name   string
			rescan bool
		}{{"delta-index", false}, {"full-rescan", true}} {
			b.Run(fmt.Sprintf("%s/%s", tc.name, mode.name), func(b *testing.B) {
				b.ReportAllocs()
				var states int
				for i := 0; i < b.N; i++ {
					res := SearchTerminatingDerivation(tc.prog.Database, tc.prog.TGDs, SearchOptions{
						MaxStates:  tc.maxStates,
						MaxAtoms:   tc.maxAtoms,
						fullRescan: mode.rescan,
					})
					if res.Found != tc.wantFound {
						b.Fatalf("Found = %v, want %v: %+v", res.Found, tc.wantFound, res)
					}
					states = res.StatesVisited
				}
				b.ReportMetric(float64(states)*float64(b.N)/b.Elapsed().Seconds(), "states/sec")
			})
		}
	}
}
