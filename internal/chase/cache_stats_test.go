package chase

import (
	"encoding/json"
	"reflect"
	"regexp"
	"strings"
	"testing"

	"airct/internal/logic"
)

// TestCacheStatsRoundTrip pins the one-struct-two-renderings contract of
// CacheStats: the text line termcheck prints and the JSON object termcheckd
// serves must carry the same keys with the same values, and both renderings
// must round-trip losslessly. A field added to the struct without updating
// String/ParseCacheStatsLine (or vice versa) fails here.
func TestCacheStatsRoundTrip(t *testing.T) {
	s := CacheStats{Hits: 12, Misses: 34, Entries: 5, Bytes: 67890, Evictions: 2, EvictedEntries: 41}

	// Text line → struct.
	back, err := ParseCacheStatsLine(s.String())
	if err != nil {
		t.Fatalf("parse of own rendering: %v", err)
	}
	if back != s {
		t.Errorf("text round-trip drifted: %+v vs %+v", back, s)
	}

	// JSON → struct.
	raw, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var jback CacheStats
	if err := json.Unmarshal(raw, &jback); err != nil {
		t.Fatal(err)
	}
	if jback != s {
		t.Errorf("JSON round-trip drifted: %+v vs %+v", jback, s)
	}

	// Key parity: every key=value pair of the text line appears as a JSON
	// key with the identical value, and the two renderings have the same
	// number of keys — so neither can grow a field the other lacks.
	var obj map[string]int64
	if err := json.Unmarshal(raw, &obj); err != nil {
		t.Fatal(err)
	}
	pairs := regexp.MustCompile(`([a-z-]+)=(-?\d+)`).FindAllStringSubmatch(s.String(), -1)
	if len(pairs) != len(obj) {
		t.Fatalf("text line has %d keys, JSON has %d:\n%s\n%s", len(pairs), len(obj), s.String(), raw)
	}
	for _, kv := range pairs {
		got, ok := obj[kv[1]]
		if !ok {
			t.Errorf("text key %q missing from JSON rendering %s", kv[1], raw)
			continue
		}
		if want := kv[2]; want != jsonInt(got) {
			t.Errorf("key %q: text %s vs JSON %d", kv[1], want, got)
		}
	}

	// Struct parity: every field is rendered (no silent omissions).
	if n := reflect.TypeOf(s).NumField(); n != len(obj) {
		t.Errorf("CacheStats has %d fields but renders %d keys", n, len(obj))
	}

	// Malformed lines are rejected, not zero-filled.
	if _, err := ParseCacheStatsLine("cache: hits=1"); err == nil {
		t.Error("truncated line must not parse")
	}
}

func jsonInt(v int64) string {
	b, _ := json.Marshal(v)
	return string(b)
}

// TestCacheStatsStringMatchesLiveCounters exercises String against a live
// cache so the line reflects real counter motion, not just a struct dump.
func TestCacheStatsStringMatchesLiveCounters(t *testing.T) {
	c := NewCache()
	set := logic.Fingerprint{Hi: 1, Lo: 1}
	inst := logic.Fingerprint{Hi: 2, Lo: 2}
	if _, ok := c.LookupSeedOutcome(set, inst, 10); ok {
		t.Fatal("unexpected hit on empty cache")
	}
	c.StoreSeedOutcome(set, inst, 10, SeedOutcome{Diverges: true, Method: "m", Evidence: "e"})
	if _, ok := c.LookupSeedOutcome(set, inst, 10); !ok {
		t.Fatal("stored outcome not served")
	}
	line := c.Stats().String()
	if !strings.HasPrefix(line, "cache: hits=1 misses=1 entries=1 ") {
		t.Errorf("live stats line off: %s", line)
	}
}
