package chase

import (
	"fmt"
	"testing"

	"airct/internal/parser"
	"airct/internal/workload"
)

// EGD-heavy workloads for BENCH_egd.json: the key-graph family (a key EGD
// merging the invented F-values flowing along a random graph's edges, mostly
// null-with-null) plus the merge star, where every leaf's invented value is
// copied to a hub holding a ground value, so every equality step absorbs a
// null into a constant — in any trigger order. Both terminate without
// failing, so every iteration measures the full equality path — union-find
// growth, in-place rewrite, fingerprint repair, and the post-rewrite trigger
// rebuild.

func egdPrograms(b *testing.B) map[string]*parser.Program {
	b.Helper()
	mergeStar := func(n int) *parser.Program {
		src := `
			f_intro: Node(X) -> F(X,V).
			f_copy:  Edge(X,Y), F(X,V) -> F(Y,V).
			key:     F(X,U), F(X,V) -> U = V.
			F(hub,g).
		`
		for i := 0; i < n; i++ {
			src += fmt.Sprintf("Node(l%d).\nEdge(l%d,hub).\n", i, i)
		}
		prog, err := parser.Parse(src)
		if err != nil {
			b.Fatal(err)
		}
		return prog
	}
	return map[string]*parser.Program{
		"key-graph-40":   workload.KeyGraph(40, 1),
		"key-graph-160":  workload.KeyGraph(160, 1),
		"merge-star-120": mergeStar(120),
	}
}

func benchEGDEngines(b *testing.B, run func(*parser.Program) *Run) {
	for name, prog := range egdPrograms(b) {
		prog := prog
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				r := run(prog)
				if !r.Terminated() {
					b.Fatalf("reason = %v", r.Reason)
				}
				if r.EqualitySteps == 0 {
					b.Fatal("an EGD bench iteration took no equality steps")
				}
			}
		})
	}
}

// BenchmarkEGDChaseInterned measures the interned engine's equality path.
func BenchmarkEGDChaseInterned(b *testing.B) {
	benchEGDEngines(b, func(prog *parser.Program) *Run {
		return RunChase(prog.Database, prog.TGDs, Options{Variant: Restricted, DropSteps: true})
	})
}

// BenchmarkEGDChaseReference measures the string-keyed reference (the EGD
// differential oracle) on the same workloads.
func BenchmarkEGDChaseReference(b *testing.B) {
	benchEGDEngines(b, func(prog *parser.Program) *Run {
		return referenceEGDRunChase(prog.Database, prog.TGDs, Options{Variant: Restricted, DropSteps: true})
	})
}
