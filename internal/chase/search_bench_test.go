package chase

// Benchmarks for the ∀∃ derivation search: the fingerprint-memoised
// subsystem (search.go) against the preserved string-memoised reference
// (exists_ref_test.go). The stage-grid family yields 3^n distinct states
// (each fact advances independently through P → +Q → +R), so the search
// must sweep nearly the whole space before the full state — the only
// fixpoint — is expanded: a pure states/sec measurement. BENCH_exists.json
// records the measured numbers.

import (
	"fmt"
	"strings"
	"testing"

	"airct/internal/parser"
)

// stageGrid builds the n-fact two-stage program: 3^n reachable states.
func stageGrid(n int) *parser.Program {
	var b strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "P(c%d).\n", i)
	}
	b.WriteString("s1: P(X) -> Q(X).\n")
	b.WriteString("s2: Q(X) -> R(X).\n")
	return parser.MustParse(b.String())
}

// nullGrid is the existential variant: each fact invents a null on its way,
// exercising structural-null fingerprinting on every state.
func nullGrid(n int) *parser.Program {
	var b strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "P(c%d).\n", i)
	}
	b.WriteString("s1: P(X) -> Q(X,Y).\n")
	b.WriteString("s2: Q(X,Y) -> R(Y).\n")
	return parser.MustParse(b.String())
}

func BenchmarkExistsSearch(b *testing.B) {
	cases := []struct {
		name      string
		prog      *parser.Program
		maxStates int
	}{
		{"stage-grid-8", stageGrid(8), 8000}, // 3^8 = 6561 states
		{"null-grid-7", nullGrid(7), 3000},   // 3^7 = 2187 states
		{"order-sensitive", parser.MustParse(`
			R(a,b).
			grow: R(X,Y) -> R(Y,Z).
			swap: R(X,Y) -> R(Y,X).
		`), 5000},
	}
	for _, tc := range cases {
		b.Run(tc.name+"/interned-fp", func(b *testing.B) {
			b.ReportAllocs()
			var states int
			for i := 0; i < b.N; i++ {
				res := ExistsTerminatingDerivation(tc.prog.Database, tc.prog.TGDs, tc.maxStates, 0)
				if !res.Found {
					b.Fatalf("must find a fixpoint: %+v", res)
				}
				states = res.StatesVisited
			}
			b.ReportMetric(float64(states)*float64(b.N)/b.Elapsed().Seconds(), "states/sec")
		})
		b.Run(tc.name+"/reference-strings", func(b *testing.B) {
			b.ReportAllocs()
			var states int
			for i := 0; i < b.N; i++ {
				res := referenceExistsTerminatingDerivation(tc.prog.Database, tc.prog.TGDs, tc.maxStates, 0)
				if !res.Found {
					b.Fatalf("must find a fixpoint: %+v", res)
				}
				states = res.StatesVisited
			}
			b.ReportMetric(float64(states)*float64(b.N)/b.Elapsed().Seconds(), "states/sec")
		})
	}
}
