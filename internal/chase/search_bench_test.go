package chase

// Benchmarks for the ∀∃ derivation search: the fingerprint-memoised
// subsystem (search.go) against the preserved string-memoised reference
// (exists_ref_test.go). The stage-grid family yields 3^n distinct states
// (each fact advances independently through P → +Q → +R), so the search
// must sweep nearly the whole space before the full state — the only
// fixpoint — is expanded: a pure states/sec measurement. BENCH_exists.json
// records the measured numbers.

import (
	"fmt"
	"strings"
	"testing"

	"airct/internal/parser"
	"airct/internal/workload"
)

// stageGrid builds the n-fact two-stage program: 3^n reachable states. It
// is the same program workload.StageGrid generates (and `benchgen -family
// stage-grid` emits); TestStageGridMatchesWorkload pins the two together.
func stageGrid(n int) *parser.Program {
	var b strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "P(c%d).\n", i)
	}
	b.WriteString("s1: P(X) -> Q(X).\n")
	b.WriteString("s2: Q(X) -> R(X).\n")
	return parser.MustParse(b.String())
}

func TestStageGridMatchesWorkload(t *testing.T) {
	want := parser.Print(stageGrid(5))
	got := parser.Print(workload.StageGrid(5))
	if want != got {
		t.Errorf("workload.StageGrid drifted from the benchmark grid:\n%s\nvs\n%s", got, want)
	}
}

// nullGrid is the existential variant: each fact invents a null on its way,
// exercising structural-null fingerprinting on every state.
func nullGrid(n int) *parser.Program {
	var b strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "P(c%d).\n", i)
	}
	b.WriteString("s1: P(X) -> Q(X,Y).\n")
	b.WriteString("s2: Q(X,Y) -> R(Y).\n")
	return parser.MustParse(b.String())
}

func BenchmarkExistsSearch(b *testing.B) {
	cases := []struct {
		name      string
		prog      *parser.Program
		maxStates int
	}{
		{"stage-grid-8", stageGrid(8), 8000}, // 3^8 = 6561 states
		{"null-grid-7", nullGrid(7), 3000},   // 3^7 = 2187 states
		{"order-sensitive", parser.MustParse(`
			R(a,b).
			grow: R(X,Y) -> R(Y,Z).
			swap: R(X,Y) -> R(Y,X).
		`), 5000},
	}
	for _, tc := range cases {
		b.Run(tc.name+"/interned-fp", func(b *testing.B) {
			b.ReportAllocs()
			var states int
			for i := 0; i < b.N; i++ {
				res := ExistsTerminatingDerivation(tc.prog.Database, tc.prog.TGDs, tc.maxStates, 0)
				if !res.Found {
					b.Fatalf("must find a fixpoint: %+v", res)
				}
				states = res.StatesVisited
			}
			b.ReportMetric(float64(states)*float64(b.N)/b.Elapsed().Seconds(), "states/sec")
		})
		b.Run(tc.name+"/reference-strings", func(b *testing.B) {
			b.ReportAllocs()
			var states int
			for i := 0; i < b.N; i++ {
				res := referenceExistsTerminatingDerivation(tc.prog.Database, tc.prog.TGDs, tc.maxStates, 0)
				if !res.Found {
					b.Fatalf("must find a fixpoint: %+v", res)
				}
				states = res.StatesVisited
			}
			b.ReportMetric(float64(states)*float64(b.N)/b.Elapsed().Seconds(), "states/sec")
		})
	}
}

// ladderGrid builds the diverging branching workload for the full-sweep
// throughput benchmark: n independent facts, each starting an infinite
// P → ∃Y R(X,Y) → P(Y) ladder. Every state has ~n active triggers and no
// fixpoint is ever reachable, so a search with MaxStates = m visits exactly
// m distinct states before the budget cuts it — a deterministic,
// schedule-independent amount of work.
func ladderGrid(n int) *parser.Program {
	var b strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "P(c%d).\n", i)
	}
	b.WriteString("step: P(X) -> R(X,Y).\n")
	b.WriteString("next: R(X,Y) -> P(Y).\n")
	return parser.MustParse(b.String())
}

// BenchmarkParallelExistsSearch measures the sharded parallel search across
// worker counts; workers-1 runs the sequential searcher — the baseline the
// speedups in BENCH_parallel.json are computed against. Two workload
// shapes:
//
//   - stage-grid-{8,10} (3^8 = 6561 and 3^10 = 59049 reachable states; the
//     larger one is `benchgen -family stage-grid -n 10`): time-to-verdict
//     on a space with a single fixpoint. StatesVisited is
//     schedule-dependent here — sharded frontiers legitimately reach the
//     fixpoint having swept less of the space than global smallest-first —
//     so compare ns/op (the verdict latency), not states/sec.
//   - sweep-ladder-16: a diverging branching space cut at exactly
//     MaxStates = 6561 distinct states. The work is schedule-independent,
//     making states/sec a pure state-processing throughput metric.
func BenchmarkParallelExistsSearch(b *testing.B) {
	cases := []struct {
		name      string
		prog      *parser.Program
		maxStates int
		maxAtoms  int
		wantFound bool
	}{
		{"stage-grid-8", stageGrid(8), 8000, 24, true},             // 3^8 = 6561 states
		{"stage-grid-10", workload.StageGrid(10), 70000, 30, true}, // 3^10 = 59049 states
		{"sweep-ladder-16", ladderGrid(16), 6561, 1000, false},     // exactly 6561 states
	}
	for _, tc := range cases {
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/workers-%d", tc.name, workers), func(b *testing.B) {
				b.ReportAllocs()
				var states int
				for i := 0; i < b.N; i++ {
					res := SearchTerminatingDerivation(tc.prog.Database, tc.prog.TGDs, SearchOptions{
						MaxStates: tc.maxStates,
						MaxAtoms:  tc.maxAtoms,
						Workers:   workers,
					})
					if res.Found != tc.wantFound {
						b.Fatalf("Found = %v, want %v: %+v", res.Found, tc.wantFound, res)
					}
					states = res.StatesVisited
				}
				b.ReportMetric(float64(states)*float64(b.N)/b.Elapsed().Seconds(), "states/sec")
			})
		}
	}
}
