package chase

// The pre-refactor ∀∃ search, preserved verbatim as the reference for the
// differential test (like referenceRunChase for the engine): it memoises
// states by joined sorted-key strings, clones the instance per generated
// child, and re-sorts the whole frontier per pop. The fingerprint-memoised
// subsystem in search.go must agree with it on Found/Exhausted and on the
// number of distinct states, and its witnesses must replay to a fixpoint.

import (
	"sort"
	"strings"
	"testing"

	"airct/internal/instance"
	"airct/internal/parser"
	"airct/internal/tgds"
)

func referenceExistsTerminatingDerivation(db *instance.Database, set *tgds.Set, maxStates, maxAtoms int) *ExistsResult {
	if maxStates <= 0 {
		maxStates = 10_000
	}
	if maxAtoms <= 0 {
		maxAtoms = 200
	}
	type node struct {
		inst  *instance.Instance
		path  []Trigger
		nulls *NullFactory
	}
	start := node{inst: db.Instance(), nulls: NewNullFactory(StructuralNaming)}
	seen := map[string]bool{referenceInstKey(start.inst): true}
	queue := []node{start}
	res := &ExistsResult{Exhausted: true}
	for len(queue) > 0 {
		// Prefer small instances: fixpoints are found sooner and the
		// memoised frontier stays tight.
		sort.SliceStable(queue, func(i, j int) bool { return queue[i].inst.Len() < queue[j].inst.Len() })
		cur := queue[0]
		queue = queue[1:]
		active := ActiveTriggers(set, cur.inst)
		if len(active) == 0 {
			res.Found = true
			res.Derivation = cur.path
			res.StatesVisited = len(seen)
			return res
		}
		if cur.inst.Len() >= maxAtoms {
			res.Exhausted = false
			continue
		}
		for _, tr := range active {
			next := cur.inst.Clone()
			// Share the null factory: structural naming makes the result
			// of a trigger independent of the path, so states merge.
			for _, a := range Result(tr, cur.nulls) {
				next.Add(a)
			}
			key := referenceInstKey(next)
			if seen[key] {
				continue
			}
			if len(seen) >= maxStates {
				res.Exhausted = false
				break
			}
			seen[key] = true
			path := make([]Trigger, len(cur.path)+1)
			copy(path, cur.path)
			path[len(cur.path)] = tr
			queue = append(queue, node{inst: next, path: path, nulls: cur.nulls})
		}
	}
	res.StatesVisited = len(seen)
	return res
}

func referenceInstKey(in *instance.Instance) string {
	return strings.Join(in.SortedKeys(), "|")
}

// differentialExistsPrograms are the seeded programs the new search is
// pinned against: terminating, order-sensitive, purely diverging,
// multi-head, diamond-shaped, and budget-cut cases.
var differentialExistsPrograms = []struct {
	name      string
	src       string
	maxStates int
	maxAtoms  int
}{
	{"terminating", `
		P(a,b).
		s1: P(X,Y) -> R(X,Y).
		s2: P(X,Y) -> S(X).
	`, 0, 0},
	{"order-sensitive", `
		R(a,b).
		grow: R(X,Y) -> R(Y,Z).
		swap: R(X,Y) -> R(Y,X).
	`, 5000, 50},
	{"pure-divergence", `
		S(a).
		grow: S(X) -> R(X,Y).
		next: R(X,Y) -> S(Y).
	`, 200, 12},
	{"example-B1", `
		R(a,b,b).
		mh1: R(X,Y,Y) -> R(X,Z,Y), R(Z,Y,Y).
		mh2: R(X,Y,Z) -> R(Z,Z,Z).
	`, 5000, 60},
	{"diamond", `
		P(a).
		s1: P(X) -> Q(X).
		s2: P(X) -> R(X).
	`, 0, 0},
	{"wide-diamond", `
		P(a). P(b). P(c).
		s1: P(X) -> Q(X).
		s2: Q(X) -> R(X).
	`, 0, 0},
	{"tight-state-budget", `
		P(a). P(b). P(c). P(d).
		s1: P(X) -> Q(X).
		s2: Q(X) -> R(X).
	`, 20, 0},
	{"joins-and-nulls", `
		E(a,b). E(b,c).
		t: E(X,Y), E(Y,Z) -> E(X,Z).
		w: E(X,Y) -> N(Y,W).
		c: N(X,Y), N(X,Z) -> M(X).
	`, 2000, 40},
}

// TestSearchMatchesReferenceExists pins the fingerprint-memoised search
// against the string-memoised reference: same Found and Exhausted verdicts,
// same count of distinct states, and every witness replays to a fixpoint of
// the same size as the reference's.
func TestSearchMatchesReferenceExists(t *testing.T) {
	for _, tc := range differentialExistsPrograms {
		t.Run(tc.name, func(t *testing.T) {
			prog := parser.MustParse(tc.src)
			want := referenceExistsTerminatingDerivation(prog.Database, prog.TGDs, tc.maxStates, tc.maxAtoms)
			got := ExistsTerminatingDerivation(prog.Database, prog.TGDs, tc.maxStates, tc.maxAtoms)
			if got.Found != want.Found {
				t.Fatalf("Found = %v, reference %v", got.Found, want.Found)
			}
			if got.Exhausted != want.Exhausted {
				t.Errorf("Exhausted = %v, reference %v", got.Exhausted, want.Exhausted)
			}
			if got.StatesVisited != want.StatesVisited {
				t.Errorf("StatesVisited = %d, reference %d", got.StatesVisited, want.StatesVisited)
			}
			if !got.Found {
				return
			}
			// Witness validity: the derivation must replay step by step
			// (Derivation.Apply refuses non-active triggers) and end at a
			// fixpoint matching the reference's.
			d := NewDerivation(prog.Database, prog.TGDs)
			for i, tr := range got.Derivation {
				if err := d.Apply(tr); err != nil {
					t.Fatalf("witness step %d does not replay: %v", i, err)
				}
			}
			if !d.IsFixpoint() {
				t.Fatal("witness does not end in a fixpoint")
			}
			if len(got.Derivation) != len(want.Derivation) {
				t.Errorf("derivation length %d, reference %d", len(got.Derivation), len(want.Derivation))
			}
			// The reference's witness names nulls in exploration order, so
			// on programs that join on nulls it can fail to replay — a
			// latent bug of the string-memoised implementation (the new
			// search renames bindings replay-consistently; see
			// searcher.path). Compare fixpoints only when the reference
			// witness is itself valid.
			ref := NewDerivation(prog.Database, prog.TGDs)
			refValid := true
			for _, tr := range want.Derivation {
				if err := ref.Apply(tr); err != nil {
					refValid = false
					break
				}
			}
			if refValid && d.Instance().Len() != ref.Instance().Len() {
				t.Errorf("fixpoint size %d, reference %d", d.Instance().Len(), ref.Instance().Len())
			}
		})
	}
}

// TestSearchStrategiesAgreeOnVerdicts: the frontier discipline may change
// which witness is found and how much is explored, but never the verdict on
// exhaustively searchable spaces.
func TestSearchStrategiesAgreeOnVerdicts(t *testing.T) {
	for _, tc := range differentialExistsPrograms {
		prog := parser.MustParse(tc.src)
		base := SearchTerminatingDerivation(prog.Database, prog.TGDs, SearchOptions{
			MaxStates: tc.maxStates, MaxAtoms: tc.maxAtoms, Strategy: SmallestFirst,
		})
		if !base.Exhausted && !base.Found {
			continue // budget-cut: verdicts may legitimately differ per order
		}
		for _, strat := range []SearchStrategy{BreadthFirst, DepthFirst} {
			res := SearchTerminatingDerivation(prog.Database, prog.TGDs, SearchOptions{
				MaxStates: tc.maxStates, MaxAtoms: tc.maxAtoms, Strategy: strat,
			})
			if res.Found != base.Found {
				t.Errorf("%s/%v: Found = %v, smallest-first %v", tc.name, strat, res.Found, base.Found)
			}
			if res.Found {
				d := NewDerivation(prog.Database, prog.TGDs)
				for i, tr := range res.Derivation {
					if err := d.Apply(tr); err != nil {
						t.Fatalf("%s/%v: witness step %d does not replay: %v", tc.name, strat, i, err)
					}
				}
				if !d.IsFixpoint() {
					t.Errorf("%s/%v: witness does not end in a fixpoint", tc.name, strat)
				}
			}
		}
	}
}
