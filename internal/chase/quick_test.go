package chase

import (
	"testing"
	"testing/quick"

	"airct/internal/instance"
	"airct/internal/parser"
	"airct/internal/workload"
)

// randomDatalog is the shared workload generator; the alias keeps the many
// in-package call sites short. (The generator was promoted to
// internal/workload so the conformance and cache property suites can draw
// the same programs.)
func randomDatalog(seed int64) *parser.Program { return workload.RandomDatalogProgram(seed) }

// Property: on datalog programs, restricted and oblivious chases compute
// the same closure (no nulls, so activity only skips duplicates), and the
// fixpoint satisfies the set.
func TestQuickDatalogClosureAgreement(t *testing.T) {
	f := func(seed int64) bool {
		prog := randomDatalog(seed % 5000)
		res := RunChase(prog.Database, prog.TGDs, Options{Variant: Restricted, MaxSteps: 5000, DropSteps: true})
		obl := RunChase(prog.Database, prog.TGDs, Options{Variant: Oblivious, MaxSteps: 5000, DropSteps: true})
		if !res.Terminated() || !obl.Terminated() {
			return false
		}
		return res.Final.Equal(obl.Final) && prog.TGDs.SatisfiedBy(res.Final)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: with structural naming the restricted result is contained in
// the oblivious result (same trigger → same null), on programs with
// existentials, whenever both terminate.
func TestQuickRestrictedSubsetOfOblivious(t *testing.T) {
	f := func(seed int64) bool {
		prog := randomDatalog(seed % 5000)
		// Append one existential rule to spice things up; weak acyclicity
		// of the combined set is not guaranteed, so budget and tolerate
		// non-termination (skip those draws).
		src := parser.Print(prog) + "\nP0(X) -> Fresh(X, W).\n"
		p2, err := parser.Parse(src)
		if err != nil {
			return false
		}
		res := RunChase(p2.Database, p2.TGDs, Options{Variant: Restricted, MaxSteps: 2000, DropSteps: true})
		obl := RunChase(p2.Database, p2.TGDs, Options{Variant: Oblivious, MaxSteps: 2000, DropSteps: true})
		if !res.Terminated() || !obl.Terminated() {
			return true // skip diverging draws
		}
		return obl.Final.ContainsAll(res.Final)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: every strategy reaches a fixpoint satisfying the set on
// datalog programs, and the closures agree across strategies.
func TestQuickStrategiesAgreeOnDatalog(t *testing.T) {
	f := func(seed int64) bool {
		prog := randomDatalog(seed % 5000)
		var final *instance.Instance
		for _, s := range []Strategy{FIFO, LIFO, Random} {
			run := RunChase(prog.Database, prog.TGDs, Options{
				Variant: Restricted, Strategy: s, Seed: seed, MaxSteps: 5000, DropSteps: true,
			})
			if !run.Terminated() {
				return false
			}
			if final == nil {
				final = run.Final
			} else if !final.Equal(run.Final) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: InstanceAt is monotone and ends at Final.
func TestQuickDerivationMonotone(t *testing.T) {
	f := func(seed int64) bool {
		prog := randomDatalog(seed % 5000)
		run := RunChase(prog.Database, prog.TGDs, Options{Variant: Restricted, MaxSteps: 5000})
		if !run.Terminated() {
			return false
		}
		prev := run.InstanceAt(0)
		if !prev.Equal(prog.Database.Instance()) {
			return false
		}
		for i := 1; i <= len(run.Steps); i++ {
			cur := run.InstanceAt(i)
			if !cur.ContainsAll(prev) || cur.Len() < prev.Len() {
				return false
			}
			prev = cur
		}
		return prev.Equal(run.Final)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: the chase result embeds into itself under identity and the
// run is reproducible (same options → same instance).
func TestQuickRunReproducible(t *testing.T) {
	f := func(seed int64) bool {
		prog := randomDatalog(seed % 5000)
		a := RunChase(prog.Database, prog.TGDs, Options{Variant: Restricted, Strategy: Random, Seed: 9, MaxSteps: 5000, DropSteps: true})
		b := RunChase(prog.Database, prog.TGDs, Options{Variant: Restricted, Strategy: Random, Seed: 9, MaxSteps: 5000, DropSteps: true})
		return a.Final.Equal(b.Final) && a.StepsTaken == b.StepsTaken
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
