package chase

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"airct/internal/instance"
	"airct/internal/parser"
)

// randomDatalog generates a random datalog program (no existentials, so
// every chase terminates) with a random database, deterministically from
// the seed.
func randomDatalog(seed int64) *parser.Program {
	rng := rand.New(rand.NewSource(seed))
	nPreds := 3 + rng.Intn(3)
	arity := func(p int) int { return 1 + (p % 2) }
	var b strings.Builder
	vars := []string{"X", "Y", "Z"}
	atom := func(p int, pool []string) string {
		args := make([]string, arity(p))
		for i := range args {
			args[i] = pool[rng.Intn(len(pool))]
		}
		return fmt.Sprintf("P%d(%s)", p, strings.Join(args, ","))
	}
	nRules := 2 + rng.Intn(4)
	for r := 0; r < nRules; r++ {
		nBody := 1 + rng.Intn(2)
		pool := vars[:1+rng.Intn(len(vars))]
		var body []string
		used := map[string]bool{}
		for i := 0; i < nBody; i++ {
			a := atom(rng.Intn(nPreds), pool)
			body = append(body, a)
			for _, v := range pool {
				if strings.Contains(a, v) {
					used[v] = true
				}
			}
		}
		// Head variables drawn from the variables the body actually uses:
		// genuinely no existentials.
		var usedPool []string
		for _, v := range pool {
			if used[v] {
				usedPool = append(usedPool, v)
			}
		}
		fmt.Fprintf(&b, "%s -> %s.\n", strings.Join(body, ", "), atom(rng.Intn(nPreds), usedPool))
	}
	nFacts := 1 + rng.Intn(5)
	consts := []string{"a", "b", "cc"}
	for f := 0; f < nFacts; f++ {
		p := rng.Intn(nPreds)
		args := make([]string, arity(p))
		for i := range args {
			args[i] = consts[rng.Intn(len(consts))]
		}
		fmt.Fprintf(&b, "P%d(%s).\n", p, strings.Join(args, ","))
	}
	prog, err := parser.Parse(b.String())
	if err != nil {
		panic(err)
	}
	return prog
}

// Property: on datalog programs, restricted and oblivious chases compute
// the same closure (no nulls, so activity only skips duplicates), and the
// fixpoint satisfies the set.
func TestQuickDatalogClosureAgreement(t *testing.T) {
	f := func(seed int64) bool {
		prog := randomDatalog(seed % 5000)
		res := RunChase(prog.Database, prog.TGDs, Options{Variant: Restricted, MaxSteps: 5000, DropSteps: true})
		obl := RunChase(prog.Database, prog.TGDs, Options{Variant: Oblivious, MaxSteps: 5000, DropSteps: true})
		if !res.Terminated() || !obl.Terminated() {
			return false
		}
		return res.Final.Equal(obl.Final) && prog.TGDs.SatisfiedBy(res.Final)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: with structural naming the restricted result is contained in
// the oblivious result (same trigger → same null), on programs with
// existentials, whenever both terminate.
func TestQuickRestrictedSubsetOfOblivious(t *testing.T) {
	f := func(seed int64) bool {
		prog := randomDatalog(seed % 5000)
		// Append one existential rule to spice things up; weak acyclicity
		// of the combined set is not guaranteed, so budget and tolerate
		// non-termination (skip those draws).
		src := parser.Print(prog) + "\nP0(X) -> Fresh(X, W).\n"
		p2, err := parser.Parse(src)
		if err != nil {
			return false
		}
		res := RunChase(p2.Database, p2.TGDs, Options{Variant: Restricted, MaxSteps: 2000, DropSteps: true})
		obl := RunChase(p2.Database, p2.TGDs, Options{Variant: Oblivious, MaxSteps: 2000, DropSteps: true})
		if !res.Terminated() || !obl.Terminated() {
			return true // skip diverging draws
		}
		return obl.Final.ContainsAll(res.Final)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: every strategy reaches a fixpoint satisfying the set on
// datalog programs, and the closures agree across strategies.
func TestQuickStrategiesAgreeOnDatalog(t *testing.T) {
	f := func(seed int64) bool {
		prog := randomDatalog(seed % 5000)
		var final *instance.Instance
		for _, s := range []Strategy{FIFO, LIFO, Random} {
			run := RunChase(prog.Database, prog.TGDs, Options{
				Variant: Restricted, Strategy: s, Seed: seed, MaxSteps: 5000, DropSteps: true,
			})
			if !run.Terminated() {
				return false
			}
			if final == nil {
				final = run.Final
			} else if !final.Equal(run.Final) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: InstanceAt is monotone and ends at Final.
func TestQuickDerivationMonotone(t *testing.T) {
	f := func(seed int64) bool {
		prog := randomDatalog(seed % 5000)
		run := RunChase(prog.Database, prog.TGDs, Options{Variant: Restricted, MaxSteps: 5000})
		if !run.Terminated() {
			return false
		}
		prev := run.InstanceAt(0)
		if !prev.Equal(prog.Database.Instance()) {
			return false
		}
		for i := 1; i <= len(run.Steps); i++ {
			cur := run.InstanceAt(i)
			if !cur.ContainsAll(prev) || cur.Len() < prev.Len() {
				return false
			}
			prev = cur
		}
		return prev.Equal(run.Final)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: the chase result embeds into itself under identity and the
// run is reproducible (same options → same instance).
func TestQuickRunReproducible(t *testing.T) {
	f := func(seed int64) bool {
		prog := randomDatalog(seed % 5000)
		a := RunChase(prog.Database, prog.TGDs, Options{Variant: Restricted, Strategy: Random, Seed: 9, MaxSteps: 5000, DropSteps: true})
		b := RunChase(prog.Database, prog.TGDs, Options{Variant: Restricted, Strategy: Random, Seed: 9, MaxSteps: 5000, DropSteps: true})
		return a.Final.Equal(b.Final) && a.StepsTaken == b.StepsTaken
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
