package chase

// Differential tests for the engine's delta-maintained activity checks
// (engine.go): the pop-time resolution — birth verdict + head-predicate
// watermark + delta-pinned head search — must match the old full activity
// check at EVERY pop, not just produce the same run. Three angles:
//
//   - ground truth at every pop: the onActivity hook receives the delta
//     resolution next to a freshly computed full-search answer on the very
//     instance being popped against (the engine computes both when the
//     hook is set), across the differential corpus and both shared random
//     program generators;
//   - the fullActivity baseline: with the machinery disabled the engine is
//     the pre-delta engine, and the two modes must agree byte-for-byte
//     (sameRun: Final insertion order, Steps, Stats, StopReason);
//   - the cross-run seed-index cache: a run that loads its initial queue
//     (and birth-activity flags) from the cache must be byte-identical to
//     the run that stored it.

import (
	"fmt"
	"testing"

	"airct/internal/parser"
)

// TestEngineDeltaActivityMatchesFullCheckAtEveryPop pins the delta
// resolution against the full check at every single pop.
func TestEngineDeltaActivityMatchesFullCheckAtEveryPop(t *testing.T) {
	check := func(t *testing.T, label string, prog *parser.Program, strat Strategy) {
		t.Helper()
		pops, mismatches := 0, 0
		opts := Options{
			Variant:  Restricted,
			Strategy: strat,
			Seed:     11,
			MaxSteps: 300,
			MaxAtoms: 400,
			onActivity: func(tgd int, bt []uint32, delta, full bool) {
				pops++
				if delta != full {
					mismatches++
				}
			},
		}
		run := RunChase(prog.Database, prog.TGDs, opts)
		if mismatches > 0 {
			t.Errorf("%s/%v: %d of %d pops resolved activity differently from the full check", label, strat, mismatches, pops)
		}
		if pops != run.Stats.ActivityChecks {
			t.Errorf("%s/%v: hook saw %d pops but ActivityChecks counted %d", label, strat, pops, run.Stats.ActivityChecks)
		}
		if got := run.Activity.WatermarkSkips + run.Activity.DeltaRechecks; got > pops {
			t.Errorf("%s/%v: delta machinery resolved %d pops out of %d", label, strat, got, pops)
		}
	}
	for name, src := range differentialPrograms() {
		prog := parser.MustParse(src)
		for _, strat := range []Strategy{FIFO, LIFO, Random} {
			check(t, name, prog, strat)
		}
	}
	for seed := int64(0); seed < 25; seed++ {
		check(t, fmt.Sprintf("datalog-%d", seed), randomDatalog(seed), FIFO)
		check(t, fmt.Sprintf("existential-%d", seed), randomExistentialProgram(seed), FIFO)
	}
}

// TestEngineDeltaActivityMatchesFullActivityRuns pins the delta engine
// byte-identical to the fullActivity baseline across the corpus, the
// random generators and all strategies.
func TestEngineDeltaActivityMatchesFullActivityRuns(t *testing.T) {
	programs := make(map[string]*parser.Program)
	for name, src := range differentialPrograms() {
		programs[name] = parser.MustParse(src)
	}
	for seed := int64(0); seed < 15; seed++ {
		programs[fmt.Sprintf("datalog-%d", seed)] = randomDatalog(seed)
		programs[fmt.Sprintf("existential-%d", seed)] = randomExistentialProgram(seed)
	}
	for name, prog := range programs {
		for _, strat := range []Strategy{FIFO, LIFO, Random} {
			opts := Options{
				Variant:  Restricted,
				Strategy: strat,
				Seed:     7,
				MaxSteps: 300,
				MaxAtoms: 400,
			}
			got := RunChase(prog.Database, prog.TGDs, opts)
			opts.fullActivity = true
			want := RunChase(prog.Database, prog.TGDs, opts)
			sameRun(t, fmt.Sprintf("%s/%v", name, strat), got, want)
			if got.Activity.BirthChecks == 0 && got.Stats.TriggersEnqueued > 0 {
				t.Errorf("%s/%v: delta engine performed no birth checks", name, strat)
			}
			if want.Activity != (DeltaActivityStats{}) {
				t.Errorf("%s/%v: fullActivity engine recorded delta stats %+v", name, strat, want.Activity)
			}
		}
	}
}

// TestEngineSeedIndexCacheRoundTrip pins cache-loaded runs byte-identical
// to the storing run, across strategies sharing one (set, database) entry.
func TestEngineSeedIndexCacheRoundTrip(t *testing.T) {
	for name, src := range differentialPrograms() {
		prog := parser.MustParse(src)
		cache := NewCache()
		for _, strat := range []Strategy{FIFO, LIFO, Random} {
			opts := Options{
				Variant:  Restricted,
				Strategy: strat,
				Seed:     3,
				MaxSteps: 300,
				MaxAtoms: 400,
				Cache:    cache,
			}
			plain := RunChase(prog.Database, prog.TGDs, Options{
				Variant: Restricted, Strategy: strat, Seed: 3, MaxSteps: 300, MaxAtoms: 400,
			})
			cached := RunChase(prog.Database, prog.TGDs, opts)
			sameRun(t, fmt.Sprintf("%s/%v", name, strat), cached, plain)
			if strat != FIFO && !cached.Activity.SeedIndexHit {
				t.Errorf("%s/%v: expected a seed-index hit after the first run stored it", name, strat)
			}
		}
		if cache.Stats().Hits == 0 {
			t.Errorf("%s: no seed-index hits across the strategy battery", name)
		}
	}
}

// TestCacheActivityTotalsAggregateRuns pins the /v1/stats engine-activity
// surface: every run sharing the cache reports into ActivityTotals, and the
// totals mirror the per-run Activity/Stats counters it folded in.
func TestCacheActivityTotalsAggregateRuns(t *testing.T) {
	cache := NewCache()
	if got := cache.ActivityTotals(); got != (ActivityTotals{}) {
		t.Fatalf("fresh cache has activity: %+v", got)
	}
	prog := parser.MustParse(`
		E(X,Y) -> E(Y,Z).
		E(a,b).
	`)
	var wantChecks, wantBirth, wantSeedHits int64
	const runs = 3
	for i := 0; i < runs; i++ {
		run := RunChase(prog.Database, prog.TGDs, Options{
			Variant: Restricted, MaxSteps: 20, Cache: cache,
		})
		wantChecks += int64(run.Stats.ActivityChecks)
		wantBirth += int64(run.Activity.BirthChecks)
		if run.Activity.SeedIndexHit {
			wantSeedHits++
		}
	}
	got := cache.ActivityTotals()
	if got.Runs != runs {
		t.Errorf("runs = %d, want %d", got.Runs, runs)
	}
	if got.ActivityChecks != wantChecks || got.BirthChecks != wantBirth {
		t.Errorf("totals %+v drifted from per-run sums (checks %d, birth %d)", got, wantChecks, wantBirth)
	}
	if got.SeedIndexHits != wantSeedHits || wantSeedHits == 0 {
		t.Errorf("seed-index hits = %d, want %d (>0: repeat runs load the cached root index)", got.SeedIndexHits, wantSeedHits)
	}
}
