// Package chase implements the chase procedure of Section 3: triggers and
// active triggers (Definition 3.1), and three chase variants — oblivious,
// semi-oblivious, and restricted (a.k.a. standard) — with pluggable trigger
// strategies, budgets, and full derivation recording. Engines accept
// multi-head TGDs; the paper's classes are single-head, but the
// Fairness-Theorem counterexample (Example B.1) requires multi-head support.
package chase

import (
	"fmt"
	"sort"
	"strings"

	"airct/internal/instance"
	"airct/internal/logic"
	"airct/internal/tgds"
)

// Trigger is a pair (σ, h): a TGD of the set together with a homomorphism
// from its body into an instance (Definition 3.1). TGDIndex identifies σ
// within its Set; H binds exactly the body variables.
type Trigger struct {
	TGDIndex int
	TGD      tgds.TGD
	H        logic.Substitution
}

// Key returns a canonical identity for the trigger: the TGD index plus the
// body-variable bindings. Two applications of the same TGD with the same
// homomorphism are the same trigger. This is the debug/test rendering of
// trigger identity — the engine dedups triggers by interned (TGD index,
// TermID tuple) keys and never builds these strings.
func (tr Trigger) Key() string {
	return fmt.Sprintf("%d|%s", tr.TGDIndex, tr.H.Restrict(tr.TGD.BodyVars()).Key())
}

// FrontierKey identifies the trigger up to its frontier bindings: the
// semi-oblivious (skolem) chase applies one trigger per frontier class.
// Like Key, a debug/test renderer; the engine interns frontier classes.
func (tr Trigger) FrontierKey() string {
	return fmt.Sprintf("%d|%s", tr.TGDIndex, tr.H.Restrict(tr.TGD.Frontier()).Key())
}

// String renders the trigger as (σ, h).
func (tr Trigger) String() string {
	return fmt.Sprintf("(%s, %s)", tr.TGD.Label, tr.H.Restrict(tr.TGD.BodyVars()))
}

// CompareTriggers orders triggers canonically: by TGD index, then by
// componentwise comparison of the body bindings (Substitution.Compare). It
// is the no-allocation replacement for comparing Key() strings.
func CompareTriggers(a, b Trigger) int {
	if a.TGDIndex != b.TGDIndex {
		if a.TGDIndex < b.TGDIndex {
			return -1
		}
		return 1
	}
	return a.H.Compare(b.H)
}

// TriggerInterner interns symbolic triggers to dense IDs by their
// (TGD index, body binding) identity — the ID plane of Trigger.Key(). One
// interner serves one TGD set (TGD indexes key the sorted-body-variable
// cache) and has a single writer. Dense IDs are minted from 0 in first-seen
// order, so callers index side tables with plain slices.
type TriggerInterner struct {
	tab  *logic.Interner
	tup  *logic.TupleTable
	vars map[int][]logic.Term // sorted body variables per TGD index
	buf  []uint32
}

// NewTriggerInterner returns an empty trigger interner.
func NewTriggerInterner() *TriggerInterner {
	return &TriggerInterner{
		tab:  logic.NewInterner(),
		tup:  logic.NewTupleTable(16),
		vars: make(map[int][]logic.Term),
	}
}

// Intern returns the dense ID of the trigger's identity and whether it was
// new — the "seen before?" answer, with no key string built.
func (ti *TriggerInterner) Intern(tr Trigger) (logic.TupleID, bool) {
	vars, ok := ti.vars[tr.TGDIndex]
	if !ok {
		vars = tr.TGD.BodyVars().Sorted()
		ti.vars[tr.TGDIndex] = vars
	}
	ti.buf = ti.buf[:0]
	ti.buf = append(ti.buf, uint32(tr.TGDIndex))
	for _, v := range vars {
		ti.buf = append(ti.buf, uint32(ti.tab.InternTerm(tr.H.ApplyTerm(v))))
	}
	return ti.tup.Intern(ti.buf)
}

// Len returns how many distinct triggers have been interned.
func (ti *TriggerInterner) Len() int { return ti.tup.Len() }

// NullNaming selects how result(σ,h) names the fresh nulls it invents for
// existentially quantified variables.
type NullNaming uint8

const (
	// StructuralNaming names each null after the trigger and variable that
	// invent it, the paper's c^{σ,h}_x (Definition 3.1): the same trigger
	// always yields the same null, no matter when or in which derivation it
	// is applied. Names are interned to short identifiers.
	StructuralNaming NullNaming = iota
	// CounterNaming hands out nulls from a counter: cheaper, but the null
	// produced by a trigger depends on application order.
	CounterNaming
)

// NullFactory creates the nulls for trigger results under a naming policy.
// It is owned by a single engine run and is not safe for concurrent use.
// StructuralNaming identity is interned — (trigger ID, variable ID) keys via
// a TriggerInterner — so NullFor renders no strings.
type NullFactory struct {
	naming NullNaming
	namer  *logic.FreshNamer
	trigs  *TriggerInterner
	byKey  map[uint64]logic.Term // (trigger TupleID << 32 | var TermID) -> null
}

// NewNullFactory returns a factory with the given policy.
func NewNullFactory(naming NullNaming) *NullFactory {
	return &NullFactory{
		naming: naming,
		namer:  logic.NewFreshNamer("n"),
		trigs:  NewTriggerInterner(),
		byKey:  make(map[uint64]logic.Term),
	}
}

// NullFor returns the null c^{σ,h}_x for the trigger and existential
// variable. Under StructuralNaming repeated calls with the same arguments
// return the same null.
func (f *NullFactory) NullFor(tr Trigger, x logic.Term) logic.Term {
	if f.naming == CounterNaming {
		return f.namer.NextNull()
	}
	tid, _ := f.trigs.Intern(tr)
	xid := f.trigs.tab.InternTerm(x)
	key := uint64(uint32(tid))<<32 | uint64(uint32(xid))
	if n, ok := f.byKey[key]; ok {
		return n
	}
	n := f.namer.NextNull()
	f.byKey[key] = n
	return n
}

// Result computes result(σ,h): the head atoms instantiated with h on the
// frontier and fresh nulls on the existential variables (Definition 3.1,
// extended pointwise to multi-head TGDs — all head atoms share the same
// null assignment).
func Result(tr Trigger, nulls *NullFactory) []logic.Atom {
	v := logic.NewSubstitution()
	frontier := tr.TGD.Frontier()
	// Sorted iteration pins the null-invention order: under CounterNaming
	// the k-th existential variable (in term order) of an application always
	// receives the k-th fresh name, matching the engine's interned path.
	for _, x := range tr.TGD.HeadVars().Sorted() {
		if frontier.Has(x) {
			v.Bind(x, tr.H.ApplyTerm(x))
		} else {
			v.Bind(x, nulls.NullFor(tr, x))
		}
	}
	return v.ApplyAtoms(tr.TGD.Head)
}

// FrontierTerms returns fr(result(σ,h)) for a single-head trigger: the
// terms of the result atom sitting at positions of ⋃_{x∈fr(σ)}
// pos(head(σ), x) — the propagated (not invented) terms.
func FrontierTerms(tr Trigger) logic.TermSet {
	out := make(logic.TermSet)
	if !tr.TGD.IsSingleHead() {
		for x := range tr.TGD.Frontier() {
			out[tr.H.ApplyTerm(x)] = struct{}{}
		}
		return out
	}
	head := tr.TGD.HeadAtom()
	frontier := tr.TGD.Frontier()
	for _, t := range head.Args {
		if t.IsVar() && frontier.Has(t) {
			out[tr.H.ApplyTerm(t)] = struct{}{}
		}
	}
	return out
}

// IsActive reports whether the trigger is active on the source: there is no
// extension h′ of h|fr(σ) with h′(head(σ)) ⊆ I (Definition 3.1).
func IsActive(tr Trigger, src logic.AtomSource) bool {
	base := tr.H.Restrict(tr.TGD.Frontier())
	return logic.FindHomomorphism(tr.TGD.Head, base, src) == nil
}

// Stops reports whether the atom α stops the produced atom β = result(σ,h)
// of the trigger (the ≺s relation of Section 3.1): there is a homomorphism
// h′ with h′(β) = α that fixes every frontier term of β. frontier is
// fr(result(σ,h)) as computed by FrontierTerms.
func Stops(alpha, beta logic.Atom, frontier logic.TermSet) bool {
	if alpha.Pred != beta.Pred {
		return false
	}
	h := make(map[logic.Term]logic.Term, len(beta.Args))
	for i, from := range beta.Args {
		to := alpha.Args[i]
		if from.IsConst() || frontier.Has(from) {
			if from != to {
				return false
			}
			continue
		}
		if prev, ok := h[from]; ok {
			if prev != to {
				return false
			}
			continue
		}
		h[from] = to
	}
	return true
}

// NewTrigger builds a trigger from a TGD (with its index in the set) and a
// body homomorphism. The substitution is restricted to the body variables.
func NewTrigger(idx int, t tgds.TGD, h logic.Substitution) Trigger {
	return Trigger{TGDIndex: idx, TGD: t, H: h.Restrict(t.BodyVars())}
}

// AllTriggers enumerates every trigger for the set on the source, in a
// deterministic order (by TGD index, then by substitution key).
func AllTriggers(set *tgds.Set, src logic.AtomSource) []Trigger {
	var out []Trigger
	for i, t := range set.TGDs {
		homs := logic.AllHomomorphisms(t.Body, nil, src)
		logic.SortSubstitutions(homs)
		for _, h := range homs {
			out = append(out, NewTrigger(i, t, h))
		}
	}
	return out
}

// ActiveTriggers enumerates the active triggers for the set on the source.
func ActiveTriggers(set *tgds.Set, src logic.AtomSource) []Trigger {
	all := AllTriggers(set, src)
	out := all[:0]
	for _, tr := range all {
		if IsActive(tr, src) {
			out = append(out, tr)
		}
	}
	return out
}

// TriggersInvolving enumerates the triggers whose body uses the given atom
// at some body-atom position — the semi-naive delta used by the engines
// when a new atom arrives.
func TriggersInvolving(set *tgds.Set, src logic.AtomSource, atom logic.Atom) []Trigger {
	var out []Trigger
	seen := NewTriggerInterner()
	for i, t := range set.TGDs {
		for j, bodyAtom := range t.Body {
			if bodyAtom.Pred != atom.Pred {
				continue
			}
			base := logic.NewSubstitution()
			okBind := true
			for k, v := range bodyAtom.Args {
				if bound, ok := base.Lookup(v); ok {
					if bound != atom.Args[k] {
						okBind = false
						break
					}
					continue
				}
				base.Bind(v, atom.Args[k])
			}
			if !okBind {
				continue
			}
			rest := make([]logic.Atom, 0, len(t.Body)-1)
			rest = append(rest, t.Body[:j]...)
			rest = append(rest, t.Body[j+1:]...)
			homs := logic.AllHomomorphisms(rest, base, src)
			logic.SortSubstitutions(homs)
			for _, h := range homs {
				tr := NewTrigger(i, t, h)
				if _, isNew := seen.Intern(tr); !isNew {
					continue
				}
				out = append(out, tr)
			}
		}
	}
	return out
}

// Violations returns the active triggers grouped per TGD label; a
// convenience for error messages and fairness reports.
func Violations(set *tgds.Set, inst *instance.Instance) map[string]int {
	out := make(map[string]int)
	for _, tr := range ActiveTriggers(set, inst) {
		out[tr.TGD.Label]++
	}
	return out
}

// FormatTriggers renders triggers one per line, sorted by key; for tests
// and debug output.
func FormatTriggers(trs []Trigger) string {
	lines := make([]string, len(trs))
	for i, tr := range trs {
		lines[i] = tr.String()
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}
