package chase

import (
	"fmt"

	"airct/internal/instance"
	"airct/internal/logic"
	"airct/internal/tgds"
)

// Derivation is a manually driven restricted chase derivation: the caller
// chooses which active trigger to apply at each step. It is the tool behind
// the Fairness-Theorem experiments, where specific (possibly unfair)
// derivations must be constructed, and behind validation of extracted
// derivations in ochase.
type Derivation struct {
	set   *tgds.Set
	db    *instance.Database
	inst  *instance.Instance
	nulls *NullFactory
	steps []Step
}

// NewDerivation starts a derivation at I_0 = D.
func NewDerivation(db *instance.Database, set *tgds.Set) *Derivation {
	return &Derivation{
		set:   set,
		db:    db,
		inst:  db.Instance(),
		nulls: NewNullFactory(StructuralNaming),
	}
}

// Instance returns the current instance I_n (live view; do not mutate).
func (d *Derivation) Instance() *instance.Instance { return d.inst }

// Database returns I_0.
func (d *Derivation) Database() *instance.Database { return d.db }

// Set returns the TGD set being chased.
func (d *Derivation) Set() *tgds.Set { return d.set }

// Steps returns the applied steps so far.
func (d *Derivation) Steps() []Step { return d.steps }

// Len returns the number of steps applied.
func (d *Derivation) Len() int { return len(d.steps) }

// Active returns the active triggers on the current instance, in
// deterministic order.
func (d *Derivation) Active() []Trigger { return ActiveTriggers(d.set, d.inst) }

// IsFixpoint reports whether no active trigger remains: the derivation is a
// finite restricted chase derivation.
func (d *Derivation) IsFixpoint() bool { return len(d.Active()) == 0 }

// Apply performs I⟨σ,h⟩J for the given trigger, which must be active on the
// current instance; applying a non-active trigger is an error (the
// restricted chase only applies active triggers).
func (d *Derivation) Apply(tr Trigger) error {
	if !IsActive(tr, d.inst) {
		return fmt.Errorf("chase: trigger %v is not active", tr)
	}
	if logic.FindHomomorphism(tr.TGD.Body, tr.H, d.inst) == nil {
		return fmt.Errorf("chase: %v is not a trigger on the current instance", tr)
	}
	result := Result(tr, d.nulls)
	added := make([]logic.Atom, 0, len(result))
	for _, a := range result {
		if d.inst.Add(a) {
			added = append(added, a)
		}
	}
	d.steps = append(d.steps, Step{Trigger: tr, Result: result, Added: added})
	return nil
}

// ApplyAtom applies the unique active trigger producing an atom equal to
// want (useful for scripted derivations in tests); it reports an error when
// no active trigger produces it.
func (d *Derivation) ApplyAtom(want logic.Atom) error {
	for _, tr := range d.Active() {
		probe := NewNullFactory(StructuralNaming)
		// Peek at the would-be result without consuming fresh names from
		// the real factory.
		for _, a := range Result(tr, probe) {
			if a.Pred == want.Pred && sameUpToNulls(a, want) {
				return d.Apply(tr)
			}
		}
	}
	return fmt.Errorf("chase: no active trigger produces %v", want)
}

// sameUpToNulls compares atoms treating any two nulls as equal; scripted
// tests cannot predict fresh null names.
func sameUpToNulls(a, b logic.Atom) bool {
	if a.Pred != b.Pred {
		return false
	}
	for i := range a.Args {
		x, y := a.Args[i], b.Args[i]
		if x.IsNull() && y.IsNull() {
			continue
		}
		if x != y {
			return false
		}
	}
	return true
}

// RemainsActive reports whether the trigger is still active on the current
// instance; used by fairness accounting to detect starved triggers.
func (d *Derivation) RemainsActive(tr Trigger) bool { return IsActive(tr, d.inst) }

// IsFairAtHorizon reports a *necessary* condition for fairness observable on
// a finite prefix: no trigger that became active at some step is still
// active at the end while having been active continuously. For genuinely
// infinite derivations this is only evidence, not proof; the fairness
// package provides the constructive transformation.
func (d *Derivation) IsFairAtHorizon() bool {
	// Replay the derivation, collecting every trigger that was ever active,
	// then check each against the final instance.
	inst := d.db.Instance()
	trigs := NewTriggerInterner()
	var everActive []Trigger
	record := func() {
		for _, tr := range ActiveTriggers(d.set, inst) {
			if _, isNew := trigs.Intern(tr); isNew {
				everActive = append(everActive, tr)
			}
		}
	}
	record()
	for _, s := range d.steps {
		for _, a := range s.Added {
			inst.Add(a)
		}
		record()
	}
	for _, tr := range everActive {
		if IsActive(tr, d.inst) {
			return false
		}
	}
	return true
}
