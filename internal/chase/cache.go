package chase

// The cross-run chase-state cache: verdict-bearing chase work memoised on
// (TGD-set fingerprint, instance fingerprint) keys so that re-chasing the
// same seed database under the same rules — which the guarded ∀∀ decision
// does constantly, both inside one Decide call (each seed runs a battery of
// trigger orders; treeification re-derives seeds) and across Decide calls
// (a served workload repeats programs) — costs one map probe instead of a
// chase. Four entry kinds share the store:
//
//   - seed outcomes (guarded.chaseSeed): the per-seed divergence verdict of
//     the bounded chase battery, keyed additionally by the step budget. A
//     hit skips the whole battery; the witness database is the caller's
//     seed, so nothing interner-bound is stored.
//   - seed indexes (engine.RunChase): the root trigger index of a
//     (set, database) pair — every trigger on the database in canonical
//     enqueue order with its birth-activity flag, stored portably as terms
//     by value. A hit re-interns the terms into the new run's private
//     interner and skips both the per-TGD enumeration that seeds the
//     pending queue and the birth activity checks of the delta-maintained
//     activity machinery (engine.go). This is the "reuse the index instead
//     of re-seeding the queue" half of the ROADMAP follow-up.
//   - seed pools (guarded.Decide): the generated candidate databases of a
//     set, keyed by the pool cap. A hit skips seed generation — including
//     the oblivious-chase treeification expansions, the expensive part —
//     and rebuilds fresh Database values from stored atoms.
//
// Key derivation: the set fingerprint is tgds.Set.Fingerprint (order-
// sensitive over rule labels and atoms — the identity under which runs and
// evidence strings are reproducible); the instance fingerprint is the
// order-independent logic.FingerprintAtoms / Instance.Fingerprint of the
// database. The kind and any scalar parameters (budget, pool cap) are
// folded into a salt so the three kinds never collide. Fingerprint equality
// is trusted as content equality, like every other fingerprint consumer.
//
// Concurrency contract (docs/ARCHITECTURE.md): the cache is shared by the
// guarded decision's bounded worker pool and must not serialise it — the
// store is striped by key hash across cacheStripes mutexes, like the
// parallel search's memo shards. Entries are immutable after Store and
// contain no interner-bound identity (terms and atoms by value only), so a
// hit never touches another run's interner and no interner grows a lock.
//
// Eviction is coarse: each stripe owns a 1/cacheStripes share of the byte
// limit, and a store that would overflow its stripe's share drops that
// stripe wholesale BEFORE inserting (segment eviction) — the newest entry
// always survives. One lock round-trip on the hot path, no LRU
// bookkeeping; a dropped segment is 1/64 of the cache.

import (
	"sync"
	"sync/atomic"

	"airct/internal/logic"
)

const (
	cacheStripes = 64

	// DefaultCacheBytes bounds the cache's estimated footprint by default.
	DefaultCacheBytes = 64 << 20
)

// entry-kind salts; ORed with per-kind scalar parameters (budgets, caps)
// so distinct kinds and parameters occupy distinct key space.
const (
	kindSeedOutcome   uint64 = 1 << 56
	kindSeedIndex     uint64 = 2 << 56
	kindSeedPool      uint64 = 3 << 56
	kindStageOutcomes uint64 = 4 << 56
)

// CacheKey identifies one cached chase artefact.
type CacheKey struct {
	// Set is the TGD-set fingerprint (tgds.Set.Fingerprint).
	Set logic.Fingerprint
	// Inst is the instance fingerprint of the database chased.
	Inst logic.Fingerprint
	// Salt folds the entry kind and its scalar parameters.
	Salt uint64
}

// CacheStats is a point-in-time snapshot of the cache's counters.
type CacheStats struct {
	Hits    int64
	Misses  int64
	Entries int64
	// Bytes estimates the retained footprint (keys, strings, slices).
	Bytes int64
}

// SeedOutcome is a cached per-seed decision outcome: what the guarded
// procedure's bounded chase battery concluded about one seed database. The
// witness database is not stored — it is the seed the caller already holds.
type SeedOutcome struct {
	// Diverges is false when every order of the battery saturated quietly.
	Diverges bool
	// Method and Evidence mirror guarded.Verdict on diverging seeds.
	Method   string
	Evidence string
}

// SeedTrigger is one portable trigger of a SeedIndex: the TGD index and the
// body bindings in slot order, as terms by value (interner-free).
type SeedTrigger struct {
	TGD  int32
	Bind []logic.Term
	// Active is the trigger's birth activity on the database (Restricted
	// semantics): false when the head is already satisfied at enqueue time.
	Active bool
}

// SeedIndex is the portable root trigger index of a (set, database) pair:
// every trigger on the database, in the exact canonical order the engine
// enqueues them. Loading it reproduces the engine's initial pending queue
// byte-for-byte without enumerating a single homomorphism.
type SeedIndex struct {
	Triggers []SeedTrigger
}

// SeedPool is a cached candidate-seed pool: each seed database's atoms in
// generation order, by value.
type SeedPool struct {
	Seeds [][]logic.Atom
}

// StageRecord is one stage's outcome inside a cached StageOutcomes entry:
// what a portfolio stage attempted and decided for a set. Verdict strings
// ("terminates"/"diverges"/"unknown") keep the entry free of higher-layer
// types; Steps and DurationNS record the stage's work when it ran live.
type StageRecord struct {
	Stage      string
	Tier       int
	Decided    bool
	Verdict    string
	Detail     string
	Steps      int
	DurationNS int64
}

// StageOutcomes is a cached portfolio run: the per-stage records plus the
// combined verdict and the deciding stage. Entries are keyed by the set
// fingerprint and an options salt (the caller folds its budgets into it),
// never by worker counts — verdicts are worker-invariant by construction.
type StageOutcomes struct {
	Records   []StageRecord
	Verdict   string
	DecidedBy string
}

type cacheStripe struct {
	mu    sync.Mutex
	m     map[CacheKey]any
	bytes int64
}

// Cache is the cross-run chase-state cache. The zero value is not usable;
// call NewCache or NewCacheWithLimit. Safe for concurrent use.
type Cache struct {
	stripes  [cacheStripes]cacheStripe
	maxBytes int64

	hits    atomic.Int64
	misses  atomic.Int64
	entries atomic.Int64
	bytes   atomic.Int64
}

// NewCache returns an empty cache bounded by DefaultCacheBytes.
func NewCache() *Cache { return NewCacheWithLimit(DefaultCacheBytes) }

// NewCacheWithLimit returns an empty cache that segment-evicts once its
// byte estimate passes maxBytes (0 or negative: DefaultCacheBytes).
func NewCacheWithLimit(maxBytes int64) *Cache {
	if maxBytes <= 0 {
		maxBytes = DefaultCacheBytes
	}
	c := &Cache{maxBytes: maxBytes}
	for i := range c.stripes {
		c.stripes[i].m = make(map[CacheKey]any)
	}
	return c
}

// Stats snapshots the counters. Taken without locks; under concurrent use
// the fields are individually (not mutually) consistent.
func (c *Cache) Stats() CacheStats {
	return CacheStats{
		Hits:    c.hits.Load(),
		Misses:  c.misses.Load(),
		Entries: c.entries.Load(),
		Bytes:   c.bytes.Load(),
	}
}

func (c *Cache) stripe(k CacheKey) *cacheStripe {
	// The fingerprint halves are already full-avalanche mixes; their low
	// bits stripe uniformly.
	return &c.stripes[(k.Set.Lo^k.Inst.Lo^k.Salt)%cacheStripes]
}

// lookup returns the immutable entry for the key, counting the hit or miss.
func (c *Cache) lookup(k CacheKey) (any, bool) {
	s := c.stripe(k)
	s.mu.Lock()
	v, ok := s.m[k]
	s.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return v, ok
}

// store inserts the entry (first writer wins; entries are deterministic, so
// racing writers store equal values), segment-evicting the stripe BEFORE
// the insert when it would overflow its 1/cacheStripes share of the byte
// limit — so the newest (hottest) entry always survives its own eviction
// and a saturated cache sheds old segments, never fresh work. An entry
// larger than a whole share still gets stored (alone in its stripe).
func (c *Cache) store(k CacheKey, v any, size int64) {
	size += 48 // key + map overhead, roughly
	s := c.stripe(k)
	s.mu.Lock()
	if _, dup := s.m[k]; !dup {
		if s.bytes+size > c.maxBytes/cacheStripes && len(s.m) > 0 {
			c.entries.Add(-int64(len(s.m)))
			c.bytes.Add(-s.bytes)
			s.m = make(map[CacheKey]any)
			s.bytes = 0
		}
		s.m[k] = v
		s.bytes += size
		c.entries.Add(1)
		c.bytes.Add(size)
	}
	s.mu.Unlock()
}

func outcomeKey(set, inst logic.Fingerprint, budget int) CacheKey {
	return CacheKey{Set: set, Inst: inst, Salt: kindSeedOutcome | uint64(uint32(budget))}
}

// LookupSeedOutcome returns the cached battery outcome of the seed under
// the step budget.
func (c *Cache) LookupSeedOutcome(set, inst logic.Fingerprint, budget int) (SeedOutcome, bool) {
	v, ok := c.lookup(outcomeKey(set, inst, budget))
	if !ok {
		return SeedOutcome{}, false
	}
	return v.(SeedOutcome), true
}

// StoreSeedOutcome records the battery outcome of the seed.
func (c *Cache) StoreSeedOutcome(set, inst logic.Fingerprint, budget int, o SeedOutcome) {
	c.store(outcomeKey(set, inst, budget), o, int64(len(o.Method)+len(o.Evidence))+8)
}

func seedIndexKey(set, inst logic.Fingerprint) CacheKey {
	return CacheKey{Set: set, Inst: inst, Salt: kindSeedIndex}
}

// LookupSeedIndex returns the cached root trigger index of the
// (set, database) pair. The caller must not mutate the result.
func (c *Cache) LookupSeedIndex(set, inst logic.Fingerprint) (*SeedIndex, bool) {
	v, ok := c.lookup(seedIndexKey(set, inst))
	if !ok {
		return nil, false
	}
	return v.(*SeedIndex), true
}

// StoreSeedIndex records the root trigger index. The index must not be
// mutated afterwards.
func (c *Cache) StoreSeedIndex(set, inst logic.Fingerprint, si *SeedIndex) {
	size := int64(24)
	for _, tr := range si.Triggers {
		size += 32
		for _, t := range tr.Bind {
			size += int64(len(t.Name)) + 24
		}
	}
	c.store(seedIndexKey(set, inst), si, size)
}

func seedPoolKey(set logic.Fingerprint, maxSeeds int) CacheKey {
	return CacheKey{Set: set, Salt: kindSeedPool | uint64(uint32(maxSeeds))}
}

// LookupSeedPool returns the cached candidate-seed pool of the set under
// the pool cap. The caller must not mutate the result.
func (c *Cache) LookupSeedPool(set logic.Fingerprint, maxSeeds int) (*SeedPool, bool) {
	v, ok := c.lookup(seedPoolKey(set, maxSeeds))
	if !ok {
		return nil, false
	}
	return v.(*SeedPool), true
}

func stageOutcomesKey(set logic.Fingerprint, salt uint64) CacheKey {
	// Mask the caller's salt into the low 56 bits so the kind tag stays
	// collision-free against the other entry kinds.
	return CacheKey{Set: set, Salt: kindStageOutcomes | (salt &^ (uint64(0xFF) << 56))}
}

// LookupStageOutcomes returns the cached portfolio stage outcomes of the
// set under the options salt. The caller must not mutate the result.
func (c *Cache) LookupStageOutcomes(set logic.Fingerprint, salt uint64) (*StageOutcomes, bool) {
	v, ok := c.lookup(stageOutcomesKey(set, salt))
	if !ok {
		return nil, false
	}
	return v.(*StageOutcomes), true
}

// StoreStageOutcomes records a portfolio run's stage outcomes. The entry
// must not be mutated afterwards.
func (c *Cache) StoreStageOutcomes(set logic.Fingerprint, salt uint64, o *StageOutcomes) {
	size := int64(48 + len(o.Verdict) + len(o.DecidedBy))
	for _, r := range o.Records {
		size += int64(len(r.Stage)+len(r.Verdict)+len(r.Detail)) + 48
	}
	c.store(stageOutcomesKey(set, salt), o, size)
}

// StoreSeedPool records the candidate-seed pool. The pool must not be
// mutated afterwards.
func (c *Cache) StoreSeedPool(set logic.Fingerprint, maxSeeds int, p *SeedPool) {
	size := int64(24)
	for _, atoms := range p.Seeds {
		size += 24
		for _, a := range atoms {
			size += int64(len(a.Pred.Name)) + 32
			for _, t := range a.Args {
				size += int64(len(t.Name)) + 24
			}
		}
	}
	c.store(seedPoolKey(set, maxSeeds), p, size)
}
