package chase

// The cross-run chase-state cache: verdict-bearing chase work memoised on
// (TGD-set fingerprint, instance fingerprint) keys so that re-chasing the
// same seed database under the same rules — which the guarded ∀∀ decision
// does constantly, both inside one Decide call (each seed runs a battery of
// trigger orders; treeification re-derives seeds) and across Decide calls
// (a served workload repeats programs) — costs one map probe instead of a
// chase. Seven entry kinds share the store:
//
//   - seed outcomes (guarded.chaseSeed): the per-seed divergence verdict of
//     the bounded chase battery, keyed additionally by the step budget. A
//     hit skips the whole battery; the witness database is the caller's
//     seed, so nothing interner-bound is stored.
//   - seed indexes (engine.RunChase): the root trigger index of a
//     (set, database) pair — every trigger on the database in canonical
//     enqueue order with its birth-activity flag, stored portably as terms
//     by value. A hit re-interns the terms into the new run's private
//     interner and skips both the per-TGD enumeration that seeds the
//     pending queue and the birth activity checks of the delta-maintained
//     activity machinery (engine.go). This is the "reuse the index instead
//     of re-seeding the queue" half of the ROADMAP follow-up.
//   - seed pools (guarded.Decide): the generated candidate databases of a
//     set, keyed by the pool cap. A hit skips seed generation — including
//     the oblivious-chase treeification expansions, the expensive part —
//     and rebuilds fresh Database values from stored atoms.
//
// Key derivation: the set fingerprint is tgds.Set.Fingerprint (order-
// sensitive over rule labels and atoms — the identity under which runs and
// evidence strings are reproducible); the instance fingerprint is the
// order-independent logic.FingerprintAtoms / Instance.Fingerprint of the
// database. The kind and any scalar parameters (budget, pool cap) are
// folded into a salt so the three kinds never collide. Fingerprint equality
// is trusted as content equality, like every other fingerprint consumer.
//
// Concurrency contract (docs/ARCHITECTURE.md): the cache is shared by the
// guarded decision's bounded worker pool and must not serialise it — the
// store is striped by key hash across cacheStripes mutexes, like the
// parallel search's memo shards. Entries are immutable after Store and
// contain no interner-bound identity (terms and atoms by value only), so a
// hit never touches another run's interner and no interner grows a lock.
//
// Eviction is age-aware: each stripe owns a 1/cacheStripes share of the
// byte limit, every entry carries the stripe's insertion sequence number,
// and a store that would overflow its stripe's share evicts the stripe's
// OLDEST HALF by insertion order BEFORE inserting — so the newest entry
// always survives its own eviction and recent work outlives the cold
// long tail. One lock round-trip on the hot path, no access-time
// bookkeeping (insertion order, not LRU — a deliberate trade: tracking
// reads would put a write on every lookup).

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"airct/internal/logic"
)

const (
	cacheStripes = 64

	// DefaultCacheBytes bounds the cache's estimated footprint by default.
	DefaultCacheBytes = 64 << 20
)

// entry-kind salts; ORed with per-kind scalar parameters (budgets, caps)
// so distinct kinds and parameters occupy distinct key space.
const (
	kindSeedOutcome   uint64 = 1 << 56
	kindSeedIndex     uint64 = 2 << 56
	kindSeedPool      uint64 = 3 << 56
	kindStageOutcomes uint64 = 4 << 56
	kindStickyOutcome uint64 = 5 << 56
	kindExistsOutcome uint64 = 6 << 56
	kindCostModel     uint64 = 7 << 56
)

// CacheKey identifies one cached chase artefact.
type CacheKey struct {
	// Set is the TGD-set fingerprint (tgds.Set.Fingerprint).
	Set logic.Fingerprint
	// Inst is the instance fingerprint of the database chased.
	Inst logic.Fingerprint
	// Salt folds the entry kind and its scalar parameters.
	Salt uint64
}

// CacheStats is a point-in-time snapshot of the cache's counters. It is
// the one stats shape shared by every surface that reports cache work —
// the CLI's `cache:` line (String) and the daemon's /v1/stats JSON (the
// field tags) render the same struct, and TestCacheStatsRoundTrip pins the
// two renderings key-for-key so they can never drift.
type CacheStats struct {
	Hits    int64 `json:"hits"`
	Misses  int64 `json:"misses"`
	Entries int64 `json:"entries"`
	// Bytes estimates the retained footprint (keys, strings, slices).
	Bytes int64 `json:"bytes"`
	// Evictions counts stripe segment evictions (a store that would
	// overflow its stripe's byte share drops the whole stripe first);
	// EvictedEntries totals the entries those evictions discarded. A warm
	// entry silently lost to eviction is otherwise unobservable, and the
	// planned age/size-aware policy needs this signal.
	Evictions      int64 `json:"evictions"`
	EvictedEntries int64 `json:"evicted-entries"`
}

// String renders the canonical `cache:` stats line (without a trailing
// newline), exactly as termcheck prints it. The key names are the JSON
// field tags, in struct order.
func (s CacheStats) String() string {
	return fmt.Sprintf("cache: hits=%d misses=%d entries=%d bytes=%d evictions=%d evicted-entries=%d",
		s.Hits, s.Misses, s.Entries, s.Bytes, s.Evictions, s.EvictedEntries)
}

// ParseCacheStatsLine parses a String-rendered `cache:` line back into the
// struct — the round-trip direction that keeps the text rendering honest
// against the JSON shape.
func ParseCacheStatsLine(line string) (CacheStats, error) {
	var s CacheStats
	_, err := fmt.Sscanf(strings.TrimSpace(line),
		"cache: hits=%d misses=%d entries=%d bytes=%d evictions=%d evicted-entries=%d",
		&s.Hits, &s.Misses, &s.Entries, &s.Bytes, &s.Evictions, &s.EvictedEntries)
	if err != nil {
		return CacheStats{}, fmt.Errorf("chase: malformed cache stats line %q: %w", line, err)
	}
	return s, nil
}

// SeedOutcome is a cached per-seed decision outcome: what the guarded
// procedure's bounded chase battery concluded about one seed database. The
// witness database is not stored — it is the seed the caller already holds.
type SeedOutcome struct {
	// Diverges is false when every order of the battery saturated quietly.
	Diverges bool
	// Method and Evidence mirror guarded.Verdict on diverging seeds.
	Method   string
	Evidence string
	// Steps is the battery's saturation depth: the deepest chase among the
	// trigger orders on a saturating seed, or the diverging run's step
	// count — so a warm hit can still serve probe diagnostics.
	Steps int
	// PumpDepth is, on a diverging outcome with a guard-chain pump, the
	// length of the shortest run prefix that already carries the
	// certificate (guarded.Verdict.PumpDepth). Persisting it keeps a warm
	// replay's `depth=` diagnostics identical to the cold run's — without
	// it a warm Tier 1 reject could only report the truncated run length.
	PumpDepth int
}

// SeedTrigger is one portable trigger of a SeedIndex: the TGD index and the
// body bindings in slot order, as terms by value (interner-free).
type SeedTrigger struct {
	TGD  int32
	Bind []logic.Term
	// Active is the trigger's birth activity on the database (Restricted
	// semantics): false when the head is already satisfied at enqueue time.
	Active bool
}

// SeedIndex is the portable root trigger index of a (set, database) pair:
// every trigger on the database, in the exact canonical order the engine
// enqueues them. Loading it reproduces the engine's initial pending queue
// byte-for-byte without enumerating a single homomorphism.
type SeedIndex struct {
	Triggers []SeedTrigger
}

// SeedPool is a cached candidate-seed pool: each seed database's atoms in
// generation order, by value.
type SeedPool struct {
	Seeds [][]logic.Atom
}

// StageRecord is one stage's outcome inside a cached StageOutcomes entry:
// what a portfolio stage attempted and decided for a set. Verdict strings
// ("terminates"/"diverges"/"unknown") keep the entry free of higher-layer
// types; Steps and DurationNS record the stage's work when it ran live.
type StageRecord struct {
	Stage   string
	Tier    int
	Decided bool
	Verdict string
	Detail  string
	// Evidence carries a stage's divergence certificate (the Tier 1
	// probe's confirmed guard-chain pump) so warm replays serve the
	// certificate string, not just the verdict.
	Evidence   string
	Steps      int
	DurationNS int64
	// Seeds, Saturated and Depth carry the Tier 1 probe's diagnostics
	// (pool size, seeds whose whole battery saturated within k, and the
	// deepest saturating chase) so a warm StageOutcomes hit serves them
	// without re-probing; zero for non-probe stages.
	Seeds     int
	Saturated int
	Depth     int
}

// StageOutcomes is a cached portfolio run: the per-stage records plus the
// combined verdict and the deciding stage. Entries are keyed by the set
// fingerprint, the instance fingerprint of the request's database (zero
// for pure rule sets — keeping the ledger's diagnostics honest about which
// database they describe) and an options salt (the caller folds its
// budgets into it), never by worker counts — verdicts are worker-invariant
// by construction.
type StageOutcomes struct {
	Records   []StageRecord
	Verdict   string
	DecidedBy string
}

// StageCostRecord is one stage's learned cost statistics inside a cached
// CostModelEntry: EWMA run cost in nanoseconds (integer — the codec stores
// no floats), attempt and decision counts, and for the probe stage the
// EWMA saturation depth of its decisive runs.
type StageCostRecord struct {
	Stage     string
	EwmaNS    int64
	Attempts  int64
	Decided   int64
	EwmaDepth int64
}

// CostModelEntry is a cached per-workload-class stage cost model: the
// portfolio's online EWMA cost/decisiveness statistics for one class of
// TGD sets (internal/portfolio.CostModel), persisted so the learned
// ordering survives restarts and is shared fleet-wide through the daemon's
// cache. Keyed by a fingerprint of the class string; richer-observation
// entries replace poorer ones (attempts are monotone across a model's
// pushes).
type CostModelEntry struct {
	Class  string
	Stages []StageCostRecord
}

// StickyOutcome is a cached sticky Büchi decision, keyed by (set
// fingerprint, per-component state bound): the whole Verdict of
// sticky.DecideContext in portable form. The witness component is stored as
// an index into the deterministic sticky.Seeds enumeration and the lasso as
// its symbol keys by value, so the entry is interner-free and a warm hit
// replays the identical Verdict — including witness material — without
// building or exploring a single automaton.
type StickyOutcome struct {
	Terminates bool
	Method     string
	Complete   bool
	// StatesExplored totals explored product states across components when
	// the decision ran live; replays report the recorded number.
	StatesExplored int
	// SeedIndex is the witnessing component's index into sticky.Seeds(set)
	// (a deterministic enumeration); -1 when there is no witness.
	SeedIndex int32
	// LassoPrefix/LassoCycle/LassoGap mirror buchi.Lasso by value.
	LassoPrefix []string
	LassoCycle  []string
	LassoGap    int
}

// ExistsStep is one trigger of a cached ∀∃ derivation in portable form: the
// TGD index plus the body substitution as parallel (variable, value) slices
// in sorted variable order, terms by value.
type ExistsStep struct {
	TGD  int32
	Vars []logic.Term
	Vals []logic.Term
}

// ExistsOutcome is a cached ∀∃ search outcome, keyed by (set fingerprint,
// instance fingerprint, strategy, atom bound) with the state budget stored
// IN the entry, not the key — lookups apply the budget-monotonicity rule:
//
//   - a decisive outcome (Found or Exhausted) at budget B serves any query
//     with budget ≥ B: the bigger-budget run explores the same space and
//     decides identically (the budget cut only ever truncates);
//   - an inconclusive outcome at budget B serves only queries with budget
//     ≤ B: the smaller-budget run is a prefix of the recorded one and can
//     find nothing the recorded run did not.
//
// A replayed hit reports the recorded run's statistics and witness.
type ExistsOutcome struct {
	Found     bool
	Exhausted bool
	// Budget is the MaxStates bound the recorded run used.
	Budget        int
	StatesVisited int
	Derivation    []ExistsStep
	Stats         SearchStats
}

func (o *ExistsOutcome) decisive() bool { return o.Found || o.Exhausted }

// serves applies the budget-monotonicity rule for a query at maxStates.
func (o *ExistsOutcome) serves(maxStates int) bool {
	if o.decisive() {
		return o.Budget <= maxStates
	}
	return o.Budget >= maxStates
}

// existsLadder is the per-key ∀∃ entry: a two-rung ladder instead of a
// single slot. The decisive rung keeps the lowest-budget decisive outcome
// (it serves every query at or above its budget); the inconclusive rung
// keeps the deepest inconclusive one (it serves every query at or below
// its budget). Both are kept because neither subsumes the other: a
// decisive outcome recorded at budget B says nothing to a query below B,
// where the deep inconclusive rung still replays — a single "prefer
// decisive" slot would discard it and force those queries to re-search.
// Ladders are immutable; a rung update swaps in a fresh ladder value.
type existsLadder struct {
	decisive     *ExistsOutcome
	inconclusive *ExistsOutcome
}

// serve picks the rung for a query at maxStates: the decisive rung when it
// applies (it is an answer, not a shrug), else the inconclusive one.
func (l *existsLadder) serve(maxStates int) (*ExistsOutcome, bool) {
	if l.decisive != nil && l.decisive.serves(maxStates) {
		return l.decisive, true
	}
	if l.inconclusive != nil && l.inconclusive.serves(maxStates) {
		return l.inconclusive, true
	}
	return nil, false
}

// merged returns the ladder with o folded into its rung, or nil when o is
// no improvement (rung already present at a better budget).
func (l *existsLadder) merged(o *ExistsOutcome) *existsLadder {
	if o.decisive() {
		if l.decisive != nil && l.decisive.Budget <= o.Budget {
			return nil
		}
		return &existsLadder{decisive: o, inconclusive: l.inconclusive}
	}
	if l.inconclusive != nil && l.inconclusive.Budget >= o.Budget {
		return nil
	}
	return &existsLadder{decisive: l.decisive, inconclusive: o}
}

// rungs lists the ladder's outcomes, decisive first — the snapshot codec's
// canonical order.
func (l *existsLadder) rungs() []*ExistsOutcome {
	var out []*ExistsOutcome
	if l.decisive != nil {
		out = append(out, l.decisive)
	}
	if l.inconclusive != nil {
		out = append(out, l.inconclusive)
	}
	return out
}

func existsLadderSize(l *existsLadder) int64 {
	size := int64(16)
	for _, o := range l.rungs() {
		size += existsOutcomeSize(o)
	}
	return size
}

// cacheEntry wraps a stored value with its byte estimate and the stripe's
// insertion sequence number — the age signal the evictor sorts by. The
// wrapped value stays immutable; replacement swaps the whole entry.
type cacheEntry struct {
	v    any
	size int64
	seq  uint64
}

type cacheStripe struct {
	mu    sync.Mutex
	m     map[CacheKey]*cacheEntry
	bytes int64
	// seq counts insertions into this stripe; each entry records the value
	// at its insert (or replace), making "oldest half" well defined.
	seq uint64
}

// Cache is the cross-run chase-state cache. The zero value is not usable;
// call NewCache or NewCacheWithLimit. Safe for concurrent use.
type Cache struct {
	stripes  [cacheStripes]cacheStripe
	maxBytes int64

	hits           atomic.Int64
	misses         atomic.Int64
	entries        atomic.Int64
	bytes          atomic.Int64
	evictions      atomic.Int64
	evictedEntries atomic.Int64

	// Aggregated engine activity across cache-sharing runs (NoteRunActivity).
	actRuns      atomic.Int64
	actChecks    atomic.Int64
	actBirth     atomic.Int64
	actWatermark atomic.Int64
	actDelta     atomic.Int64
	actSeedHits  atomic.Int64
}

// NewCache returns an empty cache bounded by DefaultCacheBytes.
func NewCache() *Cache { return NewCacheWithLimit(DefaultCacheBytes) }

// NewCacheWithLimit returns an empty cache that segment-evicts once its
// byte estimate passes maxBytes (0 or negative: DefaultCacheBytes).
func NewCacheWithLimit(maxBytes int64) *Cache {
	if maxBytes <= 0 {
		maxBytes = DefaultCacheBytes
	}
	c := &Cache{maxBytes: maxBytes}
	for i := range c.stripes {
		c.stripes[i].m = make(map[CacheKey]*cacheEntry)
	}
	return c
}

// Stats snapshots the counters. Taken without locks; under concurrent use
// the fields are individually (not mutually) consistent.
func (c *Cache) Stats() CacheStats {
	return CacheStats{
		Hits:           c.hits.Load(),
		Misses:         c.misses.Load(),
		Entries:        c.entries.Load(),
		Bytes:          c.bytes.Load(),
		Evictions:      c.evictions.Load(),
		EvictedEntries: c.evictedEntries.Load(),
	}
}

func (c *Cache) stripe(k CacheKey) *cacheStripe {
	// The fingerprint halves are already full-avalanche mixes; their low
	// bits stripe uniformly.
	return &c.stripes[(k.Set.Lo^k.Inst.Lo^k.Salt)%cacheStripes]
}

// lookup returns the immutable entry for the key, counting the hit or miss.
func (c *Cache) lookup(k CacheKey) (any, bool) {
	s := c.stripe(k)
	s.mu.Lock()
	e, ok := s.m[k]
	s.mu.Unlock()
	if ok {
		c.hits.Add(1)
		return e.v, true
	}
	c.misses.Add(1)
	return nil, false
}

// store inserts the entry (first writer wins; entries are deterministic, so
// racing writers store equal values), evicting the stripe's oldest half
// BEFORE the insert when it would overflow its 1/cacheStripes share of the
// byte limit — so the newest (hottest) entry always survives its own
// eviction and a saturated cache sheds its cold tail, never fresh work. An
// entry larger than a whole share still gets stored (alone in its stripe).
func (c *Cache) store(k CacheKey, v any, size int64) {
	size += entryOverhead
	s := c.stripe(k)
	s.mu.Lock()
	if _, dup := s.m[k]; !dup {
		c.insertLocked(s, k, v, size)
	}
	s.mu.Unlock()
}

// entryOverhead approximates the key + map bookkeeping cost per entry.
const entryOverhead = 48

// insertLocked performs the evict-then-insert step of store under the
// stripe's lock.
func (c *Cache) insertLocked(s *cacheStripe, k CacheKey, v any, size int64) {
	for s.bytes+size > c.maxBytes/cacheStripes && len(s.m) > 0 {
		c.evictOldestHalfLocked(s)
	}
	s.seq++
	s.m[k] = &cacheEntry{v: v, size: size, seq: s.seq}
	s.bytes += size
	c.entries.Add(1)
	c.bytes.Add(size)
}

// evictOldestHalfLocked drops the stripe's oldest ⌈n/2⌉ entries by
// insertion sequence — one eviction event. insertLocked loops it for the
// rare store that still overflows after one round (a near-share-sized
// entry), which converges because every round halves the entry count.
func (c *Cache) evictOldestHalfLocked(s *cacheStripe) {
	type aged struct {
		k   CacheKey
		seq uint64
	}
	order := make([]aged, 0, len(s.m))
	for k, e := range s.m {
		order = append(order, aged{k, e.seq})
	}
	sort.Slice(order, func(i, j int) bool { return order[i].seq < order[j].seq })
	drop := (len(order) + 1) / 2
	var freed int64
	for _, a := range order[:drop] {
		freed += s.m[a.k].size
		delete(s.m, a.k)
	}
	s.bytes -= freed
	c.entries.Add(-int64(drop))
	c.bytes.Add(-freed)
	c.evictions.Add(1)
	c.evictedEntries.Add(int64(drop))
}

// storeReplace inserts like store, but when the key already holds an entry
// it asks better(old) whether the new value is more useful and replaces the
// old one if so (the replacement takes a fresh sequence number — it is the
// stripe's newest knowledge). Entry kinds with a single slot per key and a
// usefulness order (CostModelEntry's observation count) store through this;
// everything else keeps the cheaper first-writer-wins store.
func (c *Cache) storeReplace(k CacheKey, v any, size int64, better func(old any) bool) {
	size += entryOverhead
	s := c.stripe(k)
	s.mu.Lock()
	old, dup := s.m[k]
	switch {
	case !dup:
		c.insertLocked(s, k, v, size)
	case better(old.v):
		c.replaceLocked(s, k, old, v, size)
	}
	s.mu.Unlock()
}

// replaceLocked swaps the value under an existing key, re-stamping its age
// and adjusting the byte accounting by the size delta.
func (c *Cache) replaceLocked(s *cacheStripe, k CacheKey, old *cacheEntry, v any, size int64) {
	s.seq++
	s.m[k] = &cacheEntry{v: v, size: size, seq: s.seq}
	s.bytes += size - old.size
	c.bytes.Add(size - old.size)
}

func outcomeKey(set, inst logic.Fingerprint, budget int) CacheKey {
	return CacheKey{Set: set, Inst: inst, Salt: kindSeedOutcome | uint64(uint32(budget))}
}

// LookupSeedOutcome returns the cached battery outcome of the seed under
// the step budget.
func (c *Cache) LookupSeedOutcome(set, inst logic.Fingerprint, budget int) (SeedOutcome, bool) {
	v, ok := c.lookup(outcomeKey(set, inst, budget))
	if !ok {
		return SeedOutcome{}, false
	}
	return v.(SeedOutcome), true
}

// StoreSeedOutcome records the battery outcome of the seed.
func (c *Cache) StoreSeedOutcome(set, inst logic.Fingerprint, budget int, o SeedOutcome) {
	c.store(outcomeKey(set, inst, budget), o, seedOutcomeSize(o))
}

func seedIndexKey(set, inst logic.Fingerprint) CacheKey {
	return CacheKey{Set: set, Inst: inst, Salt: kindSeedIndex}
}

// LookupSeedIndex returns the cached root trigger index of the
// (set, database) pair. The caller must not mutate the result.
func (c *Cache) LookupSeedIndex(set, inst logic.Fingerprint) (*SeedIndex, bool) {
	v, ok := c.lookup(seedIndexKey(set, inst))
	if !ok {
		return nil, false
	}
	return v.(*SeedIndex), true
}

// StoreSeedIndex records the root trigger index. The index must not be
// mutated afterwards.
func (c *Cache) StoreSeedIndex(set, inst logic.Fingerprint, si *SeedIndex) {
	c.store(seedIndexKey(set, inst), si, seedIndexSize(si))
}

func seedPoolKey(set logic.Fingerprint, maxSeeds int) CacheKey {
	return CacheKey{Set: set, Salt: kindSeedPool | uint64(uint32(maxSeeds))}
}

// LookupSeedPool returns the cached candidate-seed pool of the set under
// the pool cap. The caller must not mutate the result.
func (c *Cache) LookupSeedPool(set logic.Fingerprint, maxSeeds int) (*SeedPool, bool) {
	v, ok := c.lookup(seedPoolKey(set, maxSeeds))
	if !ok {
		return nil, false
	}
	return v.(*SeedPool), true
}

func stageOutcomesKey(set, inst logic.Fingerprint, salt uint64) CacheKey {
	// Mask the caller's salt into the low 56 bits so the kind tag stays
	// collision-free against the other entry kinds.
	return CacheKey{Set: set, Inst: inst, Salt: kindStageOutcomes | (salt &^ (uint64(0xFF) << 56))}
}

// LookupStageOutcomes returns the cached portfolio stage outcomes of the
// (set, database) pair under the options salt (inst is the zero
// fingerprint for pure rule sets). The caller must not mutate the result.
func (c *Cache) LookupStageOutcomes(set, inst logic.Fingerprint, salt uint64) (*StageOutcomes, bool) {
	v, ok := c.lookup(stageOutcomesKey(set, inst, salt))
	if !ok {
		return nil, false
	}
	return v.(*StageOutcomes), true
}

// StoreStageOutcomes records a portfolio run's stage outcomes. The entry
// must not be mutated afterwards.
func (c *Cache) StoreStageOutcomes(set, inst logic.Fingerprint, salt uint64, o *StageOutcomes) {
	c.store(stageOutcomesKey(set, inst, salt), o, stageOutcomesSize(o))
}

func costModelKey(class string) CacheKey {
	// The class string is the identity: fingerprint it into the key's Set
	// half (the Inst half stays zero — a class spans databases).
	return CacheKey{Set: logic.FingerprintString(class), Salt: kindCostModel}
}

// LookupCostModel returns the cached stage cost model of the workload
// class. The caller must not mutate the result.
func (c *Cache) LookupCostModel(class string) (*CostModelEntry, bool) {
	v, ok := c.lookup(costModelKey(class))
	if !ok {
		return nil, false
	}
	return v.(*CostModelEntry), true
}

// StoreCostModel records a stage cost model for the class, keeping the
// entry with more total observations (a model's attempt counts only grow,
// so the richer entry subsumes the poorer one). The entry must not be
// mutated afterwards.
func (c *Cache) StoreCostModel(e *CostModelEntry) {
	attempts := func(e *CostModelEntry) int64 {
		var n int64
		for _, s := range e.Stages {
			n += s.Attempts
		}
		return n
	}
	c.storeReplace(costModelKey(e.Class), e, costModelSize(e),
		func(old any) bool { return attempts(e) > attempts(old.(*CostModelEntry)) })
}

// StoreSeedPool records the candidate-seed pool. The pool must not be
// mutated afterwards.
func (c *Cache) StoreSeedPool(set logic.Fingerprint, maxSeeds int, p *SeedPool) {
	c.store(seedPoolKey(set, maxSeeds), p, seedPoolSize(p))
}

func stickyOutcomeKey(set logic.Fingerprint, maxStates int) CacheKey {
	return CacheKey{Set: set, Salt: kindStickyOutcome | uint64(uint32(maxStates))}
}

// LookupStickyOutcome returns the cached sticky Büchi decision of the set
// under the per-component state bound. The caller must not mutate the
// result.
func (c *Cache) LookupStickyOutcome(set logic.Fingerprint, maxStates int) (*StickyOutcome, bool) {
	v, ok := c.lookup(stickyOutcomeKey(set, maxStates))
	if !ok {
		return nil, false
	}
	return v.(*StickyOutcome), true
}

// StoreStickyOutcome records a sticky Büchi decision. The entry must not be
// mutated afterwards.
func (c *Cache) StoreStickyOutcome(set logic.Fingerprint, maxStates int, o *StickyOutcome) {
	c.store(stickyOutcomeKey(set, maxStates), o, stickyOutcomeSize(o))
}

func existsOutcomeKey(set, inst logic.Fingerprint, strat SearchStrategy, maxAtoms int) CacheKey {
	return CacheKey{
		Set:  set,
		Inst: inst,
		Salt: kindExistsOutcome | uint64(strat)<<48 | uint64(uint32(maxAtoms)),
	}
}

// LookupExistsOutcome returns a cached ∀∃ search outcome able to serve a
// query at the given state budget under the budget-monotonicity rule (see
// ExistsOutcome and existsLadder). A ladder present but with no serving
// rung counts as a miss. The caller must not mutate the result.
func (c *Cache) LookupExistsOutcome(set, inst logic.Fingerprint, strat SearchStrategy, maxAtoms, maxStates int) (*ExistsOutcome, bool) {
	k := existsOutcomeKey(set, inst, strat, maxAtoms)
	s := c.stripe(k)
	s.mu.Lock()
	e, ok := s.m[k]
	s.mu.Unlock()
	if ok {
		if o, served := e.v.(*existsLadder).serve(maxStates); served {
			c.hits.Add(1)
			return o, true
		}
	}
	c.misses.Add(1)
	return nil, false
}

// StoreExistsOutcome records a search outcome on the key's two-rung ladder:
// among decisive outcomes the lowest budget wins, among inconclusive ones
// the deepest budget wins, and both rungs persist — a decisive outcome no
// longer discards a deeper inconclusive one, so queries below the decisive
// budget keep replaying instead of re-searching. The entry must not be
// mutated afterwards.
func (c *Cache) StoreExistsOutcome(set, inst logic.Fingerprint, strat SearchStrategy, maxAtoms int, o *ExistsOutcome) {
	c.mergeExistsOutcome(existsOutcomeKey(set, inst, strat, maxAtoms), o)
}

// mergeExistsOutcome folds one outcome into the key's ladder under the
// stripe lock — shared by StoreExistsOutcome and the snapshot loader.
func (c *Cache) mergeExistsOutcome(k CacheKey, o *ExistsOutcome) {
	s := c.stripe(k)
	s.mu.Lock()
	old, dup := s.m[k]
	if !dup {
		l := (&existsLadder{}).merged(o)
		c.insertLocked(s, k, l, existsLadderSize(l)+entryOverhead)
	} else if l := old.v.(*existsLadder).merged(o); l != nil {
		c.replaceLocked(s, k, old, l, existsLadderSize(l)+entryOverhead)
	}
	s.mu.Unlock()
}

// ActivityTotals aggregates the engine's delta-activity diagnostics across
// every cache-sharing chase run — the process-wide view of the per-run
// `trigger-index:`/Activity numbers, exported by the daemon's /v1/stats.
type ActivityTotals struct {
	// Runs counts the chase runs that reported into the totals.
	Runs int64 `json:"runs"`
	// ActivityChecks totals Stats.ActivityChecks (IsActive evaluations).
	ActivityChecks int64 `json:"activity-checks"`
	// BirthChecks/WatermarkSkips/DeltaRechecks total the delta-maintained
	// activity machinery's work (DeltaActivityStats).
	BirthChecks    int64 `json:"birth-checks"`
	WatermarkSkips int64 `json:"watermark-skips"`
	DeltaRechecks  int64 `json:"delta-rechecks"`
	// SeedIndexHits counts runs whose initial pending queue loaded from
	// the cached root trigger index instead of being enumerated.
	SeedIndexHits int64 `json:"seed-index-hits"`
}

// NoteRunActivity folds one finished chase run's bookkeeping counters into
// the cache's activity totals. The engine calls it for every run that
// shares this cache (Options.Cache).
func (c *Cache) NoteRunActivity(stats Stats, act DeltaActivityStats) {
	c.actRuns.Add(1)
	c.actChecks.Add(int64(stats.ActivityChecks))
	c.actBirth.Add(int64(act.BirthChecks))
	c.actWatermark.Add(int64(act.WatermarkSkips))
	c.actDelta.Add(int64(act.DeltaRechecks))
	if act.SeedIndexHit {
		c.actSeedHits.Add(1)
	}
}

// ActivityTotals snapshots the aggregated engine activity counters. Taken
// without locks; fields are individually consistent under concurrency.
func (c *Cache) ActivityTotals() ActivityTotals {
	return ActivityTotals{
		Runs:           c.actRuns.Load(),
		ActivityChecks: c.actChecks.Load(),
		BirthChecks:    c.actBirth.Load(),
		WatermarkSkips: c.actWatermark.Load(),
		DeltaRechecks:  c.actDelta.Load(),
		SeedIndexHits:  c.actSeedHits.Load(),
	}
}

// forEachEntry visits every entry, one stripe at a time under its lock, in
// unspecified order — the snapshot writer's iteration. Entries are
// immutable, so f may retain them.
func (c *Cache) forEachEntry(f func(k CacheKey, v any)) {
	for i := range c.stripes {
		s := &c.stripes[i]
		s.mu.Lock()
		for k, e := range s.m {
			f(k, e.v)
		}
		s.mu.Unlock()
	}
}

// The per-kind size estimators, shared by the Store methods and the
// snapshot loader so a restored cache accounts bytes like the cache that
// wrote it.

func termsSize(ts []logic.Term) int64 {
	size := int64(0)
	for _, t := range ts {
		size += int64(len(t.Name)) + 24
	}
	return size
}

func stringsSize(ss []string) int64 {
	size := int64(0)
	for _, s := range ss {
		size += int64(len(s)) + 16
	}
	return size
}

func seedOutcomeSize(o SeedOutcome) int64 {
	return int64(len(o.Method)+len(o.Evidence)) + 24
}

func seedIndexSize(si *SeedIndex) int64 {
	size := int64(24)
	for _, tr := range si.Triggers {
		size += 32 + termsSize(tr.Bind)
	}
	return size
}

func seedPoolSize(p *SeedPool) int64 {
	size := int64(24)
	for _, atoms := range p.Seeds {
		size += 24
		for _, a := range atoms {
			size += int64(len(a.Pred.Name)) + 32 + termsSize(a.Args)
		}
	}
	return size
}

func stageOutcomesSize(o *StageOutcomes) int64 {
	size := int64(48 + len(o.Verdict) + len(o.DecidedBy))
	for _, r := range o.Records {
		size += int64(len(r.Stage)+len(r.Verdict)+len(r.Detail)+len(r.Evidence)) + 88
	}
	return size
}

func costModelSize(e *CostModelEntry) int64 {
	size := int64(24 + len(e.Class))
	for _, s := range e.Stages {
		size += int64(len(s.Stage)) + 48
	}
	return size
}

func stickyOutcomeSize(o *StickyOutcome) int64 {
	return int64(len(o.Method)) + 64 + stringsSize(o.LassoPrefix) + stringsSize(o.LassoCycle)
}

func existsOutcomeSize(o *ExistsOutcome) int64 {
	size := int64(96)
	for _, st := range o.Derivation {
		size += 56 + termsSize(st.Vars) + termsSize(st.Vals)
	}
	return size
}
