package chase

// Unit tests for the cross-run cache's own mechanics — stats accounting,
// per-kind key separation, and segment eviction keeping the newest entry —
// complementing the behavioural pins (engine_delta_test.go round-trips,
// the conformance corpus, guarded's warm≡cold properties).

import (
	"fmt"
	"testing"

	"airct/internal/logic"
)

func fpOf(s string) logic.Fingerprint {
	return logic.HashTerm(logic.Const(s))
}

func TestCacheStatsAndKindSeparation(t *testing.T) {
	c := NewCache()
	set, inst := fpOf("set"), fpOf("inst")
	if _, ok := c.LookupSeedOutcome(set, inst, 100); ok {
		t.Fatal("empty cache hit")
	}
	c.StoreSeedOutcome(set, inst, 100, SeedOutcome{Diverges: true, Method: "m", Evidence: "e"})
	// Same fingerprints, different kind and different budget: all misses.
	if _, ok := c.LookupSeedIndex(set, inst); ok {
		t.Error("seed-index lookup hit a seed-outcome entry")
	}
	if _, ok := c.LookupSeedPool(set, 100); ok {
		t.Error("seed-pool lookup hit a seed-outcome entry")
	}
	if _, ok := c.LookupSeedOutcome(set, inst, 200); ok {
		t.Error("budget is not part of the outcome key")
	}
	o, ok := c.LookupSeedOutcome(set, inst, 100)
	if !ok || !o.Diverges || o.Method != "m" || o.Evidence != "e" {
		t.Errorf("outcome round-trip = %+v, %v", o, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 4 || st.Entries != 1 || st.Bytes <= 0 {
		t.Errorf("stats = %+v, want 1 hit, 4 misses, 1 entry, positive bytes", st)
	}
}

// TestCacheEvictionKeepsNewestEntry drives one stripe past its share of a
// tiny byte limit: the overflowing store must drop the stripe's old
// entries BEFORE inserting, so the newest entry is always retrievable and
// the byte estimate stays bounded.
func TestCacheEvictionKeepsNewestEntry(t *testing.T) {
	limit := int64(cacheStripes * 512)
	c := NewCacheWithLimit(limit)
	set := fpOf("set")
	// Zero-valued instance fingerprints with salt-only variation land every
	// entry in ONE stripe (the outcome salt folds a constant kind with the
	// budget's low bits, and budget is kept a multiple of cacheStripes so
	// the stripe index never moves).
	evidence := make([]byte, 64)
	stored := 0
	for i := 0; i < 256; i++ {
		budget := (i + 1) * cacheStripes
		c.StoreSeedOutcome(set, logic.Fingerprint{}, budget, SeedOutcome{Evidence: string(evidence)})
		stored++
		if _, ok := c.LookupSeedOutcome(set, logic.Fingerprint{}, budget); !ok {
			t.Fatalf("store %d: newest entry did not survive its own eviction", i)
		}
	}
	st := c.Stats()
	if st.Entries >= int64(stored) {
		t.Errorf("no eviction happened: %d entries after %d oversized stores under a %dB limit",
			st.Entries, stored, limit)
	}
	if st.Entries <= 0 {
		t.Error("eviction left the cache empty")
	}
	if st.Bytes > limit {
		t.Errorf("byte estimate %d exceeds the whole-cache limit %d", st.Bytes, limit)
	}
}

// TestCacheConcurrentStripes hammers lookups and stores from many
// goroutines; correctness assertions are light (the -race build is the
// real check), but every stored entry must be retrievable or evicted —
// never corrupted.
func TestCacheConcurrentStripes(t *testing.T) {
	c := NewCache()
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				set := fpOf(fmt.Sprintf("set-%d", i%7))
				inst := fpOf(fmt.Sprintf("inst-%d-%d", w, i))
				c.StoreSeedOutcome(set, inst, 100, SeedOutcome{Method: "m"})
				if o, ok := c.LookupSeedOutcome(set, inst, 100); ok && o.Method != "m" {
					t.Error("corrupted entry")
					return
				}
			}
		}(w)
	}
	for w := 0; w < 4; w++ {
		<-done
	}
}
