package chase

// Unit tests for the cross-run cache's own mechanics — stats accounting,
// per-kind key separation, and segment eviction keeping the newest entry —
// complementing the behavioural pins (engine_delta_test.go round-trips,
// the conformance corpus, guarded's warm≡cold properties).

import (
	"fmt"
	"testing"

	"airct/internal/logic"
)

func fpOf(s string) logic.Fingerprint {
	return logic.HashTerm(logic.Const(s))
}

func TestCacheStatsAndKindSeparation(t *testing.T) {
	c := NewCache()
	set, inst := fpOf("set"), fpOf("inst")
	if _, ok := c.LookupSeedOutcome(set, inst, 100); ok {
		t.Fatal("empty cache hit")
	}
	c.StoreSeedOutcome(set, inst, 100, SeedOutcome{Diverges: true, Method: "m", Evidence: "e"})
	// Same fingerprints, different kind and different budget: all misses.
	if _, ok := c.LookupSeedIndex(set, inst); ok {
		t.Error("seed-index lookup hit a seed-outcome entry")
	}
	if _, ok := c.LookupSeedPool(set, 100); ok {
		t.Error("seed-pool lookup hit a seed-outcome entry")
	}
	if _, ok := c.LookupSeedOutcome(set, inst, 200); ok {
		t.Error("budget is not part of the outcome key")
	}
	o, ok := c.LookupSeedOutcome(set, inst, 100)
	if !ok || !o.Diverges || o.Method != "m" || o.Evidence != "e" {
		t.Errorf("outcome round-trip = %+v, %v", o, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 4 || st.Entries != 1 || st.Bytes <= 0 {
		t.Errorf("stats = %+v, want 1 hit, 4 misses, 1 entry, positive bytes", st)
	}
}

// TestCacheEvictionKeepsNewestEntry drives one stripe past its share of a
// tiny byte limit: the overflowing store must drop the stripe's old
// entries BEFORE inserting, so the newest entry is always retrievable and
// the byte estimate stays bounded.
func TestCacheEvictionKeepsNewestEntry(t *testing.T) {
	limit := int64(cacheStripes * 512)
	c := NewCacheWithLimit(limit)
	set := fpOf("set")
	// Zero-valued instance fingerprints with salt-only variation land every
	// entry in ONE stripe (the outcome salt folds a constant kind with the
	// budget's low bits, and budget is kept a multiple of cacheStripes so
	// the stripe index never moves).
	evidence := make([]byte, 64)
	stored := 0
	for i := 0; i < 256; i++ {
		budget := (i + 1) * cacheStripes
		c.StoreSeedOutcome(set, logic.Fingerprint{}, budget, SeedOutcome{Evidence: string(evidence)})
		stored++
		if _, ok := c.LookupSeedOutcome(set, logic.Fingerprint{}, budget); !ok {
			t.Fatalf("store %d: newest entry did not survive its own eviction", i)
		}
	}
	st := c.Stats()
	if st.Entries >= int64(stored) {
		t.Errorf("no eviction happened: %d entries after %d oversized stores under a %dB limit",
			st.Entries, stored, limit)
	}
	if st.Entries <= 0 {
		t.Error("eviction left the cache empty")
	}
	if st.Bytes > limit {
		t.Errorf("byte estimate %d exceeds the whole-cache limit %d", st.Bytes, limit)
	}
}

// TestCacheConcurrentStripes hammers lookups and stores from many
// goroutines; correctness assertions are light (the -race build is the
// real check), but every stored entry must be retrievable or evicted —
// never corrupted.
func TestCacheConcurrentStripes(t *testing.T) {
	c := NewCache()
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				set := fpOf(fmt.Sprintf("set-%d", i%7))
				inst := fpOf(fmt.Sprintf("inst-%d-%d", w, i))
				c.StoreSeedOutcome(set, inst, 100, SeedOutcome{Method: "m"})
				if o, ok := c.LookupSeedOutcome(set, inst, 100); ok && o.Method != "m" {
					t.Error("corrupted entry")
					return
				}
			}
		}(w)
	}
	for w := 0; w < 4; w++ {
		<-done
	}
}

// TestCacheEvictionDropsOldestHalf pins the age-aware policy (ROADMAP 1a):
// a store that overflows its stripe's share evicts only the stripe's oldest
// half by insertion sequence, so entries inserted just before the overflow
// — the hot ones — survive. The pre-PR policy dropped the whole stripe,
// hot entries included, and fails this test.
func TestCacheEvictionDropsOldestHalf(t *testing.T) {
	// Share per stripe: 1024 bytes. Each entry below costs exactly
	// 40 (evidence) + 24 (scalars) + 48 (overhead) = 112 bytes, so nine
	// entries (1008B) fit and the tenth store triggers an eviction.
	c := NewCacheWithLimit(int64(cacheStripes * 1024))
	// Zero instance fingerprint and a zero budget keep the salt's low bits
	// constant; Set.Lo multiples of cacheStripes pin every key to stripe 0.
	key := func(i int) logic.Fingerprint {
		return logic.Fingerprint{Hi: uint64(i), Lo: uint64(i * cacheStripes)}
	}
	evidence := string(make([]byte, 40))
	for i := 1; i <= 9; i++ {
		c.StoreSeedOutcome(key(i), logic.Fingerprint{}, 0, SeedOutcome{Evidence: evidence, Steps: i})
	}
	// Entry 9 is the hot one: inserted last before the overflow below.
	c.StoreSeedOutcome(key(10), logic.Fingerprint{}, 0, SeedOutcome{Evidence: evidence, Steps: 10})

	// The overflow evicts ⌈9/2⌉ = 5 oldest entries (1..5); 6..10 survive.
	for i := 1; i <= 5; i++ {
		if _, ok := c.LookupSeedOutcome(key(i), logic.Fingerprint{}, 0); ok {
			t.Errorf("entry %d is in the oldest half and should have been evicted", i)
		}
	}
	for i := 6; i <= 10; i++ {
		if o, ok := c.LookupSeedOutcome(key(i), logic.Fingerprint{}, 0); !ok || o.Steps != i {
			t.Errorf("entry %d was inserted just before the overflow and must survive (ok=%v o=%+v)", i, ok, o)
		}
	}
	st := c.Stats()
	if st.Evictions != 1 || st.EvictedEntries != 5 {
		t.Errorf("stats = %+v, want exactly 1 eviction dropping 5 entries", st)
	}
	if st.Entries != 5 {
		t.Errorf("entries = %d, want 5 survivors", st.Entries)
	}
}

// TestCacheExistsLadderKeepsDeepInconclusive pins the two-rung ∀∃ ladder
// (ROADMAP 5c): a decisive outcome recorded at a budget ABOVE a deep
// inconclusive one must not discard it — queries below the decisive budget
// keep replaying the inconclusive run instead of re-searching. The pre-PR
// single-slot "prefer decisive" policy fails the low-budget lookup.
func TestCacheExistsLadderKeepsDeepInconclusive(t *testing.T) {
	c := NewCache()
	set, inst := fpOf("set"), fpOf("inst")
	inc := &ExistsOutcome{Budget: 1000, StatesVisited: 1000}
	c.StoreExistsOutcome(set, inst, SmallestFirst, 50, inc)
	dec := &ExistsOutcome{Exhausted: true, Budget: 2000, StatesVisited: 1500}
	c.StoreExistsOutcome(set, inst, SmallestFirst, 50, dec)

	// At or above the decisive budget the decisive rung answers.
	if o, ok := c.LookupExistsOutcome(set, inst, SmallestFirst, 50, 3000); !ok || !o.Exhausted {
		t.Errorf("lookup at 3000 = %+v, %v; want the decisive rung", o, ok)
	}
	// Below the inconclusive depth the inconclusive rung still replays.
	if o, ok := c.LookupExistsOutcome(set, inst, SmallestFirst, 50, 500); !ok || o.decisive() || o.Budget != 1000 {
		t.Errorf("lookup at 500 = %+v, %v; want the deep inconclusive rung", o, ok)
	}
	// Between the rungs neither claim applies: an honest miss.
	if o, ok := c.LookupExistsOutcome(set, inst, SmallestFirst, 50, 1500); ok {
		t.Errorf("lookup at 1500 = %+v; want a miss (neither rung serves)", o)
	}
}

// TestCacheExistsLadderRungPreference pins the per-rung replacement order:
// among decisive outcomes the lowest budget wins (it serves a superset of
// queries), among inconclusive ones the deepest wins.
func TestCacheExistsLadderRungPreference(t *testing.T) {
	c := NewCache()
	set, inst := fpOf("set"), fpOf("inst")
	c.StoreExistsOutcome(set, inst, BreadthFirst, 50, &ExistsOutcome{Found: true, Budget: 800})
	c.StoreExistsOutcome(set, inst, BreadthFirst, 50, &ExistsOutcome{Found: true, Budget: 200})
	c.StoreExistsOutcome(set, inst, BreadthFirst, 50, &ExistsOutcome{Found: true, Budget: 400})
	if o, ok := c.LookupExistsOutcome(set, inst, BreadthFirst, 50, 250); !ok || o.Budget != 200 {
		t.Errorf("decisive rung = %+v, %v; want the lowest budget (200)", o, ok)
	}
	// The inconclusive rung keeps the deepest budget; a query below the
	// decisive rung's budget (which cannot serve it) replays that rung.
	c.StoreExistsOutcome(set, inst, BreadthFirst, 50, &ExistsOutcome{Budget: 300})
	c.StoreExistsOutcome(set, inst, BreadthFirst, 50, &ExistsOutcome{Budget: 900})
	c.StoreExistsOutcome(set, inst, BreadthFirst, 50, &ExistsOutcome{Budget: 600})
	if o, ok := c.LookupExistsOutcome(set, inst, BreadthFirst, 50, 150); !ok || o.decisive() || o.Budget != 900 {
		t.Errorf("lookup at 150 = %+v, %v; want the deepest inconclusive rung (900)", o, ok)
	}
}
