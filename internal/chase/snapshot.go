package chase

// The persistent cache tier: a versioned, checksummed binary snapshot of
// the cross-run cache (ROADMAP item 5). Cache entries are immutable and
// interner-free by construction — terms, atoms and lasso symbols by value —
// so serialisation needs no identity translation: a restored entry is
// byte-for-byte the entry that was stored, and warm wins finally compound
// across process restarts (`termcheck -cache-file`) and between machines
// (ship the snapshot, warm-start a fleet).
//
// Format (all integers little-endian; varints are encoding/binary uvarints,
// signed values zigzag-folded):
//
//	header  = magic [8]byte "airctcsn" | version uint32 | reserved uint32
//	entry   = payloadLen uint32 | crc32 uint32 (IEEE, over payload) | payload
//	payload = key (Set.Hi, Set.Lo, Inst.Hi, Inst.Lo, Salt — 5×uint64)
//	        | kind-specific body (kind = Salt>>56)
//
// Robustness contract: a wrong magic or version is refused cleanly with an
// error before any entry is read (no cross-version decoding is attempted).
// Within a well-versioned stream, corruption never crashes and never
// poisons the cache — an entry whose CRC, kind, or body fails to decode is
// skipped (counted in LoadReport.Skipped) and loading continues at the next
// frame; a stream that ends mid-frame stops cleanly with
// LoadReport.Truncated set. Entries are written sorted by key, so equal
// caches snapshot to identical bytes.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"

	"airct/internal/logic"
)

// snapshotMagic identifies a cache snapshot stream; snapshotVersion is the
// format version this build reads and writes. A version bump invalidates
// old snapshots wholesale — the loader refuses rather than guess at a
// foreign layout.
const (
	snapshotMagic = "airctcsn"
	// Version 2 (PR 9): StageRecord gained Evidence, StageOutcomes keys
	// gained the instance fingerprint, and the CostModelEntry kind joined.
	// Version 3 (PR 10): SeedOutcome gained PumpDepth, and an ∀∃ frame
	// carries the key's whole two-rung ladder (a rung count then each
	// outcome) instead of a single outcome.
	snapshotVersion = 3

	// maxEntryLen bounds a single entry frame; a larger declared length is
	// treated as corruption (the whole remaining stream is untrustworthy).
	maxEntryLen = 1 << 26
)

// ErrSnapshotFormat reports a stream that is not a cache snapshot or whose
// format version this build does not read.
var ErrSnapshotFormat = errors.New("chase: unrecognised cache snapshot format")

// LoadReport summarises a snapshot load: how many entries were restored,
// how many were skipped as corrupt (bad CRC, unknown kind, undecodable
// body), and whether the stream ended mid-frame.
type LoadReport struct {
	Restored  int
	Skipped   int
	Truncated bool
}

// Snapshot writes every cache entry to w in the versioned snapshot format.
// Entries are sorted by key, so two caches with equal contents produce
// identical bytes. Counters (hits/misses/evictions) are not part of a
// snapshot — they describe a process's run, not the cached knowledge.
func (c *Cache) Snapshot(w io.Writer) error {
	type kv struct {
		k CacheKey
		v any
	}
	var entries []kv
	c.forEachEntry(func(k CacheKey, v any) { entries = append(entries, kv{k, v}) })
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i].k, entries[j].k
		switch {
		case a.Set.Hi != b.Set.Hi:
			return a.Set.Hi < b.Set.Hi
		case a.Set.Lo != b.Set.Lo:
			return a.Set.Lo < b.Set.Lo
		case a.Inst.Hi != b.Inst.Hi:
			return a.Inst.Hi < b.Inst.Hi
		case a.Inst.Lo != b.Inst.Lo:
			return a.Inst.Lo < b.Inst.Lo
		default:
			return a.Salt < b.Salt
		}
	})

	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(snapshotMagic); err != nil {
		return err
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], snapshotVersion)
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}

	var payload []byte
	var frame [8]byte
	for _, e := range entries {
		payload = appendEntry(payload[:0], e.k, e.v)
		if payload == nil {
			// Unknown in-memory kind: unreachable by construction, but a
			// snapshot must never write a frame it cannot read back.
			continue
		}
		binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
		if _, err := bw.Write(frame[:]); err != nil {
			return err
		}
		if _, err := bw.Write(payload); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Restore reads a snapshot stream into the cache, inserting entries through
// the normal store path (first writer wins, eviction accounting intact). A
// bad magic or version returns ErrSnapshotFormat before anything is
// restored; per-entry corruption is skipped, not fatal — see LoadReport.
func (c *Cache) Restore(r io.Reader) (LoadReport, error) {
	var rep LoadReport
	br := bufio.NewReader(r)

	var hdr [16]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return rep, fmt.Errorf("%w: short header", ErrSnapshotFormat)
	}
	if string(hdr[:8]) != snapshotMagic {
		return rep, fmt.Errorf("%w: bad magic", ErrSnapshotFormat)
	}
	if v := binary.LittleEndian.Uint32(hdr[8:12]); v != snapshotVersion {
		return rep, fmt.Errorf("%w: version %d (want %d)", ErrSnapshotFormat, v, snapshotVersion)
	}

	var frame [8]byte
	var payload []byte
	for {
		if _, err := io.ReadFull(br, frame[:]); err != nil {
			if err != io.EOF {
				rep.Truncated = true
			}
			return rep, nil
		}
		n := binary.LittleEndian.Uint32(frame[0:4])
		want := binary.LittleEndian.Uint32(frame[4:8])
		if n > maxEntryLen {
			// A nonsense length desynchronises framing; nothing after it
			// can be trusted.
			rep.Truncated = true
			return rep, nil
		}
		if cap(payload) < int(n) {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(br, payload); err != nil {
			rep.Truncated = true
			return rep, nil
		}
		if crc32.ChecksumIEEE(payload) != want {
			rep.Skipped++
			continue
		}
		if c.restoreEntry(payload) {
			rep.Restored++
		} else {
			rep.Skipped++
		}
	}
}

// LoadCache builds a new default-limit cache from a snapshot stream.
func LoadCache(r io.Reader) (*Cache, LoadReport, error) {
	c := NewCache()
	rep, err := c.Restore(r)
	if err != nil {
		return nil, rep, err
	}
	return c, rep, nil
}

// SaveCacheFile snapshots the cache to path atomically: the snapshot is
// written to a temporary file in path's directory and renamed over path, so
// a concurrent reader sees either the old snapshot or the new one, never a
// torn write.
func SaveCacheFile(c *Cache, path string) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".cache-snapshot-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if err := c.Snapshot(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// LoadCacheFile builds a new default-limit cache from a snapshot file.
func LoadCacheFile(path string) (*Cache, LoadReport, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, LoadReport{}, err
	}
	defer f.Close()
	return LoadCache(f)
}

// --- entry encoding ---

// appendEntry appends the payload (key + kind body) of one entry, or
// returns nil for an unknown in-memory kind.
func appendEntry(b []byte, k CacheKey, v any) []byte {
	var kb [40]byte
	binary.LittleEndian.PutUint64(kb[0:8], k.Set.Hi)
	binary.LittleEndian.PutUint64(kb[8:16], k.Set.Lo)
	binary.LittleEndian.PutUint64(kb[16:24], k.Inst.Hi)
	binary.LittleEndian.PutUint64(kb[24:32], k.Inst.Lo)
	binary.LittleEndian.PutUint64(kb[32:40], k.Salt)
	b = append(b, kb[:]...)

	switch e := v.(type) {
	case SeedOutcome:
		b = appendBool(b, e.Diverges)
		b = appendString(b, e.Method)
		b = appendString(b, e.Evidence)
		b = appendInt(b, int64(e.Steps))
		b = appendInt(b, int64(e.PumpDepth))
	case *SeedIndex:
		b = binary.AppendUvarint(b, uint64(len(e.Triggers)))
		for _, tr := range e.Triggers {
			b = appendInt(b, int64(tr.TGD))
			b = appendBool(b, tr.Active)
			b = appendTerms(b, tr.Bind)
		}
	case *SeedPool:
		b = binary.AppendUvarint(b, uint64(len(e.Seeds)))
		for _, atoms := range e.Seeds {
			b = binary.AppendUvarint(b, uint64(len(atoms)))
			for _, a := range atoms {
				b = appendString(b, a.Pred.Name)
				b = appendInt(b, int64(a.Pred.Arity))
				b = appendTerms(b, a.Args)
			}
		}
	case *StageOutcomes:
		b = appendString(b, e.Verdict)
		b = appendString(b, e.DecidedBy)
		b = binary.AppendUvarint(b, uint64(len(e.Records)))
		for _, r := range e.Records {
			b = appendString(b, r.Stage)
			b = appendInt(b, int64(r.Tier))
			b = appendBool(b, r.Decided)
			b = appendString(b, r.Verdict)
			b = appendString(b, r.Detail)
			b = appendString(b, r.Evidence)
			b = appendInt(b, int64(r.Steps))
			b = appendInt(b, r.DurationNS)
			b = appendInt(b, int64(r.Seeds))
			b = appendInt(b, int64(r.Saturated))
			b = appendInt(b, int64(r.Depth))
		}
	case *CostModelEntry:
		b = appendString(b, e.Class)
		b = binary.AppendUvarint(b, uint64(len(e.Stages)))
		for _, s := range e.Stages {
			b = appendString(b, s.Stage)
			b = appendInt(b, s.EwmaNS)
			b = appendInt(b, s.Attempts)
			b = appendInt(b, s.Decided)
			b = appendInt(b, s.EwmaDepth)
		}
	case *StickyOutcome:
		b = appendBool(b, e.Terminates)
		b = appendString(b, e.Method)
		b = appendBool(b, e.Complete)
		b = appendInt(b, int64(e.StatesExplored))
		b = appendInt(b, int64(e.SeedIndex))
		b = appendStrings(b, e.LassoPrefix)
		b = appendStrings(b, e.LassoCycle)
		b = appendInt(b, int64(e.LassoGap))
	case *existsLadder:
		rungs := e.rungs()
		b = binary.AppendUvarint(b, uint64(len(rungs)))
		for _, o := range rungs {
			b = appendExistsOutcome(b, o)
		}
	default:
		return nil
	}
	return b
}

func appendExistsOutcome(b []byte, e *ExistsOutcome) []byte {
	b = appendBool(b, e.Found)
	b = appendBool(b, e.Exhausted)
	b = appendInt(b, int64(e.Budget))
	b = appendInt(b, int64(e.StatesVisited))
	b = binary.AppendUvarint(b, uint64(len(e.Derivation)))
	for _, st := range e.Derivation {
		b = appendInt(b, int64(st.TGD))
		b = appendTerms(b, st.Vars)
		b = appendTerms(b, st.Vals)
	}
	b = appendInt(b, int64(e.Stats.StatesExpanded))
	b = appendInt(b, int64(e.Stats.MemoHits))
	b = appendInt(b, int64(e.Stats.PeakFrontier))
	b = appendInt(b, int64(e.Stats.IndexRepairs))
	b = appendInt(b, int64(e.Stats.IndexRebuilds))
	b = appendInt(b, int64(e.Stats.ActivityRechecks))
	return b
}

// restoreEntry decodes one CRC-verified payload and inserts it through the
// normal store path. Returns false (skip) on any structural problem: short
// key, unknown kind, undecodable body, or trailing bytes.
func (c *Cache) restoreEntry(payload []byte) bool {
	if len(payload) < 40 {
		return false
	}
	k := CacheKey{
		Set:  logic.Fingerprint{Hi: binary.LittleEndian.Uint64(payload[0:8]), Lo: binary.LittleEndian.Uint64(payload[8:16])},
		Inst: logic.Fingerprint{Hi: binary.LittleEndian.Uint64(payload[16:24]), Lo: binary.LittleEndian.Uint64(payload[24:32])},
		Salt: binary.LittleEndian.Uint64(payload[32:40]),
	}
	d := &decoder{b: payload[40:]}

	var v any
	var size int64
	switch k.Salt &^ ((1 << 56) - 1) {
	case kindSeedOutcome:
		o := SeedOutcome{
			Diverges:  d.bool(),
			Method:    d.string(),
			Evidence:  d.string(),
			Steps:     int(d.int()),
			PumpDepth: int(d.int()),
		}
		v, size = o, seedOutcomeSize(o)
	case kindSeedIndex:
		si := &SeedIndex{}
		n := d.count()
		for i := 0; i < n && d.err == nil; i++ {
			si.Triggers = append(si.Triggers, SeedTrigger{
				TGD:    int32(d.int()),
				Active: d.bool(),
				Bind:   d.terms(),
			})
		}
		v, size = si, seedIndexSize(si)
	case kindSeedPool:
		p := &SeedPool{}
		n := d.count()
		for i := 0; i < n && d.err == nil; i++ {
			m := d.count()
			var atoms []logic.Atom
			if m > 0 {
				atoms = make([]logic.Atom, 0, min(m, 64))
			}
			for j := 0; j < m && d.err == nil; j++ {
				atoms = append(atoms, logic.Atom{
					Pred: logic.Predicate{Name: d.string(), Arity: int(d.int())},
					Args: d.terms(),
				})
			}
			p.Seeds = append(p.Seeds, atoms)
		}
		v, size = p, seedPoolSize(p)
	case kindStageOutcomes:
		o := &StageOutcomes{
			Verdict:   d.string(),
			DecidedBy: d.string(),
		}
		n := d.count()
		for i := 0; i < n && d.err == nil; i++ {
			o.Records = append(o.Records, StageRecord{
				Stage:      d.string(),
				Tier:       int(d.int()),
				Decided:    d.bool(),
				Verdict:    d.string(),
				Detail:     d.string(),
				Evidence:   d.string(),
				Steps:      int(d.int()),
				DurationNS: d.int(),
				Seeds:      int(d.int()),
				Saturated:  int(d.int()),
				Depth:      int(d.int()),
			})
		}
		v, size = o, stageOutcomesSize(o)
	case kindCostModel:
		e := &CostModelEntry{Class: d.string()}
		n := d.count()
		for i := 0; i < n && d.err == nil; i++ {
			e.Stages = append(e.Stages, StageCostRecord{
				Stage:     d.string(),
				EwmaNS:    d.int(),
				Attempts:  d.int(),
				Decided:   d.int(),
				EwmaDepth: d.int(),
			})
		}
		if d.err == nil && len(d.b) == d.off {
			// Replace-preferring store: a restored model merges with live
			// entries by observation count, like StoreExistsOutcome's
			// budget preference.
			c.StoreCostModel(e)
			return true
		}
		return false
	case kindStickyOutcome:
		o := &StickyOutcome{
			Terminates:     d.bool(),
			Method:         d.string(),
			Complete:       d.bool(),
			StatesExplored: int(d.int()),
			SeedIndex:      int32(d.int()),
			LassoPrefix:    d.strings(),
			LassoCycle:     d.strings(),
			LassoGap:       int(d.int()),
		}
		v, size = o, stickyOutcomeSize(o)
	case kindExistsOutcome:
		// A frame carries the key's whole ladder; each rung re-enters
		// through the merge path, which rebuilds the identical ladder (the
		// rungs were written in canonical decisive-first order and land on
		// disjoint rungs).
		n := d.count()
		var rungs []*ExistsOutcome
		for i := 0; i < n && d.err == nil; i++ {
			rungs = append(rungs, decodeExistsOutcome(d))
		}
		if d.err != nil || len(d.b) != d.off || len(rungs) == 0 || len(rungs) > 2 {
			return false
		}
		for _, o := range rungs {
			c.mergeExistsOutcome(k, o)
		}
		return true
	default:
		return false
	}
	if d.err != nil || len(d.b) != d.off {
		return false
	}
	c.store(k, v, size)
	return true
}

func decodeExistsOutcome(d *decoder) *ExistsOutcome {
	o := &ExistsOutcome{
		Found:         d.bool(),
		Exhausted:     d.bool(),
		Budget:        int(d.int()),
		StatesVisited: int(d.int()),
	}
	n := d.count()
	for i := 0; i < n && d.err == nil; i++ {
		o.Derivation = append(o.Derivation, ExistsStep{
			TGD:  int32(d.int()),
			Vars: d.terms(),
			Vals: d.terms(),
		})
	}
	o.Stats = SearchStats{
		StatesExpanded:   int(d.int()),
		MemoHits:         int(d.int()),
		PeakFrontier:     int(d.int()),
		IndexRepairs:     int(d.int()),
		IndexRebuilds:    int(d.int()),
		ActivityRechecks: int(d.int()),
	}
	return o
}

// --- scalar codecs ---

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// appendInt zigzag-folds so negatives (StickyOutcome.SeedIndex = -1) stay
// one byte.
func appendInt(b []byte, v int64) []byte {
	return binary.AppendUvarint(b, uint64(v<<1)^uint64(v>>63))
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendStrings(b []byte, ss []string) []byte {
	b = binary.AppendUvarint(b, uint64(len(ss)))
	for _, s := range ss {
		b = appendString(b, s)
	}
	return b
}

func appendTerms(b []byte, ts []logic.Term) []byte {
	b = binary.AppendUvarint(b, uint64(len(ts)))
	for _, t := range ts {
		b = append(b, byte(t.Kind))
		b = appendString(b, t.Name)
	}
	return b
}

// decoder reads the scalar codecs back out of a payload. The first
// malformed read sets err and every later read returns a zero value, so
// kind decoders can run straight-line and check err once.
type decoder struct {
	b   []byte
	off int
	err error
}

var errCorrupt = errors.New("corrupt entry")

func (d *decoder) fail() {
	if d.err == nil {
		d.err = errCorrupt
	}
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail()
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) int() int64 {
	u := d.uvarint()
	return int64(u>>1) ^ -int64(u&1)
}

// count reads a slice length and bounds it by the bytes remaining — every
// element costs at least one byte, so a larger count is corruption, caught
// before it sizes an allocation.
func (d *decoder) count() int {
	v := d.uvarint()
	if d.err == nil && v > uint64(len(d.b)-d.off) {
		d.fail()
		return 0
	}
	return int(v)
}

func (d *decoder) bool() bool {
	if d.err != nil {
		return false
	}
	if d.off >= len(d.b) || d.b[d.off] > 1 {
		d.fail()
		return false
	}
	d.off++
	return d.b[d.off-1] == 1
}

func (d *decoder) string() string {
	n := d.count()
	if d.err != nil {
		return ""
	}
	s := string(d.b[d.off : d.off+n])
	d.off += n
	return s
}

func (d *decoder) strings() []string {
	n := d.count()
	if d.err != nil || n == 0 {
		return nil
	}
	ss := make([]string, 0, n)
	for i := 0; i < n && d.err == nil; i++ {
		ss = append(ss, d.string())
	}
	return ss
}

func (d *decoder) terms() []logic.Term {
	n := d.count()
	if d.err != nil || n == 0 {
		return nil
	}
	ts := make([]logic.Term, 0, n)
	for i := 0; i < n && d.err == nil; i++ {
		if d.off >= len(d.b) || d.b[d.off] > byte(logic.Variable) {
			d.fail()
			return ts
		}
		kind := logic.TermKind(d.b[d.off])
		d.off++
		ts = append(ts, logic.Term{Kind: kind, Name: d.string()})
	}
	return ts
}
