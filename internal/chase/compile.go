package chase

import (
	"sort"

	"airct/internal/logic"
	"airct/internal/tgds"
)

// compiledTGD is the engine's slot-compiled form of one TGD. Variables map
// to dense slots — sorted body variables first (slots 0..nBody-1), then
// sorted existential head variables — so a trigger is identified by the
// TermID tuple bound to the body slots, the frontier class by the subset at
// frontierSlots, and result atoms are built straight from slot references.
// Nothing on these paths renders a string.
type compiledTGD struct {
	nBody     int
	bodyVars  []logic.Term // sorted; slot i holds bodyVars[i]
	existVars []logic.Term // sorted; slot nBody+k holds existVars[k]

	body *logic.CPattern // all body atoms
	head *logic.CPattern // head atoms: activity pattern and result template

	// frontierSlots are the body slots of frontier variables, ascending
	// (equivalently: frontier variables in sorted order).
	frontierSlots []int32
}

// compileSet compiles every TGD of the set against the interner (the
// engine's instance interner, so pattern PredIDs and the instance's posting
// lists agree).
func compileSet(set *tgds.Set, in *logic.Interner) []compiledTGD {
	out := make([]compiledTGD, len(set.TGDs))
	for i, t := range set.TGDs {
		out[i] = compileTGD(t, in)
	}
	return out
}

// compiledEGD is the engine's slot-compiled form of one EGD: the body
// pattern plus the two body slots whose bound terms the equality step
// unifies. EGD triggers share the TGD trigger machinery — their identity
// tuples carry rule index len(TGDs)+egdIndex in position 0, so one
// TupleTable dedups both kinds.
type compiledEGD struct {
	nBody    int
	bodyVars []logic.Term // sorted; slot i holds bodyVars[i]

	body *logic.CPattern

	xSlot, ySlot int32 // body slots of the equated variables
}

// compileEGDs compiles every EGD of the set against the interner.
func compileEGDs(set *tgds.Set, in *logic.Interner) []compiledEGD {
	out := make([]compiledEGD, len(set.EGDs))
	for j, e := range set.EGDs {
		ce := compiledEGD{bodyVars: e.BodyVars().Sorted()}
		ce.nBody = len(ce.bodyVars)
		slots := make(map[logic.Term]int32, ce.nBody)
		for i, v := range ce.bodyVars {
			slots[v] = int32(i)
		}
		ce.body = logic.CompilePattern(e.Body, ce.nBody, func(t logic.Term) int32 { return slots[t] }, in)
		ce.xSlot = slots[e.X]
		ce.ySlot = slots[e.Y]
		out[j] = ce
	}
	return out
}

func compileTGD(t tgds.TGD, in *logic.Interner) compiledTGD {
	ct := compiledTGD{
		bodyVars:  t.BodyVars().Sorted(),
		existVars: t.ExistentialVars().Sorted(),
	}
	ct.nBody = len(ct.bodyVars)
	slots := make(map[logic.Term]int32, ct.nBody+len(ct.existVars))
	for i, v := range ct.bodyVars {
		slots[v] = int32(i)
	}
	for k, v := range ct.existVars {
		slots[v] = int32(ct.nBody + k)
	}
	slotOf := func(t logic.Term) int32 { return slots[t] }
	total := ct.nBody + len(ct.existVars)
	ct.body = logic.CompilePattern(t.Body, total, slotOf, in)
	ct.head = logic.CompilePattern(t.Head, total, slotOf, in)
	frontier := t.Frontier()
	for i, v := range ct.bodyVars {
		if frontier.Has(v) {
			ct.frontierSlots = append(ct.frontierSlots, int32(i))
		}
	}
	return ct
}

// discSorter sorts a flat buffer of discovered trigger tuples (offsets in
// *idx, tuples of length stride in *disc) by the canonical trigger order:
// componentwise Term.Compare of the bound terms in slot order. This
// reproduces logic.SortSubstitutions over the interned representation —
// comparisons resolve terms through the interner, but no key strings are
// built. It points at its owner's live buffers (engine or searcher) so
// sorting allocates nothing.
type discSorter struct {
	itab   *logic.Interner
	disc   *[]uint32
	idx    *[]int32
	stride int32
}

func (d *discSorter) Len() int { return len(*d.idx) }

func (d *discSorter) Swap(i, j int) {
	s := *d.idx
	s[i], s[j] = s[j], s[i]
}

func (d *discSorter) Less(i, j int) bool {
	s, buf := *d.idx, *d.disc
	a := buf[s[i] : s[i]+d.stride]
	b := buf[s[j] : s[j]+d.stride]
	// a[0] and b[0] hold the TGD index and are equal within one sort.
	for k := 1; k < int(d.stride); k++ {
		if c := d.itab.CompareTermIDs(logic.TermID(a[k]), logic.TermID(b[k])); c != 0 {
			return c < 0
		}
	}
	return false
}

var _ sort.Interface = (*discSorter)(nil)
