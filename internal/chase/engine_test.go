package chase

import (
	"testing"

	"airct/internal/instance"
	"airct/internal/logic"
	"airct/internal/parser"
)

// introProgram is the paper's introduction example: D = {R(a,b)} and the
// TGD R(x,y) → ∃z R(x,z).
const introProgram = `
	R(a,b).
	R(X,Y) -> R(X,Z).
`

func TestIntroExampleRestrictedTerminatesImmediately(t *testing.T) {
	prog := parser.MustParse(introProgram)
	run := RunChase(prog.Database, prog.TGDs, Options{Variant: Restricted})
	if !run.Terminated() {
		t.Fatalf("restricted chase must terminate, reason = %v", run.Reason)
	}
	if run.StepsTaken != 0 {
		t.Errorf("restricted chase must apply no trigger, applied %d", run.StepsTaken)
	}
	if run.Final.Len() != 1 {
		t.Errorf("final instance = %v", run.Final)
	}
}

func TestIntroExampleObliviousDiverges(t *testing.T) {
	prog := parser.MustParse(introProgram)
	run := RunChase(prog.Database, prog.TGDs, Options{Variant: Oblivious, MaxSteps: 500})
	if run.Terminated() {
		t.Fatal("oblivious chase must not terminate on the intro example")
	}
	if run.Reason != StepBudget {
		t.Errorf("reason = %v", run.Reason)
	}
	if run.Final.Len() < 500 {
		t.Errorf("oblivious chase should keep inventing atoms, got %d", run.Final.Len())
	}
}

func TestIntroExampleSemiObliviousTerminates(t *testing.T) {
	// The skolem chase applies one trigger per frontier class: x→a fires
	// once, and the new trigger over R(a,n) has the same frontier class.
	prog := parser.MustParse(introProgram)
	run := RunChase(prog.Database, prog.TGDs, Options{Variant: SemiOblivious, MaxSteps: 500})
	if !run.Terminated() {
		t.Fatalf("semi-oblivious chase must terminate, reason = %v", run.Reason)
	}
	if run.Final.Len() != 2 {
		t.Errorf("expected R(a,b) + one invented atom, got %v", run.Final)
	}
}

// example32 is Example 3.2/3.4 of the paper.
const example32 = `
	P(a,b).
	s1: P(X,Y) -> R(X,Y).
	s2: P(X,Y) -> S(X).
	s3: R(X,Y) -> S(X).
	s4: S(X) -> R(X,Y).
`

func TestExample32Restricted(t *testing.T) {
	prog := parser.MustParse(example32)
	run := RunChase(prog.Database, prog.TGDs, Options{Variant: Restricted})
	if !run.Terminated() {
		t.Fatal("must terminate")
	}
	want := instance.FromAtoms(
		logic.MustAtom("P", logic.Const("a"), logic.Const("b")),
		logic.MustAtom("R", logic.Const("a"), logic.Const("b")),
		logic.MustAtom("S", logic.Const("a")),
	)
	if !run.Final.Equal(want) {
		t.Errorf("restricted result = %v, want %v", run.Final, want)
	}
}

func TestExample32Oblivious(t *testing.T) {
	// The oblivious chase additionally invents R(a,c) via σ4 (Example 3.2).
	prog := parser.MustParse(example32)
	run := RunChase(prog.Database, prog.TGDs, Options{Variant: Oblivious, MaxSteps: 100})
	if !run.Terminated() {
		t.Fatal("oblivious chase of Example 3.2 terminates")
	}
	if run.Final.Len() != 4 {
		t.Errorf("oblivious result should have 4 atoms, got %v", run.Final)
	}
	if run.Final.NullCount() != 1 {
		t.Errorf("exactly one invented null expected, got %d", run.Final.NullCount())
	}
}

func TestRestrictedSubsetOfOblivious(t *testing.T) {
	// With structural null naming the restricted result is a subset of the
	// oblivious result: the same trigger always invents the same null.
	progs := []string{
		example32,
		`R(a,b). S(b,c).
		 t1: S(X,Y) -> T(X).
		 t2: R(X,Y), T(Y) -> P(X,Y).
		 t3: P(X,Y) -> Q(Y).`,
	}
	for _, src := range progs {
		prog := parser.MustParse(src)
		res := RunChase(prog.Database, prog.TGDs, Options{Variant: Restricted, MaxSteps: 1000})
		obl := RunChase(prog.Database, prog.TGDs, Options{Variant: Oblivious, MaxSteps: 1000})
		if !res.Terminated() || !obl.Terminated() {
			t.Fatalf("both must terminate for %q", src)
		}
		if !obl.Final.ContainsAll(res.Final) {
			t.Errorf("restricted ⊄ oblivious for %q:\nres = %v\nobl = %v",
				src, res.Final, obl.Final)
		}
	}
}

func TestTerminatedRunSatisfiesSet(t *testing.T) {
	progs := []string{
		introProgram,
		example32,
		`E(a,b). E(b,c). E(c,a).
		 E(X,Y), E(Y,Z) -> E(X,Z).`,
	}
	for _, src := range progs {
		prog := parser.MustParse(src)
		run := RunChase(prog.Database, prog.TGDs, Options{Variant: Restricted, MaxSteps: 10000})
		if !run.Terminated() {
			t.Fatalf("must terminate: %q", src)
		}
		if !prog.TGDs.SatisfiedBy(run.Final) {
			t.Errorf("fixpoint must satisfy the TGDs for %q", src)
		}
	}
}

func TestTransitiveClosure(t *testing.T) {
	prog := parser.MustParse(`
		E(n1,n2). E(n2,n3). E(n3,n4).
		E(X,Y), E(Y,Z) -> E(X,Z).
	`)
	run := RunChase(prog.Database, prog.TGDs, Options{Variant: Restricted})
	if !run.Terminated() {
		t.Fatal("must terminate")
	}
	// Chain of 4 nodes: closure has 3+2+1 = 6 edges.
	if run.Final.Len() != 6 {
		t.Errorf("closure size = %d, want 6: %v", run.Final.Len(), run.Final)
	}
}

func TestAtomBudget(t *testing.T) {
	prog := parser.MustParse(introProgram)
	run := RunChase(prog.Database, prog.TGDs, Options{Variant: Oblivious, MaxAtoms: 50})
	if run.Reason != AtomBudget {
		t.Errorf("reason = %v, want atom-budget", run.Reason)
	}
	if run.Final.Len() < 50 {
		t.Errorf("should reach the atom budget, got %d", run.Final.Len())
	}
}

func TestStrategiesGiveHomEquivalentResults(t *testing.T) {
	// The restricted chase is order-dependent (its very point: Example 3.2
	// under LIFO fires σ4 before σ1 and keeps an extra invented atom), but
	// all terminating results are homomorphically equivalent universal
	// models.
	prog := parser.MustParse(example32)
	runs := []*Run{
		RunChase(prog.Database, prog.TGDs, Options{Variant: Restricted, Strategy: FIFO}),
		RunChase(prog.Database, prog.TGDs, Options{Variant: Restricted, Strategy: LIFO}),
		RunChase(prog.Database, prog.TGDs, Options{Variant: Restricted, Strategy: Random, Seed: 7}),
	}
	for i, r := range runs {
		if !r.Terminated() {
			t.Fatalf("run %d did not terminate", i)
		}
		if !prog.TGDs.SatisfiedBy(r.Final) {
			t.Fatalf("run %d fixpoint violates the set", i)
		}
	}
	for i := range runs {
		for j := range runs {
			if logic.FindHomomorphism(runs[i].Final.Atoms(), nil, runs[j].Final) == nil {
				t.Errorf("run %d result does not map into run %d result:\n%v\nvs\n%v",
					i, j, runs[i].Final, runs[j].Final)
			}
		}
	}
}

func TestRandomStrategyIsSeedDeterministic(t *testing.T) {
	prog := parser.MustParse(example32)
	a := RunChase(prog.Database, prog.TGDs, Options{Variant: Restricted, Strategy: Random, Seed: 42})
	b := RunChase(prog.Database, prog.TGDs, Options{Variant: Restricted, Strategy: Random, Seed: 42})
	if len(a.Steps) != len(b.Steps) {
		t.Fatal("same seed must give same derivation length")
	}
	for i := range a.Steps {
		if a.Steps[i].Trigger.Key() != b.Steps[i].Trigger.Key() {
			t.Fatalf("step %d differs", i)
		}
	}
}

func TestInstanceAtReplaysDerivation(t *testing.T) {
	prog := parser.MustParse(example32)
	run := RunChase(prog.Database, prog.TGDs, Options{Variant: Restricted})
	if got := run.InstanceAt(0); !got.Equal(prog.Database.Instance()) {
		t.Error("I_0 must be the database")
	}
	if got := run.InstanceAt(len(run.Steps)); !got.Equal(run.Final) {
		t.Error("I_n must be the final instance")
	}
	if got := run.InstanceAt(999); !got.Equal(run.Final) {
		t.Error("overshoot must clamp")
	}
	for i := 1; i < len(run.Steps); i++ {
		prev, cur := run.InstanceAt(i-1), run.InstanceAt(i)
		if !cur.ContainsAll(prev) {
			t.Errorf("derivation must be monotone at step %d", i)
		}
	}
}

func TestUniversalModelHomomorphism(t *testing.T) {
	// The chase result embeds homomorphically into any model (universal
	// model property) — check against a hand-built model.
	prog := parser.MustParse(`
		Emp(alice).
		Emp(X) -> WorksFor(X, M).
		WorksFor(X, M) -> Mgr(M).
	`)
	run := RunChase(prog.Database, prog.TGDs, Options{Variant: Restricted, MaxSteps: 100})
	if !run.Terminated() {
		t.Fatal("must terminate (the invented manager closes both TGDs)")
	}
	model := logic.NewSliceSource([]logic.Atom{
		logic.MustAtom("Emp", logic.Const("alice")),
		logic.MustAtom("WorksFor", logic.Const("alice"), logic.Const("bob")),
		logic.MustAtom("Mgr", logic.Const("bob")),
	})
	if !prog.TGDs.SatisfiedBy(model) {
		t.Fatal("hand model must satisfy the TGDs")
	}
	if logic.FindHomomorphism(run.Final.Atoms(), nil, model) == nil {
		t.Error("chase result must map homomorphically into every model")
	}
}

func TestUniversalModelHelper(t *testing.T) {
	prog := parser.MustParse(example32)
	m := UniversalModel(prog.Database, prog.TGDs)
	if m.Len() != 3 {
		t.Errorf("UniversalModel = %v", m)
	}
	ok, run := Terminates(prog.Database, prog.TGDs, 100)
	if !ok || run.Final.Len() != 3 {
		t.Errorf("Terminates = %v, %v", ok, run.Final)
	}
}
