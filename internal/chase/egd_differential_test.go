package chase

import (
	"fmt"
	"testing"

	"airct/internal/instance"
	"airct/internal/logic"
	"airct/internal/parser"
	"airct/internal/tgds"
)

// referenceEGDRunChase is the naive, string-keyed oracle for the restricted
// chase with EGDs: triggers dedup by substitution-key strings, equality
// classes live in a map-based union-find over logic.Term values (no
// TermIDs), and an equality flush rebuilds a fresh Instance by re-adding
// every atom through the class map in insertion order. It mirrors the
// interned engine's discipline — FIFO, canonical per-rule enumeration
// order, lazy flush (equality steps batch until a TGD trigger or queue
// drain forces the rewrite), full queue rebuild after a flush — so runs
// are comparable step for step, but none of the engine's interning,
// delta-activity, or in-place rewriting machinery is shared.
func referenceEGDRunChase(db *instance.Database, set *tgds.Set, opts Options) *Run {
	e := &refEqEngine{
		set:     set,
		opts:    opts,
		inst:    db.Instance(),
		nulls:   NewNullFactory(opts.Naming),
		seen:    make(map[string]struct{}),
		parent:  make(map[logic.Term]logic.Term),
		nullSeq: make(map[logic.Term]int),
		run:     &Run{Options: opts, Set: set, Database: db},
	}
	e.seedAll()
	e.loop()
	e.run.Final = e.inst
	return e.run
}

type refEqTrig struct {
	isEGD bool
	idx   int
	h     logic.Substitution // body-variable bindings (both kinds)
}

func (t refEqTrig) key() string {
	if t.isEGD {
		return fmt.Sprintf("e%d|%s", t.idx, t.h.Key())
	}
	return fmt.Sprintf("%d|%s", t.idx, t.h.Key())
}

type refEqEngine struct {
	set          *tgds.Set
	opts         Options
	inst         *instance.Instance
	nulls        *NullFactory
	queue        []refEqTrig
	seen         map[string]struct{}
	parent       map[logic.Term]logic.Term
	nullSeq      map[logic.Term]int // creation order of invented nulls
	nextSeq      int
	dirty        bool
	eqSinceFlush int
	run          *Run
}

func (e *refEqEngine) find(t logic.Term) logic.Term {
	for {
		p, ok := e.parent[t]
		if !ok {
			return t
		}
		t = p
	}
}

func (e *refEqEngine) enqueue(t refEqTrig) {
	k := t.key()
	if _, ok := e.seen[k]; ok {
		return
	}
	e.seen[k] = struct{}{}
	e.queue = append(e.queue, t)
}

// seedAll enumerates every trigger on the current instance in the engine's
// canonical order: TGDs in rule order (sorted homomorphisms each), then
// EGDs likewise.
func (e *refEqEngine) seedAll() {
	for i, t := range e.set.TGDs {
		homs := logic.AllHomomorphisms(t.Body, nil, e.inst)
		logic.SortSubstitutions(homs)
		for _, h := range homs {
			e.enqueue(refEqTrig{idx: i, h: h.Restrict(t.BodyVars())})
		}
	}
	for j, eg := range e.set.EGDs {
		homs := logic.AllHomomorphisms(eg.Body, nil, e.inst)
		logic.SortSubstitutions(homs)
		for _, h := range homs {
			e.enqueue(refEqTrig{isEGD: true, idx: j, h: h.Restrict(eg.BodyVars())})
		}
	}
}

// discover mirrors the engine's semi-naive delta: per rule (TGDs then
// EGDs), per body position matching the new atom's predicate, sorted
// pinned homomorphisms.
func (e *refEqEngine) discover(atom logic.Atom) {
	for i, t := range e.set.TGDs {
		for _, tr := range pinnedHoms(t.Body, atom, e.inst) {
			e.enqueue(refEqTrig{idx: i, h: tr.Restrict(t.BodyVars())})
		}
	}
	for j, eg := range e.set.EGDs {
		for _, tr := range pinnedHoms(eg.Body, atom, e.inst) {
			e.enqueue(refEqTrig{isEGD: true, idx: j, h: tr.Restrict(eg.BodyVars())})
		}
	}
}

// pinnedHoms enumerates homomorphisms of the body that use atom at some
// body position, per position in sorted order (TriggersInvolving's order).
func pinnedHoms(body []logic.Atom, atom logic.Atom, src logic.AtomSource) []logic.Substitution {
	var out []logic.Substitution
	for j, bodyAtom := range body {
		if bodyAtom.Pred != atom.Pred {
			continue
		}
		base := logic.NewSubstitution()
		ok := true
		for k, v := range bodyAtom.Args {
			if bound, has := base.Lookup(v); has {
				if bound != atom.Args[k] {
					ok = false
					break
				}
				continue
			}
			base.Bind(v, atom.Args[k])
		}
		if !ok {
			continue
		}
		rest := make([]logic.Atom, 0, len(body)-1)
		rest = append(rest, body[:j]...)
		rest = append(rest, body[j+1:]...)
		homs := logic.AllHomomorphisms(rest, base, src)
		logic.SortSubstitutions(homs)
		out = append(out, homs...)
	}
	return out
}

func (e *refEqEngine) loop() {
	for {
		if e.dirty && len(e.queue) == 0 {
			e.flush()
		}
		if len(e.queue) == 0 {
			break
		}
		if e.opts.MaxSteps > 0 && e.run.StepsTaken >= e.opts.MaxSteps {
			e.stopWith(StepBudget)
			return
		}
		if e.opts.MaxAtoms > 0 && e.inst.Len() >= e.opts.MaxAtoms {
			e.stopWith(AtomBudget)
			return
		}
		tr := e.queue[0]
		e.queue = e.queue[1:]
		if tr.isEGD {
			eg := e.set.EGDs[tr.idx]
			x := e.find(tr.h.ApplyTerm(eg.X))
			y := e.find(tr.h.ApplyTerm(eg.Y))
			if x == y {
				continue
			}
			if !e.applyEGD(tr.idx, tr.h, x, y) {
				e.stopWith(EGDFailure)
				return
			}
			continue
		}
		if e.dirty {
			e.flush()
			continue
		}
		t := e.set.TGDs[tr.idx]
		trig := Trigger{TGDIndex: tr.idx, TGD: t, H: tr.h}
		if !IsActive(trig, e.inst) {
			continue
		}
		e.apply(trig)
	}
	e.run.Reason = Fixpoint
}

func (e *refEqEngine) stopWith(r StopReason) {
	if e.dirty {
		e.flush()
	}
	e.run.Reason = r
}

func (e *refEqEngine) applyEGD(j int, h logic.Substitution, x, y logic.Term) bool {
	var child, rep logic.Term
	switch {
	case !x.IsNull() && !y.IsNull():
		e.run.Conflict = &EGDConflict{EGD: e.set.EGDs[j], H: h, X: x, Y: y}
		return false
	case x.IsNull() && !y.IsNull():
		child, rep = x, y
	case !x.IsNull() && y.IsNull():
		child, rep = y, x
	default:
		if e.nullSeq[x] < e.nullSeq[y] {
			child, rep = y, x
		} else {
			child, rep = x, y
		}
	}
	e.parent[child] = rep
	e.dirty = true
	e.eqSinceFlush++
	e.run.StepsTaken++
	e.run.EqualitySteps++
	if !e.opts.DropSteps {
		e.run.EqSteps = append(e.run.EqSteps, EqStep{
			EGDIndex: j,
			EGD:      e.set.EGDs[j],
			H:        h,
			Unified:  child,
			Rep:      rep,
			AtStep:   e.run.StepsTaken - 1,
		})
	}
	return true
}

func (e *refEqEngine) flush() {
	old := e.inst.Atoms()
	fresh := instance.New()
	for _, a := range old {
		args := make([]logic.Term, len(a.Args))
		for i, t := range a.Args {
			args[i] = e.find(t)
		}
		fresh.Add(logic.Atom{Pred: a.Pred, Args: args})
	}
	removed := len(old) - fresh.Len()
	if !e.opts.DropSteps {
		for i := len(e.run.EqSteps) - e.eqSinceFlush; i < len(e.run.EqSteps); i++ {
			e.run.EqSteps[i].Removed = removed
		}
	}
	e.inst = fresh
	e.dirty = false
	e.eqSinceFlush = 0
	e.queue = e.queue[:0]
	e.seen = make(map[string]struct{})
	e.seedAll()
}

func (e *refEqEngine) apply(tr Trigger) {
	result := e.refResult(tr)
	var added []logic.Atom
	for _, a := range result {
		if e.inst.Add(a) {
			added = append(added, a)
		}
	}
	e.run.StepsTaken++
	if !e.opts.DropSteps {
		e.run.Steps = append(e.run.Steps, Step{Trigger: tr, Result: result, Added: added})
	}
	for _, a := range added {
		e.discover(a)
	}
}

// refResult is Result with null creation-order tracking (the reference's
// stand-in for "older TermID wins").
func (e *refEqEngine) refResult(tr Trigger) []logic.Atom {
	out := Result(tr, e.nulls)
	for _, a := range out {
		for _, t := range a.Args {
			if t.IsNull() {
				if _, ok := e.nullSeq[t]; !ok {
					e.nullSeq[t] = e.nextSeq
					e.nextSeq++
				}
			}
		}
	}
	return out
}

// sameEGDRun compares the interned engine's run against the EGD oracle:
// stop reason, step counts, the equality-step sequence (EGD index, merged
// pair orientation, per-batch removal totals), the conflict, and the final
// instance atom for atom in insertion order.
func sameEGDRun(t *testing.T, label string, got, want *Run) {
	t.Helper()
	if got.Reason != want.Reason {
		t.Errorf("%s: reason = %v, want %v", label, got.Reason, want.Reason)
		return
	}
	if got.StepsTaken != want.StepsTaken || got.EqualitySteps != want.EqualitySteps {
		t.Errorf("%s: steps = %d/%d eq, want %d/%d", label,
			got.StepsTaken, got.EqualitySteps, want.StepsTaken, want.EqualitySteps)
	}
	if len(got.EqSteps) != len(want.EqSteps) {
		t.Errorf("%s: %d equality steps recorded, want %d", label, len(got.EqSteps), len(want.EqSteps))
		return
	}
	for i := range got.EqSteps {
		g, w := got.EqSteps[i], want.EqSteps[i]
		if g.EGDIndex != w.EGDIndex || g.Unified != w.Unified || g.Rep != w.Rep ||
			g.Removed != w.Removed || g.AtStep != w.AtStep {
			t.Errorf("%s: eq step %d = (%d, %v<-%v, removed %d, at %d), want (%d, %v<-%v, removed %d, at %d)",
				label, i, g.EGDIndex, g.Rep, g.Unified, g.Removed, g.AtStep,
				w.EGDIndex, w.Rep, w.Unified, w.Removed, w.AtStep)
			return
		}
	}
	if (got.Conflict == nil) != (want.Conflict == nil) {
		t.Errorf("%s: conflict %v, want %v", label, got.Conflict, want.Conflict)
	} else if got.Conflict != nil &&
		(got.Conflict.X != want.Conflict.X || got.Conflict.Y != want.Conflict.Y ||
			got.Conflict.EGD.Label != want.Conflict.EGD.Label) {
		t.Errorf("%s: conflict %v, want %v", label, got.Conflict, want.Conflict)
	}
	ga, wa := got.Final.Atoms(), want.Final.Atoms()
	if len(ga) != len(wa) {
		t.Errorf("%s: final size = %d, want %d\n got %v\nwant %v", label, len(ga), len(wa), got.Final, want.Final)
		return
	}
	for i := range ga {
		if !ga[i].Equal(wa[i]) {
			t.Errorf("%s: final atom %d = %v, want %v", label, i, ga[i], wa[i])
			return
		}
	}
}

// egdDifferentialPrograms are the fixed workloads for the EGD oracle pin.
func egdDifferentialPrograms() map[string]string {
	return map[string]string{
		"key-unify":  keyUnifyProgram,
		"merge-join": mergeJoinProgram,
		"fail": `
			R(a,b). R(a,c).
			key: R(X,Y), R(X,Z) -> Y = Z.`,
		"three-nulls": `
			P(a).
			P(X) -> R(X,U), R(X,V), R(X,W).
			key: R(X,Y), R(X,Z) -> Y = Z.`,
		"chain": `
			A(a). B(a). C(a).
			A(X) -> F(X,W).
			B(X) -> G(X,W).
			C(X) -> H(X,W).
			e1: F(X,Y), G(X,Z) -> Y = Z.
			e2: G(X,Y), H(X,Z) -> Y = Z.
			F(X,Y), H(X,Y) -> Agree(X).`,
		"egd-then-diverge": `
			R(a,b). L(a).
			L(X) -> R(X,W).
			key: R(X,Y), R(X,Z) -> Y = Z.
			R(X,Y) -> R(Y,Z).`,
	}
}

// TestEGDDifferentialFixedPrograms pins the interned union-find engine
// against the naive oracle on handcrafted TGD+EGD programs, both namings.
func TestEGDDifferentialFixedPrograms(t *testing.T) {
	for name, src := range egdDifferentialPrograms() {
		prog := parser.MustParse(src)
		for _, naming := range []NullNaming{StructuralNaming, CounterNaming} {
			opts := Options{Variant: Restricted, Naming: naming, MaxSteps: 200, MaxAtoms: 300}
			label := fmt.Sprintf("%s/%v", name, naming)
			got := RunChase(prog.Database, prog.TGDs, opts)
			want := referenceEGDRunChase(prog.Database, prog.TGDs, opts)
			sameEGDRun(t, label, got, want)
		}
	}
}

// TestEGDDifferentialRandomPrograms fuzzes the oracle equivalence: random
// datalog programs extended with two existential rules feeding distinct
// predicates, an EGD joining their inventions (null-null merges), a key
// EGD over a base binary predicate (possible constant-constant failures),
// and a rule only enabled by a merge.
func TestEGDDifferentialRandomPrograms(t *testing.T) {
	egdSuffix := `
		P0(X) -> F(X,W).
		P1(X,Y) -> G(X,W).
		e1: F(X,Y), G(X,Z) -> Y = Z.
		e2: P1(X,Y), P1(X,Z) -> Y = Z.
		F(X,Y), G(Z,Y) -> H(X,Z).
	`
	for seed := int64(0); seed < 60; seed++ {
		prog := randomDatalog(seed)
		src := parser.Print(prog) + egdSuffix
		p2, err := parser.Parse(src)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, naming := range []NullNaming{StructuralNaming, CounterNaming} {
			opts := Options{Variant: Restricted, Naming: naming, MaxSteps: 400, MaxAtoms: 500}
			label := fmt.Sprintf("seed%d/%v", seed, naming)
			got := RunChase(p2.Database, p2.TGDs, opts)
			want := referenceEGDRunChase(p2.Database, p2.TGDs, opts)
			sameEGDRun(t, label, got, want)
		}
	}
}
