package chase_test

// Property tests for the persistent cache tier's visible contract: a
// snapshot→restore→warm run is indistinguishable from an in-process warm
// run — and from the cold run itself — over random workload programs. The
// external test package lets the guarded decider participate (chase cannot
// import it), so the property covers both the ∀∃ search outcomes and the
// guarded seed kinds flowing through one snapshot.

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"airct/internal/chase"
	"airct/internal/guarded"
	"airct/internal/workload"
)

// existsSignature renders everything a caller can observe about an
// ExistsResult, including the witness derivation's trigger identities.
func existsSignature(r *chase.ExistsResult) string {
	sig := fmt.Sprintf("found=%t exhausted=%t cancelled=%t states=%d stats=%+v",
		r.Found, r.Exhausted, r.Cancelled, r.StatesVisited, r.Stats)
	for _, tr := range r.Derivation {
		sig += " " + tr.String()
	}
	return sig
}

// Property: for random existential programs, the ∀∃ search is bit-identical
// across {cold, in-process warm, snapshot→restore→warm}, and the restored
// run actually hits the cache instead of re-searching.
func TestQuickSnapshotRestoreEqualsWarm(t *testing.T) {
	restoredHits := 0
	f := func(seed int64) bool {
		prog := workload.RandomExistentialProgram(seed % 4000)
		opts := chase.SearchOptions{MaxStates: 400, MaxAtoms: 60, Strategy: chase.SmallestFirst}

		cache := chase.NewCache()
		opts.Cache = cache
		cold := chase.SearchTerminatingDerivation(prog.Database, prog.TGDs, opts)
		warm := chase.SearchTerminatingDerivation(prog.Database, prog.TGDs, opts)

		var buf bytes.Buffer
		if err := cache.Snapshot(&buf); err != nil {
			t.Logf("seed %d: Snapshot: %v", seed, err)
			return false
		}
		restored, rep, err := chase.LoadCache(bytes.NewReader(buf.Bytes()))
		if err != nil || rep.Skipped > 0 || rep.Truncated {
			t.Logf("seed %d: LoadCache: %v, report %+v", seed, err, rep)
			return false
		}
		opts.Cache = restored
		snap := chase.SearchTerminatingDerivation(prog.Database, prog.TGDs, opts)

		want := existsSignature(cold)
		if got := existsSignature(warm); got != want {
			t.Logf("seed %d: in-process warm drifted:\n  cold %s\n  warm %s", seed, want, got)
			return false
		}
		if got := existsSignature(snap); got != want {
			t.Logf("seed %d: snapshot warm drifted:\n  cold %s\n  snap %s", seed, want, got)
			return false
		}
		if restored.Stats().Hits > 0 {
			restoredHits++
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(11))}); err != nil {
		t.Error(err)
	}
	if restoredHits < 20 {
		t.Fatalf("only %d restored runs hit the snapshot cache; the tier is not warming", restoredHits)
	}
}

// Property: a guarded Decide warmed from a snapshot of another process's
// cache (modelled as snapshot→restore in-process) returns the identical
// verdict and skips the chase batteries via seed-kind hits.
func TestQuickSnapshotRestoreWarmsGuardedDecide(t *testing.T) {
	checked := 0
	f := func(seed int64) bool {
		set := workload.RandomTGDSet(seed%4000, workload.RandomOptions{Rules: 3})
		if !set.IsGuarded() {
			return true
		}
		cache := chase.NewCache()
		base, err := guarded.Decide(set, guarded.DecideOptions{MaxSteps: 300, Cache: cache})
		if err != nil {
			return false
		}

		var buf bytes.Buffer
		if err := cache.Snapshot(&buf); err != nil {
			return false
		}
		restored, rep, err := chase.LoadCache(bytes.NewReader(buf.Bytes()))
		if err != nil || rep.Skipped > 0 || rep.Truncated {
			return false
		}
		v, err := guarded.Decide(set, guarded.DecideOptions{MaxSteps: 300, Cache: restored})
		if err != nil {
			return false
		}
		if v.Terminates != base.Terminates || v.Method != base.Method ||
			v.Evidence != base.Evidence || v.SeedsTried != base.SeedsTried || v.Budget != base.Budget {
			t.Logf("seed %d: snapshot-warmed verdict drifted: %+v vs %+v", seed, v, base)
			return false
		}
		if (v.Witness == nil) != (base.Witness == nil) ||
			(v.Witness != nil && v.Witness.String() != base.Witness.String()) {
			t.Logf("seed %d: snapshot-warmed witness drifted", seed)
			return false
		}
		if base.Method != "weak-acyclicity" {
			if restored.Stats().Hits == 0 {
				t.Logf("seed %d: snapshot-warmed Decide missed the cache", seed)
				return false
			}
			checked++
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(13))}); err != nil {
		t.Error(err)
	}
	if checked < 5 {
		t.Fatalf("only %d seed-searching decisions exercised the snapshot; generator too narrow", checked)
	}
}
