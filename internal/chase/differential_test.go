package chase

import (
	"fmt"
	"math/rand"
	"testing"

	"airct/internal/instance"
	"airct/internal/logic"
	"airct/internal/parser"
	"airct/internal/tgds"
)

// referenceRunChase is the pre-interning engine, kept verbatim as the
// behavioral oracle: string-keyed trigger dedup (Trigger.Key /
// FrontierKey), the generic map-based homomorphism search via the public
// AllTriggers / TriggersInvolving / IsActive, a NullFactory interning null
// names by trigger-key strings, and the O(n) slice-shift queue. The
// interned engine must reproduce its runs byte for byte: same Final
// instance in the same insertion order, same Steps, same Stats, same
// StopReason.
func referenceRunChase(db *instance.Database, set *tgds.Set, opts Options) *Run {
	e := &refEngine{
		set:             set,
		opts:            opts,
		inst:            db.Instance(),
		nulls:           NewNullFactory(opts.Naming),
		seen:            make(map[string]struct{}),
		appliedFrontier: make(map[string]struct{}),
		run:             &Run{Options: opts, Set: set, Database: db},
	}
	if opts.Strategy == Random {
		e.rng = rand.New(rand.NewSource(opts.Seed))
	}
	for _, tr := range AllTriggers(set, e.inst) {
		e.enqueue(tr)
	}
	e.loop()
	e.run.Final = e.inst
	return e.run
}

type refEngine struct {
	set             *tgds.Set
	opts            Options
	inst            *instance.Instance
	nulls           *NullFactory
	queue           []Trigger
	seen            map[string]struct{}
	appliedFrontier map[string]struct{}
	rng             *rand.Rand
	run             *Run
}

func (e *refEngine) enqueue(tr Trigger) {
	key := tr.Key()
	if _, ok := e.seen[key]; ok {
		return
	}
	e.seen[key] = struct{}{}
	e.run.Stats.TriggersEnqueued++
	e.queue = append(e.queue, tr)
}

func (e *refEngine) pop() Trigger {
	var i int
	switch e.opts.Strategy {
	case LIFO:
		i = len(e.queue) - 1
	case Random:
		i = e.rng.Intn(len(e.queue))
	default:
		i = 0
	}
	tr := e.queue[i]
	e.queue = append(e.queue[:i], e.queue[i+1:]...)
	return tr
}

func (e *refEngine) applicable(tr Trigger) bool {
	switch e.opts.Variant {
	case Restricted:
		e.run.Stats.ActivityChecks++
		return IsActive(tr, e.inst)
	case SemiOblivious:
		_, done := e.appliedFrontier[tr.FrontierKey()]
		return !done
	default:
		return true
	}
}

func (e *refEngine) loop() {
	for len(e.queue) > 0 {
		if e.opts.MaxSteps > 0 && e.run.StepsTaken >= e.opts.MaxSteps {
			e.run.Reason = StepBudget
			return
		}
		if e.opts.MaxAtoms > 0 && e.inst.Len() >= e.opts.MaxAtoms {
			e.run.Reason = AtomBudget
			return
		}
		tr := e.pop()
		if !e.applicable(tr) {
			e.run.Stats.TriggersSkipped++
			continue
		}
		e.apply(tr)
	}
	e.run.Reason = Fixpoint
}

func (e *refEngine) apply(tr Trigger) {
	result := Result(tr, e.nulls)
	added := make([]logic.Atom, 0, len(result))
	for _, a := range result {
		if e.inst.Add(a) {
			added = append(added, a)
		}
	}
	if e.opts.Variant == SemiOblivious {
		e.appliedFrontier[tr.FrontierKey()] = struct{}{}
	}
	e.run.StepsTaken++
	if !e.opts.DropSteps {
		e.run.Steps = append(e.run.Steps, Step{Trigger: tr, Result: result, Added: added})
	}
	for _, a := range added {
		for _, nt := range TriggersInvolving(e.set, e.inst, a) {
			e.enqueue(nt)
		}
	}
}

// sameRun asserts byte-identical runs: Final atom sequence (insertion
// order, not just set equality), Steps (trigger keys, result and added atom
// sequences), Stats, StepsTaken, and StopReason.
func sameRun(t *testing.T, label string, got, want *Run) {
	t.Helper()
	if got.Reason != want.Reason {
		t.Errorf("%s: reason = %v, want %v", label, got.Reason, want.Reason)
	}
	if got.StepsTaken != want.StepsTaken {
		t.Errorf("%s: steps taken = %d, want %d", label, got.StepsTaken, want.StepsTaken)
	}
	if got.Stats != want.Stats {
		t.Errorf("%s: stats = %+v, want %+v", label, got.Stats, want.Stats)
	}
	ga, wa := got.Final.Atoms(), want.Final.Atoms()
	if len(ga) != len(wa) {
		t.Errorf("%s: final size = %d, want %d", label, len(ga), len(wa))
		return
	}
	for i := range ga {
		if !ga[i].Equal(wa[i]) {
			t.Errorf("%s: final atom %d = %v, want %v", label, i, ga[i], wa[i])
			return
		}
	}
	if len(got.Steps) != len(want.Steps) {
		t.Errorf("%s: %d steps, want %d", label, len(got.Steps), len(want.Steps))
		return
	}
	for i := range got.Steps {
		g, w := got.Steps[i], want.Steps[i]
		if g.Trigger.Key() != w.Trigger.Key() {
			t.Errorf("%s: step %d trigger = %s, want %s", label, i, g.Trigger.Key(), w.Trigger.Key())
			return
		}
		if !sameAtoms(g.Result, w.Result) || !sameAtoms(g.Added, w.Added) {
			t.Errorf("%s: step %d atoms differ:\n got %v / %v\nwant %v / %v",
				label, i, g.Result, g.Added, w.Result, w.Added)
			return
		}
	}
}

func sameAtoms(a, b []logic.Atom) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

// differentialPrograms are the workloads the interned engine is pinned on:
// the paper's examples, joins with repeated variables, multi-head TGDs,
// multiple existentials per head, and diverging programs cut by budgets.
func differentialPrograms() map[string]string {
	return map[string]string{
		"intro":     introProgram,
		"example32": example32,
		"closure": `
			E(n1,n2). E(n2,n3). E(n3,n4). E(n4,n1).
			E(X,Y), E(Y,Z) -> E(X,Z).`,
		"exchange": `
			R(a,b). S(b,c). R(b,a).
			t1: S(X,Y) -> T(X).
			t2: R(X,Y), T(Y) -> P(X,Y).
			t3: P(X,Y) -> Q(Y).
			t4: Q(X) -> P(X,W).`,
		"multihead": `
			R(a,b,b).
			mh1: R(X,Y,Y) -> R(X,Z,Y), R(Z,Y,Y).
			mh2: R(X,Y,Z) -> R(Z,Z,Z).`,
		"twoexist": `
			A(a). A(b).
			s1: A(X) -> R(X,Y,Z).
			s2: R(X,Y,Z) -> B(Y).
			s3: B(X) -> A(X).`,
		"diverging-ladder": `
			G1(a,b). S(a).
			r1: G1(X,Y), S(X) -> G2(Y,Z).
			t1: G1(X,Y) -> S(Y).
			r2: G2(X,Y), S(X) -> G1(Y,Z).
			t2: G2(X,Y) -> S(Y).`,
		"selfjoin": `
			E(a,a). E(a,b). E(b,a).
			s1: E(X,X) -> F(X).
			s2: E(X,Y), E(Y,X) -> E(X,X).
			s3: F(X) -> E(X,W).`,
	}
}

// TestDifferentialEngineMatchesReference pins the interned engine against
// the string-keyed reference across every variant × strategy × program,
// with and without step recording.
func TestDifferentialEngineMatchesReference(t *testing.T) {
	for name, src := range differentialPrograms() {
		prog := parser.MustParse(src)
		for _, variant := range []Variant{Restricted, Oblivious, SemiOblivious} {
			for _, strat := range []Strategy{FIFO, LIFO, Random} {
				for _, naming := range []NullNaming{StructuralNaming, CounterNaming} {
					opts := Options{
						Variant:  variant,
						Strategy: strat,
						Naming:   naming,
						Seed:     17,
						MaxSteps: 300,
						MaxAtoms: 400,
					}
					label := fmt.Sprintf("%s/%v/%v/%v", name, variant, strat, naming)
					got := RunChase(prog.Database, prog.TGDs, opts)
					want := referenceRunChase(prog.Database, prog.TGDs, opts)
					sameRun(t, label, got, want)
				}
			}
		}
	}
}

// TestDifferentialQuickRandomPrograms fuzzes the equivalence on random
// datalog programs (plus an existential rule), FIFO and Random strategies.
func TestDifferentialQuickRandomPrograms(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		prog := randomDatalog(seed)
		src := parser.Print(prog) + "\nP0(X) -> Fresh(X, W).\n"
		p2, err := parser.Parse(src)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, variant := range []Variant{Restricted, Oblivious, SemiOblivious} {
			for _, strat := range []Strategy{FIFO, Random} {
				opts := Options{
					Variant:  variant,
					Strategy: strat,
					Seed:     seed,
					MaxSteps: 400,
					MaxAtoms: 500,
				}
				label := fmt.Sprintf("seed%d/%v/%v", seed, variant, strat)
				got := RunChase(p2.Database, p2.TGDs, opts)
				want := referenceRunChase(p2.Database, p2.TGDs, opts)
				sameRun(t, label, got, want)
			}
		}
	}
}
