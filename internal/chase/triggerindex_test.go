package chase

// Differential and property tests for the delta-maintained trigger index
// (triggerindex.go). Two angles:
//
//   - ground truth at every expansion: the onExpand hook pins the index's
//     trigger list — order included — against the public
//     ActiveTriggers(set, inst) enumeration on the very instance being
//     expanded, across strategies and workloads;
//   - the fullRescan baseline: with the index disabled the search runs the
//     pre-index full re-enumeration, and the two modes must agree
//     bit-identically on verdicts, StatesVisited, expansion counts and the
//     witness itself (sequentially) and on verdicts/full-sweep closures
//     (parallel, any worker count) — the acceptance bar of ISSUE 4;
//   - inheritance/repair as a property: along random derivation walks of
//     random TGD sets (datalog and existential), repairing the parent's
//     index with the delta must equal rebuilding from scratch, step after
//     step.

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"airct/internal/instance"
	"airct/internal/logic"
	"airct/internal/parser"
	"airct/internal/workload"
)

// indexGroundTruthPrograms: the differential corpus plus the deep stage
// grids the benchmarks run on (kept small enough for an every-expansion
// comparison against the quadratic public enumeration).
func indexGroundTruthPrograms() []struct {
	name      string
	src       string
	maxStates int
	maxAtoms  int
} {
	progs := append([]struct {
		name      string
		src       string
		maxStates int
		maxAtoms  int
	}{}, differentialExistsPrograms...)
	progs = append(progs, struct {
		name      string
		src       string
		maxStates int
		maxAtoms  int
	}{"stage-grid-5", parser.Print(workload.StageGrid(5)), 0, 0})
	return progs
}

// TestTriggerIndexMatchesActiveTriggersGroundTruth pins the index against
// ActiveTriggers(set, inst) at every expansion, across strategies and the
// corpus: same triggers, same canonical order.
func TestTriggerIndexMatchesActiveTriggersGroundTruth(t *testing.T) {
	for _, tc := range indexGroundTruthPrograms() {
		for _, strat := range []SearchStrategy{SmallestFirst, BreadthFirst, DepthFirst} {
			t.Run(tc.name+"/"+strat.String(), func(t *testing.T) {
				prog := parser.MustParse(tc.src)
				expansions := 0
				opts := SearchOptions{
					MaxStates: tc.maxStates,
					MaxAtoms:  tc.maxAtoms,
					Strategy:  strat,
					onExpand: func(inst *instance.Instance, active []Trigger) {
						expansions++
						want := ActiveTriggers(prog.TGDs, inst)
						if len(active) != len(want) {
							t.Fatalf("expansion %d: %d active triggers, ground truth %d\nindex: %s\ntruth: %s",
								expansions, len(active), len(want), FormatTriggers(active), FormatTriggers(want))
						}
						for i := range want {
							if CompareTriggers(active[i], want[i]) != 0 {
								t.Fatalf("expansion %d, position %d: index has %s, ground truth %s",
									expansions, i, active[i], want[i])
							}
						}
					},
				}
				res := SearchTerminatingDerivation(prog.Database, prog.TGDs, opts)
				if expansions != res.Stats.StatesExpanded {
					t.Fatalf("hook saw %d expansions, stats counted %d", expansions, res.Stats.StatesExpanded)
				}
				if res.Stats.IndexRebuilds != 1 {
					t.Errorf("sequential search must rebuild only the root index, got %d rebuilds", res.Stats.IndexRebuilds)
				}
				if res.Stats.IndexRepairs != res.Stats.StatesExpanded-1 {
					t.Errorf("repairs = %d, want %d (every non-root expansion)",
						res.Stats.IndexRepairs, res.Stats.StatesExpanded-1)
				}
			})
		}
	}
}

// TestSearchDeltaIndexMatchesFullRescan pins the delta-maintained index
// against the full re-enumeration baseline bit-identically: sequentially the
// two modes must produce the same verdict, the same StatesVisited and
// expansion counts, and the very same witness (the sequential search is
// deterministic); in parallel, verdicts must agree across worker counts and
// full-sweep closures must match, and every witness must replay.
func TestSearchDeltaIndexMatchesFullRescan(t *testing.T) {
	for _, tc := range indexGroundTruthPrograms() {
		t.Run(tc.name, func(t *testing.T) {
			prog := parser.MustParse(tc.src)
			for _, strat := range []SearchStrategy{SmallestFirst, BreadthFirst, DepthFirst} {
				base := SearchTerminatingDerivation(prog.Database, prog.TGDs, SearchOptions{
					MaxStates: tc.maxStates, MaxAtoms: tc.maxAtoms, Strategy: strat, fullRescan: true,
				})
				delta := SearchTerminatingDerivation(prog.Database, prog.TGDs, SearchOptions{
					MaxStates: tc.maxStates, MaxAtoms: tc.maxAtoms, Strategy: strat,
				})
				if delta.Found != base.Found || delta.Exhausted != base.Exhausted {
					t.Fatalf("%v: verdict drifted: (%v,%v) vs baseline (%v,%v)",
						strat, delta.Found, delta.Exhausted, base.Found, base.Exhausted)
				}
				if delta.StatesVisited != base.StatesVisited {
					t.Errorf("%v: StatesVisited = %d, baseline %d", strat, delta.StatesVisited, base.StatesVisited)
				}
				if delta.Stats.StatesExpanded != base.Stats.StatesExpanded {
					t.Errorf("%v: StatesExpanded = %d, baseline %d",
						strat, delta.Stats.StatesExpanded, base.Stats.StatesExpanded)
				}
				if len(delta.Derivation) != len(base.Derivation) {
					t.Fatalf("%v: witness lengths differ: %d vs %d", strat, len(delta.Derivation), len(base.Derivation))
				}
				for i := range delta.Derivation {
					if CompareTriggers(delta.Derivation[i], base.Derivation[i]) != 0 {
						t.Fatalf("%v: witness step %d differs: %s vs %s",
							strat, i, delta.Derivation[i], base.Derivation[i])
					}
				}
				if delta.Found {
					replayWitness(t, prog, delta.Derivation, tc.name)
				}
			}
			// Parallel: verdict invariance between the two modes at every
			// worker count; full-sweep closures are schedule-independent.
			seqBase := SearchTerminatingDerivation(prog.Database, prog.TGDs, SearchOptions{
				MaxStates: tc.maxStates, MaxAtoms: tc.maxAtoms,
			})
			for _, w := range []int{2, 4} {
				for _, rescan := range []bool{false, true} {
					par := SearchTerminatingDerivation(prog.Database, prog.TGDs, SearchOptions{
						MaxStates: tc.maxStates, MaxAtoms: tc.maxAtoms, Workers: w, Seed: 11, fullRescan: rescan,
					})
					if par.Found != seqBase.Found {
						t.Fatalf("w=%d rescan=%v: Found = %v, sequential %v", w, rescan, par.Found, seqBase.Found)
					}
					if !par.Found && par.Exhausted != seqBase.Exhausted {
						t.Errorf("w=%d rescan=%v: Exhausted = %v, sequential %v", w, rescan, par.Exhausted, seqBase.Exhausted)
					}
					if !seqBase.Found && seqBase.Exhausted && par.StatesVisited != seqBase.StatesVisited {
						t.Errorf("w=%d rescan=%v: full-sweep StatesVisited = %d, sequential %d",
							w, rescan, par.StatesVisited, seqBase.StatesVisited)
					}
					if par.Found {
						replayWitness(t, prog, par.Derivation, fmt.Sprintf("%s/w=%d", tc.name, w))
					}
				}
			}
		})
	}
}

// randomExistentialProgram is the shared workload generator (promoted to
// internal/workload; see randomDatalog in quick_test.go).
func randomExistentialProgram(seed int64) *parser.Program {
	return workload.RandomExistentialProgram(seed)
}

// walkAndCheckRepairs drives an expander along a random derivation walk of
// the program, repairing the index at each step and comparing it against a
// from-scratch rebuild: identical per-TGD trigger IDs (the trig table dedups
// tuples, so equal tuples mean equal IDs), identical totals.
func walkAndCheckRepairs(t testing.TB, prog *parser.Program, rng *rand.Rand, maxSteps int) bool {
	e := newExpander(prog.Database, prog.TGDs)
	inst := instance.NewWithInterner(e.itab)
	e.addRootTo(inst)
	idx := e.buildIndex(inst)
	for step := 0; step < maxSteps; step++ {
		var all []logic.TupleID
		for _, ids := range idx.perTGD {
			all = append(all, ids...)
		}
		if len(all) == 0 {
			return true // fixpoint
		}
		pick := all[rng.Intn(len(all))]
		tup := e.trig.Tuple(pick)
		tgd := int(tup[0])
		e.childState(inst, logic.Fingerprint{}, pick, tgd, tup[1:])
		deltaLo := int32(inst.Len())
		e.addDeltaTo(inst, e.deltaBuf)
		if int32(inst.Len()) == deltaLo {
			t.Errorf("active trigger added no atoms — activity check broken")
			return false
		}
		repaired := e.repairIndex(idx, inst, deltaLo)
		rebuilt := e.buildIndex(inst)
		if repaired.total != rebuilt.total {
			t.Errorf("step %d: repaired total %d, rebuilt %d", step, repaired.total, rebuilt.total)
			return false
		}
		for i := range repaired.perTGD {
			a, b := repaired.perTGD[i], rebuilt.perTGD[i]
			if len(a) != len(b) {
				t.Errorf("step %d, TGD %d: repaired %d triggers, rebuilt %d", step, i, len(a), len(b))
				return false
			}
			for k := range a {
				if a[k] != b[k] {
					t.Errorf("step %d, TGD %d, pos %d: repaired trigger %v, rebuilt %v",
						step, i, k, e.trig.Tuple(a[k]), e.trig.Tuple(b[k]))
					return false
				}
			}
		}
		idx = repaired
	}
	return true
}

// TestQuickIndexRepairMatchesRebuild is the inheritance/repair property:
// across random TGD sets — pure datalog and existential — and random
// derivation walks, the repaired index always equals the rebuilt one.
func TestQuickIndexRepairMatchesRebuild(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		prog := randomDatalog(seed % 5000)
		if !walkAndCheckRepairs(t, prog, rng, 15) {
			return false
		}
		prog = randomExistentialProgram(seed % 5000)
		return walkAndCheckRepairs(t, prog, rng, 12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
