package critical

import (
	"testing"

	"airct/internal/chase"
	"airct/internal/logic"
	"airct/internal/parser"
)

func TestInstanceShape(t *testing.T) {
	set, _ := NotCriticalWitness()
	db := Instance(set)
	// Schema is {S/1, R/2}: two all-c facts.
	if db.Len() != 2 {
		t.Fatalf("critical db = %v", db)
	}
	if !db.Has(logic.MustAtom("S", TheConstant)) {
		t.Error("S(c) missing")
	}
	if !db.Has(logic.MustAtom("R", TheConstant, TheConstant)) {
		t.Error("R(c,c) missing")
	}
}

func TestCriticalDecidesOblivious(t *testing.T) {
	// Oblivious-terminating set: saturates on D*.
	term := parser.MustParse(`A(X) -> B(X). B(X) -> C(X).`).TGDs
	ok, _ := ObliviousTerminatesOnCritical(term, 1000)
	if !ok {
		t.Error("datalog set must saturate obliviously on D*")
	}
	// Oblivious-diverging set (the intro example) diverges on D*.
	div := parser.MustParse(`R(X,Y) -> R(X,Z).`).TGDs
	ok, _ = ObliviousTerminatesOnCritical(div, 1000)
	if ok {
		t.Error("intro TGD must diverge obliviously on D*")
	}
}

func TestCriticalFailsForRestricted(t *testing.T) {
	// The Section 1.2 observation: D* terminates restrictedly while another
	// database diverges.
	set, db := NotCriticalWitness()
	okCrit, runCrit := RestrictedTerminatesOnCritical(set, 1000)
	if !okCrit {
		t.Fatalf("restricted chase on D* must terminate, reason %v", runCrit.Reason)
	}
	if runCrit.StepsTaken != 0 {
		t.Errorf("D* already satisfies the set; %d steps taken", runCrit.StepsTaken)
	}
	run := chase.RunChase(db, set, chase.Options{Variant: chase.Restricted, MaxSteps: 500})
	if run.Terminated() {
		t.Error("the witness database must diverge under the restricted chase")
	}
}

func TestIntroExampleRestrictedOnCritical(t *testing.T) {
	// Intro example: restricted chase terminates on D* as well — and indeed
	// on every database (the TGD can never be violated by an R-fact).
	set := parser.MustParse(`R(X,Y) -> R(X,Z).`).TGDs
	ok, run := RestrictedTerminatesOnCritical(set, 100)
	if !ok || run.StepsTaken != 0 {
		t.Errorf("restricted chase on D* must stop at once: ok=%v steps=%d", ok, run.StepsTaken)
	}
}
