// Package critical implements the critical database D* of Marnette: the
// database {R(c,…,c) : R ∈ sch(T)} over a single fresh constant. For the
// *oblivious* chase, D* is a universal witness — some database yields an
// infinite oblivious chase iff D* does — and the known decision procedures
// for oblivious all-instances termination rest on it. Section 1.2 of the
// paper observes that D* is *not* critical for the restricted chase; this
// package also ships the standard counterexample demonstrating that, which
// the experiment suite replays.
package critical

import (
	"airct/internal/chase"
	"airct/internal/instance"
	"airct/internal/logic"
	"airct/internal/parser"
	"airct/internal/tgds"
)

// TheConstant is the single constant c populating the critical database.
var TheConstant = logic.Const("crit")

// Instance returns the critical database D* of the set: one all-c fact per
// predicate of sch(T).
func Instance(set *tgds.Set) *instance.Database {
	db := instance.NewDatabase()
	for _, p := range set.Schema().Predicates() {
		args := make([]logic.Term, p.Arity)
		for i := range args {
			args[i] = TheConstant
		}
		// Add cannot fail: all-constant atom.
		if err := db.Add(logic.NewAtom(p, args...)); err != nil {
			panic(err)
		}
	}
	return db
}

// ObliviousTerminatesOnCritical runs the oblivious chase on D* with the
// given step budget and reports whether it saturates. For the oblivious
// chase this decides all-instances termination whenever the budget is large
// enough (termination on D* implies termination everywhere; divergence on
// D* is divergence somewhere).
func ObliviousTerminatesOnCritical(set *tgds.Set, maxSteps int) (bool, *chase.Run) {
	run := chase.RunChase(Instance(set), set, chase.Options{
		Variant:   chase.Oblivious,
		MaxSteps:  maxSteps,
		DropSteps: true,
	})
	return run.Terminated(), run
}

// RestrictedTerminatesOnCritical runs the restricted chase on D* with the
// given budget. The paper's point: this does NOT decide all-instances
// restricted termination — see NotCriticalWitness.
func RestrictedTerminatesOnCritical(set *tgds.Set, maxSteps int) (bool, *chase.Run) {
	run := chase.RunChase(Instance(set), set, chase.Options{
		Variant:   chase.Restricted,
		MaxSteps:  maxSteps,
		DropSteps: true,
	})
	return run.Terminated(), run
}

// NotCriticalWitness returns a (set, database) pair witnessing that D* is
// not critical for the restricted chase: the restricted chase of D* w.r.t.
// the set terminates immediately (every head is already satisfied by the
// all-c facts), while the returned database admits an infinite restricted
// chase derivation.
//
// The set is {S(x) → ∃y R(x,y), R(x,y) → S(y)} and the database {S(a)}:
// on D* = {S(c), R(c,c)} both TGDs are satisfied, but on {S(a)} the chase
// builds R(a,n0), S(n0), R(n0,n1), … forever.
func NotCriticalWitness() (*tgds.Set, *instance.Database) {
	prog := parser.MustParse(`
		S(a).
		grow: S(X) -> R(X,Y).
		next: R(X,Y) -> S(Y).
	`)
	return prog.TGDs, prog.Database
}
