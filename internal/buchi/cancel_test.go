package buchi

import (
	"context"
	"strconv"
	"testing"
)

// chainAutomaton is a 1-symbol chain of n states with no accepting state:
// emptiness needs the full n-state exploration, which gives the ctx check a
// deterministic amount of work to interrupt.
func chainAutomaton(n int) *Automaton {
	return &Automaton{
		Alphabet: []string{"t"},
		Initial:  "0",
		Step: func(state, sym string) (string, bool) {
			i, _ := strconv.Atoi(state)
			if i+1 >= n {
				return "", false
			}
			return strconv.Itoa(i + 1), true
		},
		Accepting: func(state string) bool { return false },
	}
}

func TestExploreContextCancelledStopsIncomplete(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e := ExploreContext(ctx, chainAutomaton(10_000), 100_000)
	if e.Complete {
		t.Fatal("cancelled exploration claims completeness")
	}
	if e.Len() >= 10_000 {
		t.Errorf("cancelled exploration visited all %d states", e.Len())
	}
	if _, ok := e.NonEmpty(); ok {
		t.Error("empty-language automaton produced a lasso")
	}
}

func TestExploreContextBackgroundMatchesExplore(t *testing.T) {
	a := chainAutomaton(500)
	plain := Explore(a, 100_000)
	bg := ExploreContext(context.Background(), a, 100_000)
	if plain.Complete != bg.Complete || plain.Len() != bg.Len() {
		t.Errorf("Background-context exploration drifted: complete %v/%v, states %d/%d",
			bg.Complete, plain.Complete, bg.Len(), plain.Len())
	}
}
