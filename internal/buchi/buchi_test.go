package buchi

import (
	"strings"
	"testing"
)

// modAutomaton accepts words over {a,b} with infinitely many a's: states
// "a"/"b" remember the last symbol; accepting = "a".
func modAutomaton() *Automaton {
	return &Automaton{
		Alphabet: []string{"a", "b"},
		Initial:  "start",
		Step: func(state, sym string) (string, bool) {
			return sym, true
		},
		Accepting: func(state string) bool { return state == "a" },
	}
}

// rejectAfterB rejects any word containing b (sink), accepting = seen an a.
func rejectAfterB() *Automaton {
	return &Automaton{
		Alphabet: []string{"a", "b"},
		Initial:  "start",
		Step: func(state, sym string) (string, bool) {
			if sym == "b" {
				return "", false
			}
			return "a", true
		},
		Accepting: func(state string) bool { return state == "a" },
	}
}

// emptyAutomaton has accepting states unreachable from any cycle.
func emptyAutomaton() *Automaton {
	return &Automaton{
		Alphabet: []string{"a"},
		Initial:  "q0",
		Step: func(state, sym string) (string, bool) {
			switch state {
			case "q0":
				return "q1", true // accepting but transient
			case "q1":
				return "q2", true
			default:
				return "q2", true // non-accepting self-loop
			}
		},
		Accepting: func(state string) bool { return state == "q1" },
	}
}

func TestExploreReachableStates(t *testing.T) {
	e := Explore(modAutomaton(), 0)
	if e.Len() != 3 { // start, a, b
		t.Errorf("states = %d, want 3", e.Len())
	}
	if !e.Complete {
		t.Error("exploration must complete")
	}
}

func TestExploreRespectsBound(t *testing.T) {
	// Counter automaton with unbounded state space.
	counter := &Automaton{
		Alphabet: []string{"a"},
		Initial:  "",
		Step: func(state, sym string) (string, bool) {
			return state + "a", true
		},
		Accepting: func(string) bool { return false },
	}
	e := Explore(counter, 10)
	if e.Complete {
		t.Error("bounded exploration of an infinite automaton cannot complete")
	}
	if e.Len() != 10 {
		t.Errorf("states = %d, want 10", e.Len())
	}
}

func TestNonEmptyFindsLasso(t *testing.T) {
	e := Explore(modAutomaton(), 0)
	lasso, ok := e.NonEmpty()
	if !ok {
		t.Fatal("infinitely-many-a language is non-empty")
	}
	// The lasso must be accepted by the automaton itself.
	acc, err := modAutomaton().AcceptsLasso(lasso.Prefix, lasso.Cycle)
	if err != nil || !acc {
		t.Errorf("witness %v|%v not accepted: %v", lasso.Prefix, lasso.Cycle, err)
	}
	// The cycle must contain an a.
	if !strings.Contains(strings.Join(lasso.Cycle, ""), "a") {
		t.Errorf("cycle %v has no a", lasso.Cycle)
	}
}

func TestNonEmptyOnEmptyLanguage(t *testing.T) {
	e := Explore(emptyAutomaton(), 0)
	if _, ok := e.NonEmpty(); ok {
		t.Error("transient accepting state must not yield a lasso")
	}
}

func TestRejectSink(t *testing.T) {
	e := Explore(rejectAfterB(), 0)
	lasso, ok := e.NonEmpty()
	if !ok {
		t.Fatal("a^ω is accepted")
	}
	for _, s := range append(append([]string{}, lasso.Prefix...), lasso.Cycle...) {
		if s == "b" {
			t.Errorf("witness uses rejected symbol b: %v|%v", lasso.Prefix, lasso.Cycle)
		}
	}
}

func TestRunSimulation(t *testing.T) {
	a := rejectAfterB()
	states, ok := a.Run([]string{"a", "a"})
	if !ok || len(states) != 3 {
		t.Errorf("Run = %v, %v", states, ok)
	}
	if _, ok := a.Run([]string{"a", "b"}); ok {
		t.Error("b must reject")
	}
}

func TestAcceptsLasso(t *testing.T) {
	a := modAutomaton()
	tests := []struct {
		prefix, cycle []string
		want          bool
	}{
		{nil, []string{"a"}, true},
		{nil, []string{"b"}, false},
		{[]string{"b", "b"}, []string{"a", "b"}, true},
		{[]string{"a"}, []string{"b"}, false},
	}
	for _, tc := range tests {
		got, err := a.AcceptsLasso(tc.prefix, tc.cycle)
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Errorf("AcceptsLasso(%v, %v) = %v, want %v", tc.prefix, tc.cycle, got, tc.want)
		}
	}
	if _, err := a.AcceptsLasso(nil, nil); err == nil {
		t.Error("empty cycle must error")
	}
}

func TestObservation1GapBound(t *testing.T) {
	// Observation 1: if L(A) ≠ ∅ there is a word whose accepting visits
	// are at most n_A apart; the lasso's gap obeys the explored-state
	// bound.
	for _, a := range []*Automaton{modAutomaton(), rejectAfterB()} {
		e := Explore(a, 0)
		lasso, ok := e.NonEmpty()
		if !ok {
			t.Fatal("non-empty expected")
		}
		if lasso.Gap > e.Len() {
			t.Errorf("gap %d exceeds state count %d", lasso.Gap, e.Len())
		}
	}
}

func TestUnion(t *testing.T) {
	idx, lasso, ok := Union([]*Automaton{emptyAutomaton(), modAutomaton()}, 0)
	if !ok || idx != 1 || lasso == nil {
		t.Errorf("Union = %d, %v, %v", idx, lasso, ok)
	}
	if _, _, ok := Union([]*Automaton{emptyAutomaton()}, 0); ok {
		t.Error("union of empty languages is empty")
	}
	if _, _, ok := Union(nil, 0); ok {
		t.Error("empty union is empty")
	}
}
