// Package buchi implements deterministic Büchi automata with lazily
// explored state spaces: states are opaque string keys produced by a
// transition function, so automata whose state spaces are huge but whose
// reachable parts are small — exactly the shape of the caterpillar automata
// of Appendix D.2 — never materialise more than they must.
//
// Emptiness of a deterministic Büchi automaton reduces to: some accepting
// state is reachable from the initial state and lies on a cycle. NonEmpty
// finds such a lasso and returns it as a witness word (prefix + cycle),
// which doubles as the pumping argument of Observation 1: the gap between
// accepting visits along the lasso is bounded by the number of explored
// states.
package buchi

import (
	"context"
	"fmt"
)

// Automaton is a deterministic Büchi automaton over a finite alphabet.
// Transitions that reject (the sink) return ok = false.
type Automaton struct {
	// Alphabet lists the symbol keys.
	Alphabet []string
	// Initial is the initial state key.
	Initial string
	// Step is the deterministic transition function.
	Step func(state, symbol string) (next string, ok bool)
	// Accepting reports whether a state is accepting.
	Accepting func(state string) bool
}

// Explored is the reachable fragment of an automaton.
type Explored struct {
	States   []string
	Index    map[string]int
	Alphabet []string
	// Trans[s][a] is the successor index, or -1 for the reject sink.
	Trans  [][]int
	Accept []bool
	// Complete is false when exploration hit the state bound.
	Complete bool
}

// Explore builds the reachable state graph, up to maxStates states
// (0: 100_000). Exceeding the bound yields Complete = false.
func Explore(a *Automaton, maxStates int) *Explored {
	return ExploreContext(context.Background(), a, maxStates)
}

// exploreCtxInterval is ExploreContext's cancellation check interval: the
// poll runs every exploreCtxInterval dequeued states.
const exploreCtxInterval = 64

// ExploreContext is Explore under a context: the BFS polls ctx.Done()
// every exploreCtxInterval dequeues and returns the partial graph with
// Complete = false when it fires. Callers that race explorations must
// check ctx.Err() before trusting a partial result. Uncancelled runs are
// byte-identical to Explore.
func ExploreContext(ctx context.Context, a *Automaton, maxStates int) *Explored {
	if maxStates <= 0 {
		maxStates = 100_000
	}
	done := ctx.Done()
	tick := 0
	e := &Explored{
		Index:    make(map[string]int),
		Alphabet: a.Alphabet,
		Complete: true,
	}
	add := func(s string) int {
		if i, ok := e.Index[s]; ok {
			return i
		}
		i := len(e.States)
		e.Index[s] = i
		e.States = append(e.States, s)
		e.Trans = append(e.Trans, nil)
		e.Accept = append(e.Accept, a.Accepting(s))
		return i
	}
	queue := []int{add(a.Initial)}
	for len(queue) > 0 {
		if done != nil {
			if tick++; tick%exploreCtxInterval == 0 {
				select {
				case <-done:
					e.Complete = false
					queue = nil
				default:
				}
			}
		}
		if len(queue) == 0 {
			break
		}
		cur := queue[0]
		queue = queue[1:]
		if e.Trans[cur] != nil {
			continue
		}
		row := make([]int, len(a.Alphabet))
		for ai, sym := range a.Alphabet {
			next, ok := a.Step(e.States[cur], sym)
			if !ok {
				row[ai] = -1
				continue
			}
			if _, seen := e.Index[next]; !seen && len(e.States) >= maxStates {
				e.Complete = false
				row[ai] = -1
				continue
			}
			ni := add(next)
			row[ai] = ni
			if e.Trans[ni] == nil {
				queue = append(queue, ni)
			}
		}
		e.Trans[cur] = row
	}
	// Nodes dequeued with rows still nil (possible when the bound tripped).
	for i := range e.Trans {
		if e.Trans[i] == nil {
			row := make([]int, len(a.Alphabet))
			for j := range row {
				row[j] = -1
			}
			e.Trans[i] = row
		}
	}
	return e
}

// Len returns the number of explored states.
func (e *Explored) Len() int { return len(e.States) }

// Lasso is a non-emptiness witness: the word prefix·cycle^ω is accepted.
type Lasso struct {
	Prefix []string
	Cycle  []string
	// Gap is the longest run of consecutive non-accepting states along the
	// cycle — the Observation 1 bound (at most the number of states).
	Gap int
}

// NonEmpty decides emptiness of the explored (deterministic) automaton: it
// returns a lasso through a reachable accepting state, or ok = false when
// the language is empty. For incomplete explorations a negative answer is
// only valid up to the bound.
func (e *Explored) NonEmpty() (*Lasso, bool) {
	// Path symbols from the initial state.
	type crumb struct {
		prev int
		sym  int
	}
	reach := make([]crumb, len(e.States))
	for i := range reach {
		reach[i] = crumb{prev: -2}
	}
	reach[0] = crumb{prev: -1}
	queue := []int{0}
	order := []int{0}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for ai, next := range e.Trans[cur] {
			if next < 0 || reach[next].prev != -2 {
				continue
			}
			reach[next] = crumb{prev: cur, sym: ai}
			queue = append(queue, next)
			order = append(order, next)
		}
	}
	for _, q := range order {
		if !e.Accept[q] {
			continue
		}
		cycle, ok := e.cycleThrough(q)
		if !ok {
			continue
		}
		var prefix []string
		for cur := q; reach[cur].prev >= 0; cur = reach[cur].prev {
			prefix = append([]string{e.Alphabet[reach[cur].sym]}, prefix...)
		}
		gap := e.cycleGap(q, cycle)
		return &Lasso{Prefix: prefix, Cycle: cycle, Gap: gap}, true
	}
	return nil, false
}

// cycleThrough finds a non-empty path q → q, returning its symbols.
func (e *Explored) cycleThrough(q int) ([]string, bool) {
	type crumb struct {
		prev int
		sym  int
	}
	seen := make([]crumb, len(e.States))
	for i := range seen {
		seen[i] = crumb{prev: -2}
	}
	queue := []int{q}
	seen[q] = crumb{prev: -1}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for ai, next := range e.Trans[cur] {
			if next < 0 {
				continue
			}
			if next == q {
				// Rebuild cycle: q → … → cur → q.
				syms := []string{e.Alphabet[ai]}
				for c := cur; seen[c].prev >= 0; c = seen[c].prev {
					syms = append([]string{e.Alphabet[seen[c].sym]}, syms...)
				}
				return syms, true
			}
			if seen[next].prev == -2 {
				seen[next] = crumb{prev: cur, sym: ai}
				queue = append(queue, next)
			}
		}
	}
	return nil, false
}

// cycleGap computes the longest run of non-accepting states along the
// cycle starting at q.
func (e *Explored) cycleGap(q int, cycle []string) int {
	symIndex := make(map[string]int, len(e.Alphabet))
	for i, s := range e.Alphabet {
		symIndex[s] = i
	}
	gap, run := 0, 0
	cur := q
	for _, s := range cycle {
		cur = e.Trans[cur][symIndex[s]]
		if cur < 0 {
			return gap
		}
		if e.Accept[cur] {
			run = 0
		} else {
			run++
			if run > gap {
				gap = run
			}
		}
	}
	return gap
}

// Run simulates the automaton on a finite word from the initial state,
// returning the visited states (including the initial one); ok = false when
// the word falls into the reject sink.
func (a *Automaton) Run(word []string) ([]string, bool) {
	states := []string{a.Initial}
	cur := a.Initial
	for _, sym := range word {
		next, ok := a.Step(cur, sym)
		if !ok {
			return states, false
		}
		cur = next
		states = append(states, cur)
	}
	return states, true
}

// AcceptsLasso reports whether the deterministic automaton accepts
// prefix·cycle^ω: iterate the cycle until the state at the cycle boundary
// repeats, and check that an accepting state occurs within the repeating
// portion.
func (a *Automaton) AcceptsLasso(prefix, cycle []string) (bool, error) {
	if len(cycle) == 0 {
		return false, fmt.Errorf("buchi: empty cycle")
	}
	cur := a.Initial
	for _, sym := range prefix {
		next, ok := a.Step(cur, sym)
		if !ok {
			return false, nil
		}
		cur = next
	}
	seen := map[string]bool{}
	sawAccepting := map[string]bool{}
	for !seen[cur] {
		seen[cur] = true
		start := cur
		accepting := false
		for _, sym := range cycle {
			next, ok := a.Step(cur, sym)
			if !ok {
				return false, nil
			}
			cur = next
			if a.Accepting(cur) {
				accepting = true
			}
		}
		sawAccepting[start] = accepting
	}
	// cur repeats: from here on, the same boundary states recur; accepted
	// iff the loop from the repeated state sees an accepting state.
	start := cur
	for {
		if sawAccepting[cur] {
			return true, nil
		}
		for _, sym := range cycle {
			next, _ := a.Step(cur, sym)
			cur = next
		}
		if cur == start {
			return false, nil
		}
	}
}

// Union decides joint emptiness of a family of deterministic automata (the
// paper's A_T = ⋃ A_{e,Π}): the union language is non-empty iff some
// member is. It returns the first member's witness.
func Union(members []*Automaton, maxStates int) (int, *Lasso, bool) {
	for i, m := range members {
		e := Explore(m, maxStates)
		if lasso, ok := e.NonEmpty(); ok {
			return i, lasso, true
		}
	}
	return -1, nil, false
}
