package buchi_test

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"airct/internal/buchi"
	"airct/internal/workload"
)

// randomAutomaton is the shared workload generator (promoted to
// internal/workload so the property suites across packages draw from one
// seed-deterministic source); the alias keeps the call sites short. The
// test lives in the external test package because workload imports buchi.
func randomAutomaton(seed int64, nStates int) *buchi.Automaton {
	return workload.RandomAutomaton(seed, nStates)
}

// Property: any lasso returned by NonEmpty is accepted by the automaton
// itself (witness soundness).
func TestQuickLassoWitnessesAreAccepted(t *testing.T) {
	f := func(seed int64) bool {
		a := randomAutomaton(seed%100000, 2+int(seed%7+7)%7)
		e := buchi.Explore(a, 0)
		lasso, ok := e.NonEmpty()
		if !ok {
			return true // emptiness claims are checked elsewhere
		}
		acc, err := a.AcceptsLasso(lasso.Prefix, lasso.Cycle)
		return err == nil && acc
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: when NonEmpty says empty, no random lasso probe is accepted
// (emptiness soundness, probabilistically checked).
func TestQuickEmptinessRejectsProbes(t *testing.T) {
	f := func(seed int64) bool {
		a := randomAutomaton(seed%100000, 2+int(seed%5+5)%5)
		e := buchi.Explore(a, 0)
		if _, ok := e.NonEmpty(); ok {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		for probe := 0; probe < 10; probe++ {
			prefix := randomWord(rng, 3)
			cycle := randomWord(rng, 1+rng.Intn(4))
			acc, err := a.AcceptsLasso(prefix, cycle)
			if err != nil {
				continue
			}
			if acc {
				return false // empty automaton accepted a word
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func randomWord(rng *rand.Rand, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%d", rng.Intn(2))
	}
	return out
}

// Property: the lasso gap never exceeds the number of explored states
// (Observation 1).
func TestQuickGapBound(t *testing.T) {
	f := func(seed int64) bool {
		a := randomAutomaton(seed%100000, 3+int(seed%11+11)%11)
		e := buchi.Explore(a, 0)
		lasso, ok := e.NonEmpty()
		if !ok {
			return true
		}
		return lasso.Gap <= e.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: exploration is deterministic — two explorations agree on state
// count and emptiness.
func TestQuickExploreDeterministic(t *testing.T) {
	f := func(seed int64) bool {
		a1 := randomAutomaton(seed%100000, 4)
		a2 := randomAutomaton(seed%100000, 4)
		e1, e2 := buchi.Explore(a1, 0), buchi.Explore(a2, 0)
		_, ok1 := e1.NonEmpty()
		_, ok2 := e2.NonEmpty()
		return e1.Len() == e2.Len() && ok1 == ok2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
