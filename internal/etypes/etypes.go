// Package etypes implements equality types and T-equality types over a
// schema (Appendix A of the paper). The equality type of an atom
// R(t1,…,tn) records which argument positions carry equal terms; a
// T-equality type additionally labels some equivalence classes with
// distinguished terms from a finite set T. Equality types are the finite
// abstraction driving Lemma 4.4 (finiteness of the deactivation set A) and
// the states of the sticky Büchi automata (Appendix D.2).
package etypes

import (
	"fmt"
	"strings"

	"airct/internal/logic"
)

// EType is an equality type (R, E): a predicate together with a partition of
// its argument positions. The partition is encoded canonically as a
// restricted-growth string: rep[i] is the 0-based index of the first
// position whose term equals position i's term.
type EType struct {
	Pred logic.Predicate
	rep  []int
}

// Of returns the equality type of the atom: positions i and j share a class
// iff the atom carries the same term at i and j.
func Of(a logic.Atom) EType {
	rep := make([]int, len(a.Args))
	for i, t := range a.Args {
		rep[i] = i
		for j := 0; j < i; j++ {
			if a.Args[j] == t {
				rep[i] = j
				break
			}
		}
	}
	return EType{Pred: a.Pred, rep: rep}
}

// FromPartition builds an equality type from an explicit representative
// vector (rep[i] = index of the first position in i's class). It
// canonicalises and validates the vector.
func FromPartition(p logic.Predicate, rep []int) (EType, error) {
	if len(rep) != p.Arity {
		return EType{}, fmt.Errorf("etypes: partition length %d for %s", len(rep), p)
	}
	out := make([]int, len(rep))
	for i, r := range rep {
		if r < 0 || r > i {
			return EType{}, fmt.Errorf("etypes: rep[%d] = %d out of range", i, r)
		}
		if r == i {
			out[i] = i
			continue
		}
		if rep[r] != r {
			return EType{}, fmt.Errorf("etypes: rep[%d] = %d is not a class representative", i, r)
		}
		out[i] = r
	}
	return EType{Pred: p, rep: out}, nil
}

// SameClass reports whether 1-based positions i and j carry equal terms.
func (e EType) SameClass(i, j int) bool { return e.rep[i-1] == e.rep[j-1] }

// ClassOf returns the 1-based representative position of 1-based position i.
func (e EType) ClassOf(i int) int { return e.rep[i-1] + 1 }

// Classes returns the 1-based representative positions, in order.
func (e EType) Classes() []int {
	var out []int
	for i, r := range e.rep {
		if r == i {
			out = append(out, i+1)
		}
	}
	return out
}

// Key returns a canonical encoding usable as a map key.
func (e EType) Key() string {
	var b strings.Builder
	b.WriteString(e.Pred.Name)
	fmt.Fprintf(&b, "/%d:", e.Pred.Arity)
	for i, r := range e.rep {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", r)
	}
	return b.String()
}

// Equal reports equality of types.
func (e EType) Equal(other EType) bool { return e.Key() == other.Key() }

// String renders the type with its canonical atom, e.g. "R(*1,*1,*3)".
func (e EType) String() string {
	parts := make([]string, len(e.rep))
	for i, r := range e.rep {
		parts[i] = fmt.Sprintf("*%d", r+1)
	}
	return e.Pred.Name + "(" + strings.Join(parts, ",") + ")"
}

// CanonicalAtom returns the canonical atom of the type: one distinct fresh
// null per equivalence class, placed at the class's positions.
func (e EType) CanonicalAtom(namer *logic.FreshNamer) logic.Atom {
	byClass := make(map[int]logic.Term)
	args := make([]logic.Term, len(e.rep))
	for i, r := range e.rep {
		t, ok := byClass[r]
		if !ok {
			t = namer.NextNull()
			byClass[r] = t
		}
		args[i] = t
	}
	return logic.NewAtom(e.Pred, args...)
}

// CanonicalAtomFunc returns the canonical atom with the term of each class
// chosen by the caller; class identifies the class's 1-based representative
// position.
func (e EType) CanonicalAtomFunc(term func(class int) logic.Term) logic.Atom {
	byClass := make(map[int]logic.Term)
	args := make([]logic.Term, len(e.rep))
	for i, r := range e.rep {
		t, ok := byClass[r]
		if !ok {
			t = term(r + 1)
			byClass[r] = t
		}
		args[i] = t
	}
	return logic.NewAtom(e.Pred, args...)
}

// Matches reports whether the atom has exactly this equality type.
func (e EType) Matches(a logic.Atom) bool {
	return a.Pred == e.Pred && Of(a).Equal(e)
}

// AllForPredicate enumerates every equality type over the predicate (every
// partition of its positions, i.e. Bell(ar(R)) many), in a deterministic
// order.
func AllForPredicate(p logic.Predicate) []EType {
	var out []EType
	rep := make([]int, p.Arity)
	var rec func(i int)
	rec = func(i int) {
		if i == p.Arity {
			cp := make([]int, len(rep))
			copy(cp, rep)
			out = append(out, EType{Pred: p, rep: cp})
			return
		}
		// Position i joins an existing class (a representative j < i) or
		// starts its own.
		for j := 0; j < i; j++ {
			if rep[j] == j {
				rep[i] = j
				rec(i + 1)
			}
		}
		rep[i] = i
		rec(i + 1)
	}
	if p.Arity == 0 {
		return []EType{{Pred: p}}
	}
	rec(0)
	return out
}

// AllForSchema enumerates etypes(S): every equality type over every
// predicate of the schema.
func AllForSchema(s *logic.Schema) []EType {
	var out []EType
	for _, p := range s.Predicates() {
		out = append(out, AllForPredicate(p)...)
	}
	return out
}

// Count returns |etypes(S)| without materialising the types.
func Count(s *logic.Schema) int {
	n := 0
	for _, p := range s.Predicates() {
		n += bell(p.Arity)
	}
	return n
}

// bell returns the Bell number B(n): the number of partitions of an n-set.
func bell(n int) int {
	if n == 0 {
		return 1
	}
	// Bell triangle.
	prev := []int{1}
	for i := 1; i <= n; i++ {
		row := make([]int, i+1)
		row[0] = prev[len(prev)-1]
		for j := 1; j <= i; j++ {
			row[j] = row[j-1] + prev[j-1]
		}
		prev = row
	}
	return prev[0]
}

// TEType is a T-equality type (R, E, λ): an equality type whose classes may
// additionally be labeled with distinct tracked terms (Appendix A). Labels
// are stored per class representative (0-based); unlabeled classes map to
// the zero Term.
type TEType struct {
	etype  EType
	labels map[int]logic.Term
}

// OfT returns the T-equality type of the atom w.r.t. the tracked term set:
// classes whose term belongs to tracked are labeled with that term.
func OfT(a logic.Atom, tracked logic.TermSet) TEType {
	e := Of(a)
	labels := make(map[int]logic.Term)
	for i, r := range e.rep {
		if i == r && tracked.Has(a.Args[i]) {
			labels[r] = a.Args[i]
		}
	}
	return TEType{etype: e, labels: labels}
}

// EType returns the underlying equality type.
func (te TEType) EType() EType { return te.etype }

// Label returns the label of the class of 1-based position i, if any.
func (te TEType) Label(i int) (logic.Term, bool) {
	t, ok := te.labels[te.etype.rep[i-1]]
	return t, ok
}

// Key returns a canonical encoding usable as a map key.
func (te TEType) Key() string {
	var b strings.Builder
	b.WriteString(te.etype.Key())
	b.WriteByte('|')
	for i, r := range te.etype.rep {
		if i != r {
			continue
		}
		if t, ok := te.labels[r]; ok {
			fmt.Fprintf(&b, "%d=%s;", r, t.String())
		}
	}
	return b.String()
}

// Equal reports equality of T-equality types.
func (te TEType) Equal(other TEType) bool { return te.Key() == other.Key() }

// CanonicalAtom returns can(e): labeled classes carry their label, unlabeled
// classes carry distinct fresh nulls.
func (te TEType) CanonicalAtom(namer *logic.FreshNamer) logic.Atom {
	byClass := make(map[int]logic.Term)
	args := make([]logic.Term, len(te.etype.rep))
	for i, r := range te.etype.rep {
		t, ok := byClass[r]
		if !ok {
			if lbl, labeled := te.labels[r]; labeled {
				t = lbl
			} else {
				t = namer.NextNull()
			}
			byClass[r] = t
		}
		args[i] = t
	}
	return logic.NewAtom(te.etype.Pred, args...)
}

// String renders the type.
func (te TEType) String() string {
	var b strings.Builder
	b.WriteString(te.etype.Pred.Name)
	b.WriteByte('(')
	for i, r := range te.etype.rep {
		if i > 0 {
			b.WriteByte(',')
		}
		if t, ok := te.labels[r]; ok {
			b.WriteString(t.String())
		} else {
			fmt.Fprintf(&b, "*%d", r+1)
		}
	}
	b.WriteByte(')')
	return b.String()
}
