package etypes

import (
	"testing"
	"testing/quick"

	"airct/internal/logic"
)

func TestOf(t *testing.T) {
	a := logic.MustAtom("R", logic.Const("a"), logic.Const("b"), logic.Const("a"))
	e := Of(a)
	if !e.SameClass(1, 3) {
		t.Error("positions 1 and 3 carry equal terms")
	}
	if e.SameClass(1, 2) || e.SameClass(2, 3) {
		t.Error("position 2 is alone")
	}
	if e.ClassOf(3) != 1 {
		t.Errorf("ClassOf(3) = %d", e.ClassOf(3))
	}
	if got := e.Classes(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("Classes = %v", got)
	}
	if e.String() != "R(*1,*2,*1)" {
		t.Errorf("String = %q", e.String())
	}
}

func TestOfIgnoresTermIdentity(t *testing.T) {
	// Equality type depends only on the equality pattern, not on which
	// terms realise it.
	a := logic.MustAtom("R", logic.Const("a"), logic.Const("a"))
	b := logic.MustAtom("R", logic.NewNull("n"), logic.NewNull("n"))
	c := logic.MustAtom("R", logic.Const("a"), logic.Const("b"))
	if !Of(a).Equal(Of(b)) {
		t.Error("same pattern must give same type")
	}
	if Of(a).Equal(Of(c)) {
		t.Error("different patterns must differ")
	}
}

func TestFromPartition(t *testing.T) {
	p := logic.Pred("R", 3)
	e, err := FromPartition(p, []int{0, 0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !e.SameClass(1, 2) || e.SameClass(1, 3) {
		t.Error("partition decoded wrong")
	}
	if _, err := FromPartition(p, []int{0, 0}); err == nil {
		t.Error("length mismatch must fail")
	}
	if _, err := FromPartition(p, []int{0, 2, 2}); err == nil {
		t.Error("forward reference must fail")
	}
	if _, err := FromPartition(p, []int{0, 0, 1}); err == nil {
		t.Error("non-representative reference must fail")
	}
}

func TestCanonicalAtomRealisesType(t *testing.T) {
	e, err := FromPartition(logic.Pred("R", 4), []int{0, 0, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	atom := e.CanonicalAtom(logic.NewFreshNamer("c"))
	if !e.Matches(atom) {
		t.Errorf("canonical atom %v does not match its type %v", atom, e)
	}
	if atom.Args[0] != atom.Args[1] || atom.Args[2] != atom.Args[3] || atom.Args[0] == atom.Args[2] {
		t.Errorf("canonical atom pattern wrong: %v", atom)
	}
}

func TestAllForPredicateCountsBell(t *testing.T) {
	// Bell numbers: 1, 1, 2, 5, 15, 52.
	for arity, want := range map[int]int{0: 1, 1: 1, 2: 2, 3: 5, 4: 15, 5: 52} {
		got := len(AllForPredicate(logic.Pred("R", arity)))
		if got != want {
			t.Errorf("arity %d: %d types, want %d", arity, got, want)
		}
	}
}

func TestAllForPredicateDistinct(t *testing.T) {
	types := AllForPredicate(logic.Pred("R", 4))
	seen := map[string]bool{}
	for _, e := range types {
		if seen[e.Key()] {
			t.Fatalf("duplicate type %v", e)
		}
		seen[e.Key()] = true
	}
}

func TestAllForSchemaAndCount(t *testing.T) {
	s := logic.NewSchema(logic.Pred("R", 2), logic.Pred("S", 3))
	all := AllForSchema(s)
	if len(all) != 2+5 {
		t.Errorf("AllForSchema = %d types, want 7", len(all))
	}
	if Count(s) != len(all) {
		t.Errorf("Count = %d, want %d", Count(s), len(all))
	}
}

func TestTETypeLabels(t *testing.T) {
	a := logic.MustAtom("R", logic.Const("a"), logic.NewNull("n"), logic.Const("a"))
	tracked := logic.NewTermSet(logic.Const("a"))
	te := OfT(a, tracked)
	if lbl, ok := te.Label(1); !ok || lbl != logic.Const("a") {
		t.Errorf("Label(1) = %v,%v", lbl, ok)
	}
	if lbl, ok := te.Label(3); !ok || lbl != logic.Const("a") {
		t.Errorf("Label(3) = %v,%v (shared class)", lbl, ok)
	}
	if _, ok := te.Label(2); ok {
		t.Error("untracked class must be unlabeled")
	}
}

func TestTETypeDistinguishesTrackedTerms(t *testing.T) {
	tracked := logic.NewTermSet(logic.Const("a"), logic.Const("b"))
	a := logic.MustAtom("R", logic.Const("a"), logic.Const("x"))
	b := logic.MustAtom("R", logic.Const("b"), logic.Const("y"))
	c := logic.MustAtom("R", logic.Const("a"), logic.Const("z"))
	ta, tb, tc := OfT(a, tracked), OfT(b, tracked), OfT(c, tracked)
	if ta.Equal(tb) {
		t.Error("different tracked labels must differ")
	}
	if !ta.Equal(tc) {
		t.Error("same label, same pattern must coincide")
	}
	if ta.EType().Key() != tb.EType().Key() {
		t.Error("underlying equality types coincide")
	}
}

func TestTETypeCanonicalAtom(t *testing.T) {
	tracked := logic.NewTermSet(logic.Const("a"))
	a := logic.MustAtom("R", logic.Const("a"), logic.NewNull("n"), logic.NewNull("n"))
	te := OfT(a, tracked)
	can := te.CanonicalAtom(logic.NewFreshNamer("f"))
	if can.Args[0] != logic.Const("a") {
		t.Errorf("labeled class must keep its label: %v", can)
	}
	if can.Args[1] != can.Args[2] {
		t.Error("class structure must be preserved")
	}
	if can.Args[1] == can.Args[0] {
		t.Error("distinct classes must stay distinct")
	}
	if te.String() == "" {
		t.Error("String must render")
	}
}

// Property: Of(CanonicalAtom(e)) == e for arbitrary generated partitions.
func TestCanonicalRoundTrip(t *testing.T) {
	f := func(raw []uint8) bool {
		arity := len(raw)
		if arity == 0 || arity > 6 {
			return true
		}
		rep := make([]int, arity)
		for i := range rep {
			// Choose a representative among {0..i} that is itself a rep.
			cand := int(raw[i]) % (i + 1)
			for rep[cand] != cand {
				cand = rep[cand]
			}
			rep[i] = cand
		}
		e, err := FromPartition(logic.Pred("P", arity), rep)
		if err != nil {
			return false
		}
		return Of(e.CanonicalAtom(logic.NewFreshNamer("q"))).Equal(e)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: the number of classes of Of(a) equals the number of distinct
// terms in a.
func TestClassCountMatchesDistinctTerms(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 || len(raw) > 6 {
			return true
		}
		args := make([]logic.Term, len(raw))
		distinct := map[logic.Term]bool{}
		for i, r := range raw {
			args[i] = logic.Const(string(rune('a' + r%4)))
			distinct[args[i]] = true
		}
		e := Of(logic.MustAtom("P", args...))
		return len(e.Classes()) == len(distinct)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
