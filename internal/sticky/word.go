// Package sticky implements the Section 6 machinery for sticky sets of
// single-head TGDs: caterpillars and their refinements (Definitions
// 6.2–6.8), caterpillar words over the alphabet Λ_T, and the deterministic
// Büchi automaton A_T of Appendix D.2 — the product of A_pc
// (proto-caterpillar / equality-type tracking), A_qc (quasi-caterpillar /
// stop-set tracking) and A_cc (connectivity / relay-position tracking),
// united over all seeds (e₀, Π₀). CT^res_∀∀(S) is decided by emptiness of
// A_T (Theorem 6.1): this is the paper's actual algorithm, implemented in
// full.
package sticky

import (
	"fmt"
	"strings"

	"airct/internal/tgds"
)

// Symbol is a letter of the caterpillar alphabet Λ_T: a TGD σ, a body atom
// γ ∈ body(σ) that the previous path atom must match, and a position set P
// of head(σ) — empty for ordinary steps, or the positions of one
// existential variable when the step is a pass-on point minting a new
// relay term.
type Symbol struct {
	TGDIndex int
	Gamma    int   // index into body(σ)
	P        []int // sorted 1-based head positions; nil for non-pass-on
}

// Key returns a canonical encoding.
func (s Symbol) Key() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d/%d/", s.TGDIndex, s.Gamma)
	for i, p := range s.P {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", p)
	}
	return b.String()
}

// ParseSymbolKey decodes a Key back into a Symbol; used to interpret
// automaton witnesses.
func ParseSymbolKey(key string) (Symbol, error) {
	var s Symbol
	parts := strings.SplitN(key, "/", 3)
	if len(parts) != 3 {
		return s, fmt.Errorf("sticky: bad symbol key %q", key)
	}
	if _, err := fmt.Sscanf(parts[0], "%d", &s.TGDIndex); err != nil {
		return s, fmt.Errorf("sticky: bad symbol key %q: %v", key, err)
	}
	if _, err := fmt.Sscanf(parts[1], "%d", &s.Gamma); err != nil {
		return s, fmt.Errorf("sticky: bad symbol key %q: %v", key, err)
	}
	if parts[2] != "" {
		for _, ps := range strings.Split(parts[2], ",") {
			var p int
			if _, err := fmt.Sscanf(ps, "%d", &p); err != nil {
				return s, fmt.Errorf("sticky: bad symbol key %q: %v", key, err)
			}
			s.P = append(s.P, p)
		}
	}
	return s, nil
}

// Alphabet enumerates Λ_T for the set: every (σ, γ, P) with P either empty
// or pos(head(σ), x) for an existentially quantified x of σ.
func Alphabet(set *tgds.Set) []Symbol {
	var out []Symbol
	for ti, t := range set.TGDs {
		head := t.HeadAtom()
		for gi := range t.Body {
			out = append(out, Symbol{TGDIndex: ti, Gamma: gi})
			for _, x := range t.ExistentialVars().Sorted() {
				positions := head.PositionsOf(x)
				if len(positions) > 0 {
					out = append(out, Symbol{TGDIndex: ti, Gamma: gi, P: positions})
				}
			}
		}
	}
	return out
}

// AlphabetKeys returns the symbol keys, aligned with Alphabet.
func AlphabetKeys(set *tgds.Set) []string {
	syms := Alphabet(set)
	out := make([]string, len(syms))
	for i, s := range syms {
		out[i] = s.Key()
	}
	return out
}

// SymbolString renders a symbol readably against its set.
func SymbolString(set *tgds.Set, s Symbol) string {
	t := set.TGDs[s.TGDIndex]
	if len(s.P) == 0 {
		return fmt.Sprintf("(%s, %v)", t.Label, t.Body[s.Gamma])
	}
	return fmt.Sprintf("(%s, %v, pass-on@%v)", t.Label, t.Body[s.Gamma], s.P)
}
