package sticky

import (
	"strings"
	"testing"
)

func TestAnalyzeConnectivityOnLadderWitness(t *testing.T) {
	s := set(t, `S(X) -> R(X,Y). R(X,Y) -> S(Y).`)
	v, err := Decide(s, DecideOptions{})
	if err != nil || v.Terminates {
		t.Fatalf("need diverging verdict: %v %v", v, err)
	}
	pumps := 3
	cat, err := MaterializeWitness(s, *v.Seed, v.Lasso, pumps)
	if err != nil {
		t.Fatal(err)
	}
	var passOn []int
	keys := append([]string{}, v.Lasso.Prefix...)
	for p := 0; p < pumps; p++ {
		keys = append(keys, v.Lasso.Cycle...)
	}
	for i, k := range keys {
		sym, err := ParseSymbolKey(k)
		if err != nil {
			t.Fatal(err)
		}
		if len(sym.P) > 0 {
			passOn = append(passOn, i+1)
		}
	}
	if len(passOn) < 2 {
		t.Fatalf("ladder witness must have several pass-on points, got %v", passOn)
	}
	conn, err := AnalyzeConnectivity(cat, s, passOn)
	if err != nil {
		t.Fatalf("connectivity: %v", err)
	}
	if len(conn.RelayTerms) != len(passOn) {
		t.Errorf("relay terms = %d, pass-ons = %d", len(conn.RelayTerms), len(passOn))
	}
	// Uniform connectivity: the gap is the cycle structure's constant.
	if conn.MaxGap == 0 || conn.MaxGap > len(v.Lasso.Cycle)+len(v.Lasso.Prefix) {
		t.Errorf("MaxGap = %d not uniformly bounded by the lasso", conn.MaxGap)
	}
	// Relay terms must be pairwise distinct fresh nulls.
	seen := map[string]bool{}
	for _, r := range conn.RelayTerms {
		if !r.IsNull() {
			t.Errorf("relay %v must be invented", r)
		}
		if seen[r.Name] {
			t.Errorf("relay %v repeated", r)
		}
		seen[r.Name] = true
	}
}

func TestAnalyzeConnectivityRejectsBadPassOns(t *testing.T) {
	s := set(t, `S(X) -> R(X,Y). R(X,Y) -> S(Y).`)
	v, err := Decide(s, DecideOptions{})
	if err != nil || v.Terminates {
		t.Fatal("need witness")
	}
	cat, err := MaterializeWitness(s, *v.Seed, v.Lasso, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AnalyzeConnectivity(cat, s, nil); err == nil {
		t.Error("empty pass-ons must fail")
	}
	if _, err := AnalyzeConnectivity(cat, s, []int{999}); err == nil {
		t.Error("out-of-range pass-on must fail")
	}
	// A pass-on at a step that invents nothing (σ2: R(X,Y) -> S(Y)) fails.
	for i, tr := range cat.Triggers {
		if len(tr.TGD.ExistentialVars()) == 0 {
			if _, err := AnalyzeConnectivity(cat, s, []int{i + 1}); err == nil {
				t.Error("non-inventing pass-on must fail")
			}
			break
		}
	}
}

func TestCheckFreeOnMaterializedWitnesses(t *testing.T) {
	for _, src := range []string{
		`S(X) -> R(X,Y). R(X,Y) -> S(Y).`,
		`R(X,Y) -> R(Y,Z).`,
	} {
		s := set(t, src)
		v, err := Decide(s, DecideOptions{})
		if err != nil || v.Terminates {
			t.Fatalf("need witness for %q", src)
		}
		cat, err := MaterializeWitness(s, *v.Seed, v.Lasso, 3)
		if err != nil {
			t.Fatal(err)
		}
		if err := CheckFree(cat, s); err != nil {
			t.Errorf("materialised witness must be free (%q): %v", src, err)
		}
	}
}

func TestCheckFreeDetectsAccidentalSharing(t *testing.T) {
	s := set(t, `S(X) -> R(X,Y). R(X,Y) -> S(Y).`)
	v, err := Decide(s, DecideOptions{})
	if err != nil || v.Terminates {
		t.Fatal("need witness")
	}
	cat, err := MaterializeWitness(s, *v.Seed, v.Lasso, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt: give two provably-unrelated positions the same term.
	if len(cat.Body) < 4 {
		t.Fatal("need a longer body")
	}
	broken := *cat
	broken.Body = append(cat.Body[:0:0], cat.Body...)
	first := broken.Body[0]
	last := broken.Body[len(broken.Body)-1].Clone()
	last.Args[last.Pred.Arity-1] = first.Args[0]
	broken.Body[len(broken.Body)-1] = last
	err = CheckFree(&broken, s)
	if err == nil {
		t.Error("accidental sharing must be flagged as non-free")
	} else if !strings.Contains(err.Error(), "not free") {
		t.Errorf("unexpected error: %v", err)
	}
}
