package sticky

// Tests for the sticky decision's cache tier: a warm Decide replays the
// identical Verdict — including the witness seed and lasso — without
// exploring an automaton, both from an in-process warm cache and from a
// snapshot→restore of one, and the replayed witness stays materialisable.

import (
	"bytes"
	"reflect"
	"testing"

	"airct/internal/chase"
	"airct/internal/tgds"
)

func decideWith(t *testing.T, s *tgds.Set, cache *chase.Cache) *Verdict {
	t.Helper()
	v, err := Decide(s, DecideOptions{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestDecideWarmCacheReplaysVerdict(t *testing.T) {
	tests := []struct {
		name string
		src  string
	}{
		{"diverging ladder", `S(X) -> R(X,Y). R(X,Y) -> S(Y).`},
		{"diverging swap cascade", `R(X,Y) -> P(X,Y). P(X,Y) -> R(Y,Z).`},
		{"terminating datalog", `A(X) -> B(X). B(X) -> C(X).`},
		{"terminating one-shot existential", `A(X) -> R(X,Y). R(X,Y) -> B(X).`},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			s := set(t, tc.src)
			cache := chase.NewCache()
			cold := decideWith(t, s, cache)
			if cache.Stats().Entries == 0 {
				t.Fatal("cold Decide stored nothing")
			}

			warm := decideWith(t, s, cache)
			if !reflect.DeepEqual(warm, cold) {
				t.Errorf("warm replay drifted:\n  cold %+v\n  warm %+v", cold, warm)
			}
			if cache.Stats().Hits == 0 {
				t.Error("warm Decide missed the cache")
			}

			// The same contract must survive a snapshot round-trip.
			var buf bytes.Buffer
			if err := cache.Snapshot(&buf); err != nil {
				t.Fatal(err)
			}
			restored, rep, err := chase.LoadCache(bytes.NewReader(buf.Bytes()))
			if err != nil || rep.Skipped > 0 || rep.Truncated {
				t.Fatalf("LoadCache: %v, report %+v", err, rep)
			}
			snap := decideWith(t, s, restored)
			if !reflect.DeepEqual(snap, cold) {
				t.Errorf("snapshot replay drifted:\n  cold %+v\n  snap %+v", cold, snap)
			}
			if restored.Stats().Hits == 0 {
				t.Error("snapshot-warmed Decide missed the cache")
			}

			// Replayed witnesses are as usable as live ones.
			if !cold.Terminates {
				live, err := MaterializeWitness(s, *cold.Seed, cold.Lasso, 2)
				if err != nil {
					t.Fatalf("live witness does not materialise: %v", err)
				}
				replayed, err := MaterializeWitness(s, *snap.Seed, snap.Lasso, 2)
				if err != nil {
					t.Fatalf("replayed witness does not materialise: %v", err)
				}
				ldb, err := live.Database()
				if err != nil {
					t.Fatal(err)
				}
				rdb, err := replayed.Database()
				if err != nil {
					t.Fatal(err)
				}
				if ldb.String() != rdb.String() {
					t.Error("replayed witness materialises to a different database")
				}
			}
		})
	}
}

// TestDecideCacheKeysByStateBound: the state bound is part of the key, so a
// decision at one bound never serves a different bound (a bound-relative
// "terminates" must not leak to a larger budget).
func TestDecideCacheKeysByStateBound(t *testing.T) {
	s := set(t, `S(X) -> R(X,Y). R(X,Y) -> S(Y).`)
	cache := chase.NewCache()
	if _, err := Decide(s, DecideOptions{MaxStates: 50, Cache: cache}); err != nil {
		t.Fatal(err)
	}
	before := cache.Stats()
	if _, err := Decide(s, DecideOptions{MaxStates: 5000, Cache: cache}); err != nil {
		t.Fatal(err)
	}
	after := cache.Stats()
	if after.Hits != before.Hits {
		t.Errorf("a 50-state decision served a 5000-state request: hits %d -> %d", before.Hits, after.Hits)
	}
	if after.Entries != before.Entries+1 {
		t.Errorf("second bound did not store its own entry: entries %d -> %d", before.Entries, after.Entries)
	}
}
