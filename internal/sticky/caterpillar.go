package sticky

import (
	"fmt"

	"airct/internal/chase"
	"airct/internal/instance"
	"airct/internal/logic"
	"airct/internal/tgds"
)

// Caterpillar is a finite prefix of the paper's caterpillar (Definitions
// 6.2–6.4): legs L, body atoms α_0 … α_n, the trigger sequence
// (σ_i, h_i) for i = 1…n, and the body-atom indices γ_i matched by the
// previous path atom.
type Caterpillar struct {
	Legs     []logic.Atom
	Body     []logic.Atom
	Triggers []chase.Trigger
	Gammas   []int
}

// Database returns L ∪ {α_0} as a database; every term in it must be a
// constant (legs and the first body atom form the initial instance).
func (c *Caterpillar) Database() (*instance.Database, error) {
	db := instance.NewDatabase()
	for _, a := range append(append([]logic.Atom{}, c.Legs...), c.Body[0]) {
		if err := db.Add(a); err != nil {
			return nil, fmt.Errorf("sticky: caterpillar base is not a database: %w", err)
		}
	}
	return db, nil
}

// ValidateProto checks the proto-caterpillar conditions of Definition 6.2
// on the finite prefix: each (σ_i, h_i) is a trigger on L ∪ {α_{i-1}}, the
// designated body atom γ_i maps to α_{i-1}, and α_i realises
// result(σ_i, h_i) — frontier positions carry the propagated terms and
// existential positions carry terms fresh to everything before them,
// consistently per variable.
func (c *Caterpillar) ValidateProto(set *tgds.Set) error {
	if len(c.Body) == 0 {
		return fmt.Errorf("sticky: empty body")
	}
	if len(c.Triggers) != len(c.Body)-1 || len(c.Gammas) != len(c.Triggers) {
		return fmt.Errorf("sticky: %d body atoms need %d triggers, have %d/%d gammas",
			len(c.Body), len(c.Body)-1, len(c.Triggers), len(c.Gammas))
	}
	seenTerms := logic.TermsOf(c.Legs)
	seenTerms.AddAll(c.Body[0].Terms())
	for i, tr := range c.Triggers {
		prev, next := c.Body[i], c.Body[i+1]
		t := tr.TGD
		// Condition 1: trigger on L ∪ {α_i}.
		base := logic.NewSliceSource(append(append([]logic.Atom{}, c.Legs...), prev))
		if logic.FindHomomorphism(t.Body, tr.H, base) == nil {
			return fmt.Errorf("sticky: step %d: (σ,h) is not a trigger on L ∪ {α_%d}", i+1, i)
		}
		// Condition 2: α_i = h(γ_{i+1}).
		gamma := t.Body[c.Gammas[i]]
		if !gamma.Apply(tr.H).Equal(prev) {
			return fmt.Errorf("sticky: step %d: h(γ) = %v ≠ α_%d = %v", i+1, gamma.Apply(tr.H), i, prev)
		}
		// Condition 3: α_{i+1} realises result(σ, h).
		head := t.HeadAtom()
		if next.Pred != head.Pred {
			return fmt.Errorf("sticky: step %d: head predicate mismatch", i+1)
		}
		frontier := t.Frontier()
		fresh := make(map[logic.Term]logic.Term) // existential var -> term
		for p := 1; p <= head.Pred.Arity; p++ {
			v := head.Arg(p)
			got := next.Arg(p)
			if frontier.Has(v) {
				if want := tr.H.ApplyTerm(v); got != want {
					return fmt.Errorf("sticky: step %d: frontier position %d holds %v, want %v", i+1, p, got, want)
				}
				continue
			}
			if prev2, ok := fresh[v]; ok {
				if prev2 != got {
					return fmt.Errorf("sticky: step %d: existential %v inconsistent at position %d", i+1, v, p)
				}
				continue
			}
			if seenTerms.Has(got) {
				return fmt.Errorf("sticky: step %d: invented term %v at position %d is not fresh", i+1, got, p)
			}
			fresh[v] = got
		}
		seenTerms.AddAll(next.Terms())
	}
	return nil
}

// ValidateCaterpillar additionally checks the two stop-freedom conditions
// of Definition 6.3 on the prefix: no leg stops a body atom, and no body
// atom stops a later one.
func (c *Caterpillar) ValidateCaterpillar(set *tgds.Set) error {
	if err := c.ValidateProto(set); err != nil {
		return err
	}
	for i, tr := range c.Triggers {
		target := c.Body[i+1]
		frontier := chase.FrontierTerms(tr)
		for _, leg := range c.Legs {
			if chase.Stops(leg, target, frontier) {
				return fmt.Errorf("sticky: leg %v stops α_%d = %v", leg, i+1, target)
			}
		}
		for j := 0; j <= i; j++ {
			if chase.Stops(c.Body[j], target, frontier) {
				return fmt.Errorf("sticky: α_%d = %v stops α_%d = %v", j, c.Body[j], i+1, target)
			}
		}
	}
	return nil
}

// IsFinitary reports whether the legs are finite — trivially true for the
// finite prefixes this type holds; it exists to mirror Definition 6.4 and
// to document the invariant at call sites.
func (c *Caterpillar) IsFinitary() bool { return true }
