package sticky

import (
	"testing"

	"airct/internal/chase"
	"airct/internal/parser"
	"airct/internal/tgds"
)

func set(t *testing.T, src string) *tgds.Set {
	t.Helper()
	s, err := parser.ParseTGDs(src)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestAlphabetShape(t *testing.T) {
	s := set(t, `S(X) -> R(X,Y). R(X,Y) -> S(Y).`)
	syms := Alphabet(s)
	// σ1: one body atom, one existential (Y at head position 2):
	//     (σ1,γ1,∅) and (σ1,γ1,{2}).
	// σ2: one body atom, no existential: (σ2,γ1,∅).
	if len(syms) != 3 {
		t.Fatalf("alphabet = %d symbols: %v", len(syms), syms)
	}
	for _, sym := range syms {
		key := sym.Key()
		back, err := ParseSymbolKey(key)
		if err != nil {
			t.Fatal(err)
		}
		if back.Key() != key {
			t.Errorf("round trip %q -> %q", key, back.Key())
		}
		if SymbolString(s, sym) == "" {
			t.Error("SymbolString must render")
		}
	}
}

func TestParseSymbolKeyErrors(t *testing.T) {
	for _, bad := range []string{"", "1", "x/y/z", "1/2/x"} {
		if _, err := ParseSymbolKey(bad); err == nil {
			t.Errorf("ParseSymbolKey(%q) must fail", bad)
		}
	}
}

func TestSeedsEnumeration(t *testing.T) {
	s := set(t, `S(X) -> R(X,Y). R(X,Y) -> S(Y).`)
	seeds := Seeds(s)
	// S/1: 1 etype × 1 class. R/2: etype {12}, 1 class; etype {1}{2}, 2
	// classes. Total 1 + 1 + 2 = 4.
	if len(seeds) != 4 {
		t.Fatalf("seeds = %d, want 4", len(seeds))
	}
}

func TestDecideDivergingFamilies(t *testing.T) {
	tests := []struct {
		name string
		src  string
	}{
		{"ladder", `S(X) -> R(X,Y). R(X,Y) -> S(Y).`},
		{"linear chain", `R(X,Y) -> R(Y,Z).`},
		{"swap cascade", `R(X,Y) -> P(X,Y). P(X,Y) -> R(Y,Z).`},
		{"three-hop", `A(X) -> B(X,Y). B(X,Y) -> C(Y). C(X) -> A(X).`},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			s := set(t, tc.src)
			if !s.IsSticky() {
				t.Fatalf("corpus error: %q must be sticky", tc.src)
			}
			v, err := Decide(s, DecideOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if v.Terminates {
				t.Fatalf("must diverge: %+v", v)
			}
			if v.Method != "buchi-witness" || v.Lasso == nil || v.Seed == nil {
				t.Fatalf("witness expected: %+v", v)
			}
			if len(v.Lasso.Cycle) == 0 {
				t.Error("cycle must be non-empty")
			}
		})
	}
}

func TestDecideTerminatingFamilies(t *testing.T) {
	tests := []struct {
		name string
		src  string
	}{
		{"intro example", `R(X,Y) -> R(X,Z).`},
		{"datalog", `A(X) -> B(X). B(X) -> C(X).`},
		{"one-shot existential", `A(X) -> R(X,Y). R(X,Y) -> B(X).`},
		{"self-satisfied head", `R(X,Y) -> R(Z,Y).`},
		{"paper sticky example", `T(X,Y,Z) -> S(Y,W). R(X,Y), P(Y,Z) -> T(X,Y,W).`},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			s := set(t, tc.src)
			if !s.IsSticky() {
				t.Fatalf("corpus error: %q must be sticky", tc.src)
			}
			v, err := Decide(s, DecideOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if !v.Terminates {
				t.Fatalf("must terminate; witness seed %v lasso %v", v.Seed, v.Lasso)
			}
			if !v.Complete {
				t.Error("exploration should complete on these families")
			}
		})
	}
}

func TestDecideRejectsNonSticky(t *testing.T) {
	nonSticky := set(t, `T(X,Y,Z) -> S(X,W). R(X,Y), P(Y,Z) -> T(X,Y,W).`)
	if nonSticky.IsSticky() {
		t.Fatal("corpus error: second Section 2 set is not sticky")
	}
	if _, err := Decide(nonSticky, DecideOptions{}); err == nil {
		t.Error("non-sticky input must be rejected")
	}
	multi := set(t, `R(X) -> S(X), T(X).`)
	if _, err := Decide(multi, DecideOptions{}); err == nil {
		t.Error("multi-head input must be rejected")
	}
}

func TestWitnessMaterializesToDivergingDatabase(t *testing.T) {
	tests := []struct {
		name string
		src  string
	}{
		{"ladder", `S(X) -> R(X,Y). R(X,Y) -> S(Y).`},
		{"linear chain", `R(X,Y) -> R(Y,Z).`},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			s := set(t, tc.src)
			v, err := Decide(s, DecideOptions{})
			if err != nil || v.Terminates {
				t.Fatalf("diverging verdict needed: %v %v", v, err)
			}
			cat, err := MaterializeWitness(s, *v.Seed, v.Lasso, 3)
			if err != nil {
				t.Fatalf("materialize: %v", err)
			}
			if err := cat.ValidateProto(s); err != nil {
				t.Fatalf("proto-caterpillar invalid: %v", err)
			}
			if err := cat.ValidateCaterpillar(s); err != nil {
				t.Fatalf("caterpillar invalid: %v", err)
			}
			db, err := cat.Database()
			if err != nil {
				t.Fatal(err)
			}
			run := chase.RunChase(db, s, chase.Options{Variant: chase.Restricted, MaxSteps: 200})
			if run.Terminated() {
				t.Errorf("materialized witness %v must diverge", db)
			}
		})
	}
}

func TestCaterpillarValidatorsRejectBrokenPrefixes(t *testing.T) {
	s := set(t, `S(X) -> R(X,Y). R(X,Y) -> S(Y).`)
	v, err := Decide(s, DecideOptions{})
	if err != nil || v.Terminates {
		t.Fatal("need witness")
	}
	cat, err := MaterializeWitness(s, *v.Seed, v.Lasso, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the body: swap two atoms.
	if len(cat.Body) < 3 {
		t.Fatal("need at least 3 body atoms")
	}
	broken := *cat
	broken.Body = append(cat.Body[:0:0], cat.Body...)
	broken.Body[1], broken.Body[2] = broken.Body[2], broken.Body[1]
	if err := broken.ValidateProto(s); err == nil {
		t.Error("swapped body must fail validation")
	}
	// Mismatched trigger count.
	short := *cat
	short.Triggers = cat.Triggers[:len(cat.Triggers)-1]
	if err := short.ValidateProto(s); err == nil {
		t.Error("missing trigger must fail")
	}
	if !cat.IsFinitary() {
		t.Error("finite prefixes are finitary")
	}
}

func TestStateGrowthAcrossFamilies(t *testing.T) {
	// The decision explores more states for wider sets — sanity check for
	// the E7 experiment's shape.
	small := set(t, `R(X,Y) -> R(Y,Z).`)
	vSmall, err := Decide(small, DecideOptions{})
	if err != nil {
		t.Fatal(err)
	}
	large := set(t, `R(X,Y) -> P(X,Y). P(X,Y) -> Q(X,Y). Q(X,Y) -> R(Y,Z).`)
	vLarge, err := Decide(large, DecideOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if vLarge.StatesExplored <= vSmall.StatesExplored {
		t.Logf("small=%d large=%d (non-fatal: witness may be found early)",
			vSmall.StatesExplored, vLarge.StatesExplored)
	}
	if vSmall.Terminates || vLarge.Terminates {
		t.Error("both families diverge")
	}
}
