package sticky

import (
	"context"
	"fmt"

	"airct/internal/buchi"
	"airct/internal/chase"
	"airct/internal/logic"
	"airct/internal/tgds"
)

// Verdict is the outcome of the CT^res_∀∀(S) decision.
type Verdict struct {
	// Terminates is true when every restricted chase derivation of every
	// database is finite: L(A_T) = ∅.
	Terminates bool
	// Method is "buchi-empty" (all component automata empty) or
	// "buchi-witness" (an accepting lasso was found).
	Method string
	// Seed is the component A_{e₀,Π₀} producing the witness.
	Seed *Seed
	// Lasso is the accepting lasso (symbol keys) when diverging: the
	// caterpillar word prefix·cycle^ω encodes a free connected caterpillar.
	Lasso *buchi.Lasso
	// StatesExplored totals explored product states across components.
	StatesExplored int
	// Complete is false when some component exploration hit the state
	// bound, in which case a terminating verdict is only bound-relative.
	Complete bool
}

// DecideOptions configures the decision.
type DecideOptions struct {
	// MaxStates bounds each component's explored state space (0: 200_000).
	MaxStates int
	// Cache, when non-nil, memoises whole decisions across runs as
	// chase.StickyOutcome entries keyed by (set fingerprint, MaxStates). A
	// warm hit replays the identical Verdict — including the witness seed
	// and lasso — without building or exploring a single automaton; the
	// lasso is stored symbolically (interner-free) and the witness seed as
	// its index into the deterministic Seeds enumeration. Cancelled calls
	// are never stored.
	Cache *chase.Cache
}

func (o DecideOptions) maxStates() int {
	if o.MaxStates <= 0 {
		return 200_000
	}
	return o.MaxStates
}

// Decide decides CT^res_∀∀(S) for a sticky set by the paper's own
// algorithm (Theorem 6.1 / Appendix D.2): build the deterministic Büchi
// automaton A_T = ⋃_{(e,Π)} A_{e,Π} over caterpillar words and test
// emptiness. A non-empty component yields a lasso encoding a free
// connected caterpillar, hence (Theorem 6.5 + Theorem 4.1) a database with
// an infinite fair restricted chase derivation; emptiness of every
// component certifies termination on all instances.
func Decide(set *tgds.Set, opts DecideOptions) (*Verdict, error) {
	return DecideContext(context.Background(), set, opts)
}

// DecideContext is Decide under a context: the per-component Büchi
// exploration polls ctx.Done() (buchi.ExploreContext) and a cancelled call
// returns ctx's error instead of a verdict — a partial exploration is never
// interpreted. Uncancelled calls behave identically to Decide.
func DecideContext(ctx context.Context, set *tgds.Set, opts DecideOptions) (*Verdict, error) {
	if !set.IsSingleHead() {
		return nil, fmt.Errorf("sticky: Decide requires single-head TGDs")
	}
	if ok, m, err := tgds.IsSticky(set); err != nil {
		return nil, err
	} else if !ok {
		return nil, fmt.Errorf("sticky: input is not sticky: %v", m.Violation())
	}
	var setFP logic.Fingerprint
	if opts.Cache != nil {
		setFP = set.Fingerprint()
		if o, ok := opts.Cache.LookupStickyOutcome(setFP, opts.maxStates()); ok {
			return replayVerdict(set, o), nil
		}
	}
	verdict := &Verdict{Terminates: true, Method: "buchi-empty", Complete: true}
	seedIndex := int32(-1)
	for i, seed := range Seeds(set) {
		a, err := BuildAutomaton(set, seed)
		if err != nil {
			return nil, err
		}
		explored := buchi.ExploreContext(ctx, a, opts.maxStates())
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		verdict.StatesExplored += explored.Len()
		if !explored.Complete {
			verdict.Complete = false
		}
		if lasso, ok := explored.NonEmpty(); ok {
			seedCopy := seed
			verdict = &Verdict{
				Terminates:     false,
				Method:         "buchi-witness",
				Seed:           &seedCopy,
				Lasso:          lasso,
				StatesExplored: verdict.StatesExplored,
				Complete:       true,
			}
			seedIndex = int32(i)
			break
		}
	}
	if opts.Cache != nil {
		opts.Cache.StoreStickyOutcome(setFP, opts.maxStates(), recordVerdict(verdict, seedIndex))
	}
	return verdict, nil
}

// recordVerdict converts a finished decision into the portable cache entry:
// the witness seed as its Seeds index, the lasso's symbol keys copied by
// value so the entry stays immutable however the caller uses the Verdict.
func recordVerdict(v *Verdict, seedIndex int32) *chase.StickyOutcome {
	o := &chase.StickyOutcome{
		Terminates:     v.Terminates,
		Method:         v.Method,
		Complete:       v.Complete,
		StatesExplored: v.StatesExplored,
		SeedIndex:      seedIndex,
	}
	if v.Lasso != nil {
		o.LassoPrefix = append([]string(nil), v.Lasso.Prefix...)
		o.LassoCycle = append([]string(nil), v.Lasso.Cycle...)
		o.LassoGap = v.Lasso.Gap
	}
	return o
}

// replayVerdict rebuilds the recorded Verdict: the witness seed comes back
// out of the deterministic Seeds enumeration and the lasso slices are
// copied, so a replay and a live run hand the caller equal — and equally
// mutable — witness material.
func replayVerdict(set *tgds.Set, o *chase.StickyOutcome) *Verdict {
	v := &Verdict{
		Terminates:     o.Terminates,
		Method:         o.Method,
		Complete:       o.Complete,
		StatesExplored: o.StatesExplored,
	}
	if o.SeedIndex >= 0 {
		seeds := Seeds(set)
		seedCopy := seeds[o.SeedIndex]
		v.Seed = &seedCopy
		v.Lasso = &buchi.Lasso{
			Prefix: append([]string(nil), o.LassoPrefix...),
			Cycle:  append([]string(nil), o.LassoCycle...),
			Gap:    o.LassoGap,
		}
	}
	return v
}

// MaterializeWitness turns an accepting lasso into a concrete finitary
// caterpillar prefix: it unrolls prefix + pumps·cycle symbols, binding γ
// variables to the running path atom, leg variables to constants reused
// per cycle position (the Lemma 6.13 unification), and existential
// variables to fresh nulls. The returned caterpillar's Database() is a
// finite database whose restricted chase replays the path. Materialisation
// fails when a leg atom would need an invented (null) term — a pattern the
// unifying-function proof handles but this direct construction does not.
func MaterializeWitness(set *tgds.Set, seed Seed, lasso *buchi.Lasso, pumps int) (*Caterpillar, error) {
	if pumps < 1 {
		pumps = 1
	}
	var symbols []Symbol
	var slots []string // leg-constant reuse key per step
	for i, k := range lasso.Prefix {
		s, err := ParseSymbolKey(k)
		if err != nil {
			return nil, err
		}
		symbols = append(symbols, s)
		slots = append(slots, fmt.Sprintf("p%d", i))
	}
	for p := 0; p < pumps; p++ {
		for i, k := range lasso.Cycle {
			s, err := ParseSymbolKey(k)
			if err != nil {
				return nil, err
			}
			symbols = append(symbols, s)
			slots = append(slots, fmt.Sprintf("c%d", i))
		}
	}
	namer := logic.NewFreshNamer("w")
	cat := &Caterpillar{}
	alpha := seed.EType.CanonicalAtomFunc(func(class int) logic.Term {
		return logic.Const(fmt.Sprintf("a0_%d", class))
	})
	cat.Body = append(cat.Body, alpha)
	legSeen := make(map[string]bool)
	legConst := make(map[string]logic.Term)
	for i, sym := range symbols {
		t := set.TGDs[sym.TGDIndex]
		gamma := t.Body[sym.Gamma]
		h := logic.NewSubstitution()
		okBind := true
		for p := 1; p <= gamma.Pred.Arity; p++ {
			v := gamma.Arg(p)
			if prev, ok := h.Lookup(v); ok {
				if prev != alpha.Arg(p) {
					okBind = false
					break
				}
				continue
			}
			h.Bind(v, alpha.Arg(p))
		}
		if !okBind {
			return nil, fmt.Errorf("sticky: step %d: γ does not match the path atom", i+1)
		}
		// Leg variables: constants reused per slot.
		for bi, b := range t.Body {
			if bi == sym.Gamma {
				continue
			}
			for p := 1; p <= b.Pred.Arity; p++ {
				v := b.Arg(p)
				if _, ok := h.Lookup(v); ok {
					continue
				}
				key := fmt.Sprintf("%s|%d|%s", slots[i], sym.TGDIndex, v.Name)
				c, ok := legConst[key]
				if !ok {
					c = logic.Const(fmt.Sprintf("leg_%s_%s", slots[i], v.Name))
					legConst[key] = c
				}
				h.Bind(v, c)
			}
		}
		for bi, b := range t.Body {
			if bi == sym.Gamma {
				continue
			}
			legAtom := b.Apply(h)
			if !legAtom.IsFact() {
				return nil, fmt.Errorf("sticky: step %d: leg %v needs an invented term; direct materialisation unsupported", i+1, legAtom)
			}
			if !legSeen[legAtom.Key()] {
				legSeen[legAtom.Key()] = true
				cat.Legs = append(cat.Legs, legAtom)
			}
		}
		// Next path atom.
		head := t.HeadAtom()
		frontier := t.Frontier()
		args := make([]logic.Term, head.Pred.Arity)
		fresh := make(map[logic.Term]logic.Term)
		for p := 1; p <= head.Pred.Arity; p++ {
			v := head.Arg(p)
			if frontier.Has(v) {
				args[p-1] = h.ApplyTerm(v)
				continue
			}
			n, ok := fresh[v]
			if !ok {
				n = namer.NextNull()
				fresh[v] = n
			}
			args[p-1] = n
		}
		next := logic.NewAtom(head.Pred, args...)
		cat.Triggers = append(cat.Triggers, chase.NewTrigger(sym.TGDIndex, t, h))
		cat.Gammas = append(cat.Gammas, sym.Gamma)
		cat.Body = append(cat.Body, next)
		alpha = next
	}
	return cat, nil
}
