package sticky

import (
	"fmt"
	"sort"
	"strings"

	"airct/internal/buchi"
	"airct/internal/etypes"
	"airct/internal/logic"
	"airct/internal/tgds"
)

// trackedType abstracts a previous body atom α_i relative to the *current*
// atom α_j (the T_j-equality type of Appendix A / Lemma D.3): its
// predicate, the partition of its positions, and for each class either the
// current-atom class holding the same term (label ≥ 0) or -1 when the term
// left the path. Everything needed to evaluate α_i ≺s α_{j+k} later is
// here — Lemma D.3's point.
type trackedType struct {
	pred  logic.Predicate
	rep   []int // rep[i] = first position (0-based) with the same term
	label []int // per position's class rep: current-atom class, or -1
}

func (tt trackedType) key() string {
	var b strings.Builder
	b.WriteString(tt.pred.Name)
	fmt.Fprintf(&b, "/%d:", tt.pred.Arity)
	for i := range tt.rep {
		fmt.Fprintf(&b, "%d.%d,", tt.rep[i], tt.label[i])
	}
	return b.String()
}

// pathState is a state of the product automaton A_{e₀,Π₀}: the equality
// type of the current path atom (A_pc), the stop-tracking set Θ (A_qc),
// and the relay-position sets with the acceptance flag (A_cc).
type pathState struct {
	etype   etypes.EType
	tracked []trackedType // canonically sorted, deduplicated
	pi1     []int         // positions (1-based) of the current relay term
	pi2     []int         // positions of all relay terms, current included
	accept  bool          // ⊤ right after a pass-on point
}

func (s pathState) key() string {
	var b strings.Builder
	b.WriteString(s.etype.Key())
	b.WriteByte('|')
	for _, tt := range s.tracked {
		b.WriteString(tt.key())
		b.WriteByte(';')
	}
	b.WriteByte('|')
	fmt.Fprintf(&b, "%v|%v|%v", s.pi1, s.pi2, s.accept)
	return b.String()
}

// machine carries the per-set context shared by all transitions.
type machine struct {
	set     *tgds.Set
	marking *tgds.Marking
	symbols map[string]Symbol
	states  map[string]pathState
}

func newMachine(set *tgds.Set) (*machine, error) {
	ok, marking, err := tgds.IsSticky(set)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("sticky: set is not sticky: %v", marking.Violation())
	}
	m := &machine{
		set:     set,
		marking: marking,
		symbols: make(map[string]Symbol),
		states:  make(map[string]pathState),
	}
	for _, s := range Alphabet(set) {
		m.symbols[s.Key()] = s
	}
	return m, nil
}

func (m *machine) intern(s pathState) string {
	k := s.key()
	if _, ok := m.states[k]; !ok {
		m.states[k] = s
	}
	return k
}

// step implements the product transition δ = (δet, δΘ, δcc) of Appendix
// D.2. It returns false for the reject sink.
func (m *machine) step(s pathState, sym Symbol) (pathState, bool) {
	t := m.set.TGDs[sym.TGDIndex]
	gamma := t.Body[sym.Gamma]
	head := t.HeadAtom()
	n := gamma.Pred.Arity

	// --- A_pc: homomorphism of γ onto the canonical atom of the current
	// equality type, then the new equality type δet(e, (σ,γ,·)).
	if gamma.Pred != s.etype.Pred {
		return pathState{}, false
	}
	h := make(map[logic.Term]int) // γ-variable -> current class (1-based rep)
	for p := 1; p <= n; p++ {
		v := gamma.Arg(p)
		c := s.etype.ClassOf(p)
		if prev, ok := h[v]; ok {
			if prev != c {
				return pathState{}, false // γ repeats a variable across distinct classes
			}
			continue
		}
		h[v] = c
	}

	// New equality type over the head positions: same class iff same head
	// variable, or both variables γ-bound to the same current class.
	// Frontier variables bound by leg atoms, and existential variables,
	// are pairwise-distinct fresh symbols (freeness).
	mHead := head.Pred.Arity
	rep := make([]int, mHead)
	for i := 0; i < mHead; i++ {
		rep[i] = i
		vi := head.Args[i]
		for j := 0; j < i; j++ {
			vj := head.Args[j]
			same := vi == vj
			if !same {
				ci, oki := h[vi]
				cj, okj := h[vj]
				same = oki && okj && ci == cj
			}
			if same {
				rep[i] = rep[j]
				break
			}
		}
	}
	newType, err := etypes.FromPartition(head.Pred, rep)
	if err != nil {
		return pathState{}, false
	}

	// Old-class -> new-class map for terms surviving through γ.
	oldToNew := make(map[int]int)
	for p := 1; p <= mHead; p++ {
		if c, ok := h[head.Arg(p)]; ok {
			oldToNew[c] = newType.ClassOf(p)
		}
	}

	// --- A_qc: update Θ (tracked types) and check stops (Lemma D.3).
	frontier := t.Frontier()
	frontierClass := make(map[int]bool)
	for p := 1; p <= mHead; p++ {
		if frontier.Has(head.Arg(p)) {
			frontierClass[newType.ClassOf(p)] = true
		}
	}
	newTracked := make([]trackedType, 0, len(s.tracked)+1)
	seen := make(map[string]bool)
	push := func(tt trackedType) {
		k := tt.key()
		if !seen[k] {
			seen[k] = true
			newTracked = append(newTracked, tt)
		}
	}
	for _, tt := range append(s.tracked, selfType(s.etype)) {
		upd := trackedType{pred: tt.pred, rep: tt.rep, label: make([]int, len(tt.label))}
		for i, lbl := range tt.label {
			if lbl < 0 {
				upd.label[i] = -1
			} else if nc, ok := oldToNew[lbl]; ok {
				upd.label[i] = nc
			} else {
				upd.label[i] = -1
			}
		}
		if stops(upd, newType, frontierClass) {
			return pathState{}, false // a previous atom stops the new one
		}
		push(upd)
	}
	sort.Slice(newTracked, func(i, j int) bool { return newTracked[i].key() < newTracked[j].key() })

	// --- A_cc: relay propagation δpos, immortality, pass-on bookkeeping.
	dpos := func(pi []int) []int {
		vars := make(map[logic.Term]bool)
		for _, j := range pi {
			if j <= n {
				vars[gamma.Arg(j)] = true
			}
		}
		var out []int
		for i := 1; i <= mHead; i++ {
			if vars[head.Arg(i)] {
				out = append(out, i)
			}
		}
		return out
	}
	d1 := dpos(s.pi1)
	d2 := dpos(s.pi2)
	if len(d1) == 0 {
		return pathState{}, false // the current relay term died before the next pass-on
	}
	for _, i := range d2 {
		// A relay term reached an immortal position: the variable at head
		// position i is an unmarked frontier variable.
		v := head.Arg(i)
		if frontier.Has(v) && !m.marking.IsMarked(v) {
			return pathState{}, false
		}
	}
	next := pathState{etype: newType, tracked: newTracked}
	if len(sym.P) > 0 {
		next.pi1 = append([]int(nil), sym.P...)
		next.pi2 = mergeSorted(sym.P, mergeSorted(d1, d2))
		next.accept = true
	} else {
		next.pi1 = d1
		next.pi2 = mergeSorted(d1, d2)
		next.accept = false
	}
	return next, true
}

// selfType is the tracked type of the current atom relative to itself:
// every class labeled by itself.
func selfType(e etypes.EType) trackedType {
	n := e.Pred.Arity
	tt := trackedType{pred: e.Pred, rep: make([]int, n), label: make([]int, n)}
	for i := 1; i <= n; i++ {
		tt.rep[i-1] = e.ClassOf(i) - 1
		tt.label[i-1] = e.ClassOf(i)
	}
	return tt
}

// stops decides whether the previous atom abstracted by tt stops the new
// atom of type e (with the given frontier classes): a homomorphism h′ from
// the new atom onto the old one must map each new-atom class consistently
// and fix the frontier classes — the old atom's class at a frontier
// position must be labeled with exactly that new-atom class.
func stops(tt trackedType, e etypes.EType, frontierClass map[int]bool) bool {
	if tt.pred != e.Pred {
		return false
	}
	n := e.Pred.Arity
	target := make(map[int]int) // new class -> old class rep
	for p := 1; p <= n; p++ {
		nc := e.ClassOf(p)
		oc := tt.rep[p-1]
		if prev, ok := target[nc]; ok {
			if prev != oc {
				return false // inconsistent: one new term would map to two old terms
			}
			continue
		}
		target[nc] = oc
	}
	for p := 1; p <= n; p++ {
		nc := e.ClassOf(p)
		if frontierClass[nc] && tt.label[target[nc]] != nc {
			return false // frontier term not fixed
		}
	}
	return true
}

func mergeSorted(a, b []int) []int {
	set := make(map[int]bool, len(a)+len(b))
	for _, x := range a {
		set[x] = true
	}
	for _, x := range b {
		set[x] = true
	}
	out := make([]int, 0, len(set))
	for x := range set {
		out = append(out, x)
	}
	sort.Ints(out)
	return out
}

// Seed identifies a component automaton A_{e₀,Π₀}: the equality type of
// the first body atom and the class of positions carrying the first relay
// term.
type Seed struct {
	EType etypes.EType
	Pi0   []int
}

// Seeds enumerates the (e₀, Π₀) pairs of the union A_T: every equality
// type over sch(T) paired with each of its position classes.
func Seeds(set *tgds.Set) []Seed {
	var out []Seed
	for _, e := range etypes.AllForSchema(set.Schema()) {
		for _, c := range e.Classes() {
			positions := []int{}
			for p := 1; p <= e.Pred.Arity; p++ {
				if e.ClassOf(p) == c {
					positions = append(positions, p)
				}
			}
			out = append(out, Seed{EType: e, Pi0: positions})
		}
	}
	return out
}

// BuildAutomaton constructs the deterministic Büchi automaton A_{e₀,Π₀}
// over caterpillar words for the given seed.
func BuildAutomaton(set *tgds.Set, seed Seed) (*buchi.Automaton, error) {
	m, err := newMachine(set)
	if err != nil {
		return nil, err
	}
	initial := pathState{etype: seed.EType, pi1: append([]int(nil), seed.Pi0...), pi2: append([]int(nil), seed.Pi0...)}
	initKey := m.intern(initial)
	return &buchi.Automaton{
		Alphabet: AlphabetKeys(set),
		Initial:  initKey,
		Step: func(stateKey, symKey string) (string, bool) {
			st, ok := m.states[stateKey]
			if !ok {
				return "", false
			}
			next, ok := m.step(st, m.symbols[symKey])
			if !ok {
				return "", false
			}
			return m.intern(next), true
		},
		Accepting: func(stateKey string) bool {
			return m.states[stateKey].accept
		},
	}, nil
}
