package sticky

import (
	"context"
	"testing"
)

func TestDecideContextCancelledReturnsError(t *testing.T) {
	s := set(t, `
		B1(X) -> R(X,Y).
		R(X,Y) -> B2(Y).
		B2(X) -> B1(X).
	`)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	v, err := DecideContext(ctx, s, DecideOptions{})
	if err != context.Canceled {
		t.Fatalf("err = %v (verdict %+v), want context.Canceled — a partial exploration must never be interpreted", err, v)
	}
}

func TestDecideContextBackgroundMatchesDecide(t *testing.T) {
	s := set(t, `
		B1(X) -> R(X,Y).
		R(X,Y) -> B2(Y).
		B2(X) -> B1(X).
	`)
	plain, err := Decide(s, DecideOptions{})
	if err != nil {
		t.Fatal(err)
	}
	bg, err := DecideContext(context.Background(), s, DecideOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Terminates != bg.Terminates || plain.Method != bg.Method ||
		plain.StatesExplored != bg.StatesExplored || plain.Complete != bg.Complete {
		t.Errorf("Background-context Decide drifted: %+v vs %+v", bg, plain)
	}
}
