package fairness

import (
	"testing"

	"airct/internal/chase"
	"airct/internal/parser"
)

// divergeWithStarvation: one component diverges (S/R ladder), another (P→Q)
// is violated from the start; a picker that prefers the ladder starves the
// P-trigger, yielding an unfair infinite derivation. The program is
// single-head, so Theorem 4.1 applies: Fairize must repair it.
const divergeWithStarvation = `
	S(a). P(a).
	grow: S(X) -> R(X,Y).
	next: R(X,Y) -> S(Y).
	want: P(X) -> Q(X).
`

func TestMaterializeCutsAtHorizon(t *testing.T) {
	prog := parser.MustParse(divergeWithStarvation)
	trs, cut, err := Materialize(prog.Database, prog.TGDs, OnlyTGD("grow"), 5)
	if err != nil {
		t.Fatal(err)
	}
	// grow fires once per S-atom; without next, only S(a) exists, so the
	// derivation stops after one step.
	if cut || len(trs) != 1 {
		t.Fatalf("OnlyTGD(grow) = %d steps, cut %v", len(trs), cut)
	}
	trs, cut, err = Materialize(prog.Database, prog.TGDs, PreferTGD("grow"), 8)
	if err != nil {
		t.Fatal(err)
	}
	if !cut || len(trs) != 8 {
		t.Fatalf("PreferTGD(grow) must fill the horizon: %d steps, cut %v", len(trs), cut)
	}
}

func TestUnfairWitnessesDetectStarvation(t *testing.T) {
	prog := parser.MustParse(divergeWithStarvation)
	// Alternate grow/next forever, never firing want.
	pick := func(d *chase.Derivation) (chase.Trigger, bool) {
		for _, tr := range d.Active() {
			if tr.TGD.Label != "want" {
				return tr, true
			}
		}
		return chase.Trigger{}, false
	}
	trs, cut, err := Materialize(prog.Database, prog.TGDs, pick, 10)
	if err != nil || !cut {
		t.Fatalf("materialize: %v, cut %v", err, cut)
	}
	ws, err := UnfairWitnesses(prog.Database, prog.TGDs, trs)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) == 0 {
		t.Fatal("the want-trigger must be a starvation witness")
	}
	found := false
	for _, w := range ws {
		if w.TGD.Label == "want" {
			found = true
		}
	}
	if !found {
		t.Errorf("witnesses = %v", ws)
	}
}

func TestFairizeRepairsSingleHeadDerivation(t *testing.T) {
	prog := parser.MustParse(divergeWithStarvation)
	pick := func(d *chase.Derivation) (chase.Trigger, bool) {
		for _, tr := range d.Active() {
			if tr.TGD.Label != "want" {
				return tr, true
			}
		}
		return chase.Trigger{}, false
	}
	trs, rep, err := Fairize(prog.Database, prog.TGDs, pick, 12)
	if err != nil {
		t.Fatalf("Fairize: %v", err)
	}
	if rep.Rounds == 0 {
		t.Fatal("at least one insertion expected (the want trigger)")
	}
	// Before repair the want-trigger is starved from step 0; afterwards
	// fairness must reach well into the prefix (only tail triggers remain).
	if rep.FairUpTo < 6 {
		t.Errorf("FairUpTo = %d, want repair past the starved step", rep.FairUpTo)
	}
	if !rep.DiagonalStable {
		t.Error("insertions must respect the diagonal property")
	}
	// The repaired derivation still replays cleanly and is longer.
	d, err := Replay(prog.Database, prog.TGDs, trs)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 12+rep.Rounds {
		t.Errorf("length = %d, want %d", d.Len(), 12+rep.Rounds)
	}
	// The starved Q(a) must now be present.
	has := false
	for _, a := range d.Instance().Atoms() {
		if a.Pred.Name == "Q" {
			has = true
		}
	}
	if !has {
		t.Error("Q(a) must appear after fairisation")
	}
}

func TestFairizeFiniteDerivationIsVacuous(t *testing.T) {
	prog := parser.MustParse(`
		P(a).
		want: P(X) -> Q(X).
	`)
	trs, rep, err := Fairize(prog.Database, prog.TGDs, FirstActive, 10)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rounds != 0 || rep.FairUpTo != len(trs)+1 {
		t.Errorf("finite derivations need no repair: %+v", rep)
	}
	if len(trs) != 1 {
		t.Errorf("steps = %d", len(trs))
	}
}

// exampleB1 is the multi-head counterexample to the Fairness Theorem.
const exampleB1 = `
	R(a,b,b).
	mh1: R(X,Y,Y) -> R(X,Z,Y), R(Z,Y,Y).
	mh2: R(X,Y,Z) -> R(Z,Z,Z).
`

func TestExampleB1FairizeCollapses(t *testing.T) {
	// The mh1-only derivation is infinite and unfair. Repairing it with the
	// Lemma 4.5 insertion of R(b,b,b) deactivates *every* mh1 trigger, so
	// the fairised derivation collapses to a fixpoint: no fair continuation
	// exists. That is the paper's statement for Example B.1 — an infinite
	// derivation exists but every valid (fair) one is finite — and shows
	// why Theorem 4.1 needs single-head TGDs.
	prog := parser.MustParse(exampleB1)
	for _, horizon := range []int{10, 20} {
		_, rep, err := Fairize(prog.Database, prog.TGDs, OnlyTGD("mh1"), horizon)
		if err != nil {
			t.Fatalf("horizon %d: %v", horizon, err)
		}
		if rep.ExtensibleAfter {
			t.Errorf("horizon %d: fairised Example B.1 must collapse to a fixpoint: %+v", horizon, rep)
		}
		if rep.Rounds == 0 {
			t.Errorf("horizon %d: the mh2 witness must be inserted", horizon)
		}
	}
}

func TestSingleHeadFairUpToGrowsWithHorizon(t *testing.T) {
	// Contrast with Example B.1: for the single-head ladder, FairUpTo grows
	// with the horizon — the finite shadow of Theorem 4.1.
	prog := parser.MustParse(divergeWithStarvation)
	pick := func(d *chase.Derivation) (chase.Trigger, bool) {
		for _, tr := range d.Active() {
			if tr.TGD.Label != "want" {
				return tr, true
			}
		}
		return chase.Trigger{}, false
	}
	var prev int
	for i, horizon := range []int{8, 16, 32} {
		_, rep, err := Fairize(prog.Database, prog.TGDs, pick, horizon)
		if err != nil {
			t.Fatalf("horizon %d: %v", horizon, err)
		}
		if i > 0 && rep.FairUpTo <= prev {
			t.Errorf("horizon %d: FairUpTo = %d, must grow past %d", horizon, rep.FairUpTo, prev)
		}
		if !rep.ExtensibleAfter {
			t.Errorf("horizon %d: single-head fairisation must stay extensible", horizon)
		}
		prev = rep.FairUpTo
	}
}

func TestExampleB1DeactivationSetGrowsWithHorizon(t *testing.T) {
	// Directly observe the non-finiteness of A: the longer the mh1-only
	// prefix, the more steps the mh2 insertion deactivates.
	prog := parser.MustParse(exampleB1)
	sizes := make([]int, 0, 2)
	for _, horizon := range []int{6, 12} {
		trs, cut, err := Materialize(prog.Database, prog.TGDs, OnlyTGD("mh1"), horizon)
		if err != nil || !cut {
			t.Fatalf("materialize: %v cut=%v", err, cut)
		}
		ws, err := UnfairWitnesses(prog.Database, prog.TGDs, trs)
		if err != nil || len(ws) == 0 {
			t.Fatalf("witnesses: %v, %v", ws, err)
		}
		var mh2 chase.Trigger
		for _, w := range ws {
			if w.TGD.Label == "mh2" {
				mh2 = w
			}
		}
		A, err := deactivationSet(prog.Database, prog.TGDs, trs, mh2)
		if err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, len(A))
	}
	if sizes[1] <= sizes[0] {
		t.Errorf("A must grow with the horizon: %v", sizes)
	}
}

func TestLemma44BoundHoldsOnSingleHead(t *testing.T) {
	prog := parser.MustParse(divergeWithStarvation)
	pick := PreferTGD("grow")
	trs, cut, err := Materialize(prog.Database, prog.TGDs, pick, 15)
	if err != nil || !cut {
		t.Fatalf("materialize: %v", err)
	}
	ws, err := UnfairWitnesses(prog.Database, prog.TGDs, trs)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) == 0 {
		t.Skip("no persistent witness in this ordering")
	}
	sizeA, bound, err := CheckLemma44(prog.Database, prog.TGDs, trs, ws[0])
	if err != nil {
		t.Fatalf("Lemma 4.4 check: %v", err)
	}
	if sizeA > bound {
		t.Errorf("|A| = %d exceeds bound %d", sizeA, bound)
	}
}

func TestLemma44BoundRejectsMultiHead(t *testing.T) {
	prog := parser.MustParse(exampleB1)
	if _, err := Lemma44Bound(prog.TGDs); err == nil {
		t.Error("multi-head must be rejected")
	}
}

func TestReplayRejectsBrokenSequences(t *testing.T) {
	prog := parser.MustParse(divergeWithStarvation)
	trs, _, err := Materialize(prog.Database, prog.TGDs, PreferTGD("grow"), 4)
	if err != nil {
		t.Fatal(err)
	}
	// Reversing the ladder breaks parent ordering.
	rev := make([]chase.Trigger, len(trs))
	for i, tr := range trs {
		rev[len(trs)-1-i] = tr
	}
	if _, err := Replay(prog.Database, prog.TGDs, rev); err == nil {
		t.Error("reversed derivation must not replay")
	}
}

func TestFairizeIdempotentOnFairPrefix(t *testing.T) {
	prog := parser.MustParse(divergeWithStarvation)
	// FirstActive is fair-ish here: it services the want-trigger early.
	trs1, rep1, err := Fairize(prog.Database, prog.TGDs, FirstActive, 10)
	if err != nil {
		t.Fatal(err)
	}
	if rep1.FairUpTo < 5 {
		t.Errorf("FairUpTo = %d, expected fairness deep into the prefix", rep1.FairUpTo)
	}
	// Re-running Fairize over the produced prefix (as a picker replay)
	// inserts nothing new.
	i := 0
	replayPick := func(d *chase.Derivation) (chase.Trigger, bool) {
		if i >= len(trs1) {
			return chase.Trigger{}, false
		}
		tr := trs1[i]
		i++
		return tr, true
	}
	_, rep2, err := Fairize(prog.Database, prog.TGDs, replayPick, len(trs1))
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Rounds != 0 {
		t.Errorf("second fairisation must be a no-op, did %d rounds", rep2.Rounds)
	}
}
