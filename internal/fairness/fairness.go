// Package fairness makes the Fairness Theorem (Theorem 4.1) executable on
// finite prefixes of infinite restricted chase derivations.
//
// The paper's construction consumes an infinite derivation (I_i)_{i≥0} and
// builds an infinite matrix s_{D,T} of derivations whose diagonal is fair:
// row n+1 copies row n up to a carefully chosen index ℓ (greater than the
// finite deactivation set A of Lemma 4.4), fires one persistently active
// trigger there (Lemma 4.5), and mimics the rest. This package implements
// exactly that row-transformation on lazily generated derivations cut at a
// horizon: Fairize repeatedly locates the earliest trigger that stays
// active to the horizon, computes A empirically, inserts the deactivating
// application after max({n,m} ∪ A), and replays — validating every step
// through chase.Derivation.Apply, which refuses non-active triggers.
//
// For single-head TGDs the construction succeeds (Theorem 4.1); for
// multi-head TGDs it can collapse — Example B.1 — because A is no longer
// finite: the inserted atoms deactivate every later step. Fairize reports
// that collapse as ErrNotFairizable, which is the paper's counterexample
// behaving as stated.
package fairness

import (
	"errors"
	"fmt"
	"sort"

	"airct/internal/chase"
	"airct/internal/etypes"
	"airct/internal/instance"
	"airct/internal/tgds"
)

// Picker chooses the next trigger of a derivation, given the derivation so
// far. Returning false means no choice (the derivation reached a fixpoint
// or the picker abstains). Pickers encode "infinite derivations" lazily.
type Picker func(d *chase.Derivation) (chase.Trigger, bool)

// FirstActive picks the deterministically first active trigger.
func FirstActive(d *chase.Derivation) (chase.Trigger, bool) {
	act := d.Active()
	if len(act) == 0 {
		return chase.Trigger{}, false
	}
	return act[0], true
}

// PreferTGD returns a picker that always fires a trigger of the labeled TGD
// when one is active, falling back to the first active trigger otherwise.
// Preferring one TGD forever is the canonical way to build unfair
// derivations.
func PreferTGD(label string) Picker {
	return func(d *chase.Derivation) (chase.Trigger, bool) {
		act := d.Active()
		if len(act) == 0 {
			return chase.Trigger{}, false
		}
		for _, tr := range act {
			if tr.TGD.Label == label {
				return tr, true
			}
		}
		return act[0], true
	}
}

// OnlyTGD returns a picker that fires only triggers of the labeled TGD and
// abstains when none is active (even if other TGDs are violated).
func OnlyTGD(label string) Picker {
	return func(d *chase.Derivation) (chase.Trigger, bool) {
		for _, tr := range d.Active() {
			if tr.TGD.Label == label {
				return tr, true
			}
		}
		return chase.Trigger{}, false
	}
}

// Materialize runs the picker for up to horizon steps and returns the
// trigger sequence; the bool reports whether the derivation was cut by the
// horizon (true) or ended at a fixpoint/abstention (false).
func Materialize(db *instance.Database, set *tgds.Set, pick Picker, horizon int) ([]chase.Trigger, bool, error) {
	d := chase.NewDerivation(db, set)
	var out []chase.Trigger
	for i := 0; i < horizon; i++ {
		tr, ok := pick(d)
		if !ok {
			return out, false, nil
		}
		if err := d.Apply(tr); err != nil {
			return nil, false, fmt.Errorf("fairness: picker chose a non-applicable trigger at step %d: %w", i, err)
		}
		out = append(out, tr)
	}
	return out, true, nil
}

// Replay validates a trigger sequence as a restricted chase derivation of D
// w.r.t. T, returning the final Derivation.
func Replay(db *instance.Database, set *tgds.Set, triggers []chase.Trigger) (*chase.Derivation, error) {
	d := chase.NewDerivation(db, set)
	for i, tr := range triggers {
		if err := d.Apply(tr); err != nil {
			return nil, fmt.Errorf("fairness: step %d: %w", i, err)
		}
	}
	return d, nil
}

// ErrNotFairizable is returned when the Lemma 4.5 insertion cannot be
// performed within the horizon — for single-head inputs this means the
// horizon is too small; for multi-head inputs it is the Example B.1
// collapse (the deactivation set A is not finite).
var ErrNotFairizable = errors.New("fairness: derivation cannot be fairised within the horizon")

// Report describes a Fairize run.
type Report struct {
	// Rounds is the number of row transformations performed (the n of the
	// matrix s_{D,T} at which the prefix became fair up to FairUpTo).
	Rounds int
	// Inserted lists the deactivating triggers fired by each round, in
	// round order.
	Inserted []chase.Trigger
	// InsertedAt lists the 0-based positions ℓ of each insertion.
	InsertedAt []int
	// FairUpTo is the largest K such that every trigger first active before
	// step K is non-active at the end of the prefix. A finite cut of an
	// infinite derivation always has freshly activated tail triggers, so
	// full fairness is observable only at infinity; FairUpTo growing with
	// the horizon is the finite witness of Theorem 4.1, while FairUpTo
	// pinned at a constant (Example B.1: 0) witnesses its multi-head
	// failure.
	FairUpTo int
	// Blocked lists witnesses whose Lemma 4.5 insertion point fell outside
	// the prefix: for single-head inputs these are tail triggers (m near
	// the horizon); an early blocked witness signals the multi-head
	// collapse, where the deactivation set A reaches the horizon.
	Blocked []chase.Trigger
	// BlockedAt lists the first-activation steps of the blocked witnesses.
	BlockedAt []int
	// DiagonalStable reports whether every round n modified the derivation
	// only at positions > n — the diagonal property of Definition 4.2.
	DiagonalStable bool
	// ExtensibleAfter reports whether the picker can still choose a trigger
	// after the repaired prefix — whether the fairised derivation remains
	// infinite. For single-head inputs Theorem 4.1 guarantees a fair
	// *infinite* derivation exists, so repair preserves extensibility; for
	// Example B.1 every fair derivation is finite and repair collapses the
	// prefix to a fixpoint (ExtensibleAfter = false).
	ExtensibleAfter bool
}

// Fairize implements the Theorem 4.1 construction on a horizon-bounded
// prefix: starting from the derivation the picker generates, it repeatedly
// finds the earliest trigger that becomes active and remains active through
// the end of the prefix, and performs the Lemma 4.5 insertion. Witnesses
// whose insertion point falls outside the prefix are recorded as Blocked
// and repair stops; the final FairUpTo measures how far fairness reaches.
func Fairize(db *instance.Database, set *tgds.Set, pick Picker, horizon int) ([]chase.Trigger, *Report, error) {
	triggers, cut, err := Materialize(db, set, pick, horizon)
	if err != nil {
		return nil, nil, err
	}
	report := &Report{DiagonalStable: true}
	if !cut {
		// Finite derivation: already valid, fairness is vacuous.
		report.FairUpTo = len(triggers) + 1
		return triggers, report, nil
	}
	for round := 0; round <= horizon; round++ {
		witness, m, found, err := earliestPersistentlyActive(db, set, triggers)
		if err != nil {
			return nil, report, err
		}
		if !found {
			break
		}
		// Lemma 4.4 / deactivation set A, computed empirically: the steps
		// whose triggers would be non-active had the witness result been
		// present already.
		A, err := deactivationSet(db, set, triggers, witness)
		if err != nil {
			return nil, report, err
		}
		ell := round
		if m > ell {
			ell = m
		}
		for _, i := range A {
			if i > ell {
				ell = i
			}
		}
		ell++ // strictly greater than all of {n, m} ∪ A
		if ell > len(triggers) {
			// Insertion point outside the prefix: the witness cannot be
			// deactivated within the horizon. For single-head inputs this
			// happens only for tail triggers; an early m here is the
			// Example B.1 collapse.
			report.Blocked = append(report.Blocked, witness)
			report.BlockedAt = append(report.BlockedAt, m)
			break
		}
		next := make([]chase.Trigger, 0, len(triggers)+1)
		next = append(next, triggers[:ell]...)
		next = append(next, witness)
		next = append(next, triggers[ell:]...)
		// Lemma 4.5: the new sequence must still be a restricted chase
		// derivation; Replay verifies every step's activity.
		if _, err := Replay(db, set, next); err != nil {
			return nil, report, fmt.Errorf("%w: Lemma 4.5 replay failed: %v", ErrNotFairizable, err)
		}
		if ell <= round {
			report.DiagonalStable = false
		}
		triggers = next
		report.Rounds++
		report.Inserted = append(report.Inserted, witness)
		report.InsertedAt = append(report.InsertedAt, ell)
	}
	fairUpTo, err := FairHorizon(db, set, triggers)
	if err != nil {
		return nil, report, err
	}
	report.FairUpTo = fairUpTo
	d, err := Replay(db, set, triggers)
	if err != nil {
		return nil, report, err
	}
	_, report.ExtensibleAfter = pick(d)
	return triggers, report, nil
}

// activityLog replays a prefix while recording, per distinct trigger (by
// interned (TGD index, binding) identity — no Key() strings), the first step
// at which it was active. Triggers are stored densely in first-seen order;
// within one step the active list is canonically ordered, so ID order is
// (first step, canonical order) — the deterministic order the callers need.
type activityLog struct {
	trigs     *chase.TriggerInterner
	byID      []chase.Trigger
	firstStep []int
}

// replayRecording replays the prefix on a fresh derivation, recording first
// activations before step 0 and after every step, and returns the final
// derivation and the log.
func replayRecording(db *instance.Database, set *tgds.Set, triggers []chase.Trigger) (*chase.Derivation, *activityLog, error) {
	d := chase.NewDerivation(db, set)
	log := &activityLog{trigs: chase.NewTriggerInterner()}
	record := func(step int) {
		for _, tr := range d.Active() {
			if _, isNew := log.trigs.Intern(tr); isNew {
				log.byID = append(log.byID, tr)
				log.firstStep = append(log.firstStep, step)
			}
		}
	}
	record(0)
	for i, tr := range triggers {
		if err := d.Apply(tr); err != nil {
			return nil, nil, fmt.Errorf("fairness: step %d: %w", i, err)
		}
		record(i + 1)
	}
	return d, log, nil
}

// FairHorizon returns the largest K such that every trigger that first
// became active before step K of the replayed prefix is non-active at its
// end. K = len(triggers)+1 means no starved trigger at all.
func FairHorizon(db *instance.Database, set *tgds.Set, triggers []chase.Trigger) (int, error) {
	d, log, err := replayRecording(db, set, triggers)
	if err != nil {
		return 0, err
	}
	min := len(triggers) + 1
	for id, tr := range log.byID {
		if step := log.firstStep[id]; step < min && chase.IsActive(tr, d.Instance()) {
			min = step
		}
	}
	return min, nil
}

// earliestPersistentlyActive replays the prefix and returns the trigger
// that becomes active earliest and is still active on the final instance,
// together with the step index at which it first became active. Ties on the
// first-activation step resolve to the canonically least trigger — which is
// ID order, since IDs are minted from canonically ordered Active() lists.
func earliestPersistentlyActive(db *instance.Database, set *tgds.Set, triggers []chase.Trigger) (chase.Trigger, int, bool, error) {
	d, log, err := replayRecording(db, set, triggers)
	if err != nil {
		return chase.Trigger{}, 0, false, err
	}
	bestStep := -1
	var best chase.Trigger
	for id, tr := range log.byID {
		step := log.firstStep[id]
		if bestStep != -1 && step >= bestStep {
			continue
		}
		if !chase.IsActive(tr, d.Instance()) {
			continue
		}
		bestStep, best = step, tr
	}
	if bestStep == -1 {
		return chase.Trigger{}, 0, false, nil
	}
	return best, bestStep, true, nil
}

// deactivationSet computes A = {i : firing the witness first would make
// step i's trigger non-active} over the prefix, by checking each step's
// activity on I_i extended with the witness result.
func deactivationSet(db *instance.Database, set *tgds.Set, triggers []chase.Trigger, witness chase.Trigger) ([]int, error) {
	probe := chase.NewNullFactory(chase.StructuralNaming)
	extra := chase.Result(witness, probe)
	d := chase.NewDerivation(db, set)
	var A []int
	for i, tr := range triggers {
		ext := d.Instance().Clone()
		for _, a := range extra {
			ext.Add(a)
		}
		if !chase.IsActive(tr, ext) {
			A = append(A, i)
		}
		if err := d.Apply(tr); err != nil {
			return nil, fmt.Errorf("fairness: step %d: %w", i, err)
		}
	}
	return A, nil
}

// Lemma44Bound returns the equality-type bound underlying Lemma 4.4 for a
// single-head set: the deactivation set of any trigger contains at most
// Σ_σ |etypes of head(σ)| indices, because stopped atoms produced by the
// same TGD agree on their frontier and must realise pairwise distinct
// equality types.
func Lemma44Bound(set *tgds.Set) (int, error) {
	if !set.IsSingleHead() {
		return 0, fmt.Errorf("fairness: Lemma 4.4 is a single-head statement")
	}
	n := 0
	for _, t := range set.TGDs {
		n += len(etypes.AllForPredicate(t.HeadAtom().Pred))
	}
	return n, nil
}

// CheckLemma44 verifies the Lemma 4.4 bound on a concrete prefix: for the
// given witness trigger, |A| must not exceed the equality-type bound. It
// returns |A|, the bound, and an error if the bound is violated (which
// would falsify the lemma) or the set is multi-head.
func CheckLemma44(db *instance.Database, set *tgds.Set, triggers []chase.Trigger, witness chase.Trigger) (int, int, error) {
	bound, err := Lemma44Bound(set)
	if err != nil {
		return 0, 0, err
	}
	A, err := deactivationSet(db, set, triggers, witness)
	if err != nil {
		return 0, 0, err
	}
	if len(A) > bound {
		return len(A), bound, fmt.Errorf("fairness: Lemma 4.4 violated: |A| = %d > bound %d", len(A), bound)
	}
	return len(A), bound, nil
}

// UnfairWitnesses returns the triggers that were active at some point of
// the replayed prefix and are still active at its end — the obstructions to
// fairness that Fairize eliminates.
func UnfairWitnesses(db *instance.Database, set *tgds.Set, triggers []chase.Trigger) ([]chase.Trigger, error) {
	d, log, err := replayRecording(db, set, triggers)
	if err != nil {
		return nil, err
	}
	var out []chase.Trigger
	for _, tr := range log.byID {
		if chase.IsActive(tr, d.Instance()) {
			out = append(out, tr)
		}
	}
	// Deterministic order for tests.
	sort.Slice(out, func(i, j int) bool { return chase.CompareTriggers(out[i], out[j]) < 0 })
	return out, nil
}
