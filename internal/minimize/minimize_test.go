package minimize

import (
	"math/rand"
	"testing"
	"testing/quick"

	"airct/internal/chase"
	"airct/internal/instance"
	"airct/internal/logic"
	"airct/internal/parser"
)

func TestCoreDropsDominatedNull(t *testing.T) {
	// {R(a,b), R(a,n)}: n retracts onto b; the core is {R(a,b)}.
	in := instance.FromAtoms(
		logic.MustAtom("R", logic.Const("a"), logic.Const("b")),
		logic.MustAtom("R", logic.Const("a"), logic.NewNull("n")),
	)
	core, rounds := Core(in)
	if core.Len() != 1 || !core.Has(logic.MustAtom("R", logic.Const("a"), logic.Const("b"))) {
		t.Fatalf("core = %v", core)
	}
	if rounds == 0 {
		t.Error("a retraction must have happened")
	}
	if !Equivalent(in, core) {
		t.Error("core must stay homomorphically equivalent")
	}
	if in.Len() != 2 {
		t.Error("input must not be mutated")
	}
}

func TestCoreOfFactsIsIdentity(t *testing.T) {
	in := instance.FromAtoms(
		logic.MustAtom("R", logic.Const("a"), logic.Const("b")),
		logic.MustAtom("R", logic.Const("b"), logic.Const("a")),
	)
	core, rounds := Core(in)
	if !core.Equal(in) || rounds != 0 {
		t.Errorf("fact instances are cores: %v (%d rounds)", core, rounds)
	}
	if !IsCore(in) {
		t.Error("IsCore must agree")
	}
}

func TestCoreKeepsNecessaryNulls(t *testing.T) {
	// {S(a), R(a,n)} with no other R-atom: n is necessary.
	in := instance.FromAtoms(
		logic.MustAtom("S", logic.Const("a")),
		logic.MustAtom("R", logic.Const("a"), logic.NewNull("n")),
	)
	core, _ := Core(in)
	if core.Len() != 2 {
		t.Errorf("nothing to retract: %v", core)
	}
	if !IsCore(in) {
		t.Error("instance is its own core")
	}
}

func TestCoreChainCollapse(t *testing.T) {
	// R(a,n1), R(n1,n2), R(n2,n3) plus R(a,a): the whole null chain folds
	// onto the loop.
	in := instance.FromAtoms(
		logic.MustAtom("R", logic.Const("a"), logic.Const("a")),
		logic.MustAtom("R", logic.Const("a"), logic.NewNull("n1")),
		logic.MustAtom("R", logic.NewNull("n1"), logic.NewNull("n2")),
		logic.MustAtom("R", logic.NewNull("n2"), logic.NewNull("n3")),
	)
	core, _ := Core(in)
	if core.Len() != 1 || !core.Has(logic.MustAtom("R", logic.Const("a"), logic.Const("a"))) {
		t.Errorf("core = %v, want {R(a,a)}", core)
	}
}

func TestCoreOfLIFOChaseMatchesFIFO(t *testing.T) {
	// Example 3.2 under LIFO keeps an extra invented atom R(a,n) dominated
	// by R(a,b); its core is exactly the FIFO result.
	prog := parser.MustParse(`
		P(a,b).
		s1: P(X,Y) -> R(X,Y).
		s2: P(X,Y) -> S(X).
		s3: R(X,Y) -> S(X).
		s4: S(X) -> R(X,Y).
	`)
	lifo := chase.RunChase(prog.Database, prog.TGDs, chase.Options{Variant: chase.Restricted, Strategy: chase.LIFO})
	fifo := chase.RunChase(prog.Database, prog.TGDs, chase.Options{Variant: chase.Restricted, Strategy: chase.FIFO})
	if lifo.Final.Len() <= fifo.Final.Len() {
		t.Skip("LIFO did not keep an extra atom on this build")
	}
	core, _ := Core(lifo.Final)
	if !core.Equal(fifo.Final) {
		t.Errorf("core of LIFO result %v must equal FIFO result %v", core, fifo.Final)
	}
}

func TestCoreOfObliviousChaseEqualsRestrictedCore(t *testing.T) {
	// The oblivious and restricted chases of a terminating program are
	// homomorphically equivalent, so their cores coincide up to
	// isomorphism — size equality is the cheap observable.
	prog := parser.MustParse(`
		S(a).
		s1: S(X) -> R(X,Y).
		s2: R(X,Y) -> T(X).
	`)
	res := chase.RunChase(prog.Database, prog.TGDs, chase.Options{Variant: chase.Restricted, MaxSteps: 100})
	obl := chase.RunChase(prog.Database, prog.TGDs, chase.Options{Variant: chase.Oblivious, MaxSteps: 100})
	if !res.Terminated() || !obl.Terminated() {
		t.Fatal("must terminate")
	}
	coreRes, _ := Core(res.Final)
	coreObl, _ := Core(obl.Final)
	if coreRes.Len() != coreObl.Len() {
		t.Errorf("core sizes differ: %v vs %v", coreRes, coreObl)
	}
	if !Equivalent(coreRes, coreObl) {
		t.Error("cores must be homomorphically equivalent")
	}
}

func TestEquivalentDetectsDifference(t *testing.T) {
	a := instance.FromAtoms(logic.MustAtom("R", logic.Const("a")))
	b := instance.FromAtoms(logic.MustAtom("R", logic.Const("b")))
	if Equivalent(a, b) {
		t.Error("different constants are not equivalent")
	}
}

// Property: Core is idempotent and preserves homomorphic equivalence on
// random instances mixing constants and nulls.
func TestQuickCoreIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed % 4000))
		in := instance.New()
		terms := []logic.Term{
			logic.Const("a"), logic.Const("b"),
			logic.NewNull("n1"), logic.NewNull("n2"), logic.NewNull("n3"),
		}
		for i := 0; i < 2+rng.Intn(6); i++ {
			in.Add(logic.NewAtom(logic.Pred("R", 2),
				terms[rng.Intn(len(terms))], terms[rng.Intn(len(terms))]))
		}
		c1, _ := Core(in)
		c2, rounds := Core(c1)
		return rounds == 0 && c2.Equal(c1) && Equivalent(in, c1) && IsCore(c1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
