// Package minimize computes cores of finite instances: the minimal
// retracts that are homomorphically equivalent to the input. The core of a
// chase result is the minimal universal model — the strongest possible
// output of the materialisation pipeline, and the reason the restricted
// chase's smaller instances matter: the closer the chase output is to its
// core, the less post-processing a data-exchange system must do.
//
// The algorithm is the classical retraction search: repeatedly look for an
// endomorphism of the instance that is the identity on constants and maps
// some null to a different term; composing and iterating such retractions
// until none exists yields the core (unique up to isomorphism).
package minimize

import (
	"airct/internal/instance"
	"airct/internal/logic"
)

// Core returns the core of the instance together with the number of
// retraction rounds performed. The input is not mutated.
func Core(in *instance.Instance) (*instance.Instance, int) {
	cur := in.Clone()
	rounds := 0
	for {
		h, ok := properRetraction(cur)
		if !ok {
			return cur, rounds
		}
		rounds++
		next := instance.New()
		for _, a := range cur.Atoms() {
			next.Add(a.Apply(h))
		}
		cur = next
	}
}

// properRetraction finds an endomorphism h of the instance (identity on
// constants) whose image loses at least one null — some null is outside
// h's range, so the image is a strictly smaller retract. Merely moving a
// null is not enough: an endomorphism that permutes nulls (an automorphism)
// neither shrinks the instance nor makes progress, and accepting one sends
// Core into an infinite loop. Returns ok = false when the instance is its
// own core.
func properRetraction(in *instance.Instance) (logic.Substitution, bool) {
	nulls := nullsOf(in)
	if len(nulls) == 0 {
		return nil, false
	}
	atoms := in.Atoms()
	var found logic.Substitution
	img := make(logic.TermSet, len(nulls)) // scratch, cleared per candidate
	logic.ForEachHomomorphism(atoms, nil, in, func(h logic.Substitution) bool {
		clear(img)
		for _, n := range nulls {
			img.Add(h.ApplyTerm(n))
		}
		for _, n := range nulls {
			if !img.Has(n) {
				found = h.Clone()
				return false
			}
		}
		return true
	})
	return found, found != nil
}

func nullsOf(in *instance.Instance) []logic.Term {
	var out []logic.Term
	for t := range in.Dom() {
		if t.IsNull() {
			out = append(out, t)
		}
	}
	logic.SortTerms(out)
	return out
}

// IsCore reports whether the instance equals its own core (no proper
// retraction exists).
func IsCore(in *instance.Instance) bool {
	_, ok := properRetraction(in)
	return !ok
}

// Equivalent reports homomorphic equivalence of two instances (mutual
// homomorphisms, constants fixed) — the invariant Core preserves.
func Equivalent(a, b *instance.Instance) bool {
	return logic.HasHomomorphism(a.Atoms(), nil, b) &&
		logic.HasHomomorphism(b.Atoms(), nil, a)
}
