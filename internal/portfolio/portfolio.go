// Package portfolio schedules the library's termination deciders as a
// cheap-first cascade: Tier 0 runs the syntactic and sufficient-condition
// checks (existential-freeness, weak acyclicity, joint acyclicity, the
// never-firing jointree prune, MFA), Tier 1 runs a k-round bounded chase
// probe over the guarded seed pool — accepting when every seed saturates,
// rejecting when a seed's k-prefix carries a guard-chain pump certificate —
// and Tier 2 races the expensive semantic deciders —
// sticky's Büchi emptiness test and the guarded seed search — on a bounded
// worker pool with context cancellation for the losers.
//
// The cheap prefix (Tier 0 plus the probe) runs in core.Analyze's static
// cost order by default; with Options.Model set, an online cost model
// reorders it per workload class and picks the probe budget adaptively
// (see costmodel.go).
//
// The portfolio's contract is conclusion identity: for every input set, the
// Conclusion (and the error, if any) equals core.Analyze's with the same
// budgets, bit for bit. The cascade earns its speed purely from stopping
// early, reordering abstain-or-exact stages and cancelling losers, never
// from answering differently. Three invariants enforce this:
//
//   - every cheap stage either abstains or fixes the conclusion
//     core.Analyze reaches: the Tier 0 checks are the checks core.Analyze
//     runs (sound for acceptance only), an accepting Tier 1 probe is
//     bit-compatible with the full guarded procedure by the
//     deterministic-prefix argument in guarded.ProbeSeeds, and a rejecting
//     probe decides through the same guard-chain pump lemma the full
//     procedure trusts on its own budget-truncated runs. Running any
//     subset of the cheap prefix in any order therefore cannot change the
//     conclusion, only which stage gets credit;
//   - the probe rejects only on a certificate, never on bare budget
//     exhaustion — the certificate string rides along as
//     StageOutcome.Evidence. The certificate is budget-independent, so in
//     the corner where the probe's budget-B counterpart run would saturate
//     past k and bounded seed-exhaustion would miss the divergence, the
//     probe errs toward the sound refutation; the package's quick-test
//     sweeps pin that this corner never separates the two on the random
//     program generators, and the conformance corpus pins it per family;
//   - Tier 2 results are combined in the canonical racer order
//     [sticky, guarded] regardless of wall-clock finish order: a racer's
//     verdict counts only once every earlier racer has completed without
//     deciding, which is exactly core.Analyze's sequential order. The
//     worker count therefore never changes the conclusion, only latency.
//
// The ∀∃ derivation search (chase.SearchTerminatingDerivation) can join
// Tier 2 as a NON-authoritative racer when the caller supplies a concrete
// database: on the critical instance the search is trivially satisfied (the
// all-crit instance is already a restricted-chase fixpoint), so it can never
// witness the ∀∀ question either way. Its outcome is reported as a stage
// record for diagnostics and never contributes to the conclusion.
package portfolio

import (
	"context"
	"fmt"
	"hash/fnv"
	"sync/atomic"
	"time"

	"airct/internal/acyclicity"
	"airct/internal/chase"
	"airct/internal/core"
	"airct/internal/guarded"
	"airct/internal/instance"
	"airct/internal/logic"
	"airct/internal/sticky"
	"airct/internal/tgds"
)

// Options configures the portfolio run. The budget fields mirror
// core.Options so that a portfolio conclusion stays comparable to an
// Analyze conclusion computed with the same numbers.
type Options struct {
	// Guarded tunes the guarded racer and the Tier 1 probe. Its Cache field
	// is overwritten with Options.Cache.
	Guarded guarded.DecideOptions
	// Sticky tunes the sticky racer. Its Cache field is overwritten with
	// Options.Cache, so a warm cache also serves the Büchi lasso verdicts.
	Sticky sticky.DecideOptions
	// MFASteps bounds the MFA check (0: 20_000, matching core.Options).
	MFASteps int
	// ProbeSteps is the Tier 1 per-seed step budget k
	// (0: guarded.DefaultProbeSteps).
	ProbeSteps int
	// Workers bounds the Tier 2 racer pool (0: one worker per racer). The
	// conclusion is worker-count-invariant: results are always combined in
	// canonical racer order. Workers: 1 degenerates to a sequential cascade
	// with early exit.
	Workers int
	// Cache, when set, memoises the whole portfolio run — keyed by the set
	// fingerprint, the database fingerprint (zero without a database) and a
	// salt folding in every budget (never worker counts) — in addition to
	// the per-seed and seed-pool entries the guarded stages already share
	// through it.
	Cache *chase.Cache
	// Model, when set, reorders the cheap stage prefix per workload class
	// and adapts the probe budget from past decisive depths (costmodel.go).
	// The model learns from this run's live stages and synchronises with
	// Cache, making it fleet-wide under a shared cache file. Nil runs the
	// static cascade. The conclusion is model-invariant.
	Model *CostModel
	// Database, when set, adds the ∀∃ derivation search over this database
	// as a non-authoritative Tier 2 racer (reported, never concluding).
	Database *instance.Database
	// Exists tunes the non-authoritative ∀∃ racer.
	Exists chase.SearchOptions
}

func resolved(v, def int) int {
	if v <= 0 {
		return def
	}
	return v
}

// salt folds every verdict-relevant budget into the cache key. Worker
// counts are deliberately excluded: verdicts are worker-invariant, so one
// entry serves every pool shape.
func (o Options) salt() uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%d|%d|%d|%d",
		resolved(o.Guarded.MaxSteps, 2000),
		resolved(o.Guarded.MaxSeeds, 256),
		resolved(o.Sticky.MaxStates, 200_000),
		resolved(o.MFASteps, 20_000),
		resolved(o.ProbeSteps, guarded.DefaultProbeSteps))
	return h.Sum64()
}

// StageOutcome records one stage's attempt: what ran, whether it decided,
// and what it cost. Stage records are diagnostics — only Conclusion and
// DecidedBy carry the semantic result, and only they are pinned across
// worker counts (a loser may show as "cancelled" under one pool shape and
// "skipped" under another).
type StageOutcome struct {
	// Stage names the check ("full", "weak-acyclicity", "joint-acyclicity",
	// "jointree-prune", "mfa", "probe", "sticky", "guarded", "exists").
	Stage string
	// Tier is the cascade tier that ran the stage (0, 1 or 2).
	Tier int
	// Decided is true when this stage fixed the conclusion.
	Decided bool
	// Conclusion is the stage's own verdict contribution (Unknown when the
	// stage was non-decisive, cancelled or skipped).
	Conclusion core.Conclusion
	// Detail explains the outcome in core.Analyze's reason vocabulary.
	Detail string
	// Steps counts the stage's dominant work unit (chase steps, Büchi
	// states, seeds — see each stage).
	Steps int
	// Duration is the stage's wall-clock cost when it ran live (zero for
	// cache-replayed stages).
	Duration time.Duration
	// Seeds, Saturated and Depth are the Tier 1 probe's diagnostics: the
	// distinct seed pool size, how many seeds' whole batteries saturated
	// within the probe budget, and the deepest saturating chase (the pump
	// depth — the shortest certifying prefix — maxed with the saturation
	// depths on a rejecting probe). Zero for every other stage; preserved
	// across cache replays.
	Seeds     int
	Saturated int
	Depth     int
	// Evidence carries the confirmed guard-chain pump certificate on a
	// rejecting Tier 1 probe (also embedded in Detail); empty otherwise.
	// Preserved across cache replays.
	Evidence string
}

// Result is the portfolio's combined answer.
type Result struct {
	// Conclusion is pinned bit-identical to core.Analyze's on the same set
	// and budgets.
	Conclusion core.Conclusion
	// DecidedBy names the stage that fixed the conclusion ("" when
	// Unknown). Deterministic across worker counts.
	DecidedBy string
	// Stages lists every attempted stage in cascade order.
	Stages []StageOutcome
	// CacheHit is true when the whole run was served from the cross-run
	// cache without executing any stage.
	CacheHit bool
}

// runner accumulates the cascade state for one Analyze call.
type runner struct {
	set    *tgds.Set
	opts   Options
	class  string
	res    *Result
	probed bool
}

// Analyze runs the cascade. The conclusion (and error behaviour) is pinned
// to core.Analyze with the same budgets; see the package comment for the
// argument. A cancelled call returns ctx's error.
func Analyze(ctx context.Context, set *tgds.Set, opts Options) (*Result, error) {
	if set.Len() == 0 && !set.HasEGDs() {
		return nil, fmt.Errorf("portfolio: empty TGD set")
	}
	opts.Guarded.Cache = opts.Cache
	opts.Sticky.Cache = opts.Cache
	class := classOf(set)
	if opts.Model != nil {
		// Adopt richer fleet history first, then resolve the adaptive probe
		// budget BEFORE the salt is computed: the cache key must reflect
		// the k that actually runs.
		opts.Model.pull(opts.Cache, class)
		opts.ProbeSteps = opts.Model.ProbeSteps(class, opts.ProbeSteps)
	}
	var instFP logic.Fingerprint
	if opts.Database != nil {
		instFP = opts.Database.Fingerprint()
	}
	var setFP, salt = set.Fingerprint(), opts.salt()
	if opts.Cache != nil {
		if so, ok := opts.Cache.LookupStageOutcomes(setFP, instFP, salt); ok {
			return replay(so), nil
		}
	}
	r := &runner{set: set, opts: opts, class: class, res: &Result{}}
	if err := r.run(ctx); err != nil {
		return nil, err
	}
	if opts.Model != nil {
		opts.Model.Observe(class, r.res.Stages)
		opts.Model.push(opts.Cache, class)
	}
	if opts.Cache != nil {
		opts.Cache.StoreStageOutcomes(setFP, instFP, salt, record(r.res))
	}
	return r.res, nil
}

func (r *runner) run(ctx context.Context) error {
	order := stageOrderStatic
	if r.opts.Model != nil {
		order = r.opts.Model.Order(r.class, stageOrderStatic)
	}
	for _, name := range order {
		if r.decided() {
			break
		}
		if name == "probe" {
			if err := r.tier1(ctx); err != nil {
				return err
			}
			continue
		}
		r.tier0Stage(name)
	}
	if r.decided() {
		return nil
	}
	return r.tier2(ctx)
}

func (r *runner) decided() bool { return r.res.DecidedBy != "" }

// conclude fixes the conclusion on the first decisive stage, mirroring
// core.Report.conclude's first-verdict-wins rule. A stage that finished
// decisively after the conclusion was already fixed (a racer beaten to the
// line) is recorded with Decided cleared: its Conclusion field still shows
// its own verdict, but only one stage ever "decided".
func (r *runner) conclude(s StageOutcome) {
	if !r.decided() && s.Decided {
		r.res.Conclusion = s.Conclusion
		r.res.DecidedBy = s.Stage
	} else {
		s.Decided = false
	}
	r.res.Stages = append(r.res.Stages, s)
}

// tier0Stage runs one cheap syntactic or sufficient-condition check. Every
// Tier 0 check is sound for acceptance only, so a decisive stage always
// concludes Terminates — which is why the cost model may run them in any
// order without touching the conclusion.
func (r *runner) tier0Stage(name string) {
	if r.decided() {
		return
	}
	s := StageOutcome{Stage: name, Tier: 0}
	start := time.Now()
	r.tier0Check(name, &s)
	s.Duration = time.Since(start)
	r.conclude(s)
}

func (r *runner) tier0Check(name string, s *StageOutcome) {
	set := r.set
	switch name {
	case "full":
		if set.IsFull() {
			s.Decided = true
			s.Conclusion = core.Terminates
			if set.HasEGDs() {
				s.Detail = "existential-free TGDs with EGDs: no invented values, and equality steps strictly shrink the term count"
			} else {
				s.Detail = "full (existential-free) set: the chase cannot invent values"
			}
		} else {
			s.Detail = "set has existentials"
		}
	case "weak-acyclicity":
		if acyclicity.IsWeaklyAcyclic(set) {
			s.Decided = true
			s.Conclusion = core.Terminates
			if set.HasEGDs() {
				s.Detail = "weak acyclicity of the TGDs (sufficient with arbitrary EGDs, Fagin et al.)"
			} else {
				s.Detail = "weak acyclicity (sufficient condition)"
			}
		} else {
			s.Detail = "dependency graph has a special-edge cycle"
		}
	case "joint-acyclicity":
		if set.HasEGDs() {
			s.Detail = "skipped: joint acyclicity is a TGD-only baseline (set has EGDs)"
			return
		}
		if acyclicity.IsJointlyAcyclic(set) {
			s.Decided = true
			s.Conclusion = core.Terminates
			s.Detail = "joint acyclicity (sufficient condition)"
		} else {
			s.Detail = "existential dependency graph is cyclic"
		}
	case "jointree-prune":
		if set.HasEGDs() {
			s.Detail = "skipped: the never-firing prune is a TGD-only baseline (set has EGDs)"
			return
		}
		pruned, removed := acyclicity.PruneNeverFiring(set)
		if len(removed) == 0 {
			s.Detail = "no never-firing TGDs"
			return
		}
		s.Steps = len(removed)
		switch {
		case pruned == nil:
			s.Decided = true
			s.Detail = fmt.Sprintf("jointree prune: all %d TGDs are never-firing (head folds into body over the frontier)", len(removed))
		case pruned.IsFull():
			s.Decided = true
			s.Detail = fmt.Sprintf("jointree prune: %d never-firing TGDs removed; remainder is existential-free", len(removed))
		case acyclicity.IsWeaklyAcyclic(pruned):
			s.Decided = true
			s.Detail = fmt.Sprintf("jointree prune: %d never-firing TGDs removed; remainder is weakly acyclic", len(removed))
		case acyclicity.IsJointlyAcyclic(pruned):
			s.Decided = true
			s.Detail = fmt.Sprintf("jointree prune: %d never-firing TGDs removed; remainder is jointly acyclic", len(removed))
		default:
			s.Detail = fmt.Sprintf("%d never-firing TGDs removed; remainder undecided", len(removed))
		}
		if s.Decided {
			s.Conclusion = core.Terminates
		}
	case "mfa":
		if set.HasEGDs() {
			s.Detail = "skipped: MFA is a TGD-only baseline (set has EGDs)"
			return
		}
		mfa := acyclicity.CheckMFA(set, resolved(r.opts.MFASteps, 20_000))
		s.Steps = mfa.Steps
		if mfa.Acyclic {
			s.Decided = true
			s.Conclusion = core.Terminates
			s.Detail = fmt.Sprintf("MFA: semi-oblivious critical-instance chase saturated in %d steps (sufficient condition)", mfa.Steps)
		} else {
			s.Detail = "critical-instance chase found a cyclic null or exhausted its budget"
		}
	}
}

// tier1 runs the k-round probe for guarded, non-sticky sets. An accepting
// probe is a proof that guarded.Decide at the full budget returns the
// identical verdict (the deterministic-prefix argument in
// guarded.ProbeSeeds); a rejecting probe carries the guard-chain pump
// certificate — the same budget-independent witness the guarded procedure
// itself trusts on budget-truncated runs — so concluding here preserves
// conclusion identity with core.Analyze, where the guarded stage would
// have decided.
func (r *runner) tier1(ctx context.Context) error {
	if !r.set.IsGuarded() || r.set.IsSticky() {
		return nil
	}
	r.probed = true
	start := time.Now()
	out, err := guarded.ProbeSeeds(ctx, r.set, r.opts.Guarded, r.opts.ProbeSteps)
	if err != nil {
		return err
	}
	s := StageOutcome{
		Stage:     "probe",
		Tier:      1,
		Steps:     out.ProbeSteps,
		Duration:  time.Since(start),
		Seeds:     out.Seeds,
		Saturated: out.Saturated,
		Depth:     out.Depth,
	}
	switch {
	case out.Decided && out.WeaklyAcyclic:
		s.Decided = true
		s.Conclusion = core.Terminates
		s.Detail = "guarded: weak acyclicity"
	case out.Decided && out.Rejected:
		s.Decided = true
		s.Conclusion = core.Diverges
		s.Evidence = out.Evidence
		s.Detail = fmt.Sprintf("probe: pump at depth %d within k=%d; seed %d diverges (%s)", out.Depth, out.ProbeSteps, out.SeedsTried, out.Evidence)
	case out.Decided:
		s.Decided = true
		s.Conclusion = core.Terminates
		s.Detail = fmt.Sprintf("probe: all %d seeds saturated within %d steps (full battery pinned terminating)", out.Seeds, out.ProbeSteps)
	default:
		s.Detail = fmt.Sprintf("probe: %d/%d swept seeds saturated within %d steps; routing onward", out.Saturated, out.Seeds, out.ProbeSteps)
	}
	r.conclude(s)
	return nil
}

// racer is one Tier 2 contender.
type racer struct {
	name string
	// authoritative racers may fix the conclusion; the ∀∃ search may not.
	authoritative bool
	run           func(ctx context.Context) (StageOutcome, error)
}

// tier2 races the semantic deciders on a bounded worker pool. Workers claim
// racers in canonical order off an atomic counter; the combiner then walks
// the same order, so racer i's verdict counts only after racers j < i all
// completed without deciding — exactly core.Analyze's sequential semantics.
// Once the conclusion is fixed the race context is cancelled: running
// losers observe ctx.Done() inside their chase/Büchi loops and stop
// promptly; unclaimed racers are skipped outright.
func (r *runner) tier2(ctx context.Context) error {
	racers := r.buildRacers()
	if len(racers) == 0 {
		return nil
	}
	rctx, cancel := context.WithCancel(ctx)
	defer cancel()

	workers := r.opts.Workers
	if workers <= 0 || workers > len(racers) {
		workers = len(racers)
	}
	if workers == 1 {
		// Degenerate pool: a sequential cascade in canonical order with
		// early exit. Same combine rule, so the same conclusion — racers
		// after the decider are skipped instead of started-and-cancelled.
		for _, rc := range racers {
			if r.decided() {
				r.res.Stages = append(r.res.Stages, StageOutcome{
					Stage:  rc.name,
					Tier:   2,
					Detail: "skipped: an earlier stage decided",
				})
				continue
			}
			if err := ctx.Err(); err != nil {
				return err
			}
			out, err := rc.run(rctx)
			if err != nil {
				return err
			}
			r.concludeRacer(rc, out)
		}
		return nil
	}
	type slot struct {
		out     StageOutcome
		err     error
		skipped bool
		done    chan struct{}
	}
	slots := make([]*slot, len(racers))
	for i := range slots {
		slots[i] = &slot{done: make(chan struct{})}
	}
	var next atomic.Int64
	for w := 0; w < workers; w++ {
		go func() {
			for {
				i := int(next.Add(1) - 1)
				if i >= len(racers) {
					return
				}
				sl := slots[i]
				if rctx.Err() != nil && ctx.Err() == nil {
					sl.skipped = true
					close(sl.done)
					continue
				}
				sl.out, sl.err = racers[i].run(rctx)
				close(sl.done)
			}
		}()
	}
	for i, rc := range racers {
		sl := slots[i]
		<-sl.done
		if err := ctx.Err(); err != nil {
			return err // the caller's context fired, not our loser-cancel
		}
		switch {
		case sl.skipped:
			r.res.Stages = append(r.res.Stages, StageOutcome{
				Stage:  rc.name,
				Tier:   2,
				Detail: "skipped: an earlier stage decided",
			})
		case sl.err != nil && rctx.Err() != nil:
			// Cancelled loser: its error is our own cancellation.
			r.res.Stages = append(r.res.Stages, StageOutcome{
				Stage:  rc.name,
				Tier:   2,
				Detail: "cancelled: an earlier racer decided",
			})
		case sl.err != nil:
			cancel()
			return sl.err
		default:
			r.concludeRacer(rc, sl.out)
			if r.decided() {
				cancel()
			}
		}
	}
	return nil
}

// concludeRacer feeds one completed racer into the combine, stripping the
// verdict of a non-authoritative contender first.
func (r *runner) concludeRacer(rc racer, out StageOutcome) {
	if !rc.authoritative {
		out.Decided = false
		out.Conclusion = core.Unknown
	}
	r.conclude(out)
}

// buildRacers assembles the canonical Tier 2 field: sticky before guarded
// (core.Analyze's order), then the optional non-authoritative ∀∃ search.
func (r *runner) buildRacers() []racer {
	var out []racer
	if r.set.IsSticky() {
		out = append(out, racer{name: "sticky", authoritative: true, run: r.runSticky})
	}
	if r.set.IsGuarded() {
		out = append(out, racer{name: "guarded", authoritative: true, run: r.runGuarded})
	}
	if r.opts.Database != nil && !r.set.HasEGDs() {
		// The ∀∃ search is TGD-only (it panics on EGD sets).
		out = append(out, racer{name: "exists", authoritative: false, run: r.runExists})
	}
	return out
}

func (r *runner) runSticky(ctx context.Context) (StageOutcome, error) {
	start := time.Now()
	v, err := sticky.DecideContext(ctx, r.set, r.opts.Sticky)
	if err != nil {
		return StageOutcome{}, err
	}
	s := StageOutcome{Stage: "sticky", Tier: 2, Steps: v.StatesExplored, Duration: time.Since(start)}
	switch {
	case v.Terminates && v.Complete:
		s.Decided = true
		s.Conclusion = core.Terminates
		s.Detail = "sticky Büchi automaton A_T is empty (Theorem 6.1)"
	case !v.Terminates:
		s.Decided = true
		s.Conclusion = core.Diverges
		s.Detail = fmt.Sprintf("sticky Büchi witness: caterpillar lasso of length %d+%d (Theorem 6.1)",
			len(v.Lasso.Prefix), len(v.Lasso.Cycle))
	default:
		s.Detail = "sticky Büchi exploration incomplete (state bound); no witness found"
	}
	return s, nil
}

func (r *runner) runGuarded(ctx context.Context) (StageOutcome, error) {
	start := time.Now()
	v, err := guarded.DecideContext(ctx, r.set, r.opts.Guarded)
	if err != nil {
		return StageOutcome{}, err
	}
	s := StageOutcome{Stage: "guarded", Tier: 2, Steps: v.SeedsTried, Duration: time.Since(start)}
	switch {
	case v.Terminates && v.Method == "weak-acyclicity":
		s.Decided = true
		s.Conclusion = core.Terminates
		s.Detail = "guarded: weak acyclicity"
	case v.Terminates:
		s.Decided = true
		s.Conclusion = core.Terminates
		s.Detail = fmt.Sprintf("guarded: %d seeds exhausted at budget %d (Theorem 5.1, bounded search)", v.SeedsTried, v.Budget)
	case v.Method == "divergence-witness":
		s.Decided = true
		s.Conclusion = core.Diverges
		s.Detail = fmt.Sprintf("guarded: diverging witness database (%s)", v.Evidence)
	default:
		s.Detail = fmt.Sprintf("guarded: budget exhausted without certificate (%s)", v.Evidence)
	}
	return s, nil
}

// runExists runs the ∀∃ derivation search over the caller's database. It is
// informative only: CT^res_∀∃ on one database says nothing about CT^res_∀∀
// (and on the critical instance the search is trivially satisfied), so the
// outcome is recorded but never decisive.
func (r *runner) runExists(ctx context.Context) (StageOutcome, error) {
	start := time.Now()
	res := chase.SearchTerminatingDerivationContext(ctx, r.opts.Database, r.set, r.opts.Exists)
	s := StageOutcome{Stage: "exists", Tier: 2, Steps: res.Stats.StatesExpanded, Duration: time.Since(start)}
	switch {
	case res.Cancelled:
		s.Detail = "∀∃ search cancelled (informative only)"
	case res.Found:
		s.Detail = fmt.Sprintf("∀∃: terminating derivation of length %d on the supplied database (informative only)", len(res.Derivation))
	case res.Exhausted:
		s.Detail = "∀∃: no terminating derivation within bounds on the supplied database (informative only)"
	default:
		s.Detail = "∀∃ search exhausted its budget (informative only)"
	}
	return s, nil
}

// record converts a finished result into the portable cache entry.
func record(res *Result) *chase.StageOutcomes {
	so := &chase.StageOutcomes{
		Verdict:   res.Conclusion.String(),
		DecidedBy: res.DecidedBy,
		Records:   make([]chase.StageRecord, len(res.Stages)),
	}
	for i, s := range res.Stages {
		so.Records[i] = chase.StageRecord{
			Stage:      s.Stage,
			Tier:       s.Tier,
			Decided:    s.Decided,
			Verdict:    s.Conclusion.String(),
			Detail:     s.Detail,
			Steps:      s.Steps,
			DurationNS: int64(s.Duration),
			Seeds:      s.Seeds,
			Saturated:  s.Saturated,
			Depth:      s.Depth,
			Evidence:   s.Evidence,
		}
	}
	return so
}

// replay rebuilds a Result from a cache entry. Durations are zeroed: the
// replayed stages did not run.
func replay(so *chase.StageOutcomes) *Result {
	res := &Result{
		Conclusion: parseConclusion(so.Verdict),
		DecidedBy:  so.DecidedBy,
		CacheHit:   true,
		Stages:     make([]StageOutcome, len(so.Records)),
	}
	for i, rec := range so.Records {
		res.Stages[i] = StageOutcome{
			Stage:      rec.Stage,
			Tier:       rec.Tier,
			Decided:    rec.Decided,
			Conclusion: parseConclusion(rec.Verdict),
			Detail:     rec.Detail,
			Steps:      rec.Steps,
			Seeds:      rec.Seeds,
			Saturated:  rec.Saturated,
			Depth:      rec.Depth,
			Evidence:   rec.Evidence,
		}
	}
	return res
}

func parseConclusion(s string) core.Conclusion {
	switch s {
	case "terminates":
		return core.Terminates
	case "diverges":
		return core.Diverges
	default:
		return core.Unknown
	}
}
