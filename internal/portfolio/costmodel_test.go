package portfolio

import (
	"reflect"
	"testing"
	"time"

	"airct/internal/chase"
	"airct/internal/core"
	"airct/internal/workload"
)

// observeRuns feeds n identical synthetic runs into the model: every stage
// in costs is attempted, and decider (if any) decides.
func observeRuns(m *CostModel, class string, n int, costs map[string]time.Duration, decider string, depth int) {
	for i := 0; i < n; i++ {
		var stages []StageOutcome
		for _, name := range stageOrderStatic {
			d, ok := costs[name]
			if !ok {
				continue
			}
			s := StageOutcome{Stage: name, Duration: d}
			if name == "probe" {
				s.Tier = 1
				s.Depth = depth
			}
			if name == decider {
				s.Decided = true
				s.Conclusion = core.Terminates
			}
			stages = append(stages, s)
		}
		m.Observe(class, stages)
	}
}

// TestOrderGatesOnHistory pins the cold-start contract: with no history —
// or with fewer runs than the gate — Order returns the static cascade
// untouched, and a nil model downstream means static everywhere.
func TestOrderGatesOnHistory(t *testing.T) {
	m := NewCostModel()
	if got := m.Order("g1s0f0:b0", stageOrderStatic); !reflect.DeepEqual(got, stageOrderStatic) {
		t.Fatalf("empty model reordered: %v", got)
	}
	costs := map[string]time.Duration{"full": time.Microsecond, "mfa": time.Millisecond, "probe": 10 * time.Microsecond}
	observeRuns(m, "g1s0f0:b0", minClassRuns-1, costs, "probe", 8)
	if got := m.Order("g1s0f0:b0", stageOrderStatic); !reflect.DeepEqual(got, stageOrderStatic) {
		t.Fatalf("under-gate class reordered: %v", got)
	}
}

// TestOrderMovesDecisiveCheapStageForward pins the reorder itself: after a
// workload where MFA is expensive and never decides while the probe is
// cheap and always decides, the probe must run before MFA — and repeated
// calls must return the same order (determinism, stable tiebreak).
func TestOrderMovesDecisiveCheapStageForward(t *testing.T) {
	m := NewCostModel()
	class := "g1s0f0:b1"
	costs := map[string]time.Duration{
		"full":             2 * time.Microsecond,
		"weak-acyclicity":  5 * time.Microsecond,
		"joint-acyclicity": 5 * time.Microsecond,
		"jointree-prune":   8 * time.Microsecond,
		"mfa":              20 * time.Millisecond,
		"probe":            300 * time.Microsecond,
	}
	observeRuns(m, class, 10, costs, "probe", 24)
	got := m.Order(class, stageOrderStatic)
	pos := make(map[string]int, len(got))
	for i, name := range got {
		pos[name] = i
	}
	if len(pos) != len(stageOrderStatic) {
		t.Fatalf("order is not a permutation: %v", got)
	}
	if pos["probe"] > pos["mfa"] {
		t.Errorf("probe (cheap, decisive) still behind mfa (dear, never decides): %v", got)
	}
	if again := m.Order(class, stageOrderStatic); !reflect.DeepEqual(again, got) {
		t.Errorf("order not deterministic: %v vs %v", again, got)
	}
}

// TestProbeStepsAdaptsAndClamps pins the adaptive budget: explicit requests
// pass through untouched, no history yields 0 (DefaultProbeSteps
// downstream), and a learned depth d yields 2·d clamped to
// [minProbeSteps, maxProbeSteps].
func TestProbeStepsAdaptsAndClamps(t *testing.T) {
	m := NewCostModel()
	class := "g1s0f0:b0"
	if got := m.ProbeSteps(class, 99); got != 99 {
		t.Errorf("explicit request overridden: %d", got)
	}
	if got := m.ProbeSteps(class, 0); got != 0 {
		t.Errorf("no history: got %d, want 0", got)
	}
	costs := map[string]time.Duration{"probe": time.Microsecond}
	observeRuns(m, class, 5, costs, "probe", 40)
	if got := m.ProbeSteps(class, 0); got != 80 {
		t.Errorf("depth 40: got %d, want 80", got)
	}
	observeRuns(m, "shallow", 5, costs, "probe", 2)
	if got := m.ProbeSteps("shallow", 0); got != minProbeSteps {
		t.Errorf("shallow class: got %d, want clamp %d", got, minProbeSteps)
	}
	observeRuns(m, "deep", 5, costs, "probe", 100_000)
	if got := m.ProbeSteps("deep", 0); got != maxProbeSteps {
		t.Errorf("deep class: got %d, want clamp %d", got, maxProbeSteps)
	}
}

// TestPullPushAttemptsMonotone pins the fleet-sync rule in both directions:
// the record with more total attempts wins; the poorer side never
// overwrites the richer one.
func TestPullPushAttemptsMonotone(t *testing.T) {
	cache := chase.NewCache()
	class := "g1s0f0:b2"
	costs := map[string]time.Duration{"mfa": time.Millisecond, "probe": 10 * time.Microsecond}

	rich := NewCostModel()
	observeRuns(rich, class, 20, costs, "probe", 30)
	rich.push(cache, class)
	entry, ok := cache.LookupCostModel(class)
	if !ok {
		t.Fatal("push stored nothing")
	}
	if entryAttempts(entry) != 40 { // 20 runs × 2 stages
		t.Fatalf("entry attempts = %d, want 40", entryAttempts(entry))
	}

	// A poorer model must not clobber the cache...
	poor := NewCostModel()
	observeRuns(poor, class, 2, costs, "probe", 5)
	poor.push(cache, class)
	after, _ := cache.LookupCostModel(class)
	if entryAttempts(after) != 40 {
		t.Errorf("poorer push clobbered the cache: %d attempts", entryAttempts(after))
	}
	// ...and pulling adopts the richer fleet history.
	poor.pull(cache, class)
	poor.mu.RLock()
	adopted := totalAttempts(poor.classes[class])
	poor.mu.RUnlock()
	if adopted != 40 {
		t.Errorf("pull did not adopt the richer record: %d attempts", adopted)
	}

	// The rich model keeps its own (equal-or-richer) local state on pull.
	rich.pull(cache, class)
	rich.mu.RLock()
	kept := totalAttempts(rich.classes[class])
	rich.mu.RUnlock()
	if kept != 40 {
		t.Errorf("pull degraded the richer local state: %d attempts", kept)
	}
}

// TestStatesExportsLearnedPolicy pins the /v1/stats surface: class labels
// sorted, run counts, the live order and the adaptive budget.
func TestStatesExportsLearnedPolicy(t *testing.T) {
	m := NewCostModel()
	costs := map[string]time.Duration{"mfa": time.Millisecond, "probe": 10 * time.Microsecond}
	observeRuns(m, "zz", 6, costs, "probe", 20)
	observeRuns(m, "aa", 2, costs, "", 0)
	states := m.States()
	if len(states) != 2 || states[0].Class != "aa" || states[1].Class != "zz" {
		t.Fatalf("states = %+v", states)
	}
	if states[0].Runs != 2 || states[1].Runs != 6 {
		t.Errorf("run counts: %+v", states)
	}
	if states[0].ProbeSteps != 0 {
		t.Errorf("undecided class exported an adaptive budget: %+v", states[0])
	}
	if states[1].ProbeSteps != 40 {
		t.Errorf("learned budget = %d, want 40 (2×20)", states[1].ProbeSteps)
	}
	if pos := indexOf(states[1].Order, "probe"); pos > indexOf(states[1].Order, "mfa") {
		t.Errorf("exported order did not learn: %v", states[1].Order)
	}
}

func indexOf(ss []string, want string) int {
	for i, s := range ss {
		if s == want {
			return i
		}
	}
	return -1
}

// TestClassOfBucketsByFlagsAndSize pins the class key: syntactic flags and
// the coarse size bucket, nothing else.
func TestClassOfBucketsByFlagsAndSize(t *testing.T) {
	ladder := workload.GuardedLadder(2).Set
	if got := classOf(ladder); got != "g1s0f0:b0" {
		t.Errorf("guarded ladder class = %q", got)
	}
	full := workload.DatalogChain(3).Set
	if got := classOf(full); got[:6] != "g1s1f1" {
		t.Errorf("datalog chain class = %q, want g1s1f1 prefix", got)
	}
	big := workload.GuardedLadder(16).Set
	if classOf(big) == classOf(ladder) {
		t.Errorf("size bucket did not separate ladder(2)=%q from ladder(16)=%q", classOf(ladder), classOf(big))
	}
}
