package portfolio

// BenchmarkPortfolioMixed measures time-to-verdict of the staged portfolio
// against flat core.Analyze on a mixed serving workload: the repeated-seed
// stream of the cache benchmarks plus one request from every labeled
// family class (datalog, acyclic existential, prunable, sticky terminating
// and diverging, guarded diverging) and a multi-head set that is honestly
// Unknown. The portfolio side shares one chase.Cache per family, warmed by
// a single untimed decision — the serving configuration `termcheck
// -portfolio -cache` exposes; the baseline pays a fresh core.Analyze per
// request with the same budgets. Conclusions are asserted identical before
// the timer, so the speedup recorded in BENCH_portfolio.json is never
// bought with verdict drift.

import (
	"context"
	"fmt"
	"testing"

	"airct/internal/chase"
	"airct/internal/core"
	"airct/internal/guarded"
	"airct/internal/parser"
	"airct/internal/tgds"
	"airct/internal/workload"
)

const benchDecideSteps = 2000

func benchFamilies() []struct {
	name string
	reqs []*tgds.Set
} {
	multihead, err := parser.ParseTGDs(`
		R(X,Y,Y) -> R(X,Z,Y), R(Z,Y,Y).
		R(X,Y,Z) -> R(Z,Z,Z).
	`)
	if err != nil {
		panic(err)
	}
	one := func(l workload.Labeled) []*tgds.Set { return []*tgds.Set{l.Set} }
	return []struct {
		name string
		reqs []*tgds.Set
	}{
		{"repeated-swap-intro-2", workload.RepeatedDecideRequests(2, 8)},
		{"datalog-chain-3", one(workload.DatalogChain(3))},
		{"existential-chain-3", one(workload.ExistentialChain(3))},
		{"sticky-join-2", one(workload.StickyJoin(2))},
		{"sticky-relay-2", one(workload.StickyRelay(2))},
		{"guarded-ladder-2", one(workload.GuardedLadder(2))},
		{"linear-cycle-3", one(workload.LinearCycle(3))},
		{"multihead-unknown", []*tgds.Set{multihead}},
	}
}

func BenchmarkPortfolioMixed(b *testing.B) {
	for _, fam := range benchFamilies() {
		coreOpts := core.Options{GuardedOptions: guarded.DecideOptions{MaxSteps: benchDecideSteps}}
		portOpts := Options{Guarded: guarded.DecideOptions{MaxSteps: benchDecideSteps}}

		// Drift gate: every request must conclude identically in both modes
		// before either is timed.
		want := make([]core.Conclusion, len(fam.reqs))
		for i, set := range fam.reqs {
			rep, err := core.Analyze(set, coreOpts)
			if err != nil {
				b.Fatal(err)
			}
			want[i] = rep.Conclusion
			res, err := Analyze(context.Background(), set, portOpts)
			if err != nil {
				b.Fatal(err)
			}
			if res.Conclusion != rep.Conclusion {
				b.Fatalf("%s[%d]: portfolio %v vs analyzer %v", fam.name, i, res.Conclusion, rep.Conclusion)
			}
		}

		b.Run(fmt.Sprintf("%s/baseline", fam.name), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				set := fam.reqs[i%len(fam.reqs)]
				rep, err := core.Analyze(set, coreOpts)
				if err != nil {
					b.Fatal(err)
				}
				if rep.Conclusion != want[i%len(fam.reqs)] {
					b.Fatalf("baseline drifted on %s", fam.name)
				}
			}
		})
		b.Run(fmt.Sprintf("%s/cascade", fam.name), func(b *testing.B) {
			// No cache: isolates the cascade's own win (cheap tiers first,
			// k-round probe, two-worker Tier 2 race) from the cache's.
			b.ReportAllocs()
			opts := portOpts
			opts.Workers = 2
			for i := 0; i < b.N; i++ {
				set := fam.reqs[i%len(fam.reqs)]
				res, err := Analyze(context.Background(), set, opts)
				if err != nil {
					b.Fatal(err)
				}
				if res.Conclusion != want[i%len(fam.reqs)] {
					b.Fatalf("cascade drifted on %s", fam.name)
				}
			}
		})
		b.Run(fmt.Sprintf("%s/portfolio", fam.name), func(b *testing.B) {
			b.ReportAllocs()
			opts := portOpts
			opts.Cache = chase.NewCache()
			res, err := Analyze(context.Background(), fam.reqs[0], opts)
			if err != nil {
				b.Fatal(err)
			}
			if res.Conclusion != want[0] {
				b.Fatalf("warming drifted on %s", fam.name)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				set := fam.reqs[i%len(fam.reqs)]
				res, err := Analyze(context.Background(), set, opts)
				if err != nil {
					b.Fatal(err)
				}
				if res.Conclusion != want[i%len(fam.reqs)] {
					b.Fatalf("portfolio drifted on %s", fam.name)
				}
			}
		})
	}
}
