package portfolio

// The online cost model behind the adaptive cascade: per workload class it
// tracks an EWMA of each cheap stage's cost and how often the stage decides,
// and uses the two to reorder the Tier 0 checks and the Tier 1 probe so the
// historically cheapest-per-decision stage runs first. Reordering the cheap
// prefix is conclusion-safe by construction: every Tier 0 check is sound for
// acceptance only and the Tier 1 probe confirms both of its verdicts against
// the full guarded procedure (guarded.ProbeSeeds), so each stage either
// fixes the exact conclusion core.Analyze would reach or abstains — running
// any subset in any order decides iff the static cascade decides, with the
// identical conclusion. Tier 2 is untouched and always runs last.
//
// The model also adapts the probe's step budget k: the fixpoint depths of
// past decisive probes in the class feed an EWMA, and the next probe runs at
// twice that depth (clamped to [16, 512]) instead of the static
// guarded.DefaultProbeSteps. The resolved k participates in the portfolio
// cache salt, so warm replays stay keyed by the budgets that actually ran.
//
// Learned state persists through the cross-run cache as CostModelEntry
// records (one per class, kind 7 in internal/chase), which ride the same
// snapshot codec as verdicts: a termcheckd fleet sharing a cache file shares
// its cost model. Sync is attempts-monotone — the richer record (more total
// attempts) wins in both directions — so concurrent writers converge
// instead of ping-ponging.

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"airct/internal/chase"
	"airct/internal/tgds"
)

// stageOrderStatic is core.Analyze's cheap-stage order: the five Tier 0
// checks in cost order, then the Tier 1 probe. The adaptive cascade permutes
// exactly this list; Tier 2 racers are never reordered.
var stageOrderStatic = []string{
	"full", "weak-acyclicity", "joint-acyclicity", "jointree-prune", "mfa", "probe",
}

const (
	// ewmaAlpha weights the newest observation in the cost and depth EWMAs.
	ewmaAlpha = 0.3
	// minStageAttempts gates reordering: every stage observed in a class
	// must have been attempted at least this often before its statistics
	// are trusted to permute the cascade.
	minStageAttempts = 3
	// minClassRuns gates reordering on the class as a whole.
	minClassRuns = 5
	// minProbeSteps and maxProbeSteps clamp the adaptive probe budget.
	minProbeSteps = 16
	maxProbeSteps = 512
)

// stageStats accumulates one stage's history within a class.
type stageStats struct {
	ewmaNS    float64 // EWMA cost per attempt, nanoseconds
	attempts  int64
	decided   int64
	ewmaDepth float64 // probe only: EWMA fixpoint depth of decisive probes
}

// classStats is the per-workload-class ledger.
type classStats struct {
	stages map[string]*stageStats
}

// runs estimates how many portfolio runs fed the class: every live run
// attempts at least one cheap stage, so the busiest stage's attempt count is
// a lower bound that is exact under a fixed order.
func (c *classStats) runs() int64 {
	var max int64
	for _, st := range c.stages {
		if st.attempts > max {
			max = st.attempts
		}
	}
	return max
}

// CostModel is the shared, thread-safe cost ledger. The zero value is not
// usable; construct with NewCostModel. One model typically serves a whole
// process (termcheckd builds one per daemon) and synchronises with the
// cross-run cache per class on every Analyze call.
type CostModel struct {
	mu      sync.RWMutex
	classes map[string]*classStats
}

// NewCostModel returns an empty model.
func NewCostModel() *CostModel {
	return &CostModel{classes: make(map[string]*classStats)}
}

// classOf buckets a set into a workload class: the three syntactic flags
// that gate stages (guardedness, stickiness, existential-freeness) plus a
// coarse size bucket, so sets that exercise the same stages with similar
// cost pool their statistics.
func classOf(set *tgds.Set) string {
	b := 0
	for n := set.Len(); n > 4; n >>= 1 {
		b++
	}
	g, s, f := 0, 0, 0
	if set.IsGuarded() {
		g = 1
	}
	if set.IsSticky() {
		s = 1
	}
	if set.IsFull() {
		f = 1
	}
	return fmt.Sprintf("g%ds%df%d:b%d", g, s, f, b)
}

// Observe folds one finished live run's cheap-stage outcomes (tiers 0 and 1)
// into the class ledger. Replayed results must not be observed — their
// durations are zero and would drag every EWMA toward free.
func (m *CostModel) Observe(class string, stages []StageOutcome) {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := m.classes[class]
	if c == nil {
		c = &classStats{stages: make(map[string]*stageStats)}
		m.classes[class] = c
	}
	for _, s := range stages {
		if s.Tier > 1 {
			continue
		}
		st := c.stages[s.Stage]
		if st == nil {
			st = &stageStats{}
			c.stages[s.Stage] = st
		}
		st.attempts++
		st.ewmaNS = ewma(st.ewmaNS, float64(s.Duration), st.attempts)
		if s.Decided {
			st.decided++
			if s.Stage == "probe" && s.Depth > 0 {
				n := st.decided
				st.ewmaDepth = ewma(st.ewmaDepth, float64(s.Depth), n)
			}
		}
	}
}

// ewma folds x into the running average; the first observation seeds it.
func ewma(old, x float64, n int64) float64 {
	if n <= 1 {
		return x
	}
	return ewmaAlpha*x + (1-ewmaAlpha)*old
}

// Order returns the stage order to run for the class. Until the class has
// enough history (minClassRuns runs, and minStageAttempts attempts on every
// stage observed so far) it returns static unchanged. With history, stages
// sort by EWMA cost per unit of decisiveness — ewmaNS / (decisionRate +
// 0.05) — ascending, so a stage that is cheap or decides often moves
// forward. Stages never observed in the class (gated off, or always
// shadowed by an earlier decider) sort last, in static order. Any
// permutation is conclusion-safe; see the file comment.
func (m *CostModel) Order(class string, static []string) []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	c := m.classes[class]
	if c == nil || c.runs() < minClassRuns {
		return static
	}
	for _, st := range c.stages {
		if st.attempts > 0 && st.attempts < minStageAttempts {
			return static
		}
	}
	type scored struct {
		name  string
		score float64
		pos   int
	}
	out := make([]scored, len(static))
	for i, name := range static {
		sc := math.Inf(1)
		if st := c.stages[name]; st != nil && st.attempts >= minStageAttempts {
			rate := float64(st.decided) / float64(st.attempts)
			sc = st.ewmaNS / (rate + 0.05)
		}
		out[i] = scored{name: name, score: sc, pos: i}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].score != out[j].score {
			return out[i].score < out[j].score
		}
		return out[i].pos < out[j].pos
	})
	order := make([]string, len(out))
	for i, s := range out {
		order[i] = s.name
	}
	return order
}

// ProbeSteps resolves the Tier 1 probe budget for the class. An explicit
// request is always respected. Otherwise, once the class has seen enough
// decisive probes, the budget is twice the EWMA decisive depth clamped to
// [minProbeSteps, maxProbeSteps]; with no history it returns 0, which
// downstream resolves to guarded.DefaultProbeSteps.
func (m *CostModel) ProbeSteps(class string, requested int) int {
	if requested != 0 {
		return requested
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	c := m.classes[class]
	if c == nil {
		return 0
	}
	st := c.stages["probe"]
	if st == nil || st.decided < minStageAttempts || st.ewmaDepth <= 0 {
		return 0
	}
	k := int(math.Ceil(2 * st.ewmaDepth))
	if k < minProbeSteps {
		k = minProbeSteps
	}
	if k > maxProbeSteps {
		k = maxProbeSteps
	}
	return k
}

// pull adopts the cache's record for the class when it is richer (more
// total attempts) than the local one, making the model fleet-wide under a
// shared cache file.
func (m *CostModel) pull(cache *chase.Cache, class string) {
	if cache == nil {
		return
	}
	e, ok := cache.LookupCostModel(class)
	if !ok {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	c := m.classes[class]
	if c != nil && totalAttempts(c) >= entryAttempts(e) {
		return
	}
	c = &classStats{stages: make(map[string]*stageStats, len(e.Stages))}
	for _, r := range e.Stages {
		c.stages[r.Stage] = &stageStats{
			ewmaNS:    float64(r.EwmaNS),
			attempts:  r.Attempts,
			decided:   r.Decided,
			ewmaDepth: float64(r.EwmaDepth),
		}
	}
	m.classes[class] = c
}

// push publishes the class ledger to the cache. chase.StoreCostModel keeps
// whichever record carries more total attempts, so concurrent pushers
// converge on the richest history.
func (m *CostModel) push(cache *chase.Cache, class string) {
	if cache == nil {
		return
	}
	m.mu.RLock()
	c := m.classes[class]
	var e *chase.CostModelEntry
	if c != nil {
		e = &chase.CostModelEntry{Class: class, Stages: make([]chase.StageCostRecord, 0, len(c.stages))}
		names := make([]string, 0, len(c.stages))
		for name := range c.stages {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			st := c.stages[name]
			e.Stages = append(e.Stages, chase.StageCostRecord{
				Stage:     name,
				EwmaNS:    int64(st.ewmaNS),
				Attempts:  st.attempts,
				Decided:   st.decided,
				EwmaDepth: int64(st.ewmaDepth),
			})
		}
	}
	m.mu.RUnlock()
	if e != nil {
		cache.StoreCostModel(e)
	}
}

func totalAttempts(c *classStats) int64 {
	var n int64
	for _, st := range c.stages {
		n += st.attempts
	}
	return n
}

func entryAttempts(e *chase.CostModelEntry) int64 {
	var n int64
	for _, r := range e.Stages {
		n += r.Attempts
	}
	return n
}

// ClassState is one class's learned policy, as exported through
// termcheckd's /v1/stats.
type ClassState struct {
	// Class is the workload-class label (see classOf).
	Class string `json:"class"`
	// Runs is the class's estimated live-run count.
	Runs int64 `json:"runs"`
	// Order is the stage order the class would run now.
	Order []string `json:"order"`
	// ProbeSteps is the adaptive probe budget the class would use now
	// (0: no history yet, guarded.DefaultProbeSteps applies).
	ProbeSteps int `json:"probe-steps"`
}

// States snapshots every class's current policy, sorted by class label.
func (m *CostModel) States() []ClassState {
	m.mu.RLock()
	names := make([]string, 0, len(m.classes))
	for name := range m.classes {
		names = append(names, name)
	}
	runs := make(map[string]int64, len(names))
	for _, name := range names {
		runs[name] = m.classes[name].runs()
	}
	m.mu.RUnlock()
	sort.Strings(names)
	out := make([]ClassState, 0, len(names))
	for _, name := range names {
		out = append(out, ClassState{
			Class:      name,
			Runs:       runs[name],
			Order:      m.Order(name, stageOrderStatic),
			ProbeSteps: m.ProbeSteps(name, 0),
		})
	}
	return out
}
