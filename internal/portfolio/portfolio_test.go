package portfolio

import (
	"context"
	"testing"
	"time"

	"airct/internal/chase"
	"airct/internal/core"
	"airct/internal/guarded"
	"airct/internal/parser"
	"airct/internal/tgds"
	"airct/internal/workload"
)

// testBudgets keeps the corpus sweeps fast while matching core.Analyze's
// budgets exactly on both sides of every identity assertion.
const testDecideSteps = 500

func coreOpts() core.Options {
	return core.Options{GuardedOptions: guarded.DecideOptions{MaxSteps: testDecideSteps}}
}

func portOpts() Options {
	return Options{Guarded: guarded.DecideOptions{MaxSteps: testDecideSteps}}
}

func mustSet(t *testing.T, src string) *tgds.Set {
	t.Helper()
	set, err := parser.ParseTGDs(src)
	if err != nil {
		t.Fatal(err)
	}
	return set
}

// TestConclusionIdentityOnWorkloadCorpus is the portfolio's core contract:
// on every corpus family, the cascade's conclusion equals core.Analyze's,
// cache off, cold and warm.
func TestConclusionIdentityOnWorkloadCorpus(t *testing.T) {
	for _, l := range workload.Corpus() {
		t.Run(l.Name, func(t *testing.T) {
			rep, err := core.Analyze(l.Set, coreOpts())
			if err != nil {
				t.Fatal(err)
			}
			opts := portOpts()
			off, err := Analyze(context.Background(), l.Set, opts)
			if err != nil {
				t.Fatal(err)
			}
			if off.Conclusion != rep.Conclusion {
				t.Fatalf("conclusion = %v, want %v (core.Analyze); decided by %q\nstages: %+v",
					off.Conclusion, rep.Conclusion, off.DecidedBy, off.Stages)
			}
			if off.Conclusion != core.Unknown && off.DecidedBy == "" {
				t.Error("decisive result without a deciding stage")
			}
			opts.Cache = chase.NewCache()
			cold, err := Analyze(context.Background(), l.Set, opts)
			if err != nil {
				t.Fatal(err)
			}
			warm, err := Analyze(context.Background(), l.Set, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !warm.CacheHit || cold.CacheHit {
				t.Errorf("cache hits: cold %v, warm %v", cold.CacheHit, warm.CacheHit)
			}
			for label, got := range map[string]*Result{"cold": cold, "warm": warm} {
				if got.Conclusion != rep.Conclusion || got.DecidedBy != off.DecidedBy {
					t.Errorf("%s drifted: %v/%q vs %v/%q",
						label, got.Conclusion, got.DecidedBy, rep.Conclusion, off.DecidedBy)
				}
			}
		})
	}
}

// TestVerdictInvariantAcrossRacerPoolShapes is the satellite quick-check:
// conclusion and deciding stage never depend on the Tier 2 worker count or
// on cache state. It runs under the CI -race job, so it also exercises the
// race's memory discipline.
func TestVerdictInvariantAcrossRacerPoolShapes(t *testing.T) {
	// Families chosen to exercise every racer combination: sticky+guarded
	// terminating and diverging, guarded-only diverging, sticky-only
	// terminating, and a baseline-decided set.
	cases := []workload.Labeled{
		workload.LinearCycle(3),
		workload.StickyRelay(2),
		workload.GuardedLadder(2),
		workload.StickyJoin(2),
		workload.SwapIntro(2),
		workload.ExistentialChain(3),
	}
	for _, l := range cases {
		t.Run(l.Name, func(t *testing.T) {
			base, err := Analyze(context.Background(), l.Set, portOpts())
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 2, 4} {
				for _, withCache := range []bool{false, true} {
					opts := portOpts()
					opts.Workers = workers
					if withCache {
						opts.Cache = chase.NewCache()
					}
					for pass := 0; pass < 2; pass++ {
						got, err := Analyze(context.Background(), l.Set, opts)
						if err != nil {
							t.Fatal(err)
						}
						if got.Conclusion != base.Conclusion || got.DecidedBy != base.DecidedBy {
							t.Errorf("workers=%d cache=%v pass=%d: %v/%q, want %v/%q",
								workers, withCache, pass, got.Conclusion, got.DecidedBy,
								base.Conclusion, base.DecidedBy)
						}
						if !withCache {
							break
						}
					}
				}
			}
		})
	}
}

// TestStageAttribution pins which tier decides the canonical families — the
// cascade's reason to exist.
func TestStageAttribution(t *testing.T) {
	cases := []struct {
		name      string
		set       *tgds.Set
		decidedBy string
		verdict   core.Conclusion
	}{
		{"datalog-full", workload.DatalogChain(3).Set, "full", core.Terminates},
		{"existential-wa", workload.ExistentialChain(3).Set, "weak-acyclicity", core.Terminates},
		{"swap-intro-prune", workload.SwapIntro(2).Set, "jointree-prune", core.Terminates},
		{"sticky-relay-race", workload.StickyRelay(2).Set, "sticky", core.Diverges},
		// The guarded ladder diverges and is guarded non-sticky: the Tier 1
		// probe's rejecting fast path finds the pump certificate on a
		// k-prefix and decides before the Tier 2 race even starts.
		{"guarded-ladder-reject", workload.GuardedLadder(2).Set, "probe", core.Diverges},
		// MFA-but-not-JA separator: Mov(Y) reaches R.1 (via the swap copy)
		// and R.2 (via the direct copy), so the diagonal rule R(X,X) → S(X)
		// positionally forwards the null to S and back to A — JA sees a
		// cycle. Concretely no single null ever sits in both R positions at
		// once (R(n,c) and R(c,n) are never diagonal), so the critical-
		// instance so-chase saturates and MFA decides before any racer.
		{"mfa-separator", mustSet(t, `
			A(X) -> T(X,Y).
			T(X,Y) -> R(Y,X).
			T(X,Y) -> R(X,Y).
			R(X,X) -> S(X).
			S(X) -> A(X).`), "mfa", core.Terminates},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := Analyze(context.Background(), tc.set, portOpts())
			if err != nil {
				t.Fatal(err)
			}
			if res.Conclusion != tc.verdict || res.DecidedBy != tc.decidedBy {
				t.Errorf("got %v decided by %q, want %v by %q\nstages: %+v",
					res.Conclusion, res.DecidedBy, tc.verdict, tc.decidedBy, res.Stages)
			}
		})
	}
}

// TestProbeTierAttribution pins Tier 1's rejecting fast path on example
// 5.6's guarded non-sticky diverging shape: a pump certificate surfaces on
// a seed's k-prefix and the probe decides Diverges — carrying the
// certificate — before Tier 2 starts. The conclusion must still equal
// core.Analyze's, where the guarded racer reaches the identical verdict.
func TestProbeTierAttribution(t *testing.T) {
	// Guarded, not sticky (marked X recurs in body positions), not WA/JA,
	// not prunable — and genuinely diverging through the P self-feed.
	set := mustSet(t, `
		S(X,Y) -> T(X).
		R(X,Y), T(Y) -> P(X,Y).
		P(X,Y) -> P(Y,Z).
	`)
	if set.IsSticky() || !set.IsGuarded() {
		t.Fatal("example 5.6 class flags shifted")
	}
	rep, err := core.Analyze(set, coreOpts())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Conclusion != core.Diverges {
		t.Fatalf("core.Analyze on example 5.6 = %v, want diverges", rep.Conclusion)
	}
	res, err := Analyze(context.Background(), set, portOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.DecidedBy != "probe" || res.Conclusion != core.Diverges {
		t.Errorf("example 5.6: %v by %q, want diverges by probe\nstages: %+v",
			res.Conclusion, res.DecidedBy, res.Stages)
	}
	for _, s := range res.Stages {
		if s.Stage == "probe" && s.Decided && s.Evidence == "" {
			t.Error("rejecting probe carries no divergence certificate")
		}
		if s.Tier == 2 {
			t.Errorf("Tier 2 stage %q recorded after a decisive probe: %+v", s.Stage, s)
		}
	}
}

// TestExistsRacerIsNonAuthoritative pins the ∀∃ stage contract: with a
// database supplied it reports, but the conclusion and deciding stage are
// unchanged — even on a set where the search finds a terminating
// derivation while the ∀∀ answer is Diverges.
func TestExistsRacerIsNonAuthoritative(t *testing.T) {
	prog := parser.MustParse(`
		S(a).
		S(X) -> R(X,Y).
		R(X,Y) -> S(Y).
	`)
	without, err := Analyze(context.Background(), prog.TGDs, portOpts())
	if err != nil {
		t.Fatal(err)
	}
	opts := portOpts()
	opts.Database = prog.Database
	opts.Exists = chase.SearchOptions{MaxStates: 2000, MaxAtoms: 50}
	with, err := Analyze(context.Background(), prog.TGDs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if with.Conclusion != without.Conclusion || with.DecidedBy != without.DecidedBy {
		t.Errorf("∀∃ racer changed the answer: %v/%q vs %v/%q",
			with.Conclusion, with.DecidedBy, without.Conclusion, without.DecidedBy)
	}
	found := false
	for _, s := range with.Stages {
		if s.Stage == "exists" {
			found = true
			if s.Decided || s.Conclusion != core.Unknown {
				t.Errorf("exists stage marked decisive: %+v", s)
			}
		}
	}
	if !found {
		t.Error("no exists stage recorded despite a supplied database")
	}
}

func TestEmptySetRejected(t *testing.T) {
	if _, err := Analyze(context.Background(), &tgds.Set{}, Options{}); err == nil {
		t.Fatal("empty set accepted")
	}
}

// TestAnalyzeCancelledPropagates pins the cascade's own cancellation: a
// context cancelled mid-race surfaces as ctx's error, promptly. The probe
// is pinned accept-only — its rejecting fast path would otherwise decide
// the diverging ladder in well under the cancellation delay, leaving no
// race to cancel — so the cascade reaches the Tier 2 chase the cancel is
// meant to interrupt.
func TestAnalyzeCancelledPropagates(t *testing.T) {
	set := workload.GuardedLadder(2).Set
	opts := portOpts()
	opts.Guarded.MaxSteps = 50_000_000
	opts.Guarded.ProbeAcceptOnly = true
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res, err := Analyze(ctx, set, opts)
	elapsed := time.Since(start)
	if err != context.Canceled {
		t.Fatalf("err = %v (result %+v), want context.Canceled", err, res)
	}
	if elapsed > 5*time.Second {
		t.Errorf("cancelled Analyze took %v", elapsed)
	}
}

// TestWorkersOneIsSequentialCascade pins the degenerate pool: with one
// worker the race is a sequential cascade with early exit, and a decisive
// first racer leaves the second skipped, not cancelled.
func TestWorkersOneIsSequentialCascade(t *testing.T) {
	opts := portOpts()
	opts.Workers = 1
	res, err := Analyze(context.Background(), workload.LinearCycle(3).Set, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.DecidedBy != "sticky" || res.Conclusion != core.Diverges {
		t.Fatalf("linear cycle: %v by %q", res.Conclusion, res.DecidedBy)
	}
	for _, s := range res.Stages {
		if s.Stage == "guarded" && s.Detail != "skipped: an earlier stage decided" {
			t.Errorf("W=1 loser not skipped: %+v", s)
		}
	}
}
