package portfolio

import (
	"context"
	"testing"

	"airct/internal/chase"
	"airct/internal/core"
	"airct/internal/workload"
)

// TestQuickAdaptiveConclusionIdentity is the adaptive cascade's property
// test: over a deterministic sweep of random existential programs, the
// portfolio under ONE shared cost model and cache — the model reordering
// stages and re-picking probe budgets as it learns — reaches exactly
// core.Analyze's conclusion on every program. In particular a Tier 1
// divergence certificate can never contradict the Tier 2 semantic deciders:
// whenever the rejecting probe decides, core.Analyze (which reaches the
// same question through the guarded racer) must say Diverges too. Runs
// under the CI -race job, so the model's locking is exercised alongside.
func TestQuickAdaptiveConclusionIdentity(t *testing.T) {
	model := NewCostModel()
	cache := chase.NewCache()
	probeRejects := 0
	for seed := int64(0); seed < 200; seed++ {
		prog := workload.RandomExistentialProgram(seed)
		rep, err := core.Analyze(prog.TGDs, coreOpts())
		if err != nil {
			t.Fatalf("seed %d: core.Analyze: %v", seed, err)
		}
		opts := portOpts()
		opts.Cache = cache
		opts.Model = model
		opts.Database = prog.Database
		opts.Exists = chase.SearchOptions{MaxStates: 200, MaxAtoms: 40}
		res, err := Analyze(context.Background(), prog.TGDs, opts)
		if err != nil {
			t.Fatalf("seed %d: Analyze: %v", seed, err)
		}
		if res.Conclusion != rep.Conclusion {
			t.Fatalf("seed %d: adaptive portfolio drifted: %v by %q, want %v (core.Analyze)\nstages: %+v",
				seed, res.Conclusion, res.DecidedBy, rep.Conclusion, res.Stages)
		}
		if res.DecidedBy == "probe" && res.Conclusion == core.Diverges {
			probeRejects++
			for _, s := range res.Stages {
				if s.Stage == "probe" && s.Decided && s.Evidence == "" {
					t.Errorf("seed %d: rejecting probe carries no certificate", seed)
				}
			}
		}
	}
	if probeRejects < 3 {
		t.Fatalf("only %d probe rejections exercised; generator too narrow", probeRejects)
	}
}

// TestStageLedgerKeyedByDatabase is the cross-database replay regression:
// the whole-run StageOutcomes entry is keyed by the instance fingerprint
// too, so the same set analysed against a different database must MISS and
// re-run — its exists diagnostics belong to the other database — while the
// same (set, database) pair replays.
func TestStageLedgerKeyedByDatabase(t *testing.T) {
	a := workload.RandomExistentialProgram(7)
	b := workload.RandomExistentialProgram(1)
	if a.TGDs.Fingerprint() == b.TGDs.Fingerprint() {
		t.Fatal("want distinct programs")
	}
	cache := chase.NewCache()
	opts := portOpts()
	opts.Cache = cache
	opts.Database = a.Database
	opts.Exists = chase.SearchOptions{MaxStates: 200, MaxAtoms: 40}
	cold, err := Analyze(context.Background(), a.TGDs, opts)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Analyze(context.Background(), a.TGDs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if cold.CacheHit || !warm.CacheHit {
		t.Fatalf("same (set, database): cold hit=%v warm hit=%v", cold.CacheHit, warm.CacheHit)
	}
	opts.Database = b.Database
	other, err := Analyze(context.Background(), a.TGDs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if other.CacheHit {
		t.Fatal("different database replayed the other database's stage ledger")
	}
	if other.Conclusion != cold.Conclusion {
		t.Fatalf("conclusion depends on the database: %v vs %v", other.Conclusion, cold.Conclusion)
	}
	// And with no database at all (zero instance fingerprint): a third key.
	opts.Database = nil
	bare, err := Analyze(context.Background(), a.TGDs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if bare.CacheHit {
		t.Fatal("database-free run replayed a database-keyed ledger")
	}
}
