package portfolio

// BenchmarkAdaptiveColdPath measures cold time-to-verdict (no cache on
// either side — the ledger replay win is BENCH_portfolio.json's story) of
// the adaptive cascade against the PR 6 static cascade on a
// diverging-heavy mixed workload of guarded sets. "static" is the old
// configuration restored exactly: static stage order, accept-only probe
// (guarded.DecideOptions.ProbeAcceptOnly), no cost model — so a diverging
// input walks every Tier 0 check, probes without deciding, and pays the
// Tier 2 race: full seed-pool generation plus a full-budget battery.
// "adaptive" is the PR 9 cold path: a cost model pre-trained by a few
// untimed runs (the state any warmed-up daemon carries) moves the probe
// ahead of the stages that never decide on the class and shrinks its
// budget towards the learned pump depth; the probe then rejects on the
// k-prefix pump certificate at Tier 1 — sweeping the lazily enumerated
// seed pool only as far as the rejecting seed, so the bulk of the pool is
// never generated and no full-budget chase ever runs. Conclusions are
// asserted identical to core.Analyze before the timer and on every timed
// iteration, so the speedup recorded in BENCH_adaptive.json is never
// bought with verdict drift.
// Run with `go test ./internal/portfolio -bench BenchmarkAdaptiveColdPath -benchtime 20x`.

import (
	"context"
	"fmt"
	"testing"

	"airct/internal/core"
	"airct/internal/guarded"
	"airct/internal/parser"
	"airct/internal/tgds"
	"airct/internal/workload"
)

// adaptiveBenchSteps is the guarded budget for this benchmark — the
// conformance-suite budget (confDecideSteps), under which every diverging
// family still yields its divergence-witness verdict. The MFA budget stays
// at its 20k default, as every cold serving path runs it.
const adaptiveBenchSteps = 500

// adaptiveBenchFamilies is the diverging-heavy mix: four guarded diverging
// shapes (where the rejecting probe and the learned order pay off) and two
// terminating ones (where the adaptive cascade must not regress the cheap
// Tier 0 exits).
func adaptiveBenchFamilies() []struct {
	name string
	set  *tgds.Set
} {
	parse := func(src string) *tgds.Set {
		set, err := parser.ParseTGDs(src)
		if err != nil {
			panic(err)
		}
		return set
	}
	return []struct {
		name string
		set  *tgds.Set
	}{
		{"guarded-ladder-2", workload.GuardedLadder(2).Set},
		{"guarded-ladder-3", workload.GuardedLadder(3).Set},
		{"guard-chain", parse(`
			G(X,Y), S(X) -> G(Y,Z).
			G(X,Y) -> S(Y).`)},
		{"example-5.6", parse(`
			S(X,Y) -> T(X).
			R(X,Y), T(Y) -> P(X,Y).
			P(X,Y) -> P(Y,Z).`)},
		{"swap-intro-2", workload.SwapIntro(2).Set},
		{"existential-chain-3", workload.ExistentialChain(3).Set},
	}
}

func BenchmarkAdaptiveColdPath(b *testing.B) {
	for _, fam := range adaptiveBenchFamilies() {
		coreOpts := core.Options{GuardedOptions: guarded.DecideOptions{MaxSteps: adaptiveBenchSteps}}
		rep, err := core.Analyze(fam.set, coreOpts)
		if err != nil {
			b.Fatal(err)
		}
		want := rep.Conclusion

		// Drift gate: both configurations must reach core.Analyze's
		// conclusion before either is timed.
		staticOpts := Options{
			Guarded: guarded.DecideOptions{MaxSteps: adaptiveBenchSteps, ProbeAcceptOnly: true},
			Workers: 2,
		}
		check := func(opts Options, label string) {
			res, err := Analyze(context.Background(), fam.set, opts)
			if err != nil {
				b.Fatal(err)
			}
			if res.Conclusion != want {
				b.Fatalf("%s/%s drifted: %v by %q, want %v (core.Analyze)",
					fam.name, label, res.Conclusion, res.DecidedBy, want)
			}
		}
		check(staticOpts, "static")

		b.Run(fmt.Sprintf("%s/static", fam.name), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				check(staticOpts, "static")
			}
		})
		b.Run(fmt.Sprintf("%s/adaptive", fam.name), func(b *testing.B) {
			b.ReportAllocs()
			opts := Options{
				Guarded: guarded.DecideOptions{MaxSteps: adaptiveBenchSteps},
				Workers: 2,
				Model:   NewCostModel(),
			}
			// Pre-train past the reorder gates, untimed — the state any
			// warmed-up daemon carries before the request being measured.
			for warm := 0; warm < 6; warm++ {
				check(opts, "adaptive")
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				check(opts, "adaptive")
			}
		})
	}
}
