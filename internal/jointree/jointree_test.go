package jointree

import (
	"testing"

	"airct/internal/logic"
)

func c(s string) logic.Term { return logic.Const(s) }

func TestAcyclicChain(t *testing.T) {
	atoms := []logic.Atom{
		logic.MustAtom("R", c("a"), c("b")),
		logic.MustAtom("S", c("b"), c("x")),
		logic.MustAtom("T", c("x"), c("y")),
	}
	tree, ok := Build(atoms)
	if !ok {
		t.Fatal("chain is acyclic")
	}
	if err := tree.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if tree.Len() != 3 {
		t.Errorf("Len = %d", tree.Len())
	}
}

func TestCyclicTriangle(t *testing.T) {
	// R(a,b), S(b,c), T(c,a): the classic cyclic hypergraph.
	atoms := []logic.Atom{
		logic.MustAtom("R", c("a"), c("b")),
		logic.MustAtom("S", c("b"), c("cc")),
		logic.MustAtom("T", c("cc"), c("a")),
	}
	if IsAcyclic(atoms) {
		t.Fatal("triangle is cyclic")
	}
}

func TestTriangleWithGuardIsAcyclic(t *testing.T) {
	// Adding a guard G(a,b,c) covering all vertices makes it acyclic.
	atoms := []logic.Atom{
		logic.MustAtom("R", c("a"), c("b")),
		logic.MustAtom("S", c("b"), c("cc")),
		logic.MustAtom("T", c("cc"), c("a")),
		logic.MustAtom("G", c("a"), c("b"), c("cc")),
	}
	tree, ok := Build(atoms)
	if !ok {
		t.Fatal("guarded triangle is acyclic")
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	// The guard must be the root (everything folds into it).
	if tree.Nodes[tree.Root].Atom.Pred.Name != "G" {
		t.Errorf("root = %v, want the guard", tree.Nodes[tree.Root].Atom)
	}
}

func TestSingleAtomAndEmpty(t *testing.T) {
	tree, ok := Build([]logic.Atom{logic.MustAtom("R", c("a"))})
	if !ok || tree.Len() != 1 || tree.Root != 0 {
		t.Error("single atom is trivially acyclic")
	}
	if err := tree.Validate(); err != nil {
		t.Error(err)
	}
	empty, ok := Build(nil)
	if !ok || empty.Len() != 0 {
		t.Error("empty instance is acyclic")
	}
	if err := empty.Validate(); err != nil {
		t.Error(err)
	}
}

func TestDuplicateAtomsAreDistinctNodes(t *testing.T) {
	atoms := []logic.Atom{
		logic.MustAtom("R", c("a"), c("b")),
		logic.MustAtom("R", c("a"), c("b")),
	}
	tree, ok := Build(atoms)
	if !ok {
		t.Fatal("duplicates are acyclic")
	}
	if tree.Len() != 2 {
		t.Errorf("multiset semantics: 2 nodes, got %d", tree.Len())
	}
	if err := tree.Validate(); err != nil {
		t.Error(err)
	}
}

func TestDisconnectedComponentsAcyclic(t *testing.T) {
	atoms := []logic.Atom{
		logic.MustAtom("R", c("a"), c("b")),
		logic.MustAtom("S", c("x"), c("y")),
	}
	tree, ok := Build(atoms)
	if !ok {
		t.Fatal("disconnected pairs are acyclic")
	}
	if err := tree.Validate(); err != nil {
		t.Error(err)
	}
}

func TestAtomsAccessor(t *testing.T) {
	atoms := []logic.Atom{
		logic.MustAtom("R", c("a"), c("b")),
		logic.MustAtom("S", c("b")),
	}
	tree, ok := Build(atoms)
	if !ok {
		t.Fatal("acyclic")
	}
	if got := tree.Atoms(); len(got) != 2 {
		t.Errorf("Atoms = %v", got)
	}
}

func TestValidateCatchesDisconnectedTerm(t *testing.T) {
	// Hand-build an invalid tree: a term appearing at two nodes that are
	// not adjacent through nodes mentioning it.
	bad := &JoinTree{
		Root: 0,
		Nodes: []Node{
			{ID: 0, Atom: logic.MustAtom("R", c("a")), Parent: -1, Children: []int{1}},
			{ID: 1, Atom: logic.MustAtom("S", c("b")), Parent: 0, Children: []int{2}},
			{ID: 2, Atom: logic.MustAtom("T", c("a")), Parent: 1},
		},
	}
	if err := bad.Validate(); err == nil {
		t.Error("term a spans disconnected nodes; Validate must fail")
	}
}

func TestValidateCatchesBrokenLinks(t *testing.T) {
	bad := &JoinTree{
		Root: 0,
		Nodes: []Node{
			{ID: 0, Atom: logic.MustAtom("R", c("a")), Parent: -1},
			{ID: 1, Atom: logic.MustAtom("S", c("a")), Parent: 0}, // not in children
		},
	}
	if err := bad.Validate(); err == nil {
		t.Error("parent/child inconsistency must fail")
	}
	twoRoots := &JoinTree{
		Root: 0,
		Nodes: []Node{
			{ID: 0, Atom: logic.MustAtom("R", c("a")), Parent: -1},
			{ID: 1, Atom: logic.MustAtom("S", c("a")), Parent: -1},
		},
	}
	if err := twoRoots.Validate(); err == nil {
		t.Error("two roots must fail")
	}
}

func TestBiggerCycleDetected(t *testing.T) {
	// 4-cycle without guard.
	atoms := []logic.Atom{
		logic.MustAtom("E", c("1"), c("2")),
		logic.MustAtom("E", c("2"), c("3")),
		logic.MustAtom("E", c("3"), c("4")),
		logic.MustAtom("E", c("4"), c("1")),
	}
	if IsAcyclic(atoms) {
		t.Error("4-cycle is cyclic")
	}
	// Breaking the cycle restores acyclicity.
	if !IsAcyclic(atoms[:3]) {
		t.Error("path is acyclic")
	}
}
