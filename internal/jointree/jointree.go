// Package jointree implements join trees and instance acyclicity
// (Definition 5.4): an instance is acyclic iff its atoms can be arranged in
// a tree such that, for every term, the nodes mentioning that term form a
// connected subtree. Acyclicity is decided by the classical GYO ear-removal
// algorithm on the instance's hypergraph, which also yields a witnessing
// join tree. The guarded machinery (Treeification, abstract join trees)
// builds on this package.
package jointree

import (
	"fmt"

	"airct/internal/logic"
)

// Node is a vertex of a join tree: an atom plus tree links. Parent is -1
// for the root.
type Node struct {
	ID       int
	Atom     logic.Atom
	Parent   int
	Children []int
}

// JoinTree is a rooted tree over atoms (one node per atom occurrence).
type JoinTree struct {
	Nodes []Node
	Root  int
}

// Len returns the number of nodes.
func (t *JoinTree) Len() int { return len(t.Nodes) }

// Atoms returns the atoms labelling the tree, in node order.
func (t *JoinTree) Atoms() []logic.Atom {
	out := make([]logic.Atom, len(t.Nodes))
	for i, n := range t.Nodes {
		out[i] = n.Atom
	}
	return out
}

// Validate checks the join-tree conditions of Definition 5.4: tree shape
// (single root, parent/child consistency) and term connectedness — for each
// term, the set of nodes whose atom mentions it induces a connected subtree.
func (t *JoinTree) Validate() error {
	if len(t.Nodes) == 0 {
		return nil
	}
	roots := 0
	for i, n := range t.Nodes {
		if n.ID != i {
			return fmt.Errorf("jointree: node %d has ID %d", i, n.ID)
		}
		if n.Parent == -1 {
			roots++
			continue
		}
		if n.Parent < 0 || n.Parent >= len(t.Nodes) {
			return fmt.Errorf("jointree: node %d has parent %d out of range", i, n.Parent)
		}
		found := false
		for _, c := range t.Nodes[n.Parent].Children {
			if c == i {
				found = true
			}
		}
		if !found {
			return fmt.Errorf("jointree: node %d missing from parent %d's children", i, n.Parent)
		}
	}
	if roots != 1 {
		return fmt.Errorf("jointree: %d roots", roots)
	}
	// Connectedness: for every term, the nodes mentioning it minus one
	// witness node must each have a parent that also mentions it (walking
	// towards the subtree's top). Equivalently: among nodes mentioning t,
	// exactly one has a parent that does not mention t (or is the root).
	mentions := make(map[logic.Term][]int)
	for i, n := range t.Nodes {
		for term := range n.Atom.Terms() {
			mentions[term] = append(mentions[term], i)
		}
	}
	for term, nodes := range mentions {
		tops := 0
		inSet := make(map[int]bool, len(nodes))
		for _, i := range nodes {
			inSet[i] = true
		}
		for _, i := range nodes {
			p := t.Nodes[i].Parent
			if p == -1 || !inSet[p] {
				tops++
			}
		}
		if tops != 1 {
			return fmt.Errorf("jointree: term %v spans %d disconnected subtrees", term, tops)
		}
	}
	return nil
}

// Build runs GYO ear removal on the atoms and returns a witnessing join
// tree when the instance is acyclic, or ok = false when it is cyclic. Atom
// occurrences are kept apart: duplicate atoms are distinct nodes (the
// treeified database D_ac of Appendix C.2 is a multiset).
func Build(atoms []logic.Atom) (*JoinTree, bool) {
	n := len(atoms)
	if n == 0 {
		return &JoinTree{Root: -1}, true
	}
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	parent := make([]int, n)
	for i := range parent {
		parent[i] = -1
	}
	// occurrences[t] = number of alive atoms mentioning t.
	occ := make(map[logic.Term]int)
	termSets := make([]logic.TermSet, n)
	for i, a := range atoms {
		termSets[i] = a.Terms()
		for t := range termSets[i] {
			occ[t]++
		}
	}
	aliveCount := n
	removed := true
	for removed && aliveCount > 1 {
		removed = false
		for i := 0; i < n && aliveCount > 1; i++ {
			if !alive[i] {
				continue
			}
			// Shared terms of i: terms also alive elsewhere.
			shared := make([]logic.Term, 0, len(termSets[i]))
			for t := range termSets[i] {
				if occ[t] > 1 {
					shared = append(shared, t)
				}
			}
			// An ear needs a witness atom containing every shared term.
			for j := 0; j < n; j++ {
				if i == j || !alive[j] {
					continue
				}
				covers := true
				for _, t := range shared {
					if !termSets[j].Has(t) {
						covers = false
						break
					}
				}
				if covers {
					alive[i] = false
					aliveCount--
					parent[i] = j
					for t := range termSets[i] {
						occ[t]--
					}
					removed = true
					break
				}
			}
		}
	}
	if aliveCount != 1 {
		return nil, false
	}
	root := -1
	for i := range alive {
		if alive[i] {
			root = i
		}
	}
	// Ear parents may themselves have been removed later; compress chains
	// into the final tree (parent pointers always reference atoms removed
	// *after* the child or the root, so they are valid tree edges).
	tree := &JoinTree{Root: root}
	for i := range atoms {
		tree.Nodes = append(tree.Nodes, Node{ID: i, Atom: atoms[i], Parent: parent[i]})
	}
	for i, p := range parent {
		if p >= 0 {
			tree.Nodes[p].Children = append(tree.Nodes[p].Children, i)
		}
	}
	return tree, true
}

// IsAcyclic reports whether the atoms form an acyclic instance.
func IsAcyclic(atoms []logic.Atom) bool {
	_, ok := Build(atoms)
	return ok
}
