package core

import (
	"strings"
	"testing"

	"airct/internal/parser"
	"airct/internal/workload"
)

func TestAnalyzeCorpusMatchesGroundTruth(t *testing.T) {
	// The whole point of the reproduction: on the labeled corpus, the
	// analyzer's verdicts agree with the ground truth everywhere a verdict
	// is reached, and a verdict is reached for every guarded or sticky
	// member.
	for _, l := range workload.Corpus() {
		l := l
		t.Run(l.Name, func(t *testing.T) {
			rep, err := Analyze(l.Set, Options{})
			if err != nil {
				t.Fatal(err)
			}
			want := Diverges
			if l.Terminates {
				want = Terminates
			}
			if l.Guarded || l.Sticky {
				if rep.Conclusion == Unknown {
					t.Fatalf("guarded/sticky member must get a verdict: %s", rep.Summary())
				}
			}
			if rep.Conclusion != Unknown && rep.Conclusion != want {
				t.Errorf("verdict %v, ground truth %v\n%s", rep.Conclusion, want, rep.Summary())
			}
			for _, why := range rep.Reasons {
				if strings.Contains(why, "CONTRADICTION") {
					t.Errorf("contradicting verdicts: %s", why)
				}
			}
		})
	}
}

func TestAnalyzeRejectsEmptySet(t *testing.T) {
	set, err := parser.ParseTGDs(``)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Analyze(set, Options{}); err == nil {
		t.Error("empty set must error")
	}
}

func TestAnalyzeUnknownOutsideClasses(t *testing.T) {
	// Unguarded, non-sticky, not WA: honest Unknown.
	set, err := parser.ParseTGDs(`
		R(X,Y), S(Y,X) -> T(X,Y).
		T(X,Y) -> R(Y,Z).
		R(X,Y), T(X,Y) -> S(X,Y).
	`)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Analyze(set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Guarded || rep.Sticky {
		t.Skip("corpus assumption failed")
	}
	if rep.WeaklyAcyclic || rep.JointlyAcyclic {
		t.Skip("baseline fired; pick a harder program")
	}
	if rep.Conclusion != Unknown {
		t.Errorf("expected Unknown:\n%s", rep.Summary())
	}
	if len(rep.Reasons) == 0 || !strings.Contains(rep.Reasons[len(rep.Reasons)-1], "undecidable") {
		t.Errorf("Unknown must cite undecidability: %v", rep.Reasons)
	}
}

func TestSummaryRendersWitness(t *testing.T) {
	set, err := parser.ParseTGDs(`S(X) -> R(X,Y). R(X,Y) -> S(Y).`)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Analyze(set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Conclusion != Diverges {
		t.Fatalf("ladder diverges:\n%s", rep.Summary())
	}
	s := rep.Summary()
	if !strings.Contains(s, "diverges") || !strings.Contains(s, "witness") {
		t.Errorf("summary lacks verdict/witness:\n%s", s)
	}
}

func TestSkipBaselines(t *testing.T) {
	set, err := parser.ParseTGDs(`A(X) -> B(X).`)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Analyze(set, Options{SkipBaselines: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.WeaklyAcyclic || rep.JointlyAcyclic {
		t.Error("baselines must be skipped")
	}
	// The sticky/guarded procedures still settle it.
	if rep.Conclusion != Terminates {
		t.Errorf("verdict = %v", rep.Conclusion)
	}
}

func TestConclusionString(t *testing.T) {
	if Unknown.String() != "unknown" || Terminates.String() != "terminates" || Diverges.String() != "diverges" {
		t.Error("Conclusion.String mismatch")
	}
}
