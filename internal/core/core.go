// Package core is the library's façade: it analyses a set of TGDs for
// all-instances restricted chase termination (the paper's CT^res_∀∀
// membership problem), combining class detection, the sufficient-condition
// baselines, and the two decision procedures of the paper — the abstract-
// join-tree search for guarded sets (Section 5) and the caterpillar Büchi
// automaton for sticky sets (Section 6).
package core

import (
	"context"
	"fmt"
	"strings"

	"airct/internal/acyclicity"
	"airct/internal/guarded"
	"airct/internal/sticky"
	"airct/internal/tgds"
)

// Conclusion is the aggregate termination verdict.
type Conclusion uint8

const (
	// Unknown: no decision procedure applied (outside G and S, and no
	// sufficient condition fired). CT^res_∀∀ is undecidable in general
	// (Theorem 3.6), so Unknown is an honest possible answer.
	Unknown Conclusion = iota
	// Terminates: every valid restricted chase derivation of every
	// database is finite.
	Terminates
	// Diverges: some database admits an infinite fair restricted chase
	// derivation.
	Diverges
)

func (c Conclusion) String() string {
	switch c {
	case Terminates:
		return "terminates"
	case Diverges:
		return "diverges"
	default:
		return "unknown"
	}
}

// Report collects everything the analyzer derived about a set.
type Report struct {
	// Class flags.
	SingleHead      bool
	Guarded         bool
	Linear          bool
	Sticky          bool
	Full            bool
	FrontierGuarded bool
	WeaklyAcyclic   bool
	JointlyAcyclic  bool
	// MFA is true when the model-faithful-acyclicity check accepted the
	// set within its step budget (false means "not proven", not "cyclic").
	MFA bool
	// EGDs is the number of equality-generating dependencies in the set.
	// When non-zero, the class flags above describe the TGDs alone, and
	// only the EGD-sound conclusions (existential-free, weak acyclicity)
	// are drawn — the decision procedures and the remaining baselines are
	// TGD-only.
	EGDs int
	// NeverFiring lists the labels of TGDs pruned as never-firing (head
	// folds into body over the frontier; see acyclicity.PruneNeverFiring).
	NeverFiring []string

	// GuardedVerdict is set when the guarded procedure ran.
	GuardedVerdict *guarded.Verdict
	// StickyVerdict is set when the sticky (Büchi) procedure ran.
	StickyVerdict *sticky.Verdict

	// Conclusion aggregates the verdicts; Reasons explains each input to
	// the aggregation, in order of application.
	Conclusion Conclusion
	Reasons    []string
}

// Options configures the analyzer.
type Options struct {
	// GuardedOptions tunes the guarded seed search.
	GuardedOptions guarded.DecideOptions
	// StickyOptions tunes the Büchi exploration.
	StickyOptions sticky.DecideOptions
	// MFASteps bounds the MFA check's semi-oblivious critical-instance
	// chase (0: 20_000 steps). The check is skipped with SkipBaselines.
	MFASteps int
	// SkipBaselines disables the sufficient-condition checks — WA, JA,
	// the never-firing prune and MFA — used by experiments that time the
	// decision procedures in isolation.
	SkipBaselines bool
}

func (o Options) mfaSteps() int {
	if o.MFASteps <= 0 {
		return 20_000
	}
	return o.MFASteps
}

// Analyze inspects the set and decides CT^res_∀∀ membership where the
// paper's results make that possible.
func Analyze(set *tgds.Set, opts Options) (*Report, error) {
	return AnalyzeContext(context.Background(), set, opts)
}

// AnalyzeContext is Analyze with cancellation: the context is threaded into
// the sticky Büchi exploration and the guarded seed search (the two
// procedures that can run long), which observe it inside their inner loops
// and return its error promptly. The report is bit-identical to Analyze's
// on an uncancelled context — the baselines and the procedure order are
// unchanged.
func AnalyzeContext(ctx context.Context, set *tgds.Set, opts Options) (*Report, error) {
	if set.Len() == 0 && !set.HasEGDs() {
		return nil, fmt.Errorf("core: empty TGD set")
	}
	r := &Report{
		SingleHead:      set.IsSingleHead(),
		Guarded:         set.IsGuarded(),
		Linear:          set.IsLinear(),
		Sticky:          set.IsSticky(),
		Full:            set.IsFull(),
		FrontierGuarded: set.IsFrontierGuarded(),
		EGDs:            set.NumEGDs(),
	}
	if r.Full {
		// Full (existential-free) sets never invent nulls: every chase is
		// bounded by the closure of the active domain. Equality steps only
		// merge existing terms, so the bound survives arbitrary EGDs.
		if set.HasEGDs() {
			r.conclude(Terminates, "existential-free TGDs with EGDs: no invented values, and equality steps strictly shrink the term count")
		} else {
			r.conclude(Terminates, "full (existential-free) set: the chase cannot invent values")
		}
	}
	if !opts.SkipBaselines {
		// Weak acyclicity is computed over the TGDs alone; the classic data
		// exchange result (Fagin et al.) makes it a sufficient termination
		// condition for weakly acyclic TGDs together with arbitrary EGDs.
		// The other baselines — joint acyclicity, the never-firing prune,
		// MFA — have no published EGD-aware counterpart, so they are gated
		// to TGD-only sets: their termination arguments do not account for
		// the triggers an equality merge can create.
		r.WeaklyAcyclic = acyclicity.IsWeaklyAcyclic(set)
		if r.WeaklyAcyclic {
			if set.HasEGDs() {
				r.conclude(Terminates, "weak acyclicity of the TGDs (sufficient with arbitrary EGDs, Fagin et al.)")
			} else {
				r.conclude(Terminates, "weak acyclicity (sufficient condition)")
			}
		}
		if set.HasEGDs() {
			r.reason("EGDs present: joint acyclicity, the never-firing prune and MFA are TGD-only baselines and were skipped")
		} else {
			r.JointlyAcyclic = acyclicity.IsJointlyAcyclic(set)
			if r.JointlyAcyclic {
				r.conclude(Terminates, "joint acyclicity (sufficient condition)")
			}
			if pruned, removed := acyclicity.PruneNeverFiring(set); len(removed) > 0 {
				for _, i := range removed {
					r.NeverFiring = append(r.NeverFiring, set.TGDs[i].Label)
				}
				switch {
				case pruned == nil:
					r.conclude(Terminates, fmt.Sprintf("jointree prune: all %d TGDs are never-firing (head folds into body over the frontier)", len(removed)))
				case pruned.IsFull():
					r.conclude(Terminates, fmt.Sprintf("jointree prune: %d never-firing TGDs removed; remainder is existential-free", len(removed)))
				case acyclicity.IsWeaklyAcyclic(pruned):
					r.conclude(Terminates, fmt.Sprintf("jointree prune: %d never-firing TGDs removed; remainder is weakly acyclic", len(removed)))
				case acyclicity.IsJointlyAcyclic(pruned):
					r.conclude(Terminates, fmt.Sprintf("jointree prune: %d never-firing TGDs removed; remainder is jointly acyclic", len(removed)))
				}
			}
			if mfa := acyclicity.CheckMFA(set, opts.mfaSteps()); mfa.Acyclic {
				r.MFA = true
				r.conclude(Terminates, fmt.Sprintf("MFA: semi-oblivious critical-instance chase saturated in %d steps (sufficient condition)", mfa.Steps))
			}
		}
	}
	if r.Sticky {
		v, err := sticky.DecideContext(ctx, set, opts.StickyOptions)
		if err != nil {
			return nil, err
		}
		r.StickyVerdict = v
		if v.Terminates {
			if v.Complete {
				r.conclude(Terminates, "sticky Büchi automaton A_T is empty (Theorem 6.1)")
			} else {
				r.reason("sticky Büchi exploration incomplete (state bound); no witness found")
			}
		} else {
			r.conclude(Diverges, fmt.Sprintf(
				"sticky Büchi witness: caterpillar lasso of length %d+%d (Theorem 6.1)",
				len(v.Lasso.Prefix), len(v.Lasso.Cycle)))
		}
	}
	if r.Guarded {
		v, err := guarded.DecideContext(ctx, set, opts.GuardedOptions)
		if err != nil {
			return nil, err
		}
		r.GuardedVerdict = v
		switch {
		case v.Terminates && v.Method == "weak-acyclicity":
			r.conclude(Terminates, "guarded: weak acyclicity")
		case v.Terminates:
			r.conclude(Terminates, fmt.Sprintf("guarded: %d seeds exhausted at budget %d (Theorem 5.1, bounded search)", v.SeedsTried, v.Budget))
		case v.Method == "divergence-witness":
			r.conclude(Diverges, fmt.Sprintf("guarded: diverging witness database (%s)", v.Evidence))
		default:
			r.reason(fmt.Sprintf("guarded: budget exhausted without certificate (%s)", v.Evidence))
		}
	}
	if set.HasEGDs() && r.Conclusion == Unknown {
		r.reason("the guarded and sticky decision procedures are TGD-only and do not run on sets with EGDs")
	}
	if r.Conclusion == Unknown && len(r.Reasons) == 0 {
		r.reason("outside the guarded and sticky classes; no sufficient condition fired (CT^res_∀∀ is undecidable in general, Theorem 3.6)")
	}
	return r, nil
}

// conclude records a verdict with its justification, surfacing
// contradictions between procedures loudly instead of masking them.
func (r *Report) conclude(c Conclusion, why string) {
	if r.Conclusion != Unknown && r.Conclusion != c {
		r.Reasons = append(r.Reasons, fmt.Sprintf("CONTRADICTION: %s says %v but prior verdict was %v", why, c, r.Conclusion))
		return
	}
	r.Conclusion = c
	r.Reasons = append(r.Reasons, why)
}

func (r *Report) reason(why string) {
	r.Reasons = append(r.Reasons, why)
}

// Summary renders the report for terminals.
func (r *Report) Summary() string {
	var b strings.Builder
	flag := func(name string, v bool) {
		mark := " "
		if v {
			mark = "x"
		}
		fmt.Fprintf(&b, "  [%s] %s\n", mark, name)
	}
	fmt.Fprintf(&b, "classes:\n")
	flag("single-head", r.SingleHead)
	flag("linear", r.Linear)
	flag("guarded (G)", r.Guarded)
	flag("frontier-guarded", r.FrontierGuarded)
	flag("sticky (S)", r.Sticky)
	flag("full (datalog)", r.Full)
	flag("weakly acyclic", r.WeaklyAcyclic)
	flag("jointly acyclic", r.JointlyAcyclic)
	flag("MFA (critical instance)", r.MFA)
	if r.EGDs > 0 {
		fmt.Fprintf(&b, "egds: %d (class flags describe the TGDs alone)\n", r.EGDs)
	}
	fmt.Fprintf(&b, "verdict: %s\n", r.Conclusion)
	for _, why := range r.Reasons {
		fmt.Fprintf(&b, "  - %s\n", why)
	}
	if r.StickyVerdict != nil && !r.StickyVerdict.Terminates {
		fmt.Fprintf(&b, "witness (sticky): seed %v, lasso prefix %v cycle %v\n",
			r.StickyVerdict.Seed.EType, r.StickyVerdict.Lasso.Prefix, r.StickyVerdict.Lasso.Cycle)
	}
	if r.GuardedVerdict != nil && !r.GuardedVerdict.Terminates && r.GuardedVerdict.Witness != nil {
		fmt.Fprintf(&b, "witness (guarded): database %v\n", r.GuardedVerdict.Witness)
	}
	return b.String()
}
