package core

import (
	"testing"

	"airct/internal/acyclicity"
	"airct/internal/chase"
	"airct/internal/guarded"
	"airct/internal/sticky"
	"airct/internal/workload"
)

// The cross-validation battery: on randomly generated TGD sets, the
// decision procedures must agree with each other and with empirical
// chasing wherever their claims overlap. These are the strongest tests in
// the repository — they exercise the full pipeline on inputs nobody
// hand-picked.

const randomSets = 120

func TestCrossCheckStickyVerdictsAgainstEmpiricalChase(t *testing.T) {
	checked := 0
	for seed := int64(0); seed < randomSets; seed++ {
		set := workload.RandomTGDSet(seed, workload.RandomOptions{})
		if !set.IsSticky() {
			continue
		}
		checked++
		v, err := sticky.Decide(set, sticky.DecideOptions{MaxStates: 50000})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Terminating verdict ⇒ every seed database saturates under every
		// strategy (soundness of the Büchi emptiness).
		if v.Terminates && v.Complete {
			for _, db := range guarded.GenerateSeeds(set, 32) {
				for _, o := range []chase.Options{
					{Variant: chase.Restricted, Strategy: chase.FIFO, MaxSteps: 2000, DropSteps: true},
					{Variant: chase.Restricted, Strategy: chase.LIFO, MaxSteps: 2000, DropSteps: true},
					{Variant: chase.Restricted, Strategy: chase.Random, Seed: seed, MaxSteps: 2000, DropSteps: true},
				} {
					if run := chase.RunChase(db, set, o); !run.Terminated() {
						t.Fatalf("seed %d: sticky verdict says terminating but %v diverges under %v on\n%v",
							seed, db, o.Strategy, set)
					}
				}
			}
		}
	}
	if checked < 10 {
		t.Fatalf("only %d sticky sets among %d random draws; generator too narrow", checked, randomSets)
	}
}

func TestCrossCheckGuardedVerdictsAgainstEmpiricalChase(t *testing.T) {
	checked := 0
	for seed := int64(0); seed < randomSets; seed++ {
		set := workload.RandomTGDSet(seed, workload.RandomOptions{})
		if !set.IsGuarded() {
			continue
		}
		checked++
		v, err := guarded.Decide(set, guarded.DecideOptions{MaxSteps: 1200})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !v.Terminates {
			// Diverging verdicts ship a witness: it must actually exhaust
			// its budget on replay.
			run := chase.RunChase(v.Witness, set, chase.Options{
				Variant: chase.Restricted, MaxSteps: v.Budget, DropSteps: true,
			})
			if run.Terminated() {
				t.Fatalf("seed %d: witness %v terminated on replay for\n%v", seed, v.Witness, set)
			}
		}
	}
	if checked < 10 {
		t.Fatalf("only %d guarded sets among %d random draws", checked, randomSets)
	}
}

func TestCrossCheckDecidersAgreeOnIntersection(t *testing.T) {
	// Sets that are both guarded and sticky get two independent verdicts;
	// they must never contradict (when both are confident).
	agreements, checked := 0, 0
	for seed := int64(0); seed < randomSets; seed++ {
		set := workload.RandomTGDSet(seed, workload.RandomOptions{})
		if !set.IsGuarded() || !set.IsSticky() {
			continue
		}
		sv, err := sticky.Decide(set, sticky.DecideOptions{MaxStates: 50000})
		if err != nil {
			t.Fatalf("seed %d sticky: %v", seed, err)
		}
		gv, err := guarded.Decide(set, guarded.DecideOptions{MaxSteps: 1200})
		if err != nil {
			t.Fatalf("seed %d guarded: %v", seed, err)
		}
		checked++
		if !sv.Complete || gv.Method == "budget-exhausted" {
			continue // one side is unsure; no contradiction to claim
		}
		// The sticky verdict is the paper's exact algorithm; the guarded
		// bounded search may miss divergence (seed too shallow) but must
		// never claim divergence on a sticky-terminating set.
		if sv.Terminates && !gv.Terminates {
			t.Fatalf("seed %d: sticky says terminates, guarded found witness %v\n%v",
				seed, gv.Witness, set)
		}
		if sv.Terminates == gv.Terminates {
			agreements++
		}
	}
	if checked < 5 {
		t.Fatalf("only %d sets in the intersection", checked)
	}
	if agreements < checked*3/4 {
		t.Errorf("deciders agree on only %d/%d intersection sets", agreements, checked)
	}
}

func TestCrossCheckWAImpliesEveryVerdictTerminates(t *testing.T) {
	for seed := int64(0); seed < randomSets; seed++ {
		set := workload.RandomTGDSet(seed, workload.RandomOptions{})
		if !acyclicity.IsWeaklyAcyclic(set) {
			continue
		}
		// WA is a sound termination proof; neither decider may contradict.
		if set.IsSticky() {
			v, err := sticky.Decide(set, sticky.DecideOptions{MaxStates: 50000})
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if !v.Terminates {
				t.Fatalf("seed %d: WA set judged diverging by sticky decider:\n%v\nlasso %v",
					seed, set, v.Lasso)
			}
		}
		if set.IsGuarded() {
			v, err := guarded.Decide(set, guarded.DecideOptions{MaxSteps: 1200})
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if !v.Terminates {
				t.Fatalf("seed %d: WA set judged diverging by guarded decider:\n%v", seed, set)
			}
		}
	}
}

func TestCrossCheckAnalyzeNeverContradicts(t *testing.T) {
	for seed := int64(0); seed < randomSets; seed++ {
		set := workload.RandomTGDSet(seed, workload.RandomOptions{})
		rep, err := Analyze(set, Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, why := range rep.Reasons {
			if len(why) >= 13 && why[:13] == "CONTRADICTION" {
				t.Fatalf("seed %d: %s\n%v\n%s", seed, why, set, rep.Summary())
			}
		}
	}
}
