package tgds

import (
	"fmt"

	"airct/internal/logic"
)

// Marking is the result of the stickiness marking procedure of Section 2:
// the set of body variables of a TGD set that are "marked in T". Because
// NewSet standardises TGDs apart, a variable identifies its TGD, so the
// marking is a single variable set.
type Marking struct {
	set    *Set
	marked logic.TermSet
}

// ComputeMarking runs the inductive marking procedure to fixpoint:
//
//  1. a body variable that does not occur in the head of its TGD is marked;
//  2. if head(σ) = R(t̄) and x ∈ t̄ occurs in the body of σ, and there is
//     σ′ ∈ T with an atom R(t̄′) in its body such that every variable of t̄′
//     at a position of pos(R(t̄), x) is marked, then x is marked.
//
// It requires a single-head set (stickiness is defined for class S, which is
// single-head) and returns an error otherwise.
func ComputeMarking(s *Set) (*Marking, error) {
	if !s.IsSingleHead() {
		return nil, fmt.Errorf("tgds: stickiness marking requires single-head TGDs")
	}
	marked := make(logic.TermSet)

	// Base step.
	for _, t := range s.TGDs {
		headVars := t.HeadVars()
		for v := range t.BodyVars() {
			if !headVars.Has(v) {
				marked[v] = struct{}{}
			}
		}
	}

	// Propagation to fixpoint.
	for changed := true; changed; {
		changed = false
		for _, t := range s.TGDs {
			head := t.HeadAtom()
			bodyVars := t.BodyVars()
			for v := range bodyVars {
				if marked.Has(v) || !head.HasTerm(v) {
					continue
				}
				positions := head.PositionsOf(v)
				if propagatesMark(s, head.Pred, positions, marked) {
					marked[v] = struct{}{}
					changed = true
				}
			}
		}
	}
	return &Marking{set: s, marked: marked}, nil
}

// propagatesMark reports whether some TGD of s has a body atom with
// predicate pred whose variables at all the given positions are marked.
func propagatesMark(s *Set, pred logic.Predicate, positions []int, marked logic.TermSet) bool {
	for _, t := range s.TGDs {
		for _, a := range t.Body {
			if a.Pred != pred {
				continue
			}
			all := true
			for _, i := range positions {
				if !marked.Has(a.Arg(i)) {
					all = false
					break
				}
			}
			if all {
				return true
			}
		}
	}
	return false
}

// IsMarked reports whether the body variable v is marked in T.
func (m *Marking) IsMarked(v logic.Term) bool { return m.marked.Has(v) }

// MarkedVars returns the marked variables in sorted order.
func (m *Marking) MarkedVars() []logic.Term { return m.marked.Sorted() }

// StickyViolation describes why a set fails stickiness: a TGD whose body
// contains two or more occurrences of a marked variable.
type StickyViolation struct {
	TGD TGD
	Var logic.Term
}

func (v *StickyViolation) Error() string {
	return fmt.Sprintf("tgds: %s is not sticky: marked variable %v occurs more than once in the body of %s",
		v.TGD.Label, v.Var, v.TGD.Label)
}

// Violation returns a sticky violation if one exists: some TGD whose body
// mentions a marked variable at two or more argument positions.
func (m *Marking) Violation() *StickyViolation {
	for _, t := range m.set.TGDs {
		counts := make(map[logic.Term]int)
		for _, a := range t.Body {
			for _, term := range a.Args {
				if term.IsVar() {
					counts[term]++
				}
			}
		}
		for _, v := range logic.VarsOf(t.Body).Sorted() {
			if counts[v] > 1 && m.marked.Has(v) {
				return &StickyViolation{TGD: t, Var: v}
			}
		}
	}
	return nil
}

// IsSticky reports whether the (single-head) set is sticky, returning the
// marking used for the check; the error is non-nil only for multi-head
// inputs.
func IsSticky(s *Set) (bool, *Marking, error) {
	m, err := ComputeMarking(s)
	if err != nil {
		return false, nil, err
	}
	return m.Violation() == nil, m, nil
}

// IsSticky reports whether the set is sticky. Multi-head sets are not
// sticky by definition (S is a class of single-head TGDs), and a set with
// EGDs is never reported sticky: the Büchi decision procedure is TGD-only.
func (s *Set) IsSticky() bool {
	if s.HasEGDs() {
		return false
	}
	ok, _, err := IsSticky(s)
	return err == nil && ok
}

// ImmortalHeadPosition reports whether the i-th (1-based) position of the
// head of σ is immortal w.r.t. T (Section 6.1): the variable at that head
// position is a frontier variable that is not marked in T. A term landing at
// an immortal position is propagated forever by sticky sets. Positions
// holding existential variables are never immortal (the fresh null may die).
func (m *Marking) ImmortalHeadPosition(t TGD, i int) bool {
	head := t.HeadAtom()
	v := head.Arg(i)
	if !t.Frontier().Has(v) {
		return false
	}
	return !m.marked.Has(v)
}

// ImmortalHeadPositions returns the immortal head positions of σ, 1-based.
func (m *Marking) ImmortalHeadPositions(t TGD) []int {
	var out []int
	head := t.HeadAtom()
	for i := 1; i <= head.Pred.Arity; i++ {
		if m.ImmortalHeadPosition(t, i) {
			out = append(out, i)
		}
	}
	return out
}
