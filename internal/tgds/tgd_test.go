package tgds

import (
	"strings"
	"testing"

	"airct/internal/logic"
)

func atom(name string, vars ...string) logic.Atom {
	args := make([]logic.Term, len(vars))
	for i, v := range vars {
		args[i] = logic.Var(v)
	}
	return logic.MustAtom(name, args...)
}

func TestTGDValidate(t *testing.T) {
	tests := []struct {
		name    string
		body    []logic.Atom
		head    []logic.Atom
		wantErr bool
	}{
		{"ok", []logic.Atom{atom("R", "X", "Y")}, []logic.Atom{atom("S", "X")}, false},
		{"empty body", nil, []logic.Atom{atom("S", "X")}, true},
		{"empty head", []logic.Atom{atom("R", "X", "Y")}, nil, true},
		{
			"constant in body",
			[]logic.Atom{logic.MustAtom("R", logic.Const("a"), logic.Var("Y"))},
			[]logic.Atom{atom("S", "Y")},
			true,
		},
		{
			"null in head",
			[]logic.Atom{atom("R", "X")},
			[]logic.Atom{logic.MustAtom("S", logic.NewNull("n"))},
			true,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, err := New("t", tc.body, tc.head)
			if (err != nil) != tc.wantErr {
				t.Errorf("New err = %v, wantErr %v", err, tc.wantErr)
			}
		})
	}
}

func TestFrontierAndExistential(t *testing.T) {
	// R(X,Y), P(Y,Z) -> T(X,Y,W)
	tgd := MustNew("σ", []logic.Atom{atom("R", "X", "Y"), atom("P", "Y", "Z")},
		[]logic.Atom{atom("T", "X", "Y", "W")})
	fr := tgd.Frontier()
	if len(fr) != 2 || !fr.Has(logic.Var("X")) || !fr.Has(logic.Var("Y")) {
		t.Errorf("Frontier = %v", fr.Sorted())
	}
	ex := tgd.ExistentialVars()
	if len(ex) != 1 || !ex.Has(logic.Var("W")) {
		t.Errorf("ExistentialVars = %v", ex.Sorted())
	}
	if got := tgd.BodyVars(); len(got) != 3 {
		t.Errorf("BodyVars = %v", got.Sorted())
	}
}

func TestGuard(t *testing.T) {
	tests := []struct {
		name      string
		tgd       TGD
		guarded   bool
		guardPred string
	}{
		{
			"linear is guarded",
			MustNew("", []logic.Atom{atom("R", "X", "Y")}, []logic.Atom{atom("S", "X")}),
			true, "R",
		},
		{
			"guard covers all",
			MustNew("", []logic.Atom{atom("S", "Y"), atom("G", "X", "Y", "Z"), atom("P", "Z")},
				[]logic.Atom{atom("H", "X")}),
			true, "G",
		},
		{
			"cross join unguarded",
			MustNew("", []logic.Atom{atom("R", "X", "Y"), atom("P", "Y", "Z")},
				[]logic.Atom{atom("T", "X", "Z")}),
			false, "",
		},
		{
			"left-most guard wins",
			MustNew("", []logic.Atom{atom("G1", "X", "Y"), atom("G2", "X", "Y")},
				[]logic.Atom{atom("H", "X")}),
			true, "G1",
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			g, ok := tc.tgd.Guard()
			if ok != tc.guarded {
				t.Fatalf("guarded = %v, want %v", ok, tc.guarded)
			}
			if ok && g.Pred.Name != tc.guardPred {
				t.Errorf("guard = %v, want predicate %s", g, tc.guardPred)
			}
			if tc.guarded != tc.tgd.IsGuarded() {
				t.Error("IsGuarded disagrees with Guard")
			}
		})
	}
}

func TestSideAtoms(t *testing.T) {
	tgd := MustNew("", []logic.Atom{atom("S", "Y"), atom("G", "X", "Y"), atom("P", "X")},
		[]logic.Atom{atom("H", "X")})
	side := tgd.SideAtoms()
	if len(side) != 2 || side[0].Pred.Name != "S" || side[1].Pred.Name != "P" {
		t.Errorf("SideAtoms = %v", side)
	}
	unguarded := MustNew("", []logic.Atom{atom("R", "X", "Y"), atom("P", "Y", "Z")},
		[]logic.Atom{atom("T", "X", "Z")})
	if unguarded.SideAtoms() != nil {
		t.Error("SideAtoms of unguarded TGD should be nil")
	}
}

func TestHeadAtomPanicsOnMultiHead(t *testing.T) {
	multi := MustNew("", []logic.Atom{atom("R", "X", "Y", "Z")},
		[]logic.Atom{atom("R", "X", "W", "Y"), atom("R", "W", "Y", "Y")})
	if multi.IsSingleHead() {
		t.Fatal("expected multi-head")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	multi.HeadAtom()
}

func TestSatisfiedBy(t *testing.T) {
	// R(X,Y) -> ∃Z R(X,Z): satisfied by any instance with R non-empty since
	// the fact itself witnesses the head (the paper's intro example).
	tgd := MustNew("", []logic.Atom{atom("R", "X", "Y")}, []logic.Atom{atom("R", "X", "Z")})
	src := logic.NewSliceSource([]logic.Atom{logic.MustAtom("R", logic.Const("a"), logic.Const("b"))})
	if !tgd.SatisfiedBy(src) {
		t.Error("intro example: R(a,b) satisfies R(X,Y)->∃Z R(X,Z)")
	}
	// R(X,Y) -> S(X) is violated.
	tgd2 := MustNew("", []logic.Atom{atom("R", "X", "Y")}, []logic.Atom{atom("S", "X")})
	if tgd2.SatisfiedBy(src) {
		t.Error("missing S(a) must violate")
	}
	src2 := logic.NewSliceSource([]logic.Atom{
		logic.MustAtom("R", logic.Const("a"), logic.Const("b")),
		logic.MustAtom("S", logic.Const("a")),
	})
	if !tgd2.SatisfiedBy(src2) {
		t.Error("S(a) present, should satisfy")
	}
}

func TestNewSetStandardisesApart(t *testing.T) {
	t1 := MustNew("", []logic.Atom{atom("R", "X", "Y")}, []logic.Atom{atom("S", "X")})
	t2 := MustNew("", []logic.Atom{atom("S", "X")}, []logic.Atom{atom("R", "X", "X")})
	s := MustSet(t1, t2)
	vars1 := s.TGDs[0].BodyVars()
	vars2 := s.TGDs[1].BodyVars()
	for v := range vars1 {
		if vars2.Has(v) {
			t.Errorf("sets must not share variables: %v", v)
		}
	}
	if s.TGDs[0].Label != "σ1" || s.TGDs[1].Label != "σ2" {
		t.Errorf("labels = %q, %q", s.TGDs[0].Label, s.TGDs[1].Label)
	}
}

func TestSetClassPredicates(t *testing.T) {
	guarded := MustSet(
		MustNew("", []logic.Atom{atom("R", "X", "Y")}, []logic.Atom{atom("S", "X")}),
		MustNew("", []logic.Atom{atom("S", "X")}, []logic.Atom{atom("R", "X", "Z")}),
	)
	if !guarded.IsGuarded() || !guarded.IsLinear() || !guarded.IsSingleHead() {
		t.Error("linear set should be linear, guarded, single-head")
	}
	unguarded := MustSet(
		MustNew("", []logic.Atom{atom("R", "X", "Y"), atom("P", "Y", "Z")},
			[]logic.Atom{atom("T", "X", "Z")}),
	)
	if unguarded.IsGuarded() || unguarded.IsLinear() {
		t.Error("cross join is neither guarded nor linear")
	}
	multi := MustSet(
		MustNew("", []logic.Atom{atom("R", "X")}, []logic.Atom{atom("S", "X"), atom("T", "X")}),
	)
	if multi.IsSingleHead() || multi.IsGuarded() {
		t.Error("multi-head sets are outside G")
	}
}

func TestSetSchemaAndArity(t *testing.T) {
	s := MustSet(
		MustNew("", []logic.Atom{atom("R", "X", "Y"), atom("P", "Y", "Z")},
			[]logic.Atom{atom("T", "X", "Y", "W")}),
	)
	sch := s.Schema()
	if sch.Len() != 3 {
		t.Errorf("Schema = %v", sch.Predicates())
	}
	if s.MaxArity() != 3 {
		t.Errorf("MaxArity = %d", s.MaxArity())
	}
}

func TestSetByLabelAndString(t *testing.T) {
	s := MustSet(
		MustNew("first", []logic.Atom{atom("R", "X")}, []logic.Atom{atom("S", "X")}),
		MustNew("", []logic.Atom{atom("S", "X")}, []logic.Atom{atom("R", "X")}),
	)
	if _, ok := s.ByLabel("first"); !ok {
		t.Error("ByLabel(first) should find the TGD")
	}
	if _, ok := s.ByLabel("σ2"); !ok {
		t.Error("auto label σ2 expected")
	}
	if _, ok := s.ByLabel("nope"); ok {
		t.Error("unknown label")
	}
	if !strings.Contains(s.String(), "first:") {
		t.Errorf("String = %q", s.String())
	}
}

func TestSetSatisfiedBy(t *testing.T) {
	s := MustSet(
		MustNew("", []logic.Atom{atom("R", "X", "Y")}, []logic.Atom{atom("S", "X")}),
	)
	sat := logic.NewSliceSource([]logic.Atom{
		logic.MustAtom("R", logic.Const("a"), logic.Const("b")),
		logic.MustAtom("S", logic.Const("a")),
	})
	unsat := logic.NewSliceSource([]logic.Atom{
		logic.MustAtom("R", logic.Const("a"), logic.Const("b")),
	})
	if !s.SatisfiedBy(sat) || s.SatisfiedBy(unsat) {
		t.Error("SatisfiedBy mismatch")
	}
}

func TestRenameKeepsStructure(t *testing.T) {
	tgd := MustNew("σ", []logic.Atom{atom("R", "X", "Y"), atom("P", "Y", "Z")},
		[]logic.Atom{atom("T", "X", "Y", "W")})
	renamed := tgd.Rename(logic.NewFreshNamer("u"))
	if renamed.Body[0].Args[1] != renamed.Body[1].Args[0] {
		t.Error("shared variable Y must stay shared")
	}
	if len(renamed.ExistentialVars()) != 1 {
		t.Error("existential count must survive renaming")
	}
	if renamed.BodyVars().Has(logic.Var("X")) {
		t.Error("old names must be gone")
	}
}

func TestCloneIndependence(t *testing.T) {
	tgd := MustNew("σ", []logic.Atom{atom("R", "X")}, []logic.Atom{atom("S", "X")})
	cl := tgd.Clone()
	cl.Body[0].Args[0] = logic.Var("Q")
	if tgd.Body[0].Args[0] != logic.Var("X") {
		t.Error("Clone must deep-copy atom args")
	}
}
