package tgds

import (
	"testing"

	"airct/internal/logic"
)

func TestIsFull(t *testing.T) {
	full := MustNew("", []logic.Atom{atom("E", "X", "Y"), atom("E", "Y", "Z")},
		[]logic.Atom{atom("E", "X", "Z")})
	if !full.IsFull() {
		t.Error("transitive closure is full")
	}
	notFull := MustNew("", []logic.Atom{atom("S", "X")}, []logic.Atom{atom("R", "X", "Y")})
	if notFull.IsFull() {
		t.Error("∃Y makes the rule non-full")
	}
	fullSet := MustSet(full)
	if !fullSet.IsFull() {
		t.Error("set of full rules is full")
	}
	mixed := MustSet(full, notFull)
	if mixed.IsFull() {
		t.Error("mixed set is not full")
	}
}

func TestFrontierGuarded(t *testing.T) {
	// Transitive closure: frontier = {X, Z}; no body atom has both X and Z
	// … wait: E(X,Y) has X, E(Y,Z) has Z, neither has both. Not FG.
	tc := MustNew("", []logic.Atom{atom("E", "X", "Y"), atom("E", "Y", "Z")},
		[]logic.Atom{atom("E", "X", "Z")})
	if tc.IsFrontierGuarded() {
		t.Error("transitive closure is not frontier-guarded")
	}
	// R(X,Y), P(Y,Z) → S(Y): frontier {Y}; both atoms contain Y: FG but
	// not guarded (no atom has X,Y,Z).
	fg := MustNew("", []logic.Atom{atom("R", "X", "Y"), atom("P", "Y", "Z")},
		[]logic.Atom{atom("S", "Y")})
	if !fg.IsFrontierGuarded() {
		t.Error("frontier {Y} is covered by R(X,Y)")
	}
	if fg.IsGuarded() {
		t.Error("corpus error: should not be guarded")
	}
	guard, ok := fg.FrontierGuard()
	if !ok || guard.Pred.Name != "R" {
		t.Errorf("FrontierGuard = %v, %v (left-most wins)", guard, ok)
	}
	// Guarded implies frontier-guarded.
	g := MustNew("", []logic.Atom{atom("G", "X", "Y"), atom("S", "X")},
		[]logic.Atom{atom("H", "X")})
	if !g.IsGuarded() || !g.IsFrontierGuarded() {
		t.Error("guarded ⊆ frontier-guarded")
	}
	set := MustSet(fg)
	if !set.IsFrontierGuarded() {
		t.Error("set-level FG")
	}
	multi := MustSet(MustNew("", []logic.Atom{atom("R", "X", "Y")},
		[]logic.Atom{atom("S", "X"), atom("T", "Y")}))
	if multi.IsFrontierGuarded() {
		t.Error("multi-head sets are outside the class")
	}
	if _, ok := tc.FrontierGuard(); ok {
		t.Error("no frontier guard for transitive closure")
	}
}
