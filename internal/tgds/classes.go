package tgds

import "airct/internal/logic"

// This file collects the auxiliary syntactic classes beyond the paper's G
// and S: full (existential-free) TGDs, whose restricted chase trivially
// terminates on every database, and frontier-guardedness, the relaxation of
// guardedness that only asks the guard to cover the frontier.

// IsFull reports whether the TGD has no existential variables (a full,
// a.k.a. datalog, rule).
func (t TGD) IsFull() bool { return len(t.ExistentialVars()) == 0 }

// IsFrontierGuarded reports whether some body atom contains every frontier
// variable. Guarded TGDs are frontier-guarded; the converse fails.
func (t TGD) IsFrontierGuarded() bool {
	frontier := t.Frontier()
	for _, a := range t.Body {
		covers := true
		for v := range frontier {
			if !a.HasTerm(v) {
				covers = false
				break
			}
		}
		if covers {
			return true
		}
	}
	return false
}

// FrontierGuard returns the left-most body atom containing every frontier
// variable, when one exists.
func (t TGD) FrontierGuard() (logic.Atom, bool) {
	frontier := t.Frontier()
	for _, a := range t.Body {
		covers := true
		for v := range frontier {
			if !a.HasTerm(v) {
				covers = false
				break
			}
		}
		if covers {
			return a, true
		}
	}
	return logic.Atom{}, false
}

// IsFull reports whether every TGD in the set is full. Full sets are in
// CT^res_∀∀ unconditionally: no nulls are ever invented, so every chase is
// bounded by the polynomial closure of the active domain.
func (s *Set) IsFull() bool {
	for _, t := range s.TGDs {
		if !t.IsFull() {
			return false
		}
	}
	return true
}

// IsFrontierGuarded reports whether every member is frontier-guarded and
// single-head.
func (s *Set) IsFrontierGuarded() bool {
	if !s.IsSingleHead() {
		return false
	}
	for _, t := range s.TGDs {
		if !t.IsFrontierGuarded() {
			return false
		}
	}
	return true
}
