package tgds

import (
	"fmt"

	"airct/internal/logic"
)

// EGD is an equality-generating dependency
//
//	∀x̄ (φ(x̄) → x = y)
//
// written body → x = y, with x and y variables occurring in the body. Like
// TGDs, EGDs are constant-free. An EGD never generates atoms: a trigger
// (homomorphism h of the body with h(x) ≠ h(y)) forces the two image terms
// equal — the chase engine merges them by rewriting the instance (a null is
// absorbed by a constant, a younger null by an older one) and the chase
// *fails* when h(x) and h(y) are distinct constants.
type EGD struct {
	Label string // optional human-readable name, e.g. "ε1"
	Body  []logic.Atom
	X, Y  logic.Term
}

// NewEGD constructs an EGD and validates it.
func NewEGD(label string, body []logic.Atom, x, y logic.Term) (EGD, error) {
	e := EGD{Label: label, Body: body, X: x, Y: y}
	if err := e.Validate(); err != nil {
		return EGD{}, err
	}
	return e, nil
}

// MustNewEGD is NewEGD that panics on error; for literals in tests.
func MustNewEGD(label string, body []logic.Atom, x, y logic.Term) EGD {
	e, err := NewEGD(label, body, x, y)
	if err != nil {
		panic(err)
	}
	return e
}

// Validate checks the structural invariants: non-empty body of
// variable-only atoms, and both equated terms are variables occurring in
// the body (a safe EGD — every trigger grounds both sides).
func (e EGD) Validate() error {
	if len(e.Body) == 0 {
		return fmt.Errorf("tgds: %s has an empty body", e.name())
	}
	for _, a := range e.Body {
		for _, term := range a.Args {
			if !term.IsVar() {
				return fmt.Errorf("tgds: %s contains non-variable term %v (EGDs are constant-free)", e.name(), term)
			}
		}
	}
	body := logic.VarsOf(e.Body)
	for _, t := range []logic.Term{e.X, e.Y} {
		if !t.IsVar() {
			return fmt.Errorf("tgds: %s equates non-variable term %v", e.name(), t)
		}
		if !body.Has(t) {
			return fmt.Errorf("tgds: %s equates variable %v that does not occur in the body", e.name(), t)
		}
	}
	if e.X == e.Y {
		return fmt.Errorf("tgds: %s equates a variable with itself", e.name())
	}
	return nil
}

func (e EGD) name() string {
	if e.Label != "" {
		return e.Label
	}
	return "EGD " + e.String()
}

// BodyVars returns the variables occurring in the body.
func (e EGD) BodyVars() logic.TermSet { return logic.VarsOf(e.Body) }

// Rename returns a copy with every variable renamed via the namer, keeping
// shared variables shared. Used to standardise sets apart.
func (e EGD) Rename(namer *logic.FreshNamer) EGD {
	ren := logic.NewSubstitution()
	for _, v := range logic.VarsOf(e.Body).Sorted() {
		ren.Bind(v, namer.NextVar())
	}
	return EGD{
		Label: e.Label,
		Body:  ren.ApplyAtoms(e.Body),
		X:     ren.ApplyTerm(e.X),
		Y:     ren.ApplyTerm(e.Y),
	}
}

// Clone returns a deep copy.
func (e EGD) Clone() EGD {
	body := make([]logic.Atom, len(e.Body))
	for i, a := range e.Body {
		body[i] = a.Clone()
	}
	return EGD{Label: e.Label, Body: body, X: e.X, Y: e.Y}
}

// String renders the EGD in the library's concrete syntax:
// "R(X,Y), R(X,Z) -> Y = Z".
func (e EGD) String() string {
	return logic.AtomsString(e.Body) + " -> " + e.X.String() + " = " + e.Y.String()
}

// eqAtom is the synthetic head atom under which an EGD enters rule
// fingerprints: the reserved predicate "=" cannot be written in the
// concrete syntax, so no TGD fingerprint can collide with an EGD's.
func (e EGD) eqAtom() logic.Atom {
	return logic.NewAtom(logic.Pred("=", 2), e.X, e.Y)
}

// SatisfiedBy reports whether the source satisfies the EGD: every
// homomorphism of the body maps x and y to the same term.
func (e EGD) SatisfiedBy(src logic.AtomSource) bool {
	ok := true
	logic.ForEachHomomorphism(e.Body, nil, src, func(h logic.Substitution) bool {
		if h.ApplyTerm(e.X) != h.ApplyTerm(e.Y) {
			ok = false
			return false
		}
		return true
	})
	return ok
}
