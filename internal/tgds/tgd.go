// Package tgds implements (single-head) tuple-generating dependencies and
// the syntactic classes the paper studies: guarded TGDs (class G, Calì,
// Gottlob & Kifer), sticky sets (class S, Calì, Gottlob & Pieris), and
// linear TGDs. Multi-head TGDs are representable — the chase engines accept
// them, and the Fairness-Theorem counterexample (Example B.1) needs them —
// but every class predicate and decision procedure that the paper states
// for single-head TGDs rejects multi-head inputs explicitly.
package tgds

import (
	"fmt"
	"strings"
	"sync"

	"airct/internal/logic"
)

// TGD is a tuple-generating dependency
//
//	∀x̄∀ȳ (φ(x̄,ȳ) → ∃z̄ ψ(x̄,z̄))
//
// written body → head. TGDs are constant-free (paper, Section 2): bodies and
// heads contain variables only. Head is a slice to accommodate multi-head
// TGDs; the paper's objects are single-head and IsSingleHead distinguishes
// them.
type TGD struct {
	Label string // optional human-readable name, e.g. "σ1"
	Body  []logic.Atom
	Head  []logic.Atom
}

// New constructs a TGD and validates it.
func New(label string, body, head []logic.Atom) (TGD, error) {
	t := TGD{Label: label, Body: body, Head: head}
	if err := t.Validate(); err != nil {
		return TGD{}, err
	}
	return t, nil
}

// MustNew is New that panics on error; for literals in tests and examples.
func MustNew(label string, body, head []logic.Atom) TGD {
	t, err := New(label, body, head)
	if err != nil {
		panic(err)
	}
	return t
}

// Validate checks the structural invariants: non-empty body and head, and
// variables only (TGDs are constant-free).
func (t TGD) Validate() error {
	if len(t.Body) == 0 {
		return fmt.Errorf("tgds: %s has an empty body", t.name())
	}
	if len(t.Head) == 0 {
		return fmt.Errorf("tgds: %s has an empty head", t.name())
	}
	for _, a := range append(append([]logic.Atom{}, t.Body...), t.Head...) {
		for _, term := range a.Args {
			if !term.IsVar() {
				return fmt.Errorf("tgds: %s contains non-variable term %v (TGDs are constant-free)", t.name(), term)
			}
		}
	}
	return nil
}

func (t TGD) name() string {
	if t.Label != "" {
		return t.Label
	}
	return "TGD " + t.String()
}

// IsSingleHead reports whether the head is a single atom, the paper's
// standing assumption.
func (t TGD) IsSingleHead() bool { return len(t.Head) == 1 }

// HeadAtom returns the unique head atom of a single-head TGD. It panics on
// multi-head TGDs; callers must check IsSingleHead first.
func (t TGD) HeadAtom() logic.Atom {
	if !t.IsSingleHead() {
		panic(fmt.Sprintf("tgds: HeadAtom on multi-head %s", t.name()))
	}
	return t.Head[0]
}

// BodyVars returns the variables occurring in the body.
func (t TGD) BodyVars() logic.TermSet { return logic.VarsOf(t.Body) }

// HeadVars returns the variables occurring in the head.
func (t TGD) HeadVars() logic.TermSet { return logic.VarsOf(t.Head) }

// Frontier returns fr(σ): the variables occurring in both body and head.
func (t TGD) Frontier() logic.TermSet {
	body := t.BodyVars()
	out := make(logic.TermSet)
	for v := range t.HeadVars() {
		if body.Has(v) {
			out[v] = struct{}{}
		}
	}
	return out
}

// ExistentialVars returns z̄: head variables that do not occur in the body.
func (t TGD) ExistentialVars() logic.TermSet {
	body := t.BodyVars()
	out := make(logic.TermSet)
	for v := range t.HeadVars() {
		if !body.Has(v) {
			out[v] = struct{}{}
		}
	}
	return out
}

// IsLinear reports whether the body is a single atom.
func (t TGD) IsLinear() bool { return len(t.Body) == 1 }

// Guard returns the guard of a guarded TGD: the left-most body atom that
// contains every body variable (the paper fixes the left-most when several
// qualify). The second result is false when the TGD is not guarded.
func (t TGD) Guard() (logic.Atom, bool) {
	vars := t.BodyVars()
	for _, a := range t.Body {
		covers := true
		for v := range vars {
			if !a.HasTerm(v) {
				covers = false
				break
			}
		}
		if covers {
			return a, true
		}
	}
	return logic.Atom{}, false
}

// IsGuarded reports whether some body atom guards all body variables.
func (t TGD) IsGuarded() bool {
	_, ok := t.Guard()
	return ok
}

// GuardIndex returns the index of the guard in Body, or -1.
func (t TGD) GuardIndex() int {
	g, ok := t.Guard()
	if !ok {
		return -1
	}
	for i, a := range t.Body {
		if a.Equal(g) {
			return i
		}
	}
	return -1
}

// SideAtoms returns the body atoms other than the guard, in body order. It
// returns nil when the TGD is not guarded.
func (t TGD) SideAtoms() []logic.Atom {
	gi := t.GuardIndex()
	if gi < 0 {
		return nil
	}
	out := make([]logic.Atom, 0, len(t.Body)-1)
	for i, a := range t.Body {
		if i != gi {
			out = append(out, a)
		}
	}
	return out
}

// Rename returns a copy of the TGD with every variable renamed via the
// namer, keeping shared variables shared. Used to standardise sets apart.
func (t TGD) Rename(namer *logic.FreshNamer) TGD {
	all := append(append([]logic.Atom{}, t.Body...), t.Head...)
	ren := logic.NewSubstitution()
	for _, v := range logic.VarsOf(all).Sorted() {
		ren.Bind(v, namer.NextVar())
	}
	return TGD{
		Label: t.Label,
		Body:  ren.ApplyAtoms(t.Body),
		Head:  ren.ApplyAtoms(t.Head),
	}
}

// Clone returns a deep copy.
func (t TGD) Clone() TGD {
	body := make([]logic.Atom, len(t.Body))
	for i, a := range t.Body {
		body[i] = a.Clone()
	}
	head := make([]logic.Atom, len(t.Head))
	for i, a := range t.Head {
		head[i] = a.Clone()
	}
	return TGD{Label: t.Label, Body: body, Head: head}
}

// String renders the TGD in the library's concrete syntax:
// "R(X,Y), P(Y,Z) -> T(X,Y,W)". Existential quantification is implicit in
// head variables that do not occur in the body.
func (t TGD) String() string {
	return logic.AtomsString(t.Body) + " -> " + logic.AtomsString(t.Head)
}

// SatisfiedBy reports whether the instance (as an atom source) satisfies the
// TGD: every homomorphism from the body extends, on the frontier, to a
// homomorphism of the head.
func (t TGD) SatisfiedBy(src logic.AtomSource) bool {
	frontier := t.Frontier()
	ok := true
	logic.ForEachHomomorphism(t.Body, nil, src, func(h logic.Substitution) bool {
		base := h.Restrict(frontier)
		if logic.FindHomomorphism(t.Head, base, src) == nil {
			ok = false
			return false
		}
		return true
	})
	return ok
}

// Set is a finite set of dependencies — TGDs plus (optionally) EGDs —
// ordered. The order is significant only for determinism (trigger
// enumeration, printing). Most of the paper's machinery is TGD-only: the
// class predicates (IsGuarded, IsLinear, IsSticky) report false as soon as
// an EGD is present, and TGD-only consumers must gate on HasEGDs.
type Set struct {
	TGDs []TGD
	EGDs []EGD

	fpOnce sync.Once
	fp     logic.Fingerprint
}

// NewSet builds a set, validating every member and standardising the TGDs
// apart (no two TGDs share a variable, the paper's w.l.o.g. convention for
// the stickiness marking).
func NewSet(tgds ...TGD) (*Set, error) {
	return NewSetWithEGDs(tgds, nil)
}

// NewSetWithEGDs builds a set of TGDs and EGDs, validating every member and
// standardising all dependencies apart. Unlabelled TGDs are named σ1, σ2,
// …; unlabelled EGDs ε1, ε2, ….
func NewSetWithEGDs(tgds []TGD, egds []EGD) (*Set, error) {
	namer := logic.NewFreshNamer("V")
	out := make([]TGD, 0, len(tgds))
	for i, t := range tgds {
		if err := t.Validate(); err != nil {
			return nil, fmt.Errorf("tgds: set member %d: %w", i, err)
		}
		if t.Label == "" {
			t.Label = fmt.Sprintf("σ%d", i+1)
		}
		out = append(out, t.Rename(namer))
	}
	eout := make([]EGD, 0, len(egds))
	for i, e := range egds {
		if err := e.Validate(); err != nil {
			return nil, fmt.Errorf("tgds: set EGD %d: %w", i, err)
		}
		if e.Label == "" {
			e.Label = fmt.Sprintf("ε%d", i+1)
		}
		eout = append(eout, e.Rename(namer))
	}
	if len(eout) == 0 {
		eout = nil
	}
	return &Set{TGDs: out, EGDs: eout}, nil
}

// MustSet is NewSet that panics on error.
func MustSet(tgds ...TGD) *Set {
	s, err := NewSet(tgds...)
	if err != nil {
		panic(err)
	}
	return s
}

// Len returns the number of TGDs. EGDs are counted by NumEGDs; most
// consumers predate EGD support and reason about the TGD part only.
func (s *Set) Len() int { return len(s.TGDs) }

// NumEGDs returns the number of EGDs.
func (s *Set) NumEGDs() int { return len(s.EGDs) }

// HasEGDs reports whether the set carries any equality-generating
// dependency. TGD-only machinery (the syntactic classes beyond full and
// weak acyclicity, the guarded/sticky deciders, the ∀∃ search, the
// non-restricted chase variants) must gate on this.
func (s *Set) HasEGDs() bool { return len(s.EGDs) > 0 }

// setSeed starts every set fingerprint.
var setSeed = logic.Fingerprint{Hi: 0x243f6a8885a308d3, Lo: 0x13198a2e03707344}

// Fingerprint returns the set-level content fingerprint: an order-sensitive
// mix of every member's rule fingerprint (label, body, head — see
// logic.FingerprintRule). Two sets fingerprint equal exactly when they hold
// the same rules in the same order, which is the identity under which chase
// runs and decision verdicts are reproducible — the TGD-set half of the
// cross-run chase cache's key (internal/chase.Cache). Computed once and
// memoised; safe for concurrent use. Callers must not mutate TGDs after
// the first call.
func (s *Set) Fingerprint() logic.Fingerprint {
	s.fpOnce.Do(func() {
		fp := setSeed
		for i, t := range s.TGDs {
			fp = fp.MixUint64(uint64(i)).Mix(logic.FingerprintRule(t.Label, t.Body, t.Head))
		}
		// EGDs enter under a distinct salt and a synthetic "=" head atom, so
		// a set with EGDs never fingerprints equal to its TGD-only part and
		// EGD order/labels are covered like TGD ones.
		for i, e := range s.EGDs {
			fp = fp.MixUint64(0x9e3779b97f4a7c15 + uint64(i)).
				Mix(logic.FingerprintRule(e.Label, e.Body, []logic.Atom{e.eqAtom()}))
		}
		s.fp = fp
	})
	return s.fp
}

// Schema returns sch(T): every predicate occurring in the set.
func (s *Set) Schema() *logic.Schema {
	sch := logic.NewSchema()
	for _, t := range s.TGDs {
		for _, a := range t.Body {
			sch.Add(a.Pred)
		}
		for _, a := range t.Head {
			sch.Add(a.Pred)
		}
	}
	for _, e := range s.EGDs {
		for _, a := range e.Body {
			sch.Add(a.Pred)
		}
	}
	return sch
}

// MaxArity returns ar(T).
func (s *Set) MaxArity() int { return s.Schema().MaxArity() }

// IsSingleHead reports whether every member is single-head.
func (s *Set) IsSingleHead() bool {
	for _, t := range s.TGDs {
		if !t.IsSingleHead() {
			return false
		}
	}
	return true
}

// IsGuarded reports whether every member is guarded (class G requires
// single-head as well; the paper's G is a class of single-head TGDs). A set
// with EGDs is never in G: the guarded decision procedure is TGD-only.
func (s *Set) IsGuarded() bool {
	if s.HasEGDs() || !s.IsSingleHead() {
		return false
	}
	for _, t := range s.TGDs {
		if !t.IsGuarded() {
			return false
		}
	}
	return true
}

// IsLinear reports whether every member is linear and single-head. A set
// with EGDs is never linear (the class is TGD-only).
func (s *Set) IsLinear() bool {
	if s.HasEGDs() || !s.IsSingleHead() {
		return false
	}
	for _, t := range s.TGDs {
		if !t.IsLinear() {
			return false
		}
	}
	return true
}

// SatisfiedBy reports whether the source satisfies every dependency in the
// set — TGDs and EGDs.
func (s *Set) SatisfiedBy(src logic.AtomSource) bool {
	for _, t := range s.TGDs {
		if !t.SatisfiedBy(src) {
			return false
		}
	}
	for _, e := range s.EGDs {
		if !e.SatisfiedBy(src) {
			return false
		}
	}
	return true
}

// ByLabel returns the TGD with the given label, if any.
func (s *Set) ByLabel(label string) (TGD, bool) {
	for _, t := range s.TGDs {
		if t.Label == label {
			return t, true
		}
	}
	return TGD{}, false
}

// String renders the set one dependency per line, TGDs first.
func (s *Set) String() string {
	var b strings.Builder
	for i, t := range s.TGDs {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(t.Label)
		b.WriteString(": ")
		b.WriteString(t.String())
	}
	for i, e := range s.EGDs {
		if i > 0 || len(s.TGDs) > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(e.Label)
		b.WriteString(": ")
		b.WriteString(e.String())
	}
	return b.String()
}
