package tgds

import (
	"testing"

	"airct/internal/logic"
)

// The two example sets from Section 2 of the paper.

// paperStickySet: T(x,y,z) → ∃w S(y,w); R(x,y), P(y,z) → ∃w T(x,y,w).
func paperStickySet() *Set {
	return MustSet(
		MustNew("a", []logic.Atom{atom("T", "X", "Y", "Z")}, []logic.Atom{atom("S", "Y", "W")}),
		MustNew("b", []logic.Atom{atom("R", "X", "Y"), atom("P", "Y", "Z")},
			[]logic.Atom{atom("T", "X", "Y", "W")}),
	)
}

// paperNonStickySet: T(x,y,z) → ∃w S(x,w); R(x,y), P(y,z) → ∃w T(x,y,w).
func paperNonStickySet() *Set {
	return MustSet(
		MustNew("a", []logic.Atom{atom("T", "X", "Y", "Z")}, []logic.Atom{atom("S", "X", "W")}),
		MustNew("b", []logic.Atom{atom("R", "X", "Y"), atom("P", "Y", "Z")},
			[]logic.Atom{atom("T", "X", "Y", "W")}),
	)
}

func TestPaperStickyExample(t *testing.T) {
	ok, _, err := IsSticky(paperStickySet())
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("first set of Section 2 must be sticky")
	}
}

func TestPaperNonStickyExample(t *testing.T) {
	s := paperNonStickySet()
	ok, m, err := IsSticky(s)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("second set of Section 2 must not be sticky")
	}
	v := m.Violation()
	if v == nil {
		t.Fatal("violation expected")
	}
	// The violating TGD is σb: its join variable (second arg of R = first
	// arg of P) is marked and occurs twice.
	if v.TGD.Label != "b" {
		t.Errorf("violating TGD = %s, want b", v.TGD.Label)
	}
	if v.TGD.Body[0].Args[1] != v.Var {
		t.Errorf("violating var = %v, want the join variable %v", v.Var, v.TGD.Body[0].Args[1])
	}
	if v.Error() == "" {
		t.Error("violation must render")
	}
}

func TestMarkingBaseStep(t *testing.T) {
	// R(X,Y) -> S(X): Y does not occur in the head, so Y is marked; X is not.
	s := MustSet(MustNew("", []logic.Atom{atom("R", "X", "Y")}, []logic.Atom{atom("S", "X")}))
	m, err := ComputeMarking(s)
	if err != nil {
		t.Fatal(err)
	}
	tgd := s.TGDs[0]
	x, y := tgd.Body[0].Args[0], tgd.Body[0].Args[1]
	if m.IsMarked(x) {
		t.Error("X occurs in head, must not be base-marked")
	}
	if !m.IsMarked(y) {
		t.Error("Y absent from head, must be marked")
	}
	if got := m.MarkedVars(); len(got) != 1 {
		t.Errorf("MarkedVars = %v", got)
	}
}

func TestMarkingPropagation(t *testing.T) {
	// σ1: S(X) -> R(X,W)    (W existential)
	// σ2: R(X,Y) -> P(Y)    (X not in head: X marked in σ2)
	// Propagation: in σ1, X occurs in head R at position 1; σ2 has body atom
	// R(X,Y) whose position-1 variable (X of σ2) is marked, so X of σ1
	// becomes marked.
	s := MustSet(
		MustNew("1", []logic.Atom{atom("S", "X")}, []logic.Atom{atom("R", "X", "W")}),
		MustNew("2", []logic.Atom{atom("R", "X", "Y")}, []logic.Atom{atom("P", "Y")}),
	)
	m, err := ComputeMarking(s)
	if err != nil {
		t.Fatal(err)
	}
	x1 := s.TGDs[0].Body[0].Args[0]
	x2 := s.TGDs[1].Body[0].Args[0]
	if !m.IsMarked(x2) {
		t.Error("X of σ2 must be base-marked")
	}
	if !m.IsMarked(x1) {
		t.Error("X of σ1 must be propagation-marked")
	}
}

func TestMarkingRejectsMultiHead(t *testing.T) {
	s := MustSet(MustNew("", []logic.Atom{atom("R", "X")},
		[]logic.Atom{atom("S", "X"), atom("T", "X")}))
	if _, err := ComputeMarking(s); err == nil {
		t.Error("multi-head must be rejected")
	}
	if _, _, err := IsSticky(s); err == nil {
		t.Error("IsSticky must propagate the error")
	}
	if s.IsSticky() {
		t.Error("Set.IsSticky must be false for multi-head")
	}
}

func TestLinearSetsAreSticky(t *testing.T) {
	// Every linear set is sticky: marked variables can occur at most once in
	// a single-atom body only if repeated variables are unmarked — not true
	// in general! A marked variable can repeat inside the single body atom:
	// R(X,X) -> S(X) is linear and sticky (X occurs in head, unmarked until
	// propagation). But R(X,X) -> T is trickier; verify a concrete pair.
	s := MustSet(
		MustNew("", []logic.Atom{atom("R", "X", "Y")}, []logic.Atom{atom("R", "Y", "Z")}),
	)
	if !s.IsSticky() {
		t.Error("R(X,Y)->∃Z R(Y,Z) must be sticky")
	}
	// Linear but NOT sticky: repeated marked variable in the body.
	s2 := MustSet(
		MustNew("", []logic.Atom{atom("R", "X", "X")}, []logic.Atom{atom("S", "Q", "Q")}),
	)
	if s2.IsSticky() {
		t.Error("R(X,X)->S(Q,Q): X is marked (not in head) and occurs twice; not sticky")
	}
}

func TestImmortalHeadPositions(t *testing.T) {
	// σ: R(X,Y) -> R(Y,Z). Y is frontier; is it marked? Y occurs in head at
	// position 1; body atom R has position-1 variable X, and X is marked
	// (not in head). So Y is marked, and no position is immortal except
	// those holding unmarked frontier vars.
	s := MustSet(
		MustNew("", []logic.Atom{atom("R", "X", "Y")}, []logic.Atom{atom("R", "Y", "Z")}),
	)
	m, err := ComputeMarking(s)
	if err != nil {
		t.Fatal(err)
	}
	tgd := s.TGDs[0]
	// Position 2 of the head holds the existential Z: never immortal.
	if m.ImmortalHeadPosition(tgd, 2) {
		t.Error("existential position must not be immortal")
	}
	// Position 1 holds Y, which is marked via X; not immortal.
	if m.ImmortalHeadPosition(tgd, 1) {
		t.Error("marked frontier position must not be immortal")
	}

	// σ: P(X,Y) -> Q(X): X stays forever (no body atom Q at all, so X is
	// unmarked) — position 1 of the head is immortal.
	s2 := MustSet(
		MustNew("", []logic.Atom{atom("P", "X", "Y")}, []logic.Atom{atom("Q", "X")}),
	)
	m2, err := ComputeMarking(s2)
	if err != nil {
		t.Fatal(err)
	}
	if !m2.ImmortalHeadPosition(s2.TGDs[0], 1) {
		t.Error("unmarked frontier position must be immortal")
	}
	if got := m2.ImmortalHeadPositions(s2.TGDs[0]); len(got) != 1 || got[0] != 1 {
		t.Errorf("ImmortalHeadPositions = %v", got)
	}
}

func TestStickinessOfGuardedExample(t *testing.T) {
	// The guarded set of Example 3.2 is also sticky (no joins at all).
	s := MustSet(
		MustNew("σ1", []logic.Atom{atom("P", "X", "Y")}, []logic.Atom{atom("R", "X", "Y")}),
		MustNew("σ2", []logic.Atom{atom("P", "X", "Y")}, []logic.Atom{atom("S", "X")}),
		MustNew("σ3", []logic.Atom{atom("R", "X", "Y")}, []logic.Atom{atom("S", "X")}),
		MustNew("σ4", []logic.Atom{atom("S", "X")}, []logic.Atom{atom("R", "X", "Y")}),
	)
	if !s.IsSticky() {
		t.Error("join-free sets are sticky")
	}
	if !s.IsGuarded() {
		t.Error("Example 3.2 set is guarded")
	}
}
