package logic

import (
	"testing"
	"testing/quick"
)

func TestSubstitutionBindLookupApply(t *testing.T) {
	s := NewSubstitution()
	s.Bind(Var("X"), Const("a"))
	if got, ok := s.Lookup(Var("X")); !ok || got != Const("a") {
		t.Fatalf("Lookup = %v,%v", got, ok)
	}
	if _, ok := s.Lookup(Var("Y")); ok {
		t.Fatal("unexpected binding")
	}
	if s.ApplyTerm(Var("X")) != Const("a") || s.ApplyTerm(Var("Y")) != Var("Y") {
		t.Fatal("ApplyTerm mismatch")
	}
	// Rebinding to the same value is fine.
	s.Bind(Var("X"), Const("a"))
	// Rebinding to a different value panics.
	defer func() {
		if recover() == nil {
			t.Fatal("expected rebinding panic")
		}
	}()
	s.Bind(Var("X"), Const("b"))
}

func TestSubstitutionRestrictCloneExtends(t *testing.T) {
	s := NewSubstitution()
	s.Bind(Var("X"), Const("a"))
	s.Bind(Var("Y"), Const("b"))
	r := s.Restrict(NewTermSet(Var("X")))
	if len(r) != 1 || r.ApplyTerm(Var("X")) != Const("a") {
		t.Fatalf("Restrict = %v", r)
	}
	if !s.Extends(r) {
		t.Error("s must extend its restriction")
	}
	if r.Extends(s) {
		t.Error("restriction must not extend the whole")
	}
	c := s.Clone()
	c.Bind(Var("Z"), Const("c"))
	if _, ok := s.Lookup(Var("Z")); ok {
		t.Error("Clone must be independent")
	}
}

func TestSubstitutionCompose(t *testing.T) {
	s := NewSubstitution().Bind(Var("X"), Var("Y"))
	g := NewSubstitution().Bind(Var("Y"), Const("a"))
	comp := s.Compose(g)
	if comp.ApplyTerm(Var("X")) != Const("a") {
		t.Errorf("Compose: X -> %v, want a", comp.ApplyTerm(Var("X")))
	}
	if comp.ApplyTerm(Var("Y")) != Const("a") {
		t.Errorf("Compose must keep g's bindings: Y -> %v", comp.ApplyTerm(Var("Y")))
	}
}

func TestSubstitutionValidate(t *testing.T) {
	ok := NewSubstitution().Bind(Var("X"), Const("a"))
	ok.Bind(Const("c"), Const("c"))
	if err := ok.Validate(); err != nil {
		t.Errorf("Validate = %v, want nil", err)
	}
	bad := Substitution{Const("c"): Const("d")}
	if err := bad.Validate(); err == nil {
		t.Error("moving a constant must be invalid")
	}
}

func TestSubstitutionInjectiveInverse(t *testing.T) {
	inj := NewSubstitution().Bind(Var("X"), Const("a")).Bind(Var("Y"), Const("b"))
	if !inj.Injective() {
		t.Error("expected injective")
	}
	inv, ok := inj.Inverse()
	if !ok || inv.ApplyTerm(Const("a")) != Var("X") {
		t.Errorf("Inverse = %v, %v", inv, ok)
	}
	notInj := NewSubstitution().Bind(Var("X"), Const("a")).Bind(Var("Y"), Const("a"))
	if notInj.Injective() {
		t.Error("expected non-injective")
	}
	if _, ok := notInj.Inverse(); ok {
		t.Error("Inverse of non-injective must fail")
	}
}

func TestSubstitutionKeyAndEqual(t *testing.T) {
	a := NewSubstitution().Bind(Var("X"), Const("a")).Bind(Var("Y"), NewNull("n"))
	b := NewSubstitution().Bind(Var("Y"), NewNull("n")).Bind(Var("X"), Const("a"))
	if a.Key() != b.Key() {
		t.Errorf("keys differ: %q vs %q", a.Key(), b.Key())
	}
	if !a.Equal(b) {
		t.Error("Equal mismatch")
	}
	c := NewSubstitution().Bind(Var("X"), Const("a"))
	if a.Equal(c) || a.Key() == c.Key() {
		t.Error("different substitutions must differ")
	}
	// Null vs constant image must produce different keys.
	d := NewSubstitution().Bind(Var("X"), Const("n"))
	e := NewSubstitution().Bind(Var("X"), NewNull("n"))
	if d.Key() == e.Key() {
		t.Error("term kind must be reflected in key")
	}
}

// Property: ApplyAtoms distributes over atom lists and commutes with Clone.
func TestApplyAtomsProperty(t *testing.T) {
	f := func(names []string) bool {
		if len(names) == 0 {
			return true
		}
		s := NewSubstitution().Bind(Var("X"), Const("a"))
		atoms := make([]Atom, 0, len(names))
		for _, n := range names {
			if n == "" {
				n = "p"
			}
			atoms = append(atoms, MustAtom("P", Var("X"), Const(n)))
		}
		out := s.ApplyAtoms(atoms)
		for i := range out {
			if out[i].Args[0] != Const("a") || out[i].Args[1] != atoms[i].Args[1] {
				return false
			}
		}
		return len(out) == len(atoms)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
