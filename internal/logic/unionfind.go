package logic

// UnionFind is a union-find (disjoint-set) structure over TermIDs, layered
// on an Interner's dense ID space: the chase engine's equality-step
// machinery records EGD-forced merges here and resolves every term to its
// class representative before comparing or rewriting. The zero value is
// ready to use; the structure grows on demand as IDs are touched.
//
// Representative choice is the caller's: Link records an explicit
// (child → parent) edge, so the engine can enforce the chase's merge order
// (a constant absorbs a null, an older null absorbs a younger one) rather
// than an arbitrary rank heuristic. Find applies path halving, so chains of
// merges accumulated between instance rewrites resolve in near-constant
// amortised time.
type UnionFind struct {
	parent []TermID
	// merges counts Link calls — the number of equality classes collapsed.
	merges int
}

// grow extends the parent table so id is a valid index, mapping every new
// ID to itself.
func (u *UnionFind) grow(id TermID) {
	for len(u.parent) <= int(id) {
		u.parent = append(u.parent, TermID(len(u.parent)))
	}
}

// Find returns the representative of id's equality class, compressing the
// path as it walks. An ID never touched by Link is its own representative.
func (u *UnionFind) Find(id TermID) TermID {
	if int(id) >= len(u.parent) {
		return id
	}
	for u.parent[id] != id {
		u.parent[id] = u.parent[u.parent[id]] // path halving
		id = u.parent[id]
	}
	return id
}

// Link merges child's class into parent's: after the call,
// Find(child) == Find(parent) == Find of parent's old representative.
// Both arguments are resolved through Find first, so callers may pass
// unresolved IDs; linking two IDs already in one class is a no-op. Link
// never chooses the representative — pass the term that must survive as
// parent.
func (u *UnionFind) Link(child, parent TermID) {
	c, p := u.Find(child), u.Find(parent)
	if c == p {
		return
	}
	u.grow(c)
	u.grow(p)
	u.parent[c] = p
	u.merges++
}

// Same reports whether the two IDs are in one equality class.
func (u *UnionFind) Same(a, b TermID) bool { return u.Find(a) == u.Find(b) }

// Merges returns the number of Link calls that actually collapsed two
// classes since the structure was created.
func (u *UnionFind) Merges() int { return u.merges }
