package logic

import (
	"strings"
	"testing"
)

func TestPredicateAndPosition(t *testing.T) {
	p := Pred("R", 2)
	if p.String() != "R/2" {
		t.Errorf("Predicate.String = %q", p.String())
	}
	pos := Position{Pred: p, Index: 1}
	if pos.String() != "(R/2,1)" {
		t.Errorf("Position.String = %q", pos.String())
	}
}

func TestSchema(t *testing.T) {
	s := NewSchema(Pred("R", 2), Pred("S", 3), Pred("A", 1))
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if !s.Has(Pred("R", 2)) || s.Has(Pred("R", 3)) {
		t.Fatal("Has mismatch")
	}
	if s.MaxArity() != 3 {
		t.Errorf("MaxArity = %d", s.MaxArity())
	}
	preds := s.Predicates()
	if len(preds) != 3 || preds[0].Name != "A" || preds[1].Name != "R" || preds[2].Name != "S" {
		t.Errorf("Predicates order = %v", preds)
	}
	positions := s.Positions()
	if len(positions) != 6 {
		t.Errorf("Positions count = %d, want 6", len(positions))
	}
	s.Add(Pred("T", 1))
	if s.Len() != 4 {
		t.Error("Add failed")
	}
	if NewSchema().MaxArity() != 0 {
		t.Error("empty schema MaxArity should be 0")
	}
}

func TestAtomBasics(t *testing.T) {
	a := NewAtom(Pred("R", 3), Const("a"), Var("X"), Var("X"))
	if a.String() != "R(a,X,X)" {
		t.Errorf("String = %q", a.String())
	}
	if a.Arg(1) != Const("a") || a.Arg(2) != Var("X") {
		t.Error("Arg mismatch")
	}
	if a.IsFact() {
		t.Error("atom with variables is not a fact")
	}
	if a.IsGround() {
		t.Error("atom with variables is not ground")
	}
	if !NewAtom(Pred("R", 2), Const("a"), NewNull("n")).IsGround() {
		t.Error("constants+nulls should be ground")
	}
	if !NewAtom(Pred("R", 1), Const("a")).IsFact() {
		t.Error("all-constant atom is a fact")
	}
	if got := a.PositionsOf(Var("X")); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Errorf("PositionsOf = %v", got)
	}
	if !a.HasTerm(Const("a")) || a.HasTerm(Const("b")) {
		t.Error("HasTerm mismatch")
	}
	vars := a.Vars()
	if len(vars) != 1 || !vars.Has(Var("X")) {
		t.Errorf("Vars = %v", vars)
	}
	terms := a.Terms()
	if len(terms) != 2 {
		t.Errorf("Terms = %v", terms)
	}
}

func TestNewAtomPanicsOnArityMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewAtom(Pred("R", 2), Const("a"))
}

func TestAtomKeyDistinguishesKinds(t *testing.T) {
	a := MustAtom("R", Const("x"))
	b := MustAtom("R", Var("x"))
	c := MustAtom("R", NewNull("x"))
	keys := map[string]bool{a.Key(): true, b.Key(): true, c.Key(): true}
	if len(keys) != 3 {
		t.Errorf("keys should be pairwise distinct: %v %v %v", a.Key(), b.Key(), c.Key())
	}
	if a.Key() != MustAtom("R", Const("x")).Key() {
		t.Error("equal atoms must share keys")
	}
}

func TestAtomEqualCloneApply(t *testing.T) {
	a := MustAtom("R", Const("a"), Var("X"))
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone must equal original")
	}
	b.Args[1] = Const("c")
	if a.Equal(b) {
		t.Fatal("mutating clone must not affect original")
	}
	s := NewSubstitution().Bind(Var("X"), Const("b"))
	applied := a.Apply(s)
	if applied.String() != "R(a,b)" {
		t.Errorf("Apply = %v", applied)
	}
	if a.String() != "R(a,X)" {
		t.Error("Apply must not mutate receiver")
	}
	if a.Equal(MustAtom("S", Const("a"), Var("X"))) {
		t.Error("different predicates must not be Equal")
	}
}

func TestAtomsHelpers(t *testing.T) {
	atoms := []Atom{
		MustAtom("R", Const("a"), Var("X")),
		MustAtom("S", Var("X"), Var("Y"), NewNull("n")),
	}
	if got := AtomsString(atoms); got != "R(a,X), S(X,Y,_:n)" {
		t.Errorf("AtomsString = %q", got)
	}
	terms := TermsOf(atoms)
	if len(terms) != 4 {
		t.Errorf("TermsOf = %v", terms)
	}
	vars := VarsOf(atoms)
	if len(vars) != 2 || !vars.Has(Var("X")) || !vars.Has(Var("Y")) {
		t.Errorf("VarsOf = %v", vars)
	}
	schema := SchemaOf(atoms)
	if schema.Len() != 2 || schema.MaxArity() != 3 {
		t.Errorf("SchemaOf wrong: %v", schema.Predicates())
	}
	shuffled := []Atom{atoms[1], atoms[0]}
	SortAtoms(shuffled)
	if !strings.HasPrefix(shuffled[0].String(), "R(") {
		t.Errorf("SortAtoms order = %v", shuffled)
	}
}
