package logic

import (
	"testing"
	"testing/quick"
)

func TestTermConstructors(t *testing.T) {
	tests := []struct {
		name  string
		term  Term
		kind  TermKind
		str   string
		cons  bool
		null  bool
		varr  bool
		mappb bool
	}{
		{"constant", Const("a"), Constant, "a", true, false, false, false},
		{"null", NewNull("n1"), Null, "_:n1", false, true, false, true},
		{"variable", Var("X"), Variable, "X", false, false, true, true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if tc.term.Kind != tc.kind {
				t.Errorf("kind = %v, want %v", tc.term.Kind, tc.kind)
			}
			if got := tc.term.String(); got != tc.str {
				t.Errorf("String() = %q, want %q", got, tc.str)
			}
			if tc.term.IsConst() != tc.cons || tc.term.IsNull() != tc.null || tc.term.IsVar() != tc.varr {
				t.Errorf("kind predicates wrong for %v", tc.term)
			}
			if tc.term.Mappable() != tc.mappb {
				t.Errorf("Mappable() = %v, want %v", tc.term.Mappable(), tc.mappb)
			}
		})
	}
}

func TestTermEquality(t *testing.T) {
	if Const("a") != Const("a") {
		t.Error("identical constants must be ==")
	}
	if Const("a") == NewNull("a") {
		t.Error("constant and null with same name must differ")
	}
	if Var("x") == Const("x") {
		t.Error("variable and constant with same name must differ")
	}
}

func TestTermCompare(t *testing.T) {
	ordered := []Term{Const("a"), Const("b"), NewNull("a"), NewNull("z"), Var("A"), Var("B")}
	for i := 0; i < len(ordered); i++ {
		for j := 0; j < len(ordered); j++ {
			got := ordered[i].Compare(ordered[j])
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got != want {
				t.Errorf("Compare(%v,%v) = %d, want %d", ordered[i], ordered[j], got, want)
			}
		}
	}
}

func TestTermKindString(t *testing.T) {
	if Constant.String() != "constant" || Null.String() != "null" || Variable.String() != "variable" {
		t.Error("TermKind.String mismatch")
	}
	if TermKind(99).String() == "" {
		t.Error("unknown kind should still render")
	}
}

func TestTermSet(t *testing.T) {
	s := NewTermSet(Const("a"), Var("X"))
	if !s.Has(Const("a")) || !s.Has(Var("X")) {
		t.Fatal("missing members")
	}
	if s.Has(Const("b")) {
		t.Fatal("unexpected member")
	}
	if !s.Add(Const("b")) {
		t.Error("Add of new element should report true")
	}
	if s.Add(Const("b")) {
		t.Error("Add of existing element should report false")
	}
	other := NewTermSet(NewNull("n"))
	s.AddAll(other)
	if !s.Has(NewNull("n")) {
		t.Error("AddAll missed element")
	}
	sorted := s.Sorted()
	for i := 1; i < len(sorted); i++ {
		if sorted[i-1].Compare(sorted[i]) >= 0 {
			t.Errorf("Sorted not strictly increasing at %d: %v", i, sorted)
		}
	}
}

func TestFreshNamer(t *testing.T) {
	f := NewFreshNamer("n")
	if f.Next() != "n0" || f.Next() != "n1" {
		t.Fatal("namer sequence wrong")
	}
	if got := f.NextNull(); got != NewNull("n2") {
		t.Errorf("NextNull = %v", got)
	}
	if got := f.NextVar(); got != Var("n3") {
		t.Errorf("NextVar = %v", got)
	}
	if f.Count() != 4 {
		t.Errorf("Count = %d, want 4", f.Count())
	}
}

func TestSortTerms(t *testing.T) {
	ts := []Term{Var("Z"), Const("b"), NewNull("m"), Const("a")}
	SortTerms(ts)
	want := []Term{Const("a"), Const("b"), NewNull("m"), Var("Z")}
	for i := range want {
		if ts[i] != want[i] {
			t.Fatalf("SortTerms = %v, want %v", ts, want)
		}
	}
}

// Property: Compare is antisymmetric and Compare(t,t)==0.
func TestCompareProperties(t *testing.T) {
	gen := func(kind uint8, name string) Term {
		return Term{Kind: TermKind(kind % 3), Name: name}
	}
	antisym := func(k1 uint8, n1 string, k2 uint8, n2 string) bool {
		a, b := gen(k1, n1), gen(k2, n2)
		return a.Compare(b) == -b.Compare(a)
	}
	if err := quick.Check(antisym, nil); err != nil {
		t.Error(err)
	}
	refl := func(k uint8, n string) bool {
		a := gen(k, n)
		return a.Compare(a) == 0
	}
	if err := quick.Check(refl, nil); err != nil {
		t.Error(err)
	}
}
