package logic

import (
	"math/rand"
	"testing"
)

func TestHashAtomAgreesWithInternerPath(t *testing.T) {
	in := NewInterner()
	atoms := []Atom{
		NewAtom(Pred("R", 2), Const("a"), Const("b")),
		NewAtom(Pred("R", 2), Const("b"), Const("a")),
		NewAtom(Pred("S", 1), NewNull("n0")),
		NewAtom(Pred("R", 3), Const("a"), NewNull("n0"), Const("a")),
	}
	for _, a := range atoms {
		pid := in.InternPred(a.Pred)
		args := make([]uint32, len(a.Args))
		for i, tm := range a.Args {
			args[i] = uint32(in.InternTerm(tm))
		}
		if got, want := in.HashAtomIDs(pid, args), HashAtom(a); got != want {
			t.Errorf("HashAtomIDs(%v) = %v, HashAtom = %v", a, got, want)
		}
	}
}

func TestHashAtomDistinguishes(t *testing.T) {
	// Same multiset of arguments in different positions, same name across
	// kinds, same name across arities: all must hash apart.
	pairs := [][2]Atom{
		{NewAtom(Pred("R", 2), Const("a"), Const("b")), NewAtom(Pred("R", 2), Const("b"), Const("a"))},
		{NewAtom(Pred("R", 1), Const("a")), NewAtom(Pred("R", 1), NewNull("a"))},
		{NewAtom(Pred("R", 1), Const("a")), NewAtom(Pred("S", 1), Const("a"))},
		{NewAtom(Pred("R", 2), Const("a"), Const("a")), NewAtom(Pred("R", 1), Const("a"))},
	}
	for _, p := range pairs {
		if HashAtom(p[0]) == HashAtom(p[1]) {
			t.Errorf("HashAtom(%v) == HashAtom(%v)", p[0], p[1])
		}
	}
}

func TestFingerprintMergeCommutes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		a := Fingerprint{Hi: rng.Uint64(), Lo: rng.Uint64()}
		b := Fingerprint{Hi: rng.Uint64(), Lo: rng.Uint64()}
		c := Fingerprint{Hi: rng.Uint64(), Lo: rng.Uint64()}
		if a.Merge(b) != b.Merge(a) {
			t.Fatalf("Merge not commutative: %v vs %v", a, b)
		}
		if a.Merge(b).Merge(c) != a.Merge(b.Merge(c)) {
			t.Fatalf("Merge not associative")
		}
	}
}

func TestFingerprintMixIsOrderSensitive(t *testing.T) {
	a, b := HashTerm(Const("a")), HashTerm(Const("b"))
	var zero Fingerprint
	if zero.Mix(a).Mix(b) == zero.Mix(b).Mix(a) {
		t.Error("Mix must depend on order")
	}
}

func TestInternTermWithHash(t *testing.T) {
	in := NewInterner()
	n := NewNull("n0")
	h := Fingerprint{Hi: 1, Lo: 2}
	id := in.InternTermWithHash(n, h)
	if in.TermHash(id) != h {
		t.Fatalf("override not installed")
	}
	// Idempotent with the same hash.
	if id2 := in.InternTermWithHash(n, h); id2 != id {
		t.Fatalf("re-interning changed the ID")
	}
	// Conflicting override after interning must panic: fingerprints built
	// from the old hash could never be reconciled.
	defer func() {
		if recover() == nil {
			t.Error("conflicting InternTermWithHash must panic")
		}
	}()
	in.InternTermWithHash(n, Fingerprint{Hi: 3, Lo: 4})
}

func TestFingerprintAtomsOrderIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	atoms := []Atom{
		NewAtom(Pred("R", 2), Const("a"), Const("b")),
		NewAtom(Pred("R", 2), Const("b"), NewNull("n1")),
		NewAtom(Pred("S", 1), Const("c")),
		NewAtom(Pred("T", 3), NewNull("n1"), Const("a"), NewNull("n2")),
	}
	want := FingerprintAtoms(atoms)
	for i := 0; i < 20; i++ {
		shuffled := append([]Atom(nil), atoms...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		if got := FingerprintAtoms(shuffled); got != want {
			t.Fatalf("fingerprint depends on order: %v vs %v", got, want)
		}
	}
}
