// Package logic provides the first-order building blocks used throughout the
// library: terms (constants, labeled nulls, variables), predicates, atoms,
// substitutions, and homomorphism search between sets of atoms.
//
// The definitions follow Section 2 of Gogacz, Marcinkowski, Pieris,
// "All-Instances Restricted Chase Termination" (PODS 2020): terms are drawn
// from three pairwise-disjoint countably infinite sets C (constants),
// N (labeled nulls) and V (variables); a homomorphism is a substitution that
// is the identity on constants and preserves atoms.
package logic

import (
	"fmt"
	"sort"
	"strings"
)

// TermKind distinguishes the three disjoint universes of terms.
type TermKind uint8

const (
	// Constant is an element of C. Homomorphisms fix constants.
	Constant TermKind = iota
	// Null is a labeled null from N, invented by the chase as a witness for
	// an existentially quantified variable. Homomorphisms may map nulls.
	Null
	// Variable is an element of V, used in dependencies only.
	Variable
)

func (k TermKind) String() string {
	switch k {
	case Constant:
		return "constant"
	case Null:
		return "null"
	case Variable:
		return "variable"
	default:
		return fmt.Sprintf("TermKind(%d)", uint8(k))
	}
}

// Term is a constant, labeled null, or variable. Terms are small comparable
// values: they can be used as map keys and compared with ==.
type Term struct {
	Kind TermKind
	Name string
}

// Const returns the constant with the given name.
func Const(name string) Term { return Term{Kind: Constant, Name: name} }

// NewNull returns the labeled null with the given label.
func NewNull(name string) Term { return Term{Kind: Null, Name: name} }

// Var returns the variable with the given name.
func Var(name string) Term { return Term{Kind: Variable, Name: name} }

// IsConst reports whether t is a constant.
func (t Term) IsConst() bool { return t.Kind == Constant }

// IsNull reports whether t is a labeled null.
func (t Term) IsNull() bool { return t.Kind == Null }

// IsVar reports whether t is a variable.
func (t Term) IsVar() bool { return t.Kind == Variable }

// Mappable reports whether a homomorphism is allowed to move t, i.e. whether
// t is a null or a variable. Constants are rigid.
func (t Term) Mappable() bool { return t.Kind != Constant }

// String renders the term using the library's concrete syntax: constants are
// bare identifiers, nulls carry the "_:" prefix, and variables the "?" prefix
// is not used — variables render as bare uppercase-style names, matching the
// parser convention that identifiers beginning with an upper-case letter are
// variables inside dependencies.
func (t Term) String() string {
	switch t.Kind {
	case Null:
		return "_:" + t.Name
	default:
		return t.Name
	}
}

// Compare orders terms first by kind (constants < nulls < variables), then by
// name. It returns -1, 0, or +1.
func (t Term) Compare(u Term) int {
	if t.Kind != u.Kind {
		if t.Kind < u.Kind {
			return -1
		}
		return 1
	}
	return strings.Compare(t.Name, u.Name)
}

// SortTerms sorts ts in place using Term.Compare.
func SortTerms(ts []Term) {
	sort.Slice(ts, func(i, j int) bool { return ts[i].Compare(ts[j]) < 0 })
}

// TermSet is a set of terms.
type TermSet map[Term]struct{}

// NewTermSet returns a set containing the given terms.
func NewTermSet(ts ...Term) TermSet {
	s := make(TermSet, len(ts))
	for _, t := range ts {
		s[t] = struct{}{}
	}
	return s
}

// Add inserts t and reports whether it was newly added.
func (s TermSet) Add(t Term) bool {
	if _, ok := s[t]; ok {
		return false
	}
	s[t] = struct{}{}
	return true
}

// Has reports membership.
func (s TermSet) Has(t Term) bool {
	_, ok := s[t]
	return ok
}

// AddAll inserts every term of other into s.
func (s TermSet) AddAll(other TermSet) {
	for t := range other {
		s[t] = struct{}{}
	}
}

// Sorted returns the elements in Term.Compare order.
func (s TermSet) Sorted() []Term {
	out := make([]Term, 0, len(s))
	for t := range s {
		out = append(out, t)
	}
	SortTerms(out)
	return out
}

// FreshNamer hands out fresh names with a common prefix: prefix0, prefix1, …
// It is not safe for concurrent use; engines own one namer each.
type FreshNamer struct {
	prefix string
	next   int
}

// NewFreshNamer returns a namer producing prefix0, prefix1, …
func NewFreshNamer(prefix string) *FreshNamer {
	return &FreshNamer{prefix: prefix}
}

// Next returns the next fresh name.
func (f *FreshNamer) Next() string {
	name := fmt.Sprintf("%s%d", f.prefix, f.next)
	f.next++
	return name
}

// NextNull returns a fresh labeled null.
func (f *FreshNamer) NextNull() Term { return NewNull(f.Next()) }

// NextVar returns a fresh variable.
func (f *FreshNamer) NextVar() Term { return Var(f.Next()) }

// Count returns how many names have been handed out.
func (f *FreshNamer) Count() int { return f.next }
