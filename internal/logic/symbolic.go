package logic

// Symbolic term encoding for crossing interner boundaries. IDs minted by one
// Interner are meaningless under another (see the ownership contract in
// intern.go), so parallel work that partitions state across workers — each
// owning a private interner — must exchange terms in an interner-independent
// form and re-intern at the boundary. The ∀∃ search's sharded coordinator
// (internal/chase/parallel.go) is the consumer.
//
// The encoding exploits the shared-prefix convention: every worker interns
// the same fixed vocabulary (compiled patterns, then database atoms) in the
// same deterministic order at startup, so the first NumTerms() IDs agree
// across workers by construction, and every later ID is an invented null.
// A SymTerm is therefore either a shared-prefix ID (constants and pattern
// rigids — identical everywhere, no translation needed) or, for a null, its
// 128-bit canonical fingerprint: the structural invention identity installed
// via InternTermWithHash, which is interner-independent by design. The
// receiving side re-interns nulls by fingerprint (minting a local name on
// first sight) and uses shared IDs verbatim.

// SymTerm is the interner-independent encoding of a term under the
// shared-prefix convention: a shared interning-order ID for terms in the
// common startup vocabulary, or the canonical 128-bit fingerprint for an
// invented null. The zero value encodes shared ID 0.
type SymTerm struct {
	// NullFP is the null's canonical fingerprint (its structural invention
	// identity); meaningful only when IsNull.
	NullFP Fingerprint
	// Shared is the term's shared-prefix ID; meaningful only when !IsNull.
	Shared uint32
	// IsNull distinguishes the two encodings.
	IsNull bool
}

// EncodeTermSym encodes an interned term symbolically: IDs below sharedLimit
// (the size of the deterministic startup vocabulary) pass through as shared
// IDs, anything above is a null encoded by its canonical fingerprint (the
// per-ID hash, which for nulls is the structural override installed at
// interning). The caller guarantees every ID ≥ sharedLimit is a null with an
// installed override — the ∀∃ search's invariant.
func (in *Interner) EncodeTermSym(id TermID, sharedLimit int) SymTerm {
	if int(id) < sharedLimit {
		return SymTerm{Shared: uint32(id)}
	}
	return SymTerm{NullFP: in.termHash[id], IsNull: true}
}

// SymTermHash returns the content fingerprint of a symbolic term without
// resolving it to a local ID: a null's canonical fingerprint, or the cached
// hash of the shared term. Shared hashes are content hashes, so the result
// is identical under every interner holding the same shared prefix.
func (in *Interner) SymTermHash(st SymTerm) Fingerprint {
	if st.IsNull {
		return st.NullFP
	}
	return in.termHash[st.Shared]
}
