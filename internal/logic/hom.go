package logic

import "sort"

// AtomSource is the minimal read interface the homomorphism search needs
// from an instance: all atoms with a given predicate.
type AtomSource interface {
	AtomsByPredicate(Predicate) []Atom
}

// IndexedSource is an AtomSource that can additionally serve the insertion
// indices of atoms with a given term at a given (1-based) argument
// position. Instances implement it; the search uses it to prune
// candidates. Postings are indices (not copied atoms) so the index costs
// 4 bytes per entry and candidates resolve through AtomByIndex.
type IndexedSource interface {
	AtomSource
	AtomIndexesByPredicateTerm(p Predicate, pos int, t Term) []int32
	AtomByIndex(i int32) Atom
}

// SliceSource adapts a plain slice of atoms to AtomSource.
type SliceSource struct {
	byPred map[Predicate][]Atom
	all    []Atom
}

// NewSliceSource indexes the given atoms by predicate. The slice is not
// copied; callers must not mutate it while the source is in use.
func NewSliceSource(atoms []Atom) *SliceSource {
	s := &SliceSource{byPred: make(map[Predicate][]Atom), all: atoms}
	for _, a := range atoms {
		s.byPred[a.Pred] = append(s.byPred[a.Pred], a)
	}
	return s
}

// AtomsByPredicate implements AtomSource.
func (s *SliceSource) AtomsByPredicate(p Predicate) []Atom { return s.byPred[p] }

// Atoms returns the underlying atoms.
func (s *SliceSource) Atoms() []Atom { return s.all }

// matchAtom attempts to extend s so that pattern maps onto target. On
// success it returns the extended substitution (possibly s itself when no
// new bindings were needed) and true. On failure s is returned unchanged
// (any partial additions are recorded in trail and undone by the caller).
func matchAtom(pattern, target Atom, s Substitution, trail *[]Term) bool {
	if pattern.Pred != target.Pred {
		return false
	}
	start := len(*trail)
	for i, pt := range pattern.Args {
		ut := target.Args[i]
		if !pt.Mappable() {
			if pt != ut {
				undoTrail(s, trail, start)
				return false
			}
			continue
		}
		if bound, ok := s[pt]; ok {
			if bound != ut {
				undoTrail(s, trail, start)
				return false
			}
			continue
		}
		s[pt] = ut
		*trail = append(*trail, pt)
	}
	return true
}

func undoTrail(s Substitution, trail *[]Term, to int) {
	for i := len(*trail) - 1; i >= to; i-- {
		delete(s, (*trail)[i])
	}
	*trail = (*trail)[:to]
}

// candidates returns the atoms of src that could match pattern under the
// current bindings: either a posting list of indices into idx (when src is
// indexed and some pattern position is ground under s), or a plain atom
// slice. Exactly one of the two results is non-nil… unless both are empty.
func candidates(pattern Atom, s Substitution, src AtomSource) (byIdx []int32, idx IndexedSource, atoms []Atom) {
	if ix, ok := src.(IndexedSource); ok {
		// Prefer a position whose pattern term is already ground under s.
		for i, pt := range pattern.Args {
			t := pt
			if pt.Mappable() {
				bound, ok := s[pt]
				if !ok {
					continue
				}
				t = bound
			}
			return ix.AtomIndexesByPredicateTerm(pattern.Pred, i+1, t), ix, nil
		}
	}
	return nil, nil, src.AtomsByPredicate(pattern.Pred)
}

// boundness scores how constrained a pattern atom is under s: the number of
// arguments that are constants or already-bound terms. Higher is more
// selective.
func boundness(pattern Atom, s Substitution) int {
	n := 0
	for _, pt := range pattern.Args {
		if !pt.Mappable() {
			n++
			continue
		}
		if _, ok := s[pt]; ok {
			n++
		}
	}
	return n
}

// ForEachHomomorphism enumerates every homomorphism h ⊇ base from the
// pattern atoms into src, calling yield for each. Enumeration stops early
// when yield returns false. The substitution passed to yield is reused
// between calls: callers that retain it must Clone it.
//
// Constants in the pattern must match exactly; nulls and variables are
// mappable. The base substitution is not mutated.
func ForEachHomomorphism(pattern []Atom, base Substitution, src AtomSource, yield func(Substitution) bool) {
	s := base.Clone()
	if s == nil {
		s = NewSubstitution()
	}
	remaining := make([]Atom, len(pattern))
	copy(remaining, pattern)
	var trail []Term
	var rec func() bool
	rec = func() bool {
		if len(remaining) == 0 {
			return yield(s)
		}
		// Pick the most constrained remaining atom (greedy selectivity).
		best := 0
		bestScore := -1
		for i, a := range remaining {
			if sc := boundness(a, s); sc > bestScore {
				bestScore, best = sc, i
			}
		}
		pat := remaining[best]
		last := len(remaining) - 1
		remaining[best] = remaining[last]
		remaining = remaining[:last]
		cont := true
		byIdx, idx, atoms := candidates(pat, s, src)
		n := len(byIdx) + len(atoms)
		for c := 0; c < n && cont; c++ {
			var cand Atom
			if byIdx != nil {
				cand = idx.AtomByIndex(byIdx[c])
			} else {
				cand = atoms[c]
			}
			start := len(trail)
			if !matchAtom(pat, cand, s, &trail) {
				continue
			}
			if !rec() {
				undoTrail(s, &trail, start)
				cont = false
				break
			}
			undoTrail(s, &trail, start)
		}
		// Undo the swap-removal exactly: the atom that was moved into slot
		// best goes back to the end, and pat returns to slot best. (When
		// best == last the first write is a no-op.)
		remaining = remaining[:last+1]
		remaining[last] = remaining[best]
		remaining[best] = pat
		return cont
	}
	rec()
}

// FindHomomorphism returns some homomorphism h ⊇ base from pattern into src,
// or nil if none exists.
func FindHomomorphism(pattern []Atom, base Substitution, src AtomSource) Substitution {
	var found Substitution
	ForEachHomomorphism(pattern, base, src, func(s Substitution) bool {
		found = s.Clone()
		return false
	})
	return found
}

// HasHomomorphism reports whether some homomorphism h ⊇ base from pattern
// into src exists.
func HasHomomorphism(pattern []Atom, base Substitution, src AtomSource) bool {
	return FindHomomorphism(pattern, base, src) != nil
}

// AllHomomorphisms collects every homomorphism h ⊇ base from pattern into
// src, in a deterministic order (the order induced by src's atom slices).
func AllHomomorphisms(pattern []Atom, base Substitution, src AtomSource) []Substitution {
	var out []Substitution
	ForEachHomomorphism(pattern, base, src, func(s Substitution) bool {
		out = append(out, s.Clone())
		return true
	})
	return out
}

// HomomorphicallyMaps reports whether h maps the atom a onto the atom b,
// i.e. whether a.Apply(h) equals b after also treating unbound mappable
// terms as mismatches. It does not extend h.
func HomomorphicallyMaps(h Substitution, a, b Atom) bool {
	if a.Pred != b.Pred {
		return false
	}
	for i, t := range a.Args {
		img := t
		if t.Mappable() {
			u, ok := h[t]
			if !ok {
				return false
			}
			img = u
		}
		if img != b.Args[i] {
			return false
		}
	}
	return true
}

// Isomorphic reports whether the two atom sets are isomorphic: there is a
// 1-1 homomorphism from a onto b whose inverse is also a homomorphism
// (Appendix A of the paper). It additionally returns a witnessing
// isomorphism when one exists.
func Isomorphic(a, b []Atom) (Substitution, bool) {
	if len(dedupAtoms(a)) != len(dedupAtoms(b)) {
		return nil, false
	}
	bs := NewSliceSource(b)
	var iso Substitution
	ForEachHomomorphism(a, nil, bs, func(h Substitution) bool {
		if !h.Injective() {
			return true
		}
		inv, ok := h.Inverse()
		if !ok || inv.Validate() != nil {
			return true
		}
		// The image of a under h must cover b.
		img := make(map[string]struct{}, len(a))
		for _, atom := range a {
			img[atom.Apply(h).Key()] = struct{}{}
		}
		for _, atom := range b {
			if _, ok := img[atom.Key()]; !ok {
				return true
			}
		}
		iso = h.Clone()
		return false
	})
	return iso, iso != nil
}

func dedupAtoms(atoms []Atom) []Atom {
	seen := make(map[string]struct{}, len(atoms))
	out := atoms[:0:0]
	for _, a := range atoms {
		k := a.Key()
		if _, ok := seen[k]; ok {
			continue
		}
		seen[k] = struct{}{}
		out = append(out, a)
	}
	return out
}

// DedupAtoms returns the atoms with syntactic duplicates removed, preserving
// first-occurrence order.
func DedupAtoms(atoms []Atom) []Atom { return dedupAtoms(atoms) }

// RenameApart returns the atoms with every variable renamed by applying the
// given namer, together with the renaming used. Constants and nulls are
// untouched. Used to standardise TGDs apart.
func RenameApart(atoms []Atom, namer *FreshNamer) ([]Atom, Substitution) {
	ren := NewSubstitution()
	vars := VarsOf(atoms).Sorted()
	for _, v := range vars {
		ren.Bind(v, namer.NextVar())
	}
	return ren.ApplyAtoms(atoms), ren
}

// CanonicalFreeze returns a copy of the atoms where every variable is
// replaced by a distinct fresh constant ("freezing"), along with the
// freezing substitution. Freezing turns a conjunctive-query body into its
// canonical database.
func CanonicalFreeze(atoms []Atom, namer *FreshNamer) ([]Atom, Substitution) {
	frz := NewSubstitution()
	for _, v := range VarsOf(atoms).Sorted() {
		frz.Bind(v, Const("~"+v.Name+"~"+namer.Next()))
	}
	return frz.ApplyAtoms(atoms), frz
}

// SortSubstitutions orders substitutions canonically (Substitution.Compare):
// deterministic trigger enumeration relies on this order, and the engine's
// interned fast path reproduces it over TermID tuples.
func SortSubstitutions(subs []Substitution) {
	if len(subs) < 2 {
		return
	}
	keys := make([][]substPair, len(subs))
	for i, s := range subs {
		keys[i] = s.sortedPairs()
	}
	sort.Sort(&substSorter{subs: subs, keys: keys})
}

type substSorter struct {
	subs []Substitution
	keys [][]substPair
}

func (ss *substSorter) Len() int { return len(ss.subs) }
func (ss *substSorter) Swap(i, j int) {
	ss.subs[i], ss.subs[j] = ss.subs[j], ss.subs[i]
	ss.keys[i], ss.keys[j] = ss.keys[j], ss.keys[i]
}
func (ss *substSorter) Less(i, j int) bool {
	return comparePairs(ss.keys[i], ss.keys[j]) < 0
}
