package logic

// TupleID is a dense identifier for a tuple interned in a TupleTable, in
// interning order: the i-th distinct tuple gets ID i.
type TupleID = int32

// TupleTable interns variable-length uint32 tuples to dense IDs with an
// open-addressing hash table over a flat arena. It is the identity
// structure behind instance membership ((PredID, args...) tuples) and
// trigger dedup ((TGD index, bound TermIDs...) tuples): Intern is one probe
// with zero allocations in steady state, and its isNew result doubles as
// the "seen before?" answer, so no secondary set is needed.
//
// Single writer; concurrent readers allowed only without a writer.
type TupleTable struct {
	arena []uint32 // concatenated tuples
	off   []uint32 // off[i] is the start of tuple i; off[len] is the arena end
	tab   []int32  // open addressing; -1 = empty slot, else a TupleID
	mask  uint32
}

// NewTupleTable returns an empty table sized for about capHint tuples.
func NewTupleTable(capHint int) *TupleTable {
	size := uint32(16)
	for int(size)*3 < capHint*4 { // initial load factor headroom
		size *= 2
	}
	t := &TupleTable{
		off:  make([]uint32, 1, capHint+1),
		tab:  make([]int32, size),
		mask: size - 1,
	}
	for i := range t.tab {
		t.tab[i] = -1
	}
	return t
}

// Len returns the number of interned tuples.
func (t *TupleTable) Len() int { return len(t.off) - 1 }

// Reset empties the table while retaining its allocated capacity, so a
// caller can reuse one table as a scratch identity arena instead of
// allocating per use (the ∀∃ search rebuilds one instance per popped state
// this way). Previously returned Tuple slices become invalid.
func (t *TupleTable) Reset() {
	t.arena = t.arena[:0]
	t.off = t.off[:1]
	for i := range t.tab {
		t.tab[i] = -1
	}
}

// Tuple returns the interned tuple with the given ID. The slice aliases the
// arena; callers must not mutate or retain it across Intern calls.
func (t *TupleTable) Tuple(id TupleID) []uint32 {
	return t.arena[t.off[id]:t.off[id+1]]
}

func hashTuple(tuple []uint32) uint64 {
	// FNV-1a over the 4-byte words: cheap, and good enough for dense,
	// low-entropy ID tuples.
	h := uint64(1469598103934665603)
	for _, w := range tuple {
		h ^= uint64(w)
		h *= 1099511628211
	}
	return h
}

func (t *TupleTable) equal(id TupleID, tuple []uint32) bool {
	got := t.arena[t.off[id]:t.off[id+1]]
	if len(got) != len(tuple) {
		return false
	}
	for i, w := range got {
		if w != tuple[i] {
			return false
		}
	}
	return true
}

// Lookup returns the ID of the tuple if it was interned before.
func (t *TupleTable) Lookup(tuple []uint32) (TupleID, bool) {
	i := uint32(hashTuple(tuple)) & t.mask
	for {
		id := t.tab[i]
		if id < 0 {
			return 0, false
		}
		if t.equal(id, tuple) {
			return id, true
		}
		i = (i + 1) & t.mask
	}
}

// Intern returns the ID for the tuple, minting one if it is new. The input
// slice is copied; the caller may reuse it.
func (t *TupleTable) Intern(tuple []uint32) (TupleID, bool) {
	i := uint32(hashTuple(tuple)) & t.mask
	for {
		id := t.tab[i]
		if id < 0 {
			break
		}
		if t.equal(id, tuple) {
			return id, false
		}
		i = (i + 1) & t.mask
	}
	id := TupleID(len(t.off) - 1)
	t.arena = append(t.arena, tuple...)
	t.off = append(t.off, uint32(len(t.arena)))
	t.tab[i] = id
	if uint32(t.Len())*4 >= (t.mask+1)*3 { // load factor 3/4
		t.grow()
	}
	return id, true
}

func (t *TupleTable) grow() {
	size := (t.mask + 1) * 2
	tab := make([]int32, size)
	for i := range tab {
		tab[i] = -1
	}
	mask := size - 1
	for id := TupleID(0); int(id) < t.Len(); id++ {
		i := uint32(hashTuple(t.Tuple(id))) & mask
		for tab[i] >= 0 {
			i = (i + 1) & mask
		}
		tab[i] = id
	}
	t.tab, t.mask = tab, mask
}
