package logic

// Slot-compiled homomorphism search: the ID-based fast path mirroring the
// generic map-based search in hom.go. A pattern ([]Atom) is compiled once
// into slot references — every mappable term becomes a dense slot index —
// and the search binds TermIDs into a flat array instead of a map. The
// chase engine runs trigger discovery and activity checks through this
// path; the generic path remains for callers working with plain atoms.
//
// The search visits candidates in exactly the same order as the generic
// search (same most-constrained-atom selection, same index-position choice,
// same posting-list order), so the two paths enumerate homomorphisms
// identically — the property the differential engine test pins down.

// IDSource is the ID-level read interface the compiled search needs from an
// instance: atom argument tuples and posting lists of atom indices.
// Instances implement it; posting lists are in insertion order.
type IDSource interface {
	// AtomArgIDs returns the interned argument tuple of the atom with the
	// given insertion index; each element is a TermID value (raw uint32, the
	// arena's storage type). The slice must not be mutated.
	AtomArgIDs(i int32) []uint32
	// IdxByPred returns the insertion indices of atoms with predicate p.
	IdxByPred(p PredID) []int32
	// IdxByPredTerm returns the insertion indices of atoms with predicate p
	// whose pos-th (1-based) argument is t.
	IdxByPredTerm(p PredID, pos int, t TermID) []int32
}

// DeltaSource extends IDSource with what the delta-pinned enumeration
// (ForEachDelta, ForEachPinnedAtom) needs: each atom's predicate by
// insertion index, and the suffix of a predicate's posting list starting at
// a given insertion index — the delta's atoms, exposed without copying.
// Posting lists are in insertion order (ascending indices), so the suffix
// is a subslice.
type DeltaSource interface {
	IDSource
	// AtomPredID returns the interned predicate of the atom at insertion
	// index i.
	AtomPredID(i int32) PredID
	// IdxByPredSince returns the insertion indices >= lo of atoms with
	// predicate p, a suffix view of IdxByPred(p).
	IdxByPredSince(p PredID, lo int32) []int32
}

// CTerm is a compiled pattern term: either a variable slot (Slot >= 0) or a
// ground interned term (Slot < 0, ID holds the TermID).
type CTerm struct {
	Slot int32
	ID   TermID
}

// CAtom is a compiled pattern atom.
type CAtom struct {
	Pred PredID
	Args []CTerm
}

// CPattern is a compiled pattern: a conjunction of atoms over NSlots
// variable slots.
type CPattern struct {
	Atoms  []CAtom
	NSlots int
}

// CompilePattern compiles atoms against the interner: mappable terms map to
// the slot slotOf returns (which must be total on the pattern's mappable
// terms), rigid terms are interned. NSlots is the caller's slot-space size.
func CompilePattern(atoms []Atom, nSlots int, slotOf func(Term) int32, in *Interner) *CPattern {
	p := &CPattern{Atoms: make([]CAtom, len(atoms)), NSlots: nSlots}
	for i, a := range atoms {
		ca := CAtom{Pred: in.InternPred(a.Pred), Args: make([]CTerm, len(a.Args))}
		for j, t := range a.Args {
			if t.Mappable() {
				ca.Args[j] = CTerm{Slot: slotOf(t)}
			} else {
				ca.Args[j] = CTerm{Slot: -1, ID: in.InternTerm(t)}
			}
		}
		p.Atoms[i] = ca
	}
	return p
}

// SlotSearch is the reusable state of the compiled search: the bindings
// array plus scratch. A zero value is usable. Not safe for concurrent use;
// engines own one each.
type SlotSearch struct {
	// Bind holds the current bindings, indexed by slot; NoTermID = unbound.
	// Callers preset base bindings between Reset and ForEach.
	Bind  []TermID
	trail []int32
	rem   []int32
	// caps, when non-empty, holds one exclusive insertion-index bound per
	// pattern atom (-1 = unbounded): candidates at or past the bound are
	// skipped. Set only by the delta-pinned entry points; ForEach clears it.
	caps []int32
	base []TermID // snapshot of preset bindings for the delta entry points
}

// Reset sizes Bind for the pattern and clears every slot.
func (ss *SlotSearch) Reset(p *CPattern) {
	if cap(ss.Bind) < p.NSlots {
		ss.Bind = make([]TermID, p.NSlots)
	}
	ss.Bind = ss.Bind[:p.NSlots]
	for i := range ss.Bind {
		ss.Bind[i] = NoTermID
	}
}

// value resolves a compiled term under the current bindings; the second
// result is false when the term is an unbound slot.
func (ss *SlotSearch) value(t CTerm) (TermID, bool) {
	if t.Slot < 0 {
		return t.ID, true
	}
	if v := ss.Bind[t.Slot]; v != NoTermID {
		return v, true
	}
	return 0, false
}

func (ss *SlotSearch) boundness(a CAtom) int {
	n := 0
	for _, t := range a.Args {
		if _, ok := ss.value(t); ok {
			n++
		}
	}
	return n
}

// candidates picks the posting list for the pattern atom exactly like the
// generic search: the first argument position holding a ground-or-bound
// term selects the positional index; otherwise the predicate index. When a
// cap is set for the atom, the list is cut to insertion indices below it.
func (ss *SlotSearch) candidates(a CAtom, patIdx int32, src IDSource) []int32 {
	var list []int32
	found := false
	for i, t := range a.Args {
		if v, ok := ss.value(t); ok {
			list = src.IdxByPredTerm(a.Pred, i+1, v)
			found = true
			break
		}
	}
	if !found {
		list = src.IdxByPred(a.Pred)
	}
	if len(ss.caps) > 0 {
		if cap := ss.caps[patIdx]; cap >= 0 {
			list = cutBefore(list, cap)
		}
	}
	return list
}

// LowerBound returns the first index i of the ascending list with
// list[i] >= bound (len(list) if none): the posting-list split point shared
// by the delta entry points here and instance.IdxByPredSince.
func LowerBound(list []int32, bound int32) int {
	lo, hi := 0, len(list)
	for lo < hi {
		mid := (lo + hi) / 2
		if list[mid] < bound {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// cutBefore returns the prefix of the ascending posting list whose entries
// are below bound.
func cutBefore(list []int32, bound int32) []int32 {
	return list[:LowerBound(list, bound)]
}

// match extends Bind so the pattern atom maps onto the target tuple,
// recording new bindings on the trail. On mismatch it undoes its own
// additions and returns false. Argument counts match by construction
// (candidates share the atom's predicate, and arity is part of Predicate).
func (ss *SlotSearch) match(a CAtom, target []uint32, start int) bool {
	for i, t := range a.Args {
		ut := TermID(target[i])
		if v, ok := ss.value(t); ok {
			if v != ut {
				ss.undo(start)
				return false
			}
			continue
		}
		ss.Bind[t.Slot] = ut
		ss.trail = append(ss.trail, t.Slot)
	}
	return true
}

func (ss *SlotSearch) undo(to int) {
	for i := len(ss.trail) - 1; i >= to; i-- {
		ss.Bind[ss.trail[i]] = NoTermID
	}
	ss.trail = ss.trail[:to]
}

// ForEach enumerates every homomorphism from the pattern into src that
// extends the bindings already present in Bind, calling yield with the full
// bindings array for each. Enumeration stops early when yield returns
// false; ForEach returns false iff it was stopped. The array passed to
// yield is ss.Bind itself — callers must copy what they retain. Bind is
// restored to its pre-call contents on return.
func (ss *SlotSearch) ForEach(p *CPattern, src IDSource, yield func([]TermID) bool) bool {
	ss.trail = ss.trail[:0]
	ss.rem = ss.rem[:0]
	ss.caps = ss.caps[:0]
	for i := range p.Atoms {
		ss.rem = append(ss.rem, int32(i))
	}
	return ss.rec(p, src, yield)
}

// ForEachDelta enumerates every homomorphism from the pattern into src that
// extends the bindings preset in Bind (size Bind with Reset first) and whose
// image uses at least one atom with insertion index >= deltaLo — the
// semi-naive delta enumeration. Each qualifying homomorphism is yielded
// exactly once: every pattern atom j is pinned, in turn, to each delta atom
// of its predicate, with the atoms before j restricted to pre-delta atoms,
// so a homomorphism is keyed by the first pattern atom it maps into the
// delta. Enumeration stops early when yield returns false; the return value
// and the Bind-ownership rules match ForEach.
func (ss *SlotSearch) ForEachDelta(p *CPattern, src DeltaSource, deltaLo int32, yield func([]TermID) bool) bool {
	ss.base = append(ss.base[:0], ss.Bind...)
	defer copy(ss.Bind, ss.base)
	for j := range p.Atoms {
		if !ss.pinned(p, src, j, deltaLo, -1, deltaLo, yield) {
			return false
		}
	}
	return true
}

// ForEachPinnedAtom enumerates every homomorphism that extends the preset
// bindings and maps pattern atom j onto the single instance atom at
// insertion index atomIdx; the remaining atoms range over the whole source.
// This is the engine's per-new-atom trigger discovery step. Yield and Bind
// semantics match ForEach.
func (ss *SlotSearch) ForEachPinnedAtom(p *CPattern, src DeltaSource, j int, atomIdx int32, yield func([]TermID) bool) bool {
	ss.base = append(ss.base[:0], ss.Bind...)
	defer copy(ss.Bind, ss.base)
	return ss.pinned(p, src, j, atomIdx, atomIdx+1, -1, yield)
}

// pinned runs the shared core of the delta entry points: pattern atom j is
// matched against each candidate atom with insertion index in [pinLo, pinHi)
// (pinHi < 0: unbounded) of its predicate, and for each successful pin the
// remaining atoms are enumerated with atoms before j capped to insertion
// indices below oldMax (oldMax < 0: uncapped). ss.base holds the preset
// bindings to restore between pins.
func (ss *SlotSearch) pinned(p *CPattern, src DeltaSource, j int, pinLo, pinHi, oldMax int32, yield func([]TermID) bool) bool {
	pat := p.Atoms[j]
	ss.caps = ss.caps[:0]
	for i := range p.Atoms {
		c := int32(-1)
		if oldMax >= 0 && i < j {
			c = oldMax
		}
		ss.caps = append(ss.caps, c)
	}
	cont := true
	for _, d := range src.IdxByPredSince(pat.Pred, pinLo) {
		if pinHi >= 0 && d >= pinHi {
			break
		}
		copy(ss.Bind, ss.base)
		ss.trail = ss.trail[:0]
		if !ss.match(pat, src.AtomArgIDs(d), 0) {
			continue
		}
		ss.rem = ss.rem[:0]
		for i := range p.Atoms {
			if i != j {
				ss.rem = append(ss.rem, int32(i))
			}
		}
		if !ss.rec(p, src, yield) {
			cont = false
			break
		}
	}
	ss.caps = ss.caps[:0]
	return cont
}

func (ss *SlotSearch) rec(p *CPattern, src IDSource, yield func([]TermID) bool) bool {
	if len(ss.rem) == 0 {
		return yield(ss.Bind)
	}
	// Pick the most constrained remaining atom (greedy selectivity), first
	// index winning ties — the generic search's heuristic, kept in lockstep.
	best := 0
	bestScore := -1
	for i, ai := range ss.rem {
		if sc := ss.boundness(p.Atoms[ai]); sc > bestScore {
			bestScore, best = sc, i
		}
	}
	patIdx := ss.rem[best]
	last := len(ss.rem) - 1
	ss.rem[best] = ss.rem[last]
	ss.rem = ss.rem[:last]
	pat := p.Atoms[patIdx]
	cont := true
	for _, ci := range ss.candidates(pat, patIdx, src) {
		start := len(ss.trail)
		if !ss.match(pat, src.AtomArgIDs(ci), start) {
			continue
		}
		if !ss.rec(p, src, yield) {
			ss.undo(start)
			cont = false
			break
		}
		ss.undo(start)
	}
	ss.rem = ss.rem[:last+1]
	ss.rem[last] = ss.rem[best]
	ss.rem[best] = patIdx
	return cont
}
