package logic

// This file provides the interned-ID identity layer: dense uint32 IDs for
// terms and predicates, handed out by an Interner, plus a TupleTable that
// interns variable-length uint32 tuples (used for ground-atom identity in
// instances and trigger identity in the chase engine).
//
// Identity throughout the hot paths of the library is ID-based: two terms
// are equal iff their TermIDs (under one Interner) are equal, and a ground
// atom or a trigger is identified by its (PredID, TermID...) tuple. The
// string Key() renderers on Atom, Substitution and Trigger remain the
// debug/test representation — they allocate and must not appear on steady-
// state engine paths.
//
// Ownership and concurrency contract: an Interner (and every structure
// holding IDs minted by it) has a single writer. Readers may run
// concurrently with each other but not with a writer. Engines and instances
// each own their interner; IDs are meaningless across owners.

// TermID is a dense identifier for a term interned in an Interner.
type TermID uint32

// PredID is a dense identifier for a predicate interned in an Interner.
type PredID uint32

// NoTermID is the sentinel for "unbound" in slot substitutions. It is never
// handed out by an Interner.
const NoTermID = TermID(0xFFFFFFFF)

// Interner maps terms and predicates to dense IDs and back. The zero value
// is not usable; call NewInterner.
type Interner struct {
	terms  []Term
	termID map[Term]TermID
	preds  []Predicate
	predID map[Predicate]PredID

	// Per-ID fingerprint caches: the content hash (HashTerm/HashPred) is
	// computed once at interning time, so instance fingerprints never hash
	// a name twice. termHash[i] may be an override installed through
	// InternTermWithHash (null canonicalisation).
	termHash []Fingerprint
	predHash []Fingerprint
}

// NewInterner returns an empty interner.
func NewInterner() *Interner {
	return &Interner{
		termID: make(map[Term]TermID),
		predID: make(map[Predicate]PredID),
	}
}

// InternTerm returns the ID for t, minting one if t is new.
func (in *Interner) InternTerm(t Term) TermID {
	if id, ok := in.termID[t]; ok {
		return id
	}
	id := TermID(len(in.terms))
	in.terms = append(in.terms, t)
	in.termHash = append(in.termHash, HashTerm(t))
	in.termID[t] = id
	return id
}

// InternTermWithHash interns t with an explicit fingerprint instead of the
// content hash — the null-canonicalisation hook: the ∀∃ search hashes each
// invented null by its structural invention identity (trigger + existential
// variable), so states whose nulls differ only in counter names fingerprint
// equal. The override must be installed at first interning: it panics if t
// is already interned under a different hash (atoms fingerprinted with the
// old hash could never be reconciled).
func (in *Interner) InternTermWithHash(t Term, h Fingerprint) TermID {
	if id, ok := in.termID[t]; ok {
		if in.termHash[id] != h {
			panic("logic: InternTermWithHash after the term was interned with a different hash")
		}
		return id
	}
	id := TermID(len(in.terms))
	in.terms = append(in.terms, t)
	in.termHash = append(in.termHash, h)
	in.termID[t] = id
	return id
}

// TermHash returns the cached fingerprint of the term with the given ID.
func (in *Interner) TermHash(id TermID) Fingerprint { return in.termHash[id] }

// PredHash returns the cached fingerprint of the predicate with the given ID.
func (in *Interner) PredHash(id PredID) Fingerprint { return in.predHash[id] }

// HashAtomIDs returns the hash of the ground atom (pid, args...) from the
// cached per-term fingerprints; args holds TermID values in the arena's raw
// uint32 form. It agrees with HashAtom on the materialised atom unless a
// term-hash override is installed.
func (in *Interner) HashAtomIDs(pid PredID, args []uint32) Fingerprint {
	h := in.predHash[pid]
	for _, a := range args {
		h = h.Mix(in.termHash[a])
	}
	return h
}

// LookupTerm returns the ID for t without interning; ok is false when t has
// never been interned.
func (in *Interner) LookupTerm(t Term) (TermID, bool) {
	id, ok := in.termID[t]
	return id, ok
}

// Term returns the term with the given ID.
func (in *Interner) Term(id TermID) Term { return in.terms[id] }

// NumTerms returns how many distinct terms have been interned.
func (in *Interner) NumTerms() int { return len(in.terms) }

// InternPred returns the ID for p, minting one if p is new.
func (in *Interner) InternPred(p Predicate) PredID {
	if id, ok := in.predID[p]; ok {
		return id
	}
	id := PredID(len(in.preds))
	in.preds = append(in.preds, p)
	in.predHash = append(in.predHash, HashPred(p))
	in.predID[p] = id
	return id
}

// LookupPred returns the ID for p without interning.
func (in *Interner) LookupPred(p Predicate) (PredID, bool) {
	id, ok := in.predID[p]
	return id, ok
}

// Pred returns the predicate with the given ID.
func (in *Interner) Pred(id PredID) Predicate { return in.preds[id] }

// NumPreds returns how many distinct predicates have been interned.
func (in *Interner) NumPreds() int { return len(in.preds) }

// CompareTermIDs orders two interned terms by Term.Compare. IDs are dense
// interning-order handles, so ID order is NOT term order; deterministic
// orderings resolve through this comparison (string comparison, but no
// construction).
func (in *Interner) CompareTermIDs(a, b TermID) int {
	if a == b {
		return 0
	}
	return in.terms[a].Compare(in.terms[b])
}
