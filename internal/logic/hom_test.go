package logic

import (
	"testing"
	"testing/quick"
)

func source(atoms ...Atom) *SliceSource { return NewSliceSource(atoms) }

func TestFindHomomorphismSimple(t *testing.T) {
	src := source(
		MustAtom("R", Const("a"), Const("b")),
		MustAtom("R", Const("b"), Const("c")),
	)
	pattern := []Atom{MustAtom("R", Var("X"), Var("Y")), MustAtom("R", Var("Y"), Var("Z"))}
	h := FindHomomorphism(pattern, nil, src)
	if h == nil {
		t.Fatal("expected a homomorphism")
	}
	if h.ApplyTerm(Var("X")) != Const("a") || h.ApplyTerm(Var("Y")) != Const("b") || h.ApplyTerm(Var("Z")) != Const("c") {
		t.Errorf("unexpected hom %v", h)
	}
}

func TestFindHomomorphismNone(t *testing.T) {
	src := source(MustAtom("R", Const("a"), Const("b")))
	pattern := []Atom{MustAtom("R", Var("X"), Var("X"))}
	if h := FindHomomorphism(pattern, nil, src); h != nil {
		t.Fatalf("expected none, got %v", h)
	}
	if HasHomomorphism(pattern, nil, src) {
		t.Error("HasHomomorphism should agree")
	}
}

func TestHomomorphismRespectsConstants(t *testing.T) {
	src := source(MustAtom("R", Const("a"), Const("b")))
	pattern := []Atom{MustAtom("R", Const("b"), Var("Y"))}
	if FindHomomorphism(pattern, nil, src) != nil {
		t.Error("constants must match exactly")
	}
	pattern = []Atom{MustAtom("R", Const("a"), Var("Y"))}
	if FindHomomorphism(pattern, nil, src) == nil {
		t.Error("matching constant should succeed")
	}
}

func TestHomomorphismMapsNulls(t *testing.T) {
	// Nulls in the pattern behave like variables (paper: homomorphisms fix
	// only constants).
	src := source(MustAtom("R", Const("a"), Const("b")))
	pattern := []Atom{MustAtom("R", NewNull("n"), Const("b"))}
	h := FindHomomorphism(pattern, nil, src)
	if h == nil || h.ApplyTerm(NewNull("n")) != Const("a") {
		t.Fatalf("null should map to a: %v", h)
	}
}

func TestHomomorphismWithBase(t *testing.T) {
	src := source(
		MustAtom("R", Const("a"), Const("b")),
		MustAtom("R", Const("c"), Const("b")),
	)
	base := NewSubstitution().Bind(Var("X"), Const("c"))
	h := FindHomomorphism([]Atom{MustAtom("R", Var("X"), Var("Y"))}, base, src)
	if h == nil || h.ApplyTerm(Var("X")) != Const("c") {
		t.Fatalf("base not respected: %v", h)
	}
	base2 := NewSubstitution().Bind(Var("X"), Const("z"))
	if FindHomomorphism([]Atom{MustAtom("R", Var("X"), Var("Y"))}, base2, src) != nil {
		t.Error("unsatisfiable base should fail")
	}
	if len(base2) != 1 {
		t.Error("base must not be mutated")
	}
}

func TestAllHomomorphismsCount(t *testing.T) {
	src := source(
		MustAtom("E", Const("1"), Const("2")),
		MustAtom("E", Const("2"), Const("3")),
		MustAtom("E", Const("3"), Const("1")),
	)
	// Triangle: paths of length 2 = 3 homomorphisms.
	pattern := []Atom{MustAtom("E", Var("X"), Var("Y")), MustAtom("E", Var("Y"), Var("Z"))}
	homs := AllHomomorphisms(pattern, nil, src)
	if len(homs) != 3 {
		t.Fatalf("got %d homs, want 3", len(homs))
	}
	seen := map[string]bool{}
	for _, h := range homs {
		if seen[h.Key()] {
			t.Fatalf("duplicate hom %v", h)
		}
		seen[h.Key()] = true
	}
}

func TestForEachHomomorphismEarlyStop(t *testing.T) {
	src := source(
		MustAtom("E", Const("1"), Const("2")),
		MustAtom("E", Const("2"), Const("3")),
		MustAtom("E", Const("3"), Const("1")),
	)
	count := 0
	ForEachHomomorphism([]Atom{MustAtom("E", Var("X"), Var("Y"))}, nil, src, func(Substitution) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Fatalf("early stop failed: %d calls", count)
	}
}

func TestHomomorphicallyMaps(t *testing.T) {
	h := NewSubstitution().Bind(Var("X"), Const("a"))
	a := MustAtom("R", Var("X"), Const("b"))
	if !HomomorphicallyMaps(h, a, MustAtom("R", Const("a"), Const("b"))) {
		t.Error("expected map")
	}
	if HomomorphicallyMaps(h, a, MustAtom("R", Const("a"), Const("c"))) {
		t.Error("constant mismatch must fail")
	}
	if HomomorphicallyMaps(h, MustAtom("R", Var("Z"), Const("b")), MustAtom("R", Const("a"), Const("b"))) {
		t.Error("unbound variable must fail (no extension)")
	}
}

func TestIsomorphic(t *testing.T) {
	a := []Atom{MustAtom("R", NewNull("n1"), NewNull("n2"))}
	b := []Atom{MustAtom("R", NewNull("m1"), NewNull("m2"))}
	if _, ok := Isomorphic(a, b); !ok {
		t.Error("renamed nulls should be isomorphic")
	}
	c := []Atom{MustAtom("R", NewNull("n1"), NewNull("n1"))}
	if _, ok := Isomorphic(a, c); ok {
		t.Error("collapsing nulls is not an isomorphism")
	}
	if _, ok := Isomorphic(c, a); ok {
		t.Error("isomorphism must fail in both directions")
	}
	d := []Atom{MustAtom("R", Const("a"), NewNull("n"))}
	e := []Atom{MustAtom("R", Const("a"), NewNull("k"))}
	if _, ok := Isomorphic(d, e); !ok {
		t.Error("constant-preserving renaming is an isomorphism")
	}
	f := []Atom{MustAtom("R", Const("b"), NewNull("k"))}
	if _, ok := Isomorphic(d, f); ok {
		t.Error("different constants are not isomorphic")
	}
}

func TestIsomorphicMultiAtom(t *testing.T) {
	a := []Atom{
		MustAtom("R", Const("a"), NewNull("x")),
		MustAtom("S", NewNull("x"), NewNull("y")),
	}
	b := []Atom{
		MustAtom("S", NewNull("p"), NewNull("q")),
		MustAtom("R", Const("a"), NewNull("p")),
	}
	iso, ok := Isomorphic(a, b)
	if !ok {
		t.Fatal("expected isomorphism")
	}
	if iso.ApplyTerm(NewNull("x")) != NewNull("p") {
		t.Errorf("iso = %v", iso)
	}
}

func TestDedupAtoms(t *testing.T) {
	atoms := []Atom{
		MustAtom("R", Const("a")),
		MustAtom("R", Const("a")),
		MustAtom("R", Const("b")),
	}
	out := DedupAtoms(atoms)
	if len(out) != 2 {
		t.Fatalf("DedupAtoms = %v", out)
	}
}

func TestRenameApartAndFreeze(t *testing.T) {
	atoms := []Atom{MustAtom("R", Var("X"), Var("Y")), MustAtom("S", Var("Y"), Const("a"))}
	namer := NewFreshNamer("v")
	renamed, ren := RenameApart(atoms, namer)
	if len(ren) != 2 {
		t.Fatalf("renaming = %v", ren)
	}
	if VarsOf(renamed).Has(Var("X")) {
		t.Error("X should be renamed")
	}
	if renamed[1].Args[1] != Const("a") {
		t.Error("constants must survive renaming")
	}
	// Shared variable must stay shared.
	if renamed[0].Args[1] != renamed[1].Args[0] {
		t.Error("shared variable broken by renaming")
	}

	frozen, frz := CanonicalFreeze(atoms, NewFreshNamer("f"))
	if len(frz) != 2 {
		t.Fatalf("freeze = %v", frz)
	}
	for _, a := range frozen {
		if !a.IsFact() {
			t.Errorf("frozen atom %v is not a fact", a)
		}
	}
}

// Property: any hom found maps every pattern atom into the source.
func TestHomomorphismSoundness(t *testing.T) {
	f := func(seed uint8) bool {
		// Build a small random-ish source from the seed.
		names := []string{"a", "b", "c"}
		var atoms []Atom
		for i := 0; i < 5; i++ {
			x := names[(int(seed)+i)%3]
			y := names[(int(seed)+2*i+1)%3]
			atoms = append(atoms, MustAtom("E", Const(x), Const(y)))
		}
		src := NewSliceSource(atoms)
		pattern := []Atom{MustAtom("E", Var("X"), Var("Y")), MustAtom("E", Var("Y"), Var("X"))}
		present := make(map[string]bool)
		for _, a := range atoms {
			present[a.Key()] = true
		}
		sound := true
		ForEachHomomorphism(pattern, nil, src, func(h Substitution) bool {
			for _, p := range pattern {
				if !present[p.Apply(h).Key()] {
					sound = false
					return false
				}
			}
			return true
		})
		return sound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
