package logic

import (
	"fmt"
	"testing"
)

func TestInternerRoundTrip(t *testing.T) {
	in := NewInterner()
	a, b := Const("a"), NewNull("a") // same name, different kind
	ida, idb := in.InternTerm(a), in.InternTerm(b)
	if ida == idb {
		t.Fatal("distinct terms must get distinct IDs")
	}
	if in.InternTerm(a) != ida {
		t.Fatal("interning is idempotent")
	}
	if in.Term(ida) != a || in.Term(idb) != b {
		t.Fatal("reverse lookup mismatch")
	}
	if id, ok := in.LookupTerm(Var("X")); ok {
		t.Fatalf("LookupTerm must not intern, got %d", id)
	}
	if in.NumTerms() != 2 {
		t.Fatalf("NumTerms = %d", in.NumTerms())
	}
	p, q := Pred("R", 2), Pred("R", 3) // same name, different arity
	if in.InternPred(p) == in.InternPred(q) {
		t.Fatal("distinct predicates must get distinct IDs")
	}
	if in.Pred(in.InternPred(p)) != p {
		t.Fatal("predicate reverse lookup mismatch")
	}
}

func TestInternerCompareTermIDs(t *testing.T) {
	in := NewInterner()
	// Intern in an order disagreeing with term order: ID order must not
	// leak into comparisons.
	idb := in.InternTerm(Const("b"))
	ida := in.InternTerm(Const("a"))
	if in.CompareTermIDs(ida, idb) >= 0 || in.CompareTermIDs(idb, ida) <= 0 {
		t.Fatal("CompareTermIDs must order by Term.Compare, not ID")
	}
	if in.CompareTermIDs(ida, ida) != 0 {
		t.Fatal("reflexive compare")
	}
	// n10 vs n1: componentwise name comparison, no joined-string quirks.
	n1 := in.InternTerm(NewNull("n1"))
	n10 := in.InternTerm(NewNull("n10"))
	if in.CompareTermIDs(n1, n10) >= 0 {
		t.Fatal("n1 must order before n10")
	}
}

func TestTupleTableInternLookup(t *testing.T) {
	tab := NewTupleTable(4)
	id0, isNew := tab.Intern([]uint32{1, 2, 3})
	if !isNew || id0 != 0 {
		t.Fatalf("first intern = (%d, %v)", id0, isNew)
	}
	if id, isNew := tab.Intern([]uint32{1, 2, 3}); isNew || id != id0 {
		t.Fatalf("re-intern = (%d, %v)", id, isNew)
	}
	// Prefix and extension are distinct tuples.
	id1, _ := tab.Intern([]uint32{1, 2})
	id2, _ := tab.Intern([]uint32{1, 2, 3, 4})
	if id1 == id0 || id2 == id0 || id1 == id2 {
		t.Fatal("prefix/extension tuples must be distinct")
	}
	if _, ok := tab.Lookup([]uint32{9, 9}); ok {
		t.Fatal("Lookup must miss unseen tuples")
	}
	if got := tab.Tuple(id2); len(got) != 4 || got[3] != 4 {
		t.Fatalf("Tuple(%d) = %v", id2, got)
	}
	if tab.Len() != 3 {
		t.Fatalf("Len = %d", tab.Len())
	}
}

func TestTupleTableGrowth(t *testing.T) {
	tab := NewTupleTable(2)
	const n = 10_000
	for i := uint32(0); i < n; i++ {
		id, isNew := tab.Intern([]uint32{i, i * 7, i ^ 0xdead})
		if !isNew || id != TupleID(i) {
			t.Fatalf("intern %d = (%d, %v)", i, id, isNew)
		}
	}
	for i := uint32(0); i < n; i++ {
		id, ok := tab.Lookup([]uint32{i, i * 7, i ^ 0xdead})
		if !ok || id != TupleID(i) {
			t.Fatalf("lookup %d = (%d, %v)", i, id, ok)
		}
	}
	if tab.Len() != n {
		t.Fatalf("Len = %d", tab.Len())
	}
}

// idSliceSource adapts interned atoms for slot-search tests.
type idSliceSource struct {
	preds  []PredID
	args   [][]uint32
	byPred map[PredID][]int32
	byPT   map[[3]uint32][]int32
}

func newIDSource(in *Interner, atoms []Atom) *idSliceSource {
	s := &idSliceSource{
		byPred: make(map[PredID][]int32),
		byPT:   make(map[[3]uint32][]int32),
	}
	for i, a := range atoms {
		p := in.InternPred(a.Pred)
		row := make([]uint32, len(a.Args))
		for j, t := range a.Args {
			row[j] = uint32(in.InternTerm(t))
		}
		s.preds = append(s.preds, p)
		s.args = append(s.args, row)
		s.byPred[p] = append(s.byPred[p], int32(i))
		for j, w := range row {
			k := [3]uint32{uint32(p), uint32(j + 1), w}
			s.byPT[k] = append(s.byPT[k], int32(i))
		}
	}
	return s
}

func (s *idSliceSource) AtomArgIDs(i int32) []uint32 { return s.args[i] }
func (s *idSliceSource) IdxByPred(p PredID) []int32  { return s.byPred[p] }
func (s *idSliceSource) IdxByPredTerm(p PredID, pos int, t TermID) []int32 {
	return s.byPT[[3]uint32{uint32(p), uint32(pos), uint32(t)}]
}

// TestSlotSearchMatchesGenericSearch pins the compiled search against the
// generic map-based search: same homomorphisms, same enumeration order.
func TestSlotSearchMatchesGenericSearch(t *testing.T) {
	in := NewInterner()
	var atoms []Atom
	for i := 0; i < 6; i++ {
		atoms = append(atoms, MustAtom("E",
			Const(fmt.Sprintf("v%d", i)), Const(fmt.Sprintf("v%d", (i+1)%6))))
	}
	atoms = append(atoms,
		MustAtom("E", Const("v0"), Const("v3")),
		MustAtom("L", Const("v2")),
	)
	src := newIDSource(in, atoms)
	pattern := []Atom{
		MustAtom("E", Var("X"), Var("Y")),
		MustAtom("E", Var("Y"), Var("Z")),
		MustAtom("L", Var("Y")),
	}
	vars := VarsOf(pattern).Sorted()
	slots := make(map[Term]int32, len(vars))
	for i, v := range vars {
		slots[v] = int32(i)
	}
	cp := CompilePattern(pattern, len(vars), func(t Term) int32 { return slots[t] }, in)

	var gotIDs [][]TermID
	var ss SlotSearch
	ss.Reset(cp)
	ss.ForEach(cp, src, func(bind []TermID) bool {
		row := make([]TermID, len(bind))
		copy(row, bind)
		gotIDs = append(gotIDs, row)
		return true
	})

	want := AllHomomorphisms(pattern, nil, NewSliceSource(atoms))
	if len(gotIDs) != len(want) {
		t.Fatalf("slot search found %d homs, generic %d", len(gotIDs), len(want))
	}
	for i, h := range want {
		for j, v := range vars {
			got := in.Term(gotIDs[i][j])
			if got != h.ApplyTerm(v) {
				t.Fatalf("hom %d: %v -> %v, generic says %v", i, v, got, h.ApplyTerm(v))
			}
		}
	}
}

// TestSlotSearchEarlyStopAndRestore checks early termination and that Bind
// is restored between calls.
func TestSlotSearchEarlyStopAndRestore(t *testing.T) {
	in := NewInterner()
	atoms := []Atom{
		MustAtom("R", Const("a")),
		MustAtom("R", Const("b")),
		MustAtom("R", Const("c")),
	}
	src := newIDSource(in, atoms)
	pattern := []Atom{MustAtom("R", Var("X"))}
	cp := CompilePattern(pattern, 1, func(Term) int32 { return 0 }, in)
	var ss SlotSearch
	ss.Reset(cp)
	n := 0
	if ss.ForEach(cp, src, func([]TermID) bool { n++; return n < 2 }) {
		t.Fatal("stopped enumeration must report false")
	}
	if n != 2 {
		t.Fatalf("yielded %d times, want 2", n)
	}
	if ss.Bind[0] != NoTermID {
		t.Fatal("Bind must be restored after ForEach")
	}
	n = 0
	if !ss.ForEach(cp, src, func([]TermID) bool { n++; return true }) {
		t.Fatal("full enumeration must report true")
	}
	if n != 3 {
		t.Fatalf("second pass yielded %d, want 3", n)
	}
}
