package logic

// Tests for the delta-pinned slot-search entry points (ForEachDelta,
// ForEachPinnedAtom): the semi-naive contract — exactly the homomorphisms
// whose image touches the delta, each exactly once — checked against the
// brute-force difference of two full enumerations, on seeded random
// instances and patterns.

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// deltaSliceSource extends idSliceSource to a DeltaSource for tests.
type deltaSliceSource struct{ *idSliceSource }

func (s deltaSliceSource) AtomPredID(i int32) PredID { return s.preds[i] }

func (s deltaSliceSource) IdxByPredSince(p PredID, lo int32) []int32 {
	list := s.byPred[p]
	a, b := 0, len(list)
	for a < b {
		mid := (a + b) / 2
		if list[mid] < lo {
			a = mid + 1
		} else {
			b = mid
		}
	}
	return list[a:]
}

// truncatedSource views only the first n atoms of a source — the "parent
// instance" for the brute-force expectation.
type truncatedSource struct {
	deltaSliceSource
	n int32
}

func (s truncatedSource) IdxByPred(p PredID) []int32 {
	full := s.deltaSliceSource.IdxByPred(p)
	cut := 0
	for cut < len(full) && full[cut] < s.n {
		cut++
	}
	return full[:cut]
}

func (s truncatedSource) IdxByPredTerm(p PredID, pos int, t TermID) []int32 {
	full := s.deltaSliceSource.IdxByPredTerm(p, pos, t)
	cut := 0
	for cut < len(full) && full[cut] < s.n {
		cut++
	}
	return full[:cut]
}

func bindKey(bind []TermID) string { return fmt.Sprint(bind) }

// enumerate collects the set of full-enumeration bindings of the pattern.
func enumerate(p *CPattern, src IDSource) map[string]int {
	var ss SlotSearch
	ss.Reset(p)
	out := make(map[string]int)
	ss.ForEach(p, src, func(bind []TermID) bool {
		out[bindKey(bind)]++
		return true
	})
	return out
}

// TestForEachDeltaIsSemiNaiveDifference: on random edge instances split into
// old + delta, ForEachDelta must yield exactly ForEach(all) minus
// ForEach(old), each binding once.
func TestForEachDeltaIsSemiNaiveDifference(t *testing.T) {
	patterns := [][]Atom{
		{MustAtom("E", Var("X"), Var("Y"))},
		{MustAtom("E", Var("X"), Var("Y")), MustAtom("E", Var("Y"), Var("Z"))},
		{MustAtom("E", Var("X"), Var("Y")), MustAtom("E", Var("Y"), Var("X"))},
		{MustAtom("E", Var("X"), Var("X"))},
		{MustAtom("E", Var("X"), Var("Y")), MustAtom("L", Var("Y"))},
		{MustAtom("E", Var("X"), Var("Y")), MustAtom("E", Var("X"), Var("Z")), MustAtom("L", Var("Z"))},
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		in := NewInterner()
		nTerms := 2 + rng.Intn(4)
		term := func() Term { return Const(fmt.Sprintf("c%d", rng.Intn(nTerms))) }
		var atoms []Atom
		seen := map[string]bool{}
		nAtoms := 3 + rng.Intn(8)
		// Draw-with-dedup, bounded: small term universes can run out of
		// distinct atoms before nAtoms are found.
		for tries := 0; len(atoms) < nAtoms && tries < 200; tries++ {
			var a Atom
			if rng.Intn(4) == 0 {
				a = MustAtom("L", term())
			} else {
				a = MustAtom("E", term(), term())
			}
			if seen[a.Key()] {
				continue
			}
			seen[a.Key()] = true
			atoms = append(atoms, a)
		}
		full := deltaSliceSource{newIDSource(in, atoms)}
		deltaLo := int32(rng.Intn(len(atoms) + 1))
		old := truncatedSource{full, deltaLo}

		pat := patterns[trial%len(patterns)]
		vars := VarsOf(pat).Sorted()
		slots := make(map[Term]int32, len(vars))
		for i, v := range vars {
			slots[v] = int32(i)
		}
		cp := CompilePattern(pat, len(vars), func(t Term) int32 { return slots[t] }, in)

		want := enumerate(cp, full)
		for k := range enumerate(cp, old) {
			delete(want, k)
		}

		var ss SlotSearch
		ss.Reset(cp)
		got := make(map[string]int)
		ss.ForEachDelta(cp, full, deltaLo, func(bind []TermID) bool {
			got[bindKey(bind)]++
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("trial %d (deltaLo=%d): %d delta bindings, want %d\ngot %v\nwant %v",
				trial, deltaLo, len(got), len(want), got, want)
		}
		for k, n := range got {
			if n != 1 {
				t.Fatalf("trial %d: binding %s yielded %d times (semi-naive must yield once)", trial, k, n)
			}
			if _, ok := want[k]; !ok {
				t.Fatalf("trial %d: spurious delta binding %s", trial, k)
			}
		}
	}
}

// TestForEachPinnedAtomMatchesFilteredEnumeration: pinning pattern atom j to
// one instance atom must yield exactly the full-enumeration homomorphisms
// that map atom j onto it (as a set — the two searches may order the shared
// bindings differently, since the pin changes the most-constrained-atom
// selection).
func TestForEachPinnedAtomMatchesFilteredEnumeration(t *testing.T) {
	in := NewInterner()
	atoms := []Atom{
		MustAtom("E", Const("a"), Const("b")),
		MustAtom("E", Const("b"), Const("c")),
		MustAtom("E", Const("b"), Const("b")),
		MustAtom("E", Const("c"), Const("a")),
		MustAtom("L", Const("b")),
	}
	src := deltaSliceSource{newIDSource(in, atoms)}
	pat := []Atom{
		MustAtom("E", Var("X"), Var("Y")),
		MustAtom("E", Var("Y"), Var("Z")),
	}
	vars := VarsOf(pat).Sorted()
	slots := make(map[Term]int32, len(vars))
	for i, v := range vars {
		slots[v] = int32(i)
	}
	cp := CompilePattern(pat, len(vars), func(t Term) int32 { return slots[t] }, in)

	var ss SlotSearch
	for j := range cp.Atoms {
		for ai := int32(0); ai < int32(len(atoms)); ai++ {
			// Expectation: full enumeration filtered to homs whose atom-j
			// image is atoms[ai].
			var want []string
			ss.Reset(cp)
			ss.ForEach(cp, src, func(bind []TermID) bool {
				img := make([]uint32, len(cp.Atoms[j].Args))
				for k, a := range cp.Atoms[j].Args {
					v, _ := func(t CTerm) (TermID, bool) {
						if t.Slot < 0 {
							return t.ID, true
						}
						return bind[t.Slot], bind[t.Slot] != NoTermID
					}(a)
					img[k] = uint32(v)
				}
				match := src.preds[ai] == cp.Atoms[j].Pred
				for k := range img {
					if match && img[k] != src.args[ai][k] {
						match = false
					}
				}
				if match {
					want = append(want, bindKey(bind))
				}
				return true
			})
			var got []string
			ss.Reset(cp)
			ss.ForEachPinnedAtom(cp, src, j, ai, func(bind []TermID) bool {
				got = append(got, bindKey(bind))
				return true
			})
			sort.Strings(want)
			sort.Strings(got)
			if len(got) != len(want) {
				t.Fatalf("j=%d ai=%d: got %v, want %v", j, ai, got, want)
			}
			for k := range want {
				if got[k] != want[k] {
					t.Fatalf("j=%d ai=%d position %d: got %s, want %s", j, ai, k, got[k], want[k])
				}
			}
		}
	}
}
