package logic

import (
	"fmt"
	"sort"
	"strings"
)

// Predicate is a relation symbol with an associated arity. Predicates are
// comparable values.
type Predicate struct {
	Name  string
	Arity int
}

// Pred returns the predicate with the given name and arity.
func Pred(name string, arity int) Predicate { return Predicate{Name: name, Arity: arity} }

// String renders the predicate as "Name/Arity".
func (p Predicate) String() string { return fmt.Sprintf("%s/%d", p.Name, p.Arity) }

// Position identifies the i-th argument of a predicate, written (R, i).
// Positions are 1-based, following the paper.
type Position struct {
	Pred  Predicate
	Index int // 1-based
}

// String renders the position as "(R/n, i)".
func (p Position) String() string { return fmt.Sprintf("(%s,%d)", p.Pred, p.Index) }

// Schema is a finite set of predicates, sorted for deterministic iteration.
type Schema struct {
	preds map[Predicate]struct{}
}

// NewSchema returns a schema containing the given predicates.
func NewSchema(ps ...Predicate) *Schema {
	s := &Schema{preds: make(map[Predicate]struct{}, len(ps))}
	for _, p := range ps {
		s.preds[p] = struct{}{}
	}
	return s
}

// Add inserts p into the schema.
func (s *Schema) Add(p Predicate) { s.preds[p] = struct{}{} }

// Has reports whether the schema contains p.
func (s *Schema) Has(p Predicate) bool {
	_, ok := s.preds[p]
	return ok
}

// Len returns the number of predicates.
func (s *Schema) Len() int { return len(s.preds) }

// MaxArity returns ar(S), the maximum arity over the schema's predicates,
// or 0 for an empty schema.
func (s *Schema) MaxArity() int {
	max := 0
	for p := range s.preds {
		if p.Arity > max {
			max = p.Arity
		}
	}
	return max
}

// Predicates returns the predicates sorted by name then arity.
func (s *Schema) Predicates() []Predicate {
	out := make([]Predicate, 0, len(s.preds))
	for p := range s.preds {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Arity < out[j].Arity
	})
	return out
}

// Positions returns every position (R, i) of the schema, sorted.
func (s *Schema) Positions() []Position {
	var out []Position
	for _, p := range s.Predicates() {
		for i := 1; i <= p.Arity; i++ {
			out = append(out, Position{Pred: p, Index: i})
		}
	}
	return out
}

// Atom is an expression R(t1, …, tn). The argument slice is owned by the
// atom; callers must not mutate it after construction.
type Atom struct {
	Pred Predicate
	Args []Term
}

// NewAtom builds an atom, panicking if the argument count does not match the
// predicate's arity. Construction sites are internal, so a mismatch is a
// programming error rather than an input error.
func NewAtom(p Predicate, args ...Term) Atom {
	if len(args) != p.Arity {
		panic(fmt.Sprintf("logic: atom %s built with %d args", p, len(args)))
	}
	return Atom{Pred: p, Args: args}
}

// MustAtom builds an atom over a predicate derived from the name and the
// number of arguments. Convenient in tests.
func MustAtom(name string, args ...Term) Atom {
	return Atom{Pred: Pred(name, len(args)), Args: args}
}

// Arg returns the term at 1-based position i, following the paper's R(t̄)[i].
func (a Atom) Arg(i int) Term {
	return a.Args[i-1]
}

// IsFact reports whether every argument is a constant.
func (a Atom) IsFact() bool {
	for _, t := range a.Args {
		if !t.IsConst() {
			return false
		}
	}
	return true
}

// IsGround reports whether the atom contains no variables (constants and
// nulls only), i.e. whether it may appear in an instance.
func (a Atom) IsGround() bool {
	for _, t := range a.Args {
		if t.IsVar() {
			return false
		}
	}
	return true
}

// Terms returns the set of terms occurring in the atom.
func (a Atom) Terms() TermSet {
	s := make(TermSet, len(a.Args))
	for _, t := range a.Args {
		s[t] = struct{}{}
	}
	return s
}

// Vars returns the set of variables occurring in the atom.
func (a Atom) Vars() TermSet {
	s := make(TermSet)
	for _, t := range a.Args {
		if t.IsVar() {
			s[t] = struct{}{}
		}
	}
	return s
}

// HasTerm reports whether t occurs among the atom's arguments.
func (a Atom) HasTerm(t Term) bool {
	for _, u := range a.Args {
		if u == t {
			return true
		}
	}
	return false
}

// PositionsOf returns the 1-based positions at which t occurs in the atom,
// the paper's pos(R(t̄), x).
func (a Atom) PositionsOf(t Term) []int {
	var out []int
	for i, u := range a.Args {
		if u == t {
			out = append(out, i+1)
		}
	}
	return out
}

// Equal reports syntactic equality of atoms.
func (a Atom) Equal(b Atom) bool {
	if a.Pred != b.Pred {
		return false
	}
	for i := range a.Args {
		if a.Args[i] != b.Args[i] {
			return false
		}
	}
	return true
}

// Key returns a canonical string encoding of the atom, suitable as a map
// key. Two atoms have equal keys iff they are syntactically equal.
func (a Atom) Key() string {
	var b strings.Builder
	b.Grow(len(a.Pred.Name) + 8*len(a.Args))
	b.WriteString(a.Pred.Name)
	b.WriteByte('/')
	fmt.Fprintf(&b, "%d", a.Pred.Arity)
	b.WriteByte('(')
	for i, t := range a.Args {
		if i > 0 {
			b.WriteByte(',')
		}
		switch t.Kind {
		case Constant:
			b.WriteByte('c')
		case Null:
			b.WriteByte('n')
		case Variable:
			b.WriteByte('v')
		}
		b.WriteString(t.Name)
	}
	b.WriteByte(')')
	return b.String()
}

// String renders the atom as R(t1,…,tn).
func (a Atom) String() string {
	var b strings.Builder
	b.WriteString(a.Pred.Name)
	b.WriteByte('(')
	for i, t := range a.Args {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(t.String())
	}
	b.WriteByte(')')
	return b.String()
}

// Apply returns the atom obtained by replacing every term t with s(t) when s
// binds t, leaving unbound terms untouched.
func (a Atom) Apply(s Substitution) Atom {
	args := make([]Term, len(a.Args))
	for i, t := range a.Args {
		if u, ok := s[t]; ok {
			args[i] = u
		} else {
			args[i] = t
		}
	}
	return Atom{Pred: a.Pred, Args: args}
}

// Clone returns a deep copy of the atom.
func (a Atom) Clone() Atom {
	args := make([]Term, len(a.Args))
	copy(args, a.Args)
	return Atom{Pred: a.Pred, Args: args}
}

// AtomsString renders a list of atoms as a comma-separated conjunction.
func AtomsString(atoms []Atom) string {
	parts := make([]string, len(atoms))
	for i, a := range atoms {
		parts[i] = a.String()
	}
	return strings.Join(parts, ", ")
}

// TermsOf returns the set of all terms occurring in the given atoms,
// the paper's dom(I) when the atoms form an instance.
func TermsOf(atoms []Atom) TermSet {
	s := make(TermSet)
	for _, a := range atoms {
		for _, t := range a.Args {
			s[t] = struct{}{}
		}
	}
	return s
}

// VarsOf returns the set of variables occurring in the given atoms.
func VarsOf(atoms []Atom) TermSet {
	s := make(TermSet)
	for _, a := range atoms {
		for _, t := range a.Args {
			if t.IsVar() {
				s[t] = struct{}{}
			}
		}
	}
	return s
}

// SchemaOf returns the schema of the given atoms.
func SchemaOf(atoms []Atom) *Schema {
	s := NewSchema()
	for _, a := range atoms {
		s.Add(a.Pred)
	}
	return s
}

// SortAtoms sorts atoms by key, giving a deterministic order.
func SortAtoms(atoms []Atom) {
	sort.Slice(atoms, func(i, j int) bool { return atoms[i].Key() < atoms[j].Key() })
}
