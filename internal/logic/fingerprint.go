package logic

// This file provides the 128-bit fingerprint layer: strong content hashes
// for terms, predicates and atoms, and an order-independent combine for
// whole instances. A fingerprint identifies a *set* of ground atoms: the
// per-atom hashes are combined with 128-bit addition, which is commutative
// and associative, so the fingerprint of an instance does not depend on the
// order its atoms were inserted. Instances maintain their fingerprint
// incrementally on Add (internal/instance), and the ∀∃ derivation search
// memoises visited chase states by it instead of rendering sorted key
// strings (internal/chase/search.go).
//
// Hash identity is content-based by default: a term hashes by (kind, name),
// so equal instances built through different interners agree. For labeled
// nulls a canonicalisation hook exists — Interner.InternTermWithHash — that
// hashes a null by its structural invention identity (the trigger and
// existential variable that invented it, the paper's c^{σ,h}_x) rather than
// by its arbitrary counter name, so states reached along different
// derivation paths collide as intended even when null *names* differ.
//
// Collisions: fingerprints are 128 bits built from independently seeded,
// splitmix-finalised halves; callers treat fingerprint equality as state
// equality. At the search's scale (≤ millions of states) the collision
// probability is ~n²/2¹²⁸ and is accepted by design, like any hash-consed
// identity.

import (
	"fmt"
	"math/bits"
)

// Fingerprint is a 128-bit hash value. The zero value is the fingerprint of
// the empty instance. Fingerprint is comparable and is used as a map key.
type Fingerprint struct {
	Hi, Lo uint64
}

// IsZero reports whether f is the empty-set fingerprint.
func (f Fingerprint) IsZero() bool { return f.Hi == 0 && f.Lo == 0 }

// String renders the fingerprint as 32 hex digits; debug output only.
func (f Fingerprint) String() string { return fmt.Sprintf("%016x%016x", f.Hi, f.Lo) }

// Merge combines two fingerprints commutatively (128-bit addition): the
// fingerprint of a disjoint union of atom sets is the Merge of their
// fingerprints. Merging the same atom hash twice is NOT idempotent —
// callers must combine each distinct atom exactly once.
func (f Fingerprint) Merge(g Fingerprint) Fingerprint {
	lo, carry := bits.Add64(f.Lo, g.Lo, 0)
	hi, _ := bits.Add64(f.Hi, g.Hi, carry)
	return Fingerprint{Hi: hi, Lo: lo}
}

// Mix combines two fingerprints order-sensitively: f.Mix(g) != g.Mix(f) in
// general. It is the tuple-hashing step behind atom hashes and structural
// null identities.
func (f Fingerprint) Mix(g Fingerprint) Fingerprint {
	return Fingerprint{
		Hi: mix64(f.Hi ^ (g.Hi + 0x9e3779b97f4a7c15)),
		Lo: mix64(f.Lo ^ (g.Lo + 0xc2b2ae3d27d4eb4f)),
	}
}

// MixUint64 mixes a raw 64-bit value into the fingerprint, order-sensitively.
func (f Fingerprint) MixUint64(x uint64) Fingerprint {
	return Fingerprint{
		Hi: mix64(f.Hi ^ (x + 0x9e3779b97f4a7c15)),
		Lo: mix64(f.Lo ^ (x*0xff51afd7ed558ccd + 0xc2b2ae3d27d4eb4f)),
	}
}

// mix64 is the splitmix64 finalizer: a cheap full-avalanche 64-bit mixer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// fnv64 hashes a kind byte plus a string with FNV-1a from the given seed.
func fnv64(seed uint64, kind byte, s string) uint64 {
	h := seed
	h ^= uint64(kind)
	h *= 1099511628211
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// HashTerm returns the content hash of a term: a function of its kind and
// name only. Interners cache this per TermID; override it for nulls with
// Interner.InternTermWithHash when canonicalising by invention identity.
func HashTerm(t Term) Fingerprint {
	return Fingerprint{
		Hi: mix64(fnv64(1469598103934665603, byte(t.Kind), t.Name)),
		Lo: mix64(fnv64(0x27d4eb2f165667c5, byte(t.Kind)+0x40, t.Name)),
	}
}

// HashPred returns the content hash of a predicate: name and arity.
func HashPred(p Predicate) Fingerprint {
	return Fingerprint{
		Hi: mix64(fnv64(1469598103934665603, byte(p.Arity), p.Name)),
		Lo: mix64(fnv64(0x27d4eb2f165667c5, byte(p.Arity)+0x80, p.Name)),
	}
}

// HashAtom returns the content hash of an atom: the predicate hash mixed
// with each argument's term hash in order. For ground atoms it agrees with
// Interner.HashAtomIDs when no term-hash override is installed.
func HashAtom(a Atom) Fingerprint {
	h := HashPred(a.Pred)
	for _, t := range a.Args {
		h = h.Mix(HashTerm(t))
	}
	return h
}

// FingerprintAtoms returns the order-independent fingerprint of a *set* of
// atoms given as a duplicate-free slice, using content hashes throughout.
// It equals Instance.Fingerprint() for an instance holding the same atoms
// (when no null-hash overrides are installed). Callers must deduplicate:
// Merge is not idempotent.
func FingerprintAtoms(atoms []Atom) Fingerprint {
	var f Fingerprint
	for _, a := range atoms {
		f = f.Merge(HashAtom(a))
	}
	return f
}

// FingerprintString returns the content fingerprint of a raw string — the
// identity non-structural cache artefacts key on (the portfolio cost
// model's workload-class labels, internal/chase.CostModelEntry). Its kind
// bytes keep it distinct from the term, predicate and rule domains.
func FingerprintString(s string) Fingerprint {
	return Fingerprint{
		Hi: mix64(fnv64(1469598103934665603, 'S', s)),
		Lo: mix64(fnv64(0x27d4eb2f165667c5, 's', s)),
	}
}

// ruleSeed starts every rule fingerprint; distinct from the atom-hash and
// null-identity domains by construction.
var ruleSeed = Fingerprint{Hi: 0x8f14e45fceea1671, Lo: 0x9b05688c2b3e6c1f}

// FingerprintRule returns an order-sensitive fingerprint of one rule
// (body → head) together with its label — the letter a TGD contributes to a
// set-level fingerprint (tgds.Set.Fingerprint). Atom order, variable names
// and the label all participate: two rules fingerprint equal exactly when
// they behave identically in a chase AND render identically in evidence and
// witness strings, which is the identity cross-run caches
// (internal/chase.Cache) key verdicts on. Mixing (not merging) is
// deliberate: a rule is a sequence, not a set.
func FingerprintRule(label string, body, head []Atom) Fingerprint {
	h := ruleSeed.Mix(Fingerprint{
		Hi: mix64(fnv64(1469598103934665603, 'L', label)),
		Lo: mix64(fnv64(0x27d4eb2f165667c5, 'L', label)),
	})
	h = h.MixUint64(uint64(len(body)))
	for _, a := range body {
		h = h.Mix(HashAtom(a))
	}
	h = h.MixUint64(uint64(len(head)))
	for _, a := range head {
		h = h.Mix(HashAtom(a))
	}
	return h
}
