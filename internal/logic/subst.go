package logic

import (
	"fmt"
	"sort"
	"strings"
)

// Substitution is a finite function from terms to terms. Following the
// paper, substitutions are built from the empty substitution by adjoining
// single bindings t ↦ t′. A substitution used as a homomorphism must be the
// identity on constants; that invariant is enforced by the homomorphism
// search and by Validate, not by the map type itself.
type Substitution map[Term]Term

// NewSubstitution returns an empty substitution.
func NewSubstitution() Substitution { return make(Substitution) }

// Bind returns s extended with t ↦ u, mutating s in place. It panics if t is
// already bound to a different term: silently overwriting a binding is
// always a bug in this codebase.
func (s Substitution) Bind(t, u Term) Substitution {
	if prev, ok := s[t]; ok && prev != u {
		panic(fmt.Sprintf("logic: rebinding %v: %v -> %v", t, prev, u))
	}
	s[t] = u
	return s
}

// Lookup returns the image of t, and whether t is bound.
func (s Substitution) Lookup(t Term) (Term, bool) {
	u, ok := s[t]
	return u, ok
}

// ApplyTerm returns s(t) when t is bound, and t itself otherwise.
func (s Substitution) ApplyTerm(t Term) Term {
	if u, ok := s[t]; ok {
		return u
	}
	return t
}

// ApplyAtoms maps s over a list of atoms.
func (s Substitution) ApplyAtoms(atoms []Atom) []Atom {
	out := make([]Atom, len(atoms))
	for i, a := range atoms {
		out[i] = a.Apply(s)
	}
	return out
}

// Restrict returns h|S, the restriction of s to the given set of terms.
func (s Substitution) Restrict(dom TermSet) Substitution {
	out := make(Substitution, len(dom))
	for t, u := range s {
		if dom.Has(t) {
			out[t] = u
		}
	}
	return out
}

// Clone returns a copy of s.
func (s Substitution) Clone() Substitution {
	out := make(Substitution, len(s))
	for t, u := range s {
		out[t] = u
	}
	return out
}

// Extends reports whether s agrees with base on base's entire domain,
// i.e. whether s ⊇ base.
func (s Substitution) Extends(base Substitution) bool {
	for t, u := range base {
		if v, ok := s[t]; !ok || v != u {
			return false
		}
	}
	return true
}

// Compose returns the substitution t ↦ g(s(t)) for t in dom(s), extended
// with g's bindings on terms outside dom(s). This matches relational
// composition when substitutions are read as functions applied left first.
func (s Substitution) Compose(g Substitution) Substitution {
	out := make(Substitution, len(s)+len(g))
	for t, u := range s {
		out[t] = g.ApplyTerm(u)
	}
	for t, u := range g {
		if _, ok := out[t]; !ok {
			out[t] = u
		}
	}
	return out
}

// Validate checks the homomorphism side conditions: constants must map to
// themselves (if bound at all). It returns a descriptive error on violation.
func (s Substitution) Validate() error {
	for t, u := range s {
		if t.IsConst() && t != u {
			return fmt.Errorf("logic: substitution moves constant %v to %v", t, u)
		}
	}
	return nil
}

// Injective reports whether s is injective on its domain.
func (s Substitution) Injective() bool {
	seen := make(map[Term]Term, len(s))
	for t, u := range s {
		if prev, ok := seen[u]; ok && prev != t {
			return false
		}
		seen[u] = t
	}
	return true
}

// Inverse returns the inverse of an injective substitution. The second
// result is false if s is not injective.
func (s Substitution) Inverse() (Substitution, bool) {
	out := make(Substitution, len(s))
	for t, u := range s {
		if _, ok := out[u]; ok {
			return nil, false
		}
		out[u] = t
	}
	return out, true
}

// Equal reports whether two substitutions have identical graphs.
func (s Substitution) Equal(other Substitution) bool {
	if len(s) != len(other) {
		return false
	}
	for t, u := range s {
		if v, ok := other[t]; !ok || v != u {
			return false
		}
	}
	return true
}

// Compare orders substitutions canonically: the binding lists, sorted by
// bound term, are compared componentwise — bound terms first, then images,
// via Term.Compare — with a proper prefix sorting first. This is the
// ordering behind deterministic trigger enumeration; unlike comparing Key()
// strings it builds nothing and is agnostic to name quirks (a joined string
// comparison would order "n10" before "n1" next to a separator byte).
func (s Substitution) Compare(other Substitution) int {
	return comparePairs(s.sortedPairs(), other.sortedPairs())
}

type substPair struct{ from, to Term }

// comparePairs is the canonical ordering over sorted binding lists, shared
// by Substitution.Compare and SortSubstitutions so the two can never
// drift apart.
func comparePairs(a, b []substPair) int {
	for i := 0; i < len(a) && i < len(b); i++ {
		if c := a[i].from.Compare(b[i].from); c != 0 {
			return c
		}
		if c := a[i].to.Compare(b[i].to); c != 0 {
			return c
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	default:
		return 0
	}
}

func (s Substitution) sortedPairs() []substPair {
	pairs := make([]substPair, 0, len(s))
	for t, u := range s {
		pairs = append(pairs, substPair{t, u})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].from.Compare(pairs[j].from) < 0 })
	return pairs
}

// Key returns a canonical string encoding of the substitution (bindings in
// sorted order). Two substitutions have equal keys iff they are Equal. It
// is a debug/test renderer: steady-state engine paths identify
// substitutions by interned TermID tuples instead.
func (s Substitution) Key() string {
	pairs := s.sortedPairs()
	var b strings.Builder
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(';')
		}
		b.WriteString(p.from.String())
		b.WriteString("->")
		switch p.to.Kind {
		case Null:
			b.WriteString("_:")
		case Variable:
			b.WriteString("?")
		}
		b.WriteString(p.to.Name)
	}
	return b.String()
}

// String renders the substitution as {t1->u1, t2->u2, …} in sorted order.
func (s Substitution) String() string {
	return "{" + strings.ReplaceAll(s.Key(), ";", ", ") + "}"
}
