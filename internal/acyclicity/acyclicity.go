// Package acyclicity implements the classical *sufficient* conditions for
// all-instances restricted chase termination that the paper's introduction
// surveys: weak acyclicity (Fagin et al., the data-exchange standard),
// joint acyclicity (Krötzsch & Rudolph), and model-faithful acyclicity
// (MFA-style, via the critical instance). These are the baselines the
// decision procedures of Sections 5 and 6 are measured against: each is
// sound (acceptance implies termination) but incomplete (rejection proves
// nothing).
package acyclicity

import (
	"fmt"

	"airct/internal/chase"
	"airct/internal/critical"
	"airct/internal/logic"
	"airct/internal/tgds"
)

// edge is a dependency-graph edge between positions; special edges mark the
// creation of a null (existential variable).
type edge struct {
	from, to logic.Position
	special  bool
}

// dependencyGraph builds the weak-acyclicity graph: for every TGD σ, every
// frontier variable x at body position π_b and head position π_h gives a
// normal edge π_b → π_h; additionally, every existential variable z at head
// position π_z gives a special edge π_b ⇒ π_z from every body position π_b
// of every frontier variable of σ.
func dependencyGraph(set *tgds.Set) []edge {
	var edges []edge
	for _, t := range set.TGDs {
		frontier := t.Frontier()
		existential := t.ExistentialVars()
		// Body positions of each frontier variable.
		bodyPos := make(map[logic.Term][]logic.Position)
		for _, a := range t.Body {
			for i, v := range a.Args {
				if frontier.Has(v) {
					bodyPos[v] = append(bodyPos[v], logic.Position{Pred: a.Pred, Index: i + 1})
				}
			}
		}
		for _, h := range t.Head {
			for i, v := range h.Args {
				pos := logic.Position{Pred: h.Pred, Index: i + 1}
				switch {
				case frontier.Has(v):
					for _, b := range bodyPos[v] {
						edges = append(edges, edge{from: b, to: pos})
					}
				case existential.Has(v):
					for _, positions := range bodyPos {
						for _, b := range positions {
							edges = append(edges, edge{from: b, to: pos, special: true})
						}
					}
				}
			}
		}
	}
	return edges
}

// IsWeaklyAcyclic reports whether the set is weakly acyclic: its dependency
// graph has no cycle through a special edge. Weak acyclicity guarantees
// termination of every (restricted or oblivious) chase sequence on every
// database.
func IsWeaklyAcyclic(set *tgds.Set) bool {
	edges := dependencyGraph(set)
	adj := make(map[logic.Position][]logic.Position)
	for _, e := range edges {
		adj[e.from] = append(adj[e.from], e.to)
	}
	reaches := func(from, to logic.Position) bool {
		seen := map[logic.Position]bool{from: true}
		stack := []logic.Position{from}
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if v == to {
				return true
			}
			for _, u := range adj[v] {
				if !seen[u] {
					seen[u] = true
					stack = append(stack, u)
				}
			}
		}
		return false
	}
	for _, e := range edges {
		if e.special && reaches(e.to, e.from) {
			return false
		}
	}
	return true
}

// IsJointlyAcyclic reports whether the set is jointly acyclic (Krötzsch &
// Rudolph): the existential-dependency graph over the existential variables
// is acyclic, where Mov(z) — the positions the null for z can move to — is
// closed under frontier variables all of whose body positions lie in
// Mov(z), and z → z′ when the rule introducing z′ has a frontier variable
// whose body positions all lie in Mov(z). Joint acyclicity subsumes weak
// acyclicity.
func IsJointlyAcyclic(set *tgds.Set) bool {
	type exVar struct {
		tgd int
		v   logic.Term
	}
	var exVars []exVar
	for i, t := range set.TGDs {
		for _, v := range t.ExistentialVars().Sorted() {
			exVars = append(exVars, exVar{tgd: i, v: v})
		}
	}
	mov := make([]map[logic.Position]bool, len(exVars))
	for k, ev := range exVars {
		m := make(map[logic.Position]bool)
		for _, h := range set.TGDs[ev.tgd].Head {
			for i, v := range h.Args {
				if v == ev.v {
					m[logic.Position{Pred: h.Pred, Index: i + 1}] = true
				}
			}
		}
		// Close under frontier propagation.
		for changed := true; changed; {
			changed = false
			for _, t := range set.TGDs {
				frontier := t.Frontier()
				for x := range frontier {
					all := true
					any := false
					for _, a := range t.Body {
						for i, v := range a.Args {
							if v == x {
								any = true
								if !m[logic.Position{Pred: a.Pred, Index: i + 1}] {
									all = false
								}
							}
						}
					}
					if !any || !all {
						continue
					}
					for _, h := range t.Head {
						for i, v := range h.Args {
							p := logic.Position{Pred: h.Pred, Index: i + 1}
							if v == x && !m[p] {
								m[p] = true
								changed = true
							}
						}
					}
				}
			}
		}
		mov[k] = m
	}
	// Dependency graph over existential variables.
	adj := make([][]int, len(exVars))
	for from := range exVars {
		for to, ev := range exVars {
			t := set.TGDs[ev.tgd]
			frontier := t.Frontier()
			dep := false
			for x := range frontier {
				all := true
				any := false
				for _, a := range t.Body {
					for i, v := range a.Args {
						if v == x {
							any = true
							if !mov[from][logic.Position{Pred: a.Pred, Index: i + 1}] {
								all = false
							}
						}
					}
				}
				if any && all {
					dep = true
					break
				}
			}
			if dep {
				adj[from] = append(adj[from], to)
			}
		}
	}
	// Cycle detection.
	color := make([]int, len(exVars))
	var dfs func(v int) bool
	dfs = func(v int) bool {
		color[v] = 1
		for _, u := range adj[v] {
			if color[u] == 1 {
				return false
			}
			if color[u] == 0 && !dfs(u) {
				return false
			}
		}
		color[v] = 2
		return true
	}
	for v := range exVars {
		if color[v] == 0 && !dfs(v) {
			return false
		}
	}
	return true
}

// MFAResult reports the outcome of the model-faithful-style check.
type MFAResult struct {
	// Acyclic is true when the semi-oblivious chase of the critical
	// instance saturated without creating a cyclic null.
	Acyclic bool
	// CyclicNull holds the offending null when Acyclic is false and the
	// check found an ancestry cycle (same TGD and existential variable
	// nested inside itself).
	CyclicNull logic.Term
	// Steps is the number of chase steps performed.
	Steps int
}

// CheckMFA runs the MFA-style test: chase the critical instance D* with the
// semi-oblivious chase, tracking null ancestry; if a null created by
// (σ, z) has an ancestor null created by the same (σ, z), the set is
// reported cyclic. If the chase saturates first, the set is MFA and every
// chase variant terminates on every database. maxSteps bounds the search
// (0: 100_000); hitting the bound reports Acyclic = false with no witness.
func CheckMFA(set *tgds.Set, maxSteps int) MFAResult {
	if maxSteps <= 0 {
		maxSteps = 100_000
	}
	db := critical.Instance(set)
	inst := db.Instance()
	nulls := chase.NewNullFactory(chase.StructuralNaming)
	// origin[n] = "tgdIndex|var" creating n; parents[n] = nulls in the
	// frontier image of the creating trigger.
	origin := make(map[logic.Term]string)
	parents := make(map[logic.Term][]logic.Term)
	appliedFrontier := make(map[string]struct{})
	steps := 0
	for {
		if steps >= maxSteps {
			return MFAResult{Acyclic: false, Steps: steps}
		}
		progressed := false
		for _, tr := range chase.AllTriggers(set, inst) {
			fk := tr.FrontierKey()
			if _, done := appliedFrontier[fk]; done {
				continue
			}
			appliedFrontier[fk] = struct{}{}
			result := chase.Result(tr, nulls)
			frontierNulls := frontierNullsOf(tr)
			for _, atom := range result {
				for _, term := range atom.Args {
					if !term.IsNull() {
						continue
					}
					if _, known := origin[term]; known {
						continue
					}
					// Origin granularity is the creating TGD. The textbook
					// MFA condition keys on (σ, z); collapsing the
					// existential variables of one TGD only makes the
					// cycle test fire earlier, which keeps acceptance
					// sound (an accepted set still saturated cycle-free).
					origin[term] = fmt.Sprintf("%d", tr.TGDIndex)
					parents[term] = frontierNulls
					if hasCyclicAncestry(term, origin, parents) {
						return MFAResult{Acyclic: false, CyclicNull: term, Steps: steps}
					}
				}
				inst.Add(atom)
			}
			steps++
			progressed = true
			if steps >= maxSteps {
				return MFAResult{Acyclic: false, Steps: steps}
			}
		}
		if !progressed {
			return MFAResult{Acyclic: true, Steps: steps}
		}
	}
}

func frontierNullsOf(tr chase.Trigger) []logic.Term {
	var out []logic.Term
	seen := map[logic.Term]bool{}
	for x := range tr.TGD.Frontier() {
		t := tr.H.ApplyTerm(x)
		if t.IsNull() && !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	return out
}

func hasCyclicAncestry(n logic.Term, origin map[logic.Term]string, parents map[logic.Term][]logic.Term) bool {
	want := origin[n]
	seen := map[logic.Term]bool{n: true}
	stack := append([]logic.Term{}, parents[n]...)
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[v] {
			continue
		}
		seen[v] = true
		if origin[v] == want {
			return true
		}
		stack = append(stack, parents[v]...)
	}
	return false
}
