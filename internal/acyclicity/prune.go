package acyclicity

// Never-firing TGD pruning — the portfolio's "jointree" Tier-0 stage.
//
// A TGD σ whose head folds into its own body — a homomorphism
// h : Head(σ) → Body(σ) that is the identity on the frontier fr(σ) — can
// never fire in ANY restricted chase of ANY instance: for every trigger
// (σ, h′) with Body(σ)h′ ⊆ I, the composition h′∘h maps Head(σ) into I
// while agreeing with h′ on the frontier, so the trigger is inactive
// (Definition 3.1). Removing such TGDs therefore preserves the restricted
// chase derivations of every instance exactly, and any termination proof
// for the pruned remainder — empty, existential-free, weakly acyclic or
// jointly acyclic — transfers to the original set verbatim.
//
// The fold check is a conjunctive-query containment test; it is attempted
// only when the body is an acyclic instance in the Definition 5.4 sense
// (jointree.IsAcyclic — GYO ear removal on the body hypergraph), the class
// for which such joins are tractable. Cyclic bodies are skipped, which is
// sound: skipping only prunes less.

import (
	"airct/internal/jointree"
	"airct/internal/logic"
	"airct/internal/tgds"
)

// NeverFiring returns the indexes of the set's never-firing TGDs: those
// whose head folds into their own body by a homomorphism fixing the
// frontier (attempted only for jointree-acyclic bodies).
func NeverFiring(set *tgds.Set) []int {
	var out []int
	for i, t := range set.TGDs {
		if neverFires(t) {
			out = append(out, i)
		}
	}
	return out
}

func neverFires(t tgds.TGD) bool {
	if !jointree.IsAcyclic(t.Body) {
		return false
	}
	base := logic.NewSubstitution()
	for v := range t.Frontier() {
		base.Bind(v, v)
	}
	return logic.HasHomomorphism(t.Head, base, logic.NewSliceSource(t.Body))
}

// PruneNeverFiring removes the never-firing TGDs and returns the remainder
// together with the removed indexes. The remainder is nil when every TGD
// was pruned (the chase of any instance stops immediately); removed is nil
// when nothing folds. The remainder's restricted chase derivations coincide
// with the original set's on every instance.
func PruneNeverFiring(set *tgds.Set) (*tgds.Set, []int) {
	removed := NeverFiring(set)
	if len(removed) == 0 {
		return set, nil
	}
	drop := make(map[int]bool, len(removed))
	for _, i := range removed {
		drop[i] = true
	}
	var keep []tgds.TGD
	for i, t := range set.TGDs {
		if !drop[i] {
			keep = append(keep, t)
		}
	}
	if len(keep) == 0 {
		return nil, removed
	}
	return tgds.MustSet(keep...), removed
}
