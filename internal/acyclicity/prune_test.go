package acyclicity

import (
	"testing"

	"airct/internal/parser"
	"airct/internal/tgds"
)

func mustParseSet(t *testing.T, src string) *tgds.Set {
	t.Helper()
	set, err := parser.ParseTGDs(src)
	if err != nil {
		t.Fatal(err)
	}
	return set
}

func TestNeverFiringSwapIntro(t *testing.T) {
	// T(X,Y) → ∃W T(X,W): the head folds into the body over the frontier
	// {X} (W ↦ Y), so no restricted chase ever fires it. The swap rule's
	// head T(Y,X) fixes both variables and does not fold.
	set := mustParseSet(t, `
		T(X,Y) -> T(X,W).
		T(X,Y) -> T(Y,X).
	`)
	got := NeverFiring(set)
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("NeverFiring = %v, want [0]", got)
	}
	pruned, removed := PruneNeverFiring(set)
	if len(removed) != 1 || pruned == nil || pruned.Len() != 1 {
		t.Fatalf("prune: removed %v, remainder %v", removed, pruned)
	}
	if !pruned.IsFull() {
		t.Error("swap-intro remainder (the swap rule) must be existential-free")
	}
}

func TestNeverFiringAllPruned(t *testing.T) {
	set := mustParseSet(t, `R(X,Y) -> R(X,Z).`)
	pruned, removed := PruneNeverFiring(set)
	if pruned != nil || len(removed) != 1 {
		t.Fatalf("intro example: remainder %v, removed %v", pruned, removed)
	}
}

func TestNeverFiringRequiresFrontierIdentity(t *testing.T) {
	// The ladder's S(X) → ∃Y R(X,Y) has no body atom over R at all, and
	// R(X,Y) → S(Y) is full with no S in the body: nothing folds, and the
	// diverging set must survive untouched.
	set := mustParseSet(t, `
		S(X) -> R(X,Y).
		R(X,Y) -> S(Y).
	`)
	if got := NeverFiring(set); got != nil {
		t.Fatalf("ladder: NeverFiring = %v, want none", got)
	}
	pruned, removed := PruneNeverFiring(set)
	if removed != nil || pruned != set {
		t.Fatal("ladder: prune must return the set unchanged")
	}
}

func TestNeverFiringSkipsCyclicBodies(t *testing.T) {
	// The body triangle is jointree-cyclic (GYO leaves a core), so the fold
	// check is skipped even though the head trivially folds (it repeats a
	// body atom). Skipping only prunes less — soundness is unaffected.
	set := mustParseSet(t, `
		E(X,Y), E(Y,Z), E(Z,X) -> E(X,Y).
	`)
	if got := NeverFiring(set); got != nil {
		t.Fatalf("cyclic body: NeverFiring = %v, want none (fold not attempted)", got)
	}
}

func TestNeverFiringMultiHeadNeedsJointFold(t *testing.T) {
	// B.1-style multi-head: R(X,Y,Y) → ∃Z R(X,Z,Y), R(Z,Y,Y). No single
	// assignment of Z folds both head atoms into the body while fixing
	// {X, Y}, so the TGD must not be pruned.
	set := mustParseSet(t, `
		R(X,Y,Y) -> R(X,Z,Y), R(Z,Y,Y).
	`)
	if got := NeverFiring(set); got != nil {
		t.Fatalf("multi-head: NeverFiring = %v, want none", got)
	}
}
