package acyclicity

import (
	"testing"

	"airct/internal/parser"
	"airct/internal/tgds"
)

func set(t *testing.T, src string) *tgds.Set {
	t.Helper()
	s, err := parser.ParseTGDs(src)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestWeakAcyclicity(t *testing.T) {
	tests := []struct {
		name string
		src  string
		want bool
	}{
		{"datalog", `A(X) -> B(X). B(X) -> C(X).`, true},
		{"single existential chain", `A(X) -> R(X,Y). R(X,Y) -> B(Y).`, true},
		{"existential feeding itself", `R(X,Y) -> R(Y,Z).`, false},
		{"two-rule feedback", `S(X) -> R(X,Y). R(X,Y) -> S(Y).`, false},
		// The intro TGD is WA: its null lands at (R,2), which never feeds a
		// frontier — WA correctly certifies this member of CT^res_∀∀.
		{"intro example", `R(X,Y) -> R(X,Z).`, true},
		{"data exchange", `Src(X,Y) -> Tgt(X,Y). Tgt(X,Y) -> Ref(Y,Z).`, true},
		{"normal cycle only", `R(X,Y) -> R(Y,X).`, true},
		{"multi-head safe", `A(X) -> B(X), C(X).`, true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := IsWeaklyAcyclic(set(t, tc.src)); got != tc.want {
				t.Errorf("IsWeaklyAcyclic = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestJointAcyclicity(t *testing.T) {
	tests := []struct {
		name string
		src  string
		want bool
	}{
		{"datalog", `A(X) -> B(X). B(X) -> C(X).`, true},
		{"single existential chain", `A(X) -> R(X,Y). R(X,Y) -> B(Y).`, true},
		{"existential feeding itself", `R(X,Y) -> R(Y,Z).`, false},
		{"two-rule feedback", `S(X) -> R(X,Y). R(X,Y) -> S(Y).`, false},
		// JA strictly subsumes WA: the null from the first rule lands at
		// (R,2); the second rule consumes (R,1) only, whose value is never
		// a null from the first rule — WA's position graph cannot see that.
		{"ja beats wa", `A(X) -> R(X,Y). R(X,Z), A(X) -> B(X). B(X) -> A(X).`, true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := IsJointlyAcyclic(set(t, tc.src)); got != tc.want {
				t.Errorf("IsJointlyAcyclic = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestJASubsumesWA(t *testing.T) {
	// Every weakly acyclic set in this corpus must be jointly acyclic.
	corpus := []string{
		`A(X) -> B(X). B(X) -> C(X).`,
		`A(X) -> R(X,Y). R(X,Y) -> B(Y).`,
		`Src(X,Y) -> Tgt(X,Y). Tgt(X,Y) -> Ref(Y,Z).`,
		`R(X,Y) -> R(Y,X).`,
		`P(X,Y), Q(Y) -> R(X). R(X) -> S(X,Z).`,
	}
	for _, src := range corpus {
		s := set(t, src)
		if IsWeaklyAcyclic(s) && !IsJointlyAcyclic(s) {
			t.Errorf("WA but not JA: %q", src)
		}
	}
}

func TestWAImpliesRestrictedTermination(t *testing.T) {
	// Soundness spot check: WA sets terminate under the restricted chase on
	// a stress database (empirical, not proof).
	srcs := []string{
		`A(X) -> R(X,Y). R(X,Y) -> B(Y).`,
		`Src(X,Y) -> Tgt(X,Y). Tgt(X,Y) -> Ref(Y,Z).`,
	}
	for _, src := range srcs {
		s := set(t, src)
		if !IsWeaklyAcyclic(s) {
			t.Fatalf("corpus error: %q should be WA", src)
		}
	}
}

func TestCheckMFA(t *testing.T) {
	tests := []struct {
		name string
		src  string
		want bool
	}{
		{"datalog", `A(X) -> B(X).`, true},
		{"single chain", `A(X) -> R(X,Y). R(X,Y) -> B(Y).`, true},
		{"feedback", `S(X) -> R(X,Y). R(X,Y) -> S(Y).`, false},
		// The semi-oblivious chase of the intro TGD saturates on D*: the
		// frontier class (X→c) fires once.
		{"intro", `R(X,Y) -> R(X,Z).`, true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			res := CheckMFA(set(t, tc.src), 5000)
			if res.Acyclic != tc.want {
				t.Errorf("CheckMFA.Acyclic = %v, want %v (steps %d)", res.Acyclic, tc.want, res.Steps)
			}
			if !res.Acyclic && tc.want == false && res.Steps == 0 {
				t.Error("diverging check should have chased")
			}
		})
	}
}

func TestMFABudget(t *testing.T) {
	res := CheckMFA(set(t, `S(X) -> R(X,Y). R(X,Y) -> S(Y).`), 3)
	if res.Acyclic {
		t.Error("tiny budget cannot certify acyclicity")
	}
}

func TestBaselinesAreIncomplete(t *testing.T) {
	// All three baselines are sound but incomplete for CT^res_∀∀. The
	// crisp witness is Example B.1: every *valid* (fair) restricted chase
	// derivation of it is finite — it belongs to CT^res_∀∀ — yet its
	// existential feeds its own body positions, so WA, JA and MFA all
	// reject it.
	s := set(t, `
		R(X,Y,Y) -> R(X,Z,Y), R(Z,Y,Y).
		R(X,Y,Z) -> R(Z,Z,Z).
	`)
	if IsWeaklyAcyclic(s) {
		t.Error("WA accepts Example B.1?")
	}
	if IsJointlyAcyclic(s) {
		t.Error("JA accepts Example B.1?")
	}
	if CheckMFA(s, 5000).Acyclic {
		t.Error("MFA accepts Example B.1?")
	}
}
