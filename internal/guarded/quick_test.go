package guarded

import (
	"context"
	"testing"
	"testing/quick"

	"airct/internal/chase"
	"airct/internal/instance"
	"airct/internal/jointree"
	"airct/internal/logic"
	"airct/internal/ochase"
	"airct/internal/tgds"
	"airct/internal/workload"
)

// Property: for every random guarded set whose frozen-body chase
// terminates on an acyclic database, the derivation-induced abstract join
// tree validates against Definition 5.8, is chaseable per Definition 5.10,
// and decodes to an instance of the right size. This exercises the full
// Lemma 5.9 pipeline on inputs nobody hand-picked.
func TestQuickAJTFromRandomGuardedRuns(t *testing.T) {
	checked := 0
	f := func(seed int64) bool {
		set := workload.RandomTGDSet(seed%4000, workload.RandomOptions{Rules: 3, MaxBody: 1})
		if !set.IsGuarded() {
			return true
		}
		for _, db := range GenerateSeeds(set, 4) {
			// AJTs need acyclic databases.
			if !isAcyclicDB(db.Atoms()) {
				continue
			}
			run := chase.RunChase(db, set, chase.Options{Variant: chase.Restricted, MaxSteps: 60})
			if !run.Terminated() {
				continue
			}
			ajt, err := FromRun(run)
			if err != nil {
				return false
			}
			if err := ajt.Validate(); err != nil {
				t.Logf("seed %d: Definition 5.8 violated: %v\nset:\n%v\ndb: %v", seed, err, set, db)
				return false
			}
			if err := ajt.CheckChaseable(); err != nil {
				t.Logf("seed %d: Definition 5.10 violated: %v", seed, err)
				return false
			}
			_, decoded := ajt.Decode()
			if decoded.Len() != run.Final.Len() {
				t.Logf("seed %d: decode %d atoms vs chase %d", seed, decoded.Len(), run.Final.Len())
				return false
			}
			checked++
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
	if checked < 20 {
		t.Fatalf("only %d AJTs validated; generator too narrow", checked)
	}
}

func isAcyclicDB(atoms []logic.Atom) bool {
	// Local import cycle avoidance: inline GYO via the jointree package is
	// already linked; reuse through the exported helper.
	return jointreeIsAcyclic(atoms)
}

// Property: DivergenceEvidence never fires on terminating runs.
func TestQuickNoFalsePumpsOnTerminatingRuns(t *testing.T) {
	f := func(seed int64) bool {
		set := workload.RandomTGDSet(seed%4000, workload.RandomOptions{Rules: 3})
		if !set.IsGuarded() {
			return true
		}
		for _, db := range GenerateSeeds(set, 4) {
			run := chase.RunChase(db, set, chase.Options{Variant: chase.Restricted, MaxSteps: 500})
			if !run.Terminated() {
				continue
			}
			if ev, ok := DivergenceEvidence(run); ok {
				// A pump on a *terminating* run is not a soundness bug per
				// se (the signature repetition bound is heuristic), but on
				// short runs it would poison verdicts; surface it.
				t.Logf("seed %d: pump on terminating run: %s", seed, ev)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: treeified databases always validate and stay acyclic.
func TestQuickTreeifyAlwaysAcyclic(t *testing.T) {
	f := func(seed int64) bool {
		set := workload.RandomTGDSet(seed%4000, workload.RandomOptions{Rules: 3})
		if !set.IsGuarded() {
			return true
		}
		seeds := GenerateSeeds(set, 8)
		if len(seeds) == 0 {
			return true
		}
		g := buildFragment(seeds[0], set)
		tr, err := Treeify(g, TreeifyOptions{IncludeDirect: true})
		if err != nil {
			return true // unguarded edge cases are rejected upstream
		}
		return jointreeIsAcyclic(tr.Dac) && tr.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: the Tier 1 rejecting probe never contradicts the full semantic
// procedure. On random guarded sets, whenever a ProbeSeeds k-prefix carries
// a divergence certificate, Decide with the same options reaches the same
// diverging conclusion on the same seed through the same lemma — this is
// the empirical tripwire for the one corner the certificate argument leaves
// open (a budget-B run saturating past k would make bounded
// seed-exhaustion miss the divergence the pump soundly witnesses). The
// evidence strings are NOT compared: the pump pair quoted depends on the
// prefix length mined. Runs under the CI -race job alongside the other
// quick suites.
// Rejecting probes are rare on random sets (~1.5% of seeds), so this sweep
// is deterministic rather than quick.Check-sampled: every seed in the range
// is tried, which both pins the coverage floor and keeps failures
// reproducible by seed.
func TestQuickProbeRejectNeverContradictsDecide(t *testing.T) {
	rejected := 0
	for seed := int64(0); seed < 2000; seed++ {
		set := workload.RandomTGDSet(seed, workload.RandomOptions{Rules: 3, ExistentialBias: 60})
		if !set.IsGuarded() {
			continue
		}
		opts := DecideOptions{MaxSteps: 400}
		out, err := ProbeSeeds(context.Background(), set, opts, 16)
		if err != nil || !out.Rejected {
			continue
		}
		rejected++
		if out.Method != "divergence-witness" || out.Evidence == "" || out.Depth <= 0 || out.Depth > 16 {
			t.Fatalf("seed %d: reject without an in-prefix certificate: %+v", seed, out)
		}
		v, err := Decide(set, opts)
		if err != nil {
			t.Fatalf("seed %d: Decide error: %v", seed, err)
		}
		if v.Terminates {
			t.Fatalf("seed %d: probe rejected but Decide terminates: %+v\nset:\n%v", seed, v, set)
		}
		if v.Method != out.Method || v.SeedsTried != out.SeedsTried {
			t.Errorf("seed %d: reject drifted from Decide:\nprobe  %q / seed %d\ndecide %q / seed %d",
				seed, out.Method, out.SeedsTried, v.Method, v.SeedsTried)
		}
	}
	if rejected < 10 {
		t.Fatalf("only %d rejecting probes exercised; generator too narrow", rejected)
	}
}

// jointreeIsAcyclic and buildFragment adapt package internals for the
// property tests.
func jointreeIsAcyclic(atoms []logic.Atom) bool {
	return jointree.IsAcyclic(atoms)
}

func buildFragment(db *instance.Database, set *tgds.Set) *ochase.Graph {
	return ochase.Build(db, set, ochase.BuildOptions{MaxNodes: 300, MaxDepth: 5})
}
