package guarded

import (
	"bytes"
	"context"
	"testing"
	"time"

	"airct/internal/chase"
	"airct/internal/parser"
	"airct/internal/tgds"
)

// swapIntroSet terminates on every database yet is not weakly acyclic — the
// shape where a k-round probe genuinely earns its keep.
func swapIntroSet(t *testing.T) *tgds.Set {
	t.Helper()
	set, err := parser.ParseTGDs(`
		T(X,Y) -> T(X,W).
		T(X,Y) -> T(Y,X).
	`)
	if err != nil {
		t.Fatal(err)
	}
	return set
}

func TestProbeDecidesSwapIntroAndPinsDecide(t *testing.T) {
	set := swapIntroSet(t)
	opts := DecideOptions{MaxSteps: 2000}
	out, err := ProbeSeeds(context.Background(), set, opts, 64)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Decided {
		t.Fatalf("probe undecided: %+v", out)
	}
	if out.WeaklyAcyclic {
		t.Fatal("swap-intro must not be weakly acyclic")
	}
	if out.Saturated != out.Seeds || out.Seeds == 0 {
		t.Errorf("probe outcome inconsistent: %+v", out)
	}
	// The probe's promise: the full procedure returns the identical
	// terminating seed-exhaustion verdict.
	v, err := Decide(set, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Terminates || v.Method != "seed-exhaustion" {
		t.Errorf("Decide contradicts a decisive probe: %+v", v)
	}
}

// TestProbeRejectsDivergingSetAndPinsDecide pins the rejecting fast path: a
// pump surfaced on the k-prefix decides Diverges at probe cost, and the
// full procedure at a 125× larger budget reaches the same conclusion
// through the same lemma on the same seed — method and seed position
// agree; only the pump pair quoted in the evidence may differ with the
// prefix length mined.
func TestProbeRejectsDivergingSetAndPinsDecide(t *testing.T) {
	set, err := parser.ParseTGDs(`
		S(X) -> R(X,Y).
		R(X,Y) -> S(Y).
	`)
	if err != nil {
		t.Fatal(err)
	}
	opts := DecideOptions{MaxSteps: 2000}
	out, err := ProbeSeeds(context.Background(), set, opts, 16)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Decided || !out.Rejected {
		t.Fatalf("probe did not reject a diverging set: %+v", out)
	}
	if out.Method != "divergence-witness" || out.Evidence == "" {
		t.Fatalf("rejecting probe without a certificate: %+v", out)
	}
	if out.Depth <= 0 || out.Depth > 16 {
		t.Errorf("pump depth %d outside the probe's own prefix (k=16)", out.Depth)
	}
	v, err := Decide(set, opts)
	if err != nil {
		t.Fatal(err)
	}
	if v.Terminates {
		t.Fatalf("Decide terminates on a set the probe rejected: %+v", v)
	}
	if v.Method != out.Method || v.SeedsTried != out.SeedsTried {
		t.Errorf("rejecting probe drifted from Decide:\nprobe  method=%q seeds=%d\ndecide method=%q seeds=%d",
			out.Method, out.SeedsTried, v.Method, v.SeedsTried)
	}
	if v.Evidence == "" {
		t.Errorf("Decide's divergence verdict carries no certificate: %+v", v)
	}
}

// TestProbeAcceptOnlyRestoresOldBehaviour pins the baseline toggle: with
// ProbeAcceptOnly set, a diverging set leaves the probe undecided exactly as
// the pre-reject cascade did.
func TestProbeAcceptOnlyRestoresOldBehaviour(t *testing.T) {
	set, err := parser.ParseTGDs(`
		S(X) -> R(X,Y).
		R(X,Y) -> S(Y).
	`)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ProbeSeeds(context.Background(), set, DecideOptions{MaxSteps: 2000, ProbeAcceptOnly: true}, 16)
	if err != nil {
		t.Fatal(err)
	}
	if out.Decided || out.Rejected {
		t.Fatalf("accept-only probe decided a diverging set: %+v", out)
	}
	if out.Saturated >= out.Seeds && out.Seeds > 0 {
		t.Errorf("undecided probe with a fully saturated pool: %+v", out)
	}
}

func TestProbeShortCircuitsWeakAcyclicity(t *testing.T) {
	set, err := parser.ParseTGDs(`A(X) -> R(X,Y).`)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ProbeSeeds(context.Background(), set, DecideOptions{}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Decided || !out.WeaklyAcyclic {
		t.Errorf("weakly acyclic set not short-circuited: %+v", out)
	}
}

func TestProbeRejectsNonGuarded(t *testing.T) {
	set, err := parser.ParseTGDs(`E(X,Y), E(Y,Z) -> E(X,Z).`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ProbeSeeds(context.Background(), set, DecideOptions{}, 8); err == nil {
		t.Fatal("non-guarded set accepted")
	}
}

// TestProbeWarmsDecideCache pins the probe→Decide handoff: after a decisive
// probe stored its saturated outcomes at the full budget, Decide on the
// same cache chases nothing.
func TestProbeWarmsDecideCache(t *testing.T) {
	set := swapIntroSet(t)
	cache := chase.NewCache()
	opts := DecideOptions{MaxSteps: 2000, Cache: cache}
	out, err := ProbeSeeds(context.Background(), set, opts, 64)
	if err != nil || !out.Decided {
		t.Fatalf("probe: %+v, %v", out, err)
	}
	before := cache.Stats()
	v, err := Decide(set, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Terminates {
		t.Fatalf("warm Decide verdict: %+v", v)
	}
	after := cache.Stats()
	if after.Hits <= before.Hits {
		t.Error("Decide after a decisive probe recorded no cache hits")
	}
}

func TestDecideContextCancelStopsPromptly(t *testing.T) {
	// The guarded ladder diverges; at a 50M-step budget an uncancelled
	// battery would chase for minutes. The racer contract is that a
	// cancelled Decide returns ctx's error within its check interval.
	set, err := parser.ParseTGDs(`
		G1(X,Y), S(X) -> G2(Y,Z).
		G1(X,Y) -> S(Y).
		G2(X,Y), S(X) -> G1(Y,Z).
		G2(X,Y) -> S(Y).
	`)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	v, err := DecideContext(ctx, set, DecideOptions{MaxSteps: 50_000_000, Workers: 2})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatalf("cancelled Decide returned a verdict: %+v", v)
	}
	if err != context.Canceled {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if elapsed > 5*time.Second {
		t.Errorf("cancelled Decide took %v", elapsed)
	}
}

func TestProbeCancelled(t *testing.T) {
	set := swapIntroSet(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ProbeSeeds(ctx, set, DecideOptions{}, 64); err != context.Canceled {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

// TestProbeWarmReplayKeepsRejectDiagnostics pins ROADMAP 2d: a rejecting
// probe's pump depth is persisted through the seed-outcome ledger, so a
// warm replay — same cache, or a snapshot-restored one — reports the
// byte-identical ProbeOutcome, Depth included. Pre-PR the warm path rebuilt
// the verdict without PumpDepth, and the warm Depth degraded to the
// truncated run's length instead of the certificate's shortest prefix.
func TestProbeWarmReplayKeepsRejectDiagnostics(t *testing.T) {
	set, err := parser.ParseTGDs(`
		S(X) -> R(X,Y).
		R(X,Y) -> S(Y).
	`)
	if err != nil {
		t.Fatal(err)
	}
	cache := chase.NewCache()
	opts := DecideOptions{MaxSteps: 2000, Cache: cache}
	cold, err := ProbeSeeds(context.Background(), set, opts, 16)
	if err != nil || !cold.Rejected {
		t.Fatalf("cold probe did not reject: %+v, %v", cold, err)
	}
	if cold.Depth >= cold.ProbeSteps {
		// The fixture must have a pump shorter than the truncated run, or
		// the test cannot tell the certificate depth from the run length.
		t.Fatalf("fixture is not discriminating: pump depth %d = probe budget %d", cold.Depth, cold.ProbeSteps)
	}
	warm, err := ProbeSeeds(context.Background(), set, opts, 16)
	if err != nil {
		t.Fatal(err)
	}
	if warm != cold {
		t.Errorf("warm probe drifted from cold:\ncold %+v\nwarm %+v", cold, warm)
	}
	var buf bytes.Buffer
	if err := cache.Snapshot(&buf); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	restored, _, err := chase.LoadCache(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("LoadCache: %v", err)
	}
	snap, err := ProbeSeeds(context.Background(), set, DecideOptions{MaxSteps: 2000, Cache: restored}, 16)
	if err != nil {
		t.Fatal(err)
	}
	if snap != cold {
		t.Errorf("snapshot-warmed probe drifted from cold:\ncold %+v\nsnap %+v", cold, snap)
	}
}
