package guarded

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"airct/internal/acyclicity"
	"airct/internal/chase"
	"airct/internal/etypes"
	"airct/internal/instance"
	"airct/internal/logic"
	"airct/internal/ochase"
	"airct/internal/tgds"
)

// Verdict is the outcome of the CT^res_∀∀(G) decision.
type Verdict struct {
	// Terminates is true when every restricted chase derivation of every
	// database terminates (w.r.t. the procedure's bound; see Method).
	Terminates bool
	// Method names the deciding argument: "weak-acyclicity" (sound proof),
	// "divergence-witness" (sound refutation: a concrete database and a
	// pumpable derivation), or "seed-exhaustion" (bounded claim: every
	// seed database chased quietly to fixpoint).
	Method string
	// Witness is the diverging seed database when Terminates is false.
	Witness *instance.Database
	// Evidence describes the divergence certificate (guard-chain pump).
	Evidence string
	// PumpDepth is, on a "divergence-witness" verdict, the length of the
	// shortest run prefix that already carries the certificate — the later
	// step of the repeated signature pair, 1-based. The certificate is
	// budget-independent: any chase of this seed under the same order that
	// runs at least PumpDepth steps surfaces it. Persisted through the
	// seed-outcome ledger, so a cache replay reports the cold run's depth;
	// zero only when the verdict carries no pump ("budget-exhausted").
	PumpDepth int
	// SeedsTried counts candidate databases examined.
	SeedsTried int
	// Budget is the per-seed step budget used.
	Budget int
}

// DecideOptions configures the decision procedure.
type DecideOptions struct {
	// MaxSteps is the per-seed restricted-chase budget (0: 2000).
	MaxSteps int
	// MaxSeeds caps the candidate databases (0: 256).
	MaxSeeds int
	// ExtraSeeds adds caller-provided databases to the pool.
	ExtraSeeds []*instance.Database
	// Workers bounds the worker pool chasing seed databases (the per-seed
	// chases are independent: each run owns its instance and interner).
	// 0 uses GOMAXPROCS; 1 scans sequentially. The verdict — including
	// Witness, Evidence and SeedsTried — is deterministic regardless of
	// worker count: outcomes are combined in canonical seed order.
	Workers int
	// Cache, when set, memoises the per-seed chase batteries (and the
	// generated seed pools and the engine's initial trigger queues) across
	// Decide calls on (TGD-set fingerprint, seed fingerprint) keys — see
	// internal/chase/cache.go. Verdicts are bit-identical with and without
	// a cache, and across cold and warm caches. Safe to share one cache
	// across concurrent Decide calls and across the seed worker pool.
	Cache *chase.Cache
	// ProbeAcceptOnly restricts ProbeSeeds to its accept-only behaviour:
	// a probe never rejects, a pump surfaced at budget k only routes the
	// input onward. The zero value enables the rejecting fast path (a
	// pump on a seed's k-prefix is a budget-independent divergence
	// certificate and decides outright — see ProbeSeeds). The toggle
	// exists so benchmarks can reproduce the pre-reject cascade as a
	// baseline; it does not affect Decide itself.
	ProbeAcceptOnly bool
}

func (o DecideOptions) maxSteps() int {
	if o.MaxSteps <= 0 {
		return 2000
	}
	return o.MaxSteps
}

func (o DecideOptions) maxSeeds() int {
	if o.MaxSeeds <= 0 {
		return 256
	}
	return o.MaxSeeds
}

func (o DecideOptions) workers() int {
	if o.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Workers
}

// Decide decides CT^res_∀∀(G) for a single-head guarded set.
//
// The paper reduces the complement to MSOL satisfiability over infinite
// trees (Theorem 5.1); per DESIGN.md §3 this implementation replaces the
// MSOL step with a bounded certificate search over the same objects:
//
//  1. weak acyclicity proves termination outright;
//  2. otherwise, seed databases are generated from the TGD bodies —
//     canonical (frozen) bodies under every variable unification, plus the
//     Treeification expansions of Appendix C.2, which supply the remote
//     side atoms that Example 5.6 shows are necessary;
//  3. each seed is chased (restricted, fair FIFO order plus perturbed
//     orders); a budget-exhausted run is mined for a guard-chain pump — a
//     repeated (TGD, equality-type, guard-sharing) signature along a
//     guard-ancestor chain — which certifies divergence by the
//     finite-alphabet regularity of Λ_T;
//  4. if every seed saturates, the set is declared terminating.
func Decide(set *tgds.Set, opts DecideOptions) (*Verdict, error) {
	return DecideContext(context.Background(), set, opts)
}

// DecideContext is Decide under a context: the per-seed chase batteries run
// on chase.RunChaseContext (cancellation observed every few dozen trigger
// pops) and the seed scan — sequential or pooled — stops claiming seeds once
// the context fires. A cancelled call returns ctx's error; no partial
// battery outcome is interpreted or cached. Uncancelled calls behave
// identically to Decide.
func DecideContext(ctx context.Context, set *tgds.Set, opts DecideOptions) (*Verdict, error) {
	if !set.IsGuarded() {
		return nil, fmt.Errorf("guarded: Decide requires a single-head guarded set")
	}
	if acyclicity.IsWeaklyAcyclic(set) {
		return &Verdict{Terminates: true, Method: "weak-acyclicity"}, nil
	}
	budget := opts.maxSteps()
	seeds := generateSeedsCached(set, opts.maxSeeds(), opts.Cache)
	seeds = append(seeds, opts.ExtraSeeds...)
	outcomes, err := chaseSeedsContext(ctx, set, seeds, budget, opts.workers(), opts.Cache)
	if err != nil {
		return nil, err
	}
	for i, v := range outcomes {
		if v == nil {
			continue // seed chased quietly to fixpoint under every order
		}
		v.SeedsTried = i + 1
		v.Budget = budget
		return v, nil
	}
	return &Verdict{
		Terminates: true,
		Method:     "seed-exhaustion",
		SeedsTried: len(seeds),
		Budget:     budget,
	}, nil
}

// chaseSeed runs one seed's bounded restricted chases (fair FIFO plus
// perturbed orders) and returns a divergence verdict, or nil when every
// order saturated quietly, plus the battery's saturation depth — the
// deepest chase among the orders on a saturating seed, or the diverging
// run's step count. SeedsTried and Budget are filled by the caller. With a
// cache, the battery outcome is keyed by (set fingerprint, seed
// fingerprint, budget): a hit rebuilds the verdict around the caller's own
// seed database without chasing and replays the recorded depth; the three
// chase orders of a miss share the engine-level seed-index entries through
// chase.Options.Cache.
func chaseSeed(ctx context.Context, set *tgds.Set, seed *instance.Database, budget int, cache *chase.Cache, setFP, seedFP logic.Fingerprint) (*Verdict, int) {
	if cache != nil {
		if o, ok := cache.LookupSeedOutcome(setFP, seedFP, budget); ok {
			if !o.Diverges {
				return nil, o.Steps
			}
			return &Verdict{Terminates: false, Method: o.Method, Witness: seed, Evidence: o.Evidence, PumpDepth: o.PumpDepth}, o.Steps
		}
	}
	v, steps := chaseSeedBattery(ctx, set, seed, budget, cache)
	if v == cancelledVerdict {
		// A cancelled battery proves nothing; never cache it.
		return v, steps
	}
	if cache != nil {
		o := chase.SeedOutcome{Steps: steps}
		if v != nil {
			o = chase.SeedOutcome{Diverges: true, Method: v.Method, Evidence: v.Evidence, Steps: steps, PumpDepth: v.PumpDepth}
		}
		cache.StoreSeedOutcome(setFP, seedFP, budget, o)
	}
	return v, steps
}

// cancelledVerdict is the in-package sentinel a battery returns when its
// context fired mid-chase: callers translate it to ctx.Err() and must never
// cache or interpret it.
var cancelledVerdict = &Verdict{Method: "cancelled"}

// chaseSeedBattery is the uncached battery: fair FIFO, then a perturbed
// Random order, then LIFO. The returned depth is the deepest chase among
// the orders (the diverging run's step count when an order diverged).
func chaseSeedBattery(ctx context.Context, set *tgds.Set, seed *instance.Database, budget int, cache *chase.Cache) (*Verdict, int) {
	depth := 0
	for _, o := range []chase.Options{
		{Variant: chase.Restricted, Strategy: chase.FIFO, MaxSteps: budget, Cache: cache},
		{Variant: chase.Restricted, Strategy: chase.Random, Seed: 1, MaxSteps: budget, Cache: cache},
		{Variant: chase.Restricted, Strategy: chase.LIFO, MaxSteps: budget, Cache: cache},
	} {
		run := chase.RunChaseContext(ctx, seed, set, o)
		if run.Reason == chase.Cancelled {
			return cancelledVerdict, depth
		}
		if run.StepsTaken > depth {
			depth = run.StepsTaken
		}
		if run.Terminated() {
			continue
		}
		if ev, depth, ok := DivergencePump(run); ok {
			return &Verdict{
				Terminates: false,
				Method:     "divergence-witness",
				Witness:    seed,
				Evidence:   ev,
				PumpDepth:  depth,
			}, run.StepsTaken
		}
		// Budget exhausted without a pump: report divergence with weaker
		// evidence rather than silently claiming termination.
		return &Verdict{
			Terminates: false,
			Method:     "budget-exhausted",
			Witness:    seed,
			Evidence:   fmt.Sprintf("no fixpoint after %d steps (no pump found)", budget),
		}, run.StepsTaken
	}
	return nil, depth
}

// chaseSeedsContext computes every seed's outcome on a bounded worker pool. The
// per-seed chases are independent (each RunChase clones the seed into a
// fresh instance with its own interner), so the pool may finish them in any
// order; Decide then combines outcomes in canonical seed order, which keeps
// the verdict bit-identical to a sequential scan. Seeds are claimed in
// ascending index order and a worker stops once every remaining index lies
// beyond the lowest diverging index found so far — those outcomes cannot
// affect the combined verdict.
//
// Seeds are deduplicated by exact content fingerprint before chasing:
// GenerateSeeds dedups isomorphism-insensitively within its own pool, but
// ExtraSeeds and treeification can repeat exact databases, and within one
// pool the cross-run cache cannot hit (every fingerprint is new there).
// Each distinct fingerprint is chased once; a duplicate's outcome slot is
// simply left nil, which cannot change the combined verdict — its
// representative sits at a strictly earlier index with the identical
// outcome (the engine's trigger order is canonical in term content), so
// Decide's first-non-nil scan never reaches the duplicate.
func chaseSeedsContext(ctx context.Context, set *tgds.Set, seeds []*instance.Database, budget, workers int, cache *chase.Cache) ([]*Verdict, error) {
	out := make([]*Verdict, len(seeds))
	fps := make([]logic.Fingerprint, len(seeds))
	first := make(map[logic.Fingerprint]struct{}, len(seeds))
	uniq := make([]int, 0, len(seeds))
	for i, s := range seeds {
		fps[i] = logic.FingerprintAtoms(s.Atoms())
		if _, dup := first[fps[i]]; !dup {
			first[fps[i]] = struct{}{}
			uniq = append(uniq, i)
		}
	}
	var setFP logic.Fingerprint
	if cache != nil {
		setFP = set.Fingerprint()
	}
	chaseOne := func(i int) *Verdict {
		v, _ := chaseSeed(ctx, set, seeds[i], budget, cache, setFP, fps[i])
		return v
	}
	if workers > len(uniq) {
		workers = len(uniq)
	}
	if workers <= 1 {
		for _, i := range uniq {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			out[i] = chaseOne(i)
			if out[i] == cancelledVerdict {
				return nil, ctx.Err()
			}
			if out[i] != nil {
				break
			}
		}
	} else {
		var next atomic.Int64
		var best atomic.Int64 // lowest diverging seed index found so far
		best.Store(int64(len(seeds)))
		var cancelled atomic.Bool
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					if ctx.Err() != nil {
						cancelled.Store(true)
						return
					}
					u := int(next.Add(1) - 1)
					if u >= len(uniq) || int64(uniq[u]) > best.Load() {
						return
					}
					i := uniq[u]
					if v := chaseOne(i); v != nil {
						if v == cancelledVerdict {
							cancelled.Store(true)
							return
						}
						out[i] = v
						for {
							b := best.Load()
							if int64(i) >= b || best.CompareAndSwap(b, int64(i)) {
								break
							}
						}
					}
				}
			}()
		}
		wg.Wait()
		if cancelled.Load() {
			return nil, ctx.Err()
		}
	}
	return out, nil
}

// cachedSeedPool rebuilds the cross-run cached seed pool for (set
// fingerprint, pool cap): fresh Database values from the stored atoms in
// the stored order, reproducing the generated pool exactly.
func cachedSeedPool(setFP logic.Fingerprint, maxSeeds int, cache *chase.Cache) ([]*instance.Database, bool) {
	pool, ok := cache.LookupSeedPool(setFP, maxSeeds)
	if !ok {
		return nil, false
	}
	out := make([]*instance.Database, len(pool.Seeds))
	for i, atoms := range pool.Seeds {
		db := instance.NewDatabase()
		for _, a := range atoms {
			if err := db.Add(a); err != nil {
				// Cached pools are GenerateSeeds output: ground atoms a
				// Database already accepted once.
				panic(err)
			}
		}
		out[i] = db
	}
	return out, true
}

// storeSeedPool records a fully generated pool in the cross-run cache.
func storeSeedPool(setFP logic.Fingerprint, maxSeeds int, cache *chase.Cache, seeds []*instance.Database) {
	pool := &chase.SeedPool{Seeds: make([][]logic.Atom, len(seeds))}
	for i, db := range seeds {
		pool.Seeds[i] = append([]logic.Atom(nil), db.Atoms()...)
	}
	cache.StoreSeedPool(setFP, maxSeeds, pool)
}

// generateSeedsCached wraps GenerateSeeds with the cross-run seed-pool
// cache: generation — including the oblivious-chase treeification
// expansions, the expensive part — runs once per (set fingerprint, pool
// cap).
func generateSeedsCached(set *tgds.Set, maxSeeds int, cache *chase.Cache) []*instance.Database {
	if cache == nil {
		return GenerateSeeds(set, maxSeeds)
	}
	setFP := set.Fingerprint()
	if pool, ok := cachedSeedPool(setFP, maxSeeds, cache); ok {
		return pool
	}
	seeds := GenerateSeeds(set, maxSeeds)
	storeSeedPool(setFP, maxSeeds, cache, seeds)
	return seeds
}

// seedEnum enumerates the GenerateSeeds pool incrementally, in exactly
// GenerateSeeds' order: first every frozen body of every TGD under every
// unification of its body variables (the canonical databases, refined by
// equality type), then the Treeification expansions computed from
// real-oblivious-chase fragments of those base seeds (Appendix C.2's
// remote-side-parent service). The cheap canonical phase runs eagerly at
// construction; each treeification expansion — the expensive part — is
// built only when the consumer asks for the next seed, so a sweep that
// stops early (the probe deciding on, or stopped by, an early seed) never
// pays for the bases it does not reach.
type seedEnum struct {
	set      *tgds.Set
	maxSeeds int
	seen     map[logic.Fingerprint]bool
	pool     []*instance.Database
	nbase    int // phase-one prefix length: the treeification bases
	base     int // next base to expand
	next     int // next pool index to yield
}

func newSeedEnum(set *tgds.Set, maxSeeds int) *seedEnum {
	e := &seedEnum{set: set, maxSeeds: maxSeeds, seen: make(map[logic.Fingerprint]bool)}
	namer := logic.NewFreshNamer("s")
	for _, t := range set.TGDs {
		for _, unified := range unifications(t.Body) {
			frozen, _ := logic.CanonicalFreeze(unified, namer)
			db := instance.NewDatabase()
			okAll := true
			for _, a := range frozen {
				if err := db.Add(a); err != nil {
					okAll = false
					break
				}
			}
			if okAll {
				e.add(db)
			}
		}
	}
	e.nbase = len(e.pool)
	return e
}

func (e *seedEnum) add(db *instance.Database) {
	if len(e.pool) >= e.maxSeeds {
		return
	}
	// Isomorphism-insensitive dedup: canonicalise, then take the
	// order-independent set fingerprint — no key strings rendered or
	// sorted. canonicalizeAtoms renames injectively, so the canonical
	// slice is duplicate-free as FingerprintAtoms requires.
	key := logic.FingerprintAtoms(canonicalizeAtoms(db.Atoms()))
	if e.seen[key] {
		return
	}
	e.seen[key] = true
	e.pool = append(e.pool, db)
}

// Next yields the pool's next seed, expanding treeifications on demand.
func (e *seedEnum) Next() (*instance.Database, bool) {
	for e.next >= len(e.pool) {
		if e.base >= e.nbase || len(e.pool) >= e.maxSeeds {
			return nil, false
		}
		seed := e.pool[e.base]
		e.base++
		g := ochase.Build(seed, e.set, ochase.BuildOptions{MaxNodes: 600, MaxDepth: 6})
		tr, err := Treeify(g, TreeifyOptions{IncludeDirect: true})
		if err != nil {
			continue
		}
		e.add(tr.Database())
	}
	db := e.pool[e.next]
	e.next++
	return db, true
}

// drained reports whether the enumeration ran to completion, i.e. the pool
// slice now equals GenerateSeeds' output.
func (e *seedEnum) drained() bool {
	return e.next >= len(e.pool) && (e.base >= e.nbase || len(e.pool) >= e.maxSeeds)
}

// GenerateSeeds produces candidate databases for the search — see seedEnum
// for the enumeration order.
func GenerateSeeds(set *tgds.Set, maxSeeds int) []*instance.Database {
	e := newSeedEnum(set, maxSeeds)
	for {
		if _, ok := e.Next(); !ok {
			return e.pool
		}
	}
}

// canonicalizeAtoms renames constants by first occurrence so seed dedup is
// isomorphism-insensitive.
func canonicalizeAtoms(atoms []logic.Atom) []logic.Atom {
	logic.SortAtoms(atoms)
	ren := make(map[logic.Term]logic.Term)
	next := 0
	out := make([]logic.Atom, len(atoms))
	for i, a := range atoms {
		args := make([]logic.Term, len(a.Args))
		for j, t := range a.Args {
			r, ok := ren[t]
			if !ok {
				r = logic.Const(fmt.Sprintf("k%d", next))
				next++
				ren[t] = r
			}
			args[j] = r
		}
		out[i] = logic.NewAtom(a.Pred, args...)
	}
	return out
}

// unifications enumerates the images of the body under every partition of
// its variables (capped to keep Bell growth sane: bodies with more than 5
// variables only get the identity partition).
func unifications(body []logic.Atom) [][]logic.Atom {
	vars := logic.VarsOf(body).Sorted()
	if len(vars) > 5 {
		return [][]logic.Atom{body}
	}
	var out [][]logic.Atom
	for _, e := range etypes.AllForPredicate(logic.Pred("partition", len(vars))) {
		sub := logic.NewSubstitution()
		for i, v := range vars {
			rep := vars[e.ClassOf(i+1)-1]
			if rep != v {
				sub.Bind(v, rep)
			}
		}
		out = append(out, sub.ApplyAtoms(body))
	}
	return out
}

// DivergenceEvidence mines a budget-exhausted restricted chase run for a
// guard-chain pump, discarding the pump depth DivergencePump also reports.
func DivergenceEvidence(run *chase.Run) (string, bool) {
	ev, _, ok := DivergencePump(run)
	return ev, ok
}

// DivergencePump mines a restricted chase run for a guard-chain pump: two
// steps on the same guard-ancestor chain whose produced atoms share the
// (TGD, equality type, guard-sharing pattern) signature, with the later
// atom introducing fresh nulls. Over the finite alphabet Λ_T such a
// repetition witnesses an infinite regular chaseable abstract join tree,
// i.e. genuine divergence. The returned depth is the 1-based index of the
// later step of the repeated pair: the certificate lives entirely in the
// run's depth-step prefix, so it is independent of the budget the run was
// chased under — a pump found on a k-step probe prefix is the same witness
// a full-budget chase of the same order would surface.
func DivergencePump(run *chase.Run) (string, int, bool) {
	type info struct {
		step     int
		parentFP logic.Fingerprint // guard image atom hash
		sig      string
		fresh    bool // produced atom invents a null at this step
	}
	infos := make([]info, len(run.Steps))
	producedBy := make(map[logic.Fingerprint]int) // atom hash -> producing step
	for i, step := range run.Steps {
		tr := step.Trigger
		guard, ok := tr.TGD.Guard()
		if !ok {
			return "", 0, false
		}
		guardImage := guard.Apply(tr.H)
		produced := step.Result[0]
		infos[i] = info{
			step:     i,
			parentFP: logic.HashAtom(guardImage),
			sig:      stepSignature(tr.TGDIndex, produced, guardImage),
			fresh:    introducesFreshNull(produced, guardImage),
		}
		for _, a := range step.Added {
			h := logic.HashAtom(a)
			if _, dup := producedBy[h]; !dup {
				producedBy[h] = i
			}
		}
	}
	// Walk guard chains from each step upward, looking for a repeated
	// signature whose steps invent fresh nulls — a repetition of a
	// null-free signature cannot grow the term set and is no pump (a
	// terminating cycle closed by a frontier-free existential TGD would
	// otherwise be misread as divergence).
	for i := len(run.Steps) - 1; i >= 0; i-- {
		seenSigs := map[string]int{infos[i].sig: i}
		cur := i
		for {
			parentStep, ok := producedBy[infos[cur].parentFP]
			if !ok || parentStep >= cur {
				break
			}
			if first, dup := seenSigs[infos[parentStep].sig]; dup && infos[parentStep].fresh && infos[first].fresh {
				tr := run.Steps[parentStep].Trigger
				return fmt.Sprintf("guard-chain pump: %s repeats signature between steps %d and %d (period %d)",
					tr.TGD.Label, parentStep, first, first-parentStep), first + 1, true
			}
			if _, dup := seenSigs[infos[parentStep].sig]; !dup {
				seenSigs[infos[parentStep].sig] = parentStep
			}
			cur = parentStep
		}
	}
	return "", 0, false
}

// introducesFreshNull reports whether the produced atom carries a null that
// does not occur in its guard image. In a guarded TGD the guard contains
// every body variable, so every propagated term of the result appears among
// the guard image's arguments — a null absent from them was invented by
// this very step.
func introducesFreshNull(produced, guardImage logic.Atom) bool {
	for _, t := range produced.Args {
		if !t.IsNull() {
			continue
		}
		inGuard := false
		for _, u := range guardImage.Args {
			if t == u {
				inGuard = true
				break
			}
		}
		if !inGuard {
			return true
		}
	}
	return false
}

// stepSignature abstracts a produced atom to its Λ_T letter: the TGD, the
// atom's equality type, and which positions it shares with its guard image.
func stepSignature(tgdIndex int, produced, guardImage logic.Atom) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d|%s|", tgdIndex, etypes.Of(produced).Key())
	for i, t := range produced.Args {
		for j, u := range guardImage.Args {
			if t == u {
				fmt.Fprintf(&b, "%d=%d,", i, j)
			}
		}
	}
	return b.String()
}
