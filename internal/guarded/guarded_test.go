package guarded

import (
	"strings"
	"testing"

	"airct/internal/chase"
	"airct/internal/logic"
	"airct/internal/ochase"
	"airct/internal/parser"
)

// example56 is Example 5.6 of the paper: the naive critical database fails
// because of remote side-parents.
const example56 = `
	R(a,b). S(b,c).
	s1: S(X,Y) -> T(X).
	s2: R(X,Y), T(Y) -> P(X,Y).
	s3: P(X,Y) -> P(Y,Z).
`

func TestSideatomTypes(t *testing.T) {
	// α = P(a,b,c) is a π-sideatom of γ = R(a,d,c,b) with
	// π = ⟨P,4,{1→1,2→4,3→3}⟩ (the paper's running example).
	alpha := logic.MustAtom("P", logic.Const("a"), logic.Const("b"), logic.Const("cc"))
	gamma := logic.MustAtom("R", logic.Const("a"), logic.Const("d"), logic.Const("cc"), logic.Const("b"))
	pi, err := NewSideatomType(logic.Pred("P", 3), 4, []int{1, 4, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !pi.IsSideatom(alpha, gamma) {
		t.Error("paper example must hold")
	}
	other := logic.MustAtom("P", logic.Const("a"), logic.Const("b"), logic.Const("zz"))
	if pi.IsSideatom(other, gamma) {
		t.Error("mismatched term must fail")
	}
	got, ok := TypeOf(alpha, gamma)
	if !ok || got.Key() != pi.Key() {
		t.Errorf("TypeOf = %v, want %v", got, pi)
	}
	if _, ok := TypeOf(logic.MustAtom("P", logic.Const("q")), gamma); ok {
		t.Error("term absent from guard must fail")
	}
}

func TestNewSideatomTypeValidation(t *testing.T) {
	if _, err := NewSideatomType(logic.Pred("P", 2), 3, []int{1}); err == nil {
		t.Error("length mismatch must fail")
	}
	if _, err := NewSideatomType(logic.Pred("P", 1), 3, []int{4}); err == nil {
		t.Error("out-of-range ξ must fail")
	}
}

func TestBodyTypes(t *testing.T) {
	prog := parser.MustParse(`R(X,Y), T(Y) -> P(X,Y).`)
	tgd := prog.TGDs.TGDs[0]
	guard, _ := tgd.Guard()
	types, ok := BodyTypes(guard, tgd.SideAtoms())
	if !ok || len(types) != 1 {
		t.Fatalf("BodyTypes = %v, %v", types, ok)
	}
	if types[0].Pred.Name != "T" || types[0].Xi[0] != 2 {
		t.Errorf("T is at guard position 2: %v", types[0])
	}
}

func TestExample56Treeification(t *testing.T) {
	prog := parser.MustParse(example56)
	g := ochase.Build(prog.Database, prog.TGDs, ochase.BuildOptions{MaxNodes: 400, MaxDepth: 8})
	tr, err := Treeify(g, TreeifyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// α∞ is R(a,b): its guard subtree carries the infinite P-chain.
	if tr.AlphaInf.Pred.Name != "R" {
		t.Errorf("α∞ = %v, want the R atom", tr.AlphaInf)
	}
	// R(a,b) longs for S(b,c).
	rKey := logic.MustAtom("R", logic.Const("a"), logic.Const("b")).Key()
	sKey := logic.MustAtom("S", logic.Const("b"), logic.Const("c")).Key()
	found := false
	for _, target := range tr.LongsFor[rKey] {
		if target == sKey {
			found = true
		}
	}
	if !found {
		t.Errorf("LongsFor = %v, want R↝S", tr.LongsFor)
	}
	if len(tr.Situations) == 0 {
		t.Error("remote-side-parent situation expected")
	}
	// D_ac contains the root copy of R(a,b) plus an S-copy sharing b.
	if len(tr.Dac) < 2 {
		t.Fatalf("Dac = %v", tr.Dac)
	}
	if !tr.Dac[0].Equal(tr.AlphaInf) {
		t.Error("root label is α∞ verbatim")
	}
	var sCopy *logic.Atom
	for i := range tr.Dac {
		if tr.Dac[i].Pred.Name == "S" {
			sCopy = &tr.Dac[i]
		}
	}
	if sCopy == nil {
		t.Fatal("S-copy missing from Dac")
	}
	if sCopy.Args[0] != logic.Const("b") {
		t.Errorf("S-copy must share b with the root: %v", *sCopy)
	}
	if sCopy.Args[1] == logic.Const("c") {
		t.Errorf("S-copy's second term must be fresh: %v", *sCopy)
	}
}

func TestExample56DacReproducesDivergence(t *testing.T) {
	// The whole point of Treeification: D_ac is acyclic and diverges, while
	// {R(a,b)} alone terminates.
	prog := parser.MustParse(example56)
	g := ochase.Build(prog.Database, prog.TGDs, ochase.BuildOptions{MaxNodes: 400, MaxDepth: 8})
	tr, err := Treeify(g, TreeifyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	dac := tr.Database()
	run := chase.RunChase(dac, prog.TGDs, chase.Options{Variant: chase.Restricted, MaxSteps: 100})
	if run.Terminated() {
		t.Errorf("D_ac = %v must diverge", dac)
	}
	// The naive database {R(a,b)} terminates (Example 5.6's observation).
	naive, _ := parser.Parse(`R(a,b).` + `
		s1: S(X,Y) -> T(X).
		s2: R(X,Y), T(Y) -> P(X,Y).
		s3: P(X,Y) -> P(Y,Z).
	`)
	naiveRun := chase.RunChase(naive.Database, naive.TGDs, chase.Options{Variant: chase.Restricted, MaxSteps: 100})
	if !naiveRun.Terminated() || naiveRun.StepsTaken != 0 {
		t.Error("no trigger is active on {R(a,b)}")
	}
}

func TestTreeifyRejectsUnguarded(t *testing.T) {
	prog := parser.MustParse(`
		R(a,b). P(b,c).
		u: R(X,Y), P(Y,Z) -> T(X,Z).
	`)
	g := ochase.Build(prog.Database, prog.TGDs, ochase.BuildOptions{MaxNodes: 50})
	if _, err := Treeify(g, TreeifyOptions{}); err == nil {
		t.Error("unguarded sets must be rejected")
	}
}

func TestEqRelBasics(t *testing.T) {
	e := NewEqRel(3)
	if e.Same('f', 1, 'm', 1) {
		t.Error("identity relation has no cross pairs")
	}
	e.Union('f', 1, 'm', 2)
	e.Union('m', 2, 'm', 3)
	if !e.Same('f', 1, 'm', 3) {
		t.Error("transitivity")
	}
	cl := e.Clone()
	cl.Union('f', 2, 'f', 3)
	if e.Same('f', 2, 'f', 3) {
		t.Error("Clone must be independent")
	}
	if e.Key() == cl.Key() {
		t.Error("keys must differ after divergence")
	}
	if e.Ar() != 3 {
		t.Error("Ar")
	}
}

func TestEqFromAtoms(t *testing.T) {
	father := logic.MustAtom("R", logic.Const("a"), logic.Const("b"))
	me := logic.MustAtom("P", logic.Const("b"), logic.NewNull("n"))
	e := EqFromAtoms(father, me, 3)
	if !e.Same('f', 2, 'm', 1) {
		t.Error("b is shared")
	}
	if e.Same('f', 1, 'm', 1) || e.Same('m', 1, 'm', 2) {
		t.Error("no other equalities")
	}
	// Positions beyond the atoms' arities stay singletons.
	if e.Same('f', 3, 'm', 3) {
		t.Error("padding positions are singletons")
	}
}

// asNullAtoms rewrites every term to a null of the same name, so that
// logic.Isomorphic compares structure up to renaming of all terms
// (constants included).
func asNullAtoms(atoms []logic.Atom) []logic.Atom {
	out := make([]logic.Atom, len(atoms))
	for i, a := range atoms {
		args := make([]logic.Term, len(a.Args))
		for j, t := range a.Args {
			args[j] = logic.NewNull(string(rune('0'+int(t.Kind))) + t.Name)
		}
		out[i] = logic.NewAtom(a.Pred, args...)
	}
	return out
}

func TestFromRunBuildsValidAJT(t *testing.T) {
	progs := []string{
		`P(a,b).
		 s1: P(X,Y) -> R(X,Y).
		 s3: R(X,Y) -> S(X).`,
		`R(a,b). T(b).
		 s2: R(X,Y), T(Y) -> P(X,Y).`,
	}
	for _, src := range progs {
		prog := parser.MustParse(src)
		run := chase.RunChase(prog.Database, prog.TGDs, chase.Options{Variant: chase.Restricted})
		if !run.Terminated() {
			t.Fatalf("must terminate: %q", src)
		}
		ajt, err := FromRun(run)
		if err != nil {
			t.Fatalf("FromRun(%q): %v", src, err)
		}
		if err := ajt.Validate(); err != nil {
			t.Errorf("Definition 5.8 violated for %q: %v", src, err)
		}
		// ∆(T) decodes to an instance structurally isomorphic to the run's
		// result (Lemma 5.9's isomorphism renames constants: ∆ invents its
		// own names).
		_, decoded := ajt.Decode()
		if decoded.Len() != run.Final.Len() {
			t.Errorf("decode size %d vs chase %d (%q)", decoded.Len(), run.Final.Len(), src)
		}
		if _, ok := logic.Isomorphic(asNullAtoms(decoded.Atoms()), asNullAtoms(run.Final.Atoms())); !ok {
			t.Errorf("∆(T) must be isomorphic to the chase result for %q:\n%v\nvs\n%v",
				src, decoded, run.Final)
		}
		// The F-part decodes to a database isomorphic to D (Lemma 5.9).
		if _, ok := logic.Isomorphic(asNullAtoms(ajt.DecodeF()), asNullAtoms(prog.Database.Atoms())); !ok {
			t.Errorf("∆(T|F) must be isomorphic to D for %q", src)
		}
	}
}

func TestAJTChaseableOnDerivationTrees(t *testing.T) {
	prog := parser.MustParse(`
		R(a,b). T(b).
		s2: R(X,Y), T(Y) -> P(X,Y).
		s4: P(X,Y) -> Q(X).
	`)
	run := chase.RunChase(prog.Database, prog.TGDs, chase.Options{Variant: chase.Restricted})
	ajt, err := FromRun(run)
	if err != nil {
		t.Fatal(err)
	}
	if err := ajt.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := ajt.CheckChaseable(); err != nil {
		t.Errorf("derivation-induced tree must be chaseable: %v", err)
	}
}

func TestAJTValidateCatchesViolations(t *testing.T) {
	prog := parser.MustParse(`
		S(a).
		grow: S(X) -> R(X,Y).
	`)
	run := chase.RunChase(prog.Database, prog.TGDs, chase.Options{Variant: chase.Restricted})
	ajt, err := FromRun(run)
	if err != nil {
		t.Fatal(err)
	}
	// Break condition 3: claim the step node came from a different pred.
	bad := *ajt
	bad.Nodes = append([]AJTNode(nil), ajt.Nodes...)
	node := bad.Nodes[1]
	node.Label.Pred = logic.Pred("WRONG", 2)
	bad.Nodes[1] = node
	if err := bad.Validate(); err == nil {
		t.Error("predicate mismatch must fail validation")
	}
}

func TestDecideTerminatingFamilies(t *testing.T) {
	tests := []struct {
		name   string
		src    string
		method string
	}{
		{"datalog", `A(X) -> B(X). B(X) -> C(X).`, "weak-acyclicity"},
		{"intro example", `R(X,Y) -> R(X,Z).`, "weak-acyclicity"},
		{"self-satisfying", `R(X,Y) -> R(Z,Y).`, "weak-acyclicity"},
		// Not WA (the null at (T,2) swaps back into (T,1), closing a special
		// cycle) yet in CT^res_∀∀: the existential rule is self-satisfied by
		// its own trigger atom, so only the swap rule ever fires. This is
		// the case where the restricted-chase analysis genuinely beats the
		// acyclicity baselines.
		{"swap plus intro", `T(X,Y) -> T(X,W). T(X,Y) -> T(Y,X).`, "seed-exhaustion"},
		{"linear terminating", `P(X,Y) -> R(X,Y). R(X,Y) -> S(X).`, "weak-acyclicity"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			set, err := parser.ParseTGDs(tc.src)
			if err != nil {
				t.Fatal(err)
			}
			v, err := Decide(set, DecideOptions{MaxSteps: 400})
			if err != nil {
				t.Fatal(err)
			}
			if !v.Terminates {
				t.Fatalf("must terminate; verdict %+v", v)
			}
			if v.Method != tc.method {
				t.Errorf("method = %s, want %s", v.Method, tc.method)
			}
		})
	}
}

func TestDecideDivergingFamilies(t *testing.T) {
	tests := []struct {
		name string
		src  string
	}{
		{"ladder", `S(X) -> R(X,Y). R(X,Y) -> S(Y).`},
		{"linear chain", `R(X,Y) -> R(Y,Z).`},
		{"example 5.6", `S(X,Y) -> T(X). R(X,Y), T(Y) -> P(X,Y). P(X,Y) -> P(Y,Z).`},
		{"swap cascade", `R(X,Y) -> R(Y,Z).`},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			set, err := parser.ParseTGDs(tc.src)
			if err != nil {
				t.Fatal(err)
			}
			v, err := Decide(set, DecideOptions{MaxSteps: 400})
			if err != nil {
				t.Fatal(err)
			}
			if v.Terminates {
				t.Fatalf("must diverge; verdict %+v", v)
			}
			if v.Method != "divergence-witness" {
				t.Errorf("method = %s, want divergence-witness (evidence %q)", v.Method, v.Evidence)
			}
			if v.Witness == nil || v.Witness.Len() == 0 {
				t.Error("witness database required")
			}
			if !strings.Contains(v.Evidence, "pump") {
				t.Errorf("evidence = %q", v.Evidence)
			}
			// Replay the witness: it must indeed exhaust the budget.
			run := chase.RunChase(v.Witness, set, chase.Options{Variant: chase.Restricted, MaxSteps: v.Budget})
			if run.Terminated() {
				t.Error("witness must diverge on replay")
			}
		})
	}
}

func TestDecideRejectsNonGuarded(t *testing.T) {
	set, err := parser.ParseTGDs(`R(X,Y), P(Y,Z) -> T(X,Z).`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decide(set, DecideOptions{}); err == nil {
		t.Error("unguarded input must be rejected")
	}
	multi, err := parser.ParseTGDs(`R(X,Y) -> S(X), T(Y).`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decide(multi, DecideOptions{}); err == nil {
		t.Error("multi-head input must be rejected")
	}
}

func TestGenerateSeedsCoversUnifications(t *testing.T) {
	set, err := parser.ParseTGDs(`R(X,Y) -> S(Y).`)
	if err != nil {
		t.Fatal(err)
	}
	seeds := GenerateSeeds(set, 64)
	if len(seeds) < 2 {
		t.Fatalf("want the R(x,y) and R(x,x) seeds, got %d", len(seeds))
	}
	// One seed must identify the two R positions.
	foundUnified := false
	for _, s := range seeds {
		for _, a := range s.Atoms() {
			if a.Pred.Name == "R" && a.Args[0] == a.Args[1] {
				foundUnified = true
			}
		}
	}
	if !foundUnified {
		t.Error("unified seed R(x,x) missing")
	}
}

func TestDivergenceEvidenceOnTerminatingRunIsEmpty(t *testing.T) {
	prog := parser.MustParse(`
		P(a,b).
		s1: P(X,Y) -> R(X,Y).
	`)
	run := chase.RunChase(prog.Database, prog.TGDs, chase.Options{Variant: chase.Restricted})
	if ev, ok := DivergenceEvidence(run); ok {
		t.Errorf("no pump on a 1-step run: %q", ev)
	}
}

// TestDecideDeterministicAcrossWorkerCounts pins the seed-pool
// parallelisation: the verdict — method, evidence, witness rendering and
// SeedsTried — must be bit-identical no matter how many workers chase the
// (independent) seeds, because outcomes are combined in canonical seed
// order.
func TestDecideDeterministicAcrossWorkerCounts(t *testing.T) {
	srcs := map[string]string{
		"diverging":   `S(X) -> R(X,Y). R(X,Y) -> S(Y).`,
		"terminating": `T(X,Y) -> T(X,W). T(X,Y) -> T(Y,X).`,
	}
	for name, src := range srcs {
		t.Run(name, func(t *testing.T) {
			set, err := parser.ParseTGDs(src)
			if err != nil {
				t.Fatal(err)
			}
			base, err := Decide(set, DecideOptions{MaxSteps: 400, Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range []int{2, 4, 8} {
				v, err := Decide(set, DecideOptions{MaxSteps: 400, Workers: w})
				if err != nil {
					t.Fatal(err)
				}
				if v.Terminates != base.Terminates || v.Method != base.Method ||
					v.Evidence != base.Evidence || v.SeedsTried != base.SeedsTried {
					t.Fatalf("workers=%d: verdict drifted: %+v vs %+v", w, v, base)
				}
				switch {
				case (v.Witness == nil) != (base.Witness == nil):
					t.Fatalf("workers=%d: witness presence drifted", w)
				case v.Witness != nil && v.Witness.String() != base.Witness.String():
					t.Fatalf("workers=%d: witness drifted: %s vs %s", w, v.Witness, base.Witness)
				}
			}
		})
	}
}
