package guarded

import (
	"fmt"

	"airct/internal/instance"
	"airct/internal/jointree"
	"airct/internal/logic"
	"airct/internal/ochase"
)

// RemoteSituation is the paper's ⟨α, α′, β, β′⟩ (Definition 5.7/C.1): α and
// β are distinct database atoms, α ≺⁺gp α′, β ≺⁺gp β′, and β′ is a
// side-parent of α′ — so α "longs for" β: divergence below α needs service
// from β's offspring.
type RemoteSituation struct {
	Alpha, AlphaPrime, Beta, BetaPrime ochase.NodeID
}

// TreeifyOptions bounds the construction.
type TreeifyOptions struct {
	// MaxDepth caps ℓ∞, the longs-for path length (0: 6). The paper's ℓ∞
	// is finite by Lemma C.2; on a fragment we take the number of distinct
	// remote (β, β′) pairs, capped here.
	MaxDepth int
	// IncludeDirect also treats a database atom β that *itself* serves as
	// a side-parent of an α-descendant as longed-for (the reflexive-closure
	// reading); without its copy the treeified database could not replay
	// derivations that consume β directly.
	IncludeDirect bool
}

func (o TreeifyOptions) maxDepth() int {
	if o.MaxDepth <= 0 {
		return 6
	}
	return o.MaxDepth
}

// Treeification is the result of the Appendix C.2 construction: the acyclic
// (multiset) database D_ac presented as an explicit join tree, together
// with the homomorphism h_ac back to the original database and the
// bookkeeping the proofs refer to.
type Treeification struct {
	// Dac holds the multiset database: one atom per tree node.
	Dac []logic.Atom
	// Tree is the witnessing join tree over Dac (same node indexing).
	Tree *jointree.JoinTree
	// Hac maps each tree node to the original database atom it copies.
	Hac []logic.Atom
	// Depth is the longs-for path depth of each node (root = 0).
	Depth []int
	// AlphaInf is the database atom α∞ with the largest guard subtree.
	AlphaInf logic.Atom
	// EllInf is the ℓ∞ bound used.
	EllInf int
	// LongsFor lists the longs-for edges over database atom keys.
	LongsFor map[string][]string
	// Situations are the remote-side-parent situations found.
	Situations []RemoteSituation
}

// Database returns D_ac as a set database (collapsing multiset duplicates),
// which is what the chase consumes; the multiset structure only matters for
// the proof bookkeeping.
func (t *Treeification) Database() *instance.Database {
	db := instance.NewDatabase()
	for _, a := range t.Dac {
		if err := db.Add(a); err != nil {
			panic(err) // construction only emits constant atoms
		}
	}
	return db
}

// Treeify runs the Treeification construction on a real-oblivious-chase
// fragment of a guarded set: it locates α∞ (the database atom with the
// largest guard subtree in the fragment — the proxy for "infinite" on a
// finite fragment), computes the longs-for graph from the remote-side-
// parent situations present in the fragment, and materialises the path
// tree (T_ac, λ) with the renaming-with-sharing label rule of the paper.
func Treeify(g *ochase.Graph, opts TreeifyOptions) (*Treeification, error) {
	if !g.Set.IsGuarded() {
		return nil, fmt.Errorf("guarded: treeification needs a guarded single-head set")
	}
	if g.Database.Len() == 0 {
		return nil, fmt.Errorf("guarded: empty database")
	}
	// Database atoms are the first nodes.
	var dbNodes []ochase.NodeID
	for _, n := range g.Nodes() {
		if n.IsDatabase() {
			dbNodes = append(dbNodes, n.ID)
		}
	}
	// Guard roots.
	root := make(map[ochase.NodeID]ochase.NodeID)
	var rootOf func(id ochase.NodeID) (ochase.NodeID, bool)
	rootOf = func(id ochase.NodeID) (ochase.NodeID, bool) {
		if r, ok := root[id]; ok {
			return r, true
		}
		if g.Node(id).IsDatabase() {
			root[id] = id
			return id, true
		}
		gp, ok := g.GuardParent(id)
		if !ok {
			return 0, false
		}
		r, ok := rootOf(gp)
		if ok {
			root[id] = r
		}
		return r, ok
	}
	// α∞: database node with the largest guard subtree.
	subtreeSize := make(map[ochase.NodeID]int)
	for _, n := range g.Nodes() {
		if r, ok := rootOf(n.ID); ok {
			subtreeSize[r]++
		}
	}
	alphaInf := dbNodes[0]
	for _, id := range dbNodes {
		if subtreeSize[id] > subtreeSize[alphaInf] {
			alphaInf = id
		}
	}
	// Remote-side-parent situations and the longs-for graph.
	longsFor := make(map[ochase.NodeID]map[ochase.NodeID]bool)
	var situations []RemoteSituation
	pairSeen := make(map[string]bool)
	addEdge := func(a, b ochase.NodeID) {
		if longsFor[a] == nil {
			longsFor[a] = make(map[ochase.NodeID]bool)
		}
		longsFor[a][b] = true
	}
	for _, n := range g.Nodes() {
		if n.IsDatabase() {
			continue
		}
		rAlpha, ok := rootOf(n.ID)
		if !ok {
			continue
		}
		for _, sp := range g.SideParents(n.ID) {
			spNode := g.Node(sp)
			if spNode.IsDatabase() {
				if opts.IncludeDirect && sp != rAlpha {
					addEdge(rAlpha, sp)
					situations = append(situations, RemoteSituation{
						Alpha: rAlpha, AlphaPrime: n.ID, Beta: sp, BetaPrime: sp,
					})
					pairSeen[fmt.Sprintf("%d|%d", sp, sp)] = true
				}
				continue
			}
			rBeta, ok := rootOf(sp)
			if !ok || rBeta == rAlpha {
				continue
			}
			addEdge(rAlpha, rBeta)
			situations = append(situations, RemoteSituation{
				Alpha: rAlpha, AlphaPrime: n.ID, Beta: rBeta, BetaPrime: sp,
			})
			pairSeen[fmt.Sprintf("%d|%d", rBeta, sp)] = true
		}
	}
	ellInf := len(pairSeen)
	if ellInf < 1 {
		ellInf = 1
	}
	if ellInf > opts.maxDepth() {
		ellInf = opts.maxDepth()
	}
	// Materialise the path tree.
	tr := &Treeification{
		AlphaInf: g.Node(alphaInf).Atom,
		EllInf:   ellInf,
		LongsFor: make(map[string][]string),
	}
	for a, targets := range longsFor {
		for b := range targets {
			tr.LongsFor[g.Node(a).Atom.Key()] = append(tr.LongsFor[g.Node(a).Atom.Key()], g.Node(b).Atom.Key())
		}
	}
	tr.Situations = situations
	tree := &jointree.JoinTree{Root: 0}
	// Node construction: breadth-first over longs-for paths.
	type pending struct {
		nodeID int // index in tree
		dbNode ochase.NodeID
		depth  int
	}
	rootAtom := g.Node(alphaInf).Atom
	tree.Nodes = append(tree.Nodes, jointree.Node{ID: 0, Atom: rootAtom, Parent: -1})
	tr.Dac = append(tr.Dac, rootAtom)
	tr.Hac = append(tr.Hac, rootAtom)
	tr.Depth = append(tr.Depth, 0)
	queue := []pending{{nodeID: 0, dbNode: alphaInf, depth: 0}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur.depth >= ellInf {
			continue
		}
		parentLabel := tree.Nodes[cur.nodeID].Atom
		parentOrig := g.Node(cur.dbNode).Atom
		for _, beta := range sortedKeys(longsFor[cur.dbNode]) {
			betaAtom := g.Node(beta).Atom
			childID := len(tree.Nodes)
			label := relabel(betaAtom, parentOrig, parentLabel, childID)
			tree.Nodes = append(tree.Nodes, jointree.Node{ID: childID, Atom: label, Parent: cur.nodeID})
			tree.Nodes[cur.nodeID].Children = append(tree.Nodes[cur.nodeID].Children, childID)
			tr.Dac = append(tr.Dac, label)
			tr.Hac = append(tr.Hac, betaAtom)
			tr.Depth = append(tr.Depth, cur.depth+1)
			queue = append(queue, pending{nodeID: childID, dbNode: beta, depth: cur.depth + 1})
		}
	}
	tr.Tree = tree
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("guarded: treeification self-check: %w", err)
	}
	return tr, nil
}

// relabel builds λ(y) for a child copying β under a parent copying α with
// label λ(x): same equality pattern as β; positions sharing a term with α
// share the corresponding term of λ(x); all other terms are fresh constants
// [β[i]]_y (Appendix C.2).
func relabel(beta, alphaOrig, alphaLabel logic.Atom, nodeID int) logic.Atom {
	args := make([]logic.Term, len(beta.Args))
	assigned := make(map[logic.Term]logic.Term) // β-term -> label term
	for i, t := range beta.Args {
		if u, ok := assigned[t]; ok {
			args[i] = u
			continue
		}
		var val logic.Term
		found := false
		for j, at := range alphaOrig.Args {
			if at == t {
				val = alphaLabel.Args[j]
				found = true
				break
			}
		}
		if !found {
			val = logic.Const(fmt.Sprintf("%s@n%d", t.Name, nodeID))
		}
		assigned[t] = val
		args[i] = val
	}
	return logic.NewAtom(beta.Pred, args...)
}

func sortedKeys(m map[ochase.NodeID]bool) []ochase.NodeID {
	var out []ochase.NodeID
	for k := range m {
		out = append(out, k)
	}
	for i := 0; i < len(out); i++ {
		for j := i + 1; j < len(out); j++ {
			if out[j] < out[i] {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	return out
}

// Validate checks the construction's invariants: the tree is a valid join
// tree (so D_ac is acyclic, Lemma C.3(1)); h_ac is a homomorphism
// (Lemma C.3(2)); and per-edge, the label shares terms with its parent
// exactly where the originals share terms (the isomorphism of Lemma C.3(3)
// restricted to edges).
func (t *Treeification) Validate() error {
	if err := t.Tree.Validate(); err != nil {
		return err
	}
	for i, label := range t.Dac {
		orig := t.Hac[i]
		if label.Pred != orig.Pred {
			return fmt.Errorf("node %d: predicate %v vs original %v", i, label.Pred, orig.Pred)
		}
		// h_ac is well-defined per atom: equal label terms must map to
		// equal original terms positionwise.
		for a := range label.Args {
			for b := range label.Args {
				if label.Args[a] == label.Args[b] && orig.Args[a] != orig.Args[b] {
					return fmt.Errorf("node %d: label merges positions %d,%d the original keeps apart", i, a+1, b+1)
				}
			}
		}
	}
	for i, n := range t.Tree.Nodes {
		if n.Parent < 0 {
			continue
		}
		label, orig := t.Dac[i], t.Hac[i]
		pLabel, pOrig := t.Dac[n.Parent], t.Hac[n.Parent]
		for a := range label.Args {
			for b := range pLabel.Args {
				shareLabel := label.Args[a] == pLabel.Args[b]
				shareOrig := orig.Args[a] == pOrig.Args[b]
				if shareLabel != shareOrig {
					return fmt.Errorf("edge %d->%d: sharing mismatch at positions %d/%d", n.Parent, i, a+1, b+1)
				}
			}
		}
	}
	return nil
}
