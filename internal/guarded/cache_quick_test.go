package guarded

// Property tests for the cross-run chase cache's visible contract: Decide
// with a warm cache is indistinguishable from Decide with a cold cache and
// from Decide with no cache at all — verdict, method, evidence, seed count,
// budget and witness rendering, across worker counts. The random sets come
// from the shared workload generators; the CI -race job runs this file
// with the bounded worker pool sharing one cache, which is exactly the
// concurrency surface the striped store must survive.

import (
	"math/rand"
	"testing"
	"testing/quick"

	"airct/internal/chase"
	"airct/internal/workload"
)

// sameVerdict compares everything a caller can observe about a Verdict.
func sameVerdict(a, b *Verdict) bool {
	if a.Terminates != b.Terminates || a.Method != b.Method ||
		a.Evidence != b.Evidence || a.SeedsTried != b.SeedsTried || a.Budget != b.Budget {
		return false
	}
	if (a.Witness == nil) != (b.Witness == nil) {
		return false
	}
	return a.Witness == nil || a.Witness.String() == b.Witness.String()
}

// Property: for random guarded sets, Decide is bit-identical across
// {no cache, cold cache, warm cache} × worker counts {1, 3}, and a warm
// seed-searching decision actually hits the cache.
func TestQuickDecideWarmCacheEqualsCold(t *testing.T) {
	checked := 0
	f := func(seed int64) bool {
		set := workload.RandomTGDSet(seed%4000, workload.RandomOptions{Rules: 3})
		if !set.IsGuarded() {
			return true
		}
		base, err := Decide(set, DecideOptions{MaxSteps: 300, Workers: 1})
		if err != nil {
			return false
		}
		for _, workers := range []int{1, 3} {
			cache := chase.NewCache()
			for _, label := range []string{"cold", "warm"} {
				v, err := Decide(set, DecideOptions{MaxSteps: 300, Workers: workers, Cache: cache})
				if err != nil {
					return false
				}
				if !sameVerdict(v, base) {
					t.Logf("seed %d: %s cache, workers=%d: verdict drifted: %+v vs %+v",
						seed, label, workers, v, base)
					return false
				}
			}
			if base.Method != "weak-acyclicity" && cache.Stats().Hits == 0 {
				t.Logf("seed %d: workers=%d: warm seed-searching Decide missed the cache", seed, workers)
				return false
			}
		}
		if base.Method != "weak-acyclicity" {
			checked++
		}
		return true
	}
	// Deterministic draws: the checked-count floor below must not depend on
	// testing/quick's time-seeded default source.
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(7))}); err != nil {
		t.Error(err)
	}
	if checked < 5 {
		t.Fatalf("only %d seed-searching decisions exercised the cache; generator too narrow", checked)
	}
}

// Property: sharing ONE cache across different random sets never leaks a
// verdict between sets — each set's cached decision matches its own
// uncached decision (the set-fingerprint half of the key is doing its job).
func TestQuickDecideSharedCacheKeysBySet(t *testing.T) {
	cache := chase.NewCache()
	f := func(seed int64) bool {
		set := workload.RandomTGDSet(seed%4000, workload.RandomOptions{Rules: 3})
		if !set.IsGuarded() {
			return true
		}
		base, err := Decide(set, DecideOptions{MaxSteps: 300})
		if err != nil {
			return false
		}
		v, err := Decide(set, DecideOptions{MaxSteps: 300, Cache: cache})
		if err != nil {
			return false
		}
		return sameVerdict(v, base)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
