package guarded

// BenchmarkDecideCached measures the cross-run chase cache on the
// repeated-seed serving workload (workload.RepeatedDecideRequests): the
// same guarded, non-weakly-acyclic program decided again and again, as a
// termination service under load would. Three modes per family size:
//
//   - nocache: the pre-cache behaviour (DecideOptions.Cache nil);
//   - cold:    a fresh cache per decision — pays lookup misses and stores,
//     the worst case for the cache;
//   - warm:    one shared cache, warmed by a single decision before the
//     timer — every seed pool, seed outcome and seed queue hits.
//
// The warm/cold time-to-verdict ratio is the headline recorded in
// BENCH_cache.json; TestQuickDecideWarmCacheEqualsCold and the conformance
// corpus pin that the three modes return bit-identical verdicts.

import (
	"fmt"
	"testing"

	"airct/internal/chase"
	"airct/internal/workload"
)

func BenchmarkDecideCached(b *testing.B) {
	for _, n := range []int{2, 3} {
		reqs := workload.RepeatedDecideRequests(n, 8)
		decide := func(b *testing.B, i int, cache *chase.Cache) {
			b.Helper()
			v, err := Decide(reqs[i%len(reqs)], DecideOptions{MaxSteps: 2000, Workers: 1, Cache: cache})
			if err != nil {
				b.Fatal(err)
			}
			if !v.Terminates || v.Method != "seed-exhaustion" {
				b.Fatalf("unexpected verdict %+v", v)
			}
		}
		b.Run(fmt.Sprintf("swap-intro-%d/nocache", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				decide(b, i, nil)
			}
		})
		b.Run(fmt.Sprintf("swap-intro-%d/cold", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				decide(b, i, chase.NewCache())
			}
		})
		b.Run(fmt.Sprintf("swap-intro-%d/warm", n), func(b *testing.B) {
			b.ReportAllocs()
			cache := chase.NewCache()
			decide(b, 0, cache)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				decide(b, i, cache)
			}
		})
	}
}
