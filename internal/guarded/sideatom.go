// Package guarded implements the Section 5 machinery for single-head
// guarded TGDs: sideatom types, the guard-/side-parent structure, the
// remote-side-parent ("longs for") analysis and the Treeification Theorem's
// acyclic-database construction (Appendix C.2), abstract join trees
// (Definition 5.8) with their chaseable conditions (Definition 5.10), and a
// decision procedure for CT^res_∀∀(G).
//
// The paper decides CT^res_∀∀(G) by compiling the chaseable-abstract-join-
// tree property into an MSOL sentence over infinite trees (Lemma 5.12). A
// faithful MSOL-over-infinite-trees solver is non-elementary and out of
// scope for any implementation, so Decide replaces that final step with a
// bounded certificate search over the same objects — seed acyclic databases
// derived from the TGD bodies (the treeification viewpoint) chased with
// divergence-evidence detection on the guard forest. DESIGN.md §3 documents
// the substitution.
package guarded

import (
	"fmt"

	"airct/internal/logic"
)

// SideatomType is the paper's π = ⟨P, m, ξ⟩: a predicate P/n, the arity m
// of the guarded atom, and a mapping ξ from the positions of P to positions
// of the guard. An atom α is a π-sideatom of γ, written α ⊆π γ, when α's
// predicate is P, γ's arity is m, and α[i] = γ[ξ(i)] for every i.
type SideatomType struct {
	Pred  logic.Predicate
	Arity int   // arity of the guarded atom the type refers to
	Xi    []int // 1-based guard positions, one per position of Pred
}

// NewSideatomType validates and builds a sideatom type.
func NewSideatomType(pred logic.Predicate, arity int, xi []int) (SideatomType, error) {
	if len(xi) != pred.Arity {
		return SideatomType{}, fmt.Errorf("guarded: ξ has %d entries for %s", len(xi), pred)
	}
	for i, j := range xi {
		if j < 1 || j > arity {
			return SideatomType{}, fmt.Errorf("guarded: ξ(%d) = %d out of range 1..%d", i+1, j, arity)
		}
	}
	return SideatomType{Pred: pred, Arity: arity, Xi: xi}, nil
}

// IsSideatom reports α ⊆π γ.
func (p SideatomType) IsSideatom(alpha, gamma logic.Atom) bool {
	if alpha.Pred != p.Pred || gamma.Pred.Arity != p.Arity {
		return false
	}
	for i, j := range p.Xi {
		if alpha.Args[i] != gamma.Args[j-1] {
			return false
		}
	}
	return true
}

// Key returns a canonical encoding.
func (p SideatomType) Key() string {
	return fmt.Sprintf("%s|%d|%v", p.Pred, p.Arity, p.Xi)
}

// String renders the type.
func (p SideatomType) String() string {
	return fmt.Sprintf("⟨%s,%d,%v⟩", p.Pred, p.Arity, p.Xi)
}

// TypeOf computes the sideatom type of a concrete side atom relative to a
// concrete guard atom, when one exists: every term of alpha must occur in
// gamma (guardedness guarantees this for body atoms relative to the guard).
func TypeOf(alpha, gamma logic.Atom) (SideatomType, bool) {
	xi := make([]int, len(alpha.Args))
	for i, t := range alpha.Args {
		found := false
		for j, u := range gamma.Args {
			if t == u {
				xi[i] = j + 1
				found = true
				break
			}
		}
		if !found {
			return SideatomType{}, false
		}
	}
	return SideatomType{Pred: alpha.Pred, Arity: gamma.Pred.Arity, Xi: xi}, true
}

// BodyTypes represents a guarded TGD body as the paper does in Section 5.3:
// the guard atom plus one sideatom type per side atom (γ, π1, …, πm). The
// second result is false when the TGD is not guarded or a side atom
// mentions a variable outside the guard (impossible for guarded TGDs).
func BodyTypes(guard logic.Atom, sides []logic.Atom) ([]SideatomType, bool) {
	out := make([]SideatomType, 0, len(sides))
	for _, s := range sides {
		p, ok := TypeOf(s, guard)
		if !ok {
			return nil, false
		}
		out = append(out, p)
	}
	return out, true
}
