package guarded

// The k-round probe behind the portfolio's Tier 1 (in the style of PDQ's
// KTerminationChaser): run the Decide seed battery at a small step budget k
// and report whether EVERY seed already saturates there. Because each chase
// order is deterministic and a fixpoint reached within k steps is the same
// fixpoint any larger budget reaches, "all seeds saturate at k" implies
// Decide at any budget ≥ k returns the identical seed-exhaustion verdict —
// so a probe that decides is sound and bit-compatible with the full
// procedure, at a fraction of its cost. A probe that does NOT decide claims
// nothing: a pump found at budget k does not imply the full-budget battery
// diverges (the longer run may still reach a fixpoint), so non-saturation
// only routes the input onward to Tier 2.

import (
	"context"
	"fmt"

	"airct/internal/acyclicity"
	"airct/internal/chase"
	"airct/internal/logic"
	"airct/internal/tgds"
)

// DefaultProbeSteps is the probe's step budget when the caller passes 0.
const DefaultProbeSteps = 64

// ProbeOutcome summarises a k-round probe sweep over the seed pool.
type ProbeOutcome struct {
	// Seeds counts the distinct seed databases in the pool (after exact
	// fingerprint dedup, as Decide chases them).
	Seeds int
	// Saturated counts the seeds whose whole battery (FIFO, Random, LIFO)
	// reached a fixpoint within ProbeSteps, up to the first one that did
	// not (the sweep stops early once Decided can no longer be true).
	Saturated int
	// ProbeSteps is the k actually used: the requested value clamped to
	// the full Decide budget.
	ProbeSteps int
	// Decided is true when every seed saturated within k (or weak
	// acyclicity short-circuited the pool entirely): DecideContext with
	// the same options is then guaranteed to return a terminating verdict.
	Decided bool
	// WeaklyAcyclic is true when the pool was never probed because the
	// weak-acyclicity shortcut already decides the set.
	WeaklyAcyclic bool
	// Depth is the probe's saturation depth: the deepest chase among the
	// saturating batteries swept (0 when nothing was probed). On a Decided
	// probe it is the exact fixpoint depth of the hardest seed — the
	// budget-k runs are prefixes of any larger-budget run.
	Depth int
}

// ProbeSeeds runs the bounded k-round probe over the set's seed pool. When
// the outcome is Decided, a saturated seed's (empty) battery outcome is
// also stored in opts.Cache under the FULL Decide budget — sound, because
// the budget-k runs are prefixes of the budget-B runs and all reached their
// fixpoints — so a follow-up DecideContext skips those seeds entirely. A
// cancelled probe returns ctx's error.
func ProbeSeeds(ctx context.Context, set *tgds.Set, opts DecideOptions, probeSteps int) (ProbeOutcome, error) {
	out := ProbeOutcome{}
	if !set.IsGuarded() {
		return out, fmt.Errorf("guarded: ProbeSeeds requires a single-head guarded set")
	}
	if acyclicity.IsWeaklyAcyclic(set) {
		out.Decided = true
		out.WeaklyAcyclic = true
		return out, nil
	}
	budget := opts.maxSteps()
	k := probeSteps
	if k <= 0 {
		k = DefaultProbeSteps
	}
	if k > budget {
		k = budget
	}
	out.ProbeSteps = k
	cache := opts.Cache
	seeds := generateSeedsCached(set, opts.maxSeeds(), cache)
	seeds = append(seeds, opts.ExtraSeeds...)
	seen := make(map[logic.Fingerprint]struct{}, len(seeds))
	var setFP logic.Fingerprint
	if cache != nil {
		setFP = set.Fingerprint()
	}
	type uniqSeed struct {
		i  int
		fp logic.Fingerprint
	}
	var uniq []uniqSeed
	for i, s := range seeds {
		fp := logic.FingerprintAtoms(s.Atoms())
		if _, dup := seen[fp]; dup {
			continue
		}
		seen[fp] = struct{}{}
		uniq = append(uniq, uniqSeed{i: i, fp: fp})
	}
	out.Seeds = len(uniq)
	for _, u := range uniq {
		if ctx.Err() != nil {
			return out, ctx.Err()
		}
		v, steps := chaseSeed(ctx, set, seeds[u.i], k, cache, setFP, u.fp)
		if v == cancelledVerdict {
			return out, ctx.Err()
		}
		if v != nil {
			// Not saturated at k: the probe cannot decide; stop sweeping.
			return out, nil
		}
		out.Saturated++
		if steps > out.Depth {
			out.Depth = steps
		}
		if cache != nil && k < budget {
			// Sound at the full budget: the budget-k runs reached their
			// fixpoints, so the budget-B runs are the same runs — including
			// their depth.
			cache.StoreSeedOutcome(setFP, u.fp, budget, chase.SeedOutcome{Steps: steps})
		}
	}
	out.Decided = true
	return out, nil
}
