package guarded

// The k-round probe behind the portfolio's Tier 1 (in the style of PDQ's
// KTerminationChaser): run the Decide seed battery at a small step budget k
// and report whether EVERY seed already saturates there. Because each chase
// order is deterministic and a fixpoint reached within k steps is the same
// fixpoint any larger budget reaches, "all seeds saturate at k" implies
// Decide at any budget ≥ k returns the identical seed-exhaustion verdict —
// so an accepting probe is sound and bit-compatible with the full
// procedure, at a fraction of its cost.
//
// The probe can also REJECT. A guard-chain pump surfaced on a seed's
// k-step prefix is the SAME certificate the full procedure trusts: Decide
// at budget B mines its budget-exhausted runs — themselves just truncated
// prefixes — with the identical DivergencePump lemma, and the repetition's
// soundness (an infinite regular chaseable abstract join tree over Λ_T)
// does not depend on how far past the repetition the run was chased. So a
// pump at k decides Diverges outright, at probe cost: no full-budget
// battery, no Tier 2. Because every earlier distinct seed saturated within
// k — and a saturated fixpoint is the same fixpoint at any larger budget —
// DecideContext's first-non-nil scan lands on the same seed and, when its
// full-budget run exhausts the budget, mines a pump from the same chain
// (the k-prefix is a prefix of that run), so the conclusion and method
// agree; only the pump pair quoted in the evidence string may differ with
// the prefix length. A probe whose first non-saturating seed carries no
// pump claims nothing and routes the input onward to Tier 2.
// DecideOptions.ProbeAcceptOnly restores the accept-only probe.

import (
	"context"
	"fmt"

	"airct/internal/acyclicity"
	"airct/internal/chase"
	"airct/internal/instance"
	"airct/internal/logic"
	"airct/internal/tgds"
)

// DefaultProbeSteps is the probe's step budget when the caller passes 0.
const DefaultProbeSteps = 64

// ProbeOutcome summarises a k-round probe sweep over the seed pool.
type ProbeOutcome struct {
	// Seeds counts the distinct seed databases swept (after exact
	// fingerprint dedup, as Decide chases them), up to and including the
	// seed that decided or stopped the probe. On a full sweep it is the
	// whole pool's distinct count; an early stop leaves the rest of the
	// pool not only unswept but — on a cold cache — ungenerated.
	Seeds int
	// Saturated counts the seeds whose whole battery (FIFO, Random, LIFO)
	// reached a fixpoint within ProbeSteps, up to the first one that did
	// not (the sweep stops early once Decided can no longer be true).
	Saturated int
	// ProbeSteps is the k actually used: the requested value clamped to
	// the full Decide budget.
	ProbeSteps int
	// Decided is true when the probe settled the question either way:
	// every seed saturated within k (or weak acyclicity short-circuited
	// the pool — acceptance), or a seed's k-prefix carried a guard-chain
	// pump (rejection). An acceptance is bit-compatible with
	// DecideContext; a rejection reaches DecideContext's conclusion and
	// method through the same certificate lemma (see the package comment).
	Decided bool
	// Rejected is true when the probe decided by divergence: a guard-chain
	// pump surfaced on a seed's k-prefix. Method/Evidence/SeedsTried carry
	// the certificate.
	Rejected bool
	// Method is "divergence-witness" on a rejected probe — the pump is a
	// certificate, never a bounded budget-exhaustion claim. Empty
	// otherwise.
	Method string
	// Evidence is the divergence certificate on a rejected probe. Empty
	// otherwise.
	Evidence string
	// SeedsTried is, on a rejected probe, the 1-based position of the
	// rejecting seed in the pool — the same SeedsTried DecideContext
	// reports. 0 otherwise.
	SeedsTried int
	// WeaklyAcyclic is true when the pool was never probed because the
	// weak-acyclicity shortcut already decides the set.
	WeaklyAcyclic bool
	// Depth is the probe's saturation depth: the deepest chase among the
	// saturating batteries swept (0 when nothing was probed). On an
	// accepting probe it is the exact fixpoint depth of the hardest seed —
	// the budget-k runs are prefixes of any larger-budget run. On a
	// rejecting probe it is the pump depth — the shortest prefix length
	// that still carries the certificate — maxed with the saturation
	// depths swept before it: the k a later probe of the class can shrink
	// towards without losing either the certificate or the saturations.
	Depth int
}

// ProbeSeeds runs the bounded k-round probe over the set's seed pool. When
// the outcome is an acceptance, a saturated seed's (empty) battery outcome
// is also stored in opts.Cache under the FULL Decide budget — sound,
// because the budget-k runs are prefixes of the budget-B runs and all
// reached their fixpoints — so a follow-up DecideContext skips those seeds
// entirely. A rejection's diverging battery lands in the cache keyed at
// the probe budget through chaseSeed's own store. A cancelled probe
// returns ctx's error.
func ProbeSeeds(ctx context.Context, set *tgds.Set, opts DecideOptions, probeSteps int) (ProbeOutcome, error) {
	out := ProbeOutcome{}
	if !set.IsGuarded() {
		return out, fmt.Errorf("guarded: ProbeSeeds requires a single-head guarded set")
	}
	if acyclicity.IsWeaklyAcyclic(set) {
		out.Decided = true
		out.WeaklyAcyclic = true
		return out, nil
	}
	budget := opts.maxSteps()
	k := probeSteps
	if k <= 0 {
		k = DefaultProbeSteps
	}
	if k > budget {
		k = budget
	}
	out.ProbeSteps = k
	cache := opts.Cache
	var setFP logic.Fingerprint
	if cache != nil {
		setFP = set.Fingerprint()
	}
	// Warm path: a cached pool is already materialised — sweep it directly.
	// Cold path: enumerate the pool lazily, in GenerateSeeds' exact order,
	// so a probe that decides on (or is stopped by) an early seed never
	// pays to generate the rest of the pool — in particular its
	// treeification expansions, the dominant generation cost.
	var pooled []*instance.Database
	var enum *seedEnum
	if cache != nil {
		pooled, _ = cachedSeedPool(setFP, opts.maxSeeds(), cache)
	}
	if pooled == nil {
		enum = newSeedEnum(set, opts.maxSeeds())
	}
	pi, extra := 0, 0
	nextSeed := func() (*instance.Database, bool) {
		if pooled != nil {
			if pi < len(pooled) {
				s := pooled[pi]
				pi++
				return s, true
			}
		} else if s, ok := enum.Next(); ok {
			return s, true
		}
		if extra < len(opts.ExtraSeeds) {
			s := opts.ExtraSeeds[extra]
			extra++
			return s, true
		}
		return nil, false
	}
	seen := make(map[logic.Fingerprint]struct{})
	i := -1 // 0-based position in the pool Decide scans, counting duplicates
	for {
		s, ok := nextSeed()
		if !ok {
			break
		}
		i++
		if ctx.Err() != nil {
			return out, ctx.Err()
		}
		fp := logic.FingerprintAtoms(s.Atoms())
		if _, dup := seen[fp]; dup {
			continue
		}
		seen[fp] = struct{}{}
		out.Seeds++
		v, steps := chaseSeed(ctx, set, s, k, cache, setFP, fp)
		if v == cancelledVerdict {
			return out, ctx.Err()
		}
		if v != nil {
			// Not saturated at k. A pump on the k-prefix is a
			// budget-independent divergence certificate — the same lemma
			// Decide applies to its own budget-truncated runs — so it
			// decides outright, at probe cost (see the package comment).
			// "budget-exhausted" at k carries no certificate and claims
			// nothing.
			if !opts.ProbeAcceptOnly && v.Method == "divergence-witness" {
				out.Decided = true
				out.Rejected = true
				out.Method = v.Method
				out.Evidence = v.Evidence
				out.SeedsTried = i + 1
				// The shortest certifying prefix, not the truncated run's
				// length: this is what an adaptive probe budget should
				// converge towards (still covering the saturating seeds
				// swept before it, hence the max).
				d := steps
				if v.PumpDepth > 0 {
					d = v.PumpDepth
				}
				if d > out.Depth {
					out.Depth = d
				}
				return out, nil
			}
			// No certificate: the probe cannot decide; stop sweeping.
			return out, nil
		}
		out.Saturated++
		if steps > out.Depth {
			out.Depth = steps
		}
		if cache != nil && k < budget {
			// Sound at the full budget: the budget-k runs reached their
			// fixpoints, so the budget-B runs are the same runs — including
			// their depth.
			cache.StoreSeedOutcome(setFP, fp, budget, chase.SeedOutcome{Steps: steps})
		}
	}
	out.Decided = true
	if cache != nil && enum != nil && enum.drained() {
		// A fully drained cold enumeration IS GenerateSeeds' pool: store it
		// so the follow-up Decide — and future probes — skip generation. An
		// early-stopped probe stores nothing; the onward Decide generates
		// (and stores) the pool itself.
		storeSeedPool(setFP, opts.maxSeeds(), cache, enum.pool)
	}
	return out, nil
}
