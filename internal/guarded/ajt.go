package guarded

import (
	"fmt"
	"sort"
	"strings"

	"airct/internal/chase"
	"airct/internal/instance"
	"airct/internal/jointree"
	"airct/internal/logic"
	"airct/internal/tgds"
)

// EqRel is an equivalence relation on {f, m} × {1, …, ar} — the third
// component of the abstract-join-tree alphabet Λ_T. "f" refers to the
// father node's atom, "m" to the node's own atom.
type EqRel struct {
	ar     int
	parent []int // DSU: 0..ar-1 = f side, ar..2ar-1 = m side
}

// NewEqRel returns the identity relation over {f,m} × {1..ar}.
func NewEqRel(ar int) *EqRel {
	e := &EqRel{ar: ar, parent: make([]int, 2*ar)}
	for i := range e.parent {
		e.parent[i] = i
	}
	return e
}

func (e *EqRel) idx(side byte, i int) int {
	if i < 1 || i > e.ar {
		panic(fmt.Sprintf("guarded: position %d out of 1..%d", i, e.ar))
	}
	if side == 'f' {
		return i - 1
	}
	return e.ar + i - 1
}

func (e *EqRel) find(x int) int {
	for e.parent[x] != x {
		e.parent[x] = e.parent[e.parent[x]]
		x = e.parent[x]
	}
	return x
}

// Union merges the classes of (side1, i1) and (side2, i2).
func (e *EqRel) Union(side1 byte, i1 int, side2 byte, i2 int) {
	a, b := e.find(e.idx(side1, i1)), e.find(e.idx(side2, i2))
	if a != b {
		if a > b {
			a, b = b, a
		}
		e.parent[b] = a
	}
}

// Same reports whether (side1, i1) and (side2, i2) are equivalent.
func (e *EqRel) Same(side1 byte, i1 int, side2 byte, i2 int) bool {
	return e.find(e.idx(side1, i1)) == e.find(e.idx(side2, i2))
}

// Ar returns the relation's arity bound.
func (e *EqRel) Ar() int { return e.ar }

// Key returns a canonical encoding.
func (e *EqRel) Key() string {
	var b strings.Builder
	for i := 0; i < 2*e.ar; i++ {
		fmt.Fprintf(&b, "%d,", e.find(i))
	}
	return b.String()
}

// Clone returns a copy.
func (e *EqRel) Clone() *EqRel {
	out := &EqRel{ar: e.ar, parent: make([]int, len(e.parent))}
	copy(out.parent, e.parent)
	return out
}

// EqFromAtoms computes the equivalence relation induced by a concrete
// father/child atom pair: positions are equivalent iff they carry equal
// terms. Positions beyond an atom's arity stay singleton classes. father
// may be the zero Atom for root nodes.
func EqFromAtoms(father, me logic.Atom, ar int) *EqRel {
	e := NewEqRel(ar)
	get := func(a logic.Atom, i int) (logic.Term, bool) {
		if a.Pred.Name == "" || i > len(a.Args) {
			return logic.Term{}, false
		}
		return a.Args[i-1], true
	}
	for i := 1; i <= ar; i++ {
		for j := i + 1; j <= ar; j++ {
			if ti, ok1 := get(father, i); ok1 {
				if tj, ok2 := get(father, j); ok2 && ti == tj {
					e.Union('f', i, 'f', j)
				}
			}
			if ti, ok1 := get(me, i); ok1 {
				if tj, ok2 := get(me, j); ok2 && ti == tj {
					e.Union('m', i, 'm', j)
				}
			}
		}
		for j := 1; j <= ar; j++ {
			if ti, ok1 := get(father, i); ok1 {
				if tj, ok2 := get(me, j); ok2 && ti == tj {
					e.Union('f', i, 'm', j)
				}
			}
		}
	}
	return e
}

// OriginF marks a database-fact node (the paper's F).
const OriginF = -1

// Label is a letter of Λ_T = sch(T) × ({F} ∪ T) × EQ_T.
type Label struct {
	Pred   logic.Predicate
	Origin int // OriginF or a TGD index
	Eq     *EqRel
}

// AJTNode is a node of an abstract join tree.
type AJTNode struct {
	ID       int
	Label    Label
	Parent   int // -1 for the root
	Children []int
}

// AJT is a finite abstract join tree for a guarded set (Definition 5.8).
// The paper's trees may be infinite; finite trees are what the experiments
// and the bounded decision procedure manipulate.
type AJT struct {
	Set   *tgds.Set
	Nodes []AJTNode
}

// Ar returns ar(T).
func (t *AJT) Ar() int { return t.Set.MaxArity() }

// Validate checks the five conditions of Definition 5.8 (on a finite tree;
// condition 1's finiteness is automatic).
func (t *AJT) Validate() error {
	if len(t.Nodes) == 0 {
		return fmt.Errorf("guarded: empty abstract join tree")
	}
	fCount := 0
	roots := 0
	for i, n := range t.Nodes {
		if n.ID != i {
			return fmt.Errorf("guarded: node %d has ID %d", i, n.ID)
		}
		if n.Label.Origin == OriginF {
			fCount++
		}
		if n.Parent == -1 {
			roots++
			if n.Label.Origin != OriginF {
				return fmt.Errorf("guarded: root must be a database-fact node")
			}
		}
	}
	if roots != 1 {
		return fmt.Errorf("guarded: %d roots", roots)
	}
	if fCount == 0 {
		return fmt.Errorf("guarded: condition 1: no F-nodes")
	}
	for _, y := range t.Nodes {
		if y.Parent < 0 {
			continue
		}
		x := t.Nodes[y.Parent]
		// Condition 2: F-nodes are upward closed.
		if y.Label.Origin == OriginF && x.Label.Origin != OriginF {
			return fmt.Errorf("guarded: condition 2: F-node %d below non-F node %d", y.ID, x.ID)
		}
		// Condition 4: the child's f-side mirrors the father's m-side.
		arX := x.Label.Pred.Arity
		for i := 1; i <= arX; i++ {
			for j := 1; j <= arX; j++ {
				if x.Label.Eq.Same('m', i, 'm', j) != y.Label.Eq.Same('f', i, 'f', j) {
					return fmt.Errorf("guarded: condition 4: edge %d->%d positions %d,%d", x.ID, y.ID, i, j)
				}
			}
		}
		if y.Label.Origin == OriginF {
			continue
		}
		// Conditions 3 and 5 for TGD-origin nodes.
		sigma := t.Set.TGDs[y.Label.Origin]
		guard, ok := sigma.Guard()
		if !ok {
			return fmt.Errorf("guarded: node %d's origin %s is unguarded", y.ID, sigma.Label)
		}
		head := sigma.HeadAtom()
		if x.Label.Pred != guard.Pred {
			return fmt.Errorf("guarded: condition 3: father of %d has predicate %v, want guard %v", y.ID, x.Label.Pred, guard.Pred)
		}
		if y.Label.Pred != head.Pred {
			return fmt.Errorf("guarded: condition 3: node %d has predicate %v, want head %v", y.ID, y.Label.Pred, head.Pred)
		}
		existential := sigma.ExistentialVars()
		for i := 1; i <= guard.Pred.Arity; i++ {
			for j := 1; j <= head.Pred.Arity; j++ {
				// 5(a): guard and head sharing a variable forces equality.
				if guard.Args[i-1] == head.Args[j-1] && !y.Label.Eq.Same('f', i, 'm', j) {
					return fmt.Errorf("guarded: condition 5a: edge %d->%d (%d,%d)", x.ID, y.ID, i, j)
				}
			}
			for j := 1; j <= guard.Pred.Arity; j++ {
				// 5(b): repeated guard variables force father equalities.
				if guard.Args[i-1] == guard.Args[j-1] && !y.Label.Eq.Same('f', i, 'f', j) {
					return fmt.Errorf("guarded: condition 5b: edge %d->%d (%d,%d)", x.ID, y.ID, i, j)
				}
			}
		}
		// 5(c): existential head positions equal exactly their repeats.
		for j := 1; j <= head.Pred.Arity; j++ {
			if !existential.Has(head.Args[j-1]) {
				continue
			}
			for i := 1; i <= head.Pred.Arity; i++ {
				want := head.Args[j-1] == head.Args[i-1]
				if y.Label.Eq.Same('m', i, 'm', j) != want {
					return fmt.Errorf("guarded: condition 5c: node %d positions %d,%d", y.ID, i, j)
				}
			}
		}
	}
	return nil
}

// Decode computes ∆(T): one atom per node, with terms given by the
// equivalence closure Eq_T over (node, position) pairs. F-node classes
// decode to constants, the rest to nulls. It returns the atoms (aligned
// with node IDs) and the instance they form.
func (t *AJT) Decode() ([]logic.Atom, *instance.Instance) {
	type cell struct {
		node, pos int
	}
	parent := make(map[cell]cell)
	var find func(c cell) cell
	find = func(c cell) cell {
		p, ok := parent[c]
		if !ok || p == c {
			return c
		}
		r := find(p)
		parent[c] = r
		return r
	}
	union := func(a, b cell) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[rb] = ra
		}
	}
	for _, n := range t.Nodes {
		arN := n.Label.Pred.Arity
		for i := 1; i <= arN; i++ {
			for j := i + 1; j <= arN; j++ {
				if n.Label.Eq.Same('m', i, 'm', j) {
					union(cell{n.ID, i}, cell{n.ID, j})
				}
			}
		}
		if n.Parent >= 0 {
			arF := t.Nodes[n.Parent].Label.Pred.Arity
			for i := 1; i <= arF; i++ {
				for j := 1; j <= arN; j++ {
					if n.Label.Eq.Same('f', i, 'm', j) {
						union(cell{n.Parent, i}, cell{n.ID, j})
					}
				}
			}
		}
	}
	// Classes touching an F-node position become constants.
	isConst := make(map[cell]bool)
	for _, n := range t.Nodes {
		if n.Label.Origin != OriginF {
			continue
		}
		for i := 1; i <= n.Label.Pred.Arity; i++ {
			isConst[find(cell{n.ID, i})] = true
		}
	}
	names := make(map[cell]logic.Term)
	term := func(c cell) logic.Term {
		r := find(c)
		if tm, ok := names[r]; ok {
			return tm
		}
		var tm logic.Term
		if isConst[r] {
			tm = logic.Const(fmt.Sprintf("t%d_%d", r.node, r.pos))
		} else {
			tm = logic.NewNull(fmt.Sprintf("t%d_%d", r.node, r.pos))
		}
		names[r] = tm
		return tm
	}
	atoms := make([]logic.Atom, len(t.Nodes))
	inst := instance.New()
	for _, n := range t.Nodes {
		args := make([]logic.Term, n.Label.Pred.Arity)
		for i := 1; i <= n.Label.Pred.Arity; i++ {
			args[i-1] = term(cell{n.ID, i})
		}
		atoms[n.ID] = logic.NewAtom(n.Label.Pred, args...)
		inst.Add(atoms[n.ID])
	}
	return atoms, inst
}

// DecodeF returns ∆(T|F): the decoded atoms of the F-nodes only.
func (t *AJT) DecodeF() []logic.Atom {
	atoms, _ := t.Decode()
	var out []logic.Atom
	for _, n := range t.Nodes {
		if n.Label.Origin == OriginF {
			out = append(out, atoms[n.ID])
		}
	}
	return out
}

// CheckChaseable verifies the conditions of Definition 5.10 on the finite
// tree: every TGD-origin node has a πi-side-parent for each sideatom type
// of its origin's body, and the before relation over the nodes is acyclic
// (condition 1's finiteness is automatic on finite trees).
func (t *AJT) CheckChaseable() error {
	atoms, _ := t.Decode()
	// Side-parent candidates: z ≺π_sp y iff δ(z) ⊆π δ(father(y)).
	for _, y := range t.Nodes {
		if y.Label.Origin == OriginF {
			continue
		}
		sigma := t.Set.TGDs[y.Label.Origin]
		guard, _ := sigma.Guard()
		types, ok := BodyTypes(guard, sigma.SideAtoms())
		if !ok {
			return fmt.Errorf("guarded: node %d: cannot type the body of %s", y.ID, sigma.Label)
		}
		father := atoms[t.Nodes[y.Parent].ID]
		for _, pi := range types {
			found := false
			for _, z := range t.Nodes {
				if pi.IsSideatom(atoms[z.ID], father) {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("guarded: condition 2: node %d lacks a %v side-parent", y.ID, pi)
			}
		}
	}
	// Before relation acyclicity.
	adj := t.beforeAdjacency(atoms)
	color := make([]int, len(t.Nodes))
	var dfs func(v int) bool
	dfs = func(v int) bool {
		color[v] = 1
		for _, u := range adj[v] {
			if color[u] == 1 {
				return false
			}
			if color[u] == 0 && !dfs(u) {
				return false
			}
		}
		color[v] = 2
		return true
	}
	for v := range t.Nodes {
		if color[v] == 0 && !dfs(v) {
			return fmt.Errorf("guarded: condition 3: ≺b has a cycle")
		}
	}
	return nil
}

// beforeAdjacency computes the one-step ≺b edges over the tree:
// F-before-non-F, parents (tree fathers and side-parents), and inverted
// stops.
func (t *AJT) beforeAdjacency(atoms []logic.Atom) [][]int {
	adj := make([][]int, len(t.Nodes))
	addEdge := func(a, b int) { adj[a] = append(adj[a], b) }
	for _, y := range t.Nodes {
		if y.Label.Origin == OriginF {
			for _, z := range t.Nodes {
				if z.Label.Origin != OriginF {
					addEdge(y.ID, z.ID)
				}
			}
			continue
		}
		addEdge(y.Parent, y.ID)
		sigma := t.Set.TGDs[y.Label.Origin]
		guard, _ := sigma.Guard()
		types, ok := BodyTypes(guard, sigma.SideAtoms())
		if ok {
			father := atoms[t.Nodes[y.Parent].ID]
			for _, pi := range types {
				for _, z := range t.Nodes {
					if z.ID != y.ID && pi.IsSideatom(atoms[z.ID], father) {
						addEdge(z.ID, y.ID)
					}
				}
			}
		}
		// Stops: x ≺s y gives edge y -> x in ≺b.
		frontier := t.frontierTerms(y, atoms)
		for _, x := range t.Nodes {
			if x.ID != y.ID && chase.Stops(atoms[x.ID], atoms[y.ID], frontier) {
				addEdge(y.ID, x.ID)
			}
		}
	}
	for i := range adj {
		sort.Ints(adj[i])
	}
	return adj
}

// frontierTerms returns the terms of δ(y) at the frontier positions of its
// origin's head.
func (t *AJT) frontierTerms(y AJTNode, atoms []logic.Atom) logic.TermSet {
	out := make(logic.TermSet)
	sigma := t.Set.TGDs[y.Label.Origin]
	head := sigma.HeadAtom()
	frontier := sigma.Frontier()
	for i, v := range head.Args {
		if frontier.Has(v) {
			out[atoms[y.ID].Args[i]] = struct{}{}
		}
	}
	return out
}

// FromRun builds an abstract join tree from a restricted chase run of a
// guarded set on an acyclic database: the database's join tree supplies the
// F-nodes, and every derivation step hangs under the node designated for
// its guard image, labeled with the equivalence pattern of the concrete
// atoms. The resulting tree validates against Definition 5.8 and decodes
// back to the run's atoms — the executable face of Lemma 5.9.
func FromRun(run *chase.Run) (*AJT, error) {
	if !run.Set.IsGuarded() {
		return nil, fmt.Errorf("guarded: FromRun needs a guarded set")
	}
	ar := run.Set.MaxArity()
	dbAtoms := run.Database.Atoms()
	jt, ok := jointree.Build(dbAtoms)
	if !ok {
		return nil, fmt.Errorf("guarded: database is not acyclic")
	}
	t := &AJT{Set: run.Set}
	owner := make(map[string]int) // atom key -> node designated to host children
	for id, n := range jt.Nodes {
		var father logic.Atom
		if n.Parent >= 0 {
			father = dbAtoms[n.Parent]
		}
		t.Nodes = append(t.Nodes, AJTNode{
			ID:     id,
			Label:  Label{Pred: n.Atom.Pred, Origin: OriginF, Eq: EqFromAtoms(father, n.Atom, ar)},
			Parent: n.Parent,
		})
		if _, dup := owner[n.Atom.Key()]; !dup {
			owner[n.Atom.Key()] = id
		}
	}
	// Children links in a second pass: GYO parent pointers may reference
	// later indices.
	for id, n := range jt.Nodes {
		if n.Parent >= 0 {
			t.Nodes[n.Parent].Children = append(t.Nodes[n.Parent].Children, id)
		}
	}
	for i, step := range run.Steps {
		tr := step.Trigger
		guard, ok := tr.TGD.Guard()
		if !ok {
			return nil, fmt.Errorf("guarded: step %d TGD unguarded", i)
		}
		guardImage := guard.Apply(tr.H)
		parent, ok := owner[guardImage.Key()]
		if !ok {
			return nil, fmt.Errorf("guarded: step %d: guard image %v has no node", i, guardImage)
		}
		produced := step.Result[0]
		id := len(t.Nodes)
		t.Nodes = append(t.Nodes, AJTNode{
			ID:     id,
			Label:  Label{Pred: produced.Pred, Origin: tr.TGDIndex, Eq: EqFromAtoms(t.atomOfNode(parent, dbAtoms, run), produced, ar)},
			Parent: parent,
		})
		t.Nodes[parent].Children = append(t.Nodes[parent].Children, id)
		if _, dup := owner[produced.Key()]; !dup {
			owner[produced.Key()] = id
		}
	}
	return t, nil
}

// atomOfNode recovers the concrete atom of a node built by FromRun: F-nodes
// map to database atoms, step nodes to their produced atom.
func (t *AJT) atomOfNode(id int, dbAtoms []logic.Atom, run *chase.Run) logic.Atom {
	if id < len(dbAtoms) {
		return dbAtoms[id]
	}
	return run.Steps[id-len(dbAtoms)].Result[0]
}
