package instance

import (
	"testing"
	"testing/quick"

	"airct/internal/logic"
)

func atom(name string, args ...logic.Term) logic.Atom { return logic.MustAtom(name, args...) }

func TestInstanceAddHasLen(t *testing.T) {
	in := New()
	a := atom("R", logic.Const("a"), logic.Const("b"))
	if !in.Add(a) {
		t.Fatal("first Add should be new")
	}
	if in.Add(a) {
		t.Fatal("second Add should not be new")
	}
	if !in.Has(a) || in.Len() != 1 {
		t.Fatal("Has/Len mismatch")
	}
	b := atom("R", logic.Const("a"), logic.NewNull("n"))
	in.Add(b)
	if in.Len() != 2 {
		t.Fatal("null-carrying atom should be distinct")
	}
}

func TestInstanceRejectsVariables(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on variable atom")
		}
	}()
	New().Add(atom("R", logic.Var("X")))
}

func TestInstanceIndexes(t *testing.T) {
	in := FromAtoms(
		atom("R", logic.Const("a"), logic.Const("b")),
		atom("R", logic.Const("a"), logic.Const("c")),
		atom("S", logic.Const("b")),
	)
	if got := in.AtomsByPredicate(logic.Pred("R", 2)); len(got) != 2 {
		t.Errorf("byPred R/2 = %d atoms", len(got))
	}
	if got := in.AtomsByPredicate(logic.Pred("T", 1)); got != nil {
		t.Errorf("byPred missing pred = %v", got)
	}
	if got := in.AtomIndexesByPredicateTerm(logic.Pred("R", 2), 1, logic.Const("a")); len(got) != 2 {
		t.Errorf("byPT (R,1,a) = %d atoms", len(got))
	}
	if got := in.AtomIndexesByPredicateTerm(logic.Pred("R", 2), 2, logic.Const("b")); len(got) != 1 {
		t.Errorf("byPT (R,2,b) = %d atoms", len(got))
	}
	if got := in.AtomIndexesByPredicateTerm(logic.Pred("R", 2), 2, logic.Const("zz")); got != nil {
		t.Errorf("byPT unknown term = %v", got)
	}
	if got := in.AtomByIndex(2); got.Pred.Name != "S" {
		t.Errorf("AtomByIndex(2) = %v", got)
	}
}

func TestInstanceDomSchemaClone(t *testing.T) {
	in := FromAtoms(
		atom("R", logic.Const("a"), logic.NewNull("n")),
		atom("S", logic.Const("b")),
	)
	dom := in.Dom()
	if len(dom) != 3 {
		t.Errorf("Dom = %v", dom)
	}
	if in.NullCount() != 1 {
		t.Errorf("NullCount = %d", in.NullCount())
	}
	sch := in.Schema()
	if sch.Len() != 2 || sch.MaxArity() != 2 {
		t.Errorf("Schema = %v", sch.Predicates())
	}
	cl := in.Clone()
	cl.Add(atom("T", logic.Const("z")))
	if in.Has(atom("T", logic.Const("z"))) {
		t.Error("Clone must be independent")
	}
	if !cl.ContainsAll(in) {
		t.Error("clone must contain original")
	}
	if in.ContainsAll(cl) {
		t.Error("original must not contain extended clone")
	}
}

func TestInstanceEqualAndDiff(t *testing.T) {
	a := FromAtoms(atom("R", logic.Const("x")), atom("S", logic.Const("y")))
	b := FromAtoms(atom("S", logic.Const("y")), atom("R", logic.Const("x")))
	if !a.Equal(b) {
		t.Error("order must not matter for Equal")
	}
	c := FromAtoms(atom("R", logic.Const("x")))
	if a.Equal(c) {
		t.Error("different sizes must differ")
	}
	d := Diff(a, c)
	if len(d) != 1 || d[0].Pred.Name != "S" {
		t.Errorf("Diff = %v", d)
	}
	u := Union(a, c)
	if u.Len() != 2 {
		t.Errorf("Union size = %d", u.Len())
	}
}

func TestDatabase(t *testing.T) {
	db := NewDatabase()
	if err := db.Add(atom("R", logic.Const("a"))); err != nil {
		t.Fatalf("Add fact: %v", err)
	}
	if err := db.Add(atom("R", logic.NewNull("n"))); err == nil {
		t.Fatal("nulls must be rejected from databases")
	}
	if db.Len() != 1 || !db.Has(atom("R", logic.Const("a"))) {
		t.Fatal("database content wrong")
	}
	inst := db.Instance()
	inst.Add(atom("S", logic.Const("b")))
	if db.Len() != 1 {
		t.Error("Instance() must return an independent copy")
	}
	if _, err := DatabaseFromAtoms(atom("R", logic.Var("X"))); err == nil {
		t.Error("DatabaseFromAtoms must reject variables")
	}
	if got := MustDatabase(atom("P", logic.Const("c"))).Len(); got != 1 {
		t.Errorf("MustDatabase len = %d", got)
	}
}

func TestMustDatabasePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustDatabase(atom("R", logic.NewNull("n")))
}

func TestSortedKeysDeterministic(t *testing.T) {
	a := FromAtoms(atom("B", logic.Const("b")), atom("A", logic.Const("a")))
	b := FromAtoms(atom("A", logic.Const("a")), atom("B", logic.Const("b")))
	ka, kb := a.SortedKeys(), b.SortedKeys()
	if len(ka) != 2 || len(kb) != 2 || ka[0] != kb[0] || ka[1] != kb[1] {
		t.Errorf("SortedKeys mismatch: %v vs %v", ka, kb)
	}
}

// Property: Add is idempotent and Len equals the number of distinct keys.
func TestInstanceAddProperty(t *testing.T) {
	f := func(xs []uint8) bool {
		in := New()
		distinct := map[string]bool{}
		for _, x := range xs {
			a := atom("P", logic.Const(string(rune('a'+x%5))))
			in.Add(a)
			distinct[a.Key()] = true
		}
		return in.Len() == len(distinct)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: insertion order is preserved for distinct atoms.
func TestInstanceOrderProperty(t *testing.T) {
	f := func(xs []uint8) bool {
		in := New()
		var want []string
		seen := map[string]bool{}
		for _, x := range xs {
			a := atom("Q", logic.Const(string(rune('a'+x%7))))
			if !seen[a.Key()] {
				want = append(want, a.Key())
				seen[a.Key()] = true
			}
			in.Add(a)
		}
		got := in.Atoms()
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i].Key() != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
