// Package instance implements instances (possibly infinite in the paper,
// finite here) and databases over a schema, with the indexes the chase and
// the homomorphism search need: by predicate and by (predicate, position,
// term). An Instance is a *set* of ground atoms — duplicates are silently
// merged — matching Section 2 of the paper; multiset structures live in
// ochase.
//
// Identity is interned: each instance owns a logic.Interner mapping terms
// and predicates to dense IDs, and membership is a (PredID, TermID...)
// tuple-table probe — no string keys are built on the Add/Has/Diff/Equal
// paths. Atom.Key() remains available as the debug/test rendering.
//
// Concurrency contract: an Instance has a single writer. Readers may run
// concurrently with each other, but not with Add. Engines own their
// instance (RunChase chases a clone, never the caller's database).
package instance

import (
	"fmt"
	"sort"
	"strings"

	"airct/internal/logic"
)

// Instance is a finite set of ground atoms (constants and nulls only),
// indexed for fast trigger and homomorphism search. The zero value is not
// usable; call New.
type Instance struct {
	tab   *logic.Interner   // term/pred IDs; owned or shared (NewWithInterner)
	atoms *logic.TupleTable // (PredID, TermID...) identity; TupleID = insertion index
	order []logic.Atom      // insertion order, no duplicates

	byPred  map[logic.Predicate][]logic.Atom // interface index for the generic search
	predIdx map[logic.PredID][]int32         // insertion indices per predicate
	ptIdx   map[uint64][]int32               // packed (pred, pos, term) -> insertion indices

	fp logic.Fingerprint // order-independent set fingerprint, maintained on insert

	tupbuf []uint32 // scratch for tuple probes; single-writer

	// termArena backs the []Term argument slices of atoms materialised by
	// AddTuple, chunk-allocated so steady-state materialisation performs no
	// per-atom allocation (full chunks stay referenced by their atoms; Reset
	// reuses the current chunk).
	termArena []logic.Term

	// touched* record which index-map entries gained their first element
	// since the last Reset, so Reset can truncate exactly those in O(atoms)
	// — not O(every key ever) — while keeping the slices' capacity.
	touchedBy   []logic.Predicate
	touchedPred []logic.PredID
	touchedPT   []uint64

	// lite instances (NewScratch) maintain only the ID-plane state the slot
	// search reads — identity table, posting lists, fingerprint — skipping
	// materialised atoms and the interface-keyed byPred index. The atom-form
	// read API stays correct by materialising on demand from the identity
	// tuples; it allocates per call, which the hot paths never do.
	lite bool
}

// ptPack packs a (PredID, 1-based position, TermID) triple into one map
// key: 22 bits of predicate, 10 of position, 32 of term.
func ptPack(p logic.PredID, pos int, t logic.TermID) uint64 {
	return uint64(p)<<42 | uint64(pos)<<32 | uint64(t)
}

// New returns an empty instance.
func New() *Instance {
	return NewWithInterner(logic.NewInterner())
}

// NewWithInterner returns an empty instance whose identity tables are the
// given interner, shared with the caller. Sharing one interner across many
// instances makes their TermIDs directly comparable — the ∀∃ search keys
// every explored chase state on one interner so triggers, nulls and
// fingerprint caches agree across states. The single-writer contract covers
// the interner and every instance sharing it together: one writer at a
// time across the whole group.
func NewWithInterner(tab *logic.Interner) *Instance {
	return NewWithInternerHint(tab, 16)
}

// NewWithInternerHint is NewWithInterner with a capacity hint: the identity
// table and indexes are presized for about atomsHint atoms. The ∀∃ search
// materialises one instance per expanded state with a known final size, so
// presizing removes the rehash-while-growing cost from the hottest loop.
func NewWithInternerHint(tab *logic.Interner, atomsHint int) *Instance {
	if atomsHint < 16 {
		atomsHint = 16
	}
	return &Instance{
		tab:     tab,
		atoms:   logic.NewTupleTable(atomsHint),
		order:   make([]logic.Atom, 0, atomsHint),
		byPred:  make(map[logic.Predicate][]logic.Atom),
		predIdx: make(map[logic.PredID][]int32),
		ptIdx:   make(map[uint64][]int32, 2*atomsHint),
	}
}

// NewScratch returns an empty *lite* instance on the shared interner: the
// ∀∃ search's reusable materialisation arena. A lite instance maintains
// only what the ID-plane consumers (logic.IDSource/DeltaSource probes,
// HasTuple, Fingerprint) read — no per-atom logic.Atom materialisation and
// no byPred interface index — which is what makes Reset + refill the
// allocation-free steady state of the search. The atom-form read API
// (Atoms, AtomAt, AtomsByPredicate, ...) still works, materialising from
// the identity tuples on demand.
func NewScratch(tab *logic.Interner, atomsHint int) *Instance {
	in := NewWithInternerHint(tab, atomsHint)
	in.lite = true
	return in
}

// FromAtoms returns an instance containing the given atoms (duplicates are
// merged). It panics if any atom contains a variable.
func FromAtoms(atoms ...logic.Atom) *Instance {
	inst := New()
	for _, a := range atoms {
		inst.Add(a)
	}
	return inst
}

// Interner exposes the instance's identity tables. The engine shares it to
// translate between terms and IDs; the single-writer contract extends to
// it (interning through it counts as writing).
func (in *Instance) Interner() *logic.Interner { return in.tab }

// Reset empties the instance while keeping its interner and the allocated
// capacity of every index — the ∀∃ search's scratch-instance path: each
// searcher (or parallel worker) materialises every popped state into one
// reused arena instead of allocating maps and tables per state. Index-map
// entries are truncated in place (only the entries touched since the last
// Reset, so the cost is O(atoms), and their capacity — like the term
// arena's — carries over). The interner is untouched: TermIDs minted
// through this instance stay valid. Atoms and slices previously returned by
// the read API become invalid.
func (in *Instance) Reset() {
	in.atoms.Reset()
	in.order = in.order[:0]
	in.termArena = in.termArena[:0]
	for _, p := range in.touchedBy {
		in.byPred[p] = in.byPred[p][:0]
	}
	for _, p := range in.touchedPred {
		in.predIdx[p] = in.predIdx[p][:0]
	}
	for _, k := range in.touchedPT {
		in.ptIdx[k] = in.ptIdx[k][:0]
	}
	in.touchedBy = in.touchedBy[:0]
	in.touchedPred = in.touchedPred[:0]
	in.touchedPT = in.touchedPT[:0]
	in.fp = logic.Fingerprint{}
}

// Add inserts the atom and reports whether it was new. It panics if the
// atom contains a variable: instances hold ground atoms only, and inserting
// a non-ground atom is a programming error.
func (in *Instance) Add(a logic.Atom) bool {
	if !a.IsGround() {
		panic(fmt.Sprintf("instance: non-ground atom %v", a))
	}
	pid := in.tab.InternPred(a.Pred)
	in.tupbuf = in.tupbuf[:0]
	in.tupbuf = append(in.tupbuf, uint32(pid))
	for _, t := range a.Args {
		in.tupbuf = append(in.tupbuf, uint32(in.tab.InternTerm(t)))
	}
	_, isNew := in.insert(pid, in.tupbuf, a)
	return isNew
}

// AddTuple inserts the atom with the given interned identity, materializing
// its logic.Atom form from the IDs. It returns the atom's insertion index
// and whether it was new. This is the engine's allocation-free membership
// path (the Atom is materialized only for new atoms).
func (in *Instance) AddTuple(pid logic.PredID, args []logic.TermID) (int32, bool) {
	in.tupbuf = in.tupbuf[:0]
	in.tupbuf = append(in.tupbuf, uint32(pid))
	for _, t := range args {
		in.tupbuf = append(in.tupbuf, uint32(t))
	}
	if idx, ok := in.atoms.Lookup(in.tupbuf); ok {
		return idx, false
	}
	var a logic.Atom
	if !in.lite {
		terms := in.allocTerms(len(args))
		for i, t := range args {
			terms[i] = in.tab.Term(t)
		}
		a = logic.Atom{Pred: in.tab.Pred(pid), Args: terms}
	}
	idx, _ := in.insert(pid, in.tupbuf, a)
	return idx, true
}

// allocTerms hands out an n-term slice from the arena, growing it by chunks:
// the dominant steady-state allocation of the interned engine (one []Term
// per materialised atom) becomes amortised-free.
func (in *Instance) allocTerms(n int) []logic.Term {
	if len(in.termArena)+n > cap(in.termArena) {
		c := 2 * cap(in.termArena)
		if c < 256 {
			c = 256
		}
		if c < n {
			c = n
		}
		// The full chunk stays alive through the atoms that alias it.
		in.termArena = make([]logic.Term, 0, c)
	}
	start := len(in.termArena)
	in.termArena = in.termArena[:start+n]
	return in.termArena[start : start+n : start+n]
}

// insert stores the atom under the prepared identity tuple (pid, args...).
// First touches of an index entry since the last Reset are recorded so Reset
// can truncate them in place.
func (in *Instance) insert(pid logic.PredID, tuple []uint32, a logic.Atom) (int32, bool) {
	idx, isNew := in.atoms.Intern(tuple)
	if !isNew {
		return idx, false
	}
	in.fp = in.fp.Merge(in.tab.HashAtomIDs(pid, tuple[1:]))
	if !in.lite {
		in.order = append(in.order, a)
		lst := in.byPred[a.Pred]
		if len(lst) == 0 {
			in.touchedBy = append(in.touchedBy, a.Pred)
		}
		in.byPred[a.Pred] = append(lst, a)
	}
	lst := in.predIdx[pid]
	if len(lst) == 0 {
		in.touchedPred = append(in.touchedPred, pid)
	}
	in.predIdx[pid] = append(lst, idx)
	for i, t := range tuple[1:] {
		k := ptPack(pid, i+1, logic.TermID(t))
		lst := in.ptIdx[k]
		if len(lst) == 0 {
			in.touchedPT = append(in.touchedPT, k)
		}
		in.ptIdx[k] = append(lst, idx)
	}
	return idx, true
}

// RewriteTerms maps every argument of every atom through ρ and rebuilds the
// instance in place — the chase engine's equality step (EGD application):
// after unifying terms in a union-find, ρ sends each merged TermID to its
// class representative. Atoms are re-inserted in their previous insertion
// order; atoms that become identical under ρ merge silently (the returned
// count is how many were removed that way). The interner is untouched —
// merged-away TermIDs remain valid interner entries, they simply no longer
// occur in the instance.
//
// This is where *fingerprint repair* happens: the incremental 128-bit
// Fingerprint cannot be patched atom-by-atom under rewriting (a rewrite
// both removes duplicate atoms and changes survivors' hashes, and the
// commutative Merge has no sound "unmix" for an atom that may have been
// inserted along several paths), so the fingerprint is rebuilt from the
// merged atom multiset by re-running every insert. Cross-run cache keys,
// the fingerprint memo and ∀∃ dedup therefore see exactly the fingerprint
// a fresh instance holding the rewritten atom set would carry.
//
// All previously returned atoms, slices and insertion indices are
// invalidated, exactly like Reset.
func (in *Instance) RewriteTerms(ρ func(logic.TermID) logic.TermID) int {
	n := in.Len()
	if n == 0 {
		return 0
	}
	// Snapshot the identity tuples first: Reset invalidates the tuple table.
	flat := make([]uint32, 0, n*3)
	offs := make([]int32, n+1)
	for i := 0; i < n; i++ {
		tup := in.atoms.Tuple(int32(i))
		offs[i] = int32(len(flat))
		flat = append(flat, tup[0])
		for _, t := range tup[1:] {
			flat = append(flat, uint32(ρ(logic.TermID(t))))
		}
	}
	offs[n] = int32(len(flat))
	in.Reset()
	// Atoms handed out before the rewrite (e.g. a recorded derivation) alias
	// the current term-arena chunk, which Reset would otherwise reuse and
	// clobber; start a fresh chunk instead and leave theirs untouched.
	in.termArena = nil
	for i := 0; i < n; i++ {
		tup := flat[offs[i]:offs[i+1]]
		pid := logic.PredID(tup[0])
		var a logic.Atom
		if !in.lite {
			terms := in.allocTerms(len(tup) - 1)
			for k, t := range tup[1:] {
				terms[k] = in.tab.Term(logic.TermID(t))
			}
			a = logic.Atom{Pred: in.tab.Pred(pid), Args: terms}
		}
		in.tupbuf = append(in.tupbuf[:0], tup...)
		in.insert(pid, in.tupbuf, a)
	}
	return n - in.Len()
}

// AddAll inserts every atom and returns the number that were new.
func (in *Instance) AddAll(atoms []logic.Atom) int {
	n := 0
	for _, a := range atoms {
		if in.Add(a) {
			n++
		}
	}
	return n
}

// lookupTuple builds the identity tuple for a into buf without interning;
// ok is false when some term or the predicate was never seen (so a is
// absent). The read paths pass stack-local buffers so concurrent readers
// never share scratch (in.tupbuf belongs to the writer).
func (in *Instance) lookupTuple(a logic.Atom, buf []uint32) ([]uint32, bool) {
	pid, ok := in.tab.LookupPred(a.Pred)
	if !ok {
		return nil, false
	}
	buf = append(buf, uint32(pid))
	for _, t := range a.Args {
		id, ok := in.tab.LookupTerm(t)
		if !ok {
			return nil, false
		}
		buf = append(buf, uint32(id))
	}
	return buf, true
}

// Has reports whether the atom is present. No strings, no interning: a
// probe against the identity tables. Safe for concurrent readers.
func (in *Instance) Has(a logic.Atom) bool {
	var arr [12]uint32
	tup, ok := in.lookupTuple(a, arr[:0])
	if !ok {
		return false
	}
	_, ok = in.atoms.Lookup(tup)
	return ok
}

// HasTuple reports membership of an already-interned atom identity. Safe
// for concurrent readers.
func (in *Instance) HasTuple(pid logic.PredID, args []logic.TermID) bool {
	var arr [12]uint32
	tup := append(arr[:0], uint32(pid))
	for _, t := range args {
		tup = append(tup, uint32(t))
	}
	_, ok := in.atoms.Lookup(tup)
	return ok
}

// Len returns the number of (distinct) atoms.
func (in *Instance) Len() int { return in.atoms.Len() }

// atomFromTuple materialises the atom at insertion index i from its
// identity tuple — the lite instances' on-demand atom form. Allocates.
func (in *Instance) atomFromTuple(i int32) logic.Atom {
	tup := in.atoms.Tuple(i)
	terms := make([]logic.Term, len(tup)-1)
	for k, t := range tup[1:] {
		terms[k] = in.tab.Term(logic.TermID(t))
	}
	return logic.Atom{Pred: in.tab.Pred(logic.PredID(tup[0])), Args: terms}
}

// Fingerprint returns the 128-bit order-independent fingerprint of the atom
// set in O(1): it is maintained incrementally on every insert (Add, AddTuple,
// AddAll). Two instances holding the same atoms have equal fingerprints
// regardless of insertion order or interner — including across Clone —
// provided their interners hash terms alike; term-hash overrides installed
// via logic.Interner.InternTermWithHash (null canonicalisation) do not carry
// over to Clone's fresh interner (see Clone). Callers treating fingerprint
// equality as set equality accept the 128-bit collision probability (see
// logic.Fingerprint).
func (in *Instance) Fingerprint() logic.Fingerprint { return in.fp }

// Atoms returns the atoms in insertion order. The returned slice is a copy.
func (in *Instance) Atoms() []logic.Atom {
	if in.lite {
		out := make([]logic.Atom, in.Len())
		for i := range out {
			out[i] = in.atomFromTuple(int32(i))
		}
		return out
	}
	out := make([]logic.Atom, len(in.order))
	copy(out, in.order)
	return out
}

// AtomAt returns the i-th inserted atom (0-based).
func (in *Instance) AtomAt(i int) logic.Atom {
	if in.lite {
		return in.atomFromTuple(int32(i))
	}
	return in.order[i]
}

// AtomsByPredicate implements logic.AtomSource.
func (in *Instance) AtomsByPredicate(p logic.Predicate) []logic.Atom {
	if in.lite {
		pid, ok := in.tab.LookupPred(p)
		if !ok {
			return nil
		}
		ids := in.predIdx[pid]
		if len(ids) == 0 {
			return nil
		}
		out := make([]logic.Atom, len(ids))
		for i, idx := range ids {
			out[i] = in.atomFromTuple(idx)
		}
		return out
	}
	return in.byPred[p]
}

// AtomIndexesByPredicateTerm implements logic.IndexedSource: insertion
// indices of atoms with predicate p whose (1-based) pos-th argument is t.
func (in *Instance) AtomIndexesByPredicateTerm(p logic.Predicate, pos int, t logic.Term) []int32 {
	pid, ok := in.tab.LookupPred(p)
	if !ok {
		return nil
	}
	tid, ok := in.tab.LookupTerm(t)
	if !ok {
		return nil
	}
	return in.ptIdx[ptPack(pid, pos, tid)]
}

// AtomByIndex implements logic.IndexedSource.
func (in *Instance) AtomByIndex(i int32) logic.Atom { return in.AtomAt(int(i)) }

// AtomArgIDs implements logic.IDSource: the raw interned argument tuple
// (each element is a logic.TermID value) of the atom at insertion index i.
func (in *Instance) AtomArgIDs(i int32) []uint32 {
	return in.atoms.Tuple(i)[1:]
}

// AtomPredID returns the interned predicate of the atom at insertion index i.
func (in *Instance) AtomPredID(i int32) logic.PredID {
	return logic.PredID(in.atoms.Tuple(i)[0])
}

// IdxByPred implements logic.IDSource.
func (in *Instance) IdxByPred(p logic.PredID) []int32 { return in.predIdx[p] }

// IdxByPredTerm implements logic.IDSource.
func (in *Instance) IdxByPredTerm(p logic.PredID, pos int, t logic.TermID) []int32 {
	return in.ptIdx[ptPack(p, pos, t)]
}

// IdxByPredSince implements logic.DeltaSource: the insertion indices >= lo
// of atoms with predicate p. Posting lists are ascending (insertion order),
// so this is a binary-searched suffix view — no copy. It is how the
// delta-maintained trigger index reads the atoms a copy-on-write search
// state added on top of its parent: the delta of a state materialised
// parent-first is exactly the insertion-index range [parentLen, Len()).
func (in *Instance) IdxByPredSince(p logic.PredID, lo int32) []int32 {
	list := in.predIdx[p]
	return list[logic.LowerBound(list, lo):]
}

var _ logic.DeltaSource = (*Instance)(nil)

// Dom returns the active domain dom(I): every term occurring in the
// instance.
func (in *Instance) Dom() logic.TermSet {
	s := make(logic.TermSet)
	for i := 0; i < in.Len(); i++ {
		for _, t := range in.atoms.Tuple(int32(i))[1:] {
			s[in.tab.Term(logic.TermID(t))] = struct{}{}
		}
	}
	return s
}

// Schema returns the set of predicates occurring in the instance.
func (in *Instance) Schema() *logic.Schema {
	s := logic.NewSchema()
	if in.lite {
		for pid, ids := range in.predIdx {
			if len(ids) > 0 {
				s.Add(in.tab.Pred(pid))
			}
		}
		return s
	}
	for p := range in.byPred {
		if len(in.byPred[p]) > 0 {
			s.Add(p)
		}
	}
	return s
}

// Clone returns a deep-enough copy: atoms are immutable by convention, so
// only the index structures are rebuilt. Atom insertion indices (and hence
// tuple IDs) match the original; TermIDs need not — the clone interns
// terms in atom-argument appearance order, while the original's writer may
// have interned them in another order (the engine interns nulls before the
// atoms that carry them). Never compare TermIDs across instances.
//
// The clone owns a fresh interner with content hashes only: term-hash
// overrides installed on the original's interner (null canonicalisation) do
// not carry over, so Fingerprint() of the clone can differ when overrides
// were in play. The ∀∃ search, which installs overrides, never clones.
func (in *Instance) Clone() *Instance {
	out := New()
	for i := 0; i < in.Len(); i++ {
		out.Add(in.AtomAt(i))
	}
	return out
}

// Equal reports set equality of the two instances.
func (in *Instance) Equal(other *Instance) bool {
	if in.Len() != other.Len() {
		return false
	}
	return other.ContainsAll(in)
}

// ContainsAll reports whether every atom of other is present in in.
func (in *Instance) ContainsAll(other *Instance) bool {
	for i := 0; i < other.Len(); i++ {
		if !in.Has(other.AtomAt(i)) {
			return false
		}
	}
	return true
}

// NullCount returns the number of distinct nulls in the active domain.
func (in *Instance) NullCount() int {
	n := 0
	for t := range in.Dom() {
		if t.IsNull() {
			n++
		}
	}
	return n
}

// String renders the atoms sorted, one conjunction.
func (in *Instance) String() string {
	atoms := in.Atoms()
	logic.SortAtoms(atoms)
	parts := make([]string, len(atoms))
	for i, a := range atoms {
		parts[i] = a.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// Database is a finite set of facts: atoms whose arguments are constants
// only (no nulls, no variables).
type Database struct {
	inst *Instance
}

// NewDatabase returns an empty database.
func NewDatabase() *Database { return &Database{inst: New()} }

// DatabaseFromAtoms builds a database from facts, returning an error if any
// atom is not a fact.
func DatabaseFromAtoms(atoms ...logic.Atom) (*Database, error) {
	db := NewDatabase()
	for _, a := range atoms {
		if err := db.Add(a); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// MustDatabase is DatabaseFromAtoms that panics on error; for tests and
// examples with literal data.
func MustDatabase(atoms ...logic.Atom) *Database {
	db, err := DatabaseFromAtoms(atoms...)
	if err != nil {
		panic(err)
	}
	return db
}

// Add inserts a fact, rejecting atoms that contain nulls or variables.
func (db *Database) Add(a logic.Atom) error {
	if !a.IsFact() {
		return fmt.Errorf("instance: %v is not a fact (databases hold constants only)", a)
	}
	db.inst.Add(a)
	return nil
}

// Instance returns a fresh Instance holding the database's facts; the chase
// mutates the copy, never the database.
func (db *Database) Instance() *Instance { return db.inst.Clone() }

// Atoms returns the facts in insertion order.
func (db *Database) Atoms() []logic.Atom { return db.inst.Atoms() }

// Len returns the number of facts.
func (db *Database) Len() int { return db.inst.Len() }

// Has reports membership.
func (db *Database) Has(a logic.Atom) bool { return db.inst.Has(a) }

// Fingerprint returns the order-independent content fingerprint of the
// database's fact set — the instance half of the (set, instance) identity
// cross-run caches key per-database artefacts on.
func (db *Database) Fingerprint() logic.Fingerprint { return db.inst.Fingerprint() }

// Dom returns the database's active domain (constants only).
func (db *Database) Dom() logic.TermSet { return db.inst.Dom() }

// Schema returns the database's predicates.
func (db *Database) Schema() *logic.Schema { return db.inst.Schema() }

// String renders the facts.
func (db *Database) String() string { return db.inst.String() }

// Union returns a new instance containing the atoms of all the given
// instances.
func Union(instances ...*Instance) *Instance {
	out := New()
	for _, in := range instances {
		for i := 0; i < in.Len(); i++ {
			out.Add(in.AtomAt(i))
		}
	}
	return out
}

// Diff returns the atoms of a that are not in b, in a's insertion order.
func Diff(a, b *Instance) []logic.Atom {
	var out []logic.Atom
	for i := 0; i < a.Len(); i++ {
		if atom := a.AtomAt(i); !b.Has(atom) {
			out = append(out, atom)
		}
	}
	return out
}

// SortedKeys returns the canonical atom keys in sorted order; handy for
// deterministic comparisons in tests. This is a debug/test renderer: it
// builds one string per atom.
func (in *Instance) SortedKeys() []string {
	keys := make([]string, 0, in.Len())
	for i := 0; i < in.Len(); i++ {
		keys = append(keys, in.AtomAt(i).Key())
	}
	sort.Strings(keys)
	return keys
}
