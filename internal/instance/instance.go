// Package instance implements instances (possibly infinite in the paper,
// finite here) and databases over a schema, with the indexes the chase and
// the homomorphism search need: by predicate and by (predicate, position,
// term). An Instance is a *set* of atoms — duplicates are silently merged —
// matching Section 2 of the paper; multiset structures live in ochase.
package instance

import (
	"fmt"
	"sort"
	"strings"

	"airct/internal/logic"
)

type ptKey struct {
	pred logic.Predicate
	pos  int // 1-based
	term logic.Term
}

// Instance is a finite set of ground atoms (constants and nulls only),
// indexed for fast trigger and homomorphism search. The zero value is not
// usable; call New.
type Instance struct {
	byKey  map[string]int // atom key -> index into ordered
	byPred map[logic.Predicate][]logic.Atom
	byPT   map[ptKey][]logic.Atom
	order  []logic.Atom // insertion order, no duplicates
}

// New returns an empty instance.
func New() *Instance {
	return &Instance{
		byKey:  make(map[string]int),
		byPred: make(map[logic.Predicate][]logic.Atom),
		byPT:   make(map[ptKey][]logic.Atom),
	}
}

// FromAtoms returns an instance containing the given atoms (duplicates are
// merged). It panics if any atom contains a variable.
func FromAtoms(atoms ...logic.Atom) *Instance {
	inst := New()
	for _, a := range atoms {
		inst.Add(a)
	}
	return inst
}

// Add inserts the atom and reports whether it was new. It panics if the
// atom contains a variable: instances hold ground atoms only, and inserting
// a non-ground atom is a programming error.
func (in *Instance) Add(a logic.Atom) bool {
	if !a.IsGround() {
		panic(fmt.Sprintf("instance: non-ground atom %v", a))
	}
	key := a.Key()
	if _, ok := in.byKey[key]; ok {
		return false
	}
	in.byKey[key] = len(in.order)
	in.order = append(in.order, a)
	in.byPred[a.Pred] = append(in.byPred[a.Pred], a)
	for i, t := range a.Args {
		k := ptKey{pred: a.Pred, pos: i + 1, term: t}
		in.byPT[k] = append(in.byPT[k], a)
	}
	return true
}

// AddAll inserts every atom and returns the number that were new.
func (in *Instance) AddAll(atoms []logic.Atom) int {
	n := 0
	for _, a := range atoms {
		if in.Add(a) {
			n++
		}
	}
	return n
}

// Has reports whether the atom is present.
func (in *Instance) Has(a logic.Atom) bool {
	_, ok := in.byKey[a.Key()]
	return ok
}

// Len returns the number of (distinct) atoms.
func (in *Instance) Len() int { return len(in.order) }

// Atoms returns the atoms in insertion order. The returned slice is a copy.
func (in *Instance) Atoms() []logic.Atom {
	out := make([]logic.Atom, len(in.order))
	copy(out, in.order)
	return out
}

// AtomAt returns the i-th inserted atom (0-based).
func (in *Instance) AtomAt(i int) logic.Atom { return in.order[i] }

// AtomsByPredicate implements logic.AtomSource.
func (in *Instance) AtomsByPredicate(p logic.Predicate) []logic.Atom { return in.byPred[p] }

// AtomsByPredicateTerm implements logic.IndexedSource: atoms with predicate
// p whose (1-based) pos-th argument is t.
func (in *Instance) AtomsByPredicateTerm(p logic.Predicate, pos int, t logic.Term) []logic.Atom {
	return in.byPT[ptKey{pred: p, pos: pos, term: t}]
}

// Dom returns the active domain dom(I): every term occurring in the
// instance.
func (in *Instance) Dom() logic.TermSet {
	s := make(logic.TermSet)
	for _, a := range in.order {
		for _, t := range a.Args {
			s[t] = struct{}{}
		}
	}
	return s
}

// Schema returns the set of predicates occurring in the instance.
func (in *Instance) Schema() *logic.Schema {
	s := logic.NewSchema()
	for p := range in.byPred {
		if len(in.byPred[p]) > 0 {
			s.Add(p)
		}
	}
	return s
}

// Clone returns a deep-enough copy: atoms are immutable by convention, so
// only the index structures are rebuilt.
func (in *Instance) Clone() *Instance {
	out := New()
	for _, a := range in.order {
		out.Add(a)
	}
	return out
}

// Equal reports set equality of the two instances.
func (in *Instance) Equal(other *Instance) bool {
	if in.Len() != other.Len() {
		return false
	}
	for key := range in.byKey {
		if _, ok := other.byKey[key]; !ok {
			return false
		}
	}
	return true
}

// ContainsAll reports whether every atom of other is present in in.
func (in *Instance) ContainsAll(other *Instance) bool {
	for key := range other.byKey {
		if _, ok := in.byKey[key]; !ok {
			return false
		}
	}
	return true
}

// NullCount returns the number of distinct nulls in the active domain.
func (in *Instance) NullCount() int {
	n := 0
	for t := range in.Dom() {
		if t.IsNull() {
			n++
		}
	}
	return n
}

// String renders the atoms sorted, one conjunction.
func (in *Instance) String() string {
	atoms := in.Atoms()
	logic.SortAtoms(atoms)
	parts := make([]string, len(atoms))
	for i, a := range atoms {
		parts[i] = a.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// Database is a finite set of facts: atoms whose arguments are constants
// only (no nulls, no variables).
type Database struct {
	inst *Instance
}

// NewDatabase returns an empty database.
func NewDatabase() *Database { return &Database{inst: New()} }

// DatabaseFromAtoms builds a database from facts, returning an error if any
// atom is not a fact.
func DatabaseFromAtoms(atoms ...logic.Atom) (*Database, error) {
	db := NewDatabase()
	for _, a := range atoms {
		if err := db.Add(a); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// MustDatabase is DatabaseFromAtoms that panics on error; for tests and
// examples with literal data.
func MustDatabase(atoms ...logic.Atom) *Database {
	db, err := DatabaseFromAtoms(atoms...)
	if err != nil {
		panic(err)
	}
	return db
}

// Add inserts a fact, rejecting atoms that contain nulls or variables.
func (db *Database) Add(a logic.Atom) error {
	if !a.IsFact() {
		return fmt.Errorf("instance: %v is not a fact (databases hold constants only)", a)
	}
	db.inst.Add(a)
	return nil
}

// Instance returns a fresh Instance holding the database's facts; the chase
// mutates the copy, never the database.
func (db *Database) Instance() *Instance { return db.inst.Clone() }

// Atoms returns the facts in insertion order.
func (db *Database) Atoms() []logic.Atom { return db.inst.Atoms() }

// Len returns the number of facts.
func (db *Database) Len() int { return db.inst.Len() }

// Has reports membership.
func (db *Database) Has(a logic.Atom) bool { return db.inst.Has(a) }

// Dom returns the database's active domain (constants only).
func (db *Database) Dom() logic.TermSet { return db.inst.Dom() }

// Schema returns the database's predicates.
func (db *Database) Schema() *logic.Schema { return db.inst.Schema() }

// String renders the facts.
func (db *Database) String() string { return db.inst.String() }

// Union returns a new instance containing the atoms of all the given
// instances.
func Union(instances ...*Instance) *Instance {
	out := New()
	for _, in := range instances {
		for _, a := range in.order {
			out.Add(a)
		}
	}
	return out
}

// Diff returns the atoms of a that are not in b, in a's insertion order.
func Diff(a, b *Instance) []logic.Atom {
	var out []logic.Atom
	for _, atom := range a.order {
		if !b.Has(atom) {
			out = append(out, atom)
		}
	}
	return out
}

// SortedKeys returns the canonical atom keys in sorted order; handy for
// deterministic comparisons in tests.
func (in *Instance) SortedKeys() []string {
	keys := make([]string, 0, len(in.byKey))
	for k := range in.byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
