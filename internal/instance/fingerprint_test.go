package instance

import (
	"fmt"
	"math/rand"
	"testing"

	"airct/internal/logic"
)

// randomAtoms returns n distinct random ground atoms over a small schema.
func randomAtoms(rng *rand.Rand, n int) []logic.Atom {
	seen := make(map[string]bool)
	var out []logic.Atom
	for len(out) < n {
		pred := logic.Pred(fmt.Sprintf("P%d", rng.Intn(4)), 1+rng.Intn(3))
		args := make([]logic.Term, pred.Arity)
		for i := range args {
			if rng.Intn(4) == 0 {
				args[i] = logic.NewNull(fmt.Sprintf("n%d", rng.Intn(6)))
			} else {
				args[i] = logic.Const(fmt.Sprintf("c%d", rng.Intn(8)))
			}
		}
		a := logic.NewAtom(pred, args...)
		if seen[a.Key()] {
			continue
		}
		seen[a.Key()] = true
		out = append(out, a)
	}
	return out
}

func TestFingerprintInsertionOrderInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		atoms := randomAtoms(rng, 3+rng.Intn(20))
		want := FromAtoms(atoms...).Fingerprint()
		if want != logic.FingerprintAtoms(atoms) {
			t.Fatalf("trial %d: incremental fingerprint disagrees with batch FingerprintAtoms", trial)
		}
		for shuffle := 0; shuffle < 5; shuffle++ {
			perm := append([]logic.Atom(nil), atoms...)
			rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
			if got := FromAtoms(perm...).Fingerprint(); got != want {
				t.Fatalf("trial %d: fingerprint depends on insertion order", trial)
			}
		}
	}
}

func TestFingerprintIgnoresDuplicateAdds(t *testing.T) {
	atoms := []logic.Atom{
		logic.NewAtom(logic.Pred("R", 2), logic.Const("a"), logic.Const("b")),
		logic.NewAtom(logic.Pred("S", 1), logic.Const("a")),
	}
	in := FromAtoms(atoms...)
	want := in.Fingerprint()
	for _, a := range atoms {
		if in.Add(a) {
			t.Fatalf("%v re-added", a)
		}
	}
	if in.Fingerprint() != want {
		t.Error("duplicate Add changed the fingerprint")
	}
}

func TestFingerprintSurvivesClone(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	in := FromAtoms(randomAtoms(rng, 12)...)
	if got := in.Clone().Fingerprint(); got != in.Fingerprint() {
		t.Errorf("Clone fingerprint %v != original %v", got, in.Fingerprint())
	}
}

func TestFingerprintCollisionFreeOnRandomInstances(t *testing.T) {
	// Distinct atom sets must get distinct fingerprints. 2000 random
	// instances over a deliberately tiny schema (so near-collisions in
	// content are common) must all fingerprint apart.
	rng := rand.New(rand.NewSource(1234))
	type entry struct {
		key string
	}
	byFP := make(map[logic.Fingerprint]entry)
	canonical := func(in *Instance) string {
		keys := in.SortedKeys()
		s := ""
		for _, k := range keys {
			s += k + "|"
		}
		return s
	}
	distinct := 0
	for i := 0; i < 2000; i++ {
		in := FromAtoms(randomAtoms(rng, 1+rng.Intn(10))...)
		key := canonical(in)
		fp := in.Fingerprint()
		if prev, dup := byFP[fp]; dup {
			if prev.key != key {
				t.Fatalf("collision: %q and %q share fingerprint %v", prev.key, key, fp)
			}
			continue
		}
		byFP[fp] = entry{key: key}
		distinct++
	}
	if distinct < 1000 {
		t.Fatalf("generator too narrow: only %d distinct instances", distinct)
	}
}

func TestFingerprintNullRenamingInvariance(t *testing.T) {
	// Two instances whose nulls differ only in their counter names, but
	// carry the same structural invention identity via InternTermWithHash,
	// must fingerprint equal — the ∀∃ search's path-merge property.
	structuralID := logic.Fingerprint{Hi: 0xdead, Lo: 0xbeef}
	build := func(nullName string) *Instance {
		tab := logic.NewInterner()
		tab.InternTermWithHash(logic.NewNull(nullName), structuralID)
		in := NewWithInterner(tab)
		in.Add(logic.NewAtom(logic.Pred("R", 2), logic.Const("a"), logic.NewNull(nullName)))
		in.Add(logic.NewAtom(logic.Pred("S", 1), logic.NewNull(nullName)))
		return in
	}
	a, b := build("n0"), build("n17")
	if a.Fingerprint() != b.Fingerprint() {
		t.Errorf("structurally identical nulls with different names fingerprint apart: %v vs %v",
			a.Fingerprint(), b.Fingerprint())
	}
	// And without the override the names do distinguish them.
	plain := func(nullName string) *Instance {
		return FromAtoms(
			logic.NewAtom(logic.Pred("R", 2), logic.Const("a"), logic.NewNull(nullName)),
			logic.NewAtom(logic.Pred("S", 1), logic.NewNull(nullName)),
		)
	}
	if plain("n0").Fingerprint() == plain("n17").Fingerprint() {
		t.Error("content hashing must distinguish differently named nulls")
	}
}

func TestNewWithInternerSharesIdentity(t *testing.T) {
	tab := logic.NewInterner()
	a := NewWithInterner(tab)
	b := NewWithInterner(tab)
	atom := logic.NewAtom(logic.Pred("R", 1), logic.Const("x"))
	a.Add(atom)
	b.Add(atom)
	ida, _ := tab.LookupTerm(logic.Const("x"))
	if tab.NumTerms() != 1 {
		t.Fatalf("shared interner minted %d IDs for one term", tab.NumTerms())
	}
	if !b.HasTuple(mustPred(tab, logic.Pred("R", 1)), []logic.TermID{ida}) {
		t.Error("tuple membership must work across instances sharing the interner")
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("same atoms, same interner: fingerprints must agree")
	}
}

func mustPred(tab *logic.Interner, p logic.Predicate) logic.PredID {
	id, ok := tab.LookupPred(p)
	if !ok {
		panic("pred not interned")
	}
	return id
}
